// ppfs-lint: allow-file(ref-across-await) test idiom: coroutine referents are stack locals and the test blocks in sim.run()/run_task() before they die
// ppfs_fsck engine tests: detection of all four corruption kinds, repair
// semantics (quarantine vs clamp), job-count determinism of the report, and
// the end-to-end post-run audit over a real mount.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cache/fsck.hpp"
#include "cache/tier.hpp"
#include "pfs/filesystem.hpp"
#include "sim/simulation.hpp"
#include "workload/experiment.hpp"
#include "workload/recovery.hpp"

namespace ppfs {
namespace {

using cache::CacheFileInfo;
using cache::CacheTier;
using cache::CacheTierParams;
using cache::FsckShard;

/// A tier with a controllable fake inode table, pre-populated with one
/// healthy journaled file (ino 1, generation 1, blocks 0..3 of 8).
struct FsckFixture {
  sim::Simulation sim;
  std::map<std::uint32_t, std::uint64_t> generations;
  std::map<std::uint32_t, std::uint64_t> block_counts;
  CacheTier tier;

  FsckFixture()
      : tier(sim, "fsck-tier", params(),
             [this](std::uint32_t ino) {
               const auto it = generations.find(ino);
               return it == generations.end() ? 0ull : it->second;
             },
             [this](std::uint32_t ino) {
               const auto it = block_counts.find(ino);
               return it == block_counts.end() ? 0ull : it->second;
             }) {
    generations[1] = 1;
    block_counts[1] = 8;
    for (std::uint64_t b = 0; b < 4; ++b) {
      tier.insert(1, 1, b);
      sim.run();  // let each journal write land (flush interval 1)
    }
  }

  static CacheTierParams params() {
    CacheTierParams p;
    p.enabled = true;
    p.journal_flush_interval = 1;
    return p;
  }

  std::vector<FsckShard> shards() {
    FsckShard s;
    s.tier = &tier;
    s.label = "fsck-tier";
    for (const auto& [ino, gen] : generations) {
      s.files.push_back(cache::FsckFileTruth{ino, gen, block_counts[ino]});
    }
    return {std::move(s)};
  }
};

TEST(Fsck, CleanTierReportsClean) {
  FsckFixture f;
  auto shards = f.shards();
  const auto report = cache::run_fsck(shards, 2, /*repair=*/true);
  EXPECT_EQ(report.entries_checked, 1u);
  EXPECT_EQ(report.findings(), 0u);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.repairs_applied, 0u);
}

TEST(Fsck, TornEntryIsDetectedAndQuarantined) {
  FsckFixture f;
  f.tier.debug_corrupt_payload(1);
  auto shards = f.shards();
  const auto report = cache::run_fsck(shards, 1, /*repair=*/true);
  EXPECT_EQ(report.torn_dropped, 1u);
  EXPECT_EQ(report.repairs_applied, 1u);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(f.tier.durable_entries().count(1), 0u);
  EXPECT_FALSE(f.tier.resident(1, 0));  // quarantine stops volatile serving too
}

TEST(Fsck, UnknownInodeEntryIsDetected) {
  FsckFixture f;
  CacheFileInfo ghost;
  ghost.ino = 77;
  ghost.generation = 1;
  ghost.set(0);
  f.tier.debug_replace_entry(77, ghost);
  auto shards = f.shards();
  const auto report = cache::run_fsck(shards, 1, /*repair=*/true);
  EXPECT_EQ(report.unknown_ino_dropped, 1u);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(f.tier.durable_entries().count(77), 0u);
}

TEST(Fsck, StaleGenerationEntryIsDetected) {
  FsckFixture f;
  f.generations[1] = 2;  // file recreated since the journal entry
  auto shards = f.shards();
  const auto report = cache::run_fsck(shards, 1, /*repair=*/true);
  EXPECT_EQ(report.stale_generation_dropped, 1u);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(f.tier.durable_entries().count(1), 0u);
}

TEST(Fsck, OutOfRangeBitsAreRepairedByClamping) {
  FsckFixture f;
  // Journal claims blocks beyond the file's 8-block allocation.
  CacheFileInfo inflated = *cache::decode(f.tier.durable_entries().at(1).payload.data(),
                                          f.tier.durable_entries().at(1).payload.size());
  inflated.set(10);
  inflated.set(12);
  f.tier.debug_replace_entry(1, inflated);
  auto shards = f.shards();
  const auto report = cache::run_fsck(shards, 1, /*repair=*/true);
  EXPECT_EQ(report.out_of_range_entries, 1u);
  EXPECT_EQ(report.out_of_range_bits_cleared, 2u);
  EXPECT_EQ(report.repairs_applied, 1u);
  EXPECT_TRUE(report.clean());
  // The entry survives, clamped — the in-range residency still serves.
  ASSERT_EQ(f.tier.durable_entries().count(1), 1u);
  const auto repaired = cache::decode(f.tier.durable_entries().at(1).payload.data(),
                                      f.tier.durable_entries().at(1).payload.size());
  ASSERT_TRUE(repaired.has_value());
  EXPECT_EQ(repaired->popcount(), 4u);
  EXPECT_TRUE(f.tier.resident(1, 0));
}

TEST(Fsck, ScanOnlyLeavesCorruptionInPlace) {
  FsckFixture f;
  f.tier.debug_corrupt_payload(1);
  auto shards = f.shards();
  const auto report = cache::run_fsck(shards, 1, /*repair=*/false);
  EXPECT_EQ(report.torn_dropped, 1u);
  EXPECT_EQ(report.unrepaired, 1u);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(f.tier.durable_entries().count(1), 1u);  // untouched
}

TEST(Fsck, SecondPassAfterRepairIsClean) {
  FsckFixture f;
  f.tier.debug_corrupt_payload(1);
  auto shards = f.shards();
  (void)cache::run_fsck(shards, 2, /*repair=*/true);
  const auto second = cache::run_fsck(shards, 2, /*repair=*/false);
  EXPECT_EQ(second.findings(), 0u);
  EXPECT_TRUE(second.clean());
}

TEST(Fsck, ReportIsIdenticalForAnyJobCount) {
  // Two identical fixtures (fsck mutates state), scanned with different
  // thread counts: byte-identical summaries.
  FsckFixture f1, f4;
  for (auto* f : {&f1, &f4}) {
    f->generations[2] = 1;
    f->block_counts[2] = 4;
    f->tier.insert(2, 1, 0);
    f->sim.run();
    f->tier.debug_corrupt_payload(1);
  }
  auto s1 = f1.shards();
  auto s4 = f4.shards();
  const auto r1 = cache::run_fsck(s1, 1, /*repair=*/true);
  const auto r4 = cache::run_fsck(s4, 4, /*repair=*/true);
  EXPECT_EQ(r1.summary(), r4.summary());
  EXPECT_EQ(r1.findings(), r4.findings());
}

TEST(Fsck, InjectCorruptionsIsSeedDeterministic) {
  FsckFixture f1, f2;
  auto s1 = f1.shards();
  auto s2 = f2.shards();
  const auto a = cache::inject_corruptions(s1, 1234, 4);
  const auto b = cache::inject_corruptions(s2, 1234, 4);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 4u);
  // ...and every injected corruption is found.
  const auto report = cache::run_fsck(s1, 2, /*repair=*/true);
  EXPECT_GT(report.findings(), 0u);
  EXPECT_TRUE(report.clean());
  const auto recheck = cache::run_fsck(s1, 2, /*repair=*/false);
  EXPECT_EQ(recheck.findings(), 0u);
}

// --- end to end over a real mount -------------------------------------------

TEST(Fsck, PostRunAuditOverRealMountDetectsAndRepairsSeededCorruption) {
  workload::MachineSpec m;
  m.pfs.ufs.cache_tier.enabled = true;
  workload::Experiment exp(m);
  workload::WorkloadSpec w;
  w.file_size = 4 * 1024 * 1024;  // 8 blocks per stripe file: journals flush
  w.request_size = 64 * 1024;

  cache::FsckReport report, recheck;
  std::vector<std::string> injected;
  exp.run(w, nullptr, [&](pfs::PfsFileSystem& fs) {
    auto shards = workload::make_fsck_shards(fs);
    ASSERT_EQ(shards.size(), 8u);  // one per I/O node
    injected = cache::inject_corruptions(shards, 42, 6);
    report = cache::run_fsck(shards, 4, /*repair=*/true);
    recheck = cache::run_fsck(shards, 4, /*repair=*/false);
  });
  EXPECT_FALSE(injected.empty());
  EXPECT_GT(report.entries_checked, 0u);
  EXPECT_GT(report.findings(), 0u);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(recheck.findings(), 0u);
  EXPECT_NE(report.summary().find("clean=yes"), std::string::npos);
}

TEST(Fsck, MakeShardsIsEmptyWhenTierIsOff) {
  workload::Experiment exp;  // default machine: tier off
  workload::WorkloadSpec w;
  w.file_size = 1024 * 1024;
  w.request_size = 64 * 1024;
  bool hook_ran = false;
  exp.run(w, nullptr, [&](pfs::PfsFileSystem& fs) {
    hook_ran = true;
    EXPECT_TRUE(workload::make_fsck_shards(fs).empty());
  });
  EXPECT_TRUE(hook_ran);
}

}  // namespace
}  // namespace ppfs
