// Tests for CLI option parsing and trace capture/replay.
#include <gtest/gtest.h>

#include "workload/options.hpp"
#include "workload/trace.hpp"

namespace ppfs::workload {
namespace {

// --- parse_size / parse_mode ---

TEST(ParseSize, Suffixes) {
  EXPECT_EQ(parse_size("512"), 512u);
  EXPECT_EQ(parse_size("512B"), 512u);
  EXPECT_EQ(parse_size("64K"), 64u * 1024);
  EXPECT_EQ(parse_size("64KB"), 64u * 1024);
  EXPECT_EQ(parse_size("8M"), 8u * 1024 * 1024);
  EXPECT_EQ(parse_size("2g"), 2ull * 1024 * 1024 * 1024);
}

TEST(ParseSize, Malformed) {
  EXPECT_THROW(parse_size(""), std::invalid_argument);
  EXPECT_THROW(parse_size("abc"), std::invalid_argument);
  EXPECT_THROW(parse_size("12X"), std::invalid_argument);
}

// Regression: these inputs used to escape as raw std::stoull exceptions
// (std::out_of_range is NOT an invalid_argument, so the CLI's catch block
// missed it) or silently wrapped. All must surface as parse errors now.
TEST(ParseSize, JunkOverflowAndNegative) {
  EXPECT_THROW(parse_size("huge"), std::invalid_argument);
  EXPECT_THROW(parse_size("-1"), std::invalid_argument);
  EXPECT_THROW(parse_size("-64K"), std::invalid_argument);
  EXPECT_THROW(parse_size("99999999999999999999999"), std::invalid_argument);  // > u64
  EXPECT_THROW(parse_size("17179869184G"), std::invalid_argument);  // suffix overflow
}

TEST(ParseMode, NamesAndPrefixes) {
  EXPECT_EQ(parse_mode("M_RECORD"), pfs::IoMode::kRecord);
  EXPECT_EQ(parse_mode("record"), pfs::IoMode::kRecord);
  EXPECT_EQ(parse_mode("ASYNC"), pfs::IoMode::kAsync);
  EXPECT_EQ(parse_mode("m_log"), pfs::IoMode::kLog);
  EXPECT_THROW(parse_mode("M_NOPE"), std::invalid_argument);
}

// --- parse_cli ---

TEST(ParseCli, DefaultsAndBasics) {
  auto opt = parse_cli({});
  EXPECT_EQ(opt.workload.mode, pfs::IoMode::kRecord);
  EXPECT_EQ(opt.machine.ncompute, 8);
  EXPECT_FALSE(opt.workload.prefetch);
  EXPECT_FALSE(opt.show_help);
}

TEST(ParseCli, FullConfiguration) {
  auto opt = parse_cli({"--mode", "M_ASYNC", "--request", "256K", "--file", "32M",
                        "--delay", "0.05", "--prefetch", "--depth", "3", "--adaptive",
                        "--ncompute", "4", "--nio", "2", "--scsi16", "--elevator",
                        "--buffered", "--readahead", "2", "--own-region", "--verify",
                        "--compare"});
  EXPECT_EQ(opt.workload.mode, pfs::IoMode::kAsync);
  EXPECT_EQ(opt.workload.request_size, 256u * 1024);
  EXPECT_EQ(opt.workload.file_size, 32u * 1024 * 1024);
  EXPECT_DOUBLE_EQ(opt.workload.compute_delay, 0.05);
  EXPECT_TRUE(opt.workload.prefetch);
  EXPECT_EQ(opt.workload.prefetch_cfg.depth, 3u);
  EXPECT_TRUE(opt.workload.prefetch_cfg.adaptive);
  EXPECT_EQ(opt.machine.ncompute, 4);
  EXPECT_EQ(opt.machine.nio, 2);
  EXPECT_DOUBLE_EQ(opt.machine.raid.bus_bandwidth, 16.0e6);
  EXPECT_EQ(opt.machine.raid.disk.scheduler, hw::DiskSched::kElevator);
  EXPECT_FALSE(opt.workload.use_fastpath);
  EXPECT_EQ(opt.machine.pfs.ufs.readahead_blocks, 2u);
  EXPECT_EQ(opt.workload.pattern, AccessPattern::kOwnRegion);
  EXPECT_TRUE(opt.workload.verify);
  EXPECT_TRUE(opt.compare);
}

TEST(ParseCli, StripeOptionsBuildAttrs) {
  auto opt = parse_cli({"--sunit", "256K", "--sgroup", "4"});
  ASSERT_TRUE(opt.workload.attrs.has_value());
  EXPECT_EQ(opt.workload.attrs->stripe_unit, 256u * 1024);
  EXPECT_EQ(opt.workload.attrs->stripe_group.size(), 4u);
}

TEST(ParseCli, Errors) {
  EXPECT_THROW(parse_cli({"--bogus"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--request"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--sgroup", "16"}), std::invalid_argument);  // > nio
  EXPECT_THROW(parse_cli({"--delay", "-1"}), std::invalid_argument);
}

// Regression: "--mesh-mtu=huge" aborted the process (uncaught
// std::invalid_argument from stoull inside the parser, before CliError
// existed) and "--mesh-mtu 99999999999999999999999" escaped as
// std::out_of_range past the driver's catch. Both must now throw a
// CliError that names the offending flag.
TEST(ParseCli, BadValuesThrowCliErrorNamingTheFlag) {
  try {
    parse_cli({"--mesh-mtu", "huge"});
    FAIL() << "expected CliError";
  } catch (const CliError& e) {
    EXPECT_EQ(e.flag(), "--mesh-mtu");
    EXPECT_NE(std::string(e.what()).find("--mesh-mtu"), std::string::npos);
  }
  try {
    parse_cli({"--mesh-mtu=huge"});  // =value spelling hits the same path
    FAIL() << "expected CliError";
  } catch (const CliError& e) {
    EXPECT_EQ(e.flag(), "--mesh-mtu");
  }
  try {
    parse_cli({"--request", "99999999999999999999999"});
    FAIL() << "expected CliError";
  } catch (const CliError& e) {
    EXPECT_EQ(e.flag(), "--request");
  }
  // Negative counts and sizes are rejected, not wrapped to huge values.
  EXPECT_THROW(parse_cli({"--file", "-8M"}), CliError);
  EXPECT_THROW(parse_cli({"--depth", "-2"}), CliError);
  EXPECT_THROW(parse_cli({"--depth", "0"}), CliError);
  EXPECT_THROW(parse_cli({"--jobs", "junk"}), CliError);
  EXPECT_THROW(parse_cli({"--readahead", "-1"}), CliError);
  // CliError derives std::invalid_argument: old catch sites still work.
  EXPECT_THROW(parse_cli({"--sunit", "abc"}), std::invalid_argument);
}

TEST(ParseCli, EqualsValueSyntax) {
  auto opt = parse_cli({"--mode=M_UNIX", "--request=128K", "--trace-last=512",
                        "--trace=/tmp/out.json"});
  EXPECT_EQ(opt.workload.mode, pfs::IoMode::kUnix);
  EXPECT_EQ(opt.workload.request_size, 128u * 1024);
  EXPECT_EQ(opt.trace_path, "/tmp/out.json");
  EXPECT_EQ(opt.trace_last, 512u);
  // Fault plans carry '=' inside the value: only the flag side splits.
  auto fp = parse_cli({"--faults=crash:io=1,at=0.1,outage=0.15"});
  EXPECT_FALSE(fp.workload.faults.empty());
}

TEST(ParseCli, TraceFlags) {
  auto opt = parse_cli({"--trace", "run.json"});
  EXPECT_EQ(opt.trace_path, "run.json");
  EXPECT_EQ(opt.trace_last, 0u);  // unbounded by default
  EXPECT_THROW(parse_cli({"--trace"}), CliError);
  EXPECT_THROW(parse_cli({"--trace-last", "0"}), CliError);
  EXPECT_THROW(parse_cli({"--trace-last", "many"}), CliError);
}

TEST(ParseCli, HelpFlag) {
  EXPECT_TRUE(parse_cli({"--help"}).show_help);
  EXPECT_FALSE(cli_usage().empty());
}

// --- AccessTrace ---

TEST(AccessTrace, SerializeParseRoundTrip) {
  AccessTrace t;
  t.mode = pfs::IoMode::kAsync;
  t.ranks = 2;
  t.ops = {
      {0, TraceOp::Kind::kSeek, 0, 65536, 0},
      {0, TraceOp::Kind::kRead, 4096, 0, 0.05},
      {1, TraceOp::Kind::kRead, 8192, 0, 0},
  };
  const auto text = t.serialize();
  const auto back = AccessTrace::parse(text);
  EXPECT_EQ(back.mode, t.mode);
  EXPECT_EQ(back.ranks, t.ranks);
  ASSERT_EQ(back.ops.size(), t.ops.size());
  EXPECT_EQ(back.ops[0].kind, TraceOp::Kind::kSeek);
  EXPECT_EQ(back.ops[0].offset, 65536u);
  EXPECT_EQ(back.ops[1].length, 4096u);
  EXPECT_DOUBLE_EQ(back.ops[1].think, 0.05);
  EXPECT_EQ(back.ops[2].rank, 1);
}

TEST(AccessTrace, ParseRejectsMalformed) {
  EXPECT_THROW(AccessTrace::parse(""), std::invalid_argument);
  EXPECT_THROW(AccessTrace::parse("mode M_RECORD\n"), std::invalid_argument);  // no ranks
  EXPECT_THROW(AccessTrace::parse("mode M_NOPE\nranks 1\n"), std::invalid_argument);
  EXPECT_THROW(AccessTrace::parse("mode M_RECORD\nranks 1\n0 read 0 0\n"),
               std::invalid_argument);  // zero-length read
  EXPECT_THROW(AccessTrace::parse("mode M_RECORD\nranks 1\n5 read 64 0\n"),
               std::invalid_argument);  // rank out of range
  EXPECT_THROW(AccessTrace::parse("mode M_RECORD\nranks 1\n0 frob 1\n"),
               std::invalid_argument);
}

TEST(AccessTrace, ParseIgnoresCommentsAndBlankLines) {
  const auto t = AccessTrace::parse(
      "# a comment\n\nmode M_RECORD\nranks 2\n# another\n0 read 1024 0\n");
  EXPECT_EQ(t.ops.size(), 1u);
}

TEST(AccessTrace, Generators) {
  const auto seq = AccessTrace::sequential(pfs::IoMode::kRecord, 4, 3, 64 * 1024, 0.1);
  EXPECT_EQ(seq.ops.size(), 12u);
  EXPECT_EQ(seq.max_bytes_per_rank(), 3u * 64 * 1024);

  const auto str = AccessTrace::strided(2, 3, 4096, 16384, 0);
  EXPECT_EQ(str.ops.size(), 12u);  // seek+read per access
}

TEST(TraceReplay, SequentialRecordTraceVerifies) {
  MachineSpec m;
  m.ncompute = 4;
  m.nio = 4;
  const auto trace = AccessTrace::sequential(pfs::IoMode::kRecord, 4, 4, 64 * 1024, 0.02);
  const auto res = replay_trace(m, trace, /*prefetch_on=*/false, {}, /*verify=*/true);
  EXPECT_EQ(res.reads, 16u);
  EXPECT_EQ(res.total_bytes, 16u * 64 * 1024);
  EXPECT_EQ(res.verify_failures, 0u);
  EXPECT_GT(res.observed_read_bw_mbs, 0.0);
}

TEST(TraceReplay, PrefetchingImprovesTraceWithThinkTime) {
  MachineSpec m;
  m.ncompute = 4;
  m.nio = 4;
  const auto trace = AccessTrace::sequential(pfs::IoMode::kRecord, 4, 8, 64 * 1024, 0.05);
  const auto off = replay_trace(m, trace, false);
  const auto on = replay_trace(m, trace, true);
  EXPECT_GT(on.observed_read_bw_mbs, off.observed_read_bw_mbs * 1.5);
  EXPECT_GT(on.prefetch.hits_ready + on.prefetch.hits_in_flight, 0u);
}

TEST(TraceReplay, StridedTraceNeedsStridedPredictor) {
  MachineSpec m;
  m.ncompute = 2;
  m.nio = 4;
  const auto trace = AccessTrace::strided(2, 10, 64 * 1024, 256 * 1024, 0.05);
  prefetch::PrefetchConfig seq_cfg;  // mode-aware: will miss
  const auto misses = replay_trace(m, trace, true, seq_cfg, true);
  prefetch::PrefetchConfig str_cfg;
  str_cfg.predictor = prefetch::PredictorKind::kStrided;
  const auto hits = replay_trace(m, trace, true, str_cfg, true);
  EXPECT_EQ(misses.verify_failures, 0u);
  EXPECT_EQ(hits.verify_failures, 0u);
  EXPECT_GT(hits.prefetch.hits_ready + hits.prefetch.hits_in_flight,
            misses.prefetch.hits_ready + misses.prefetch.hits_in_flight);
}

TEST(TraceReplay, Deterministic) {
  MachineSpec m;
  m.ncompute = 2;
  m.nio = 2;
  const auto trace = AccessTrace::sequential(pfs::IoMode::kAsync, 2, 4, 32 * 1024, 0.01);
  const auto a = replay_trace(m, trace, true);
  const auto b = replay_trace(m, trace, true);
  EXPECT_DOUBLE_EQ(a.wall_elapsed, b.wall_elapsed);
  EXPECT_EQ(a.prefetch.hits_ready, b.prefetch.hits_ready);
}

TEST(TraceReplay, RejectsBadInputs) {
  MachineSpec m;
  m.ncompute = 2;
  AccessTrace empty;
  empty.ranks = 1;
  EXPECT_THROW(replay_trace(m, empty, false), std::invalid_argument);
  auto too_wide = AccessTrace::sequential(pfs::IoMode::kRecord, 4, 1, 1024, 0);
  EXPECT_THROW(replay_trace(m, too_wide, false), std::invalid_argument);
}

}  // namespace
}  // namespace ppfs::workload
