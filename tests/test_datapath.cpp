// ppfs-lint: allow-file(ref-across-await) test idiom: coroutine referents are stack locals and the test blocks in sim.run()/run_task() before they die
// Data-path stage tests: extent-coalesced RPCs (stripe math + epoch-cached
// stripe maps), mesh MTU segmentation, the server batch queue, and the
// block-level sorted sweep (ufs::Ufs::read_sorted). Every stage defaults
// off; the end-to-end cases prove byte-exact delivery with each stage on,
// including under crashes and degraded RAID.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fault/plan.hpp"
#include "hw/disk_sched.hpp"
#include "hw/machine.hpp"
#include "hw/mesh.hpp"
#include "pfs/stripe.hpp"
#include "sim/simulation.hpp"
#include "test_util.hpp"
#include "ufs/block_store.hpp"
#include "ufs/ufs.hpp"
#include "workload/experiment.hpp"

namespace ppfs {
namespace {

using ppfs::test::check_pattern;
using ppfs::test::make_pattern;
using ppfs::test::run_task;
using sim::Simulation;
using sim::Task;

// --- hw::sweep_order --------------------------------------------------------

TEST(SweepOrder, AscendingPassThenReturnStroke) {
  const std::vector<std::uint64_t> keys{50, 10, 60, 20};
  const auto order = hw::sweep_order(keys, /*head=*/15);
  // Ascending from the first key >= 15 (20, 50, 60), then the return
  // stroke descending (10).
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(keys[order[0]], 20u);
  EXPECT_EQ(keys[order[1]], 50u);
  EXPECT_EQ(keys[order[2]], 60u);
  EXPECT_EQ(keys[order[3]], 10u);
}

TEST(SweepOrder, HeadBeyondAllKeysIsOneDescendingStroke) {
  const std::vector<std::uint64_t> keys{5, 30, 12};
  const auto order = hw::sweep_order(keys, /*head=*/100);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(keys[order[0]], 30u);
  EXPECT_EQ(keys[order[1]], 12u);
  EXPECT_EQ(keys[order[2]], 5u);
}

TEST(SweepOrder, EqualKeysKeepInputOrder) {
  const std::vector<std::uint64_t> keys{7, 7, 7};
  const auto order = hw::sweep_order(keys, 0);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}

// --- pfs::coalesce_by_io ----------------------------------------------------

pfs::StripeAttrs narrow_attrs() {
  pfs::StripeAttrs a;
  a.stripe_unit = 64 * 1024;
  a.stripe_group.assign(8, 0);  // Table 4: striped 8 ways across ONE node
  return a;
}

pfs::StripeAttrs wide_attrs() {
  pfs::StripeAttrs a;
  a.stripe_unit = 64 * 1024;
  a.stripe_group = {0, 1, 2, 3, 4, 5, 6, 7};
  return a;
}

/// Collect every file-space piece of a coalesced request set, sorted.
std::vector<pfs::StripePiece> all_pieces(const std::vector<pfs::CoalescedRequest>& reqs) {
  std::vector<pfs::StripePiece> pieces;
  for (const auto& r : reqs) {
    for (const auto& e : r.extents) {
      pieces.insert(pieces.end(), e.pieces.begin(), e.pieces.end());
    }
  }
  std::sort(pieces.begin(), pieces.end(),
            [](const auto& a, const auto& b) { return a.file_offset < b.file_offset; });
  return pieces;
}

/// The union of pieces must tile [off, off+len) exactly once.
::testing::AssertionResult covers_exactly(const std::vector<pfs::CoalescedRequest>& reqs,
                                          sim::FileOffset off, sim::ByteCount len) {
  sim::FileOffset cursor = off;
  for (const auto& p : all_pieces(reqs)) {
    if (p.file_offset != cursor) {
      return ::testing::AssertionFailure()
             << "gap or overlap at " << cursor << " (next piece at " << p.file_offset << ")";
    }
    cursor += p.length;
  }
  if (cursor != off + len) {
    return ::testing::AssertionFailure() << "union ends at " << cursor << " not " << off + len;
  }
  return ::testing::AssertionSuccess();
}

TEST(CoalesceByIo, NarrowLayoutMergesAllSlotsIntoOneRpc) {
  pfs::StripeLayout layout(narrow_attrs());
  auto merged = pfs::coalesce_by_io(layout.map(0, 512 * 1024));
  ASSERT_EQ(merged.size(), 1u);  // 8 per-slot RPCs become one
  EXPECT_EQ(merged[0].io_index, 0);
  EXPECT_EQ(merged[0].length, 512u * 1024);
  EXPECT_EQ(merged[0].extents.size(), 8u);
  EXPECT_TRUE(covers_exactly(merged, 0, 512 * 1024));
}

TEST(CoalesceByIo, WideLayoutKeepsOneRpcPerNode) {
  pfs::StripeLayout layout(wide_attrs());
  auto merged = pfs::coalesce_by_io(layout.map(0, 512 * 1024));
  ASSERT_EQ(merged.size(), 8u);
  for (const auto& r : merged) EXPECT_EQ(r.extents.size(), 1u);
  EXPECT_TRUE(covers_exactly(merged, 0, 512 * 1024));
}

TEST(CoalesceByIo, StripeBoundaryStraddle) {
  pfs::StripeLayout layout(narrow_attrs());
  // Starts mid-stripe-unit and ends mid-unit two slots later.
  const sim::FileOffset off = 32 * 1024;
  const sim::ByteCount len = 128 * 1024;
  auto merged = pfs::coalesce_by_io(layout.map(off, len));
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].length, len);
  EXPECT_TRUE(covers_exactly(merged, off, len));
}

TEST(CoalesceByIo, WrapAroundTheGroupStaysOneExtentPerSlot) {
  // A request longer than one full stripe revisits slot 0: its second
  // stripe unit is CONTIGUOUS in the slot's stripe file, so map() keeps one
  // request per slot — but the slot-0 extent now scatters into two
  // file-space pieces (offsets 0 and 512K).
  pfs::StripeLayout layout(narrow_attrs());
  const sim::ByteCount len = 512 * 1024 + 64 * 1024;  // full stripe + wrap
  auto merged = pfs::coalesce_by_io(layout.map(0, len));
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].length, len);
  ASSERT_EQ(merged[0].extents.size(), 8u);
  EXPECT_EQ(merged[0].extents[0].pieces.size(), 2u);  // slot 0, wrapped
  EXPECT_TRUE(covers_exactly(merged, 0, len));
}

TEST(CoalesceByIo, RepeatedNodeInNonAdjacentSlots) {
  pfs::StripeAttrs a;
  a.stripe_unit = 64 * 1024;
  a.stripe_group = {0, 1, 0, 1};
  pfs::StripeLayout layout(a);
  auto merged = pfs::coalesce_by_io(layout.map(0, 256 * 1024));
  ASSERT_EQ(merged.size(), 2u);  // one RPC per node, two extents each
  for (const auto& r : merged) EXPECT_EQ(r.extents.size(), 2u);
  EXPECT_TRUE(covers_exactly(merged, 0, 256 * 1024));
}

// --- mesh MTU segmentation --------------------------------------------------

sim::SimTime timed_send(sim::ByteCount mtu, sim::ByteCount bytes) {
  Simulation sim;
  hw::MeshNetwork mesh(sim, hw::MeshConfig{.width = 4, .height = 4, .mtu = mtu});
  sim::SimTime done = 0;
  sim.spawn([](Simulation& s, hw::MeshNetwork& m, sim::ByteCount n,
               sim::SimTime& out) -> Task<void> {
    co_await m.send(0, 15, n);
    out = s.now();
  }(sim, mesh, bytes, done));
  sim.run();
  return done;
}

TEST(MeshMtu, UncontendedSegmentedTimingMatchesLegacy) {
  // Head segment pays the hop latencies, later segments stream behind it:
  // with no route contention the pipelined total equals the circuit total.
  // NEAR, not DOUBLE_EQ: the segmented path sums 32 per-segment delays, so
  // the totals agree only to accumulation rounding.
  const sim::ByteCount bytes = 512 * 1024;
  EXPECT_NEAR(timed_send(0, bytes), timed_send(16 * 1024, bytes), 1e-12);
}

TEST(MeshMtu, SegmentCountersTrackCeilDiv) {
  Simulation sim;
  hw::MeshNetwork mesh(sim, hw::MeshConfig{.width = 4, .height = 4, .mtu = 16 * 1024});
  run_task(sim, [](hw::MeshNetwork& m) -> Task<void> {
    co_await m.send(0, 15, 40 * 1024);  // 3 segments of <= 16K
    co_await m.send(0, 15, 8 * 1024);   // fits in one MTU: not segmented
  }(mesh));
  EXPECT_EQ(mesh.segmented_messages(), 1u);
  EXPECT_EQ(mesh.segments_sent(), 3u);
}

// --- ufs::Ufs::read_sorted --------------------------------------------------

struct SortedFixture {
  Simulation sim;
  ufs::NullBlockDevice dev{sim, 1ull << 30};
  ufs::ContentStore content{64 * 1024};
  ufs::Ufs fs{sim, "ufs0", dev, content, nullptr, ufs::UfsParams{}};
};

TEST(ReadSorted, CrossFileContiguousRunIsOneDeviceTransfer) {
  SortedFixture f;
  constexpr sim::ByteCount kBlk = 64 * 1024;
  // Interleave allocation across two files: a0 b0 a1 b1 -> phys 0..3.
  const auto a = f.fs.create("a");
  const auto b = f.fs.create("b");
  run_task(f.sim, [](SortedFixture& fx, ufs::InodeNum ia, ufs::InodeNum ib) -> Task<void> {
    for (int i = 0; i < 2; ++i) {
      co_await fx.fs.write(ia, i * kBlk, make_pattern(1, i * kBlk, kBlk), true);
      co_await fx.fs.write(ib, i * kBlk, make_pattern(2, i * kBlk, kBlk), true);
    }
  }(f, a, b));

  const auto runs_before = f.fs.stats().disk_runs;
  std::vector<std::byte> oa(2 * kBlk), ob(2 * kBlk);
  std::vector<ufs::Ufs::BatchRead> batch{
      {a, 0, 2 * kBlk, oa, 0},
      {b, 0, 2 * kBlk, ob, 0},
  };
  run_task(f.sim, [](SortedFixture& fx, std::span<ufs::Ufs::BatchRead> items) -> Task<void> {
    co_await fx.fs.read_sorted(items);
  }(f, batch));

  // phys {0,2} + {1,3} flatten and sort to 0,1,2,3: ONE streaming transfer.
  EXPECT_EQ(f.fs.stats().disk_runs, runs_before + 1);
  EXPECT_EQ(batch[0].got, 2 * kBlk);
  EXPECT_EQ(batch[1].got, 2 * kBlk);
  EXPECT_TRUE(check_pattern(oa, 1, 0));
  EXPECT_TRUE(check_pattern(ob, 2, 0));
}

TEST(ReadSorted, EligibilityRules) {
  SortedFixture f;
  constexpr sim::ByteCount kBlk = 64 * 1024;
  const auto a = f.fs.create("a");
  run_task(f.sim, [](SortedFixture& fx, ufs::InodeNum ia) -> Task<void> {
    co_await fx.fs.write(ia, 0, make_pattern(1, 0, kBlk + 100), true);
  }(f, a));

  EXPECT_TRUE(f.fs.fastpath_read_eligible(a, 0, kBlk));
  EXPECT_FALSE(f.fs.fastpath_read_eligible(a, 0, kBlk / 2));     // unaligned length
  EXPECT_FALSE(f.fs.fastpath_read_eligible(a, 100, kBlk));       // unaligned offset
  EXPECT_FALSE(f.fs.fastpath_read_eligible(a, 0, 2 * kBlk));     // straddles EOF
  EXPECT_FALSE(f.fs.fastpath_read_eligible(a, 4 * kBlk, kBlk));  // beyond EOF
}

// --- end-to-end: the stages deliver byte-exact data -------------------------

workload::WorkloadSpec datapath_spec(const pfs::StripeAttrs& attrs) {
  workload::WorkloadSpec w;
  w.mode = pfs::IoMode::kRecord;
  w.request_size = 512 * 1024;
  w.file_size = 8ull * 512 * 1024 * 2;  // 8 nodes x 2 rounds
  w.prefetch = true;
  w.attrs = attrs;
  w.verify = true;
  return w;
}

workload::MachineSpec stages_on(sim::ByteCount mtu, bool coalesce, bool batch) {
  workload::MachineSpec m;
  m.mesh_mtu = mtu;
  m.pfs.coalesce_rpcs = coalesce;
  m.pfs.server_batch = batch;
  return m;
}

TEST(DatapathE2E, AllStagesVerifyCleanOnNarrowLayout) {
  workload::Experiment exp(stages_on(16 * 1024, true, true));
  const auto r = exp.run(datapath_spec(narrow_attrs()));
  EXPECT_EQ(r.verify_failures, 0u);
  EXPECT_EQ(r.total_bytes, 8ull * 512 * 1024 * 2);
  EXPECT_GT(r.coalesced_rpcs, 0u);
  EXPECT_GT(r.coalesced_extents, r.coalesced_rpcs);  // narrow: >1 extent/RPC
  EXPECT_GT(r.server_batch_sweeps, 0u);
  EXPECT_GE(r.server_batched_extents, r.server_batch_sweeps);
  EXPECT_GT(r.mesh_segments, 0u);
  EXPECT_GT(r.stripe_map_refreshes, 0u);
}

TEST(DatapathE2E, AllStagesVerifyCleanOnWideLayout) {
  workload::Experiment exp(stages_on(16 * 1024, true, true));
  const auto r = exp.run(datapath_spec(wide_attrs()));
  EXPECT_EQ(r.verify_failures, 0u);
  EXPECT_GT(r.coalesced_rpcs, 0u);
  EXPECT_GT(r.server_batch_sweeps, 0u);
}

TEST(DatapathE2E, EachStageAloneVerifiesClean) {
  const workload::MachineSpec specs[] = {
      stages_on(4 * 1024, false, false),
      stages_on(0, true, false),
      stages_on(0, false, true),
  };
  for (const auto& m : specs) {
    workload::Experiment exp(m);
    const auto r = exp.run(datapath_spec(narrow_attrs()));
    EXPECT_EQ(r.verify_failures, 0u);
    EXPECT_EQ(r.total_bytes, 8ull * 512 * 1024 * 2);
  }
}

TEST(DatapathE2E, CoalescedMatchesLegacyByteForByte) {
  // Same workload, coalescing on vs off: identical delivered bytes and a
  // clean verify both ways; the coalesced run collapses control traffic.
  const auto w = datapath_spec(narrow_attrs());
  const auto legacy = workload::Experiment(stages_on(0, false, false)).run(w);
  const auto merged = workload::Experiment(stages_on(0, true, false)).run(w);
  EXPECT_EQ(legacy.verify_failures, 0u);
  EXPECT_EQ(merged.verify_failures, 0u);
  EXPECT_EQ(legacy.total_bytes, merged.total_bytes);
  EXPECT_LT(merged.data_rpcs, legacy.data_rpcs);
}

TEST(DatapathE2E, StripeMapEpochInvalidatesAcrossCrash) {
  auto w = datapath_spec(narrow_attrs());
  const auto healthy = workload::Experiment(stages_on(0, true, false)).run(w);
  w.faults = fault::parse_plan("crash:io=0,at=0.05,outage=0.1");
  const auto crashed = workload::Experiment(stages_on(0, true, false)).run(w);
  EXPECT_EQ(crashed.verify_failures, 0u);
  EXPECT_EQ(crashed.total_bytes, healthy.total_bytes);
  // The crash and the restore each bump the topology epoch; clients must
  // reload their cached stripe maps instead of trusting stale ones.
  EXPECT_GT(crashed.stripe_map_refreshes, healthy.stripe_map_refreshes);
}

TEST(DatapathE2E, DegradedRaidReconstructsThroughCoalescedBatches) {
  auto w = datapath_spec(narrow_attrs());
  w.faults = fault::parse_plan("diskfail:io=all,member=1,at=0");
  workload::Experiment exp(stages_on(16 * 1024, true, true));
  const auto r = exp.run(w);
  // Every sorted-sweep transfer runs against the degraded array: data still
  // reconstructs byte-exact from the surviving members + parity.
  EXPECT_EQ(r.verify_failures, 0u);
  EXPECT_EQ(r.total_bytes, 8ull * 512 * 1024 * 2);
  EXPECT_GT(r.server_batch_sweeps, 0u);
}

TEST(DatapathE2E, DefaultSpecKeepsEveryStageOff) {
  const workload::MachineSpec defaults;
  EXPECT_EQ(defaults.mesh_mtu, 0u);
  EXPECT_FALSE(defaults.pfs.coalesce_rpcs);
  EXPECT_FALSE(defaults.pfs.server_batch);
}

}  // namespace
}  // namespace ppfs
