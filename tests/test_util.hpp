// ppfs-lint: allow-file(ref-across-await) test idiom: coroutine referents are stack locals and the test blocks in sim.run()/run_task() before they die
// Shared helpers for tests: deterministic byte patterns and a runner that
// drives one Task<void> to completion on a Simulation.
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/types.hpp"

namespace ppfs::test {

/// Deterministic content: the byte at absolute file offset `off` of file
/// `tag` is a mix of both, so any mis-addressed read shows up as a mismatch.
inline std::byte pattern_byte(std::uint64_t tag, std::uint64_t off) {
  const std::uint64_t x = (tag * 0x9e3779b97f4a7c15ull) ^ (off * 0xbf58476d1ce4e5b9ull);
  return static_cast<std::byte>((x >> 32) & 0xff);
}

inline std::vector<std::byte> make_pattern(std::uint64_t tag, std::uint64_t start,
                                           std::size_t len) {
  std::vector<std::byte> v(len);
  for (std::size_t i = 0; i < len; ++i) v[i] = pattern_byte(tag, start + i);
  return v;
}

inline ::testing::AssertionResult check_pattern(std::span<const std::byte> data,
                                                std::uint64_t tag, std::uint64_t start) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] != pattern_byte(tag, start + i)) {
      return ::testing::AssertionFailure()
             << "pattern mismatch at offset " << start + i << " (index " << i << "): got "
             << static_cast<int>(data[i]) << " want "
             << static_cast<int>(pattern_byte(tag, start + i));
    }
  }
  return ::testing::AssertionSuccess();
}

/// Run a single task to completion; fails the test if the simulation ends
/// with the task still blocked.
inline void run_task(sim::Simulation& sim, sim::Task<void> t) {
  bool finished = false;
  sim.spawn([](sim::Task<void> inner, bool& done) -> sim::Task<void> {
    co_await std::move(inner);
    done = true;
  }(std::move(t), finished));
  sim.run();
  ASSERT_TRUE(finished) << "task did not complete (deadlock in the model?)";
}

}  // namespace ppfs::test
