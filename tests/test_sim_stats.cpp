// Unit tests for statistics collection and tracing.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace ppfs::sim {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MeanMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 6.0, 8.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_DOUBLE_EQ(s.sum(), 20.0);
  EXPECT_EQ(s.count(), 4u);
}

TEST(RunningStats, VarianceMatchesTwoPass) {
  RunningStats s;
  const double xs[] = {1.0, 2.5, 3.7, 4.4, 9.1, 0.3};
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= 6;
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= 5;
  for (double x : xs) s.add(x);
  EXPECT_NEAR(s.variance(), var, 1e-12);
}

TEST(RunningStats, MergeEqualsCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    double x = std::sin(i) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleSet, ExactPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
}

TEST(SampleSet, AddAfterPercentileResorts) {
  SampleSet s;
  s.add(10);
  s.add(20);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
  s.add(5);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // clamps to first bin
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
}

TEST(Histogram, AsciiRenders) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  auto art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(TimeWeighted, AverageOfStepSignal) {
  TimeWeighted tw;
  tw.record(0.0, 2.0);   // value 2 over [0, 4)
  tw.record(4.0, 6.0);   // value 6 over [4, 8)
  EXPECT_DOUBLE_EQ(tw.average(8.0), 4.0);
  EXPECT_DOUBLE_EQ(tw.current(), 6.0);
}

TEST(ByteLiterals, Convert) {
  EXPECT_EQ(64_KiB, 65536u);
  EXPECT_EQ(1_MiB, 1048576u);
  EXPECT_EQ(2_GiB, 2147483648u);
}

TEST(Throughput, MegabytesPerSecond) {
  EXPECT_DOUBLE_EQ(megabytes_per_second(10'000'000, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(megabytes_per_second(1, 0.0), 0.0);
}

TEST(Tracer, DisabledByDefault) {
  Tracer t;
  t.set_capture(true);
  t.log(TraceCat::kDisk, 1.0, "disk0", "read");
  EXPECT_TRUE(t.captured().empty());
}

TEST(Tracer, CapturesEnabledCategories) {
  Tracer t;
  t.set_capture(true);
  t.enable(TraceCat::kDisk);
  t.log(TraceCat::kDisk, 1.25, "disk0", "read block 7");
  t.log(TraceCat::kNet, 1.5, "mesh", "suppressed");
  EXPECT_NE(t.captured().find("disk/disk0: read block 7"), std::string::npos);
  EXPECT_EQ(t.captured().find("suppressed"), std::string::npos);
}

TEST(Tracer, StreamsToSink) {
  Tracer t;
  std::ostringstream out;
  t.set_sink(&out);
  t.enable(TraceCat::kPfs);
  t.log(TraceCat::kPfs, 0.5, "client3", "open /pfs/a");
  EXPECT_NE(out.str().find("pfs/client3: open /pfs/a"), std::string::npos);
}

}  // namespace
}  // namespace ppfs::sim
