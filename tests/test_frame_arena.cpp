// FrameArena: the thread-local pool behind coroutine frames and boxed
// SmallFn callbacks. Verifies block reuse (the allocation-free steady
// state), stats accounting, trim() teardown, and thread isolation —
// run under ASan/LSan in CI, which would catch double-frees and leaks in
// the free-list plumbing.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "sim/frame_arena.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace {

using ppfs::sim::FrameArena;
using ppfs::sim::Simulation;
using ppfs::sim::Task;

TEST(FrameArena, ReusesFreedBlocksOfTheSameClass) {
  FrameArena arena;
  void* a = arena.allocate(100);
  ASSERT_NE(a, nullptr);
  std::memset(a, 0xAB, 100);  // ASan checks the block is really writable
  arena.deallocate(a);
  EXPECT_EQ(arena.stats().cached_blocks, 1u);

  // Same size class (64-byte granularity): must come from the free list.
  void* b = arena.allocate(80);
  EXPECT_EQ(b, a);
  EXPECT_EQ(arena.stats().pool_hits, 1u);
  EXPECT_EQ(arena.stats().allocs, 2u);
  EXPECT_EQ(arena.stats().cached_blocks, 0u);
  arena.deallocate(b);
}

TEST(FrameArena, LiveCountTracksOutstandingBlocks) {
  FrameArena arena;
  void* a = arena.allocate(64);
  void* b = arena.allocate(512);
  EXPECT_EQ(arena.stats().live, 2u);
  arena.deallocate(a);
  EXPECT_EQ(arena.stats().live, 1u);
  arena.deallocate(b);
  EXPECT_EQ(arena.stats().live, 0u);
}

TEST(FrameArena, TrimReleasesEveryCachedBlock) {
  FrameArena arena;
  void* blocks[8];
  for (auto& p : blocks) p = arena.allocate(200);
  for (auto* p : blocks) arena.deallocate(p);
  EXPECT_EQ(arena.stats().cached_blocks, 8u);
  EXPECT_GT(arena.stats().cached_bytes, 0u);

  arena.trim();
  EXPECT_EQ(arena.stats().cached_blocks, 0u);
  EXPECT_EQ(arena.stats().cached_bytes, 0u);
  EXPECT_GE(arena.stats().trims, 8u);

  // The arena stays usable after a trim.
  void* p = arena.allocate(200);
  ASSERT_NE(p, nullptr);
  arena.deallocate(p);
}

Task<void> hopper(Simulation& sim, int hops) {
  for (int i = 0; i < hops; ++i) co_await sim.delay(0.001);
}

TEST(FrameArena, CoroutineFramesRecycleAcrossRuns) {
  FrameArena& arena = FrameArena::local();
  // Warm the pool: the first simulation's frames land on the free lists
  // when it completes.
  {
    Simulation sim;
    for (int p = 0; p < 8; ++p) sim.spawn(hopper(sim, 4));
    sim.run();
  }
  const auto before = arena.stats();
  EXPECT_EQ(before.live, 0u);

  // An identical second run must be served from the pool.
  {
    Simulation sim;
    for (int p = 0; p < 8; ++p) sim.spawn(hopper(sim, 4));
    sim.run();
  }
  const auto after = arena.stats();
  EXPECT_EQ(after.live, 0u);
  const auto new_allocs = after.allocs - before.allocs;
  const auto new_hits = after.pool_hits - before.pool_hits;
  EXPECT_GT(new_allocs, 0u);
  EXPECT_EQ(new_hits, new_allocs) << "second run should be allocation-free";
}

TEST(FrameArena, ThreadsHaveIndependentArenas) {
  FrameArena* main_arena = &FrameArena::local();
  FrameArena* worker_arena = nullptr;
  std::uint64_t worker_live = 1;
  std::thread t([&] {
    worker_arena = &FrameArena::local();
    void* p = worker_arena->allocate(128);
    worker_live = worker_arena->stats().live;
    worker_arena->deallocate(p);
  });
  t.join();
  EXPECT_NE(worker_arena, nullptr);
  EXPECT_NE(worker_arena, main_arena);
  EXPECT_EQ(worker_live, 1u);
}

}  // namespace
