// ppfs-lint: allow-file(ref-across-await) test idiom: coroutine referents are stack locals and the test blocks in sim.run()/run_task() before they die
// Property-based tests (parameterized sweeps) over the core invariants:
// stripe-mapping algebra, UFS-vs-reference-model equivalence, end-to-end
// data integrity in every I/O mode with and without prefetching, and
// prefetch-engine resource bounds.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "hw/machine.hpp"
#include "pfs/client.hpp"
#include "pfs/filesystem.hpp"
#include "pfs/stripe.hpp"
#include "prefetch/engine.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "test_util.hpp"
#include "ufs/block_store.hpp"
#include "ufs/ufs.hpp"
#include "workload/experiment.hpp"

namespace ppfs {
namespace {

using ppfs::test::run_task;
using sim::ByteCount;
using sim::FileOffset;
using sim::Rng;
using sim::Simulation;
using sim::Task;

// ---------------------------------------------------------------------
// Stripe layout algebra, swept over stripe units and group shapes.
// ---------------------------------------------------------------------

struct StripeCase {
  ByteCount stripe_unit;
  std::vector<int> group;
  const char* label;
};

class StripeLayoutProperty : public ::testing::TestWithParam<StripeCase> {};

TEST_P(StripeLayoutProperty, MapCoversExactlyAndContiguously) {
  const auto& p = GetParam();
  pfs::StripeAttrs attrs;
  attrs.stripe_unit = p.stripe_unit;
  attrs.stripe_group = p.group;
  pfs::StripeLayout layout(attrs);

  Rng rng(0xace0fba5e + p.stripe_unit);
  for (int trial = 0; trial < 200; ++trial) {
    const FileOffset off = rng.uniform_int(0, 64 * p.stripe_unit);
    const ByteCount len = rng.uniform_int(1, 16 * p.stripe_unit);
    auto reqs = layout.map(off, len);

    ByteCount total = 0;
    std::map<FileOffset, ByteCount> file_cover;  // disjointness check
    for (const auto& r : reqs) {
      ASSERT_GE(r.group_slot, 0);
      ASSERT_LT(r.group_slot, attrs.group_size());
      EXPECT_EQ(r.io_index, attrs.stripe_group[r.group_slot]);

      // Pieces tile the request's local range contiguously and ascend in
      // file space.
      ByteCount piece_total = 0;
      FileOffset prev_file_end = 0;
      bool first = true;
      for (const auto& piece : r.pieces) {
        ASSERT_GT(piece.length, 0u);
        if (!first) {
          EXPECT_GE(piece.file_offset, prev_file_end);
        }
        prev_file_end = piece.file_offset + piece.length;
        first = false;
        piece_total += piece.length;
        // Every piece byte belongs to this slot per the ownership formula.
        EXPECT_EQ(layout.slot_of(piece.file_offset), r.group_slot);
        file_cover[piece.file_offset] = piece.length;
      }
      EXPECT_EQ(piece_total, r.length);
      // The local range starts exactly where the first piece maps.
      EXPECT_EQ(r.local_offset, layout.local_offset(r.pieces.front().file_offset));
      total += r.length;
    }
    EXPECT_EQ(total, len);

    // Pieces across all slots tile [off, off+len) exactly once.
    FileOffset cursor = off;
    for (const auto& [pos, plen] : file_cover) {
      EXPECT_EQ(pos, cursor);
      cursor += plen;
    }
    EXPECT_EQ(cursor, off + len);
  }
}

TEST_P(StripeLayoutProperty, LocalSizesMatchMappedBytes) {
  const auto& p = GetParam();
  pfs::StripeAttrs attrs;
  attrs.stripe_unit = p.stripe_unit;
  attrs.stripe_group = p.group;
  pfs::StripeLayout layout(attrs);

  for (ByteCount fsize : std::vector<ByteCount>{1, p.stripe_unit - 1, p.stripe_unit,
                                                7 * p.stripe_unit + 13,
                                                64 * p.stripe_unit}) {
    auto sizes = layout.local_sizes(fsize);
    // Mapping the whole file and summing per slot must agree.
    auto reqs = layout.map(0, fsize);
    std::vector<ByteCount> mapped(attrs.group_size(), 0);
    for (const auto& r : reqs) mapped[r.group_slot] += r.length;
    for (int s = 0; s < attrs.group_size(); ++s) {
      EXPECT_EQ(sizes[s], mapped[s]) << "slot " << s << " fsize " << fsize;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StripeLayoutProperty,
    ::testing::Values(
        StripeCase{64 * 1024, {0, 1, 2, 3, 4, 5, 6, 7}, "su64k_g8"},
        StripeCase{64 * 1024, {0}, "su64k_g1"},
        StripeCase{16 * 1024, {0, 1, 2}, "su16k_g3"},
        StripeCase{256 * 1024, {0, 1, 2, 3}, "su256k_g4"},
        StripeCase{1024 * 1024, {0, 1, 2, 3, 4, 5, 6, 7}, "su1m_g8"},
        StripeCase{64 * 1024, {0, 0, 0, 0, 0, 0, 0, 0}, "su64k_8way_on_1"},
        StripeCase{4096, {1, 0}, "su4k_reversed_g2"}),
    [](const ::testing::TestParamInfo<StripeCase>& pinfo) { return pinfo.param.label; });

// ---------------------------------------------------------------------
// UFS behaves exactly like a flat byte array, under random mixed
// workloads, across block sizes / cache sizes / coalescing settings.
// ---------------------------------------------------------------------

struct UfsCase {
  ByteCount block_bytes;
  std::size_t cache_blocks;
  bool coalesce;
  std::uint32_t readahead;
  const char* label;
};

class UfsModelProperty : public ::testing::TestWithParam<UfsCase> {};

TEST_P(UfsModelProperty, MatchesReferenceByteArray) {
  const auto& p = GetParam();
  Simulation sim;
  ufs::NullBlockDevice dev(sim, 1ull << 30);
  ufs::ContentStore content(p.block_bytes);
  ufs::UfsParams params;
  params.block_bytes = p.block_bytes;
  params.cache_blocks = p.cache_blocks;
  params.coalesce = p.coalesce;
  params.readahead_blocks = p.readahead;
  ufs::Ufs fs(sim, "fuzz", dev, content, nullptr, params);
  const auto ino = fs.create("f");

  std::vector<std::byte> reference;  // the model: a growable byte array
  Rng rng(0xdeadbeef + p.block_bytes);

  run_task(sim, [](ufs::Ufs& f, ufs::InodeNum i, std::vector<std::byte>& ref,
                   Rng& rand) -> Task<void> {
    for (int op = 0; op < 300; ++op) {
      const bool do_write = ref.empty() || rand.uniform01() < 0.4;
      const bool fastpath = rand.uniform01() < 0.5;
      if (do_write) {
        const FileOffset off = rand.uniform_int(0, ref.size() + 10000);
        const ByteCount len = rand.uniform_int(1, 200000);
        std::vector<std::byte> data(len);
        for (auto& b : data) b = static_cast<std::byte>(rand.uniform_int(0, 255));
        co_await f.write(i, off, data, fastpath);
        if (ref.size() < off + len) ref.resize(off + len, std::byte{0});
        std::memcpy(ref.data() + off, data.data(), len);
      } else {
        const FileOffset off = rand.uniform_int(0, ref.size() - 1);
        const ByteCount len = rand.uniform_int(1, 200000);
        std::vector<std::byte> buf(len);
        const ByteCount got = co_await f.read(i, off, len, buf, fastpath);
        const ByteCount expect = std::min<ByteCount>(len, ref.size() - off);
        EXPECT_EQ(got, expect) << "op " << op;
        EXPECT_EQ(std::memcmp(buf.data(), ref.data() + off, got), 0) << "op " << op;
      }
      EXPECT_EQ(f.file_size(i), ref.size());
    }
  }(fs, ino, reference, rng));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UfsModelProperty,
    ::testing::Values(UfsCase{64 * 1024, 128, true, 0, "paragon_default"},
                      UfsCase{64 * 1024, 2, true, 0, "tiny_cache"},
                      UfsCase{4096, 16, true, 0, "small_blocks"},
                      UfsCase{64 * 1024, 32, false, 0, "no_coalesce"},
                      UfsCase{16 * 1024, 8, true, 4, "with_readahead"}),
    [](const ::testing::TestParamInfo<UfsCase>& pinfo) { return pinfo.param.label; });

// ---------------------------------------------------------------------
// End-to-end integrity: every I/O mode x {prefetch off, on} x request
// size returns exactly the written bytes.
// ---------------------------------------------------------------------

using ModeCase = std::tuple<pfs::IoMode, bool, ByteCount>;

class ModeIntegrityProperty : public ::testing::TestWithParam<ModeCase> {};

TEST_P(ModeIntegrityProperty, WorkloadVerifiesCleanly) {
  const auto [mode, prefetch, request] = GetParam();
  workload::MachineSpec m;
  m.ncompute = 4;
  m.nio = 4;
  workload::Experiment e(m);
  workload::WorkloadSpec w;
  w.mode = mode;
  w.prefetch = prefetch;
  w.request_size = request;
  w.file_size = std::max<ByteCount>(1024 * 1024, request * 4 * 4);
  w.compute_delay = 0.01;
  w.verify = true;
  const auto res = e.run(w);
  EXPECT_EQ(res.verify_failures, 0u);
  EXPECT_GT(res.total_bytes, 0u);
  EXPECT_GT(res.observed_read_bw_mbs, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModeIntegrityProperty,
    ::testing::Combine(::testing::ValuesIn(pfs::all_io_modes()),
                       ::testing::Bool(),
                       ::testing::Values(ByteCount{16 * 1024}, ByteCount{64 * 1024},
                                         ByteCount{192 * 1024})),
    [](const ::testing::TestParamInfo<ModeCase>& pinfo) {
      std::string name(pfs::to_string(std::get<0>(pinfo.param)));
      name += std::get<1>(pinfo.param) ? "_pf" : "_nopf";
      name += '_';
      name += std::to_string(std::get<2>(pinfo.param) / 1024);
      name += 'k';
      return name;
    });

// ---------------------------------------------------------------------
// Prefetch engine resource bounds, swept over depth.
// ---------------------------------------------------------------------

class PrefetchDepthProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrefetchDepthProperty, ResidentBuffersNeverExceedBound) {
  const std::size_t depth = GetParam();
  Simulation sim;
  hw::Machine machine(sim, hw::MachineConfig::paragon(1, 4));
  pfs::PfsFileSystem fs(machine, pfs::PfsParams{});
  fs.create("f", fs.default_attrs());
  pfs::PfsClient client(fs, 0, 0, 1);
  prefetch::PrefetchConfig cfg;
  cfg.depth = depth;
  cfg.max_buffers_per_file = 6;
  auto engine = prefetch::attach_prefetcher(client, cfg);

  run_task(sim, [](Simulation& s, pfs::PfsClient& c, prefetch::PrefetchEngine& eng,
                   std::size_t d) -> Task<void> {
    const int fd = co_await c.open("f", pfs::IoMode::kAsync);
    auto data = ppfs::test::make_pattern(1, 0, 4 * 1024 * 1024);
    co_await c.write(fd, data);
    co_await c.seek(fd, 0);
    std::vector<std::byte> buf(64 * 1024);
    const std::size_t bound = std::min<std::size_t>(d, 6);
    for (int i = 0; i < 20; ++i) {
      co_await c.read(fd, buf);
      EXPECT_LE(eng.resident_buffers(fd), bound);
      co_await s.delay(0.05);
      EXPECT_LE(eng.resident_buffers(fd), bound);
    }
    c.close(fd);
    EXPECT_EQ(eng.resident_buffers(fd), 0u);
  }(sim, client, *engine, depth));

  // Steady state: every read past the pipeline fill is a hit.
  const auto& st = engine->stats();
  EXPECT_GT(st.hits_ready + st.hits_in_flight, 15u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PrefetchDepthProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u),
                         [](const ::testing::TestParamInfo<std::size_t>& pinfo) {
                           return "depth" + std::to_string(pinfo.param);
                         });

}  // namespace
}  // namespace ppfs
