// TraceScope: the observability layer's core contracts.
//
// The load-bearing property is digest neutrality — attaching a TraceSink to
// a simulation changes NOTHING about the schedule. The two golden digests
// from test_sweep.cpp are re-pinned here with tracing on; if instrumentation
// ever schedules an event, consults the RNG, or perturbs dispatch order,
// these diverge. On top of that: the kernel track mirrors the dispatch
// counter exactly, RPC spans partition the report's per-class RPC counters,
// the ring buffer keeps the last N records, and the exporters round-trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <vector>

#include "trace/export.hpp"
#include "trace/metrics.hpp"
#include "trace/record.hpp"
#include "trace/sink.hpp"
#include "workload/experiment.hpp"

namespace ppfs {
namespace {

using trace::TraceKind;
using trace::TraceRecord;
using trace::TraceSink;
using trace::TraceTrack;
using workload::Experiment;
using workload::ExperimentResult;
using workload::WorkloadSpec;

WorkloadSpec golden_record_spec() {
  WorkloadSpec w;  // defaults: M_RECORD, 64K requests
  w.file_size = 1024 * 1024;
  return w;
}

WorkloadSpec golden_unix_prefetch_spec() {
  WorkloadSpec w;
  w.mode = pfs::IoMode::kUnix;
  w.file_size = 1024 * 1024;
  w.prefetch = true;
  w.compute_delay = 0.005;
  return w;
}

std::uint64_t count(const TraceSink& sink, TraceTrack track, TraceKind kind,
                    int event = -1) {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < sink.size(); ++i) {
    const TraceRecord& r = sink.at(i);
    if (r.track == track && r.kind == kind && (event < 0 || r.event == event)) ++n;
  }
  return n;
}

// --- digest neutrality ------------------------------------------------------

TEST(TraceNeutrality, GoldenDigestsIdenticalWithTracingOn) {
  Experiment exp;
  // The same two scenarios whose digests test_sweep.cpp pins untraced.
  {
    TraceSink sink;
    const ExperimentResult r = exp.run(golden_record_spec(), &sink);
    EXPECT_EQ(r.digest, 0x0c1e17e218fb1117ull);
    EXPECT_EQ(r.events_dispatched, 391u);
    EXPECT_GT(sink.size(), 0u);
  }
  {
    TraceSink sink;
    const ExperimentResult r = exp.run(golden_unix_prefetch_spec(), &sink);
    EXPECT_EQ(r.digest, 0x6355a48ff39b604dull);
    EXPECT_EQ(r.events_dispatched, 825u);
  }
}

TEST(TraceNeutrality, TracedAndUntracedRunsMatchBitForBit) {
  Experiment exp;
  WorkloadSpec w = golden_unix_prefetch_spec();
  w.verify = true;
  const ExperimentResult off = exp.run(w);
  TraceSink sink;
  const ExperimentResult on = exp.run(w, &sink);
  EXPECT_EQ(off.digest, on.digest);
  EXPECT_EQ(off.events_dispatched, on.events_dispatched);
  EXPECT_EQ(off.total_bytes, on.total_bytes);
  EXPECT_EQ(off.wall_elapsed, on.wall_elapsed);
  EXPECT_EQ(on.verify_failures, 0u);
}

// --- per-track consistency with the report's counters -----------------------

TEST(TraceContent, KernelInstantsMirrorTheDispatchCounter) {
  Experiment exp;
  TraceSink sink;
  const ExperimentResult r = exp.run(golden_record_spec(), &sink);
  // One kernel instant per dispatched event: emitted right after the digest
  // mix, so the two counters can never drift.
  EXPECT_EQ(count(sink, TraceTrack::kKernel, TraceKind::kInstant),
            r.events_dispatched);
}

TEST(TraceContent, RpcSpansPartitionTheRpcCounters) {
  Experiment exp;
  TraceSink sink;
  WorkloadSpec w = golden_unix_prefetch_spec();
  const ExperimentResult r = exp.run(w, &sink);

  const auto begins = [&](std::uint8_t cls) {
    return count(sink, TraceTrack::kRpc, TraceKind::kSpanBegin, cls);
  };
  // Every ++counter site emits exactly one span of the matching class; the
  // coalesced class splits out of data_rpcs exactly like the report does.
  EXPECT_EQ(begins(trace::code::kRpcData) + begins(trace::code::kRpcCoalesced),
            r.data_rpcs);
  EXPECT_EQ(begins(trace::code::kRpcCoalesced), r.coalesced_rpcs);
  EXPECT_EQ(begins(trace::code::kRpcMetadata), r.metadata_rpcs);
  EXPECT_EQ(begins(trace::code::kRpcPointer), r.pointer_rpcs);
  EXPECT_GT(r.data_rpcs, 0u);
  EXPECT_GT(r.pointer_rpcs, 0u);  // M_UNIX moves the shared pointer

  // Healthy run: every span that begins also ends, and async ids pair 1:1.
  EXPECT_EQ(count(sink, TraceTrack::kRpc, TraceKind::kSpanBegin),
            count(sink, TraceTrack::kRpc, TraceKind::kSpanEnd));
  std::map<std::uint64_t, int> open;
  for (std::size_t i = 0; i < sink.size(); ++i) {
    const TraceRecord& rec = sink.at(i);
    if (rec.track != TraceTrack::kRpc) continue;
    if (rec.kind == TraceKind::kSpanBegin) {
      EXPECT_EQ(++open[rec.id], 1) << rec.id;
    } else if (rec.kind == TraceKind::kSpanEnd) {
      EXPECT_EQ(--open[rec.id], 0) << rec.id;
    }
  }
  for (const auto& [id, n] : open) EXPECT_EQ(n, 0) << "unclosed rpc span " << id;
}

TEST(TraceContent, CoalescedRunTagsCoalescedSpans) {
  workload::MachineSpec m;
  m.pfs.coalesce_rpcs = true;
  Experiment exp(m);
  TraceSink sink;
  const ExperimentResult r = exp.run(golden_record_spec(), &sink);
  EXPECT_GT(r.coalesced_rpcs, 0u);
  EXPECT_EQ(count(sink, TraceTrack::kRpc, TraceKind::kSpanBegin,
                  trace::code::kRpcCoalesced),
            r.coalesced_rpcs);
}

TEST(TraceContent, DiskAndPrefetchTracksArePopulated) {
  Experiment exp;
  TraceSink sink;
  const ExperimentResult r = exp.run(golden_unix_prefetch_spec(), &sink);
  EXPECT_GT(count(sink, TraceTrack::kDisk, TraceKind::kSpanBegin), 0u);
  EXPECT_GT(count(sink, TraceTrack::kMeshLink, TraceKind::kSpanBegin), 0u);
  // Prefetch issues show up as instants; occupancy as counter samples, one
  // per resident-set change (so an even count: every +1 has its -1).
  EXPECT_EQ(count(sink, TraceTrack::kPrefetch, TraceKind::kInstant,
                  trace::code::kPrefetchIssue),
            r.prefetch.issued);
  const auto occ = count(sink, TraceTrack::kPrefetch, TraceKind::kCounter,
                         trace::code::kPrefetchOccupancy);
  EXPECT_GT(occ, 0u);
  EXPECT_EQ(occ % 2, 0u);
}

// --- sink mechanics ---------------------------------------------------------

TEST(TraceSinkTest, UnboundedSinkGrowsAndKeepsOrder) {
  TraceSink sink;
  for (int i = 0; i < 10000; ++i) {
    sink.record(TraceRecord(i * 0.001, TraceKind::kInstant, TraceTrack::kKernel, 0, 0,
                            0, static_cast<std::uint64_t>(i)));
  }
  ASSERT_EQ(sink.size(), 10000u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_FALSE(sink.is_ring());
  for (std::size_t i = 0; i < sink.size(); ++i) {
    EXPECT_EQ(sink.at(i).a, i);
  }
}

TEST(TraceSinkTest, RingKeepsExactlyTheLastN) {
  TraceSink sink(64);
  EXPECT_TRUE(sink.is_ring());
  for (int i = 0; i < 1000; ++i) {
    sink.record(TraceRecord(i * 0.001, TraceKind::kInstant, TraceTrack::kKernel, 0, 0,
                            0, static_cast<std::uint64_t>(i)));
  }
  ASSERT_EQ(sink.size(), 64u);
  EXPECT_EQ(sink.dropped(), 1000u - 64u);
  // Chronological: at(0) is the oldest retained record (936), at(63) the
  // newest (999).
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(sink.at(i).a, 936u + i);
  }
}

TEST(TraceSinkTest, SpanIdsAreUniqueAndMonotone) {
  TraceSink sink;
  std::uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t id = sink.new_span();
    EXPECT_GT(id, prev);
    prev = id;
  }
}

// --- exporters --------------------------------------------------------------

TEST(TraceExport, BinaryRoundTripsExactly) {
  TraceSink sink(32);
  for (int i = 0; i < 100; ++i) {
    sink.record(TraceRecord(i * 0.5, TraceKind::kSpanBegin, TraceTrack::kDisk,
                            trace::code::kDiskRead, i % 4, 0,
                            static_cast<std::uint64_t>(i) * 4096, 7, trace::kFlagWrite));
  }
  std::stringstream buf;
  trace::write_binary(sink, buf);
  std::vector<TraceRecord> back;
  ASSERT_TRUE(trace::load_binary(buf, back));
  const auto snap = trace::snapshot(sink);
  ASSERT_EQ(back.size(), snap.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].ts, snap[i].ts);
    EXPECT_EQ(back[i].a, snap[i].a);
    EXPECT_EQ(back[i].b, snap[i].b);
    EXPECT_EQ(back[i].resource, snap[i].resource);
    EXPECT_EQ(static_cast<int>(back[i].kind), static_cast<int>(snap[i].kind));
    EXPECT_EQ(back[i].flags, snap[i].flags);
  }
  std::stringstream junk("NOTATRACE.....");
  EXPECT_FALSE(trace::load_binary(junk, back));
}

TEST(TraceExport, ChromeJsonIsWellFormedForAFullRun) {
  Experiment exp;
  TraceSink sink;
  exp.run(golden_unix_prefetch_spec(), &sink);
  std::ostringstream out;
  trace::write_chrome_json(sink, out);
  const std::string json = out.str();
  ASSERT_GT(json.size(), 2u);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.find_last_not_of(" \n"), json.rfind(']'));
  // Track rows the viewer groups by must all be named.
  EXPECT_NE(json.find("kernel dispatch"), std::string::npos);
  EXPECT_NE(json.find("\"link "), std::string::npos);
  EXPECT_NE(json.find("\"disk "), std::string::npos);
  EXPECT_NE(json.find("\"rpc rank "), std::string::npos);
  EXPECT_NE(json.find("\"prefetch rank "), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
}

// --- derived metrics --------------------------------------------------------

TEST(TraceMetricsTest, ComputedFromTheSameRecordsAsTheReport) {
  Experiment exp;
  TraceSink sink;
  const ExperimentResult r = exp.run(golden_unix_prefetch_spec(), &sink);
  const auto m = trace::compute_metrics(trace::snapshot(sink));
  EXPECT_EQ(m.kernel_dispatches, r.events_dispatched);
  EXPECT_GT(m.t_end, 0.0);
  // Disk utilization must be visible on an I/O-bound run.
  const auto& disk = m.utilization[static_cast<int>(TraceTrack::kDisk)];
  EXPECT_GT(disk.resources, 0);
  EXPECT_GT(disk.busy_s, 0.0);
  EXPECT_GT(disk.avg, 0.0);
  EXPECT_LE(disk.peak, 1.0 + 1e-9);
  // The data-RPC latency histogram covers every data RPC.
  const auto& lat = m.rpc[trace::code::kRpcData];
  EXPECT_EQ(lat.count, r.data_rpcs);
  EXPECT_GT(lat.p50, 0.0);
  EXPECT_LE(lat.p50, lat.p95);
  EXPECT_LE(lat.p95, lat.p99);
  EXPECT_LE(lat.p99, lat.max);
  std::uint64_t hist = 0;
  for (const auto n : lat.log2_us) hist += n;
  EXPECT_EQ(hist, lat.count);
  // Occupancy stats come from the prefetch counter samples.
  EXPECT_GT(m.occupancy.samples, 0u);
  EXPECT_GE(m.occupancy.max_buffers, 1u);
  EXPECT_FALSE(trace::format_metrics(m).empty());
}

}  // namespace
}  // namespace ppfs
