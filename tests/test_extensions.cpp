// ppfs-lint: allow-file(ref-across-await) test idiom: coroutine referents are stack locals and the test blocks in sim.run()/run_task() before they die
// Tests for the library extensions beyond the paper's prototype:
// elevator disk scheduling, server-side UFS readahead, mid-file
// set_iomode, Fast Path toggling, asynchronous writes, and the adaptive
// prefetch throttle.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hw/disk.hpp"
#include "hw/disk_sched.hpp"
#include "hw/machine.hpp"
#include "pfs/client.hpp"
#include "pfs/filesystem.hpp"
#include "prefetch/engine.hpp"
#include "sim/simulation.hpp"
#include "sim/when_all.hpp"
#include "test_util.hpp"
#include "ufs/block_store.hpp"
#include "ufs/ufs.hpp"
#include "workload/experiment.hpp"

namespace ppfs {
namespace {

using ppfs::test::check_pattern;
using ppfs::test::make_pattern;
using ppfs::test::run_task;
using sim::Simulation;
using sim::SimTime;
using sim::Task;

// --- ElevatorQueue ---

TEST(ElevatorQueue, ServesInSweepOrder) {
  hw::ElevatorQueue q;
  q.push(0, 500);
  q.push(1, 100);
  q.push(2, 900);
  q.push(3, 300);
  // Head at 200, sweeping up: 300, 500, 900, then reverse to 100.
  EXPECT_EQ(q.pop_next(200), 3u);
  EXPECT_EQ(q.pop_next(300), 0u);
  EXPECT_EQ(q.pop_next(500), 2u);
  EXPECT_EQ(q.pop_next(900), 1u);
  EXPECT_TRUE(q.empty());
}

TEST(ElevatorQueue, ReversesWhenNothingAhead) {
  hw::ElevatorQueue q;
  q.push(0, 10);
  q.push(1, 20);
  // Head far above everything: sweep reverses and picks the nearest below.
  EXPECT_EQ(q.pop_next(1000), 1u);
  EXPECT_EQ(q.pop_next(20), 0u);
}

TEST(ElevatorQueue, EqualCylinderServedImmediately) {
  hw::ElevatorQueue q;
  q.push(7, 42);
  EXPECT_EQ(q.pop_next(42), 7u);
}

TEST(DiskElevator, ReordersScatteredRequestsByCylinder) {
  hw::DiskParams p = hw::DiskParams::paragon_era();
  p.scheduler = hw::DiskSched::kElevator;
  Simulation sim;
  hw::Disk d(sim, "d0", p);
  const std::uint64_t spc =
      static_cast<std::uint64_t>(p.sectors_per_track) * p.heads;  // sectors per cylinder

  std::vector<int> completion_order;
  // Submit far, near, middle (in that arrival order) while the disk is
  // busy with a request at cylinder 0.
  sim.spawn([](hw::Disk& disk, std::vector<int>& order) -> Task<void> {
    co_await disk.transfer(0, 32 * 1024, false);
    order.push_back(0);
  }(d, completion_order));
  auto submit = [&](int id, std::uint64_t cyl) {
    sim.spawn([](Simulation& s, hw::Disk& disk, std::vector<int>& order, int tag,
                 std::uint64_t lba) -> Task<void> {
      co_await s.delay(0.0001);  // arrive while request 0 is in service
      co_await disk.transfer(lba, 32 * 1024, false);
      order.push_back(tag);
    }(sim, d, completion_order, id, cyl));
  };
  submit(3, 1800 * spc);
  submit(1, 100 * spc);
  submit(2, 900 * spc);
  sim.run();
  // Elevator sweeps upward from cylinder ~0: 100, 900, 1800.
  EXPECT_EQ(completion_order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(DiskElevator, BeatsFifoOnScatteredLoad) {
  auto run_policy = [&](hw::DiskSched sched) {
    hw::DiskParams p = hw::DiskParams::paragon_era();
    p.scheduler = sched;
    Simulation sim;
    hw::Disk d(sim, "d0", p);
    const std::uint64_t spc = static_cast<std::uint64_t>(p.sectors_per_track) * p.heads;
    // Interleave two distant regions, FIFO-hostile.
    for (int i = 0; i < 10; ++i) {
      const std::uint64_t cyl = (i % 2 == 0) ? 50 + i : 1800 + i;
      sim.spawn([](hw::Disk& disk, std::uint64_t lba) -> Task<void> {
        co_await disk.transfer(lba, 16 * 1024, false);
      }(d, cyl * spc));
    }
    sim.run();
    return sim.now();
  };
  EXPECT_LT(run_policy(hw::DiskSched::kElevator), run_policy(hw::DiskSched::kFifo));
}

TEST(DiskElevator, DataStillCorrectUnderReordering) {
  // Full-stack check: a PFS on elevator disks returns the same bytes.
  Simulation sim;
  auto cfg = hw::MachineConfig::paragon(2, 2);
  cfg.raid.disk.scheduler = hw::DiskSched::kElevator;
  hw::Machine machine(sim, cfg);
  pfs::PfsFileSystem fs(machine, pfs::PfsParams{});
  fs.create("f", fs.default_attrs());
  pfs::PfsClient client(fs, 0, 0, 1);
  auto data = make_pattern(4, 0, 512 * 1024);
  std::vector<std::byte> back(512 * 1024);
  run_task(sim, [](pfs::PfsClient& c, std::span<const std::byte> in,
                   std::span<std::byte> out) -> Task<void> {
    const int fd = co_await c.open("f", pfs::IoMode::kAsync);
    co_await c.write(fd, in);
    co_await c.seek(fd, 0);
    co_await c.read(fd, out);
    c.close(fd);
  }(client, data, back));
  EXPECT_TRUE(check_pattern(back, 4, 0));
}

// --- UFS server-side readahead ---

TEST(UfsReadahead, WarmsCacheForSequentialBufferedReads) {
  Simulation sim;
  ufs::NullBlockDevice dev(sim, 1ull << 30);
  ufs::ContentStore content(64 * 1024);
  ufs::UfsParams p;
  p.readahead_blocks = 2;
  ufs::Ufs fs(sim, "ufs0", dev, content, nullptr, p);
  auto ino = fs.create("a");
  auto data = make_pattern(6, 0, 8 * p.block_bytes);
  run_task(sim, [](ufs::Ufs& f, ufs::InodeNum i, std::span<const std::byte> in) -> Task<void> {
    co_await f.write(i, 0, in, true);
    std::vector<std::byte> buf(f.params().block_bytes);
    // Buffered sequential scan: after block k is read, k+1/k+2 prefill.
    for (int b = 0; b < 8; ++b) {
      co_await f.read(i, static_cast<sim::FileOffset>(b) * f.params().block_bytes,
                      buf.size(), buf, /*fastpath=*/false);
    }
  }(fs, ino, data));
  EXPECT_GT(fs.stats().readaheads_issued, 0u);
  // Blocks 1..7 were readahead targets; demand reads for them hit (or join
  // an in-flight fill) instead of missing cold.
  EXPECT_GT(fs.cache().hits() + fs.cache().fill_waits(), 0u);
}

TEST(UfsReadahead, FastPathDoesNotTriggerReadahead) {
  Simulation sim;
  ufs::NullBlockDevice dev(sim, 1ull << 30);
  ufs::ContentStore content(64 * 1024);
  ufs::UfsParams p;
  p.readahead_blocks = 2;
  ufs::Ufs fs(sim, "ufs0", dev, content, nullptr, p);
  auto ino = fs.create("a");
  auto data = make_pattern(6, 0, 4 * p.block_bytes);
  run_task(sim, [](ufs::Ufs& f, ufs::InodeNum i, std::span<const std::byte> in) -> Task<void> {
    co_await f.write(i, 0, in, true);
    std::vector<std::byte> buf(in.size());
    co_await f.read(i, 0, in.size(), buf, /*fastpath=*/true);
  }(fs, ino, data));
  EXPECT_EQ(fs.stats().readaheads_issued, 0u);
}

TEST(UfsReadahead, StopsAtEof) {
  Simulation sim;
  ufs::NullBlockDevice dev(sim, 1ull << 30);
  ufs::ContentStore content(64 * 1024);
  ufs::UfsParams p;
  p.readahead_blocks = 8;
  ufs::Ufs fs(sim, "ufs0", dev, content, nullptr, p);
  auto ino = fs.create("a");
  auto data = make_pattern(6, 0, 2 * p.block_bytes);
  run_task(sim, [](ufs::Ufs& f, ufs::InodeNum i, std::span<const std::byte> in) -> Task<void> {
    co_await f.write(i, 0, in, true);
    std::vector<std::byte> buf(f.params().block_bytes);
    co_await f.read(i, 0, buf.size(), buf, false);
  }(fs, ino, data));
  // Only block 1 exists beyond block 0.
  EXPECT_EQ(fs.stats().readaheads_issued, 1u);
}

// --- PFS client extensions ---

struct Bed {
  explicit Bed(int nc = 4, int nio = 4)
      : machine(sim, hw::MachineConfig::paragon(nc, nio)), fs(machine, pfs::PfsParams{}) {
    for (int r = 0; r < nc; ++r) {
      clients.push_back(std::make_unique<pfs::PfsClient>(fs, r, r, nc));
    }
  }
  void populate(sim::ByteCount size) {
    fs.create("f", fs.default_attrs());
    run_task(sim, [](Bed& b, sim::ByteCount sz) -> Task<void> {
      const int fd = co_await b.clients[0]->open("f", pfs::IoMode::kAsync);
      auto data = make_pattern(1, 0, sz);
      co_await b.clients[0]->write(fd, data);
      b.clients[0]->close(fd);
    }(*this, size));
  }
  Simulation sim;
  hw::Machine machine;
  pfs::PfsFileSystem fs;
  std::vector<std::unique_ptr<pfs::PfsClient>> clients;
};

TEST(SetIoMode, SwitchesCoordinationMidFile) {
  Bed b;
  b.populate(1024 * 1024);
  run_task(b.sim, [](Bed& bed) -> Task<void> {
    auto& c = *bed.clients[2];  // rank 2 of 4
    const int fd = co_await c.open("f", pfs::IoMode::kAsync);
    std::vector<std::byte> buf(64 * 1024);
    co_await c.read(fd, buf);  // sequential: bytes [0, 64K)
    EXPECT_TRUE(check_pattern(buf, 1, 0));
    co_await c.set_iomode(fd, pfs::IoMode::kRecord);
    EXPECT_EQ(c.mode_of(fd), pfs::IoMode::kRecord);
    // Record mode from the current pointer: rank 2's record of this round.
    co_await c.read(fd, buf);
    EXPECT_TRUE(check_pattern(buf, 1, 64 * 1024 + 2 * 64 * 1024));
    c.close(fd);
  }(b));
}

TEST(FastPathToggle, BufferedReadsPopulateServerCache) {
  Bed b;
  b.populate(512 * 1024);
  run_task(b.sim, [](Bed& bed) -> Task<void> {
    auto& c = *bed.clients[0];
    const int fd = co_await c.open("f", pfs::IoMode::kAsync);
    EXPECT_TRUE(c.fastpath(fd));
    c.set_fastpath(fd, false);
    EXPECT_FALSE(c.fastpath(fd));
    std::vector<std::byte> buf(256 * 1024);
    co_await c.read(fd, buf);
    EXPECT_TRUE(check_pattern(buf, 1, 0));
    c.close(fd);
  }(b));
  std::size_t resident = 0;
  for (int io = 0; io < 4; ++io) resident += b.fs.server(io).ufs().cache().resident_blocks();
  EXPECT_GT(resident, 0u);
}

TEST(AsyncWrite, IwriteIowaitRoundTrip) {
  Bed b(1, 4);
  b.fs.create("f", b.fs.default_attrs());
  run_task(b.sim, [](Bed& bed) -> Task<void> {
    auto& c = *bed.clients[0];
    const int fd = co_await c.open("f", pfs::IoMode::kAsync);
    auto d1 = make_pattern(9, 0, 128 * 1024);
    auto d2 = make_pattern(9, 128 * 1024, 128 * 1024);
    auto h1 = co_await c.iwrite(fd, d1);
    auto h2 = co_await c.iwrite(fd, d2);
    EXPECT_EQ(c.tell(fd), 256u * 1024);  // pointer advanced at issue
    EXPECT_EQ(co_await c.iowait(h1), 128u * 1024);
    EXPECT_EQ(co_await c.iowait(h2), 128u * 1024);
    std::vector<std::byte> back(256 * 1024);
    co_await c.seek(fd, 0);
    co_await c.read(fd, back);
    EXPECT_TRUE(check_pattern(back, 9, 0));
    c.close(fd);
  }(b));
}

TEST(AsyncWrite, RejectsCoordinatedModes) {
  Bed b;
  b.populate(256 * 1024);
  run_task(b.sim, [](Bed& bed) -> Task<void> {
    auto& c = *bed.clients[0];
    const int fd = co_await c.open("f", pfs::IoMode::kSync);
    std::vector<std::byte> data(64 * 1024);
    bool threw = false;
    try {
      co_await c.iwrite(fd, data);
    } catch (const std::logic_error&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
    c.close(fd);
  }(b));
}

// --- adaptive prefetch throttle ---

TEST(AdaptivePrefetch, ThrottlesOnUselessStreakAndRecovers) {
  Bed b(1, 4);
  b.populate(8 * 1024 * 1024);
  prefetch::PrefetchConfig cfg;
  cfg.adaptive = true;
  cfg.adaptive_cutoff = 3;
  cfg.adaptive_probe_period = 4;
  cfg.max_buffers_per_file = 2;  // small cap: useless prefetches surface fast
  auto engine = prefetch::attach_prefetcher(*b.clients[0], cfg);
  run_task(b.sim, [](Bed& bed, prefetch::PrefetchEngine& eng) -> Task<void> {
    auto& c = *bed.clients[0];
    const int fd = co_await c.open("f", pfs::IoMode::kAsync);
    std::vector<std::byte> buf(64 * 1024);
    // Hostile phase: stride past every sequential prediction.
    sim::FileOffset pos = 0;
    for (int i = 0; i < 12; ++i) {
      co_await c.seek(fd, pos);
      co_await c.read(fd, buf);
      co_await bed.sim.delay(0.05);
      pos += 3 * 64 * 1024;
    }
    EXPECT_TRUE(eng.throttled(fd));
    EXPECT_GT(eng.stats().throttled_skips, 0u);
    const auto issued_during_hostile = eng.stats().issued;
    // Friendly phase: sequential scan; a probe eventually hits and
    // prefetching resumes.
    co_await c.seek(fd, 0);
    for (int i = 0; i < 16; ++i) {
      co_await c.read(fd, buf);
      co_await bed.sim.delay(0.05);
    }
    EXPECT_FALSE(eng.throttled(fd));
    EXPECT_GT(eng.stats().issued, issued_during_hostile);
    EXPECT_GT(eng.stats().hits_ready + eng.stats().hits_in_flight, 0u);
    c.close(fd);
  }(b, *engine));
}

TEST(AdaptivePrefetch, DisabledByDefaultNeverThrottles) {
  Bed b(1, 4);
  b.populate(4 * 1024 * 1024);
  auto engine = prefetch::attach_prefetcher(*b.clients[0], prefetch::PrefetchConfig{});
  run_task(b.sim, [](Bed& bed, prefetch::PrefetchEngine& eng) -> Task<void> {
    auto& c = *bed.clients[0];
    const int fd = co_await c.open("f", pfs::IoMode::kAsync);
    std::vector<std::byte> buf(64 * 1024);
    sim::FileOffset pos = 0;
    for (int i = 0; i < 10; ++i) {
      co_await c.seek(fd, pos);
      co_await c.read(fd, buf);
      pos += 3 * 64 * 1024;
    }
    EXPECT_FALSE(eng.throttled(fd));
    EXPECT_EQ(eng.stats().throttled_skips, 0u);
    c.close(fd);
  }(b, *engine));
}

// --- buffered workloads with server readahead, end to end ---

TEST(ServerReadahead, BufferedWorkloadVerifiesAndReadahead) {
  workload::MachineSpec m;
  m.ncompute = 4;
  m.nio = 4;
  m.pfs.ufs.readahead_blocks = 2;
  workload::Experiment e(m);
  workload::WorkloadSpec w;
  w.mode = pfs::IoMode::kRecord;
  w.request_size = 64 * 1024;
  w.file_size = 2 * 1024 * 1024;
  w.use_fastpath = false;
  w.verify = true;
  const auto res = e.run(w);
  EXPECT_EQ(res.verify_failures, 0u);
  EXPECT_EQ(res.total_bytes, 2u * 1024 * 1024);
}

}  // namespace
}  // namespace ppfs
