// Tests for the experiment driver and report utilities — these validate
// the harness the paper-table benches are built on.
#include <gtest/gtest.h>

#include <limits>

#include "workload/experiment.hpp"
#include "workload/generator.hpp"
#include "workload/report.hpp"

namespace ppfs::workload {
namespace {

using pfs::IoMode;

MachineSpec small_machine() {
  MachineSpec m;
  m.ncompute = 4;
  m.nio = 4;
  return m;
}

WorkloadSpec small_spec(IoMode mode) {
  WorkloadSpec w;
  w.mode = mode;
  w.request_size = 64 * 1024;
  w.file_size = 2 * 1024 * 1024;
  w.verify = true;
  return w;
}

TEST(Experiment, RecordModeDeliversWholeFileVerified) {
  Experiment e(small_machine());
  const auto res = e.run(small_spec(IoMode::kRecord));
  EXPECT_EQ(res.total_bytes, 2u * 1024 * 1024);
  EXPECT_EQ(res.reads, 32u);  // 8 rounds x 4 nodes
  EXPECT_EQ(res.verify_failures, 0u);
  EXPECT_GT(res.observed_read_bw_mbs, 0.0);
  EXPECT_GT(res.wall_elapsed, 0.0);
  EXPECT_EQ(res.node_read_time.size(), 4u);
}

TEST(Experiment, EveryModeRunsCleanAndVerifies) {
  Experiment e(small_machine());
  for (auto mode : pfs::all_io_modes()) {
    const auto res = e.run(small_spec(mode));
    EXPECT_EQ(res.verify_failures, 0u) << to_string(mode);
    EXPECT_GT(res.total_bytes, 0u) << to_string(mode);
    if (mode == IoMode::kGlobal) {
      // Every node reads the whole file.
      EXPECT_EQ(res.total_bytes, 4u * 2 * 1024 * 1024);
    } else {
      EXPECT_EQ(res.total_bytes, 2u * 1024 * 1024);
    }
  }
}

TEST(Experiment, SeparateFilesWorkloadVerifies) {
  Experiment e(small_machine());
  auto w = small_spec(IoMode::kAsync);
  w.separate_files = true;
  const auto res = e.run(w);
  EXPECT_EQ(res.verify_failures, 0u);
  EXPECT_EQ(res.total_bytes, 2u * 1024 * 1024);
}

TEST(Experiment, PrefetchingCountsHitsInSteadyState) {
  Experiment e(small_machine());
  auto w = small_spec(IoMode::kRecord);
  w.prefetch = true;
  w.compute_delay = 0.1;
  const auto res = e.run(w);
  EXPECT_EQ(res.verify_failures, 0u);
  // 8 reads per node: first misses, the rest should hit.
  EXPECT_EQ(res.prefetch.misses, 4u);
  EXPECT_EQ(res.prefetch.hits_ready + res.prefetch.hits_in_flight, 28u);
}

TEST(Experiment, PrefetchWithDelayRaisesObservedBandwidth) {
  // The paper's central claim, at harness level.
  Experiment e(small_machine());
  auto base = small_spec(IoMode::kRecord);
  base.file_size = 4 * 1024 * 1024;
  base.compute_delay = 0.05;
  auto pf = base;
  pf.prefetch = true;
  const auto without = e.run(base);
  const auto with = e.run(pf);
  EXPECT_GT(with.observed_read_bw_mbs, without.observed_read_bw_mbs * 1.5);
}

TEST(Experiment, NoDelayPrefetchDoesNotWin) {
  Experiment e(small_machine());
  auto base = small_spec(IoMode::kRecord);
  auto pf = base;
  pf.prefetch = true;
  const auto without = e.run(base);
  const auto with = e.run(pf);
  EXPECT_LE(with.observed_read_bw_mbs, without.observed_read_bw_mbs * 1.05);
}

TEST(Experiment, DeterministicAcrossRuns) {
  Experiment e(small_machine());
  const auto a = e.run(small_spec(IoMode::kRecord));
  const auto b = e.run(small_spec(IoMode::kRecord));
  EXPECT_DOUBLE_EQ(a.wall_elapsed, b.wall_elapsed);
  EXPECT_DOUBLE_EQ(a.observed_read_bw_mbs, b.observed_read_bw_mbs);
}

TEST(Experiment, CustomStripeAttrsRespected) {
  Experiment e(small_machine());
  auto w = small_spec(IoMode::kRecord);
  pfs::StripeAttrs attrs;
  attrs.stripe_unit = 256 * 1024;
  attrs.stripe_group = {0};  // everything on one I/O node
  w.attrs = attrs;
  const auto narrow = e.run(w);
  const auto wide = e.run(small_spec(IoMode::kRecord));
  EXPECT_EQ(narrow.verify_failures, 0u);
  // One I/O node must be slower than four.
  EXPECT_LT(narrow.observed_read_bw_mbs, wide.observed_read_bw_mbs);
}

TEST(Experiment, ReadAccessTimeGrowsWithRequestSize) {
  Experiment e(small_machine());
  const auto t64 = e.read_access_time(64 * 1024);
  const auto t256 = e.read_access_time(256 * 1024);
  const auto t1m = e.read_access_time(1024 * 1024);
  EXPECT_GT(t64, 0.0);
  EXPECT_LT(t64, t256);
  EXPECT_LT(t256, t1m);
}

TEST(Experiment, TooSmallFileThrows) {
  Experiment e(small_machine());
  auto w = small_spec(IoMode::kRecord);
  w.file_size = w.request_size;  // less than one request per node
  EXPECT_THROW(e.run(w), std::invalid_argument);
}

TEST(Pattern, MismatchDetection) {
  std::vector<std::byte> buf(100);
  fill_pattern(7, 1000, buf);
  EXPECT_EQ(find_pattern_mismatch(7, 1000, buf), kNoMismatch);
  EXPECT_NE(find_pattern_mismatch(8, 1000, buf), kNoMismatch);
  buf[42] = static_cast<std::byte>(static_cast<unsigned char>(buf[42]) ^ 0xff);
  EXPECT_EQ(find_pattern_mismatch(7, 1000, buf), 42u);
}

TEST(Report, TextTableAlignsColumns) {
  TextTable t({"Request", "BW (MB/s)"});
  t.add_row({"64KB", "3.10"});
  t.add_row({"1MB", "12.75"});
  t.add_rule();
  t.add_row({"total", "15.85"});
  const auto s = t.str();
  EXPECT_NE(s.find("Request"), std::string::npos);
  EXPECT_NE(s.find("64KB"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  // Every line has the same length (alignment).
  std::size_t line_len = std::string::npos;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto nl = s.find('\n', pos);
    const auto len = nl - pos;
    if (line_len == std::string::npos) line_len = len;
    EXPECT_EQ(len, line_len);
    pos = nl + 1;
  }
}

TEST(Report, TextTableRejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Report, ByteFormatting) {
  EXPECT_EQ(fmt_bytes(64 * 1024), "64KB");
  EXPECT_EQ(fmt_bytes(1024 * 1024), "1MB");
  EXPECT_EQ(fmt_bytes(8ull * 1024 * 1024 * 1024), "8GB");
  EXPECT_EQ(fmt_bytes(1000), "1000B");
  EXPECT_EQ(fmt_bytes(1536), "1536B");
}

TEST(Report, NumberFormatting) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_time(0.4123), "0.412s");
  EXPECT_EQ(fmt_percent(0.875), "87.5%");
}

// Regression: a zero-op experiment (or a zero-bandwidth baseline in a
// --compare speedup) divides 0/0, and the NaN used to print as "nan"/"nan%"
// mid-table. Non-finite values now render as "n/a" / "0.0%".
TEST(Report, NonFiniteValuesDoNotPrintNan) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(fmt_double(nan), "n/a");
  EXPECT_EQ(fmt_double(inf), "n/a");
  EXPECT_EQ(fmt_double(-inf), "n/a");
  EXPECT_EQ(fmt_percent(nan), "0.0%");
  EXPECT_EQ(fmt_percent(inf), "0.0%");
  EXPECT_EQ(fmt_percent(0.0), "0.0%");
  // fmt_time rides on fmt_double, so a NaN duration degrades the same way.
  EXPECT_EQ(fmt_time(nan), "n/as");
}

}  // namespace
}  // namespace ppfs::workload
