// ppfs-lint: allow-file(ref-across-await) test idiom: coroutine referents are stack locals and the test blocks in sim.run()/run_task() before they die
// TokenWrite integration tests: byte-range token manager, client-side
// write-back caches, coherence across concurrent writers, and the write
// workloads built on top of them.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "hw/machine.hpp"
#include "pfs/client.hpp"
#include "pfs/filesystem.hpp"
#include "pfs/token.hpp"
#include "sim/simulation.hpp"
#include "sim/when_all.hpp"
#include "test_util.hpp"
#include "workload/write_workload.hpp"

namespace ppfs::pfs {
namespace {

using ppfs::test::check_pattern;
using ppfs::test::make_pattern;
using ppfs::test::run_task;
using sim::Simulation;
using sim::Task;

constexpr ByteCount kSU = 64 * 1024;

/// A simulated Paragon with the token protocol switched on.
struct TokenBed {
  explicit TokenBed(int ncompute = 4, int nio = 4, ByteCount wb_bytes = 1024 * 1024)
      : machine(sim, hw::MachineConfig::paragon(ncompute, nio)),
        fs(machine, make_params(wb_bytes)) {
    for (int r = 0; r < ncompute; ++r) {
      clients.push_back(std::make_unique<PfsClient>(fs, r, r, ncompute));
    }
  }

  static PfsParams make_params(ByteCount wb_bytes) {
    PfsParams p;
    p.write_tokens = true;
    p.write_back_bytes = wb_bytes;
    return p;
  }

  Simulation sim;
  hw::Machine machine;
  PfsFileSystem fs;
  std::vector<std::unique_ptr<PfsClient>> clients;
};

// ---------------------------------------------------------------------------
// Write-back cache basics
// ---------------------------------------------------------------------------

TEST(TokenWrite, WriteBuffersDirtyNoDataRpc) {
  TokenBed tb;
  tb.fs.create("f");
  run_task(tb.sim, [](TokenBed& t) -> Task<void> {
    auto& c = *t.clients[0];
    const int fd = co_await c.open("f", IoMode::kAsync);
    auto data = make_pattern(7, 0, kSU);
    co_await c.write(fd, data);
    c.close(fd);
  }(tb));
  const auto& ts = tb.clients[0]->token_stats();
  EXPECT_EQ(ts.wb_writes, 1u);
  EXPECT_EQ(ts.dirty_bytes, kSU);
  EXPECT_EQ(ts.flush_ops, 0u);
  // One token RPC, zero data RPCs: the write went to the local cache only.
  EXPECT_EQ(tb.clients[0]->rpc_stats().token_rpcs, 1u);
  EXPECT_EQ(tb.clients[0]->rpc_stats().data_rpcs, 0u);
  EXPECT_EQ(tb.fs.tokens().stats().grants, 1u);
}

TEST(TokenWrite, ReadYourOwnWritesFromDirtyCache) {
  TokenBed tb;
  tb.fs.create("f");
  run_task(tb.sim, [](TokenBed& t) -> Task<void> {
    auto& c = *t.clients[0];
    const int fd = co_await c.open("f", IoMode::kAsync);
    auto data = make_pattern(9, 0, kSU);
    co_await c.write(fd, data);
    std::vector<std::byte> got(kSU);
    co_await c.seek(fd, 0);
    const ByteCount n = co_await c.read(fd, got);
    EXPECT_EQ(n, kSU);
    EXPECT_TRUE(check_pattern(got, 9, 0));
    c.close(fd);
  }(tb));
  EXPECT_EQ(tb.clients[0]->token_stats().wb_read_hits, 1u);
  // The read never touched the data servers.
  EXPECT_EQ(tb.clients[0]->rpc_stats().data_rpcs, 0u);
}

TEST(TokenWrite, OverlayMergesDirtyOverServerData) {
  TokenBed tb;
  tb.fs.create("f");
  run_task(tb.sim, [](TokenBed& t) -> Task<void> {
    auto& c = *t.clients[0];
    const int fd = co_await c.open("f", IoMode::kAsync);
    // Flushed base: pattern 1 over two stripe units.
    auto base = make_pattern(1, 0, 2 * kSU);
    co_await c.write(fd, base);
    co_await c.fsync(fd);
    // Dirty overlay: pattern 2 over the middle, unflushed.
    auto mid = make_pattern(2, kSU / 2, kSU);
    co_await c.seek(fd, kSU / 2);
    co_await c.write(fd, mid);
    // A full-range read must see base / overlay / base.
    std::vector<std::byte> got(2 * kSU);
    co_await c.seek(fd, 0);
    const ByteCount n = co_await c.read(fd, got);
    EXPECT_EQ(n, 2 * kSU);
    EXPECT_TRUE(check_pattern(std::span(got).first(kSU / 2), 1, 0));
    EXPECT_TRUE(check_pattern(std::span(got).subspan(kSU / 2, kSU), 2, kSU / 2));
    EXPECT_TRUE(check_pattern(std::span(got).subspan(kSU / 2 + kSU), 1, kSU / 2 + kSU));
    c.close(fd);
  }(tb));
}

TEST(TokenWrite, FsyncFlushesAllDirty) {
  TokenBed tb;
  tb.fs.create("f");
  run_task(tb.sim, [](TokenBed& t) -> Task<void> {
    auto& c = *t.clients[0];
    const int fd = co_await c.open("f", IoMode::kAsync);
    auto data = make_pattern(3, 0, 3 * kSU);
    co_await c.write(fd, data);
    co_await c.fsync(fd);
    c.close(fd);
  }(tb));
  const auto& ts = tb.clients[0]->token_stats();
  EXPECT_EQ(ts.dirty_bytes, 0u);
  EXPECT_EQ(ts.fsync_flushes, ts.flush_ops);
  EXPECT_GE(ts.flush_ops, 1u);
  EXPECT_EQ(ts.flushed_bytes, 3 * kSU);
  // fsync flushed the data but kept the token: a second write to the same
  // range is a local grant, no new RPC.
  EXPECT_GT(tb.clients[0]->rpc_stats().data_rpcs, 0u);
}

TEST(TokenWrite, RepeatedOwnedRangeOpsAreLocalGrants) {
  TokenBed tb;
  tb.fs.create("f");
  run_task(tb.sim, [](TokenBed& t) -> Task<void> {
    auto& c = *t.clients[0];
    const int fd = co_await c.open("f", IoMode::kAsync);
    auto data = make_pattern(4, 0, kSU);
    for (int i = 0; i < 5; ++i) {
      co_await c.seek(fd, 0);
      co_await c.write(fd, data);
    }
    c.close(fd);
  }(tb));
  EXPECT_EQ(tb.clients[0]->rpc_stats().token_rpcs, 1u);
  EXPECT_EQ(tb.clients[0]->token_stats().local_grants, 4u);
}

TEST(TokenWrite, CapacityEvictionFlushesOldestExtent) {
  // 128K dirty budget, write 4 x 64K: capacity eviction must kick in.
  TokenBed tb(4, 4, /*wb_bytes=*/2 * kSU);
  tb.fs.create("f");
  run_task(tb.sim, [](TokenBed& t) -> Task<void> {
    auto& c = *t.clients[0];
    const int fd = co_await c.open("f", IoMode::kAsync);
    for (int i = 0; i < 4; ++i) {
      auto data = make_pattern(5, ByteCount(i) * kSU, kSU);
      co_await c.seek(fd, ByteCount(i) * kSU);
      co_await c.write(fd, data);
    }
    c.close(fd);
  }(tb));
  const auto& ts = tb.clients[0]->token_stats();
  EXPECT_GE(ts.capacity_evictions, 2u);
  EXPECT_LE(ts.dirty_bytes, 2 * kSU);
  EXPECT_EQ(ts.peak_dirty_bytes, 2 * kSU + kSU);  // insert peaks before eviction
}

// ---------------------------------------------------------------------------
// Cross-client coherence
// ---------------------------------------------------------------------------

TEST(TokenWrite, ReaderRevokesWriterAndSeesFlushedBytes) {
  TokenBed tb;
  tb.fs.create("f");
  run_task(tb.sim, [](TokenBed& t) -> Task<void> {
    auto& w = *t.clients[0];
    auto& r = *t.clients[1];
    const int wfd = co_await w.open("f", IoMode::kAsync);
    auto data = make_pattern(11, 0, kSU);
    co_await w.write(wfd, data);  // buffered dirty, never fsynced
    const int rfd = co_await r.open("f", IoMode::kAsync);
    std::vector<std::byte> got(kSU);
    const ByteCount n = co_await r.read(rfd, got);
    EXPECT_EQ(n, kSU);
    EXPECT_TRUE(check_pattern(got, 11, 0));
    w.close(wfd);
    r.close(rfd);
  }(tb));
  // The read acquire revoked the writer's token; flush-before-ack pushed
  // the dirty bytes out before the reader was granted.
  EXPECT_EQ(tb.clients[0]->token_stats().revocations, 1u);
  EXPECT_EQ(tb.clients[0]->token_stats().revocation_flushes, 1u);
  EXPECT_GE(tb.clients[0]->token_stats().invalidations, 1u);
  EXPECT_EQ(tb.clients[0]->token_stats().dirty_bytes, 0u);
}

TEST(TokenWrite, ConflictingWritersSerializeWholeRecords) {
  TokenBed tb;
  tb.fs.create("f");
  run_task(tb.sim, [](TokenBed& t) -> Task<void> {
    // Both writers target the SAME record concurrently; afterwards the
    // record must match exactly one writer's pattern in full.
    auto writer = [](PfsClient& c, std::uint64_t tag) -> Task<void> {
      const int fd = co_await c.open("f", IoMode::kAsync);
      auto data = make_pattern(tag, 0, kSU);
      co_await c.write(fd, data);
      co_await c.fsync(fd);
      c.close(fd);
    };
    std::vector<Task<void>> procs;
    procs.push_back(writer(*t.clients[0], 21));
    procs.push_back(writer(*t.clients[1], 22));
    co_await sim::when_all(t.sim, std::move(procs));
    std::vector<std::byte> got(kSU);
    const int fd = co_await t.clients[2]->open("f", IoMode::kAsync);
    const ByteCount n = co_await t.clients[2]->read(fd, got);
    EXPECT_EQ(n, kSU);
    const bool is21 = check_pattern(got, 21, 0);
    const bool is22 = check_pattern(got, 22, 0);
    EXPECT_TRUE(is21 || is22) << "torn record: neither writer's bytes survived intact";
    t.clients[2]->close(fd);
  }(tb));
}

TEST(TokenWrite, PartialOverlapSplitsTokens) {
  TokenBed tb;
  tb.fs.create("f");
  run_task(tb.sim, [](TokenBed& t) -> Task<void> {
    auto& a = *t.clients[0];
    auto& b = *t.clients[1];
    const int afd = co_await a.open("f", IoMode::kAsync);
    auto wide = make_pattern(31, 0, 4 * kSU);
    co_await a.write(afd, wide);  // holds write token [0, 256K)
    // b writes the middle stripe unit only: a's token must split, a keeps
    // the non-overlapping head and tail.
    const int bfd = co_await b.open("f", IoMode::kAsync);
    co_await b.seek(bfd, kSU);
    auto mid = make_pattern(32, kSU, kSU);
    co_await b.write(bfd, mid);
    co_await a.fsync(afd);  // flush a's surviving dirty head + tail
    co_await b.fsync(bfd);
    std::vector<std::byte> got(4 * kSU);
    const int cfd = co_await t.clients[2]->open("f", IoMode::kAsync);
    const ByteCount n = co_await t.clients[2]->read(cfd, got);
    EXPECT_EQ(n, 4 * kSU);
    EXPECT_TRUE(check_pattern(std::span(got).first(kSU), 31, 0));
    EXPECT_TRUE(check_pattern(std::span(got).subspan(kSU, kSU), 32, kSU));
    EXPECT_TRUE(check_pattern(std::span(got).subspan(2 * kSU), 31, 2 * kSU));
    a.close(afd);
    b.close(bfd);
    t.clients[2]->close(cfd);
  }(tb));
  EXPECT_GE(tb.fs.tokens().stats().splits, 1u);
  // a's revocation flushed only the overlapped slice before the ack.
  EXPECT_GE(tb.clients[0]->token_stats().revocation_flushes, 1u);
}

TEST(TokenWrite, SharedReadTokensDontRevokeEachOther) {
  TokenBed tb;
  tb.fs.create("f");
  run_task(tb.sim, [](TokenBed& t) -> Task<void> {
    auto& w = *t.clients[0];
    const int wfd = co_await w.open("f", IoMode::kAsync);
    auto data = make_pattern(41, 0, 2 * kSU);
    co_await w.write(wfd, data);
    co_await w.fsync(wfd);
    w.close(wfd);
    // Two readers over the same range: read tokens are compatible.
    auto reader = [](PfsClient& c) -> Task<void> {
      const int fd = co_await c.open("f", IoMode::kAsync);
      std::vector<std::byte> got(2 * kSU);
      const ByteCount n = co_await c.read(fd, got);
      EXPECT_EQ(n, 2 * kSU);
      EXPECT_TRUE(check_pattern(got, 41, 0));
      c.close(fd);
    };
    std::vector<Task<void>> procs;
    procs.push_back(reader(*t.clients[1]));
    procs.push_back(reader(*t.clients[2]));
    co_await sim::when_all(t.sim, std::move(procs));
  }(tb));
  EXPECT_EQ(tb.clients[1]->token_stats().revocations, 0u);
  EXPECT_EQ(tb.clients[2]->token_stats().revocations, 0u);
}

TEST(TokenWrite, ManagerStateMatchesClientHoldings) {
  TokenBed tb;
  tb.fs.create("f");
  run_task(tb.sim, [](TokenBed& t) -> Task<void> {
    auto& c = *t.clients[0];
    const int fd = co_await c.open("f", IoMode::kAsync);
    auto data = make_pattern(51, 0, kSU);
    co_await c.write(fd, data);
    co_await c.fsync(fd);
    c.close(fd);
  }(tb));
  const FileId f = tb.fs.lookup("f")->id;
  EXPECT_EQ(tb.fs.tokens().granted_bytes(f, TokenMode::kWrite), kSU);
  EXPECT_EQ(tb.fs.tokens().write_granted_bytes(), kSU);
  EXPECT_EQ(tb.fs.tokens().grant_count(f), 1u);
}

TEST(TokenWrite, DefaultOffKeepsCountersZero) {
  Simulation sim;
  hw::Machine machine(sim, hw::MachineConfig::paragon(4, 4));
  PfsFileSystem fs(machine, PfsParams{});  // write_tokens defaults off
  PfsClient c(fs, 0, 0, 1);
  fs.create("f");
  run_task(sim, [](PfsClient& cl) -> Task<void> {
    const int fd = co_await cl.open("f", IoMode::kAsync);
    auto data = make_pattern(61, 0, kSU);
    co_await cl.write(fd, data);
    co_await cl.fsync(fd);  // no-op flush in write-through mode
    std::vector<std::byte> got(kSU);
    co_await cl.seek(fd, 0);
    const ByteCount n = co_await cl.read(fd, got);
    EXPECT_EQ(n, kSU);
    EXPECT_TRUE(check_pattern(got, 61, 0));
    cl.close(fd);
  }(c));
  EXPECT_EQ(c.rpc_stats().token_rpcs, 0u);
  EXPECT_EQ(c.token_stats().wb_writes, 0u);
  EXPECT_EQ(c.token_stats().flush_ops, 0u);
  EXPECT_EQ(fs.tokens().stats().acquires, 0u);
}

}  // namespace
}  // namespace ppfs::pfs

// ---------------------------------------------------------------------------
// Write workloads (workload layer, full stack)
// ---------------------------------------------------------------------------

namespace ppfs::workload {
namespace {

TEST(WriteWorkload, CheckpointOwnSlotsVerifiesClean) {
  WriteWorkloadSpec spec;
  spec.kind = WriteWorkloadKind::kCheckpoint;
  spec.writers = 4;
  spec.rounds = 4;
  const auto r = run_write_workload(spec);
  EXPECT_EQ(r.verify_failures, 0u);
  EXPECT_EQ(r.writes, 16u);
  EXPECT_EQ(r.bytes_written, 16u * spec.request_size);
  EXPECT_EQ(r.reads, 16u);  // each record cross-checked by a peer
  EXPECT_GT(r.token_rpcs, 0u);
  EXPECT_GT(r.wb_writes, 0u);
  EXPECT_GT(r.wb_flush_ops, 0u);
}

TEST(WriteWorkload, CheckpointConflictingIsSequentiallyConsistent) {
  WriteWorkloadSpec spec;
  spec.kind = WriteWorkloadKind::kCheckpoint;
  spec.writers = 4;
  spec.rounds = 4;
  spec.conflicting = true;
  const auto r = run_write_workload(spec);
  EXPECT_EQ(r.verify_failures, 0u) << "a conflicting-range record was torn";
  EXPECT_GT(r.token_revocations, 0u);
}

TEST(WriteWorkload, ProducerConsumerCoherenceViaRevocation) {
  WriteWorkloadSpec spec;
  spec.kind = WriteWorkloadKind::kProducerConsumer;
  spec.writers = 2;
  spec.rounds = 6;
  const auto r = run_write_workload(spec);
  EXPECT_EQ(r.verify_failures, 0u);
  // The producer never fsyncs: every record the consumer saw was pushed
  // out by a revocation flush, not a volunteer flush.
  EXPECT_EQ(r.wb_revocation_flushes, 6u);
  EXPECT_EQ(r.wb_fsync_flushes, 0u);
  EXPECT_EQ(r.reads, 6u);
}

TEST(WriteWorkload, MixedTenancyRunsClean) {
  WriteWorkloadSpec spec;
  spec.kind = WriteWorkloadKind::kMixed;
  spec.write_fraction = 0.5;
  spec.tenants = 4;
  spec.requests_per_client = 16;
  const auto r = run_write_workload(spec);
  EXPECT_EQ(r.faults.app_errors, 0u);
  EXPECT_GT(r.writes, 0u);
  EXPECT_GT(r.reads, 0u);
  EXPECT_GT(r.token_rpcs, 0u);
}

TEST(WriteWorkload, DeterministicDigests) {
  WriteWorkloadSpec spec;
  spec.kind = WriteWorkloadKind::kCheckpoint;
  spec.writers = 8;
  spec.rounds = 3;
  spec.machine.ncompute = 8;
  const auto a = run_write_workload(spec);
  const auto b = run_write_workload(spec);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
}

TEST(WriteWorkload, ConflictingDiffersFromOwnSlots) {
  WriteWorkloadSpec a;
  a.kind = WriteWorkloadKind::kCheckpoint;
  a.writers = 4;
  a.rounds = 4;
  WriteWorkloadSpec b = a;
  b.conflicting = true;
  EXPECT_NE(run_write_workload(a).digest, run_write_workload(b).digest);
}

TEST(WriteWorkload, RejectsBadSpecs) {
  WriteWorkloadSpec spec;
  spec.writers = 0;
  EXPECT_THROW((void)run_write_workload(spec), std::invalid_argument);
  spec.writers = 1;
  spec.kind = WriteWorkloadKind::kProducerConsumer;
  EXPECT_THROW((void)run_write_workload(spec), std::invalid_argument);
  spec.writers = 2;
  spec.request_size = 0;
  EXPECT_THROW((void)run_write_workload(spec), std::invalid_argument);
}

}  // namespace
}  // namespace ppfs::workload
