// ppfs-lint: allow-file(ref-across-await) test idiom: coroutine referents are stack locals and the test blocks in sim.run()/run_task() before they die
// Unit tests for the disk and RAID models.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "hw/disk.hpp"
#include "hw/raid.hpp"
#include "sim/simulation.hpp"
#include "sim/when_all.hpp"

namespace ppfs::hw {
namespace {

using sim::Simulation;
using sim::SimTime;
using sim::Task;

SimTime timed_transfer(Simulation& sim, Disk& d, std::uint64_t lba, sim::ByteCount bytes) {
  SimTime elapsed = -1;
  sim.spawn([](Simulation& s, Disk& disk, std::uint64_t l, sim::ByteCount b,
               SimTime& out) -> Task<void> {
    const SimTime start = s.now();
    co_await disk.transfer(l, b, /*write=*/false);
    out = s.now() - start;
  }(sim, d, lba, bytes, elapsed));
  sim.run();
  return elapsed;
}

TEST(DiskParams, GeometryDerived) {
  DiskParams p = DiskParams::paragon_era();
  EXPECT_GT(p.capacity_bytes(), 1'000'000'000u);  // ~1.3 GB drive
  EXPECT_NEAR(p.rotation_period_s(), 60.0 / 4002.0, 1e-12);
  // Media rate = one track per revolution.
  EXPECT_NEAR(p.media_rate_bytes_per_s(), 72 * 512 / (60.0 / 4002.0), 1e-6);
}

TEST(DiskParams, SeekCurveMonotone) {
  DiskParams p;
  EXPECT_EQ(p.seek_time_s(0), 0.0);
  double prev = 0.0;
  for (std::uint64_t d : {1u, 2u, 10u, 100u, 500u, 1000u, 1900u}) {
    const double t = p.seek_time_s(d);
    EXPECT_GT(t, prev);
    prev = t;
  }
  // Full-stroke seek lands in the tens of milliseconds for this era.
  EXPECT_GT(p.seek_time_s(p.cylinders - 1), 0.005);
  EXPECT_LT(p.seek_time_s(p.cylinders - 1), 0.050);
}

TEST(Disk, FirstAccessPaysSeekAndRotation) {
  Simulation sim;
  Disk d(sim, "d0", DiskParams::paragon_era());
  const auto t = timed_transfer(sim, d, 500'000, 64 * 1024);
  const DiskParams p = d.params();
  const double transfer_only =
      p.controller_overhead_s + 64.0 * 1024 / p.media_rate_bytes_per_s();
  EXPECT_GT(t, transfer_only);  // must include mechanical latency
  EXPECT_EQ(d.ops(), 1u);
  EXPECT_EQ(d.bytes_transferred(), 64u * 1024);
}

TEST(Disk, SequentialReadSkipsMechanicalLatency) {
  Simulation sim;
  Disk d(sim, "d0", DiskParams::paragon_era());
  const auto first = timed_transfer(sim, d, 1000, 64 * 1024);
  // Continues exactly where the previous transfer ended: track-cache hit.
  const std::uint64_t next_lba = 1000 + 64 * 1024 / 512;
  const auto second = timed_transfer(sim, d, next_lba, 64 * 1024);
  EXPECT_LT(second, first);
  const DiskParams p = d.params();
  EXPECT_NEAR(second, p.controller_overhead_s + 64.0 * 1024 / p.media_rate_bytes_per_s(),
              1e-9);
  EXPECT_EQ(d.sequential_hits(), 1u);
}

TEST(Disk, AccessPastEndThrows) {
  Simulation sim;
  Disk d(sim, "d0", DiskParams::paragon_era());
  bool threw = false;
  sim.spawn([](Disk& disk, bool& flag) -> Task<void> {
    try {
      co_await disk.transfer(disk.params().total_sectors(), 512, false);
    } catch (const std::out_of_range&) {
      flag = true;
    }
  }(d, threw));
  sim.run();
  EXPECT_TRUE(threw);
}

TEST(Disk, ConcurrentRequestsSerializeOnChannel) {
  Simulation sim;
  Disk d(sim, "d0", DiskParams::paragon_era());
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Simulation& s, Disk& disk, std::vector<SimTime>& out,
                 std::uint64_t lba) -> Task<void> {
      co_await disk.transfer(lba, 32 * 1024, false);
      out.push_back(s.now());
    }(sim, d, completions, 10'000ull * (i + 1)));
  }
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_LT(completions[0], completions[1]);
  EXPECT_LT(completions[1], completions[2]);
  EXPECT_NEAR(d.busy_time(), completions[2], 1e-9);  // channel never idle
}

TEST(Disk, LargerTransfersTakeLonger) {
  Simulation sim;
  Disk d(sim, "d0", DiskParams::paragon_era());
  const auto small = timed_transfer(sim, d, 0, 8 * 1024);
  Simulation sim2;
  Disk d2(sim2, "d1", DiskParams::paragon_era());
  const auto large = timed_transfer(sim2, d2, 0, 1024 * 1024);
  EXPECT_GT(large, small);
}

TEST(Raid, PresetsDifferOnlyInBusBandwidth) {
  const auto s8 = RaidParams::scsi8();
  const auto s16 = RaidParams::scsi16();
  EXPECT_DOUBLE_EQ(s16.bus_bandwidth, 4.0 * s8.bus_bandwidth);
  EXPECT_EQ(s8.data_disks, s16.data_disks);
}

TEST(Raid, HasParityMember) {
  Simulation sim;
  RaidArray r(sim, "r0", RaidParams::scsi8());
  EXPECT_EQ(r.member_count(), 5u);  // 4 data + parity
  EXPECT_EQ(r.capacity_bytes(), r.member(0).params().capacity_bytes() * 4);
}

TEST(Raid, ReadLeavesParityIdle) {
  Simulation sim;
  RaidArray r(sim, "r0", RaidParams::scsi8());
  sim.spawn([](RaidArray& raid) -> Task<void> {
    co_await raid.transfer(0, 256 * 1024, /*write=*/false);
  }(r));
  sim.run();
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(r.member(i).ops(), 1u);
  EXPECT_EQ(r.member(4).ops(), 0u);  // parity
}

TEST(Raid, WriteEngagesParity) {
  Simulation sim;
  RaidArray r(sim, "r0", RaidParams::scsi8());
  sim.spawn([](RaidArray& raid) -> Task<void> {
    co_await raid.transfer(0, 256 * 1024, /*write=*/true);
  }(r));
  sim.run();
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(r.member(i).ops(), 1u);
}

TEST(Raid, StripingBeatsSingleDiskOnLargeTransfers) {
  // A large read through the array should be faster than through one member
  // with the same parameters (4 spindles stream in parallel).
  const sim::ByteCount bytes = 2 * 1024 * 1024;
  Simulation sim_raid;
  RaidArray r(sim_raid, "r0", RaidParams::scsi8());
  SimTime t_raid = -1;
  sim_raid.spawn([](Simulation& s, RaidArray& raid, sim::ByteCount b, SimTime& out) -> Task<void> {
    const SimTime start = s.now();
    co_await raid.transfer(0, b, false);
    out = s.now() - start;
  }(sim_raid, r, bytes, t_raid));
  sim_raid.run();

  Simulation sim_disk;
  Disk d(sim_disk, "d0", DiskParams::paragon_era());
  const auto t_disk = timed_transfer(sim_disk, d, 0, bytes);
  EXPECT_LT(t_raid, t_disk);
}

TEST(Raid, BusCapsThroughput) {
  // With a huge transfer, elapsed time must be at least bytes/bus_bandwidth.
  const sim::ByteCount bytes = 8 * 1024 * 1024;
  Simulation sim;
  RaidArray r(sim, "r0", RaidParams::scsi8());
  SimTime t = -1;
  sim.spawn([](Simulation& s, RaidArray& raid, sim::ByteCount b, SimTime& out) -> Task<void> {
    const SimTime start = s.now();
    co_await raid.transfer(0, b, false);
    out = s.now() - start;
  }(sim, r, bytes, t));
  sim.run();
  EXPECT_GE(t, static_cast<double>(bytes) / r.params().bus_bandwidth);
}

TEST(Raid, Scsi16FasterThanScsi8ForBigTransfers) {
  const sim::ByteCount bytes = 8 * 1024 * 1024;
  auto run_one = [&](RaidParams p) {
    Simulation sim;
    RaidArray r(sim, "r", p);
    SimTime t = -1;
    sim.spawn([](Simulation& s, RaidArray& raid, sim::ByteCount b, SimTime& out) -> Task<void> {
      const SimTime start = s.now();
      co_await raid.transfer(0, b, false);
      out = s.now() - start;
    }(sim, r, bytes, t));
    sim.run();
    return t;
  };
  EXPECT_LT(run_one(RaidParams::scsi16()), run_one(RaidParams::scsi8()));
}

TEST(Raid, ZeroByteTransferCompletesInstantly) {
  Simulation sim;
  RaidArray r(sim, "r0", RaidParams::scsi8());
  SimTime t = -1;
  sim.spawn([](Simulation& s, RaidArray& raid, SimTime& out) -> Task<void> {
    const SimTime start = s.now();
    co_await raid.transfer(0, 0, false);
    out = s.now() - start;
  }(sim, r, t));
  sim.run();
  EXPECT_DOUBLE_EQ(t, 0.0);
  EXPECT_EQ(r.ops(), 0u);
}

}  // namespace
}  // namespace ppfs::hw
