// ppfs-lint: allow-file(ref-across-await) test idiom: coroutine referents are stack locals and the test blocks in sim.run()/run_task() before they die
// Fault injection and recovery across the stack: RAID degraded-mode reads,
// the client RPC reliability envelope (retry/backoff/recovery-wait), fault
// plan determinism, and the SimCheck fault-conservation ledger.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "fault/error.hpp"
#include "fault/plan.hpp"
#include "fault/retry.hpp"
#include "sim/channel.hpp"
#include "sim/check/audit.hpp"
#include "sim/event.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "test_util.hpp"
#include "workload/experiment.hpp"
#include "workload/write_workload.hpp"

namespace ppfs {
namespace {

using workload::Experiment;
using workload::ExperimentResult;
using workload::MachineSpec;
using workload::WorkloadSpec;

WorkloadSpec small_verified_workload(sim::ByteCount file_size = 2 * 1024 * 1024) {
  WorkloadSpec w;
  w.file_size = file_size;
  w.request_size = 64 * 1024;
  w.verify = true;
  return w;
}

// --- RAID degraded mode -----------------------------------------------------

TEST(FaultRecovery, DegradedRaidReadsAreByteIdenticalToHealthy) {
  // One failed data disk in EVERY array; parity reconstruction must keep
  // each read byte-correct with zero application-visible errors.
  Experiment exp;
  auto w = small_verified_workload();
  w.faults = fault::parse_plan("diskfail:io=all,member=1,at=0");
  const ExperimentResult degraded = exp.run(w);

  EXPECT_EQ(degraded.verify_failures, 0u);
  EXPECT_EQ(degraded.faults.app_errors, 0u);
  EXPECT_GT(degraded.faults.reconstructed_reads, 0u);

  auto healthy_spec = w;
  healthy_spec.faults = fault::FaultPlan{};
  const ExperimentResult healthy = exp.run(healthy_spec);
  EXPECT_EQ(degraded.total_bytes, healthy.total_bytes);
  EXPECT_EQ(degraded.reads, healthy.reads);
  // Reconstruction costs time: the degraded run cannot be faster.
  EXPECT_GE(degraded.wall_elapsed, healthy.wall_elapsed);
}

TEST(FaultRecovery, DegradedRunDigestIsStableAcrossRuns) {
  Experiment exp;
  auto w = small_verified_workload();
  w.faults = fault::parse_plan("diskfail:io=all,member=0,at=0");
  const ExperimentResult a = exp.run(w);
  const ExperimentResult b = exp.run(w);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
}

TEST(FaultRecovery, DoubleDiskFailureIsTerminalNotHang) {
  // Two lost data members defeat single-parity reconstruction: reads of
  // that array must surface typed errors (bounded by the retry budget)
  // while the run itself completes.
  MachineSpec spec;
  spec.pfs.retry.total_budget_s = 0.1;
  Experiment exp(spec);
  auto w = small_verified_workload();
  w.faults = fault::parse_plan("diskfail:io=1,member=0,at=0;diskfail:io=1,member=2,at=0");
  const ExperimentResult r = exp.run(w);
  EXPECT_GT(r.faults.app_errors, 0u);
  EXPECT_GT(r.faults.terminal_errors, 0u);
  EXPECT_EQ(r.verify_failures, 0u);  // failed reads are not verified
  EXPECT_LT(r.total_bytes, w.file_size);
}

// --- transient disk errors --------------------------------------------------

TEST(FaultRecovery, TransientDiskErrorsAreRetriedToSuccess) {
  Experiment exp;
  auto w = small_verified_workload();
  w.faults = fault::parse_plan("transient:io=all,from=0,until=1.0,max=2");
  const ExperimentResult r = exp.run(w);
  EXPECT_GT(r.faults.disk_transients, 0u);
  EXPECT_GT(r.faults.rpc_retries, 0u);
  EXPECT_GT(r.faults.backoff_time, 0.0);
  EXPECT_EQ(r.faults.app_errors, 0u);
  EXPECT_EQ(r.verify_failures, 0u);
  EXPECT_EQ(r.total_bytes, w.file_size);
}

// --- I/O node crash/restart -------------------------------------------------

TEST(FaultRecovery, CrashOutageWithinBudgetIsAbsorbed) {
  Experiment exp;
  auto w = small_verified_workload(4 * 1024 * 1024);
  w.compute_delay = 0.002;
  w.faults = fault::parse_plan("crash:io=1,at=0.02,outage=0.08");
  const ExperimentResult r = exp.run(w);
  EXPECT_GT(r.faults.rpc_down_waits, 0u);
  EXPECT_GT(r.faults.recovery_wait_time, 0.0);
  EXPECT_EQ(r.faults.rpc_timeouts, 0u);
  EXPECT_EQ(r.faults.app_errors, 0u);
  EXPECT_EQ(r.verify_failures, 0u);
  EXPECT_EQ(r.total_bytes, w.file_size);
}

TEST(FaultRecovery, CrashOutagePastDeadlineGivesTypedErrorNotHang) {
  MachineSpec spec;
  spec.pfs.retry.total_budget_s = 0.05;
  Experiment exp(spec);
  auto w = small_verified_workload();
  w.faults = fault::parse_plan("crash:io=1,at=0,outage=0.5");
  const ExperimentResult r = exp.run(w);
  EXPECT_GT(r.faults.rpc_timeouts, 0u);
  EXPECT_GT(r.faults.terminal_errors, 0u);
  EXPECT_GT(r.faults.app_errors, 0u);
  EXPECT_LT(r.total_bytes, w.file_size);
  // The unaffected I/O nodes' data still verifies clean.
  EXPECT_EQ(r.verify_failures, 0u);
}

TEST(FaultRecovery, CrashDuringPrefetchShedsBuffersAndRecovers) {
  Experiment exp;
  auto w = small_verified_workload(4 * 1024 * 1024);
  w.prefetch = true;
  w.prefetch_cfg.depth = 2;   // keeps a buffer resident at fault time
  w.compute_delay = 0.01;     // steady-state prefetching before the crash
  w.faults = fault::parse_plan("crash:io=1,at=0.1,outage=0.08");
  const ExperimentResult r = exp.run(w);
  EXPECT_GT(r.prefetch.fault_pauses, 0u);
  EXPECT_GT(r.prefetch.fault_skips, 0u);
  EXPECT_GT(r.prefetch.shed, 0u);
  EXPECT_EQ(r.faults.app_errors, 0u);
  EXPECT_EQ(r.verify_failures, 0u);
  EXPECT_EQ(r.total_bytes, w.file_size);
}

TEST(FaultRecovery, CrashEpochInvalidatesInFlightPrefetchBuffers) {
  // A crash bumps the mount's topology epoch; prefetch replies stamped in
  // the dead epoch must be refused at serve time (and re-read from a live
  // epoch) rather than served as stale bytes.
  Experiment exp;
  auto w = small_verified_workload(4 * 1024 * 1024);
  w.prefetch = true;
  w.prefetch_cfg.depth = 2;
  w.compute_delay = 0.01;
  w.faults = fault::parse_plan("crash:io=1,at=0.1,outage=0.08");
  const ExperimentResult r = exp.run(w);
  EXPECT_GT(r.prefetch.epoch_discarded, 0u);
  EXPECT_EQ(r.faults.stale_epoch_discards, r.prefetch.epoch_discarded);
  // Every discarded buffer was replaced by a live-epoch read: bytes intact.
  EXPECT_EQ(r.faults.app_errors, 0u);
  EXPECT_EQ(r.verify_failures, 0u);
  EXPECT_EQ(r.total_bytes, w.file_size);
  // The discard count is part of the deterministic schedule.
  const ExperimentResult r2 = exp.run(w);
  EXPECT_EQ(r2.prefetch.epoch_discarded, r.prefetch.epoch_discarded);
  EXPECT_EQ(r2.digest, r.digest);
}

// --- chaos mode -------------------------------------------------------------

TEST(FaultRecovery, ChaosPlanIsDeterministicAndSurvivable) {
  Experiment exp;
  auto w = small_verified_workload(4 * 1024 * 1024);
  w.compute_delay = 0.002;
  w.faults = fault::parse_plan("seed=42,events=6,horizon=0.3");
  const ExperimentResult a = exp.run(w);
  const ExperimentResult b = exp.run(w);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_GT(a.faults.injected_events, 0u);
  EXPECT_EQ(a.faults.app_errors, 0u);  // chaos faults are survivable by construction
  EXPECT_EQ(a.verify_failures, 0u);
  EXPECT_EQ(a.total_bytes, w.file_size);
}

// --- TokenWrite under faults ------------------------------------------------

workload::WriteWorkloadSpec token_crash_spec() {
  workload::WriteWorkloadSpec spec;
  spec.kind = workload::WriteWorkloadKind::kCheckpoint;
  spec.writers = 4;
  spec.rounds = 6;
  spec.compute_delay = 0.002;  // stretch the run across the outage window
  return spec;
}

TEST(FaultRecovery, ServerCrashWithOutstandingWriteTokensRecovers) {
  // An I/O node crashes while every writer holds a write token over dirty
  // buffered data. Token state lives with the metadata service and
  // survives; the flushes that hit the downed server must ride the retry
  // envelope and land after the outage — bytes intact, nothing torn.
  auto spec = token_crash_spec();
  spec.faults = fault::parse_plan("crash:io=1,at=0.02,outage=0.05");
  const ExperimentResult r = workload::run_write_workload(spec);
  EXPECT_EQ(r.verify_failures, 0u);
  EXPECT_EQ(r.faults.app_errors, 0u);
  EXPECT_EQ(r.faults.terminal_errors, 0u);
  EXPECT_EQ(r.writes, 24u);  // every record landed despite the outage
  EXPECT_GT(r.faults.injected_events, 0u);
}

TEST(FaultRecovery, TokenCrashReplayIsDeterministicAcrossRuns) {
  auto spec = token_crash_spec();
  spec.conflicting = true;  // revocation flushes race the outage window
  spec.faults = fault::parse_plan("crash:io=0,at=0.01,outage=0.04");
  const ExperimentResult a = workload::run_write_workload(spec);
  const ExperimentResult b = workload::run_write_workload(spec);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.verify_failures, 0u);
  EXPECT_EQ(a.token_revocations, b.token_revocations);
  EXPECT_EQ(a.wb_flush_ops, b.wb_flush_ops);
}

TEST(FaultRecovery, TokenWriteChaosSeedsReplayDeterministically) {
  // Chaos plans draw crash/transient events from a seeded stream. For each
  // seed the write workload must produce an identical digest twice over,
  // verify byte-exact, and absorb every injected fault.
  for (const char* plan : {"seed=7,events=4,horizon=0.2", "seed=42,events=4,horizon=0.2",
                           "seed=1301,events=4,horizon=0.2"}) {
    auto spec = token_crash_spec();
    spec.faults = fault::parse_plan(plan);
    const ExperimentResult a = workload::run_write_workload(spec);
    const ExperimentResult b = workload::run_write_workload(spec);
    EXPECT_EQ(a.digest, b.digest) << plan;
    EXPECT_EQ(a.events_dispatched, b.events_dispatched) << plan;
    EXPECT_EQ(a.verify_failures, 0u) << plan;
    EXPECT_EQ(a.faults.app_errors, 0u) << plan;
    EXPECT_GT(a.faults.injected_events, 0u) << plan;
  }
}

// --- plan parsing -----------------------------------------------------------

TEST(FaultPlanParse, RejectsMalformedPlans) {
  EXPECT_THROW(fault::parse_plan(""), std::invalid_argument);
  EXPECT_THROW(fault::parse_plan("explode:io=0"), std::invalid_argument);
  EXPECT_THROW(fault::parse_plan("crash:outage=0.1"), std::invalid_argument);  // io missing
  EXPECT_THROW(fault::parse_plan("crash:io=0,outage=0.1,bogus=1"), std::invalid_argument);
  EXPECT_THROW(fault::parse_plan("seed=0"), std::invalid_argument);
  EXPECT_THROW(fault::parse_plan("diskfail:io=0,member=all"), std::invalid_argument);
}

TEST(FaultPlanParse, ParsesEventsAndChaos) {
  const auto plan =
      fault::parse_plan("crash:io=2,at=0.1,outage=0.2;transient:io=all,until=0.5;seed=7");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].kind, fault::FaultKind::kNodeCrash);
  EXPECT_EQ(plan.events[0].io_index, 2);
  EXPECT_DOUBLE_EQ(plan.events[0].outage, 0.2);
  EXPECT_EQ(plan.events[1].kind, fault::FaultKind::kDiskTransient);
  EXPECT_EQ(plan.events[1].io_index, -1);
  EXPECT_EQ(plan.chaos_seed, 7u);
  EXPECT_FALSE(plan.summary().empty());
}

// --- retry policy -----------------------------------------------------------

TEST(RetryPolicy, BackoffIsExponentialCappedAndJitterBounded) {
  fault::RetryPolicy p;
  sim::Rng rng(123);
  double expected_step = p.base_backoff_s;
  for (std::uint32_t attempt = 0; attempt < 12; ++attempt) {
    const double step = std::min(expected_step, static_cast<double>(p.max_backoff_s));
    const double d = fault::backoff_delay(p, attempt, rng);
    EXPECT_GE(d, step * (1.0 - p.jitter) - 1e-12) << "attempt " << attempt;
    EXPECT_LE(d, step * (1.0 + p.jitter) + 1e-12) << "attempt " << attempt;
    expected_step *= p.multiplier;
  }
}

// Regression: the jitter used to be applied AFTER the min() against
// max_backoff_s, so any saturated attempt with a positive jitter draw
// returned up to (1 + jitter) * max_backoff_s — the documented cap was
// quietly exceeded on roughly half of all deep retries. The final value
// must land in [0, max_backoff_s] for every attempt and every draw.
TEST(RetryPolicy, JitteredBackoffNeverExceedsTheCap) {
  fault::RetryPolicy p;
  sim::Rng rng(2026);
  bool saturated_draw_seen = false;
  for (std::uint32_t attempt = 0; attempt < 64; ++attempt) {
    for (int draw = 0; draw < 256; ++draw) {
      const double d = fault::backoff_delay(p, attempt, rng);
      EXPECT_GE(d, 0.0) << "attempt " << attempt;
      EXPECT_LE(d, static_cast<double>(p.max_backoff_s)) << "attempt " << attempt;
      saturated_draw_seen |= d == static_cast<double>(p.max_backoff_s);
    }
  }
  // With attempt 40 the raw step saturates long before the cap, so clamped
  // draws must actually occur — proves the test exercises the fixed branch.
  EXPECT_TRUE(saturated_draw_seen);

  // An extreme policy (jitter >= 1 can push the factor negative) still
  // stays inside the envelope.
  fault::RetryPolicy wild = p;
  wild.jitter = 1.5;
  for (int draw = 0; draw < 256; ++draw) {
    const double d = fault::backoff_delay(wild, 40, rng);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, static_cast<double>(wild.max_backoff_s));
  }
}

TEST(RetryPolicy, BackoffIsDeterministicPerSeed) {
  fault::RetryPolicy p;
  sim::Rng a(9), b(9), c(10);
  bool diverged = false;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const double da = fault::backoff_delay(p, i, a);
    EXPECT_DOUBLE_EQ(da, fault::backoff_delay(p, i, b));
    if (std::abs(da - fault::backoff_delay(p, i, c)) > 1e-15) diverged = true;
  }
  EXPECT_TRUE(diverged) << "different seeds should jitter differently";
}

// --- timeout machinery ------------------------------------------------------

TEST(FaultRecovery, WaitWithTimeoutTimeoutPathLeavesNoLiveProcess) {
  sim::Simulation sim;
  sim::Event never(sim);
  bool timed_out = false;
  test::run_task(sim, [](sim::Simulation& s, sim::Event& ev, bool& flag) -> sim::Task<void> {
    const bool fired = co_await sim::wait_with_timeout(s, ev, 0.25);
    flag = !fired;
  }(sim, never, timed_out));
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(sim.live_processes(), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 0.25);
}

// --- fault-conservation ledger ----------------------------------------------

TEST(FaultLedger, UnresolvedFaultIsReported) {
  sim::Simulation sim;
  auto* a = sim.auditor();
  if (!a) GTEST_SKIP() << "SimCheck compiled out";
  a->set_fail_fast(false);
  a->on_fault_observed();
  a->check_fault_conservation(sim.now());
  EXPECT_EQ(a->count(sim::check::Violation::kFaultConservation), 1u);
}

TEST(FaultLedger, OverResolutionIsReported) {
  sim::Simulation sim;
  auto* a = sim.auditor();
  if (!a) GTEST_SKIP() << "SimCheck compiled out";
  a->set_fail_fast(false);
  a->on_fault_retried_ok();  // resolution with no observed fault
  EXPECT_GE(a->count(sim::check::Violation::kFaultConservation), 1u);
}

TEST(FaultLedger, BalancedLedgerIsClean) {
  sim::Simulation sim;
  auto* a = sim.auditor();
  if (!a) GTEST_SKIP() << "SimCheck compiled out";
  a->set_fail_fast(false);
  a->on_fault_observed(3);
  a->on_fault_retried_ok(1);
  a->on_fault_reconstructed(1);
  a->on_fault_terminal(1);
  a->check_fault_conservation(sim.now());
  EXPECT_EQ(a->count(sim::check::Violation::kFaultConservation), 0u);
}

}  // namespace
}  // namespace ppfs
