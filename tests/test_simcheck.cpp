// ppfs-lint: allow-file(ref-across-await) test idiom: coroutine referents are stack locals and the test blocks in sim.run()/run_task() before they die
// Tests for SimCheck — the kernel invariant auditor, the coroutine-frame
// lifetime registry, the determinism digest, and pending-process teardown.
//
// Each of the auditor's violation classes gets (a) a real-path test that
// commits the violation through the public kernel surface and (b) a seeded
// injection test proving the auditor catches the class when the trigger
// point is chosen by arm_injection(kind, seed).
#include <gtest/gtest.h>

#include <coroutine>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/tier.hpp"
#include "hw/machine.hpp"
#include "pfs/client.hpp"
#include "pfs/filesystem.hpp"
#include "prefetch/engine.hpp"
#include "sim/check/audit.hpp"
#include "sim/event.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "test_util.hpp"
#include "workload/experiment.hpp"
#include "workload/write_workload.hpp"

namespace ppfs::sim {
namespace {

using check::AuditError;
using check::Violation;
using ppfs::test::run_task;

#if !defined(PPFS_SIMCHECK)
#error "test_simcheck requires a PPFS_SIMCHECK build (the default)"
#endif

Task<void> tick_forever(Simulation& sim, Event& ev) {
  co_await sim.delay(1.0);
  co_await ev.wait();  // never set: process blocks forever
}

Task<void> noop_task() { co_return; }

// --- causality --------------------------------------------------------------

TEST(SimCheckCausality, SchedulingInThePastThrows) {
  Simulation sim;
  ASSERT_NE(sim.auditor(), nullptr);
  sim.call_at(5.0, [] {});
  sim.run();
  ASSERT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_THROW(sim.call_at(1.0, [] {}), AuditError);
  EXPECT_EQ(sim.auditor()->count(Violation::kCausality), 1u);
}

TEST(SimCheckCausality, RecordOnlyModeCollects) {
  Simulation sim;
  sim.auditor()->set_fail_fast(false);
  sim.call_at(3.0, [] {});
  sim.run();
  sim.call_at(2.0, [] {});  // in the past; clamped, but recorded
  sim.run();
  ASSERT_EQ(sim.auditor()->count(Violation::kCausality), 1u);
  EXPECT_EQ(sim.auditor()->violations()[0].kind, Violation::kCausality);
}

// --- double resume ----------------------------------------------------------

TEST(SimCheckDoubleResume, SameFrameQueuedTwiceThrows) {
  Simulation sim;
  sim.schedule_at(1.0, std::noop_coroutine());
  EXPECT_THROW(sim.schedule_at(1.0, std::noop_coroutine()), AuditError);
  EXPECT_EQ(sim.auditor()->count(Violation::kDoubleResume), 1u);
}

// --- resume after destroy ---------------------------------------------------

TEST(SimCheckLifetime, ResumeAfterDestroyIsSuppressed) {
  Simulation sim;
  sim.auditor()->set_fail_fast(false);
  {
    Task<void> t = noop_task();
    // Schedule the frame, then destroy it through its owner — the classic
    // dangling-handle bug. ~Task reports the frame to the registry.
    auto h = t.release();
    sim.schedule_at(1.0, h);
    check::note_frame_destroyed(h.address());
    h.destroy();
  }
  sim.run();  // must not resume the dead frame
  EXPECT_EQ(sim.auditor()->count(Violation::kResumeAfterDestroy), 1u);
}

TEST(SimCheckLifetime, RegistryClearsStainOnReuse) {
  int probe = 0;
  void* addr = &probe;
  EXPECT_FALSE(check::frame_destroyed(addr));
  check::note_frame_destroyed(addr);
  EXPECT_TRUE(check::frame_destroyed(addr));
  // Task's constructor notes creation, which clears a stale stain left by a
  // previous frame the allocator placed at the same address.
  check::note_frame_created(addr);
  EXPECT_FALSE(check::frame_destroyed(addr));
}

// --- resource accounting ----------------------------------------------------

TEST(SimCheckResource, ReleaseWithoutAcquireThrows) {
  Simulation sim;
  Resource res(sim, 2);
  EXPECT_THROW(res.release(1), AuditError);
  EXPECT_EQ(sim.auditor()->count(Violation::kResourceAccounting), 1u);
}

TEST(SimCheckResource, BalancedUseIsClean) {
  Simulation sim;
  Resource res(sim, 2);
  run_task(sim, [](Simulation& s, Resource& r) -> Task<void> {
    auto g1 = co_await r.acquire(1);
    auto g2 = co_await r.acquire(1);
    co_await s.delay(0.5);
    g1.release();
    g2.release();
    auto g3 = co_await r.acquire(2);  // whole capacity, released at scope exit
  }(sim, res));
  EXPECT_EQ(sim.auditor()->count(Violation::kResourceAccounting), 0u);
  EXPECT_EQ(sim.auditor()->resource_outstanding(&res), 0);
}

TEST(SimCheckResource, LeakAtDestructionRecorded) {
  Simulation sim;
  auto res = std::make_unique<Resource>(sim, 2);
  {
    auto awaiter = res->acquire(1);
    ASSERT_TRUE(awaiter.await_ready());  // capacity free: acquires inline
    // Guard never constructed — the unit is now leaked deliberately.
  }
  EXPECT_EQ(sim.auditor()->resource_outstanding(res.get()), 1);
  res.reset();  // destructor context: records, must not throw
  ASSERT_EQ(sim.auditor()->count(Violation::kResourceAccounting), 1u);
  EXPECT_NE(sim.auditor()->violations()[0].detail.find("still acquired"), std::string::npos);
}

// --- buffer conservation ----------------------------------------------------

TEST(SimCheckBuffers, UnbalancedLedgerDetected) {
  Simulation sim;
  auto* a = sim.auditor();
  a->set_fail_fast(false);
  const void* owner = &sim;
  a->on_buffer_allocated(owner, 3);
  a->on_buffer_consumed(owner, 1);
  a->on_buffer_discarded(owner, 1);
  a->check_buffer_conservation(sim.now(), owner);  // one buffer unaccounted
  EXPECT_EQ(a->count(Violation::kBufferConservation), 1u);
}

TEST(SimCheckBuffers, OverDisposalDetectedImmediately) {
  Simulation sim;
  auto* a = sim.auditor();
  a->set_fail_fast(false);
  const void* owner = &sim;
  a->on_buffer_allocated(owner, 1);
  a->on_buffer_consumed(owner, 1);
  a->on_buffer_freed_at_close(owner, 1);  // second terminal state: bug
  EXPECT_EQ(a->count(Violation::kBufferConservation), 1u);
}

TEST(SimCheckBuffers, RealPrefetchRunConserves) {
  Simulation sim;
  hw::Machine machine(sim, hw::MachineConfig::paragon(1, 4));
  pfs::PfsFileSystem fs(machine, pfs::PfsParams{});
  pfs::PfsClient client(fs, 0, 0, 1);
  prefetch::PrefetchConfig cfg;
  cfg.depth = 2;
  auto engine = prefetch::attach_prefetcher(client, cfg);

  const ByteCount total = 256 * 1024;
  fs.create("f", fs.default_attrs());
  run_task(sim, [](Simulation&, pfs::PfsClient& c, ByteCount sz) -> Task<void> {
    const int fd = co_await c.open("f", pfs::IoMode::kAsync);
    auto data = ppfs::test::make_pattern(1, 0, sz);
    co_await c.write(fd, data);
    c.close(fd);
  }(sim, client, total));

  run_task(sim, [](Simulation&, pfs::PfsClient& c, ByteCount sz) -> Task<void> {
    const int fd = co_await c.open("f", pfs::IoMode::kAsync);
    std::vector<std::byte> buf(16 * 1024);
    for (ByteCount off = 0; off < sz; off += buf.size()) {
      co_await c.read(fd, buf);
    }
    c.close(fd);  // drains every remaining buffer; conservation checked here
  }(sim, client, total));

  EXPECT_GT(engine->stats().issued, 0u);
  engine.reset();  // destructor re-checks the ledger
  EXPECT_EQ(sim.auditor()->count(Violation::kBufferConservation), 0u);
}

// --- cache bitmap conservation ----------------------------------------------

TEST(SimCheckCacheBits, UnbalancedLedgerDetected) {
  Simulation sim;
  auto* a = sim.auditor();
  a->set_fail_fast(false);
  const void* owner = &sim;
  a->on_cache_bit_set(owner, 4);
  a->on_cache_bit_cleared(owner, 1);
  // Tier claims 2 resident, but the ledger says 4 - 1 = 3.
  a->check_cache_bitmap_conservation(sim.now(), owner, /*resident=*/2);
  EXPECT_EQ(a->count(Violation::kCacheBitmapConservation), 1u);
}

TEST(SimCheckCacheBits, OverClearDetectedImmediately) {
  Simulation sim;
  auto* a = sim.auditor();
  a->set_fail_fast(false);
  const void* owner = &sim;
  a->on_cache_bit_set(owner, 1);
  a->on_cache_bit_cleared(owner, 1);
  a->on_cache_bit_cleared(owner, 1);  // clears a bit that was never set
  EXPECT_EQ(a->count(Violation::kCacheBitmapConservation), 1u);
}

TEST(SimCheckCacheBits, TierLifecycleConserves) {
  // Insert / evict / crash / recover through the real tier: the ledger must
  // balance at every checkpoint and at destruction.
  Simulation sim;
  std::map<std::uint32_t, std::uint64_t> gens{{1, 1}};
  std::map<std::uint32_t, std::uint64_t> blocks{{1, 64}};
  {
    cache::CacheTierParams p;
    p.enabled = true;
    p.journal_flush_interval = 1;
    p.capacity_blocks = 8;
    cache::CacheTier tier(sim, "audited-tier", p,
                          [&](std::uint32_t ino) { return gens.count(ino) ? gens[ino] : 0; },
                          [&](std::uint32_t ino) { return blocks.count(ino) ? blocks[ino] : 0; });
    for (std::uint64_t b = 0; b < 12; ++b) {  // overflows capacity: evictions
      tier.insert(1, 1, b);
      sim.run();
    }
    EXPECT_GT(tier.stats().evictions, 0u);
    sim.auditor()->check_cache_bitmap_conservation(sim.now(), &tier, tier.resident_blocks());
    tier.on_crash();
    run_task(sim, tier.recover());
    sim.auditor()->check_cache_bitmap_conservation(sim.now(), &tier, tier.resident_blocks());
  }  // ~CacheTier runs the in_destructor check
  EXPECT_EQ(sim.auditor()->count(Violation::kCacheBitmapConservation), 0u);
}

// --- write-token conservation -----------------------------------------------

TEST(SimCheckTokens, OverlappingWriteGrantsDetected) {
  Simulation sim;
  auto* a = sim.auditor();
  a->set_fail_fast(false);
  a->on_token_write_grant(sim.now(), /*file=*/1, /*owner=*/1, 0, 4096);
  a->on_token_write_grant(sim.now(), /*file=*/1, /*owner=*/2, 1024, 2048);
  EXPECT_EQ(a->count(Violation::kTokenConservation), 1u);
}

TEST(SimCheckTokens, DisjointAndCrossFileGrantsAreClean) {
  Simulation sim;
  auto* a = sim.auditor();
  a->set_fail_fast(false);
  a->on_token_write_grant(sim.now(), 1, 1, 0, 4096);
  a->on_token_write_grant(sim.now(), 1, 2, 4096, 8192);  // adjacent, no overlap
  a->on_token_write_grant(sim.now(), 2, 2, 0, 4096);     // other file
  a->check_token_conservation(sim.now(), /*outstanding=*/12288);
  EXPECT_EQ(a->count(Violation::kTokenConservation), 0u);
}

TEST(SimCheckTokens, PartialReleaseSplitsLedgerRecord) {
  Simulation sim;
  auto* a = sim.auditor();
  a->set_fail_fast(false);
  a->on_token_write_grant(sim.now(), 1, 1, 0, 4096);
  a->on_token_write_release(sim.now(), 1, 1, 1024, 2048);  // middle slice revoked
  a->check_token_conservation(sim.now(), /*outstanding=*/3072);
  // The freed middle may now go to another client without complaint.
  a->on_token_write_grant(sim.now(), 1, 2, 1024, 2048);
  a->check_token_conservation(sim.now(), /*outstanding=*/4096);
  EXPECT_EQ(a->count(Violation::kTokenConservation), 0u);
}

TEST(SimCheckTokens, ReleaseOfUngrantedRangeDetected) {
  Simulation sim;
  auto* a = sim.auditor();
  a->set_fail_fast(false);
  a->on_token_write_grant(sim.now(), 1, 1, 0, 1024);
  a->on_token_write_release(sim.now(), 1, 1, 0, 2048);  // releases more than held
  EXPECT_EQ(a->count(Violation::kTokenConservation), 1u);
}

TEST(SimCheckTokens, UnflushedRevokeAckDetected) {
  Simulation sim;
  auto* a = sim.auditor();
  a->set_fail_fast(false);
  a->check_token_flush(sim.now(), /*unflushed=*/0);  // clean ack
  EXPECT_EQ(a->count(Violation::kTokenConservation), 0u);
  a->check_token_flush(sim.now(), /*unflushed=*/512);
  EXPECT_EQ(a->count(Violation::kTokenConservation), 1u);
}

TEST(SimCheckTokens, RealWriteWorkloadConserves) {
  // End-to-end: a conflicting checkpoint run keeps the auditor ledger in
  // lock-step with the token manager (run_write_workload calls
  // check_token_conservation at collection time and throws on violation).
  workload::WriteWorkloadSpec spec;
  spec.kind = workload::WriteWorkloadKind::kCheckpoint;
  spec.writers = 4;
  spec.rounds = 3;
  spec.conflicting = true;
  const auto r = workload::run_write_workload(spec);
  EXPECT_EQ(r.verify_failures, 0u);
}

// --- seeded injection: the auditor audits itself ----------------------------

class SimCheckInjection : public ::testing::TestWithParam<std::uint64_t> {};

void drive_events(Simulation& sim, int n) {
  for (int i = 0; i < n; ++i) {
    sim.call_at(sim.now() + 0.1 * (i + 1), [] {});
  }
  sim.run();
}

TEST_P(SimCheckInjection, EveryViolationClassIsCaught) {
  const std::uint64_t seed = GetParam();
  const Violation kinds[] = {Violation::kCausality, Violation::kDoubleResume,
                             Violation::kResumeAfterDestroy, Violation::kResourceAccounting,
                             Violation::kBufferConservation,
                             Violation::kCoalesceConservation,
                             Violation::kCacheBitmapConservation,
                             Violation::kTokenConservation};
  for (Violation kind : kinds) {
    Simulation sim;
    auto* a = sim.auditor();
    a->set_fail_fast(false);
    a->arm_injection(kind, seed);
    EXPECT_TRUE(a->injection_armed());
    drive_events(sim, 40);  // > max trigger countdown (16 audited events)
    EXPECT_FALSE(a->injection_armed());
    EXPECT_EQ(a->count(kind), 1u)
        << "seed " << seed << " kind " << check::to_string(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimCheckInjection, ::testing::Values(1u, 42u, 0xdeadbeefu));

// --- determinism digest -----------------------------------------------------

workload::WorkloadSpec small_spec(pfs::IoMode mode, bool prefetch) {
  workload::WorkloadSpec w;
  w.mode = mode;
  w.request_size = 64 * 1024;
  w.file_size = 1024 * 1024;
  w.prefetch = prefetch;
  w.compute_delay = prefetch ? 0.005 : 0.0;
  return w;
}

TEST(SimCheckDigest, IdenticalAcrossRepeatedRuns) {
  workload::Experiment exp;
  const auto w = small_spec(pfs::IoMode::kRecord, true);
  const auto r1 = exp.run(w);
  const auto r2 = exp.run(w);
  EXPECT_NE(r1.digest, 0u);
  EXPECT_GT(r1.events_dispatched, 0u);
  EXPECT_EQ(r1.digest, r2.digest);
  EXPECT_EQ(r1.events_dispatched, r2.events_dispatched);
}

// Digest regression over the paper-shape scenario matrix: every mode the
// figures exercise must be reproducible run-to-run (and the digest must
// actually discriminate between scenarios).
TEST(SimCheckDigest, PaperShapeScenariosReproduce) {
  workload::Experiment exp;
  std::vector<std::uint64_t> digests;
  for (pfs::IoMode mode : {pfs::IoMode::kRecord, pfs::IoMode::kUnix, pfs::IoMode::kGlobal,
                           pfs::IoMode::kSync}) {
    for (bool prefetch : {false, true}) {
      const auto w = small_spec(mode, prefetch);
      const auto r1 = exp.run(w);
      const auto r2 = exp.run(w);
      EXPECT_EQ(r1.digest, r2.digest)
          << "nondeterminism in mode " << pfs::to_string(mode) << " prefetch=" << prefetch;
      digests.push_back(r1.digest);
    }
  }
  std::sort(digests.begin(), digests.end());
  EXPECT_EQ(std::unique(digests.begin(), digests.end()), digests.end())
      << "distinct scenarios collapsed to the same digest";
}

TEST(SimCheckDigest, StepCountsAndDigestAdvanceTogether) {
  Simulation sim;
  EXPECT_EQ(sim.events_dispatched(), 0u);
  const auto d0 = sim.digest();
  sim.call_at(1.0, [] {});
  sim.run();
  EXPECT_EQ(sim.events_dispatched(), 1u);
  EXPECT_NE(sim.digest(), d0);
}

// --- pending-process teardown -----------------------------------------------

TEST(SimCheckTeardown, DestroyPendingProcessesUnwindsBlockedProcess) {
  Simulation sim;
  Event never(sim);
  sim.spawn(tick_forever(sim, never));
  sim.run();
  ASSERT_EQ(sim.live_processes(), 1u);  // blocked on the never-set event
  EXPECT_EQ(sim.destroy_pending_processes(), 1u);
  EXPECT_EQ(sim.live_processes(), 0u);
  EXPECT_TRUE(sim.empty());
}

TEST(SimCheckTeardown, DestructorDestroysPendingFrames) {
  // Drop a Simulation with a blocked process: the frame must be destroyed
  // (ASan/LSan builds verify no leak) and teardown must not crash.
  auto sim = std::make_unique<Simulation>();
  auto never = std::make_unique<Event>(*sim);
  sim->spawn(tick_forever(*sim, *never));
  sim->run();
  ASSERT_EQ(sim->live_processes(), 1u);
  sim.reset();
}

TEST(SimCheckTeardown, AbortedRunDestroysOtherProcesses) {
  Simulation sim;
  Event never(sim);
  sim.spawn(tick_forever(sim, never));
  sim.spawn([](Simulation& s) -> Task<void> {
    co_await s.delay(2.0);
    throw std::runtime_error("model bug");
  }(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
  // The rethrow path unwinds the blocked process too, so aborted runs do
  // not leak frames (and later teardown cannot touch dead objects).
  EXPECT_EQ(sim.live_processes(), 0u);
  EXPECT_TRUE(sim.empty());
}

TEST(SimCheckTeardown, GuardsReleaseDuringTeardown) {
  Simulation sim;
  Resource res(sim, 1);
  Event never(sim);
  sim.spawn([](Simulation& s, Resource& r, Event& ev) -> Task<void> {
    auto g = co_await r.acquire(1);
    co_await s.delay(0.1);
    co_await ev.wait();  // blocks forever while holding the guard
  }(sim, res, never));
  sim.run();
  ASSERT_EQ(res.in_use(), 1u);
  EXPECT_EQ(sim.destroy_pending_processes(), 1u);
  // The frame's ResourceGuard released on unwind: accounting balanced.
  EXPECT_EQ(res.in_use(), 0u);
  EXPECT_EQ(sim.auditor()->resource_outstanding(&res), 0);
  EXPECT_EQ(sim.auditor()->count(Violation::kResourceAccounting), 0u);
}

}  // namespace
}  // namespace ppfs::sim
