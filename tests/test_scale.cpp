// ScaleSim: the production-scale machinery's correctness contract.
//
// Three layers under test: the ShardArena per-node state container (fixed
// capacity, address pinning, construction-order indexing), the
// StreamingQuantiles fixed-footprint latency sketch, and the open-arrival
// workload plus its node-partitioned sharded runner. The load-bearing
// properties are determinism (same spec => same digest; sharded merged
// digest independent of --jobs) and bounded footprint (the kernel's
// bytes/event stays under a fixed ceiling however long the run is).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/shard.hpp"
#include "hw/machine.hpp"
#include "sim/shard.hpp"
#include "sim/stats.hpp"
#include "workload/open_arrival.hpp"

namespace {

using ppfs::exp::run_sharded_scale;
using ppfs::sim::ShardArena;
using ppfs::sim::StreamingQuantiles;
using ppfs::workload::MachineSpec;
using ppfs::workload::OpenArrivalSpec;
using ppfs::workload::run_open_arrival;

// --- ShardArena ---

struct Pinned {
  explicit Pinned(int v) : value(v), self(this) {}
  Pinned(const Pinned&) = delete;
  Pinned& operator=(const Pinned&) = delete;
  int value;
  Pinned* self;  // would dangle if the arena ever relocated elements
};

TEST(ShardArena, ConstructionOrderAndAddressPinning) {
  ShardArena<Pinned> arena;
  arena.reserve(64);
  std::vector<Pinned*> addrs;
  for (int i = 0; i < 64; ++i) addrs.push_back(&arena.emplace_back(i));
  ASSERT_EQ(arena.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(arena[static_cast<std::size_t>(i)].value, i);
    EXPECT_EQ(&arena[static_cast<std::size_t>(i)], addrs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(arena[static_cast<std::size_t>(i)].self, addrs[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(arena.memory_bytes(), 64 * sizeof(Pinned));
}

TEST(ShardArena, OverflowAndDoubleReserveThrow) {
  ShardArena<int> arena;
  arena.reserve(2);
  arena.emplace_back(1);
  arena.emplace_back(2);
  EXPECT_THROW(arena.emplace_back(3), std::length_error);
  EXPECT_THROW(arena.reserve(4), std::logic_error);
  EXPECT_THROW(arena.at(2), std::out_of_range);
}

// --- StreamingQuantiles ---

TEST(StreamingQuantiles, TracksCountSumMinMax) {
  StreamingQuantiles q;
  EXPECT_EQ(q.count(), 0u);
  EXPECT_EQ(q.percentile(50), 0.0);
  for (int i = 1; i <= 1000; ++i) q.add(i * 1e-6);  // 1us..1ms
  EXPECT_EQ(q.count(), 1000u);
  EXPECT_DOUBLE_EQ(q.min(), 1e-6);
  EXPECT_DOUBLE_EQ(q.max(), 1e-3);
  EXPECT_NEAR(q.mean(), 500.5e-6, 1e-9);
  // Log2-bin sketch: percentile is within one bin (2x) of the true value.
  const double p50 = q.median();
  EXPECT_GE(p50, 250e-6);
  EXPECT_LE(p50, 1e-3);
  EXPECT_LE(q.percentile(10), p50);
  EXPECT_LE(p50, q.percentile(99));
}

TEST(StreamingQuantiles, MergeMatchesCombinedStream) {
  StreamingQuantiles a, b, both;
  for (int i = 1; i <= 100; ++i) {
    a.add(i * 1e-5);
    both.add(i * 1e-5);
  }
  for (int i = 1; i <= 50; ++i) {
    b.add(i * 1e-3);
    both.add(i * 1e-3);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_DOUBLE_EQ(a.sum(), both.sum());
  EXPECT_DOUBLE_EQ(a.min(), both.min());
  EXPECT_DOUBLE_EQ(a.max(), both.max());
  EXPECT_DOUBLE_EQ(a.percentile(90), both.percentile(90));
}

TEST(StreamingQuantiles, EmptySketchAnswersZeroEverywhere) {
  StreamingQuantiles q;
  EXPECT_EQ(q.count(), 0u);
  EXPECT_EQ(q.min(), 0.0);
  EXPECT_EQ(q.max(), 0.0);
  EXPECT_EQ(q.mean(), 0.0);
  for (double p : {0.0, 50.0, 99.9, 100.0}) {
    const double v = q.percentile(p);
    EXPECT_TRUE(std::isfinite(v)) << "p" << p;
    EXPECT_EQ(v, 0.0) << "p" << p;
  }
}

TEST(StreamingQuantiles, NonFiniteSamplesAreDroppedNotPoisonous) {
  // Regression: add(NaN) used to bump n_ and poison sum_ while min_/max_
  // stayed at their infinity sentinels (NaN loses every min/max compare),
  // so min()/max() reported infinities and percentile() clamped against an
  // inverted range.
  StreamingQuantiles q;
  q.add(std::numeric_limits<double>::quiet_NaN());
  q.add(std::numeric_limits<double>::infinity());
  q.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(q.count(), 0u);
  EXPECT_EQ(q.percentile(50), 0.0);
  EXPECT_EQ(q.min(), 0.0);
  q.add(2e-6);
  q.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(q.count(), 1u);
  EXPECT_DOUBLE_EQ(q.min(), 2e-6);
  EXPECT_DOUBLE_EQ(q.max(), 2e-6);
  EXPECT_DOUBLE_EQ(q.mean(), 2e-6);
  EXPECT_TRUE(std::isfinite(q.percentile(99)));
  EXPECT_DOUBLE_EQ(q.percentile(99), 2e-6);  // clamped into [min, max]
}

TEST(StreamingQuantiles, MergeWithEmptyAndDisjointRanges) {
  StreamingQuantiles empty, low, high;
  for (int i = 1; i <= 10; ++i) low.add(i * 1e-6);
  for (int i = 1; i <= 10; ++i) high.add(i * 1e-2);
  // empty <- nonempty adopts the other's range exactly.
  empty.merge(low);
  EXPECT_EQ(empty.count(), 10u);
  EXPECT_DOUBLE_EQ(empty.min(), low.min());
  EXPECT_DOUBLE_EQ(empty.max(), low.max());
  // nonempty <- empty is a no-op, not a range reset.
  StreamingQuantiles none;
  low.merge(none);
  EXPECT_EQ(low.count(), 10u);
  EXPECT_DOUBLE_EQ(low.min(), 1e-6);
  // Disjoint ranges: percentiles of the merge stay finite and inside the
  // combined observed range.
  low.merge(high);
  EXPECT_EQ(low.count(), 20u);
  for (double p : {0.0, 25.0, 50.0, 75.0, 100.0}) {
    const double v = low.percentile(p);
    EXPECT_TRUE(std::isfinite(v)) << "p" << p;
    EXPECT_GE(v, 1e-6);
    EXPECT_LE(v, 1e-1);
  }
}

// --- open-arrival workload ---

MachineSpec smoke_machine() {
  MachineSpec m;
  m.ncompute = 64;
  m.nio = 16;
  return m;
}

OpenArrivalSpec smoke_spec() {
  OpenArrivalSpec s;
  s.tenants = 4;
  s.requests_per_client = 8;
  s.request_size = 64 * 1024;
  s.tenant_file_size = 1024 * 1024;
  s.mean_interarrival = 0.002;
  s.seed = 7;
  return s;
}

TEST(ScaleSmoke, OpenArrivalCompletesWithBoundedFootprint) {
  const auto r = run_open_arrival(smoke_machine(), smoke_spec());
  EXPECT_EQ(r.ncompute, 64);
  EXPECT_EQ(r.nio, 16);
  // Every arrival was issued and (no faults armed) completed.
  EXPECT_EQ(r.issued, 64u * 8u);
  EXPECT_EQ(r.completed, r.issued);
  EXPECT_EQ(r.app_errors, 0u);
  EXPECT_EQ(r.total_bytes, r.completed * smoke_spec().request_size);
  EXPECT_GT(r.sim_elapsed, 0.0);
  EXPECT_EQ(r.latencies.count(), r.issued);
  EXPECT_GT(r.latencies.max(), 0.0);
  // Footprint: the counters exist and are sane for a 64x16 run. The
  // bytes/event ceiling is the memory-lean contract — kernel state
  // amortized over the event stream, not proportional to requests.
  EXPECT_GT(r.events_dispatched, 0u);
  EXPECT_GT(r.peak_pending_events, 0u);
  EXPECT_LT(r.peak_pending_events, 200000u);
  EXPECT_GT(r.bytes_per_event, 0.0);
  EXPECT_LT(r.bytes_per_event, 4096.0);
  EXPECT_GT(r.machine_state_bytes, 0u);
}

TEST(ScaleSmoke, DigestStableAcrossRuns) {
  const auto a = run_open_arrival(smoke_machine(), smoke_spec());
  const auto b = run_open_arrival(smoke_machine(), smoke_spec());
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.issued, b.issued);
  // A different seed must change the event stream.
  auto s = smoke_spec();
  s.seed = 8;
  const auto c = run_open_arrival(smoke_machine(), s);
  EXPECT_NE(a.digest, c.digest);
}

TEST(ScaleSmoke, ScaledMeshIsNearSquare) {
  const auto cfg = ppfs::hw::MachineConfig::paragon_scaled(240, 16);
  EXPECT_EQ(cfg.mesh.width, 16);
  EXPECT_EQ(cfg.mesh.height, 16);
  EXPECT_EQ(static_cast<int>(cfg.io_nodes.size()), 16);
  // paragon() stays digest-frozen at width 4.
  const auto legacy = ppfs::hw::MachineConfig::paragon(8, 8);
  EXPECT_EQ(legacy.mesh.width, 4);
}

// --- sharded giant scenario ---

TEST(ShardedScale, MergedDigestIndependentOfJobs) {
  MachineSpec m;
  m.ncompute = 48;
  m.nio = 12;
  OpenArrivalSpec s = smoke_spec();
  s.tenants = 3;
  const auto serial = run_sharded_scale(m, s, 4, 1);
  const auto parallel = run_sharded_scale(m, s, 4, 4);
  ASSERT_TRUE(serial.all_ok());
  ASSERT_TRUE(parallel.all_ok());
  EXPECT_EQ(serial.merged_digest, parallel.merged_digest);
  EXPECT_EQ(serial.issued, parallel.issued);
  EXPECT_EQ(serial.completed, parallel.completed);
  EXPECT_EQ(serial.events_dispatched, parallel.events_dispatched);
  // Partition covers the machine exactly.
  int nc = 0, nio = 0;
  for (const auto& sh : serial.shards) {
    nc += sh.ncompute;
    nio += sh.nio;
  }
  EXPECT_EQ(nc, m.ncompute);
  EXPECT_EQ(nio, m.nio);
  // Every client on every shard ran its full arrival schedule.
  EXPECT_EQ(serial.issued,
            static_cast<std::uint64_t>(m.ncompute) * s.requests_per_client);
}

TEST(ShardedScale, RejectsImpossiblePartitions) {
  MachineSpec m;
  m.ncompute = 4;
  m.nio = 2;
  EXPECT_THROW(run_sharded_scale(m, smoke_spec(), 3, 1), std::invalid_argument);
  EXPECT_THROW(run_sharded_scale(m, smoke_spec(), 0, 1), std::invalid_argument);
}

}  // namespace
