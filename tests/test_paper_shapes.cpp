// Paper-shape regression tests: small, fast versions of every experiment,
// asserting the QUALITATIVE results the paper reports (orderings,
// crossovers, win/no-win regimes). These are the guardrails that keep
// refactoring from silently un-reproducing the paper.
#include <gtest/gtest.h>

#include "workload/experiment.hpp"

namespace ppfs::workload {
namespace {

using pfs::IoMode;

MachineSpec paper_machine() { return MachineSpec{}; }  // 8C + 8IO, SCSI-8

double bw(const Experiment& e, WorkloadSpec w) { return e.run(w).observed_read_bw_mbs; }

WorkloadSpec record_spec(sim::ByteCount req, int rounds = 4) {
  WorkloadSpec w;
  w.mode = IoMode::kRecord;
  w.request_size = req;
  w.file_size = req * 8 * rounds;
  return w;
}

// --- Figure 2 shapes ---

TEST(PaperFig2, AtomicModesAreSlowestAtSmallRequests) {
  Experiment e(paper_machine());
  auto spec = [&](IoMode m) {
    WorkloadSpec w;
    w.mode = m;
    w.request_size = 64 * 1024;
    w.file_size = 2 * 1024 * 1024;
    return w;
  };
  const double unix_bw = bw(e, spec(IoMode::kUnix));
  const double log_bw = bw(e, spec(IoMode::kLog));
  const double record_bw = bw(e, spec(IoMode::kRecord));
  const double async_bw = bw(e, spec(IoMode::kAsync));
  // Serialized atomic modes at least 3x below the uncoordinated ones.
  EXPECT_LT(unix_bw * 3, record_bw);
  EXPECT_LT(log_bw * 3, record_bw);
  // M_RECORD ~ M_ASYNC (within 10%).
  EXPECT_NEAR(record_bw / async_bw, 1.0, 0.1);
}

TEST(PaperFig2, SyncTrailsRecordSlightly) {
  Experiment e(paper_machine());
  WorkloadSpec sync_w = record_spec(64 * 1024);
  sync_w.mode = IoMode::kSync;
  sync_w.file_size = 2 * 1024 * 1024;
  WorkloadSpec rec_w = record_spec(64 * 1024);
  rec_w.file_size = 2 * 1024 * 1024;
  const double sync_bw = bw(e, sync_w);
  const double rec_bw = bw(e, rec_w);
  EXPECT_LE(sync_bw, rec_bw * 1.02);   // never meaningfully above
  EXPECT_GT(sync_bw, rec_bw * 0.7);    // but in the same league
}

TEST(PaperFig2, BandwidthRisesWithRequestSizeForSerializedModes) {
  Experiment e(paper_machine());
  auto spec = [&](sim::ByteCount req) {
    WorkloadSpec w;
    w.mode = IoMode::kUnix;
    w.request_size = req;
    w.file_size = req * 8 * 2;
    return w;
  };
  const double small = bw(e, spec(64 * 1024));
  const double large = bw(e, spec(1024 * 1024));
  EXPECT_GT(large, small * 3);  // amortizing the token over big transfers
}

// --- Table 1 / Table 3 shape: no-delay prefetch is a small loss ---

TEST(PaperTable1, NoDelayPrefetchWithinFivePercentAndNotAWin) {
  Experiment e(paper_machine());
  for (sim::ByteCount req : std::vector<sim::ByteCount>{64 * 1024, 256 * 1024}) {
    auto base = record_spec(req);
    auto pf = base;
    pf.prefetch = true;
    const double off = bw(e, base);
    const double on = bw(e, pf);
    EXPECT_LE(on, off * 1.02) << req;         // no significant gain
    EXPECT_GE(on, off * 0.93) << req;         // and only a small loss
  }
}

TEST(PaperTable1, PenaltyLargestAtSmallestRequest) {
  Experiment e(paper_machine());
  auto penalty = [&](sim::ByteCount req) {
    auto base = record_spec(req);
    auto pf = base;
    pf.prefetch = true;
    const double off = bw(e, base);
    return (off - bw(e, pf)) / off;
  };
  EXPECT_GE(penalty(64 * 1024), penalty(512 * 1024) - 0.005);
}

// --- Table 2 shape: access time grows; 1MB read >> 0.1s-class delays ---

TEST(PaperTable2, AccessTimeMonotoneAndLargeRequestsExceedSmallDelays) {
  Experiment e(paper_machine());
  const auto t64 = e.read_access_time(64 * 1024);
  const auto t512 = e.read_access_time(512 * 1024);
  const auto t1m = e.read_access_time(1024 * 1024);
  EXPECT_LT(t64, t512);
  EXPECT_LT(t512, t1m);
  EXPECT_GT(t1m, 0.1);   // the paper's point: 0.1s cannot cover a 1MB read
  EXPECT_LT(t64, 0.05);  // but easily covers a 64KB one
}

// --- Figure 4 shape: prefetch wins once delay covers the access time ---

TEST(PaperFig4, PrefetchWinsBigWhenDelayCoversAccessTime) {
  Experiment e(paper_machine());
  auto base = record_spec(64 * 1024, 8);
  base.compute_delay = 0.05;  // >> 19ms access time
  auto pf = base;
  pf.prefetch = true;
  EXPECT_GT(bw(e, pf), bw(e, base) * 3.0);
}

TEST(PaperFig4, CrossoverDelayGrowsWithRequestSize) {
  Experiment e(paper_machine());
  auto speedup = [&](sim::ByteCount req, double delay) {
    auto base = record_spec(req, 8);
    base.compute_delay = delay;
    auto pf = base;
    pf.prefetch = true;
    return bw(e, pf) / bw(e, base);
  };
  // At a 25ms delay, 64KB requests (19ms access) are already winning big;
  // 256KB requests (70ms access) are not yet.
  EXPECT_GT(speedup(64 * 1024, 0.025), 2.0);
  EXPECT_LT(speedup(256 * 1024, 0.025), 1.3);
  // By 100ms, 256KB wins too.
  EXPECT_GT(speedup(256 * 1024, 0.1), 1.3);
}

// --- Figure 5 shape: large requests see no gain in the paper's range ---

TEST(PaperFig5, LargeRequestsNoSignificantGainUpTo100ms) {
  Experiment e(paper_machine());
  for (double delay : {0.0, 0.05, 0.1}) {
    auto base = record_spec(1024 * 1024, 4);
    base.compute_delay = delay;
    auto pf = base;
    pf.prefetch = true;
    const double ratio = bw(e, pf) / bw(e, base);
    EXPECT_LT(ratio, 1.15) << "delay " << delay;
  }
}

// --- Table 4 shape: stripe group scaling ---

TEST(PaperTable4, EightIoNodesGiveNearLinearSpeedupOverOne) {
  Experiment e(paper_machine());
  auto spec = [&](bool narrow) {
    auto w = record_spec(128 * 1024, 4);
    w.prefetch = true;
    pfs::StripeAttrs a;
    a.stripe_unit = 64 * 1024;
    if (narrow) {
      a.stripe_group.assign(8, 0);
    } else {
      a.stripe_group = {0, 1, 2, 3, 4, 5, 6, 7};
    }
    w.attrs = a;
    return w;
  };
  const double r1 = bw(e, spec(true));
  const double r8 = bw(e, spec(false));
  EXPECT_GT(r8 / r1, 4.0);
  EXPECT_LT(r8 / r1, 9.0);
}

// --- SCSI-16 claim ---

TEST(PaperScsi16, FourXBusLiftsLargeRequestThroughput) {
  MachineSpec m8 = paper_machine();
  MachineSpec m16 = paper_machine();
  m16.raid = hw::RaidParams::scsi16();
  Experiment e8(m8), e16(m16);
  auto w = record_spec(1024 * 1024, 2);
  EXPECT_GT(bw(e16, w), bw(e8, w) * 1.2);
}

// --- hit-ratio vs bandwidth: the paper's Section 4 point ---

TEST(PaperSec4, HighHitRatioAloneDoesNotImplyBandwidthGain) {
  // With no delay the hit ratio is high (in-flight hits) yet bandwidth
  // does not improve — "although hit ratio serves as a good measure of
  // performance in a sequential program, in a parallel programming model,
  // overall read bandwidth ... is a better measure".
  Experiment e(paper_machine());
  auto base = record_spec(128 * 1024, 8);
  auto pf = base;
  pf.prefetch = true;
  const auto off = e.run(base);
  const auto on = e.run(pf);
  EXPECT_GT(on.prefetch.hit_ratio(), 0.8);
  EXPECT_LE(on.observed_read_bw_mbs, off.observed_read_bw_mbs * 1.02);
}

}  // namespace
}  // namespace ppfs::workload
