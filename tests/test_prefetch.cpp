// ppfs-lint: allow-file(ref-across-await) test idiom: coroutine referents are stack locals and the test blocks in sim.run()/run_task() before they die
// Tests for the prefetch engine — the paper's contribution.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hw/machine.hpp"
#include "pfs/client.hpp"
#include "pfs/filesystem.hpp"
#include "prefetch/engine.hpp"
#include "prefetch/predictor.hpp"
#include "prefetch/prefetch_buffer.hpp"
#include "sim/simulation.hpp"
#include "sim/when_all.hpp"
#include "test_util.hpp"

namespace ppfs::prefetch {
namespace {

using pfs::IoMode;
using ppfs::test::check_pattern;
using ppfs::test::make_pattern;
using ppfs::test::run_task;
using sim::Simulation;
using sim::SimTime;
using sim::Task;

struct Testbed {
  explicit Testbed(int ncompute = 8, int nio = 8)
      : machine(sim, hw::MachineConfig::paragon(ncompute, nio)),
        fs(machine, pfs::PfsParams{}) {
    for (int r = 0; r < ncompute; ++r) {
      clients.push_back(std::make_unique<pfs::PfsClient>(fs, r, r, ncompute));
    }
  }

  void populate(const std::string& name, ByteCount size) {
    fs.create(name, fs.default_attrs());
    run_task(sim, [](Testbed& tb, std::string n, ByteCount sz) -> Task<void> {
      const int fd = co_await tb.clients[0]->open(n, IoMode::kAsync);
      auto data = make_pattern(1, 0, sz);
      co_await tb.clients[0]->write(fd, data);
      tb.clients[0]->close(fd);
    }(*this, name, size));
  }

  Simulation sim;
  hw::Machine machine;
  pfs::PfsFileSystem fs;
  std::vector<std::unique_ptr<pfs::PfsClient>> clients;
};

/// Old-style convenience over the observe/predict split: feed the read into
/// history, then collect up to `depth` predictions into a vector.
std::vector<FileOffset> predict_vec(Predictor& p, pfs::PfsClient& c, int fd,
                                    FileOffset off, ByteCount len, std::size_t depth) {
  p.observe(c, fd, off, len);
  std::vector<FileOffset> out(depth);
  out.resize(p.predict(c, fd, off, len, out));
  return out;
}

TEST(PrefetchBufferList, ExactMatchFindAndRemove) {
  PrefetchBufferList list;
  auto b = std::make_shared<PrefetchBuffer>();
  b->offset = 100;
  b->length = 50;
  list.add(b);
  EXPECT_EQ(list.find(100, 50), b);
  EXPECT_EQ(list.find(100, 49), nullptr);
  EXPECT_EQ(list.find(99, 50), nullptr);
  EXPECT_EQ(list.resident_bytes(), 50u);
  list.remove(b);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.resident_bytes(), 0u);
}

TEST(PrefetchBufferList, OverlappingDetection) {
  PrefetchBufferList list;
  auto b = std::make_shared<PrefetchBuffer>();
  b->offset = 100;
  b->length = 50;
  list.add(b);
  EXPECT_EQ(list.overlapping(140, 20).size(), 1u);
  EXPECT_EQ(list.overlapping(150, 20).size(), 0u);  // touches end: disjoint
  EXPECT_EQ(list.overlapping(50, 50).size(), 0u);
  EXPECT_EQ(list.overlapping(0, 1000).size(), 1u);
}

TEST(PrefetchBufferList, DrainReturnsEverything) {
  PrefetchBufferList list;
  for (int i = 0; i < 3; ++i) {
    auto b = std::make_shared<PrefetchBuffer>();
    b->offset = i * 100;
    b->length = 100;
    list.add(b);
  }
  auto all = list.drain();
  EXPECT_EQ(all.size(), 3u);
  EXPECT_TRUE(list.empty());
}

TEST(Predictor, SequentialPredictsNextBlocks) {
  Testbed tb(1, 1);
  tb.populate("f", 1024 * 1024);
  run_task(tb.sim, [](Testbed& t) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    SequentialPredictor p;
    auto v = predict_vec(p, *t.clients[0], fd, 0, 64 * 1024, 3);
    EXPECT_EQ(v.size(), 3u);
    if (v.size() == 3) {
      EXPECT_EQ(v[0], 64u * 1024);
      EXPECT_EQ(v[1], 128u * 1024);
      EXPECT_EQ(v[2], 192u * 1024);
    }
    // Near EOF it truncates.
    auto w = predict_vec(p, *t.clients[0], fd, 960 * 1024, 64 * 1024, 3);
    EXPECT_EQ(w.size(), 0u);
    t.clients[0]->close(fd);
  }(tb));
}

TEST(Predictor, ModeAwareFollowsRecordInterleave) {
  Testbed tb(8, 8);
  tb.populate("f", 8 * 1024 * 1024);
  run_task(tb.sim, [](Testbed& t) -> Task<void> {
    auto& c = *t.clients[2];  // rank 2 of 8
    const int fd = co_await c.open("f", IoMode::kRecord);
    std::vector<std::byte> buf(64 * 1024);
    co_await c.read(fd, buf);  // record 2; pointer now one round in
    ModeAwarePredictor p;
    auto v = predict_vec(p, c, fd, 2 * 64 * 1024, 64 * 1024, 2);
    EXPECT_EQ(v.size(), 2u);
    if (v.size() == 2) {
      EXPECT_EQ(v[0], (8u + 2) * 64 * 1024);   // next round, rank 2
      EXPECT_EQ(v[1], (16u + 2) * 64 * 1024);  // round after
    }
    c.close(fd);
  }(tb));
}

TEST(Predictor, ModeAwareDeclinesUnpredictableModes) {
  Testbed tb(2, 2);
  tb.populate("f", 1024 * 1024);
  run_task(tb.sim, [](Testbed& t) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kLog);
    ModeAwarePredictor p;
    EXPECT_TRUE(predict_vec(p, *t.clients[0], fd, 0, 64 * 1024, 1).empty());
    t.clients[0]->close(fd);
  }(tb));
}

TEST(Predictor, StridedLearnsAndForgets) {
  Testbed tb(1, 1);
  tb.populate("f", 4 * 1024 * 1024);
  run_task(tb.sim, [](Testbed& t) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    StridedPredictor p;
    auto& c = *t.clients[0];
    EXPECT_TRUE(predict_vec(p, c, fd, 0, 4096, 2).empty());   // no history
    EXPECT_TRUE(predict_vec(p, c, fd, 100000, 4096, 2).empty());  // one delta
    auto v = predict_vec(p, c, fd, 200000, 4096, 2);  // stride confirmed
    EXPECT_EQ(v.size(), 2u);
    if (v.size() == 2) {
      EXPECT_EQ(v[0], 300000u);
      EXPECT_EQ(v[1], 400000u);
    }
    // Pattern break resets confidence.
    EXPECT_TRUE(predict_vec(p, c, fd, 123, 4096, 2).empty());
    t.clients[0]->close(fd);
  }(tb));
}

TEST(PrefetchEngine, DataIntegrityUnderPrefetchingRecordMode) {
  Testbed tb(8, 8);
  const ByteCount req = 64 * 1024;
  const ByteCount size = req * 8 * 4;
  tb.populate("f", size);
  std::vector<std::unique_ptr<PrefetchEngine>> engines;
  for (auto& c : tb.clients) engines.push_back(attach_prefetcher(*c, PrefetchConfig{}));

  std::vector<std::vector<std::byte>> bufs(8);
  std::vector<Task<void>> procs;
  for (int r = 0; r < 8; ++r) {
    bufs[r].resize(size / 8);
    procs.push_back([](Testbed& t, int rank, std::span<std::byte> mine,
                       ByteCount rq) -> Task<void> {
      const int fd = co_await t.clients[rank]->open("f", IoMode::kRecord);
      for (ByteCount done = 0; done < mine.size(); done += rq) {
        co_await t.clients[rank]->read(fd, mine.subspan(done, rq));
        co_await t.sim.delay(0.05);  // compute phase -> prefetches complete
      }
      t.clients[rank]->close(fd);
    }(tb, r, bufs[r], req));
  }
  run_task(tb.sim, sim::when_all(tb.sim, std::move(procs)));

  for (int r = 0; r < 8; ++r) {
    for (int k = 0; k < 4; ++k) {
      EXPECT_TRUE(check_pattern(
          std::span<const std::byte>(bufs[r]).subspan(k * req, req), 1,
          (static_cast<FileOffset>(k) * 8 + r) * req));
    }
  }
  // Rounds 2..4 should be hits for every rank.
  for (int r = 0; r < 8; ++r) {
    const auto& st = engines[r]->stats();
    EXPECT_EQ(st.hits_ready + st.hits_in_flight, 3u) << "rank " << r;
    EXPECT_EQ(st.misses, 1u) << "rank " << r;
  }
}

TEST(PrefetchEngine, FirstReadMissesThenHits) {
  Testbed tb(1, 8);
  tb.populate("f", 1024 * 1024);
  auto engine = attach_prefetcher(*tb.clients[0], PrefetchConfig{});
  run_task(tb.sim, [](Testbed& t) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    std::vector<std::byte> buf(128 * 1024);
    for (int i = 0; i < 4; ++i) {
      co_await t.clients[0]->read(fd, buf);
      co_await t.sim.delay(0.5);  // plenty of time for the prefetch
    }
    t.clients[0]->close(fd);
  }(tb));
  EXPECT_EQ(engine->stats().misses, 1u);
  EXPECT_EQ(engine->stats().hits_ready, 3u);
  EXPECT_EQ(engine->stats().hits_in_flight, 0u);
}

TEST(PrefetchEngine, BackToBackReadsHitInFlight) {
  Testbed tb(1, 8);
  tb.populate("f", 1024 * 1024);
  auto engine = attach_prefetcher(*tb.clients[0], PrefetchConfig{});
  run_task(tb.sim, [](Testbed& t) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    std::vector<std::byte> buf(128 * 1024);
    for (int i = 0; i < 4; ++i) co_await t.clients[0]->read(fd, buf);  // no delay
    t.clients[0]->close(fd);
  }(tb));
  EXPECT_EQ(engine->stats().misses, 1u);
  EXPECT_EQ(engine->stats().hits_in_flight, 3u);
  EXPECT_GT(engine->stats().wait_time, 0.0);
}

TEST(PrefetchEngine, PrefetchDoesNotMoveFilePointer) {
  Testbed tb(1, 8);
  tb.populate("f", 1024 * 1024);
  auto engine = attach_prefetcher(*tb.clients[0], PrefetchConfig{});
  run_task(tb.sim, [](Testbed& t) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    std::vector<std::byte> buf(64 * 1024);
    co_await t.clients[0]->read(fd, buf);
    const auto ptr_after_read = t.clients[0]->tell(fd);
    co_await t.sim.delay(1.0);  // prefetch completes meanwhile
    EXPECT_EQ(t.clients[0]->tell(fd), ptr_after_read);
    t.clients[0]->close(fd);
  }(tb));
  EXPECT_GE(engine->stats().issued, 1u);
}

TEST(PrefetchEngine, SeekMakesBufferStale) {
  Testbed tb(1, 8);
  tb.populate("f", 1024 * 1024);
  auto engine = attach_prefetcher(*tb.clients[0], PrefetchConfig{});
  run_task(tb.sim, [](Testbed& t) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    std::vector<std::byte> buf(64 * 1024);
    co_await t.clients[0]->read(fd, buf);      // prefetch for 64K issued
    co_await t.sim.delay(0.5);
    co_await t.clients[0]->seek(fd, 32 * 1024);  // overlaps the buffered 64K..128K? no:
    // seek to 96K so the next read [96K,160K) overlaps the [64K,128K) buffer
    co_await t.clients[0]->seek(fd, 96 * 1024);
    co_await t.clients[0]->read(fd, buf);
    t.clients[0]->close(fd);
  }(tb));
  EXPECT_EQ(engine->stats().stale_discarded, 1u);
  EXPECT_EQ(engine->stats().hits_ready, 0u);
}

TEST(PrefetchEngine, CloseFreesBuffersAndCountsWaste) {
  Testbed tb(1, 8);
  tb.populate("f", 1024 * 1024);
  auto engine = attach_prefetcher(*tb.clients[0], PrefetchConfig{});
  int fd_copy = -1;
  run_task(tb.sim, [](Testbed& t, PrefetchEngine& eng, int& fdout) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    fdout = fd;
    std::vector<std::byte> buf(64 * 1024);
    co_await t.clients[0]->read(fd, buf);
    EXPECT_EQ(eng.resident_buffers(fd), 1u);
    // Close while the prefetch may still be in flight: must not crash and
    // must free the list.
    t.clients[0]->close(fd);
    EXPECT_EQ(eng.resident_buffers(fd), 0u);
  }(tb, *engine, fd_copy));
  EXPECT_EQ(engine->stats().wasted, 1u);
}

TEST(PrefetchEngine, DepthKeepsMultipleBuffersAhead) {
  Testbed tb(1, 8);
  tb.populate("f", 4 * 1024 * 1024);
  PrefetchConfig cfg;
  cfg.depth = 4;
  auto engine = attach_prefetcher(*tb.clients[0], cfg);
  run_task(tb.sim, [](Testbed& t, PrefetchEngine& eng) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    std::vector<std::byte> buf(64 * 1024);
    co_await t.clients[0]->read(fd, buf);
    EXPECT_EQ(eng.resident_buffers(fd), 4u);
    co_await t.sim.delay(1.0);
    co_await t.clients[0]->read(fd, buf);  // hit; engine tops back up to 4
    EXPECT_EQ(eng.resident_buffers(fd), 4u);
    t.clients[0]->close(fd);
  }(tb, *engine));
  EXPECT_GE(engine->stats().issued, 5u);
}

TEST(PrefetchEngine, DisabledEngineIsInert) {
  Testbed tb(1, 8);
  tb.populate("f", 1024 * 1024);
  PrefetchConfig cfg;
  cfg.enabled = false;
  auto engine = attach_prefetcher(*tb.clients[0], cfg);
  run_task(tb.sim, [](Testbed& t) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    std::vector<std::byte> buf(64 * 1024);
    co_await t.clients[0]->read(fd, buf);
    co_await t.clients[0]->read(fd, buf);
    t.clients[0]->close(fd);
  }(tb));
  EXPECT_EQ(engine->stats().issued, 0u);
  EXPECT_EQ(engine->stats().misses, 0u);
}

TEST(PrefetchEngine, BalancedWorkloadFasterWithPrefetching) {
  // The paper's headline: with compute between reads, prefetching overlaps
  // I/O with computation and cuts elapsed time.
  auto run_one = [&](bool prefetch) {
    Testbed tb(1, 8);
    tb.populate("f", 2 * 1024 * 1024);
    PrefetchConfig cfg;
    cfg.enabled = prefetch;
    auto engine = attach_prefetcher(*tb.clients[0], cfg);
    SimTime elapsed = 0;
    run_task(tb.sim, [](Testbed& t, SimTime& out) -> Task<void> {
      const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
      std::vector<std::byte> buf(128 * 1024);
      const SimTime t0 = t.sim.now();
      // Compute phase comparable to the read access time, the regime where
      // overlap pays off (paper Fig 4).
      for (int i = 0; i < 16; ++i) {
        co_await t.clients[0]->read(fd, buf);
        co_await t.sim.delay(0.02);  // "computation"
      }
      out = t.sim.now() - t0;
      t.clients[0]->close(fd);
    }(tb, elapsed));
    return elapsed;
  };
  const SimTime with = run_one(true);
  const SimTime without = run_one(false);
  EXPECT_LT(with, without * 0.85);  // solid speedup expected
}

TEST(PrefetchEngine, NoComputeSmallRequestsPrefetchIsNotFaster) {
  // Table 1/3 shape: with no delay between requests, prefetching adds copy
  // + issue overhead and cannot win.
  auto run_one = [&](bool prefetch) {
    Testbed tb(1, 8);
    tb.populate("f", 1024 * 1024);
    PrefetchConfig cfg;
    cfg.enabled = prefetch;
    auto engine = attach_prefetcher(*tb.clients[0], cfg);
    SimTime elapsed = 0;
    run_task(tb.sim, [](Testbed& t, SimTime& out) -> Task<void> {
      const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
      std::vector<std::byte> buf(64 * 1024);
      const SimTime t0 = t.sim.now();
      for (int i = 0; i < 16; ++i) co_await t.clients[0]->read(fd, buf);
      out = t.sim.now() - t0;
      t.clients[0]->close(fd);
    }(tb, elapsed));
    return elapsed;
  };
  EXPECT_GE(run_one(true), run_one(false) * 0.98);
}

}  // namespace
}  // namespace ppfs::prefetch
