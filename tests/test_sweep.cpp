// SweepRunner: the parallel experiment driver's determinism contract.
//
// The load-bearing property is that fanning scenarios across worker
// threads changes nothing observable: same outcomes, same submission
// order, and — the kernel's determinism digest being the strictest
// witness — bit-identical digests against a serial run. Two golden
// digests pin the absolute event stream across kernel refactors.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exp/sweep.hpp"

namespace {

using ppfs::exp::SweepJob;
using ppfs::exp::SweepReport;
using ppfs::exp::SweepRunner;
using ppfs::exp::paper_table_jobs;
using ppfs::exp::run_sweep;
using ppfs::workload::MachineSpec;
using ppfs::workload::WorkloadSpec;

// A quick six-scenario grid (1MB files): two modes x {no-prefetch,
// prefetch, prefetch+delay}.
std::vector<SweepJob> small_grid() {
  std::vector<SweepJob> jobs;
  for (const auto mode : {ppfs::pfs::IoMode::kRecord, ppfs::pfs::IoMode::kUnix}) {
    for (int variant = 0; variant < 3; ++variant) {
      SweepJob job;
      job.work.mode = mode;
      job.work.file_size = 1024 * 1024;
      job.work.prefetch = variant > 0;
      job.work.compute_delay = variant == 2 ? 0.005 : 0.0;
      job.label = std::string(ppfs::pfs::to_string(mode)) + "/" + std::to_string(variant);
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

TEST(SweepRunner, ParallelMatchesSerialBitForBit) {
  const auto jobs = small_grid();
  const SweepReport serial = run_sweep(jobs, 1);
  const SweepReport parallel = run_sweep(jobs, 4);

  ASSERT_TRUE(serial.all_ok());
  ASSERT_TRUE(parallel.all_ok());
  ASSERT_EQ(serial.outcomes.size(), jobs.size());
  ASSERT_EQ(parallel.outcomes.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& s = serial.outcomes[i];
    const auto& p = parallel.outcomes[i];
    EXPECT_EQ(s.label, jobs[i].label);
    EXPECT_EQ(p.label, jobs[i].label);
    // The digest covers every dispatched (time, kind, seq) tuple — if the
    // thread pool perturbed a single event anywhere, this diverges.
    EXPECT_EQ(s.result.digest, p.result.digest) << jobs[i].label;
    EXPECT_EQ(s.result.events_dispatched, p.result.events_dispatched) << jobs[i].label;
    EXPECT_EQ(s.result.total_bytes, p.result.total_bytes) << jobs[i].label;
    EXPECT_EQ(s.result.reads, p.result.reads) << jobs[i].label;
    EXPECT_EQ(s.result.wall_elapsed, p.result.wall_elapsed) << jobs[i].label;
  }
}

TEST(SweepRunner, MoreWorkersThanJobsIsFine) {
  auto jobs = small_grid();
  jobs.resize(2);
  const SweepReport report = run_sweep(jobs, 16);
  ASSERT_TRUE(report.all_ok());
  EXPECT_EQ(report.outcomes.size(), 2u);
  EXPECT_EQ(report.jobs, 16);
}

TEST(SweepRunner, WorkerCountClampsToOne) {
  EXPECT_EQ(SweepRunner(0).jobs(), 1);
  EXPECT_EQ(SweepRunner(-3).jobs(), 1);
  EXPECT_GE(SweepRunner::default_jobs(), 1);
}

TEST(SweepRunner, CapturesJobErrorsWithoutAbortingTheSweep) {
  auto jobs = small_grid();
  jobs.resize(3);
  jobs[1].work.request_size = 0;  // Experiment throws invalid_argument
  const SweepReport report = run_sweep(jobs, 2);
  EXPECT_FALSE(report.all_ok());
  ASSERT_EQ(report.outcomes.size(), 3u);
  EXPECT_TRUE(report.outcomes[0].ok());
  EXPECT_FALSE(report.outcomes[1].ok());
  EXPECT_NE(report.outcomes[1].error.find("request size"), std::string::npos);
  EXPECT_TRUE(report.outcomes[2].ok());
}

// Golden digests: the exact event streams of two paper scenarios, pinned
// across kernel refactors (recorded from ppfs_run --selfcheck). If a queue
// or scheduling change reorders a single event, these change.
TEST(SweepRunner, GoldenDigestRecordMode) {
  SweepJob job;
  job.label = "M_RECORD 1M/64K";
  job.work.file_size = 1024 * 1024;
  const auto report = run_sweep({job}, 1);
  ASSERT_TRUE(report.all_ok());
  EXPECT_EQ(report.outcomes[0].result.digest, 0x0c1e17e218fb1117ull);
  EXPECT_EQ(report.outcomes[0].result.events_dispatched, 391u);
}

TEST(SweepRunner, GoldenDigestUnixPrefetch) {
  SweepJob job;
  job.label = "M_UNIX prefetch 1M/64K delay 5ms";
  job.work.mode = ppfs::pfs::IoMode::kUnix;
  job.work.file_size = 1024 * 1024;
  job.work.prefetch = true;
  job.work.compute_delay = 0.005;
  const auto report = run_sweep({job}, 1);
  ASSERT_TRUE(report.all_ok());
  EXPECT_EQ(report.outcomes[0].result.digest, 0x6355a48ff39b604dull);
  EXPECT_EQ(report.outcomes[0].result.events_dispatched, 825u);
}

TEST(SweepRunner, PaperTableJobsShape) {
  const MachineSpec machine;
  const WorkloadSpec base;
  const auto jobs = paper_table_jobs(machine, base);
  ASSERT_EQ(jobs.size(), 10u);  // 5 request sizes x prefetch off/on
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].work.prefetch, i % 2 == 1);
    EXPECT_GE(jobs[i].work.file_size, 4u * 1024 * 1024);
    EXPECT_FALSE(jobs[i].label.empty());
  }
  EXPECT_EQ(jobs[0].work.request_size, 64u * 1024);
  EXPECT_EQ(jobs[9].work.request_size, 1024u * 1024);
}

}  // namespace
