// ppfs-lint: allow-file(ref-across-await) test idiom: coroutine referents are stack locals and the test blocks in sim.run()/run_task() before they die
// Unit tests for the mesh interconnect, node CPU model, and Machine wiring.
#include <gtest/gtest.h>

#include <vector>

#include "hw/machine.hpp"
#include "hw/mesh.hpp"
#include "hw/node.hpp"
#include "sim/simulation.hpp"

namespace ppfs::hw {
namespace {

using sim::Simulation;
using sim::SimTime;
using sim::Task;

TEST(Mesh, RouteLengthMatchesManhattanDistance) {
  Simulation sim;
  MeshNetwork mesh(sim, MeshConfig{.width = 4, .height = 4});
  EXPECT_EQ(mesh.route(0, 0).size(), 0u);
  EXPECT_EQ(mesh.route(0, 3).size(), 3u);
  EXPECT_EQ(mesh.route(0, 15).size(), 6u);
  EXPECT_EQ(mesh.hop_count(0, 15), 6);
  EXPECT_EQ(mesh.hop_count(5, 6), 1);
}

TEST(Mesh, DimensionOrderedRoutingGoesXFirst) {
  Simulation sim;
  MeshNetwork mesh(sim, MeshConfig{.width = 4, .height = 4});
  // 0 -> 15: east along row 0, then north up column 3.
  auto path = mesh.route(0, 15);
  ASSERT_EQ(path.size(), 6u);
  // First three links leave nodes 0,1,2 eastward (dir 0).
  EXPECT_EQ(path[0], 0 * 4 + 0);
  EXPECT_EQ(path[1], 1 * 4 + 0);
  EXPECT_EQ(path[2], 2 * 4 + 0);
  // Then up from nodes 3, 7, 11 (dir 2).
  EXPECT_EQ(path[3], 3 * 4 + 2);
  EXPECT_EQ(path[4], 7 * 4 + 2);
  EXPECT_EQ(path[5], 11 * 4 + 2);
}

TEST(Mesh, ReverseRouteUsesDifferentLinks) {
  Simulation sim;
  MeshNetwork mesh(sim, MeshConfig{.width = 4, .height = 4});
  auto fwd = mesh.route(0, 5);
  auto rev = mesh.route(5, 0);
  for (int f : fwd) {
    for (int r : rev) EXPECT_NE(f, r);  // directed links
  }
}

TEST(Mesh, InvalidNodeThrows) {
  Simulation sim;
  MeshNetwork mesh(sim, MeshConfig{.width = 2, .height = 2});
  EXPECT_THROW(mesh.route(0, 4), std::out_of_range);
  EXPECT_THROW(mesh.route(-1, 0), std::out_of_range);
}

SimTime timed_send(Simulation& sim, MeshNetwork& mesh, NodeId src, NodeId dst,
                   sim::ByteCount bytes) {
  SimTime out = -1;
  sim.spawn([](Simulation& s, MeshNetwork& m, NodeId a, NodeId b, sim::ByteCount n,
               SimTime& res) -> Task<void> {
    const SimTime start = s.now();
    co_await m.send(a, b, n);
    res = s.now() - start;
  }(sim, mesh, src, dst, bytes, out));
  sim.run();
  return out;
}

TEST(Mesh, SendTimeIncludesSoftwareAndWireComponents) {
  Simulation sim;
  MeshConfig cfg{.width = 4, .height = 4};
  MeshNetwork mesh(sim, cfg);
  const auto t = timed_send(sim, mesh, 0, 3, 1'000'000);
  const double expected = cfg.software_latency + 3 * cfg.hop_latency +
                          1'000'000 / cfg.link_bandwidth;
  EXPECT_NEAR(t, expected, 1e-12);
  EXPECT_EQ(mesh.messages(), 1u);
  EXPECT_EQ(mesh.bytes_moved(), 1'000'000u);
}

TEST(Mesh, LocalSendCostsOnlySoftwareLatency) {
  Simulation sim;
  MeshConfig cfg{.width = 2, .height = 2};
  MeshNetwork mesh(sim, cfg);
  const auto t = timed_send(sim, mesh, 1, 1, 1'000'000);
  EXPECT_NEAR(t, cfg.software_latency, 1e-12);
}

TEST(Mesh, OverlappingPathsContend) {
  // Two messages sharing a link serialize; two on disjoint paths do not.
  MeshConfig cfg{.width = 4, .height = 1};
  const sim::ByteCount big = 10'000'000;

  Simulation sim1;
  MeshNetwork shared(sim1, cfg);
  std::vector<SimTime> done;
  for (int i = 0; i < 2; ++i) {
    sim1.spawn([](Simulation& s, MeshNetwork& m, std::vector<SimTime>& out,
                  sim::ByteCount b) -> Task<void> {
      co_await m.send(0, 3, b);  // same path
      out.push_back(s.now());
    }(sim1, shared, done, big));
  }
  sim1.run();
  ASSERT_EQ(done.size(), 2u);
  const double wire = big / cfg.link_bandwidth;
  EXPECT_GT(done[1], 2 * wire * 0.99);  // serialized

  Simulation sim2;
  MeshNetwork disjoint(sim2, MeshConfig{.width = 4, .height = 2});
  std::vector<SimTime> done2;
  sim2.spawn([](Simulation& s, MeshNetwork& m, std::vector<SimTime>& out,
                sim::ByteCount b) -> Task<void> {
    co_await m.send(0, 3, b);  // row 0
    out.push_back(s.now());
  }(sim2, disjoint, done2, big));
  sim2.spawn([](Simulation& s, MeshNetwork& m, std::vector<SimTime>& out,
                sim::ByteCount b) -> Task<void> {
    co_await m.send(4, 7, b);  // row 1, disjoint
    out.push_back(s.now());
  }(sim2, disjoint, done2, big));
  sim2.run();
  ASSERT_EQ(done2.size(), 2u);
  EXPECT_LT(done2[1], 2 * wire);  // ran in parallel
}

TEST(NodeCpu, CopyTimeScalesWithBytes) {
  Simulation sim;
  CpuParams p;
  NodeCpu cpu(sim, "n0", p);
  EXPECT_DOUBLE_EQ(cpu.copy_time(0), 0.0);
  EXPECT_NEAR(cpu.copy_time(4'000'000), 4'000'000 / p.mem_copy_bandwidth, 1e-12);
}

TEST(NodeCpu, SingleCoreSerializesWork) {
  Simulation sim;
  NodeCpu cpu(sim, "n0", CpuParams{.cores = 1});
  std::vector<SimTime> done;
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](Simulation& s, NodeCpu& c, std::vector<SimTime>& out) -> Task<void> {
      co_await c.compute(1.0);
      out.push_back(s.now());
    }(sim, cpu, done));
  }
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 2.0);
  EXPECT_DOUBLE_EQ(cpu.busy_time(), 2.0);
}

TEST(NodeCpu, SmpNodesRunInParallel) {
  Simulation sim;
  NodeCpu cpu(sim, "mp", CpuParams{.cores = 3});
  std::vector<SimTime> done;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Simulation& s, NodeCpu& c, std::vector<SimTime>& out) -> Task<void> {
      co_await c.compute(1.0);
      out.push_back(s.now());
    }(sim, cpu, done));
  }
  sim.run();
  for (auto t : done) EXPECT_DOUBLE_EQ(t, 1.0);
}

TEST(Machine, ParagonPresetShape) {
  Simulation sim;
  Machine m(sim, MachineConfig::paragon(8, 8));
  EXPECT_EQ(m.compute_node_count(), 8);
  EXPECT_EQ(m.io_node_count(), 8);
  EXPECT_EQ(m.config().mesh.width * m.config().mesh.height, 16);
  // Compute and I/O partitions are disjoint.
  for (int c = 0; c < 8; ++c) {
    EXPECT_EQ(m.io_index_of(m.compute_node(c)), -1);
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(m.io_index_of(m.io_node(i)), i);
  }
}

TEST(Machine, OddSizesGetEnoughMeshRows) {
  Simulation sim;
  Machine m(sim, MachineConfig::paragon(8, 1));
  EXPECT_EQ(m.io_node_count(), 1);
  EXPECT_GE(m.config().mesh.node_count(), 9);
  EXPECT_NO_THROW(m.raid(0));
  EXPECT_NO_THROW(m.cpu(m.io_node(0)));
}

TEST(Machine, RejectsZeroNodes) {
  EXPECT_THROW(MachineConfig::paragon(0, 8), std::invalid_argument);
  EXPECT_THROW(MachineConfig::paragon(8, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ppfs::hw
