// ppfs-lint: allow-file(ref-across-await) test idiom: coroutine referents are stack locals and the test blocks in sim.run()/run_task() before they die
// AdaptaFetch: the adaptive readahead controller, the pattern-predictor
// ensemble, the FdMap they keep per-fd state in, and the end-to-end
// contracts — seed-determinism across sweep workers, default-off digest
// identity, and fault-path collapse/resume.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "exp/sweep.hpp"
#include "fault/plan.hpp"
#include "hw/machine.hpp"
#include "pfs/client.hpp"
#include "pfs/filesystem.hpp"
#include "prefetch/controller.hpp"
#include "prefetch/engine.hpp"
#include "prefetch/ensemble.hpp"
#include "prefetch/fd_map.hpp"
#include "prefetch/predictor.hpp"
#include "sim/simulation.hpp"
#include "test_util.hpp"
#include "workload/experiment.hpp"

namespace ppfs::prefetch {
namespace {

using pfs::IoMode;
using ppfs::test::make_pattern;
using ppfs::test::run_task;
using sim::Simulation;
using sim::Task;
using workload::Experiment;
using workload::ExperimentResult;
using workload::WorkloadSpec;

// --- FdMap ------------------------------------------------------------------

TEST(FdMap, EmptyMapFindsNothing) {
  FdMap<int> m;
  EXPECT_EQ(m.find(0), nullptr);
  EXPECT_EQ(m.find(42), nullptr);
  EXPECT_TRUE(m.empty());
  m.erase(7);  // no-op, must not crash
}

TEST(FdMap, InsertFindEraseRoundTrip) {
  FdMap<int> m;
  m.get_or_insert(3) = 30;
  m.get_or_insert(5) = 50;
  ASSERT_NE(m.find(3), nullptr);
  EXPECT_EQ(*m.find(3), 30);
  ASSERT_NE(m.find(5), nullptr);
  EXPECT_EQ(*m.find(5), 50);
  EXPECT_EQ(m.find(4), nullptr);
  EXPECT_EQ(m.size(), 2u);

  m.erase(3);
  EXPECT_EQ(m.find(3), nullptr);
  EXPECT_EQ(m.size(), 1u);
  // Reinsert after a tombstone lands on the same probe chain.
  m.get_or_insert(3) = 31;
  ASSERT_NE(m.find(3), nullptr);
  EXPECT_EQ(*m.find(3), 31);
}

TEST(FdMap, SurvivesGrowthRehash) {
  FdMap<std::uint64_t> m;
  for (int fd = 0; fd < 500; ++fd) m.get_or_insert(fd) = static_cast<std::uint64_t>(fd) * 7;
  EXPECT_EQ(m.size(), 500u);
  for (int fd = 0; fd < 500; ++fd) {
    ASSERT_NE(m.find(fd), nullptr) << fd;
    EXPECT_EQ(*m.find(fd), static_cast<std::uint64_t>(fd) * 7);
  }
  for (int fd = 0; fd < 500; fd += 2) m.erase(fd);
  EXPECT_EQ(m.size(), 250u);
  for (int fd = 1; fd < 500; fd += 2) ASSERT_NE(m.find(fd), nullptr) << fd;
  for (int fd = 0; fd < 500; fd += 2) EXPECT_EQ(m.find(fd), nullptr) << fd;
}

TEST(FdMap, TombstoneHeavyGrowthKeepsPow2Masking) {
  // Regression: rehash() masks probes with size-1, so every growth step
  // must land on a power of two. Drive many interleaved insert/erase
  // cycles so growth happens while tombstones dominate the load factor —
  // with a non-pow2 slot count the probe mask skips slots and these
  // lookups would miss live keys (or get_or_insert would spin).
  FdMap<int> m;
  for (int round = 0; round < 8; ++round) {
    const int base = round * 1000;
    for (int fd = base; fd < base + 600; ++fd) m.get_or_insert(fd) = fd;
    for (int fd = base; fd < base + 600; fd += 3) m.erase(fd);
  }
  std::size_t live = 0;
  for (int round = 0; round < 8; ++round) {
    const int base = round * 1000;
    for (int fd = base; fd < base + 600; ++fd) {
      if ((fd - base) % 3 == 0) {
        ASSERT_EQ(m.find(fd), nullptr) << fd;
      } else {
        ASSERT_NE(m.find(fd), nullptr) << fd;
        EXPECT_EQ(*m.find(fd), fd);
        ++live;
      }
    }
  }
  EXPECT_EQ(m.size(), live);
}

TEST(FdMap, OpenCloseChurnDoesNotLeak) {
  // The StridedPredictor leak this PR fixes: size must track live fds, not
  // every fd ever seen.
  FdMap<int> m;
  for (int fd = 0; fd < 10000; ++fd) {
    m.get_or_insert(fd) = fd;
    m.erase(fd);
  }
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
}

// --- AdaptiveController (pure unit tests; no machine needed) ---------------

ControllerParams test_params(std::size_t max_depth = 8, std::size_t window = 4,
                             std::size_t miss_storm = 4) {
  ControllerParams p;
  p.max_depth = max_depth;
  p.window = window;
  p.miss_storm = miss_storm;
  p.seed = 0;  // full-length first window: tests count reads exactly
  return p;
}

TEST(AdaptiveController, UnknownFdUsesMinDepth) {
  AdaptiveController c(test_params());
  EXPECT_EQ(c.depth(99), 1u);
}

TEST(AdaptiveController, RampsUpOnHitWindowsUntilMax) {
  AdaptiveController c(test_params(8, 4));
  c.on_open(1);
  EXPECT_EQ(c.depth(1), 1u);
  for (int w = 0; w < 3; ++w) {
    for (int i = 0; i < 4; ++i) c.on_hit(1);
  }
  EXPECT_EQ(c.depth(1), 8u);  // 1 -> 2 -> 4 -> 8
  EXPECT_EQ(c.counters().ramp_ups, 3u);
  // Further perfect windows stay capped at max_depth.
  for (int i = 0; i < 4; ++i) c.on_hit(1);
  EXPECT_EQ(c.depth(1), 8u);
  EXPECT_EQ(c.counters().ramp_ups, 3u);
}

TEST(AdaptiveController, LosingWindowHalvesDepth) {
  AdaptiveController c(test_params(8, 4, /*miss_storm=*/100));
  c.on_open(1);
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 4; ++i) c.on_hit(1);
  }
  ASSERT_EQ(c.depth(1), 4u);
  // 1 hit in 4 reads: below the 1/2 floor -> halve.
  c.on_miss(1);
  c.on_miss(1);
  c.on_hit(1);
  c.on_miss(1);
  EXPECT_EQ(c.depth(1), 2u);
  EXPECT_EQ(c.counters().ramp_downs, 1u);
}

TEST(AdaptiveController, MixedWindowHoldsDepth) {
  AdaptiveController c(test_params(8, 4, /*miss_storm=*/100));
  c.on_open(1);
  for (int i = 0; i < 4; ++i) c.on_hit(1);
  ASSERT_EQ(c.depth(1), 2u);
  // 2/4 hits: not >= 3/4 (no ramp) and not < 1/2 (no halve).
  c.on_hit(1);
  c.on_miss(1);
  c.on_hit(1);
  c.on_miss(1);
  EXPECT_EQ(c.depth(1), 2u);
  EXPECT_EQ(c.counters().ramp_downs, 0u);
}

TEST(AdaptiveController, WastedBuffersVetoRampUp) {
  AdaptiveController c(test_params(8, 4, /*miss_storm=*/100));
  c.on_open(1);
  for (int i = 0; i < 4; ++i) c.on_hit(1);
  ASSERT_EQ(c.depth(1), 2u);
  // Perfect hits but the window saw waste: back off instead of ramping.
  c.on_wasted(1, 1);
  for (int i = 0; i < 4; ++i) c.on_hit(1);
  EXPECT_EQ(c.depth(1), 1u);
  EXPECT_EQ(c.counters().ramp_downs, 1u);
}

TEST(AdaptiveController, MissStormCollapsesWithoutWaitingForWindow) {
  AdaptiveController c(test_params(8, /*window=*/16, /*miss_storm=*/4));
  c.on_open(1);
  // Reach depth 8 with two perfect 16-read windows... use window 16: 32 hits.
  for (int i = 0; i < 48; ++i) c.on_hit(1);
  ASSERT_EQ(c.depth(1), 8u);
  for (int i = 0; i < 4; ++i) c.on_miss(1);  // storm: 4 consecutive
  EXPECT_EQ(c.depth(1), 1u);
  EXPECT_EQ(c.counters().collapses, 1u);
  // A hit in between resets the run: 3 misses, hit, 3 misses = no collapse.
  for (int i = 0; i < 32; ++i) c.on_hit(1);
  ASSERT_GT(c.depth(1), 1u);
  for (int i = 0; i < 3; ++i) c.on_miss(1);
  c.on_hit(1);
  for (int i = 0; i < 3; ++i) c.on_miss(1);
  EXPECT_EQ(c.counters().collapses, 1u);
}

TEST(AdaptiveController, FaultCollapsesAndCloseForgets) {
  AdaptiveController c(test_params());
  c.on_open(1);
  for (int i = 0; i < 8; ++i) c.on_hit(1);
  ASSERT_EQ(c.depth(1), 4u);
  c.on_fault(1);
  EXPECT_EQ(c.depth(1), 1u);
  EXPECT_EQ(c.counters().collapses, 1u);
  // Ramp again, then close: the fd's state is dropped back to min.
  for (int i = 0; i < 8; ++i) c.on_hit(1);
  ASSERT_EQ(c.depth(1), 4u);
  c.on_close(1);
  EXPECT_EQ(c.depth(1), 1u);
}

TEST(AdaptiveController, SeedPhasesFirstWindowOnly) {
  // seed=2 with window=4: the first evaluation happens after 2 reads, every
  // later one after 4 — the trajectory is still a pure function of the
  // stream, just phase-shifted.
  ControllerParams p = test_params();
  p.seed = 2;
  AdaptiveController c(p);
  c.on_open(1);
  c.on_hit(1);
  c.on_hit(1);  // first (short) window closes: 2/2 hits -> ramp
  EXPECT_EQ(c.depth(1), 2u);
  c.on_hit(1);
  c.on_hit(1);
  c.on_hit(1);
  EXPECT_EQ(c.depth(1), 2u);  // full window not yet closed
  c.on_hit(1);
  EXPECT_EQ(c.depth(1), 4u);
}

// --- ListIoPredictor --------------------------------------------------------

struct Testbed {
  explicit Testbed(int ncompute = 1, int nio = 1)
      : machine(sim, hw::MachineConfig::paragon(ncompute, nio)),
        fs(machine, pfs::PfsParams{}) {
    for (int r = 0; r < ncompute; ++r) {
      clients.push_back(std::make_unique<pfs::PfsClient>(fs, r, r, ncompute));
    }
  }

  void populate(const std::string& name, ByteCount size) {
    fs.create(name, fs.default_attrs());
    run_task(sim, [](Testbed& tb, std::string n, ByteCount sz) -> Task<void> {
      const int fd = co_await tb.clients[0]->open(n, IoMode::kAsync);
      auto data = make_pattern(1, 0, sz);
      co_await tb.clients[0]->write(fd, data);
      tb.clients[0]->close(fd);
    }(*this, name, size));
  }

  Simulation sim;
  hw::Machine machine;
  pfs::PfsFileSystem fs;
  std::vector<std::unique_ptr<pfs::PfsClient>> clients;
};

std::vector<FileOffset> predict_vec(Predictor& p, pfs::PfsClient& c, int fd,
                                    FileOffset off, ByteCount len, std::size_t depth) {
  p.observe(c, fd, off, len);
  std::vector<FileOffset> out(depth);
  out.resize(p.predict(c, fd, off, len, out));
  return out;
}

TEST(ListIoPredictor, LearnsGappedExtentCycle) {
  Testbed tb;
  tb.populate("f", 4 * 1024 * 1024);
  run_task(tb.sim, [](Testbed& t) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    auto& c = *t.clients[0];
    ListIoPredictor p;
    const ByteCount r = 4096;
    // Delta cycle of period 3: +r, +2r, +3r — deliberately with no shorter
    // period hiding in any prefix (a 2r,2r,... cycle would lock period 1
    // early). Two full cycles are needed before it speaks.
    const FileOffset seq[] = {0, r, 3 * r, 6 * r, 7 * r, 9 * r, 12 * r};
    for (int i = 0; i < 6; ++i) {
      EXPECT_TRUE(predict_vec(p, c, fd, seq[i], r, 3).empty()) << seq[i];
    }
    // 7th observation completes the second cycle; period 3 locks in.
    auto v = predict_vec(p, c, fd, seq[6], r, 4);
    EXPECT_EQ(v.size(), 4u);
    if (v.size() == 4) {
      EXPECT_EQ(v[0], 13 * r);  // +r  (cycle restarts)
      EXPECT_EQ(v[1], 15 * r);  // +2r
      EXPECT_EQ(v[2], 18 * r);  // +3r
      EXPECT_EQ(v[3], 19 * r);  // +r again
    }
    t.clients[0]->close(fd);
  }(tb));
}

TEST(ListIoPredictor, PatternBreakStopsPredictionsUntilRelearned) {
  Testbed tb;
  tb.populate("f", 4 * 1024 * 1024);
  run_task(tb.sim, [](Testbed& t) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    auto& c = *t.clients[0];
    ListIoPredictor p;
    const ByteCount r = 4096;
    FileOffset off = 0;
    // Constant delta = period 1; confirmed after two deltas.
    for (int i = 0; i < 3; ++i) {
      p.observe(c, fd, off, r);
      off += 2 * r;
    }
    FileOffset one;
    EXPECT_EQ(p.predict(c, fd, off - 2 * r, r, {&one, 1}), 1u);
    // Break the cycle: a wild seek invalidates the learned period.
    auto v = predict_vec(p, c, fd, 1000 * r, r, 2);
    EXPECT_TRUE(v.empty());
    t.clients[0]->close(fd);
  }(tb));
}

TEST(ListIoPredictor, ForgetDropsHistory) {
  Testbed tb;
  tb.populate("f", 4 * 1024 * 1024);
  run_task(tb.sim, [](Testbed& t) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    auto& c = *t.clients[0];
    ListIoPredictor p;
    const ByteCount r = 4096;
    FileOffset off = 0;
    for (int i = 0; i < 3; ++i) {
      p.observe(c, fd, off, r);
      off += 2 * r;
    }
    FileOffset one;
    EXPECT_EQ(p.predict(c, fd, off - 2 * r, r, {&one, 1}), 1u);
    p.forget(fd);
    EXPECT_EQ(p.predict(c, fd, off - 2 * r, r, {&one, 1}), 0u);
    t.clients[0]->close(fd);
  }(tb));
}

// --- EnsemblePredictor ------------------------------------------------------

TEST(EnsemblePredictor, ColdStartIssuesNothing) {
  Testbed tb;
  tb.populate("f", 4 * 1024 * 1024);
  run_task(tb.sim, [](Testbed& t) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    EnsemblePredictor p;
    EXPECT_TRUE(predict_vec(p, *t.clients[0], fd, 0, 4096, 4).empty());
    EXPECT_EQ(p.winner(fd), -1);
    t.clients[0]->close(fd);
  }(tb));
}

TEST(EnsemblePredictor, StridedStreamElectsStridedMember) {
  Testbed tb;
  tb.populate("f", 16 * 1024 * 1024);
  run_task(tb.sim, [](Testbed& t) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    auto& c = *t.clients[0];
    EnsemblePredictor p;
    const ByteCount r = 4096;
    const FileOffset stride = 32 * r;
    std::vector<FileOffset> last;
    for (int k = 0; k < 8; ++k) {
      last = predict_vec(p, c, fd, static_cast<FileOffset>(k) * stride, r, 2);
    }
    const int w = p.winner(fd);
    EXPECT_GE(w, 0);
    EXPECT_STREQ(EnsemblePredictor::member_name(static_cast<std::size_t>(w)),
                 "strided");
    EXPECT_EQ(last.size(), 2u);
    if (last.size() == 2) {
      EXPECT_EQ(last[0], 8u * stride);
      EXPECT_EQ(last[1], 9u * stride);
    }
    // forget() resets confidence: back to cold.
    p.forget(fd);
    EXPECT_EQ(p.winner(fd), -1);
    EXPECT_TRUE(predict_vec(p, c, fd, 20 * stride, r, 2).empty());
    t.clients[0]->close(fd);
  }(tb));
}

TEST(EnsemblePredictor, SequentialRecordStreamKeepsModeAwareRule) {
  // On the paper's own workload shape the prototype's predictor must stay
  // in charge (declaration-order tie-break).
  Testbed tb(8, 8);
  tb.populate("f", 8 * 1024 * 1024);
  run_task(tb.sim, [](Testbed& t) -> Task<void> {
    auto& c = *t.clients[2];  // rank 2 of 8
    const int fd = co_await c.open("f", IoMode::kRecord);
    EnsemblePredictor p;
    const ByteCount r = 64 * 1024;
    std::vector<std::byte> buf(r);
    std::vector<FileOffset> last;
    for (int k = 0; k < 6; ++k) {
      // tell() reports the collective round base; rank 2's record sits two
      // slots in — the true offset the engine hands to after_read.
      const FileOffset off = c.tell(fd) + 2 * r;
      co_await c.read(fd, buf);
      last = predict_vec(p, c, fd, off, r, 1);
    }
    const int w = p.winner(fd);
    EXPECT_GE(w, 0);
    EXPECT_STREQ(EnsemblePredictor::member_name(static_cast<std::size_t>(w)),
                 "mode-aware");
    c.close(fd);
  }(tb));
}

// --- Engine integration -----------------------------------------------------

TEST(AdaptiveEngine, DepthRampsOnSequentialStreamAndStatsTrackIt) {
  Testbed tb(1, 8);
  tb.populate("f", 8 * 1024 * 1024);
  PrefetchConfig cfg;
  cfg.adaptive_depth = true;
  cfg.max_depth = 8;
  cfg.predictor = PredictorKind::kEnsemble;
  auto engine = attach_prefetcher(*tb.clients[0], cfg);
  run_task(tb.sim, [](Testbed& t, PrefetchEngine& eng) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    EXPECT_EQ(eng.current_depth(fd), 1u);
    std::vector<std::byte> buf(64 * 1024);
    for (int i = 0; i < 32; ++i) {
      co_await t.clients[0]->read(fd, buf);
      co_await t.sim.delay(0.05);
    }
    EXPECT_EQ(eng.current_depth(fd), 8u);
    t.clients[0]->close(fd);
  }(tb, *engine));
  const auto& st = engine->stats();
  EXPECT_GE(st.depth_ramp_ups, 3u);  // 1 -> 2 -> 4 -> 8
  EXPECT_EQ(st.depth_collapses, 0u);
  EXPECT_GT(st.hits_ready + st.hits_in_flight, 20u);
  // Depth histogram populated across the ramp, not just at one depth.
  std::uint64_t buckets_used = 0;
  for (const auto b : st.depth_hist) buckets_used += b != 0;
  EXPECT_GE(buckets_used, 3u);
}

TEST(AdaptiveEngine, MaxDepthBoundedByBufferCap) {
  Testbed tb(1, 8);
  tb.populate("f", 8 * 1024 * 1024);
  PrefetchConfig cfg;
  cfg.adaptive_depth = true;
  cfg.max_depth = 32;
  cfg.max_buffers_per_file = 4;  // occupancy bound wins
  cfg.predictor = PredictorKind::kEnsemble;
  auto engine = attach_prefetcher(*tb.clients[0], cfg);
  run_task(tb.sim, [](Testbed& t, PrefetchEngine& eng) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    std::vector<std::byte> buf(64 * 1024);
    for (int i = 0; i < 32; ++i) {
      co_await t.clients[0]->read(fd, buf);
      co_await t.sim.delay(0.05);
    }
    EXPECT_LE(eng.current_depth(fd), 4u);
    t.clients[0]->close(fd);
  }(tb, *engine));
  ASSERT_NE(engine->controller(), nullptr);
  EXPECT_EQ(engine->controller()->params().max_depth, 4u);
}

TEST(AdaptiveEngine, SeekStormCollapsesDepth) {
  Testbed tb(1, 8);
  tb.populate("f", 16 * 1024 * 1024);
  PrefetchConfig cfg;
  cfg.adaptive_depth = true;
  cfg.max_depth = 8;
  cfg.predictor = PredictorKind::kEnsemble;
  auto engine = attach_prefetcher(*tb.clients[0], cfg);
  run_task(tb.sim, [](Testbed& t, PrefetchEngine& eng) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    std::vector<std::byte> buf(64 * 1024);
    for (int i = 0; i < 16; ++i) {
      co_await t.clients[0]->read(fd, buf);
      co_await t.sim.delay(0.05);
    }
    EXPECT_GT(eng.current_depth(fd), 1u);
    // Unpredictable seek storm: every read now misses.
    sim::Rng rng(7);
    for (int i = 0; i < 8; ++i) {
      co_await t.clients[0]->seek(
          fd, static_cast<FileOffset>(rng.uniform_int(0, 200)) * 64 * 1024);
      co_await t.clients[0]->read(fd, buf);
    }
    EXPECT_EQ(eng.current_depth(fd), 1u);
    t.clients[0]->close(fd);
  }(tb, *engine));
  EXPECT_GE(engine->stats().depth_collapses, 1u);
}

// --- Experiment-level contracts --------------------------------------------

WorkloadSpec adaptive_spec(workload::AccessPattern pattern, pfs::IoMode mode,
                           ByteCount file_size) {
  WorkloadSpec w;
  w.mode = mode;
  w.pattern = pattern;
  w.file_size = file_size;
  w.request_size = 64 * 1024;
  w.compute_delay = 0.004;
  w.verify = true;
  w.prefetch = true;
  w.prefetch_cfg.adaptive_depth = true;
  w.prefetch_cfg.max_depth = 8;
  w.prefetch_cfg.predictor = PredictorKind::kEnsemble;
  return w;
}

TEST(AdaptiveDeterminism, DigestStableAcrossSweepWorkers) {
  // The adaptive acceptance contract: same spec, same digest, --jobs 1 vs 8.
  std::vector<exp::SweepJob> jobs;
  jobs.push_back({"seq", workload::MachineSpec{},
                  adaptive_spec(workload::AccessPattern::kInterleaved,
                                IoMode::kRecord, 8 * 1024 * 1024)});
  jobs.push_back({"strided", workload::MachineSpec{},
                  adaptive_spec(workload::AccessPattern::kStrided, IoMode::kAsync,
                                32 * 1024 * 1024)});
  jobs.push_back({"listio", workload::MachineSpec{},
                  adaptive_spec(workload::AccessPattern::kListIo, IoMode::kAsync,
                                18 * 1024 * 1024)});
  const auto serial = exp::run_sweep(jobs, 1);
  const auto parallel = exp::run_sweep(jobs, 8);
  ASSERT_TRUE(serial.all_ok());
  ASSERT_TRUE(parallel.all_ok());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(serial.outcomes[i].result.digest, parallel.outcomes[i].result.digest)
        << jobs[i].label;
    EXPECT_EQ(serial.outcomes[i].result.events_dispatched,
              parallel.outcomes[i].result.events_dispatched)
        << jobs[i].label;
    EXPECT_EQ(serial.outcomes[i].result.verify_failures, 0u) << jobs[i].label;
  }
}

TEST(AdaptiveDeterminism, SameSeedSameDigestDifferentSeedStillVerifies) {
  auto w = adaptive_spec(workload::AccessPattern::kInterleaved, IoMode::kRecord,
                         8 * 1024 * 1024);
  Experiment exp;
  w.prefetch_cfg.adaptive_seed = 7;
  const auto a = exp.run(w);
  const auto b = exp.run(w);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  w.prefetch_cfg.adaptive_seed = 8;
  const auto c = exp.run(w);
  EXPECT_EQ(c.verify_failures, 0u);
  EXPECT_EQ(c.total_bytes, a.total_bytes);
}

TEST(AdaptiveDeterminism, AdaptiveOffKnobsKeepLegacyDigest) {
  // Default-off contract: with adaptive_depth=false the new knobs must not
  // perturb the event stream at all.
  WorkloadSpec w;
  w.file_size = 4 * 1024 * 1024;
  w.prefetch = true;
  Experiment exp;
  const auto legacy = exp.run(w);
  w.prefetch_cfg.max_depth = 32;     // ignored while adaptive_depth is off
  w.prefetch_cfg.adaptive_seed = 99;
  w.prefetch_cfg.feedback_window = 2;
  w.prefetch_cfg.miss_storm = 2;
  const auto knobs = exp.run(w);
  EXPECT_EQ(legacy.digest, knobs.digest);
  EXPECT_EQ(legacy.events_dispatched, knobs.events_dispatched);
}

TEST(AdaptiveFaultPath, CrashCollapsesDepthThenRampsBack) {
  // The fault gate and the controller compose: a crash sheds buffers,
  // collapses every fd to depth 1, and the stream still verifies; after
  // recovery the controller ramps again (ramp-ups follow the collapse).
  // The crash lands at t=0.2, deep into steady state: every fd has ramped
  // and holds resident readahead, so the shed and collapse paths both fire.
  auto w = adaptive_spec(workload::AccessPattern::kInterleaved, IoMode::kRecord,
                         16 * 1024 * 1024);
  w.compute_delay = 0.01;
  w.faults = fault::parse_plan("crash:io=1,at=0.2,outage=0.08");
  Experiment exp;
  const ExperimentResult r = exp.run(w);
  EXPECT_GT(r.prefetch.fault_pauses, 0u);
  EXPECT_GT(r.prefetch.shed, 0u);
  EXPECT_GE(r.prefetch.depth_collapses, 1u);
  EXPECT_GT(r.prefetch.depth_ramp_ups, r.prefetch.depth_collapses);
  EXPECT_EQ(r.faults.app_errors, 0u);
  EXPECT_EQ(r.verify_failures, 0u);
  EXPECT_EQ(r.total_bytes, w.file_size);
  // And the fault run remains deterministic.
  const ExperimentResult again = exp.run(w);
  EXPECT_EQ(r.digest, again.digest);
}

}  // namespace
}  // namespace ppfs::prefetch
