// ppfs-lint: allow-file(ref-across-await) test idiom: coroutine referents are stack locals and the test blocks in sim.run()/run_task() before they die
// Unit tests for the discrete-event kernel: Simulation, Task, Event,
// Condition, Barrier, Resource, when_all, Rng determinism.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/event.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/when_all.hpp"

namespace ppfs::sim {
namespace {

TEST(Simulation, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulation, CallbackRunsAtScheduledTime) {
  Simulation sim;
  SimTime seen = -1;
  sim.call_at(2.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(Simulation, CallbacksRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.call_at(3.0, [&] { order.push_back(3); });
  sim.call_at(1.0, [&] { order.push_back(1); });
  sim.call_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, TiesBreakInInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.call_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, CallAtAcceptsMoveOnlyCallable) {
  // call_at must move the callable all the way into the queue — a
  // unique_ptr capture makes any accidental copy a compile error, and its
  // non-trivial destructor exercises SmallFn's boxed-storage path.
  Simulation sim;
  int fired = 0;
  auto token = std::make_unique<int>(7);
  sim.call_at(1.0, [t = std::move(token), &fired] { fired += *t; });
  sim.run();
  EXPECT_EQ(fired, 7);
}

TEST(Simulation, LargeCaptureCallbackRuns) {
  // Four references exceed SmallFn's inline budget; the closure rides in
  // the arena box and must still fire exactly once.
  Simulation sim;
  int a = 0, b = 0, c = 0;
  sim.call_at(1.0, [&sim, &a, &b, &c] {
    a = 1;
    b = 2;
    c = static_cast<int>(sim.now());
  });
  sim.run();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(c, 1);
}

TEST(Simulation, RunUntilStopsBeforeLaterEvents) {
  Simulation sim;
  int count = 0;
  sim.call_at(1.0, [&] { ++count; });
  sim.call_at(5.0, [&] { ++count; });
  sim.run(2.0);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulation, DelayAdvancesTime) {
  Simulation sim;
  SimTime t_mid = -1, t_end = -1;
  sim.spawn([](Simulation& s, SimTime& mid, SimTime& end) -> Task<void> {
    co_await s.delay(1.5);
    mid = s.now();
    co_await s.delay(2.0);
    end = s.now();
  }(sim, t_mid, t_end));
  sim.run();
  EXPECT_DOUBLE_EQ(t_mid, 1.5);
  EXPECT_DOUBLE_EQ(t_end, 3.5);
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(Simulation, ZeroDelayYieldsButDoesNotAdvanceTime) {
  Simulation sim;
  std::vector<int> order;
  auto proc = [](Simulation& s, std::vector<int>& ord, int id) -> Task<void> {
    ord.push_back(id);
    co_await s.delay(0);
    ord.push_back(id + 10);
  };
  sim.spawn(proc(sim, order, 1));
  sim.spawn(proc(sim, order, 2));
  sim.run();
  // Both run their first leg at spawn, then interleave after the yield.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 11, 12}));
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulation, SpawnedProcessRunsEagerlyUntilFirstAwait) {
  Simulation sim;
  bool ran = false;
  sim.spawn([](Simulation& s, bool& flag) -> Task<void> {
    flag = true;
    co_await s.delay(1.0);
  }(sim, ran));
  EXPECT_TRUE(ran);  // before run()
  sim.run();
}

TEST(Simulation, NestedTaskReturnsValue) {
  Simulation sim;
  int result = 0;
  auto child = [](Simulation& s) -> Task<int> {
    co_await s.delay(1.0);
    co_return 42;
  };
  sim.spawn([](Simulation& s, auto childfn, int& out) -> Task<void> {
    out = co_await childfn(s);
  }(sim, child, result));
  sim.run();
  EXPECT_EQ(result, 42);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(Simulation, DeeplyNestedTasksComplete) {
  Simulation sim;
  // Recursion depth 100: exercises symmetric transfer through the chain.
  struct Rec {
    static Task<int> go(Simulation& s, int depth) {
      if (depth == 0) {
        co_await s.delay(0.001);
        co_return 0;
      }
      int below = co_await go(s, depth - 1);
      co_return below + 1;
    }
  };
  int result = -1;
  sim.spawn([](Simulation& s, int& out) -> Task<void> {
    out = co_await Rec::go(s, 100);
  }(sim, result));
  sim.run();
  EXPECT_EQ(result, 100);
}

TEST(Simulation, ProcessExceptionSurfacesFromRun) {
  Simulation sim;
  sim.spawn([](Simulation& s) -> Task<void> {
    co_await s.delay(1.0);
    throw std::runtime_error("boom");
  }(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Simulation, ChildExceptionPropagatesToAwaitingParent) {
  Simulation sim;
  bool caught = false;
  auto child = [](Simulation& s) -> Task<void> {
    co_await s.delay(0.5);
    throw std::logic_error("child failed");
  };
  sim.spawn([](Simulation& s, auto childfn, bool& flag) -> Task<void> {
    try {
      co_await childfn(s);
    } catch (const std::logic_error&) {
      flag = true;
    }
  }(sim, child, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Event, WaitReturnsImmediatelyWhenSet) {
  Simulation sim;
  Event ev(sim);
  ev.set();
  SimTime when = -1;
  sim.spawn([](Simulation& s, Event& e, SimTime& w) -> Task<void> {
    co_await e.wait();
    w = s.now();
  }(sim, ev, when));
  sim.run();
  EXPECT_DOUBLE_EQ(when, 0.0);
}

TEST(Event, SetWakesAllWaiters) {
  Simulation sim;
  Event ev(sim);
  int woken = 0;
  for (int i = 0; i < 5; ++i) {
    sim.spawn([](Event& e, int& count) -> Task<void> {
      co_await e.wait();
      ++count;
    }(ev, woken));
  }
  sim.call_at(2.0, [&] { ev.set(); });
  sim.run();
  EXPECT_EQ(woken, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Event, ResetReArms) {
  Simulation sim;
  Event ev(sim);
  ev.set();
  EXPECT_TRUE(ev.is_set());
  ev.reset();
  EXPECT_FALSE(ev.is_set());
  int woken = 0;
  sim.spawn([](Event& e, int& count) -> Task<void> {
    co_await e.wait();
    ++count;
  }(ev, woken));
  sim.call_at(1.0, [&] { ev.set(); });
  sim.run();
  EXPECT_EQ(woken, 1);
}

TEST(Condition, WaitersOnlyWakeOnNextNotify) {
  Simulation sim;
  Condition cv(sim);
  std::vector<SimTime> wakes;
  auto waiter = [](Condition& c, Simulation& s, std::vector<SimTime>& w) -> Task<void> {
    co_await c.wait();
    w.push_back(s.now());
  };
  sim.spawn(waiter(cv, sim, wakes));
  sim.call_at(1.0, [&] { cv.notify_all(); });
  sim.call_at(2.0, [&] {
    // A new waiter after the first notify must wait for another notify.
    sim.spawn(waiter(cv, sim, wakes));
  });
  sim.call_at(3.0, [&] { cv.notify_all(); });
  sim.run();
  ASSERT_EQ(wakes.size(), 2u);
  EXPECT_DOUBLE_EQ(wakes[0], 1.0);
  EXPECT_DOUBLE_EQ(wakes[1], 3.0);
}

TEST(Barrier, ReleasesWhenAllArrive) {
  Simulation sim;
  Barrier bar(sim, 3);
  std::vector<SimTime> releases;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Simulation& s, Barrier& b, std::vector<SimTime>& out, double start) -> Task<void> {
      co_await s.delay(start);
      co_await b.arrive_and_wait();
      out.push_back(s.now());
    }(sim, bar, releases, static_cast<double>(i)));
  }
  sim.run();
  ASSERT_EQ(releases.size(), 3u);
  for (auto t : releases) EXPECT_DOUBLE_EQ(t, 2.0);  // latest arrival gates all
}

TEST(Barrier, ReArmsForNextRound) {
  Simulation sim;
  Barrier bar(sim, 2);
  std::vector<SimTime> releases;
  auto proc = [](Simulation& s, Barrier& b, std::vector<SimTime>& out, double d) -> Task<void> {
    for (int round = 0; round < 2; ++round) {
      co_await s.delay(d);
      co_await b.arrive_and_wait();
      out.push_back(s.now());
    }
  };
  sim.spawn(proc(sim, bar, releases, 1.0));
  sim.spawn(proc(sim, bar, releases, 3.0));
  sim.run();
  ASSERT_EQ(releases.size(), 4u);
  EXPECT_DOUBLE_EQ(releases[0], 3.0);
  EXPECT_DOUBLE_EQ(releases[1], 3.0);
  EXPECT_DOUBLE_EQ(releases[2], 6.0);
  EXPECT_DOUBLE_EQ(releases[3], 6.0);
}

TEST(Resource, GrantsUpToCapacityImmediately) {
  Simulation sim;
  Resource res(sim, 2);
  std::vector<SimTime> grants;
  auto proc = [](Simulation& s, Resource& r, std::vector<SimTime>& out) -> Task<void> {
    auto guard = co_await r.acquire();
    out.push_back(s.now());
    co_await s.delay(1.0);
  };
  for (int i = 0; i < 4; ++i) sim.spawn(proc(sim, res, grants));
  sim.run();
  ASSERT_EQ(grants.size(), 4u);
  EXPECT_DOUBLE_EQ(grants[0], 0.0);
  EXPECT_DOUBLE_EQ(grants[1], 0.0);
  EXPECT_DOUBLE_EQ(grants[2], 1.0);
  EXPECT_DOUBLE_EQ(grants[3], 1.0);
  EXPECT_EQ(res.in_use(), 0u);
}

TEST(Resource, FifoNoOvertaking) {
  Simulation sim;
  Resource res(sim, 2);
  std::vector<int> order;
  // First holder takes both units; then a 2-unit request queues ahead of a
  // 1-unit request. The 1-unit request must NOT overtake it.
  sim.spawn([](Simulation& s, Resource& r, std::vector<int>& ord) -> Task<void> {
    auto g = co_await r.acquire(2);
    ord.push_back(0);
    co_await s.delay(1.0);
  }(sim, res, order));
  sim.spawn([](Simulation& s, Resource& r, std::vector<int>& ord) -> Task<void> {
    co_await s.delay(0.1);
    auto g = co_await r.acquire(2);
    ord.push_back(1);
    co_await s.delay(1.0);
  }(sim, res, order));
  sim.spawn([](Simulation& s, Resource& r, std::vector<int>& ord) -> Task<void> {
    co_await s.delay(0.2);
    auto g = co_await r.acquire(1);
    ord.push_back(2);
  }(sim, res, order));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Resource, GuardMoveTransfersOwnership) {
  Simulation sim;
  Resource res(sim, 1);
  sim.spawn([](Simulation& s, Resource& r) -> Task<void> {
    auto g1 = co_await r.acquire();
    EXPECT_EQ(r.in_use(), 1u);
    ResourceGuard g2 = std::move(g1);
    EXPECT_FALSE(g1.owns());
    EXPECT_TRUE(g2.owns());
    EXPECT_EQ(r.in_use(), 1u);
    g2.release();
    EXPECT_EQ(r.in_use(), 0u);
    co_await s.delay(0);
  }(sim, res));
  sim.run();
}

TEST(Resource, EarlyReleaseAllowsReacquire) {
  Simulation sim;
  Resource res(sim, 1);
  std::vector<SimTime> grants;
  sim.spawn([](Simulation& s, Resource& r, std::vector<SimTime>& ) -> Task<void> {
    auto g = co_await r.acquire();
    co_await s.delay(1.0);
    g.release();
    co_await s.delay(5.0);
  }(sim, res, grants));
  sim.spawn([](Simulation& s, Resource& r, std::vector<SimTime>& out) -> Task<void> {
    auto g = co_await r.acquire();
    out.push_back(s.now());
  }(sim, res, grants));
  sim.run();
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_DOUBLE_EQ(grants[0], 1.0);
}

TEST(WhenAll, JoinsAllChildren) {
  Simulation sim;
  SimTime done_at = -1;
  sim.spawn([](Simulation& s, SimTime& out) -> Task<void> {
    std::vector<Task<void>> kids;
    for (int i = 1; i <= 4; ++i) {
      kids.push_back([](Simulation& ss, double d) -> Task<void> {
        co_await ss.delay(d);
      }(s, static_cast<double>(i)));
    }
    co_await when_all(s, std::move(kids));
    out = s.now();
  }(sim, done_at));
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, 4.0);
}

TEST(WhenAll, EmptySetCompletesImmediately) {
  Simulation sim;
  bool done = false;
  sim.spawn([](Simulation& s, bool& flag) -> Task<void> {
    co_await when_all(s, {});
    flag = true;
  }(sim, done));
  sim.run();
  EXPECT_TRUE(done);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, Uniform01InRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    auto v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(5);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.next() == child.next());
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace ppfs::sim
