// ppfs-lint: allow-file(ref-across-await) test idiom: coroutine referents are stack locals and the test blocks in sim.run()/run_task() before they die
// Edge cases across the stack: multi-fd clients, cross-file prefetching,
// empty/degenerate requests, mesh routing invariants on other shapes,
// RAID data distribution, and pointer-service state.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "hw/machine.hpp"
#include "hw/mesh.hpp"
#include "pfs/client.hpp"
#include "pfs/filesystem.hpp"
#include "pfs/pointer_server.hpp"
#include "prefetch/engine.hpp"
#include "sim/simulation.hpp"
#include "sim/when_all.hpp"
#include "test_util.hpp"

namespace ppfs {
namespace {

using ppfs::test::check_pattern;
using ppfs::test::make_pattern;
using ppfs::test::run_task;
using sim::Simulation;
using sim::Task;

struct Bed {
  explicit Bed(int nc = 2, int nio = 4)
      : machine(sim, hw::MachineConfig::paragon(nc, nio)), fs(machine, pfs::PfsParams{}) {
    for (int r = 0; r < nc; ++r) {
      clients.push_back(std::make_unique<pfs::PfsClient>(fs, r, r, nc));
    }
  }
  void make_file(const std::string& name, std::uint64_t tag, sim::ByteCount size) {
    fs.create(name, fs.default_attrs());
    run_task(sim, [](Bed& b, std::string n, std::uint64_t t, sim::ByteCount sz) -> Task<void> {
      const int fd = co_await b.clients[0]->open(n, pfs::IoMode::kAsync);
      auto data = make_pattern(t, 0, sz);
      co_await b.clients[0]->write(fd, data);
      b.clients[0]->close(fd);
    }(*this, name, tag, size));
  }
  Simulation sim;
  hw::Machine machine;
  pfs::PfsFileSystem fs;
  std::vector<std::unique_ptr<pfs::PfsClient>> clients;
};

TEST(ClientEdge, TwoFilesOpenSimultaneously) {
  Bed b;
  b.make_file("a", 10, 256 * 1024);
  b.make_file("b", 20, 256 * 1024);
  run_task(b.sim, [](Bed& bed) -> Task<void> {
    auto& c = *bed.clients[0];
    const int fa = co_await c.open("a", pfs::IoMode::kAsync);
    const int fb = co_await c.open("b", pfs::IoMode::kAsync);
    EXPECT_NE(fa, fb);
    std::vector<std::byte> ba(64 * 1024), bb(64 * 1024);
    co_await c.read(fa, ba);
    co_await c.read(fb, bb);
    EXPECT_TRUE(check_pattern(ba, 10, 0));
    EXPECT_TRUE(check_pattern(bb, 20, 0));
    // Pointers are independent.
    EXPECT_EQ(c.tell(fa), 64u * 1024);
    EXPECT_EQ(c.tell(fb), 64u * 1024);
    c.close(fa);
    c.close(fb);
  }(b));
}

TEST(ClientEdge, PrefetchStatePerFdIsIndependent) {
  Bed b;
  b.make_file("a", 10, 1024 * 1024);
  b.make_file("b", 20, 1024 * 1024);
  auto engine = prefetch::attach_prefetcher(*b.clients[0], prefetch::PrefetchConfig{});
  run_task(b.sim, [](Bed& bed, prefetch::PrefetchEngine& eng) -> Task<void> {
    auto& c = *bed.clients[0];
    const int fa = co_await c.open("a", pfs::IoMode::kAsync);
    const int fb = co_await c.open("b", pfs::IoMode::kAsync);
    std::vector<std::byte> buf(64 * 1024);
    co_await c.read(fa, buf);
    co_await c.read(fb, buf);
    co_await bed.sim.delay(0.5);
    EXPECT_EQ(eng.resident_buffers(fa), 1u);
    EXPECT_EQ(eng.resident_buffers(fb), 1u);
    co_await c.read(fa, buf);  // hit on a, b untouched
    EXPECT_TRUE(check_pattern(buf, 10, 64 * 1024));
    c.close(fa);
    EXPECT_EQ(eng.resident_buffers(fa), 0u);
    EXPECT_EQ(eng.resident_buffers(fb), 1u);
    c.close(fb);
  }(b, *engine));
  EXPECT_GE(engine->stats().hits_ready, 1u);
}

TEST(ClientEdge, ZeroByteReadReturnsZero) {
  Bed b;
  b.make_file("a", 10, 64 * 1024);
  run_task(b.sim, [](Bed& bed) -> Task<void> {
    auto& c = *bed.clients[0];
    const int fd = co_await c.open("a", pfs::IoMode::kAsync);
    std::vector<std::byte> empty;
    EXPECT_EQ(co_await c.read(fd, empty), 0u);
    EXPECT_EQ(c.tell(fd), 0u);
    c.close(fd);
  }(b));
}

TEST(ClientEdge, OperationsOnClosedFdThrow) {
  Bed b;
  b.make_file("a", 10, 64 * 1024);
  run_task(b.sim, [](Bed& bed) -> Task<void> {
    auto& c = *bed.clients[0];
    const int fd = co_await c.open("a", pfs::IoMode::kAsync);
    c.close(fd);
    std::vector<std::byte> buf(1024);
    bool threw = false;
    try {
      co_await c.read(fd, buf);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
    EXPECT_THROW(c.close(fd), std::invalid_argument);
    EXPECT_THROW((void)c.tell(fd), std::invalid_argument);
  }(b));
}

TEST(ClientEdge, WriteExtendsSharedFileVisibleToOtherClient) {
  Bed b;
  b.fs.create("grow", b.fs.default_attrs());
  run_task(b.sim, [](Bed& bed) -> Task<void> {
    auto& w = *bed.clients[0];
    auto& r = *bed.clients[1];
    const int wfd = co_await w.open("grow", pfs::IoMode::kAsync);
    auto data = make_pattern(30, 0, 100 * 1024);
    co_await w.write(wfd, data);
    w.close(wfd);

    const int rfd = co_await r.open("grow", pfs::IoMode::kAsync);
    EXPECT_EQ(r.file_size(rfd), 100u * 1024);
    std::vector<std::byte> back(100 * 1024);
    EXPECT_EQ(co_await r.read(rfd, back), 100u * 1024);
    EXPECT_TRUE(check_pattern(back, 30, 0));
    r.close(rfd);
  }(b));
}

TEST(MeshEdge, RoutingInvariantsOnAsymmetricMeshes) {
  for (auto [w, h] : std::vector<std::pair<int, int>>{{1, 8}, {8, 1}, {3, 5}, {2, 2}}) {
    Simulation sim;
    hw::MeshNetwork mesh(sim, hw::MeshConfig{.width = w, .height = h});
    const int n = w * h;
    for (int s = 0; s < n; ++s) {
      for (int d = 0; d < n; ++d) {
        auto path = mesh.route(s, d);
        EXPECT_EQ(static_cast<int>(path.size()), mesh.hop_count(s, d))
            << w << "x" << h << " " << s << "->" << d;
        // No link repeats within one route.
        std::set<int> links(path.begin(), path.end());
        EXPECT_EQ(links.size(), path.size());
      }
    }
  }
}

TEST(RaidEdge, MembersShareLoadEqually) {
  Simulation sim;
  hw::RaidArray r(sim, "r0", hw::RaidParams::scsi8());
  run_task(sim, [](hw::RaidArray& raid) -> Task<void> {
    for (int i = 0; i < 4; ++i) co_await raid.transfer(i * 4096, 512 * 1024, false);
  }(r));
  const auto per_member = r.member(0).bytes_transferred();
  EXPECT_GT(per_member, 0u);
  for (std::size_t m = 1; m < 4; ++m) {
    EXPECT_EQ(r.member(m).bytes_transferred(), per_member);
  }
  EXPECT_EQ(r.bytes_transferred(), 4u * 512 * 1024);
}

TEST(PointerServiceEdge, IndependentPointersPerFile) {
  Simulation sim;
  hw::Machine machine(sim, hw::MachineConfig::paragon(2, 2));
  pfs::PointerService svc(machine, machine.io_node(0), 10e-6);
  run_task(sim, [](pfs::PointerService& s) -> Task<void> {
    EXPECT_EQ(co_await s.fetch_and_add(1, 100), 0u);
    EXPECT_EQ(co_await s.fetch_and_add(2, 7), 0u);
    EXPECT_EQ(co_await s.fetch_and_add(1, 50), 100u);
    EXPECT_EQ(s.pointer(1), 150u);
    EXPECT_EQ(s.pointer(2), 7u);
    EXPECT_EQ(s.pointer(99), 0u);  // unknown file reads as 0
  }(svc));
}

TEST(PointerServiceEdge, FileLockIsExclusivePerFileOnly) {
  Simulation sim;
  hw::Machine machine(sim, hw::MachineConfig::paragon(2, 2));
  pfs::PointerService svc(machine, machine.io_node(0), 10e-6);
  std::vector<int> order;
  // Holder of file 1's lock does not block file 2's lock.
  sim.spawn([](Simulation& s, pfs::PointerService& sv, std::vector<int>& ord) -> Task<void> {
    auto g = co_await sv.acquire_file_lock(1);
    ord.push_back(1);
    co_await s.delay(1.0);
  }(sim, svc, order));
  sim.spawn([](Simulation& s, pfs::PointerService& sv, std::vector<int>& ord) -> Task<void> {
    co_await s.delay(0.001);
    auto g = co_await sv.acquire_file_lock(2);  // different file: immediate
    ord.push_back(2);
  }(sim, svc, order));
  sim.spawn([](Simulation& s, pfs::PointerService& sv, std::vector<int>& ord) -> Task<void> {
    co_await s.delay(0.002);
    auto g = co_await sv.acquire_file_lock(1);  // waits for holder
    ord.push_back(3);
  }(sim, svc, order));
  sim.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);  // file-2 lock granted while file-1 lock held
  EXPECT_EQ(order[2], 3);
}

TEST(CollectiveEdge, RejectsInconsistentRounds) {
  Simulation sim;
  hw::Machine machine(sim, hw::MachineConfig::paragon(2, 2));
  pfs::PointerService ptr(machine, machine.io_node(0), 10e-6);
  pfs::CollectiveService coll(machine, machine.io_node(0), ptr, 10e-6);
  EXPECT_THROW(
      {
        sim.spawn([](pfs::CollectiveService& c) -> Task<void> {
          co_await c.arrive(1, /*rank=*/5, /*nprocs=*/2, 100, false);
        }(coll));
        sim.run();
      },
      std::invalid_argument);
}

TEST(CollectiveEdge, DoubleArrivalDetected) {
  Simulation sim;
  hw::Machine machine(sim, hw::MachineConfig::paragon(2, 2));
  pfs::PointerService ptr(machine, machine.io_node(0), 10e-6);
  pfs::CollectiveService coll(machine, machine.io_node(0), ptr, 10e-6);
  // Rank 0's legitimate first arrival parks waiting for rank 1 (which
  // never comes in this test — the process stays blocked, by design).
  sim.spawn([](pfs::CollectiveService& c) -> Task<void> {
    (void)co_await c.arrive(1, 0, 2, 100, false);
  }(coll));
  // Rank 0 arriving AGAIN in the same open round is an application bug:
  // detected, not deadlocked.
  bool threw = false;
  sim.spawn([](pfs::CollectiveService& c, bool& flag) -> Task<void> {
    try {
      (void)co_await c.arrive(1, 0, 2, 100, false);
    } catch (const std::logic_error&) {
      flag = true;
    }
  }(coll, threw));
  sim.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(sim.live_processes(), 1u);  // the parked first arrival
}

}  // namespace
}  // namespace ppfs
