// ppfs-lint: allow-file(ref-across-await) test idiom: coroutine referents are stack locals and the test blocks in sim.run()/run_task() before they die
// DuraCache unit tests: the CacheFileInfo journal codec (torn-write
// detection), eviction policies, the CacheTier crash/recover lifecycle,
// and the workload-level warm-restart behavior.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "cache/eviction.hpp"
#include "cache/info.hpp"
#include "cache/tier.hpp"
#include "fault/plan.hpp"
#include "sim/simulation.hpp"
#include "test_util.hpp"
#include "workload/experiment.hpp"

namespace ppfs {
namespace {

using cache::BlockKey;
using cache::CacheFileInfo;
using cache::CacheTier;
using cache::CacheTierParams;
using cache::decode;
using test::run_task;

// --- journal codec ----------------------------------------------------------

CacheFileInfo make_info(std::uint32_t ino, std::uint64_t gen,
                        std::initializer_list<std::uint64_t> blocks) {
  CacheFileInfo info;
  info.ino = ino;
  info.generation = gen;
  for (auto b : blocks) info.set(b);
  return info;
}

TEST(CacheInfo, EncodeDecodeRoundTrip) {
  const CacheFileInfo info = make_info(7, 42, {0, 3, 64, 130});
  const auto bytes = encode(info);
  const auto back = decode(bytes.data(), bytes.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ino, 7u);
  EXPECT_EQ(back->generation, 42u);
  EXPECT_EQ(back->block_count, info.block_count);
  EXPECT_EQ(back->bits, info.bits);
  EXPECT_EQ(back->popcount(), 4u);
}

TEST(CacheInfo, TornPayloadIsRefused) {
  auto bytes = encode(make_info(1, 1, {0, 1, 2}));
  bytes.back() ^= std::byte{0xff};  // the crash's torn-write signature
  EXPECT_FALSE(decode(bytes.data(), bytes.size()).has_value());
}

TEST(CacheInfo, BadMagicAndShortBuffersAreRefused) {
  auto bytes = encode(make_info(1, 1, {0}));
  auto bad = bytes;
  bad[0] ^= std::byte{0x1};
  EXPECT_FALSE(decode(bad.data(), bad.size()).has_value());
  EXPECT_FALSE(decode(bytes.data(), 8).has_value());
  EXPECT_FALSE(decode(bytes.data(), bytes.size() - 3).has_value());  // odd size
}

TEST(CacheInfo, ClampDropsBitsBeyondAllocation) {
  CacheFileInfo info = make_info(1, 1, {0, 1, 5, 9});
  EXPECT_EQ(info.clamp(6), 1u);  // drops bit 9
  EXPECT_EQ(info.block_count, 6u);
  EXPECT_EQ(info.popcount(), 3u);
  EXPECT_FALSE(info.test(9));
  EXPECT_TRUE(info.test(5));
}

// --- eviction ---------------------------------------------------------------

TEST(CacheEviction, FifoEvictsOldestInsertRegardlessOfAccess) {
  auto policy = cache::make_eviction(cache::EvictionKind::kFifo);
  policy->on_insert(BlockKey{1, 0});
  policy->on_insert(BlockKey{1, 1});
  policy->on_insert(BlockKey{1, 2});
  policy->on_access(BlockKey{1, 0});  // FIFO ignores recency
  const auto victim = policy->pick_victim();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->lblock, 0u);
}

TEST(CacheEviction, LruAccessRefreshesRecency) {
  auto policy = cache::make_eviction(cache::EvictionKind::kLru);
  policy->on_insert(BlockKey{1, 0});
  policy->on_insert(BlockKey{1, 1});
  policy->on_insert(BlockKey{1, 2});
  policy->on_access(BlockKey{1, 0});  // 0 becomes most-recent; 1 is now LRU
  const auto victim = policy->pick_victim();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->lblock, 1u);
}

// --- tier lifecycle ---------------------------------------------------------

/// A tier wired to a tiny fake inode table the test controls.
struct TierFixture {
  sim::Simulation sim;
  std::map<std::uint32_t, std::uint64_t> generations;
  std::map<std::uint32_t, std::uint64_t> block_counts;
  CacheTier tier;

  explicit TierFixture(CacheTierParams params)
      : tier(sim, "test-tier", params,
             [this](std::uint32_t ino) {
               const auto it = generations.find(ino);
               return it == generations.end() ? 0ull : it->second;
             },
             [this](std::uint32_t ino) {
               const auto it = block_counts.find(ino);
               return it == block_counts.end() ? 0ull : it->second;
             }) {}
};

CacheTierParams tier_params(std::uint32_t flush_interval = 1,
                            std::uint64_t capacity = 1024) {
  CacheTierParams p;
  p.enabled = true;
  p.journal_flush_interval = flush_interval;
  p.capacity_blocks = capacity;
  return p;
}

TEST(CacheTier, InsertMakesBlocksResidentAndJournals) {
  TierFixture f(tier_params(/*flush_interval=*/2));
  f.generations[5] = 1;
  f.block_counts[5] = 8;
  f.tier.insert(5, 1, 0);
  EXPECT_TRUE(f.tier.resident(5, 0));
  EXPECT_FALSE(f.tier.resident(5, 1));
  EXPECT_EQ(f.tier.durable_entries().count(5), 0u);  // below flush interval
  f.tier.insert(5, 1, 1);
  f.sim.run();  // drain the journal write
  ASSERT_EQ(f.tier.durable_entries().count(5), 1u);
  const auto& entry = f.tier.durable_entries().at(5);
  EXPECT_TRUE(entry.write_complete);
  const auto decoded = cache::decode(entry.payload.data(), entry.payload.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->popcount(), 2u);
  EXPECT_EQ(f.tier.stats().journal_flushes, 1u);
}

TEST(CacheTier, GenerationChangeInvalidatesOldResidency) {
  TierFixture f(tier_params());
  f.generations[3] = 1;
  f.block_counts[3] = 4;
  f.tier.insert(3, 1, 0);
  f.tier.insert(3, 1, 1);
  ASSERT_EQ(f.tier.resident_blocks(), 2u);
  // The file is deleted and recreated under the same ino: generation 2.
  f.tier.insert(3, 2, 0);
  EXPECT_EQ(f.tier.resident_blocks(), 1u);
  EXPECT_TRUE(f.tier.resident(3, 0));
  EXPECT_FALSE(f.tier.resident(3, 1));
  f.sim.run();
}

TEST(CacheTier, CapacityTriggersEviction) {
  TierFixture f(tier_params(/*flush_interval=*/100, /*capacity=*/2));
  f.generations[1] = 1;
  f.block_counts[1] = 8;
  f.tier.insert(1, 1, 0);
  f.tier.insert(1, 1, 1);
  f.tier.insert(1, 1, 2);
  EXPECT_EQ(f.tier.resident_blocks(), 2u);
  EXPECT_EQ(f.tier.stats().evictions, 1u);
  EXPECT_FALSE(f.tier.resident(1, 0));  // LRU victim: oldest insert
  EXPECT_TRUE(f.tier.resident(1, 2));
  f.sim.run();
}

TEST(CacheTier, CrashLosesVolatileStateAndRecoverRestoresJournaledBits) {
  TierFixture f(tier_params(/*flush_interval=*/1));
  f.generations[9] = 4;
  f.block_counts[9] = 16;
  for (std::uint64_t b = 0; b < 4; ++b) {
    f.tier.insert(9, 4, b);
    f.sim.run();  // let each journal write land before the next mutation
  }
  ASSERT_EQ(f.tier.resident_blocks(), 4u);

  f.tier.on_crash();
  EXPECT_EQ(f.tier.resident_blocks(), 0u);
  EXPECT_FALSE(f.tier.resident(9, 0));
  EXPECT_EQ(f.tier.durable_entries().count(9), 1u);  // the journal survives

  run_task(f.sim, f.tier.recover());
  EXPECT_EQ(f.tier.stats().recoveries, 1u);
  EXPECT_EQ(f.tier.stats().recovered_blocks, 4u);
  EXPECT_GT(f.tier.stats().last_recovery_time, 0.0);
  for (std::uint64_t b = 0; b < 4; ++b) EXPECT_TRUE(f.tier.resident(9, b));
}

TEST(CacheTier, CrashMidJournalWriteLeavesTornEntryThatRecoveryDrops) {
  TierFixture f(tier_params(/*flush_interval=*/1));
  f.generations[2] = 1;
  f.block_counts[2] = 4;
  f.tier.insert(2, 1, 0);  // journal write now in flight (not yet complete)
  ASSERT_EQ(f.tier.durable_entries().count(2), 1u);
  ASSERT_FALSE(f.tier.durable_entries().at(2).write_complete);

  f.tier.on_crash();  // tears the in-flight payload on the medium
  f.sim.run();        // the abandoned flush coroutine drains harmlessly
  EXPECT_TRUE(f.tier.durable_entries().at(2).write_complete);

  run_task(f.sim, f.tier.recover());
  EXPECT_EQ(f.tier.stats().torn_entries_dropped, 1u);
  EXPECT_EQ(f.tier.stats().recovered_blocks, 0u);
  EXPECT_EQ(f.tier.durable_entries().count(2), 0u);  // quarantined
  EXPECT_FALSE(f.tier.resident(2, 0));
}

TEST(CacheTier, StaleGenerationEntriesAreDroppedOnRecovery) {
  TierFixture f(tier_params(/*flush_interval=*/1));
  f.generations[6] = 1;
  f.block_counts[6] = 4;
  f.tier.insert(6, 1, 0);
  f.sim.run();
  f.tier.on_crash();
  f.generations[6] = 2;  // file recreated while the node was down
  run_task(f.sim, f.tier.recover());
  EXPECT_EQ(f.tier.stats().stale_entries_dropped, 1u);
  EXPECT_EQ(f.tier.stats().recovered_blocks, 0u);
  EXPECT_FALSE(f.tier.resident(6, 0));
}

TEST(CacheTier, UnknownInodeEntriesAreDroppedOnRecovery) {
  TierFixture f(tier_params(/*flush_interval=*/1));
  f.generations[8] = 1;
  f.block_counts[8] = 4;
  f.tier.insert(8, 1, 0);
  f.sim.run();
  f.tier.on_crash();
  f.generations.erase(8);  // file removed while the node was down
  run_task(f.sim, f.tier.recover());
  EXPECT_EQ(f.tier.stats().stale_entries_dropped, 1u);
  EXPECT_FALSE(f.tier.resident(8, 0));
}

TEST(CacheTier, OutOfRangeBitsAreClampedOnRecovery) {
  TierFixture f(tier_params(/*flush_interval=*/1));
  f.generations[4] = 1;
  f.block_counts[4] = 8;
  for (std::uint64_t b = 0; b < 6; ++b) {
    f.tier.insert(4, 1, b);
    f.sim.run();
  }
  f.tier.on_crash();
  f.block_counts[4] = 3;  // file truncated while the node was down
  run_task(f.sim, f.tier.recover());
  EXPECT_EQ(f.tier.stats().out_of_range_bits_dropped, 3u);
  EXPECT_EQ(f.tier.stats().recovered_blocks, 3u);
  EXPECT_TRUE(f.tier.resident(4, 2));
  EXPECT_FALSE(f.tier.resident(4, 5));
}

TEST(CacheTier, WarmHitWindowStartsAtRecovery) {
  TierFixture f(tier_params(/*flush_interval=*/1));
  f.generations[1] = 1;
  f.block_counts[1] = 8;
  f.tier.insert(1, 1, 0);
  f.tier.note_hit(1, 0);  // pre-crash hit: must NOT count as warm later
  f.sim.run();
  f.tier.on_crash();
  run_task(f.sim, f.tier.recover());
  EXPECT_EQ(f.tier.stats().warm_lookups, 0u);
  f.tier.note_hit(1, 0);
  f.tier.note_miss_blocks(1);
  EXPECT_EQ(f.tier.stats().warm_lookups, 2u);
  EXPECT_EQ(f.tier.stats().warm_hits, 1u);
  EXPECT_DOUBLE_EQ(f.tier.stats().warm_hit_ratio(), 0.5);
}

TEST(CacheTier, LookupsDuringReplayCountTowardWarmWindow) {
  // Regression: recover() used to zero warm_lookups/warm_hits at its END,
  // after awaiting the journal transfers — so every hit the tier served
  // concurrently with replay was silently dropped from the warm window.
  // The window must open when replay begins.
  TierFixture f(tier_params(/*flush_interval=*/1));
  f.generations[1] = 1;
  f.block_counts[1] = 8;
  for (std::uint64_t b = 0; b < 4; ++b) {
    f.tier.insert(1, 1, b);
    f.sim.run();
  }
  f.tier.note_hit(1, 0);  // pre-crash: must not leak into the warm window
  f.tier.on_crash();
  // Fires while recover() is still awaiting its journal transfers.
  f.sim.call_at(f.sim.now() + 1e-9, [&f] {
    f.tier.note_hit(1, 0);
    f.tier.note_miss_blocks(1);
  });
  run_task(f.sim, f.tier.recover());
  EXPECT_EQ(f.tier.stats().warm_lookups, 2u);
  EXPECT_EQ(f.tier.stats().warm_hits, 1u);
}

// --- workload level ---------------------------------------------------------

workload::MachineSpec tier_machine(std::uint64_t capacity = 1024) {
  workload::MachineSpec m;
  m.pfs.ufs.cache_tier.enabled = true;
  m.pfs.ufs.cache_tier.capacity_blocks = capacity;
  return m;
}

TEST(CacheTierWorkload, WarmRestartServesPostCrashReadsFromTier) {
  // The bench_recovery gate as a regression test: sequential 8x8, crash
  // mid-read-phase, journal replay must restore service warm.
  workload::Experiment exp(tier_machine());
  workload::WorkloadSpec w;
  w.file_size = 8 * 1024 * 1024;
  w.request_size = 64 * 1024;
  w.compute_delay = 0.002;
  w.verify = true;
  w.faults = fault::parse_plan("crash:io=1,at=0.02,outage=0.05");
  const auto r = exp.run(w);
  EXPECT_EQ(r.verify_failures, 0u);
  EXPECT_EQ(r.faults.app_errors, 0u);
  EXPECT_EQ(r.cache_recoveries, 1u);
  EXPECT_EQ(r.faults.node_recoveries, 1u);
  EXPECT_GT(r.cache_recovered_blocks, 0u);
  EXPECT_GT(r.cache_recovery_time, 0.0);
  EXPECT_GT(r.faults.node_recovery_time, 0.0);
  EXPECT_GE(r.cache_warm_hit_ratio, 0.5);
}

TEST(CacheTierWorkload, TierRunsAreSeedDeterministic) {
  // Same spec (tier on, chaos faults) twice: bit-identical digests.
  workload::Experiment exp(tier_machine());
  workload::WorkloadSpec w;
  w.file_size = 2 * 1024 * 1024;
  w.request_size = 64 * 1024;
  w.compute_delay = 0.002;
  w.prefetch = true;
  w.faults = fault::parse_plan("seed=99,events=5,horizon=0.3");
  const auto a = exp.run(w);
  const auto b = exp.run(w);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.cache_lookups, b.cache_lookups);
  EXPECT_EQ(a.cache_recoveries, b.cache_recoveries);
}

TEST(CacheTierWorkload, HealthyTierRunVerifiesAndHits) {
  workload::Experiment exp(tier_machine());
  workload::WorkloadSpec w;
  w.file_size = 2 * 1024 * 1024;
  w.request_size = 64 * 1024;
  w.verify = true;
  const auto r = exp.run(w);
  EXPECT_EQ(r.verify_failures, 0u);
  EXPECT_GT(r.cache_inserts, 0u);
  EXPECT_GT(r.cache_hits, 0u);
  EXPECT_EQ(r.cache_recoveries, 0u);
  EXPECT_EQ(r.cache_recovery_time, 0.0);
}

TEST(CacheTierWorkload, EvictionPressureStillVerifies) {
  // A tier far smaller than the working set must thrash, not corrupt.
  workload::Experiment exp(tier_machine(/*capacity=*/2));
  workload::WorkloadSpec w;
  w.file_size = 2 * 1024 * 1024;  // 4 blocks per stripe file vs capacity 2
  w.request_size = 64 * 1024;
  w.verify = true;
  const auto r = exp.run(w);
  EXPECT_EQ(r.verify_failures, 0u);
  EXPECT_GT(r.cache_evictions, 0u);
}

}  // namespace
}  // namespace ppfs
