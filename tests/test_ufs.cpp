// ppfs-lint: allow-file(ref-across-await) test idiom: coroutine referents are stack locals and the test blocks in sim.run()/run_task() before they die
// Unit tests for the UFS substrate: content store, allocator, inode table,
// buffer cache, and the Ufs read/write paths (buffered + fast path +
// coalescing).
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"
#include "test_util.hpp"
#include "ufs/block_store.hpp"
#include "ufs/buffer_cache.hpp"
#include "ufs/inode.hpp"
#include "ufs/ufs.hpp"

namespace ppfs::ufs {
namespace {

using ppfs::test::check_pattern;
using ppfs::test::make_pattern;
using ppfs::test::run_task;
using sim::Simulation;
using sim::Task;

TEST(ContentStore, UnwrittenReadsAsZero) {
  ContentStore cs;
  std::vector<std::byte> buf(100, std::byte{0xff});
  cs.read(12345, buf);
  for (auto b : buf) EXPECT_EQ(b, std::byte{0});
}

TEST(ContentStore, RoundTripsAcrossChunkBoundaries) {
  ContentStore cs(/*chunk_bytes=*/4096);
  auto data = make_pattern(7, 4000, 8192);  // spans 3 chunks
  cs.write(4000, data);
  std::vector<std::byte> back(8192);
  cs.read(4000, back);
  EXPECT_TRUE(check_pattern(back, 7, 4000));
  EXPECT_GE(cs.chunk_count(), 2u);
}

TEST(ContentStore, OverlappingWritesLastWins) {
  ContentStore cs(1024);
  auto a = make_pattern(1, 0, 2048);
  auto b = make_pattern(2, 512, 1024);
  cs.write(0, a);
  cs.write(512, b);
  std::vector<std::byte> back(2048);
  cs.read(0, back);
  EXPECT_TRUE(check_pattern(std::span(back).subspan(0, 512), 1, 0));
  EXPECT_TRUE(check_pattern(std::span(back).subspan(512, 1024), 2, 512));
  EXPECT_TRUE(check_pattern(std::span(back).subspan(1536, 512), 1, 1536));
}

TEST(BlockAllocator, AllocatesDistinctBlocks) {
  BlockAllocator a(10);
  std::vector<bool> seen(10, false);
  for (int i = 0; i < 10; ++i) {
    auto b = a.allocate();
    ASSERT_TRUE(b.has_value());
    EXPECT_FALSE(seen[*b]);
    seen[*b] = true;
  }
  EXPECT_FALSE(a.allocate().has_value());  // full
}

TEST(BlockAllocator, HintGivesContiguity) {
  BlockAllocator a(100);
  auto first = a.allocate(0);
  ASSERT_TRUE(first);
  std::uint64_t prev = *first;
  for (int i = 0; i < 50; ++i) {
    auto b = a.allocate(prev + 1);
    ASSERT_TRUE(b);
    EXPECT_EQ(*b, prev + 1);
    prev = *b;
  }
}

TEST(BlockAllocator, HintWrapsAround) {
  BlockAllocator a(4);
  ASSERT_TRUE(a.allocate(0));  // 0
  ASSERT_TRUE(a.allocate(1));  // 1
  ASSERT_TRUE(a.allocate(2));  // 2
  auto b = a.allocate(3);
  ASSERT_TRUE(b);
  EXPECT_EQ(*b, 3u);
  a.free(1);
  auto c = a.allocate(3);  // wraps to find 1
  ASSERT_TRUE(c);
  EXPECT_EQ(*c, 1u);
}

TEST(BlockAllocator, DoubleFreeThrows) {
  BlockAllocator a(4);
  auto b = a.allocate();
  a.free(*b);
  EXPECT_THROW(a.free(*b), std::logic_error);
}

TEST(InodeTable, CreateLookupRemove) {
  InodeTable t;
  auto ino = t.create("data");
  EXPECT_NE(ino, kInvalidInode);
  EXPECT_EQ(t.lookup("data"), ino);
  EXPECT_EQ(t.lookup("absent"), kInvalidInode);
  EXPECT_THROW(t.create("data"), std::invalid_argument);
  t.remove("data");
  EXPECT_EQ(t.lookup("data"), kInvalidInode);
  EXPECT_THROW(t.remove("data"), std::invalid_argument);
}

// --- BufferCache ---

struct CacheFixture {
  Simulation sim;
  ContentStore content{4096};
  std::uint64_t fills = 0, flushes = 0;
  BufferCache cache{
      sim, 4, 4096,
      [this](std::uint64_t phys, std::span<std::byte> dest) -> Task<void> {
        ++fills;
        co_await sim.delay(0.01);  // pretend disk latency
        content.read(phys * 4096, dest);
      },
      [this](std::uint64_t phys, std::span<const std::byte> src) -> Task<void> {
        ++flushes;
        content.write(phys * 4096, src);
        co_await sim.delay(0.01);
      }};
};

TEST(BufferCache, MissThenHit) {
  CacheFixture f;
  f.content.write(0, make_pattern(3, 0, 4096));
  std::vector<std::byte> buf(4096);
  run_task(f.sim, [](CacheFixture& fx, std::vector<std::byte>& out) -> Task<void> {
    co_await fx.cache.read(0, 0, out);
    co_await fx.cache.read(0, 0, out);
  }(f, buf));
  EXPECT_EQ(f.fills, 1u);
  EXPECT_EQ(f.cache.hits(), 1u);
  EXPECT_EQ(f.cache.misses(), 1u);
  EXPECT_TRUE(check_pattern(buf, 3, 0));
}

TEST(BufferCache, ConcurrentMissesShareOneFill) {
  CacheFixture f;
  f.content.write(0, make_pattern(5, 0, 4096));
  std::vector<std::byte> b1(4096), b2(4096);
  f.sim.spawn([](CacheFixture& fx, std::vector<std::byte>& out) -> Task<void> {
    co_await fx.cache.read(0, 0, out);
  }(f, b1));
  f.sim.spawn([](CacheFixture& fx, std::vector<std::byte>& out) -> Task<void> {
    co_await fx.cache.read(0, 0, out);
  }(f, b2));
  f.sim.run();
  EXPECT_EQ(f.fills, 1u);
  EXPECT_EQ(f.cache.fill_waits(), 1u);
  EXPECT_TRUE(check_pattern(b1, 5, 0));
  EXPECT_TRUE(check_pattern(b2, 5, 0));
}

TEST(BufferCache, LruEvictsOldest) {
  CacheFixture f;
  std::vector<std::byte> buf(4096);
  run_task(f.sim, [](CacheFixture& fx, std::vector<std::byte>& out) -> Task<void> {
    for (std::uint64_t b = 0; b < 5; ++b) co_await fx.cache.read(b, 0, out);  // cap 4
  }(f, buf));
  EXPECT_EQ(f.cache.evictions(), 1u);
  EXPECT_FALSE(f.cache.contains(0));  // oldest gone
  EXPECT_TRUE(f.cache.contains(4));
}

TEST(BufferCache, TouchKeepsHotBlockResident) {
  CacheFixture f;
  std::vector<std::byte> buf(4096);
  run_task(f.sim, [](CacheFixture& fx, std::vector<std::byte>& out) -> Task<void> {
    for (std::uint64_t b = 0; b < 4; ++b) co_await fx.cache.read(b, 0, out);
    co_await fx.cache.read(0, 0, out);  // touch 0: now 1 is LRU
    co_await fx.cache.read(9, 0, out);  // evicts 1
  }(f, buf));
  EXPECT_TRUE(f.cache.contains(0));
  EXPECT_FALSE(f.cache.contains(1));
}

TEST(BufferCache, PartialWriteMergesWithOldContents) {
  CacheFixture f;
  f.content.write(0, make_pattern(1, 0, 4096));
  auto patch = make_pattern(2, 100, 50);
  std::vector<std::byte> buf(4096);
  run_task(f.sim, [](CacheFixture& fx, std::span<const std::byte> p,
                     std::vector<std::byte>& out) -> Task<void> {
    co_await fx.cache.write(0, 100, p);
    co_await fx.cache.read(0, 0, out);
  }(f, patch, buf));
  EXPECT_TRUE(check_pattern(std::span<const std::byte>(buf).subspan(0, 100), 1, 0));
  EXPECT_TRUE(check_pattern(std::span<const std::byte>(buf).subspan(100, 50), 2, 100));
  EXPECT_TRUE(check_pattern(std::span<const std::byte>(buf).subspan(150, 4096 - 150), 1, 150));
  EXPECT_GE(f.flushes, 1u);
}

TEST(BufferCache, FullBlockOverwriteSkipsFill) {
  CacheFixture f;
  auto block = make_pattern(9, 0, 4096);
  run_task(f.sim, [](CacheFixture& fx, std::span<const std::byte> b) -> Task<void> {
    co_await fx.cache.write(0, 0, b);
  }(f, block));
  EXPECT_EQ(f.fills, 0u);
  EXPECT_EQ(f.flushes, 1u);
  std::vector<std::byte> back(4096);
  f.content.read(0, back);
  EXPECT_TRUE(check_pattern(back, 9, 0));
}

// --- Ufs ---

struct UfsFixture {
  Simulation sim;
  NullBlockDevice dev{sim, 1ull << 30};
  ContentStore content{64 * 1024};
  Ufs fs{sim, "ufs0", dev, content, nullptr, UfsParams{}};
};

TEST(Ufs, WriteThenReadBackBuffered) {
  UfsFixture f;
  auto ino = f.fs.create("a");
  auto data = make_pattern(11, 0, 200'000);  // ~3 blocks, unaligned tail
  std::vector<std::byte> back(200'000);
  sim::ByteCount got = 0;
  run_task(f.sim, [](UfsFixture& fx, InodeNum i, std::span<const std::byte> in,
                     std::span<std::byte> out, sim::ByteCount& n) -> Task<void> {
    co_await fx.fs.write(i, 0, in, /*fastpath=*/false);
    n = co_await fx.fs.read(i, 0, out.size(), out, /*fastpath=*/false);
  }(f, ino, data, back, got));
  EXPECT_EQ(got, 200'000u);
  EXPECT_TRUE(check_pattern(back, 11, 0));
  EXPECT_EQ(f.fs.file_size(ino), 200'000u);
}

TEST(Ufs, FastPathRoundTripAligned) {
  UfsFixture f;
  auto ino = f.fs.create("a");
  const auto bs = f.fs.params().block_bytes;
  auto data = make_pattern(12, 0, 4 * bs);
  std::vector<std::byte> back(4 * bs);
  run_task(f.sim, [](UfsFixture& fx, InodeNum i, std::span<const std::byte> in,
                     std::span<std::byte> out) -> Task<void> {
    co_await fx.fs.write(i, 0, in, /*fastpath=*/true);
    co_await fx.fs.read(i, 0, out.size(), out, /*fastpath=*/true);
  }(f, ino, data, back));
  EXPECT_TRUE(check_pattern(back, 12, 0));
  EXPECT_EQ(f.fs.stats().fastpath_reads, 1u);
  EXPECT_EQ(f.fs.stats().fastpath_writes, 1u);
  // Contiguous allocation + coalescing: the whole 4-block read is one run.
  EXPECT_EQ(f.fs.stats().disk_runs, 2u);  // one write run + one read run
  EXPECT_EQ(f.fs.cache().resident_blocks(), 0u);  // fast path bypasses cache
}

TEST(Ufs, UnalignedFastPathDegradesToBuffered) {
  UfsFixture f;
  auto ino = f.fs.create("a");
  auto data = make_pattern(13, 0, 100'000);
  std::vector<std::byte> back(50'000);
  run_task(f.sim, [](UfsFixture& fx, InodeNum i, std::span<const std::byte> in,
                     std::span<std::byte> out) -> Task<void> {
    co_await fx.fs.write(i, 0, in, false);
    co_await fx.fs.read(i, 1000, out.size(), out, /*fastpath=*/true);  // unaligned
  }(f, ino, data, back));
  EXPECT_TRUE(check_pattern(back, 13, 1000));
  EXPECT_EQ(f.fs.stats().fastpath_reads, 0u);
  EXPECT_GT(f.fs.cache().resident_blocks(), 0u);
}

TEST(Ufs, ReadPastEofClamps) {
  UfsFixture f;
  auto ino = f.fs.create("a");
  auto data = make_pattern(14, 0, 1000);
  std::vector<std::byte> back(5000);
  sim::ByteCount got = 99;
  run_task(f.sim, [](UfsFixture& fx, InodeNum i, std::span<const std::byte> in,
                     std::span<std::byte> out, sim::ByteCount& n) -> Task<void> {
    co_await fx.fs.write(i, 0, in, false);
    n = co_await fx.fs.read(i, 500, 5000, out, false);
  }(f, ino, data, back, got));
  EXPECT_EQ(got, 500u);
  EXPECT_TRUE(check_pattern(std::span<const std::byte>(back).subspan(0, 500), 14, 500));
}

TEST(Ufs, ReadAtEofReturnsZero) {
  UfsFixture f;
  auto ino = f.fs.create("a");
  auto data = make_pattern(15, 0, 1000);
  std::vector<std::byte> back(100);
  sim::ByteCount got = 99;
  run_task(f.sim, [](UfsFixture& fx, InodeNum i, std::span<const std::byte> in,
                     std::span<std::byte> out, sim::ByteCount& n) -> Task<void> {
    co_await fx.fs.write(i, 0, in, false);
    n = co_await fx.fs.read(i, 1000, 100, out, false);
  }(f, ino, data, back, got));
  EXPECT_EQ(got, 0u);
}

TEST(Ufs, SparseWriteExtendsWithZeros) {
  UfsFixture f;
  auto ino = f.fs.create("a");
  auto data = make_pattern(16, 200'000, 1000);
  std::vector<std::byte> back(1000);
  run_task(f.sim, [](UfsFixture& fx, InodeNum i, std::span<const std::byte> in,
                     std::span<std::byte> out) -> Task<void> {
    co_await fx.fs.write(i, 200'000, in, false);
    co_await fx.fs.read(i, 0, 1000, out, false);  // the hole
  }(f, ino, data, back));
  EXPECT_EQ(f.fs.file_size(ino), 201'000u);
  for (auto b : back) EXPECT_EQ(b, std::byte{0});
}

TEST(Ufs, RemoveFreesBlocksForReuse) {
  UfsFixture f;
  auto ino = f.fs.create("a");
  auto data = make_pattern(17, 0, 10 * f.fs.params().block_bytes);
  run_task(f.sim, [](UfsFixture& fx, InodeNum i, std::span<const std::byte> in) -> Task<void> {
    co_await fx.fs.write(i, 0, in, true);
  }(f, ino, data));
  const auto free_before = f.fs.free_blocks();
  f.fs.remove("a");
  EXPECT_EQ(f.fs.free_blocks(), free_before + 10);
  EXPECT_EQ(f.fs.lookup("a"), kInvalidInode);
}

TEST(Ufs, CoalescingCountsMultiBlockRuns) {
  UfsFixture f;
  auto ino = f.fs.create("a");
  const auto bs = f.fs.params().block_bytes;
  auto data = make_pattern(18, 0, 8 * bs);
  run_task(f.sim, [](UfsFixture& fx, InodeNum i, std::span<const std::byte> in) -> Task<void> {
    co_await fx.fs.write(i, 0, in, true);
    std::vector<std::byte> out(in.size());
    co_await fx.fs.read(i, 0, in.size(), out, true);
  }(f, ino, data));
  EXPECT_EQ(f.fs.stats().coalesced_blocks, 16u);  // 8 on write + 8 on read
  EXPECT_EQ(f.dev.ops(), 2u);                     // exactly one device op each way
}

TEST(Ufs, CoalescingDisabledIssuesPerBlockOps) {
  Simulation sim;
  NullBlockDevice dev(sim, 1ull << 30);
  ContentStore content(64 * 1024);
  UfsParams p;
  p.coalesce = false;
  Ufs fs(sim, "ufs0", dev, content, nullptr, p);
  auto ino = fs.create("a");
  auto data = make_pattern(19, 0, 4 * p.block_bytes);
  run_task(sim, [](Ufs& f, InodeNum i, std::span<const std::byte> in) -> Task<void> {
    co_await f.write(i, 0, in, true);
  }(fs, ino, data));
  EXPECT_EQ(dev.ops(), 4u);
}

TEST(Ufs, MisalignedBlockSizeRejected) {
  Simulation sim;
  NullBlockDevice dev(sim);
  ContentStore content;
  UfsParams p;
  p.block_bytes = 1000;  // not a multiple of 512
  EXPECT_THROW(Ufs(sim, "bad", dev, content, nullptr, p), std::invalid_argument);
}

}  // namespace
}  // namespace ppfs::ufs
