// ppfs-lint: allow-file(ref-across-await) test idiom: coroutine referents are stack locals and the test blocks in sim.run()/run_task() before they die
// Integration tests: full-stack PFS reads/writes over the simulated
// machine, every I/O mode, async reads, coordination services.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hw/machine.hpp"
#include "pfs/client.hpp"
#include "pfs/filesystem.hpp"
#include "sim/simulation.hpp"
#include "sim/when_all.hpp"
#include "test_util.hpp"

namespace ppfs::pfs {
namespace {

using ppfs::test::check_pattern;
using ppfs::test::make_pattern;
using ppfs::test::run_task;
using sim::Simulation;
using sim::SimTime;
using sim::Task;

constexpr ByteCount kSU = 64 * 1024;

/// A full simulated Paragon with a PFS mount and N client processes.
struct Testbed {
  explicit Testbed(int ncompute = 8, int nio = 8) : machine(sim, hw::MachineConfig::paragon(ncompute, nio)), fs(machine, PfsParams{}) {
    for (int r = 0; r < ncompute; ++r) {
      clients.push_back(std::make_unique<PfsClient>(fs, r, r, ncompute));
    }
  }

  /// Populate a PFS file with the deterministic pattern via rank 0's
  /// positioned writes (fast, exercises write path once).
  void populate(const std::string& name, ByteCount size, StripeAttrs attrs) {
    fs.create(name, attrs);
    run_task(sim, [](Testbed& tb, std::string n, ByteCount sz) -> Task<void> {
      const int fd = co_await tb.clients[0]->open(n, IoMode::kAsync);
      auto data = make_pattern(1, 0, sz);
      co_await tb.clients[0]->write(fd, data);
      tb.clients[0]->close(fd);
    }(*this, name, size));
  }
  void populate(const std::string& name, ByteCount size) {
    populate(name, size, fs.default_attrs());
  }

  Simulation sim;
  hw::Machine machine;
  PfsFileSystem fs;
  std::vector<std::unique_ptr<PfsClient>> clients;
};

TEST(PfsFileSystem, CreateMakesStripeFiles) {
  Testbed tb;
  auto& meta = tb.fs.create("f", tb.fs.default_attrs());
  EXPECT_EQ(meta.stripe_inos.size(), 8u);
  for (int io = 0; io < 8; ++io) {
    EXPECT_NE(tb.fs.server(io).ufs().lookup("f.s" + std::to_string(io)),
              ufs::kInvalidInode);
  }
  EXPECT_THROW(tb.fs.create("f", tb.fs.default_attrs()), std::invalid_argument);
}

TEST(PfsFileSystem, RejectsBadStripeGroup) {
  Testbed tb;
  StripeAttrs a;
  a.stripe_group = {0, 99};
  EXPECT_THROW(tb.fs.create("bad", a), std::out_of_range);
}

TEST(PfsClient, OpenUnknownFileThrows) {
  Testbed tb;
  bool threw = false;
  run_task(tb.sim, [](Testbed& t, bool& flag) -> Task<void> {
    try {
      co_await t.clients[0]->open("ghost", IoMode::kAsync);
    } catch (const std::invalid_argument&) {
      flag = true;
    }
  }(tb, threw));
  EXPECT_TRUE(threw);
}

TEST(PfsClient, WriteReadRoundTripSingleClient) {
  Testbed tb;
  const ByteCount size = 2 * 1024 * 1024;
  tb.populate("f", size);
  std::vector<std::byte> buf(size);
  run_task(tb.sim, [](Testbed& t, std::span<std::byte> out) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    const auto got = co_await t.clients[0]->read(fd, out);
    EXPECT_EQ(got, out.size());
    t.clients[0]->close(fd);
  }(tb, buf));
  EXPECT_TRUE(check_pattern(buf, 1, 0));
}

TEST(PfsClient, ReadAtArbitraryOffsets) {
  Testbed tb;
  tb.populate("f", 1024 * 1024);
  // Offsets chosen to cross stripe-unit and block boundaries.
  for (FileOffset off : std::vector<FileOffset>{0, 1000, kSU - 1, kSU, 3 * kSU + 17, 900 * 1024}) {
    std::vector<std::byte> buf(200 * 1024);
    ByteCount got = 0;
    run_task(tb.sim, [](Testbed& t, FileOffset o, std::span<std::byte> out,
                        ByteCount& n) -> Task<void> {
      const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
      n = co_await t.clients[0]->read_at(fd, o, out.size(), out, true);
      t.clients[0]->close(fd);
    }(tb, off, buf, got));
    const ByteCount expect = std::min<ByteCount>(buf.size(), 1024 * 1024 - off);
    EXPECT_EQ(got, expect);
    EXPECT_TRUE(check_pattern(std::span<const std::byte>(buf).subspan(0, got), 1, off));
  }
}

TEST(PfsClient, RecordModeCollectiveCoversFileInRankOrder) {
  Testbed tb;
  const ByteCount req = 64 * 1024;
  const ByteCount size = req * 8 * 4;  // 4 rounds
  tb.populate("f", size);
  std::vector<std::vector<std::byte>> bufs(8);
  std::vector<Task<void>> procs;
  for (int r = 0; r < 8; ++r) {
    bufs[r].resize(size / 8);
    procs.push_back([](Testbed& t, int rank, std::span<std::byte> mine,
                       ByteCount rq) -> Task<void> {
      const int fd = co_await t.clients[rank]->open("f", IoMode::kRecord);
      for (ByteCount done = 0; done < mine.size(); done += rq) {
        const auto got = co_await t.clients[rank]->read(fd, mine.subspan(done, rq));
        EXPECT_EQ(got, rq);
      }
      t.clients[rank]->close(fd);
    }(tb, r, bufs[r], req));
  }
  run_task(tb.sim, sim::when_all(tb.sim, std::move(procs)));
  // Rank r's round k data is file range [(k*8 + r) * req, ...).
  for (int r = 0; r < 8; ++r) {
    for (int k = 0; k < 4; ++k) {
      EXPECT_TRUE(check_pattern(
          std::span<const std::byte>(bufs[r]).subspan(k * req, req), 1,
          (static_cast<FileOffset>(k) * 8 + r) * req))
          << "rank " << r << " round " << k;
    }
  }
}

TEST(PfsClient, SyncModeAssignsNodeOrderedVariableSizes) {
  Testbed tb(4, 4);
  tb.populate("f", 1024 * 1024);
  // Rank r reads (r+1)*16KB per round; offsets must be rank-ordered.
  std::vector<std::vector<std::byte>> bufs(4);
  std::vector<Task<void>> procs;
  for (int r = 0; r < 4; ++r) {
    bufs[r].resize((r + 1) * 16 * 1024);
    procs.push_back([](Testbed& t, int rank, std::span<std::byte> mine) -> Task<void> {
      const int fd = co_await t.clients[rank]->open("f", IoMode::kSync);
      const auto got = co_await t.clients[rank]->read(fd, mine);
      EXPECT_EQ(got, mine.size());
      t.clients[rank]->close(fd);
    }(tb, r, bufs[r]));
  }
  run_task(tb.sim, sim::when_all(tb.sim, std::move(procs)));
  FileOffset expect_off = 0;
  for (int r = 0; r < 4; ++r) {
    EXPECT_TRUE(check_pattern(bufs[r], 1, expect_off)) << "rank " << r;
    expect_off += bufs[r].size();
  }
  EXPECT_EQ(tb.fs.collectives().rounds_completed(), 1u);
}

TEST(PfsClient, GlobalModeAllRanksSeeSameData) {
  Testbed tb(4, 4);
  tb.populate("f", 1024 * 1024);
  std::vector<std::vector<std::byte>> bufs(4, std::vector<std::byte>(128 * 1024));
  std::vector<Task<void>> procs;
  for (int r = 0; r < 4; ++r) {
    procs.push_back([](Testbed& t, int rank, std::span<std::byte> mine) -> Task<void> {
      const int fd = co_await t.clients[rank]->open("f", IoMode::kGlobal);
      co_await t.clients[rank]->read(fd, mine);   // round 1
      co_await t.clients[rank]->read(fd, mine);   // round 2
      t.clients[rank]->close(fd);
    }(tb, r, bufs[r]));
  }
  run_task(tb.sim, sim::when_all(tb.sim, std::move(procs)));
  // After two rounds every rank holds round 2's data: file offset 128K.
  for (int r = 0; r < 4; ++r) {
    EXPECT_TRUE(check_pattern(bufs[r], 1, 128 * 1024)) << "rank " << r;
  }
}

TEST(PfsClient, LogModeClaimsDisjointRegions) {
  Testbed tb(4, 4);
  tb.populate("f", 512 * 1024);
  std::vector<std::vector<std::byte>> bufs(4, std::vector<std::byte>(64 * 1024));
  std::vector<FileOffset> claimed(4);
  std::vector<Task<void>> procs;
  for (int r = 0; r < 4; ++r) {
    procs.push_back([](Testbed& t, int rank, std::span<std::byte> mine,
                       FileOffset& off_out) -> Task<void> {
      const int fd = co_await t.clients[rank]->open("f", IoMode::kLog);
      co_await t.clients[rank]->read(fd, mine);
      off_out = t.clients[rank]->tell(fd) - mine.size();
      t.clients[rank]->close(fd);
    }(tb, r, bufs[r], claimed[r]));
  }
  run_task(tb.sim, sim::when_all(tb.sim, std::move(procs)));
  // All four claims are distinct 64K-aligned regions in [0, 256K).
  std::vector<bool> seen(4, false);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(claimed[r] % (64 * 1024), 0u);
    const auto slot = claimed[r] / (64 * 1024);
    ASSERT_LT(slot, 4u);
    EXPECT_FALSE(seen[slot]);
    seen[slot] = true;
    EXPECT_TRUE(check_pattern(bufs[r], 1, claimed[r]));
  }
}

TEST(PfsClient, UnixModeSerializesAccesses) {
  // With the atomicity lock, two concurrent reads must not overlap in time.
  Testbed tb(2, 2);
  tb.populate("f", 1024 * 1024);
  std::vector<std::pair<SimTime, SimTime>> spans(2);
  std::vector<Task<void>> procs;
  for (int r = 0; r < 2; ++r) {
    procs.push_back([](Testbed& t, int rank, std::pair<SimTime, SimTime>& sp) -> Task<void> {
      const int fd = co_await t.clients[rank]->open("f", IoMode::kUnix);
      co_await t.clients[rank]->seek(fd, static_cast<FileOffset>(rank) * 256 * 1024);
      std::vector<std::byte> buf(256 * 1024);
      const SimTime t0 = t.sim.now();
      co_await t.clients[rank]->read(fd, buf);
      sp = {t0, t.sim.now()};
      EXPECT_TRUE(check_pattern(buf, 1, static_cast<FileOffset>(rank) * 256 * 1024));
      t.clients[rank]->close(fd);
    }(tb, r, spans[r]));
  }
  run_task(tb.sim, sim::when_all(tb.sim, std::move(procs)));
  // One read's data phase must start after the other finished (serialized
  // by the file lock) — their [lock-held] intervals cannot nest. We check
  // the weaker, timing-robust property: total elapsed >= sum of solo times
  // would be flaky, so instead assert the completions are distinct and
  // ordered.
  EXPECT_NE(spans[0].second, spans[1].second);
}

TEST(PfsClient, AsyncIreadIowaitDeliversData) {
  Testbed tb;
  tb.populate("f", 512 * 1024);
  std::vector<std::byte> b1(64 * 1024), b2(64 * 1024);
  run_task(tb.sim, [](Testbed& t, std::span<std::byte> o1, std::span<std::byte> o2) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    auto h1 = co_await t.clients[0]->iread(fd, o1);
    auto h2 = co_await t.clients[0]->iread(fd, o2);
    // Pointer advanced at issue time:
    EXPECT_EQ(t.clients[0]->tell(fd), 128u * 1024);
    EXPECT_EQ(co_await t.clients[0]->iowait(h1), 64u * 1024);
    EXPECT_EQ(co_await t.clients[0]->iowait(h2), 64u * 1024);
    t.clients[0]->close(fd);
  }(tb, b1, b2));
  EXPECT_TRUE(check_pattern(b1, 1, 0));
  EXPECT_TRUE(check_pattern(b2, 1, 64 * 1024));
}

TEST(PfsClient, AsyncOverlapsWithUserDelay) {
  // iread then a compute delay: the read should progress during the delay,
  // so iowait after delay >= read-time costs ~nothing extra.
  Testbed tb;
  tb.populate("f", 8 * 1024 * 1024);
  SimTime solo = 0, overlapped = 0;
  run_task(tb.sim, [](Testbed& t, SimTime& solo_out, SimTime& over_out) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    std::vector<std::byte> buf(1024 * 1024);
    // Solo timing.
    SimTime t0 = t.sim.now();
    co_await t.clients[0]->read(fd, buf);
    solo_out = t.sim.now() - t0;
    // Overlapped: issue, compute for 2x solo, then wait.
    auto h = co_await t.clients[0]->iread(fd, buf);
    t0 = t.sim.now();
    co_await t.sim.delay(2 * solo_out);
    const SimTime before_wait = t.sim.now();
    co_await t.clients[0]->iowait(h);
    over_out = t.sim.now() - before_wait;
    t.clients[0]->close(fd);
  }(tb, solo, overlapped));
  EXPECT_LT(overlapped, solo * 0.1);  // essentially free after the overlap
}

TEST(PfsClient, IreadRejectsCoordinatedModes) {
  Testbed tb;
  tb.populate("f", 256 * 1024);
  bool threw = false;
  run_task(tb.sim, [](Testbed& t, bool& flag) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kLog);
    std::vector<std::byte> buf(64 * 1024);
    try {
      co_await t.clients[0]->iread(fd, buf);
    } catch (const std::logic_error&) {
      flag = true;
    }
    t.clients[0]->close(fd);
  }(tb, threw));
  EXPECT_TRUE(threw);
}

TEST(PfsClient, ReadPastEofClampsAndReturnsZeroAtEof) {
  Testbed tb;
  tb.populate("f", 100 * 1024);
  run_task(tb.sim, [](Testbed& t) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    std::vector<std::byte> buf(64 * 1024);
    co_await t.clients[0]->seek(fd, 90 * 1024);
    EXPECT_EQ(co_await t.clients[0]->read(fd, buf), 10u * 1024);
    EXPECT_EQ(co_await t.clients[0]->read(fd, buf), 0u);
    t.clients[0]->close(fd);
  }(tb));
}

TEST(PfsClient, SeekMovesPointer) {
  Testbed tb;
  tb.populate("f", 256 * 1024);
  run_task(tb.sim, [](Testbed& t) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    co_await t.clients[0]->seek(fd, 128 * 1024);
    EXPECT_EQ(t.clients[0]->tell(fd), 128u * 1024);
    std::vector<std::byte> buf(64 * 1024);
    co_await t.clients[0]->read(fd, buf);
    EXPECT_TRUE(check_pattern(buf, 1, 128 * 1024));
    t.clients[0]->close(fd);
  }(tb));
}

TEST(PfsClient, NextReadOffsetPrediction) {
  Testbed tb;
  tb.populate("f", 1024 * 1024);
  run_task(tb.sim, [](Testbed& t) -> Task<void> {
    const int fd = co_await t.clients[3]->open("f", IoMode::kRecord);
    EXPECT_TRUE(t.clients[3]->next_offset_predictable(fd));
    // rank 3 of 8: first read at 3*64K.
    EXPECT_EQ(t.clients[3]->next_read_offset(fd, 64 * 1024), 3u * 64 * 1024);
    std::vector<std::byte> buf(64 * 1024);
    co_await t.clients[3]->read(fd, buf);
    // Next round: (8 + 3) * 64K.
    EXPECT_EQ(t.clients[3]->next_read_offset(fd, 64 * 1024), 11u * 64 * 1024);
    t.clients[3]->close(fd);
  }(tb));
}

TEST(PfsClient, StatsAccumulate) {
  Testbed tb;
  tb.populate("f", 256 * 1024);
  run_task(tb.sim, [](Testbed& t) -> Task<void> {
    const int fd = co_await t.clients[0]->open("f", IoMode::kAsync);
    std::vector<std::byte> buf(64 * 1024);
    co_await t.clients[0]->read(fd, buf);
    co_await t.clients[0]->read(fd, buf);
    t.clients[0]->close(fd);
  }(tb));
  EXPECT_EQ(tb.clients[0]->stats().reads, 2u);
  EXPECT_EQ(tb.clients[0]->stats().bytes_read, 128u * 1024);
  EXPECT_GT(tb.clients[0]->stats().read_time, 0.0);
}

TEST(PfsClient, SeparateFilesDontInterfereLogically) {
  Testbed tb(4, 4);
  for (int r = 0; r < 4; ++r) {
    tb.fs.create("own" + std::to_string(r), tb.fs.default_attrs());
  }
  // Each rank writes then reads back its own file concurrently.
  std::vector<Task<void>> procs;
  for (int r = 0; r < 4; ++r) {
    procs.push_back([](Testbed& t, int rank) -> Task<void> {
      auto& client = *t.clients[rank];
      const int fd = co_await client.open("own" + std::to_string(rank), IoMode::kAsync);
      auto data = make_pattern(100 + rank, 0, 256 * 1024);
      co_await client.write(fd, data);
      co_await client.seek(fd, 0);
      std::vector<std::byte> back(256 * 1024);
      co_await client.read(fd, back);
      EXPECT_TRUE(check_pattern(back, 100 + rank, 0));
      client.close(fd);
    }(tb, r));
  }
  run_task(tb.sim, sim::when_all(tb.sim, std::move(procs)));
}

TEST(ArtQueue, FifoIssueOrder) {
  Simulation sim;
  std::vector<int> issue_order;
  ArtQueue q(sim, 1, [&](const AsyncRequest& r) -> Task<ByteCount> {
    issue_order.push_back(r.fd);
    co_await sim.delay(1.0);
    co_return r.length;
  });
  for (int i = 0; i < 3; ++i) {
    auto req = std::make_shared<AsyncRequest>(sim);
    req->fd = i;
    req->length = 10;
    q.post(req);
  }
  sim.run();
  EXPECT_EQ(issue_order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.completed(), 3u);
}

TEST(ArtQueue, ConcurrencyBoundedByMaxArts) {
  Simulation sim;
  int active = 0, peak = 0;
  ArtQueue q(sim, 2, [&](const AsyncRequest&) -> Task<ByteCount> {
    ++active;
    peak = std::max(peak, active);
    co_await sim.delay(1.0);
    --active;
    co_return 0;
  });
  for (int i = 0; i < 6; ++i) q.post(std::make_shared<AsyncRequest>(sim));
  sim.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(q.completed(), 6u);
}

TEST(ArtQueue, ErrorsPropagateThroughWait) {
  Simulation sim;
  ArtQueue q(sim, 1, [&](const AsyncRequest&) -> Task<ByteCount> {
    co_await sim.delay(0.1);
    throw std::runtime_error("io error");
  });
  auto req = std::make_shared<AsyncRequest>(sim);
  q.post(req);
  bool threw = false;
  sim.spawn([](ArtQueue& queue, AsyncHandle h, bool& flag) -> Task<void> {
    try {
      co_await queue.wait(std::move(h));
    } catch (const std::runtime_error&) {
      flag = true;
    }
  }(q, req, threw));
  sim.run();
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace ppfs::pfs
