// Deliberately-bad fixture for the sweep-shared-state rule. NEVER compiled —
// it sits under a workload/ directory, so PpfsAnalyze treats it as
// scenario-reachable code, where mutable static-storage state is banned:
// SweepRunner fans scenarios across a thread pool (--jobs), so any such
// state races across workers and silently couples scenarios that must be
// independent, bit-identical simulations.
#include <cstdint>

namespace ppfs::bad {

// [sweep-shared-state] mutable namespace-scope variable.
int g_total_requests = 0;

namespace {
// [sweep-shared-state] mutable variable in an anonymous namespace: still
// one instance per process, shared by every sweep worker.
double g_last_bandwidth_mbs;
}  // namespace

// OK: immutable configuration.
constexpr int kTableSize = 64;
const char* const kLabel = "workload";

// OK: per-worker scratch (no cross-thread sharing).
thread_local int tl_scratch = 0;

struct Counters {
  // [sweep-shared-state] static data member: shared across every
  // simulation instance in the process.
  static std::uint64_t live_experiments;

  // OK: per-instance state.
  int per_instance = 0;
};

inline int bump_call_count() {
  // [sweep-shared-state] mutable function-local static.
  static int calls = 0;
  return ++calls;
}

inline int lookup_table() {
  // OK: const local static — initialized once, read-only afterwards.
  static const int k_primes[4] = {2, 3, 5, 7};
  return k_primes[0];
}

}  // namespace ppfs::bad
