// Deliberately-bad fixture for tools/ppfs_lint.py. NEVER compiled — it
// exists so the ppfs_lint_detects_fixture ctest can prove the lint flags
// each coroutine-hygiene rule class. Each block below is a real bug
// pattern that compiled fine in earlier drafts of DES codebases and
// corrupted results at runtime.
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace ppfs::bad {

sim::Task<void> helper(sim::Simulation& sim);

sim::Task<void> discards_a_task(sim::Simulation& sim) {
  // [discarded-task] The returned Task is destroyed before it ever runs:
  // the helper's body silently never executes.
  helper(sim);
  co_return;
}

void spawns_with_dangling_capture(sim::Simulation& sim, int& counter) {
  // [spawn-ref-capture] `counter` (and `sim`) are captured by reference;
  // the lambda object dies when spawn() returns, so the coroutine frame
  // reads a dangling reference after its first co_await.
  sim.spawn([&]() -> sim::Task<void> {
    co_await sim.delay(1.0);
    ++counter;
  }());
}

struct InlineAwaitable {
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) {}
  void await_resume() const noexcept {}
};

sim::Task<void> awaits_a_temporary(sim::Simulation& sim) {
  co_await sim.delay(0.5);
  // [co-await-temporary] Inline awaitable temporary: nothing ties its
  // lifetime (or the lifetimes of anything it references) to a primitive
  // that outlives the suspension.
  co_await InlineAwaitable{};
}

}  // namespace ppfs::bad
