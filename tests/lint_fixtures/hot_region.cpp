// Deliberately-bad fixture for the hot-region-alloc rule. NEVER compiled.
// `// ppfs::hot` ... `// ppfs::endhot` marks an author-declared hot region
// in ANY file — the generalization of the per-subsystem allocation rules
// (sim/ SmallFn, hw/mesh InlineVec, trace/ POD records). Inside a region,
// heap containers, std::function, stream types, and non-placement `new`
// are banned; outside, full freedom.
#include <functional>
#include <vector>

namespace ppfs::bad {

// ppfs::hot — pretend per-event fast path
inline void record_event(int v) {
  // [hot-region-alloc] heap container inside a declared hot region.
  std::vector<int> staging;
  staging.push_back(v);

  // [hot-region-alloc] heap `new` inside a declared hot region.
  int* boxed = new int(v);
  (void)boxed;

  // [hot-region-alloc] std::function inside a declared hot region.
  std::function<void()> deferred;
  (void)deferred;
}
// ppfs::endhot

inline void cold_reporting_path() {
  // OK: outside the region the same constructs are fine.
  std::vector<int> rows;
  rows.push_back(1);
}

}  // namespace ppfs::bad
