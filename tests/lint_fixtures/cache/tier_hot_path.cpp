// Deliberately-bad fixture for the hot-region-alloc rule on the cache tier's
// data path. NEVER compiled. The real tier marks its residency probe
// (CacheFileInfo::test, one call per block on every served read) as a
// `// ppfs::hot` region; this fixture commits the allocations that rule
// exists to keep out of that probe.
#include <functional>
#include <map>
#include <string>

namespace ppfs::bad {

// ppfs::hot — pretend per-block tier residency probe
inline bool tier_resident(unsigned ino, unsigned long long lblock) {
  // [hot-region-alloc] heap container built per probe — the bitmap word
  // lookup must index the existing vector, never materialize a map.
  std::map<unsigned, unsigned long long> words;
  (void)words[ino];

  // [hot-region-alloc] std::string formatting on the serve path.
  std::string key = std::to_string(ino) + ":" + std::to_string(lblock);
  (void)key;

  // [hot-region-alloc] std::function indirection per probe.
  std::function<bool()> probe = [] { return true; };
  return probe();
}
// ppfs::endhot

inline void fsck_report_path() {
  // OK: fsck and recovery are cold paths — allocation is fine there.
  std::string summary = "entries=0";
  (void)summary;
}

}  // namespace ppfs::bad
