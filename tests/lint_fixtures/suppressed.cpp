// Suppression-accounting fixture. NEVER compiled. Both violations below
// are real, and both carry `// ppfs-lint: allow(<rule>)` — one on the line
// above the finding, one trailing on the finding's own line (the two
// supported placements). They must appear in the suppressed list and
// contribute ZERO to every rule count; the fixture test's exact per-rule
// expectations verify that.
namespace ppfs::bad {

template <typename T>
struct Task {};

struct SuppressedEvil {};

Task<void> helper_for_suppression();

Task<void> suppression_tour() {
  // ppfs-lint: allow(discarded-task) fixture: exercises line-above placement
  helper_for_suppression();

  co_await SuppressedEvil{};  // ppfs-lint: allow(co-await-temporary) fixture: same-line placement

  co_return;
}

}  // namespace ppfs::bad
