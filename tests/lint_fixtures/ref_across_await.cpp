// Deliberately-bad fixture for the ref-across-await rule. NEVER compiled.
// A coroutine frame stores reference parameters and reference captures as
// references — the referent is NOT copied into the frame. Anything the
// frame still touches after its first suspension must therefore outlive
// that suspension; for lambda coroutines (whose closure object is usually
// a temporary) and rvalue-reference parameters (usually bound to
// temporaries) that is almost never provable, which is exactly what this
// rule flags. Lvalue-reference parameters of *named* coroutines are the
// codebase's long-lived-subsystem idiom and stay exempt.
#include <string>

namespace ppfs::bad {

struct Sim {
  auto delay(double dt);
};

template <typename T>
struct Task {};

Task<void> next_tick();

inline void capture_outlived_by_frame(Sim& sim, int& counter) {
  // [ref-across-await] the by-reference capture is read after the frame
  // resumes; the closure that held it is long dead by then.
  auto t = [&counter](Sim& s) -> Task<void> {
    co_await s.delay(1.0);
    ++counter;
  }(sim);
  (void)t;
}

inline auto lambda_ref_param_after_await(Sim& sim, int& slot) {
  // [ref-across-await] `out` is a reference parameter of a lambda
  // coroutine, written after the suspension.
  return [](Sim& s, int& out) -> Task<void> {
    co_await s.delay(2.0);
    out = 42;
  }(sim, slot);
}

inline auto lambda_rvalue_param(Sim& sim) {
  // [ref-across-await] `buf` binds a temporary; the temporary dies at the
  // first suspension, the frame keeps a reference to the corpse.
  return [](Sim& s, std::string&& buf) -> Task<void> {
    co_await s.delay(3.0);
    buf.clear();
  }(sim, std::string("scratch"));
}

// [ref-across-await] rvalue-reference parameter of a named coroutine,
// used after the await — same dead-temporary hazard as the lambda case.
Task<void> named_rvalue_param(std::string&& name) {
  co_await next_tick();
  consume(name);
}

// OK: lvalue-reference parameter of a named coroutine — the blessed idiom
// for long-lived subsystem objects whose lifetime the call site owns.
Task<void> named_lvalue_param(Sim& sim) {
  co_await sim.delay(1.0);
  co_await sim.delay(2.0);
  co_return;
}

inline auto ref_only_before_await(Sim& sim) {
  // OK: `s` is only read while building the first co_await's operand,
  // i.e. before the frame ever suspends.
  return [](Sim& s) -> Task<void> {
    co_await s.delay(4.0);
    co_return;
  }(sim);
}

inline auto ref_in_await_loop(Sim& sim, int& acc) {
  // [ref-across-await] the first co_await sits inside a loop, so every
  // name the loop body touches — even textually before the co_await — is
  // used after a suspension from the second iteration on.
  return [](int& total) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      total += i;
      co_await next_tick();
    }
  }(acc);
}

}  // namespace ppfs::bad
