// Deliberately-bad fixture for tools/ppfs_lint.py's trace-hot-path-alloc
// rule. NEVER compiled — it sits under a trace/ directory with a sink*
// stem, so the lint treats it as a hot TraceScope header (inlined into the
// kernel dispatch loop), where heap containers and stream types are banned:
// every record() call would allocate or format. Hot trace types are PODs;
// growth and rendering live in the cold .cpp files.
#pragma once

#include <sstream>
#include <vector>

namespace ppfs::bad {

struct BadTraceSink {
  // [trace-hot-path-alloc] heap container in a hot trace header.
  std::vector<double> timestamps;

  // [trace-hot-path-alloc] stream formatting on the record path.
  std::ostringstream label;
};

}  // namespace ppfs::bad
