// Regression fixture for raw-string-literal handling. NEVER compiled.
// The pre-rewrite stripper treated R"json(...)" like an ordinary quoted
// string: it stopped at the first `"` inside the body, desynced, and from
// then on read string content as code — masking real violations and
// fabricating ones from literal text. The lexer must skim the whole
// literal as one token, so the trap tokens below ([&] captures, a
// std::function, a co_await on a braced temporary, unbalanced quotes and
// braces) produce NOTHING, while the single genuine violation after the
// literal is still caught. The fixture's exact-count accounting pins both
// directions.
namespace ppfs::bad {

inline const char* kTrapSchema = R"json(
  {
    "spawn": "spawn([&]() -> Task<void> { co_await sim.delay(1); }())",
    "temp": "co_await InlineAwaitable{}",
    "fn": "std::function<void()> cb;",
    "unbalanced": "\" ' } ) ("
  }
)json";

struct RawEvil {};

template <typename T>
struct Task {};

Task<void> after_the_raw_literal() {
  // [co-await-temporary] the one real violation: proves the lexer is back
  // in sync after the raw literal above.
  co_await RawEvil{};
}

}  // namespace ppfs::bad
