// Deliberately-bad fixture for the scope-aware spawn-ref-capture rule.
// NEVER compiled. The old single-line regex required `spawn(` and the
// capture list to be adjacent; both patterns below escaped it — a capture
// list on its own line after a wrapped call, and a lambda nested inside a
// helper-call argument of spawn(). The scope tracker finds every lambda
// whose capture intro sits anywhere inside a spawn(...) argument list.
namespace ppfs::bad {

struct Sim {
  auto delay(double dt);
  template <typename T>
  void spawn(T&& task);
};

template <typename T>
struct Task {};

Task<void> tick();

template <typename T>
T trace_wrap(T&& task);

inline void multiline_and_nested(Sim& sim, int& counter) {
  // [spawn-ref-capture] capture list on its own line, two lines after
  // spawn( — plus [ref-across-await]: &counter is read after the await.
  sim.spawn(
      [&counter]() -> Task<void> {
        co_await tick();
        ++counter;
      }());

  // [spawn-ref-capture] nested inside a helper-call argument: [=] copies
  // the enclosing frame's state, including any raw this — still dangling
  // once the enclosing function returns.
  sim.spawn(trace_wrap(
      [=]() -> Task<void> {
        co_await tick();
        co_return;
      }()));
}

}  // namespace ppfs::bad
