// Deliberately-bad fixture for tools/ppfs_lint.py's hot-path-std-function
// rule. NEVER compiled — it sits under a sim/ directory so the lint treats
// it as kernel hot-path code, where std::function is banned: its capture-
// heavy callbacks heap-allocate and every queue move runs a trampoline.
// Kernel callbacks use sim::SmallFn instead (see src/sim/small_fn.hpp).
#pragma once

#include <functional>

namespace ppfs::bad {

struct BadQueueItem {
  double time = 0;
  // [hot-path-std-function] member callback in a hot-path type.
  std::function<void()> callback;
};

// [hot-path-std-function] callback parameter on a scheduling API.
void schedule_at(double t, std::function<void()> fn);

}  // namespace ppfs::bad
