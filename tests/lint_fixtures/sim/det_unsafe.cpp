// Deliberately-bad fixture for the det-unsafe-source rule. NEVER compiled —
// it sits under a sim/ directory, so PpfsAnalyze treats it as
// digest-affecting code, where wall-clock reads, ambient randomness, and
// address-ordered containers are banned: any of them reaching the event
// stream breaks the bit-identical replay every BENCH gate rests on.
#include <chrono>
#include <map>
#include <random>
#include <unordered_map>

namespace ppfs::bad {

struct Grant;

inline double wall_seconds() {
  // [det-unsafe-source] host wall clock in a digest-affecting directory.
  const auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  return 0.0;
}

inline int roll_die() {
  // [det-unsafe-source] ambient randomness; use the seeded sim::Rng.
  return rand() % 6;
}

inline unsigned reseed_from_host() {
  // [det-unsafe-source] hardware entropy makes every replay different.
  std::random_device rd;
  return rd();
}

struct WakeupTable {
  // [det-unsafe-source] unordered container: iteration order is
  // implementation-defined, and pointer keys make it address-dependent.
  std::unordered_map<const Grant*, int> pending;

  // [det-unsafe-source] pointer-keyed ordered container: sorted by
  // allocation address, which varies run to run.
  std::map<Grant*, int> rank;

  // OK: value-keyed ordered container — iteration order is stable.
  std::map<int, int> by_id;
};

}  // namespace ppfs::bad
