// Deliberately-bad fixture for the hot-region-alloc rule on the adaptive
// prefetch controller. NEVER compiled. The real AdaptiveController marks
// its per-read decision path (depth probe + hit/miss accounting, one call
// per served read) as a `// ppfs::hot` region; this fixture commits the
// allocations that rule exists to keep out of the feedback loop.
#include <functional>
#include <string>
#include <unordered_map>

namespace ppfs::bad {

// ppfs::hot — pretend per-read depth decision + window accounting
inline unsigned decide_depth(int fd, bool hit) {
  // [hot-region-alloc] heap map built per read — per-fd window state must
  // live in the open-addressed FdMap, never a node-based container.
  std::unordered_map<int, unsigned> windows;
  windows[fd] += hit ? 1u : 0u;

  // [hot-region-alloc] std::string formatting inside the feedback loop.
  std::string trail = "fd=" + std::to_string(fd);
  (void)trail;

  // [hot-region-alloc] std::function indirection on the ramp decision.
  std::function<unsigned(unsigned)> ramp = [](unsigned d) { return d * 2; };
  return ramp(windows[fd]);
}
// ppfs::endhot

inline void depth_histogram_report() {
  // OK: the end-of-run depth histogram dump is a cold path.
  std::string line = "depth=1";
  (void)line;
}

}  // namespace ppfs::bad
