// Fixture for the token-state rule: TokenWrite grant-table state mutated
// outside its owning subsystem. The manager's grant table, the client's
// cached holdings, and the SimCheck conservation ledger each have exactly
// one legitimate writer; a mutation anywhere else bypasses the
// flush-before-ack protocol and desynchronizes the conservation audit.
#include <cstdint>
#include <map>
#include <vector>

struct HeldRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

// Stand-in for the real state — in the production tree these are private
// members of TokenManager / PfsClient / SimAuditor; a helper like the ones
// below would have reached them through a friend declaration or a leaked
// pointer.
struct TokenInnards {
  std::uint64_t write_granted_bytes_ = 0;
  std::map<std::uint64_t, std::vector<HeldRange>> held_tokens_;
  std::map<std::uint64_t, std::vector<HeldRange>> token_grants_;
  std::uint64_t token_granted_bytes_ = 0;
};

void steal_grant(TokenInnards& t, std::uint64_t file, HeldRange r) {
  // VIOLATION(token-state): grant-table total bumped without a grant — the
  // manager never installed this range and no revocation can find it.
  t.write_granted_bytes_ += r.end - r.begin;
  // VIOLATION(token-state): client holdings forged outside the acquire/
  // revoke path; flush-before-ack never covers this range.
  t.held_tokens_[file].push_back(r);
}

void cook_ledger(TokenInnards& t, std::uint64_t file) {
  // VIOLATION(token-state): conservation ledger wiped outside the auditor —
  // the next check_token_conservation balances against nothing.
  t.token_grants_[file].clear();
  // VIOLATION(token-state): plain assignment to the ledger total.
  t.token_granted_bytes_ = 0;
}

std::uint64_t audit_view(const TokenInnards& t) {
  // OK: reads are fine anywhere — introspection and cross-checks compare
  // against this state without owning it.
  if (t.token_granted_bytes_ == t.write_granted_bytes_) {
    return t.token_granted_bytes_;
  }
  return t.write_granted_bytes_ + t.held_tokens_.size() + t.token_grants_.size();
}
