// Fixture for the per-node-state rule: NodeId-keyed std maps declared
// inside a // ppfs::hot region. Per-node simulation state on a hot path
// belongs in a sim::ShardArena indexed by node id.
//
// Note: the std:: container mentions inside the hot region also fire
// hot-region-alloc (heap containers are banned there outright); the
// per-node-state findings are the NodeId-specific subset that points at
// the ShardArena remedy.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

using NodeId = int;

namespace hw {
using NodeId = std::uint32_t;
}

struct DiskQueue {
  int depth = 0;
};

struct Router {
  // ppfs::hot
  // VIOLATION(per-node-state): hash lookup per event for a dense id space.
  std::unordered_map<NodeId, DiskQueue> queues;
  // VIOLATION(per-node-state): ordered map is no better — still pointer
  // chasing keyed by a dense node id.
  std::map<hw::NodeId, int> credits;
  // VIOLATION(per-node-state): nested mapped type must not hide the key.
  std::unordered_map<NodeId, std::vector<double>> samples;
  // OK for per-node-state (still hot-region-alloc): key is not a NodeId.
  std::map<std::string, int> by_name;
  // OK for per-node-state (still hot-region-alloc): NodeId is the mapped
  // type, not the key.
  std::unordered_map<std::string, NodeId> owner_of;
  // ppfs::endhot

  // OK: outside any hot region, a NodeId-keyed map is merely a style
  // choice, not a hot-path scaling hazard.
  std::unordered_map<NodeId, DiskQueue> cold_queues;
};

int touch(Router& r) { return r.queues.size() + r.cold_queues.size() + r.credits.size() + r.samples.size() + r.by_name.size() + r.owner_of.size(); }
