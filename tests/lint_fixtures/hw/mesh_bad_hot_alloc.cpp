// Deliberately-bad fixture for the mesh-hot-path-alloc rule: a heap
// container declared inside a mesh coroutine body. Never compiled; linted
// by the ppfs_lint_fixture CTest to prove the rule fires.
#include <vector>

namespace ppfs::hw {

struct FakeSim {
  auto delay(double) { return 0; }
};

template <typename T>
struct Task {
  T value;
};

Task<void> mesh_send_hot(FakeSim& sim) {
  // BAD: one malloc per simulated message on the hottest path in the tree.
  std::vector<int> path_hops;
  path_hops.push_back(1);
  co_await sim.delay(0.001);
}

}  // namespace ppfs::hw
