// Unit tests for stripe layout mapping (paper Figure 3) and I/O mode traits
// (paper Figure 1).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "pfs/io_mode.hpp"
#include "pfs/stripe.hpp"

namespace ppfs::pfs {
namespace {

constexpr ByteCount kSU = 64 * 1024;

StripeAttrs attrs8(ByteCount su = kSU) {
  StripeAttrs a;
  a.stripe_unit = su;
  a.stripe_group = {0, 1, 2, 3, 4, 5, 6, 7};
  return a;
}

TEST(StripeLayout, RejectsDegenerateAttrs) {
  StripeAttrs a;
  a.stripe_unit = 0;
  EXPECT_THROW(StripeLayout{a}, std::invalid_argument);
  StripeAttrs b;
  b.stripe_group.clear();
  EXPECT_THROW(StripeLayout{b}, std::invalid_argument);
}

TEST(StripeLayout, OffsetOwnership) {
  StripeLayout l(attrs8());
  EXPECT_EQ(l.io_node_of(0), 0);
  EXPECT_EQ(l.io_node_of(kSU - 1), 0);
  EXPECT_EQ(l.io_node_of(kSU), 1);
  EXPECT_EQ(l.io_node_of(7 * kSU), 7);
  EXPECT_EQ(l.io_node_of(8 * kSU), 0);  // wraps to second round
}

TEST(StripeLayout, LocalOffsets) {
  StripeLayout l(attrs8());
  EXPECT_EQ(l.local_offset(0), 0u);
  EXPECT_EQ(l.local_offset(kSU + 5), 5u);          // node 1, round 0
  EXPECT_EQ(l.local_offset(8 * kSU), kSU);          // node 0, round 1
  EXPECT_EQ(l.local_offset(9 * kSU + 7), kSU + 7);  // node 1, round 1
}

TEST(StripeLayout, SingleUnitRequestHitsOneNode) {
  // Paper Fig 3: "request sizes of 64KB" -> one I/O node per request.
  StripeLayout l(attrs8());
  auto reqs = l.map(3 * kSU, kSU);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].io_index, 3);
  EXPECT_EQ(reqs[0].local_offset, 0u);
  EXPECT_EQ(reqs[0].length, kSU);
  ASSERT_EQ(reqs[0].pieces.size(), 1u);
  EXPECT_EQ(reqs[0].pieces[0].file_offset, 3 * kSU);
}

TEST(StripeLayout, MultiUnitRequestDeclusters) {
  // Paper Fig 3: "request sizes of 128KB" -> first su to node k, second to
  // node k+1.
  StripeLayout l(attrs8());
  auto reqs = l.map(0, 2 * kSU);
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].io_index, 0);
  EXPECT_EQ(reqs[1].io_index, 1);
  EXPECT_EQ(reqs[0].length, kSU);
  EXPECT_EQ(reqs[1].length, kSU);
}

TEST(StripeLayout, FullRoundTouchesAllNodesOnce) {
  StripeLayout l(attrs8());
  auto reqs = l.map(0, 8 * kSU);
  ASSERT_EQ(reqs.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(reqs[i].io_index, i);
    EXPECT_EQ(reqs[i].length, kSU);
    EXPECT_EQ(reqs[i].local_offset, 0u);
  }
}

TEST(StripeLayout, MultiRoundRequestStaysContiguousLocally) {
  StripeLayout l(attrs8());
  // 16 units: each node serves 2 units that are CONTIGUOUS in its stripe
  // file even though they are 8 units apart in file space.
  auto reqs = l.map(0, 16 * kSU);
  ASSERT_EQ(reqs.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(reqs[i].length, 2 * kSU);
    EXPECT_EQ(reqs[i].local_offset, 0u);
    ASSERT_EQ(reqs[i].pieces.size(), 2u);
    EXPECT_EQ(reqs[i].pieces[0].file_offset, static_cast<FileOffset>(i) * kSU);
    EXPECT_EQ(reqs[i].pieces[1].file_offset, static_cast<FileOffset>(i + 8) * kSU);
  }
}

TEST(StripeLayout, UnalignedRequestSplitsAtUnitBoundary) {
  StripeLayout l(attrs8());
  auto reqs = l.map(kSU / 2, kSU);  // second half of unit 0 + first half of unit 1
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].io_index, 0);
  EXPECT_EQ(reqs[0].local_offset, kSU / 2);
  EXPECT_EQ(reqs[0].length, kSU / 2);
  EXPECT_EQ(reqs[1].io_index, 1);
  EXPECT_EQ(reqs[1].local_offset, 0u);
  EXPECT_EQ(reqs[1].length, kSU / 2);
}

TEST(StripeLayout, SmallRequestWithinOneUnit) {
  StripeLayout l(attrs8());
  auto reqs = l.map(2 * kSU + 100, 1000);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].io_index, 2);
  EXPECT_EQ(reqs[0].local_offset, 100u);
  EXPECT_EQ(reqs[0].length, 1000u);
}

TEST(StripeLayout, MapCoversRequestExactly) {
  StripeLayout l(attrs8(16 * 1024));
  const FileOffset off = 37 * 1024;
  const ByteCount len = 555 * 1024;
  auto reqs = l.map(off, len);
  ByteCount total = 0;
  for (const auto& r : reqs) {
    ByteCount piece_sum = 0;
    for (const auto& p : r.pieces) {
      piece_sum += p.length;
      EXPECT_GE(p.file_offset, off);
      EXPECT_LE(p.file_offset + p.length, off + len);
    }
    EXPECT_EQ(piece_sum, r.length);
    total += r.length;
  }
  EXPECT_EQ(total, len);
}

TEST(StripeLayout, RepeatedNodeInGroupGetsDistinctSlots) {
  // Table 4's "striping 8 ways across 1 node".
  StripeAttrs a;
  a.stripe_unit = kSU;
  a.stripe_group.assign(8, 0);
  StripeLayout l(a);
  auto reqs = l.map(0, 8 * kSU);
  ASSERT_EQ(reqs.size(), 8u);
  for (int s = 0; s < 8; ++s) {
    EXPECT_EQ(reqs[s].group_slot, s);
    EXPECT_EQ(reqs[s].io_index, 0);  // all on node 0
  }
}

TEST(StripeLayout, LocalSizesPartitionFileSize) {
  StripeLayout l(attrs8());
  for (ByteCount fs : std::vector<ByteCount>{0, 1, kSU - 1, kSU, 8 * kSU, 8 * kSU + 123, 1000 * kSU + 7}) {
    auto sizes = l.local_sizes(fs);
    const ByteCount sum = std::accumulate(sizes.begin(), sizes.end(), ByteCount{0});
    EXPECT_EQ(sum, fs) << "file size " << fs;
  }
}

TEST(StripeLayout, SingleNodeGroupIsIdentityMapping) {
  StripeAttrs a;
  a.stripe_unit = kSU;
  a.stripe_group = {0};
  StripeLayout l(a);
  auto reqs = l.map(12345, 300000);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].local_offset, 12345u);
  EXPECT_EQ(reqs[0].length, 300000u);
}

TEST(IoMode, TraitsMatchPaperTaxonomy) {
  EXPECT_FALSE(traits(IoMode::kUnix).shared_pointer);
  EXPECT_TRUE(traits(IoMode::kUnix).atomic);
  EXPECT_FALSE(traits(IoMode::kAsync).shared_pointer);
  EXPECT_FALSE(traits(IoMode::kAsync).atomic);
  EXPECT_TRUE(traits(IoMode::kLog).shared_pointer);
  EXPECT_FALSE(traits(IoMode::kLog).node_ordered);
  EXPECT_TRUE(traits(IoMode::kSync).synchronized);
  EXPECT_FALSE(traits(IoMode::kSync).same_data);
  EXPECT_TRUE(traits(IoMode::kGlobal).same_data);
  EXPECT_TRUE(traits(IoMode::kRecord).node_ordered);
  EXPECT_FALSE(traits(IoMode::kRecord).synchronized);
  EXPECT_TRUE(traits(IoMode::kRecord).fixed_records);
}

TEST(IoMode, ModeNumbersMatchParagon) {
  EXPECT_EQ(static_cast<int>(IoMode::kUnix), 0);
  EXPECT_EQ(static_cast<int>(IoMode::kAsync), 1);
  EXPECT_EQ(static_cast<int>(IoMode::kSync), 2);
  EXPECT_EQ(static_cast<int>(IoMode::kRecord), 3);
  EXPECT_EQ(static_cast<int>(IoMode::kGlobal), 4);
  EXPECT_EQ(static_cast<int>(IoMode::kLog), 5);
}

TEST(IoMode, NamesAndEnumeration) {
  EXPECT_EQ(to_string(IoMode::kRecord), "M_RECORD");
  EXPECT_EQ(all_io_modes().size(), 6u);
  for (auto m : all_io_modes()) EXPECT_FALSE(to_string(m).empty());
}

}  // namespace
}  // namespace ppfs::pfs
