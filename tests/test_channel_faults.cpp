// ppfs-lint: allow-file(ref-across-await) test idiom: coroutine referents are stack locals and the test blocks in sim.run()/run_task() before they die
// Tests for Channel<T>, wait_with_timeout, disk fault injection, and
// whole-stack behavior under a degraded I/O node.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "hw/disk.hpp"
#include "hw/machine.hpp"
#include "sim/channel.hpp"
#include "sim/simulation.hpp"
#include "test_util.hpp"
#include "workload/experiment.hpp"

namespace ppfs {
namespace {

using sim::Channel;
using sim::Event;
using sim::Simulation;
using sim::SimTime;
using sim::Task;

TEST(Channel, SendReceiveInOrder) {
  Simulation sim;
  Channel<int> ch(sim, 4);
  std::vector<int> received;
  sim.spawn([](Channel<int>& c) -> Task<void> {
    for (int i = 0; i < 5; ++i) co_await c.send(i);
    c.close();
  }(ch));
  sim.spawn([](Channel<int>& c, std::vector<int>& out) -> Task<void> {
    while (auto v = co_await c.receive()) out.push_back(*v);
  }(ch, received));
  sim.run();
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(Channel, SenderBlocksWhenFull) {
  Simulation sim;
  Channel<int> ch(sim, 1);
  std::vector<SimTime> send_done;
  sim.spawn([](Simulation& s, Channel<int>& c, std::vector<SimTime>& out) -> Task<void> {
    co_await c.send(1);   // fits
    out.push_back(s.now());
    co_await c.send(2);   // blocks until consumer drains
    out.push_back(s.now());
  }(sim, ch, send_done));
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task<void> {
    co_await s.delay(3.0);
    (void)co_await c.receive();
    (void)co_await c.receive();
  }(sim, ch));
  sim.run();
  ASSERT_EQ(send_done.size(), 2u);
  EXPECT_DOUBLE_EQ(send_done[0], 0.0);
  EXPECT_DOUBLE_EQ(send_done[1], 3.0);
}

TEST(Channel, ReceiverBlocksUntilSend) {
  Simulation sim;
  Channel<std::string> ch(sim, 2);
  std::optional<std::string> got;
  SimTime when = -1;
  sim.spawn([](Simulation& s, Channel<std::string>& c, std::optional<std::string>& out,
               SimTime& t) -> Task<void> {
    out = co_await c.receive();
    t = s.now();
  }(sim, ch, got, when));
  sim.call_at(2.0, [&] { EXPECT_TRUE(ch.try_send("hello")); });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "hello");
  EXPECT_DOUBLE_EQ(when, 2.0);
}

TEST(Channel, CloseDrainsThenSignalsEnd) {
  Simulation sim;
  Channel<int> ch(sim, 4);
  EXPECT_TRUE(ch.try_send(7));
  ch.close();
  EXPECT_FALSE(ch.try_send(8));  // closed
  std::vector<std::optional<int>> got;
  sim.spawn([](Channel<int>& c, std::vector<std::optional<int>>& out) -> Task<void> {
    out.push_back(co_await c.receive());  // drains the 7
    out.push_back(co_await c.receive());  // nullopt: closed + empty
  }(ch, got));
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], std::optional<int>(7));
  EXPECT_EQ(got[1], std::nullopt);
}

TEST(Channel, SendOnClosedThrows) {
  Simulation sim;
  Channel<int> ch(sim, 1);
  ch.close();
  bool threw = false;
  sim.spawn([](Channel<int>& c, bool& flag) -> Task<void> {
    try {
      co_await c.send(1);
    } catch (const std::runtime_error&) {
      flag = true;
    }
  }(ch, threw));
  sim.run();
  EXPECT_TRUE(threw);
}

TEST(Channel, ZeroCapacityRejected) {
  Simulation sim;
  EXPECT_THROW(Channel<int>(sim, 0), std::invalid_argument);
}

TEST(WaitWithTimeout, EventFirstReturnsTrue) {
  Simulation sim;
  Event ev(sim);
  bool result = false;
  SimTime when = -1;
  sim.spawn([](Simulation& s, Event& e, bool& res, SimTime& t) -> Task<void> {
    res = co_await sim::wait_with_timeout(s, e, 5.0);
    t = s.now();
  }(sim, ev, result, when));
  sim.call_at(1.0, [&] { ev.set(); });
  sim.run();
  EXPECT_TRUE(result);
  EXPECT_DOUBLE_EQ(when, 1.0);
}

TEST(WaitWithTimeout, TimeoutFirstReturnsFalse) {
  Simulation sim;
  Event ev(sim);
  bool result = true;
  SimTime when = -1;
  sim.spawn([](Simulation& s, Event& e, bool& res, SimTime& t) -> Task<void> {
    res = co_await sim::wait_with_timeout(s, e, 2.0);
    t = s.now();
  }(sim, ev, result, when));
  sim.call_at(10.0, [&] { ev.set(); });  // too late
  sim.run();
  EXPECT_FALSE(result);
  EXPECT_DOUBLE_EQ(when, 2.0);
}

TEST(WaitWithTimeout, AlreadySetIsImmediateTrue) {
  Simulation sim;
  Event ev(sim);
  ev.set();
  bool result = false;
  sim.spawn([](Simulation& s, Event& e, bool& res) -> Task<void> {
    res = co_await sim::wait_with_timeout(s, e, 1.0);
  }(sim, ev, result));
  sim.run();
  EXPECT_TRUE(result);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

// --- disk fault injection ---

TEST(DiskFaults, SlowdownWindowStretchesServiceTime) {
  auto timed_read = [](double factor, SimTime from, SimTime until) {
    Simulation sim;
    hw::Disk d(sim, "d0", hw::DiskParams::paragon_era());
    if (factor > 0) d.inject_slowdown(factor, from, until);
    SimTime elapsed = -1;
    sim.spawn([](Simulation& s, hw::Disk& disk, SimTime& out) -> Task<void> {
      co_await disk.transfer(1000, 256 * 1024, false);
      out = s.now();
    }(sim, d, elapsed));
    sim.run();
    return elapsed;
  };
  const SimTime healthy = timed_read(0, 0, 0);
  const SimTime degraded = timed_read(4.0, 0.0, 100.0);
  EXPECT_NEAR(degraded, healthy * 4.0, healthy * 0.05);
  // Window in the past: no effect.
  EXPECT_DOUBLE_EQ(timed_read(4.0, 100.0, 200.0), healthy);
}

TEST(DiskFaults, OverlappingWindowsCompound) {
  Simulation sim;
  hw::Disk d(sim, "d0", hw::DiskParams::paragon_era());
  d.inject_slowdown(2.0, 0, 100);
  d.inject_slowdown(3.0, 0, 100);
  SimTime elapsed = -1;
  sim.spawn([](Simulation& s, hw::Disk& disk, SimTime& out) -> Task<void> {
    co_await disk.transfer(0, 64 * 1024, false);
    out = s.now();
  }(sim, d, elapsed));
  sim.run();
  Simulation sim2;
  hw::Disk d2(sim2, "d1", hw::DiskParams::paragon_era());
  SimTime base = -1;
  sim2.spawn([](Simulation& s, hw::Disk& disk, SimTime& out) -> Task<void> {
    co_await disk.transfer(0, 64 * 1024, false);
    out = s.now();
  }(sim2, d2, base));
  sim2.run();
  EXPECT_NEAR(elapsed, base * 6.0, base * 0.05);
  EXPECT_EQ(d.slowed_ops(), 1u);
}

TEST(DiskFaults, RejectsNonPositiveFactor) {
  Simulation sim;
  hw::Disk d(sim, "d0", hw::DiskParams::paragon_era());
  EXPECT_THROW(d.inject_slowdown(0.0, 0, 1), std::invalid_argument);
  EXPECT_THROW(d.inject_slowdown(-2.0, 0, 1), std::invalid_argument);
}

TEST(DiskFaults, DegradedIoNodeSlowsCollectiveButDataCorrect) {
  // One I/O node's RAID members run 8x slow: the collective read (which
  // completes only when every node's request is served) degrades, and the
  // bytes are still exactly right. This is the "prefetching benefits
  // should be equally distributed amongst the processors" stress case.
  auto run_one = [](bool degrade) {
    Simulation sim;
    hw::Machine machine(sim, hw::MachineConfig::paragon(4, 4));
    if (degrade) {
      auto& raid = machine.raid(2);
      for (std::size_t m = 0; m < raid.member_count(); ++m) {
        raid.member(m).inject_slowdown(8.0, 0.0, 1e9);
      }
    }
    pfs::PfsFileSystem fs(machine, pfs::PfsParams{});
    fs.create("f", fs.default_attrs());
    pfs::PfsClient client(fs, 0, 0, 1);
    auto data = ppfs::test::make_pattern(2, 0, 1024 * 1024);
    std::vector<std::byte> back(1024 * 1024);
    SimTime read_time = -1;
    ppfs::test::run_task(sim, [](Simulation& s, pfs::PfsClient& c,
                                 std::span<const std::byte> in, std::span<std::byte> out,
                                 SimTime& t) -> Task<void> {
      const int fd = co_await c.open("f", pfs::IoMode::kAsync);
      co_await c.write(fd, in);
      co_await c.seek(fd, 0);
      const SimTime t0 = s.now();
      co_await c.read(fd, out);
      t = s.now() - t0;
      c.close(fd);
    }(sim, client, data, back, read_time));
    EXPECT_TRUE(ppfs::test::check_pattern(back, 2, 0));
    return read_time;
  };
  const SimTime healthy = run_one(false);
  const SimTime degraded = run_one(true);
  EXPECT_GT(degraded, healthy * 2.0);  // straggler gates the collective
}

}  // namespace
}  // namespace ppfs
