// Quickstart: build a simulated Paragon, mount a PFS, write a file, read
// it back with prefetching enabled, and print what happened.
//
//   $ ./quickstart
//
// This walks the whole public API surface in ~60 lines of application
// code: Simulation, Machine, PfsFileSystem, PfsClient, PrefetchEngine.
#include <cstdio>
#include <vector>

#include "hw/machine.hpp"
#include "pfs/client.hpp"
#include "pfs/filesystem.hpp"
#include "prefetch/engine.hpp"
#include "sim/simulation.hpp"
#include "workload/generator.hpp"

using namespace ppfs;

namespace {

sim::Task<void> app(sim::Simulation& sim, pfs::PfsClient& client,
                    prefetch::PrefetchEngine& engine) {
  // Write 2 MB of patterned data through the full simulated stack.
  const int wfd = co_await client.open("demo", pfs::IoMode::kAsync);
  std::vector<std::byte> chunk(256 * 1024);
  for (int i = 0; i < 8; ++i) {
    workload::fill_pattern(/*tag=*/7, static_cast<sim::FileOffset>(i) * chunk.size(), chunk);
    co_await client.write(wfd, chunk);
  }
  client.close(wfd);
  std::printf("wrote 2MB at t=%.3fs (simulated)\n", sim.now());

  // Read it back, 128 KB at a time, with a compute phase between reads —
  // the prefetcher fills the gaps.
  const int fd = co_await client.open("demo", pfs::IoMode::kAsync);
  std::vector<std::byte> buf(128 * 1024);
  sim::SimTime in_read = 0;
  for (int i = 0; i < 16; ++i) {
    const sim::SimTime t0 = sim.now();
    const auto got = co_await client.read(fd, buf);
    in_read += sim.now() - t0;
    if (workload::find_pattern_mismatch(7, static_cast<sim::FileOffset>(i) * buf.size(),
                                        buf) != workload::kNoMismatch) {
      std::printf("DATA CORRUPTION at read %d\n", i);
    }
    (void)got;
    co_await sim.delay(0.02);  // pretend to compute on the data
  }
  client.close(fd);

  const auto& st = engine.stats();
  std::printf("read 2MB back: %.3fs total inside read() calls\n", in_read);
  std::printf("prefetch: %llu issued, %llu ready hits, %llu in-flight hits, %llu misses "
              "(hit ratio %.0f%%)\n",
              (unsigned long long)st.issued, (unsigned long long)st.hits_ready,
              (unsigned long long)st.hits_in_flight, (unsigned long long)st.misses,
              st.hit_ratio() * 100.0);
}

}  // namespace

int main() {
  sim::Simulation sim;
  // The paper's testbed: 8 compute + 8 I/O nodes, SCSI-8 RAID each.
  hw::Machine machine(sim, hw::MachineConfig::paragon(8, 8));
  pfs::PfsFileSystem fs(machine, pfs::PfsParams{});
  fs.create("demo", fs.default_attrs());

  pfs::PfsClient client(fs, /*compute_index=*/0, /*rank=*/0, /*nprocs=*/1);
  auto engine = prefetch::attach_prefetcher(client, prefetch::PrefetchConfig{});

  sim.spawn(app(sim, client, *engine));
  sim.run();
  std::printf("simulation drained at t=%.3fs, %zu live processes left\n", sim.now(),
              sim.live_processes());
  return 0;
}
