// The paper's motivating SPMD scenario: a parallel application sweeps a
// large out-of-core matrix stored row-blocked in a PFS file. Each
// iteration, every rank reads its next block of rows (M_RECORD), then
// computes on it. We run it with and without prefetching and report the
// observed read bandwidth and total runtime — the Figure 4 effect, in
// application form.
//
//   $ ./balanced_matrix [compute_ms_per_block]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "hw/machine.hpp"
#include "pfs/client.hpp"
#include "pfs/filesystem.hpp"
#include "prefetch/engine.hpp"
#include "sim/simulation.hpp"
#include "workload/generator.hpp"

using namespace ppfs;

namespace {

constexpr int kRanks = 8;
constexpr sim::ByteCount kRowBytes = 8 * 1024;        // one matrix row
constexpr sim::ByteCount kRowsPerBlock = 16;          // rows per read
constexpr sim::ByteCount kBlock = kRowBytes * kRowsPerBlock;  // 128 KB
constexpr int kIterations = 24;                        // blocks per rank

struct RunStats {
  sim::SimTime wall = 0;
  sim::SimTime in_read = 0;
  double checksum = 0;
};

sim::Task<void> worker(sim::Simulation& sim, pfs::PfsClient& c, double compute_s,
                       RunStats& out) {
  const int fd = co_await c.open("matrix", pfs::IoMode::kRecord);
  std::vector<std::byte> block(kBlock);
  const sim::SimTime t0 = sim.now();
  for (int it = 0; it < kIterations; ++it) {
    const sim::SimTime r0 = sim.now();
    co_await c.read(fd, block);
    out.in_read += sim.now() - r0;
    // "Compute": fold the block into a checksum, then burn the simulated
    // compute phase the paper models with inter-read delays.
    for (std::size_t i = 0; i < block.size(); i += 512) {
      out.checksum += static_cast<double>(static_cast<unsigned char>(block[i]));
    }
    co_await sim.delay(compute_s);
  }
  out.wall = sim.now() - t0;
  c.close(fd);
}

RunStats run_config(bool prefetch, double compute_s) {
  sim::Simulation sim;
  hw::Machine machine(sim, hw::MachineConfig::paragon(kRanks, 8));
  pfs::PfsFileSystem fs(machine, pfs::PfsParams{});
  fs.create("matrix", fs.default_attrs());

  std::vector<std::unique_ptr<pfs::PfsClient>> clients;
  std::vector<std::unique_ptr<prefetch::PrefetchEngine>> engines;
  for (int r = 0; r < kRanks; ++r) {
    clients.push_back(std::make_unique<pfs::PfsClient>(fs, r, r, kRanks));
    if (prefetch) {
      engines.push_back(prefetch::attach_prefetcher(*clients[r], prefetch::PrefetchConfig{}));
    }
  }

  // Load the matrix: kRanks * kIterations blocks.
  bool loaded = false;
  // ppfs-lint: allow(ref-across-await) referents are locals; sim.run() below blocks until done
  sim.spawn([](pfs::PfsClient& c, bool& done) -> sim::Task<void> {
    const int fd = co_await c.open("matrix", pfs::IoMode::kAsync);
    std::vector<std::byte> chunk(1024 * 1024);
    const sim::ByteCount total = kBlock * kRanks * kIterations;
    for (sim::ByteCount off = 0; off < total; off += chunk.size()) {
      workload::fill_pattern(3, off, chunk);
      co_await c.write(fd, chunk);
    }
    c.close(fd);
    done = true;
  }(*clients[0], loaded));
  sim.run();
  if (!loaded) std::abort();

  std::vector<RunStats> stats(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    sim.spawn(worker(sim, *clients[r], compute_s, stats[r]));
  }
  sim.run();

  RunStats agg;
  for (const auto& s : stats) {
    agg.wall = std::max(agg.wall, s.wall);
    agg.in_read = std::max(agg.in_read, s.in_read);
    agg.checksum += s.checksum;
  }
  return agg;
}

}  // namespace

int main(int argc, char** argv) {
  const double compute_ms = argc > 1 ? std::atof(argv[1]) : 30.0;
  const double compute_s = compute_ms / 1000.0;
  const double total_mb =
      static_cast<double>(kBlock) * kRanks * kIterations / 1.0e6;

  std::printf("out-of-core matrix sweep: %d ranks x %d blocks x 128KB (%.0f MB), "
              "%.0f ms compute per block\n\n",
              kRanks, kIterations, total_mb, compute_ms);

  const RunStats off = run_config(false, compute_s);
  const RunStats on = run_config(true, compute_s);
  if (off.checksum != on.checksum) {
    std::printf("CHECKSUM MISMATCH: prefetching changed the data!\n");
    return 1;
  }

  std::printf("%-18s %12s %16s %20s\n", "config", "runtime", "time in read()",
              "observed read B/W");
  std::printf("%-18s %10.2fs %14.2fs %17.1f MB/s\n", "no prefetch", off.wall, off.in_read,
              total_mb / off.in_read);
  std::printf("%-18s %10.2fs %14.2fs %17.1f MB/s\n", "prefetch", on.wall, on.in_read,
              total_mb / on.in_read);
  std::printf("\nspeedup: %.2fx runtime, %.2fx observed read bandwidth\n",
              off.wall / on.wall, off.in_read / on.in_read);
  return 0;
}
