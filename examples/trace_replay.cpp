// Replay an application I/O trace against different PFS configurations.
//
//   $ ./trace_replay                 # demo: generate, save, replay a trace
//   $ ./trace_replay mytrace.txt    # replay a trace file
//
// Demonstrates the trace workflow a downstream user follows: capture a
// workload once (or synthesize it), then ask "what would prefetching /
// SCSI-16 / a different predictor have done for this exact access stream?"
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "workload/report.hpp"
#include "workload/trace.hpp"

using namespace ppfs;
using namespace ppfs::workload;

namespace {

void report(const char* label, const TraceReplayResult& r) {
  std::printf("%-34s %8.2f MB/s observed  (%llu reads, %s, wall %s)",
              label, r.observed_read_bw_mbs, (unsigned long long)r.reads,
              fmt_bytes(r.total_bytes).c_str(), fmt_time(r.wall_elapsed).c_str());
  if (r.prefetch.issued) {
    std::printf("  [pf hit %.0f%%]", r.prefetch.hit_ratio() * 100);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  AccessTrace trace;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      trace = AccessTrace::parse(text.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trace parse error: %s\n", e.what());
      return 1;
    }
    std::printf("loaded trace: %zu ops, %d ranks, mode %s\n\n", trace.ops.size(),
                trace.ranks, std::string(pfs::to_string(trace.mode)).c_str());
  } else {
    // Synthesize the paper's balanced M_RECORD workload as a trace and
    // show the round trip through the text format.
    trace = AccessTrace::sequential(pfs::IoMode::kRecord, 8, 16, 64 * 1024, 0.03);
    const std::string path = "demo_trace.txt";
    std::ofstream(path) << trace.serialize();
    std::printf("synthesized a balanced M_RECORD trace (%zu ops) -> %s\n\n",
                trace.ops.size(), path.c_str());
  }

  MachineSpec base;
  report("baseline (SCSI-8, no prefetch):", replay_trace(base, trace, false));
  report("with prefetching:", replay_trace(base, trace, true));

  prefetch::PrefetchConfig deep;
  deep.depth = 4;
  report("prefetch depth 4:", replay_trace(base, trace, true, deep));

  MachineSpec fast = base;
  fast.raid = hw::RaidParams::scsi16();
  report("SCSI-16, no prefetch:", replay_trace(fast, trace, false));
  report("SCSI-16 + prefetching:", replay_trace(fast, trace, true));
  return 0;
}
