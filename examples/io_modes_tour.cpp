// A tour of the six PFS I/O modes: four application processes read the
// same shared file under each mode, and we print which bytes each rank
// got and how long the collective took — making the semantic differences
// (and their costs) visible.
//
//   $ ./io_modes_tour
#include <cstdio>
#include <memory>
#include <vector>

#include "hw/machine.hpp"
#include "pfs/client.hpp"
#include "pfs/filesystem.hpp"
#include "sim/simulation.hpp"
#include "sim/when_all.hpp"
#include "workload/generator.hpp"

using namespace ppfs;

namespace {

constexpr int kRanks = 4;
constexpr sim::ByteCount kReq = 64 * 1024;

struct RankLog {
  std::vector<sim::FileOffset> offsets;  // where each read landed
};

sim::Task<void> populate(pfs::PfsClient& c) {
  const int fd = co_await c.open("tour", pfs::IoMode::kAsync);
  std::vector<std::byte> data(1024 * 1024);
  workload::fill_pattern(1, 0, data);
  co_await c.write(fd, data);
  c.close(fd);
}

sim::Task<void> rank_proc(sim::Simulation&, pfs::PfsClient& c, pfs::IoMode mode,
                          RankLog& log) {
  const int fd = co_await c.open("tour", mode);
  std::vector<std::byte> buf(kReq);
  for (int round = 0; round < 2; ++round) {
    const sim::FileOffset before = c.tell(fd);
    const auto got = co_await c.read(fd, buf);
    // Identify what we actually received by matching it to the pattern.
    sim::FileOffset landed = before;
    for (sim::FileOffset probe = 0; probe < 1024 * 1024; probe += kReq) {
      if (workload::find_pattern_mismatch(1, probe,
                                          std::span<const std::byte>(buf).subspan(0, got)) ==
          workload::kNoMismatch) {
        landed = probe;
        break;
      }
    }
    log.offsets.push_back(landed);
  }
  c.close(fd);
}

}  // namespace

int main() {
  for (auto mode : pfs::all_io_modes()) {
    sim::Simulation sim;
    hw::Machine machine(sim, hw::MachineConfig::paragon(kRanks, 4));
    pfs::PfsFileSystem fs(machine, pfs::PfsParams{});
    fs.create("tour", fs.default_attrs());

    std::vector<std::unique_ptr<pfs::PfsClient>> clients;
    for (int r = 0; r < kRanks; ++r) {
      clients.push_back(std::make_unique<pfs::PfsClient>(fs, r, r, kRanks));
    }

    // Load the file, then run the collective.
    bool loaded = false;
    // ppfs-lint: allow(ref-across-await) referents are locals; sim.run() below blocks until done
    sim.spawn([](pfs::PfsClient& c, bool& done) -> sim::Task<void> {
      co_await populate(c);
      done = true;
    }(*clients[0], loaded));
    sim.run();
    if (!loaded) return 1;

    const sim::SimTime t0 = sim.now();
    std::vector<RankLog> logs(kRanks);
    for (int r = 0; r < kRanks; ++r) {
      sim.spawn(rank_proc(sim, *clients[r], mode, logs[r]));
    }
    sim.run();

    std::printf("%-9s (mode %d): collective of 2 rounds took %7.1f ms\n",
                std::string(pfs::to_string(mode)).c_str(), static_cast<int>(mode),
                (sim.now() - t0) * 1000.0);
    for (int r = 0; r < kRanks; ++r) {
      std::printf("  rank %d read 64KB records at offsets:", r);
      for (auto off : logs[r].offsets) std::printf(" %4lluKB", (unsigned long long)(off / 1024));
      std::printf("\n");
    }
  }
  std::printf("\nNote the patterns: M_RECORD/M_SYNC assign rank-ordered disjoint records;\n"
              "M_GLOBAL gives every rank the same record; M_LOG hands out records\n"
              "first-come-first-served; M_UNIX/M_ASYNC follow each rank's own pointer.\n");
  return 0;
}
