// Tuning the prefetch engine: sweep predictor kind and depth on two access
// patterns (record-interleaved and strided) and print hit ratios + wasted
// prefetches — how a downstream user would pick a configuration.
//
//   $ ./prefetch_tuning
#include <cstdio>
#include <memory>
#include <vector>

#include "hw/machine.hpp"
#include "pfs/client.hpp"
#include "pfs/filesystem.hpp"
#include "prefetch/engine.hpp"
#include "sim/simulation.hpp"
#include "workload/generator.hpp"

using namespace ppfs;

namespace {

constexpr sim::ByteCount kReq = 64 * 1024;
constexpr sim::ByteCount kFile = 8 * 1024 * 1024;

struct Outcome {
  prefetch::PrefetchStats stats;
  sim::SimTime in_read = 0;
};

/// Single-rank run; `stride` = 0 reads sequentially, otherwise the app
/// seeks forward by `stride` bytes between reads.
Outcome run_once(prefetch::PredictorKind kind, std::size_t depth, sim::ByteCount stride) {
  sim::Simulation sim;
  hw::Machine machine(sim, hw::MachineConfig::paragon(1, 8));
  pfs::PfsFileSystem fs(machine, pfs::PfsParams{});
  fs.create("data", fs.default_attrs());

  pfs::PfsClient client(fs, 0, 0, 1);
  prefetch::PrefetchConfig cfg;
  cfg.predictor = kind;
  cfg.depth = depth;
  auto engine = prefetch::attach_prefetcher(client, cfg);

  Outcome out;
  bool done = false;
  // ppfs-lint: allow(ref-across-await) referents are locals; sim.run() below blocks until done
  sim.spawn([](sim::Simulation& s, pfs::PfsClient& c, sim::ByteCount strd, Outcome& o,
               // ppfs-lint: allow(ref-across-await) same lifetime argument as the line above
               bool& flag) -> sim::Task<void> {
    // Populate.
    int fd = co_await c.open("data", pfs::IoMode::kAsync);
    std::vector<std::byte> chunk(1024 * 1024);
    for (sim::ByteCount off = 0; off < kFile; off += chunk.size()) {
      workload::fill_pattern(5, off, chunk);
      co_await c.write(fd, chunk);
    }
    c.close(fd);

    // Read with the requested stride and a compute phase per block.
    fd = co_await c.open("data", pfs::IoMode::kAsync);
    std::vector<std::byte> buf(kReq);
    sim::FileOffset pos = 0;
    while (pos + kReq <= kFile) {
      co_await c.seek(fd, pos);
      const sim::SimTime t0 = s.now();
      co_await c.read(fd, buf);
      o.in_read += s.now() - t0;
      co_await s.delay(0.03);
      pos += (strd == 0 ? kReq : strd);
    }
    c.close(fd);
    flag = true;
  }(sim, client, stride, out, done));
  sim.run();
  if (!done) std::abort();
  out.stats = engine->stats();
  return out;
}

void sweep(const char* label, sim::ByteCount stride) {
  std::printf("\n=== %s ===\n", label);
  std::printf("%-12s %5s %8s %8s %8s %8s %12s\n", "predictor", "depth", "hits", "misses",
              "wasted", "hit%", "read time");
  for (auto kind : {prefetch::PredictorKind::kModeAware, prefetch::PredictorKind::kSequential,
                    prefetch::PredictorKind::kStrided}) {
    for (std::size_t depth : {1u, 2u, 4u}) {
      const auto o = run_once(kind, depth, stride);
      const auto& st = o.stats;
      std::printf("%-12s %5zu %8llu %8llu %8llu %7.1f%% %11.3fs\n",
                  prefetch::predictor_name(kind), depth,
                  (unsigned long long)(st.hits_ready + st.hits_in_flight),
                  (unsigned long long)st.misses, (unsigned long long)st.wasted,
                  st.hit_ratio() * 100.0, o.in_read);
    }
  }
}

}  // namespace

int main() {
  std::printf("prefetch tuning on a single rank, 64KB requests, 8MB file, 30ms compute\n");
  sweep("sequential scan (stride = request size)", 0);
  sweep("strided scan (stride = 4x request size)", 4 * kReq);
  std::printf("\nTakeaway: the mode-aware (prototype) rule handles the sequential scan;\n"
              "only the strided predictor keeps hitting when the app skips ahead.\n");
  return 0;
}
