// Checkpoint/restart: the write-side mirror of the paper's read story.
//
// An SPMD application computes in steps and periodically checkpoints its
// state to a PFS file in M_RECORD mode. Writing synchronously stalls the
// computation for the full I/O time; issuing the checkpoint with iwrite
// (the ART machinery the prefetcher also rides) overlaps it with the next
// compute step. On restart, the state is read back with prefetching.
//
//   $ ./checkpoint
#include <cstdio>
#include <memory>
#include <vector>

#include "hw/machine.hpp"
#include "pfs/client.hpp"
#include "pfs/filesystem.hpp"
#include "prefetch/engine.hpp"
#include "sim/simulation.hpp"
#include "sim/when_all.hpp"
#include "workload/generator.hpp"

using namespace ppfs;

namespace {

constexpr int kRanks = 8;
constexpr sim::ByteCount kStateBytes = 256 * 1024;  // per-rank state
constexpr int kSteps = 10;
constexpr double kComputePerStep = 0.08;

sim::Task<void> worker(sim::Simulation& sim, pfs::PfsClient& c, bool async_ckpt,
                       sim::SimTime& runtime) {
  const int fd = co_await c.open("ckpt", pfs::IoMode::kRecord);
  // Double-buffered state: while checkpoint k is in flight, step k+1
  // computes into the other buffer.
  std::vector<std::byte> state_a(kStateBytes), state_b(kStateBytes);
  pfs::AsyncHandle pending;
  const sim::SimTime t0 = sim.now();
  for (int step = 0; step < kSteps; ++step) {
    auto& state = (step % 2 == 0) ? state_a : state_b;
    workload::fill_pattern(step, 0, state);  // "compute" produces new state
    co_await sim.delay(kComputePerStep);
    if (async_ckpt) {
      if (pending) co_await c.iowait(pending);  // previous ckpt must land first
      pending = co_await c.iwrite(fd, state);
    } else {
      co_await c.write(fd, state);
    }
  }
  if (pending) co_await c.iowait(pending);
  runtime = sim.now() - t0;
  c.close(fd);
}

double run_phase(bool async_ckpt) {
  sim::Simulation sim;
  hw::Machine machine(sim, hw::MachineConfig::paragon(kRanks, 8));
  pfs::PfsFileSystem fs(machine, pfs::PfsParams{});
  fs.create("ckpt", fs.default_attrs());
  std::vector<std::unique_ptr<pfs::PfsClient>> clients;
  for (int r = 0; r < kRanks; ++r) {
    clients.push_back(std::make_unique<pfs::PfsClient>(fs, r, r, kRanks));
  }
  std::vector<sim::SimTime> runtimes(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    sim.spawn(worker(sim, *clients[r], async_ckpt, runtimes[r]));
  }
  sim.run();
  double worst = 0;
  for (auto t : runtimes) worst = std::max(worst, t);
  return worst;
}

double run_restart() {
  // Restart: read the final checkpoint back with prefetching.
  sim::Simulation sim;
  hw::Machine machine(sim, hw::MachineConfig::paragon(kRanks, 8));
  pfs::PfsFileSystem fs(machine, pfs::PfsParams{});
  fs.create("ckpt", fs.default_attrs());
  std::vector<std::unique_ptr<pfs::PfsClient>> clients;
  std::vector<std::unique_ptr<prefetch::PrefetchEngine>> engines;
  for (int r = 0; r < kRanks; ++r) {
    clients.push_back(std::make_unique<pfs::PfsClient>(fs, r, r, kRanks));
    engines.push_back(prefetch::attach_prefetcher(*clients[r], prefetch::PrefetchConfig{}));
  }
  // Write the checkpoint series, then replay a staged restore (read +
  // per-block rebuild work, the balanced pattern).
  std::vector<sim::SimTime> runtimes(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    // ppfs-lint: allow(ref-across-await) referents are locals; sim.run() below blocks until done
    sim.spawn([](sim::Simulation& s, pfs::PfsClient& c, sim::SimTime& rt) -> sim::Task<void> {
      int fd = co_await c.open("ckpt", pfs::IoMode::kRecord);
      std::vector<std::byte> state(kStateBytes);
      for (int step = 0; step < kSteps; ++step) {
        workload::fill_pattern(step, 0, state);
        co_await c.write(fd, state);
      }
      co_await c.seek(fd, 0);
      const sim::SimTime t0 = s.now();
      for (int step = 0; step < kSteps; ++step) {
        co_await c.read(fd, state);
        co_await s.delay(0.03);  // re-derive in-memory structures
      }
      rt = s.now() - t0;
      c.close(fd);
    }(sim, *clients[r], runtimes[r]));
  }
  sim.run();
  double worst = 0;
  for (auto t : runtimes) worst = std::max(worst, t);
  return worst;
}

}  // namespace

int main() {
  std::printf("checkpointing %d ranks x %d steps x %s state per step\n\n", kRanks, kSteps,
              "256KB");
  const double sync_t = run_phase(false);
  const double async_t = run_phase(true);
  std::printf("synchronous checkpoints: %6.2fs  (compute stalls for every write)\n", sync_t);
  std::printf("async (iwrite) ckpts:    %6.2fs  (%.2fx faster — I/O hides under compute)\n",
              async_t, sync_t / async_t);
  const double restart_t = run_restart();
  std::printf("staged restart w/ prefetch: %5.2fs for the read+rebuild phase\n", restart_t);
  return 0;
}
