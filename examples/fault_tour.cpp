// Fault tour: what an I/O-node crash looks like from the application.
//
// A balanced M_RECORD read workload (prefetch hides each read under the
// per-step compute) is running across 8 ranks when I/O node 1 crashes and
// restarts 200ms later. The RPC reliability envelope parks rank 1 on the
// node's restart event instead of failing the read; the prefetch engine
// sheds its speculative buffers and pauses until the storm passes. The
// tour prints the aggregate read bandwidth before, during, and after the
// outage, then the recovery counters that explain the dip.
//
//   $ ./fault_tour
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "hw/machine.hpp"
#include "pfs/client.hpp"
#include "pfs/filesystem.hpp"
#include "prefetch/engine.hpp"
#include "sim/event.hpp"
#include "sim/simulation.hpp"
#include "workload/generator.hpp"

using namespace ppfs;

namespace {

constexpr int kRanks = 8;
constexpr sim::ByteCount kRecord = 64 * 1024;
constexpr int kStepsPerRank = 40;
constexpr double kComputePerStep = 0.01;

// The crash window, relative to the start of the read phase.
constexpr double kCrashAt = 0.15;
constexpr double kOutage = 0.20;

struct ReadSample {
  sim::SimTime done;     // completion time, relative to read-phase start
  sim::ByteCount bytes;
};

sim::Task<void> worker(sim::Simulation& sim, pfs::PfsClient& c, int rank,
                       sim::Barrier& ready, fault::FaultInjector& injector,
                       const fault::FaultPlan& plan, sim::SimTime& t0,
                       std::vector<ReadSample>& samples) {
  const int fd = co_await c.open("tour", pfs::IoMode::kRecord);
  std::vector<std::byte> buf(kRecord);
  for (int step = 0; step < kStepsPerRank; ++step) {
    workload::fill_pattern(step * kRanks + rank, 0, buf);
    co_await c.write(fd, buf);
  }
  co_await c.seek(fd, 0);
  // All ranks start the read phase together; rank 0 arms the crash
  // relative to that instant so the phase boundaries are known.
  co_await ready.arrive_and_wait();
  if (rank == 0) {
    t0 = sim.now();
    injector.arm(plan, t0);
  }
  for (int step = 0; step < kStepsPerRank; ++step) {
    const auto got = co_await c.read(fd, buf);
    samples.push_back({sim.now() - t0, got});
    co_await sim.delay(kComputePerStep);  // consume the record
  }
  c.close(fd);
}

double window_bw_mbs(const std::vector<ReadSample>& samples, sim::SimTime from,
                     sim::SimTime until) {
  sim::ByteCount bytes = 0;
  for (const auto& s : samples) {
    if (s.done >= from && s.done < until) bytes += s.bytes;
  }
  return static_cast<double>(bytes) / 1e6 / (until - from);
}

}  // namespace

int main() {
  sim::Simulation sim;
  hw::Machine machine(sim, hw::MachineConfig::paragon(kRanks, 8));
  pfs::PfsFileSystem fs(machine, pfs::PfsParams{});
  fs.create("tour", fs.default_attrs());
  fault::FaultInjector injector(machine, fs);
  const auto plan =
      fault::parse_plan("crash:io=1,at=" + std::to_string(kCrashAt) +
                        ",outage=" + std::to_string(kOutage));

  std::vector<std::unique_ptr<pfs::PfsClient>> clients;
  std::vector<std::unique_ptr<prefetch::PrefetchEngine>> engines;
  prefetch::PrefetchConfig pcfg;
  pcfg.depth = 2;  // one buffer stays resident between reads — visible shedding
  for (int r = 0; r < kRanks; ++r) {
    clients.push_back(std::make_unique<pfs::PfsClient>(fs, r, r, kRanks));
    engines.push_back(prefetch::attach_prefetcher(*clients[r], pcfg));
  }

  sim::Barrier ready(sim, kRanks);
  sim::SimTime t0 = 0;
  std::vector<std::vector<ReadSample>> samples(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    sim.spawn(worker(sim, *clients[r], r, ready, injector, plan, t0, samples[r]));
  }
  sim.run();

  std::vector<ReadSample> all;
  sim::SimTime t_end = 0;
  for (const auto& per_rank : samples) {
    for (const auto& s : per_rank) {
      all.push_back(s);
      t_end = std::max(t_end, s.done);
    }
  }

  std::printf("fault tour: %d ranks x %d x 64KB records, %.0fms compute per record\n",
              kRanks, kStepsPerRank, kComputePerStep * 1e3);
  std::printf("plan:       %s\n\n", plan.summary().c_str());
  std::printf("aggregate read bandwidth by phase (read-phase-relative time):\n");
  std::printf("  before the crash  [0, %.2fs):      %7.2f MB/s\n", kCrashAt,
              window_bw_mbs(all, 0, kCrashAt));
  std::printf("  during the outage [%.2f, %.2fs):  %7.2f MB/s\n", kCrashAt,
              kCrashAt + kOutage, window_bw_mbs(all, kCrashAt, kCrashAt + kOutage));
  std::printf("  after the restart [%.2f, %.2fs):  %7.2f MB/s\n\n", kCrashAt + kOutage,
              t_end, window_bw_mbs(all, kCrashAt + kOutage, t_end));

  pfs::RpcStats rpc;
  std::uint64_t shed = 0, pauses = 0;
  for (int r = 0; r < kRanks; ++r) {
    const auto& s = clients[r]->rpc_stats();
    rpc.retries += s.retries;
    rpc.down_waits += s.down_waits;
    rpc.retried_ok += s.retried_ok;
    rpc.recovery_wait_time += s.recovery_wait_time;
    rpc.backoff_time += s.backoff_time;
    shed += engines[r]->stats().shed;
    pauses += engines[r]->stats().fault_pauses;
  }
  std::printf("recovery:   down-waits=%llu retries=%llu healed-attempts=%llu "
              "recovery-wait=%.3fs backoff=%.3fs\n",
              (unsigned long long)rpc.down_waits, (unsigned long long)rpc.retries,
              (unsigned long long)rpc.retried_ok, rpc.recovery_wait_time, rpc.backoff_time);
  std::printf("prefetch:   shed=%llu buffer(s), %llu engine pause(s) — re-armed after "
              "%zu quiet reads\n",
              (unsigned long long)shed, (unsigned long long)pauses,
              pcfg.fault_resume_reads);
  std::printf("\nno read failed: the envelope parked rank 1 on the restart event and "
              "reissued.\n");
  return 0;
}
