// Machine: the assembled Paragon — mesh + nodes + per-I/O-node RAID arrays.
//
// Node placement follows the Paragon's physical organization: compute nodes
// fill the mesh from one side, I/O nodes from the other, so compute<->I/O
// traffic crosses the mesh (and contends) as it did on the real machine.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "hw/mesh.hpp"
#include "hw/node.hpp"
#include "hw/raid.hpp"
#include "sim/shard.hpp"
#include "sim/simulation.hpp"
#include "sim/trace.hpp"

namespace ppfs::hw {

struct MachineConfig {
  MeshConfig mesh;
  CpuParams compute_cpu;
  CpuParams io_cpu;
  RaidParams raid = RaidParams::scsi8();
  std::vector<NodeId> compute_nodes;
  std::vector<NodeId> io_nodes;

  /// The paper's testbed: `ncompute` compute nodes and `nio` I/O nodes
  /// (default 8+8 on a 4x4 mesh), one SCSI-8 RAID per I/O node.
  static MachineConfig paragon(int ncompute = 8, int nio = 8,
                               RaidParams raid_params = RaidParams::scsi8());

  /// Production-scale variant: same compute-from-the-bottom /
  /// I/O-from-the-top placement, but on a near-square mesh (width ~
  /// sqrt(total)) instead of paragon()'s fixed width-4 column. At 1024x256
  /// a width-4 mesh would be 4x320 with ~300-hop worst-case routes; the
  /// square mesh keeps route lengths O(sqrt(n)), like any real large
  /// machine. paragon() is untouched so existing digests stay bit-identical.
  static MachineConfig paragon_scaled(int ncompute, int nio,
                                      RaidParams raid_params = RaidParams::scsi8());
};

class Machine {
 public:
  Machine(sim::Simulation& s, MachineConfig cfg);
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  sim::Simulation& simulation() noexcept { return sim_; }
  MeshNetwork& mesh() noexcept { return *mesh_; }
  sim::Tracer& tracer() noexcept { return tracer_; }
  const MachineConfig& config() const noexcept { return cfg_; }

  int compute_node_count() const { return static_cast<int>(cfg_.compute_nodes.size()); }
  int io_node_count() const { return static_cast<int>(cfg_.io_nodes.size()); }

  /// Mesh id of the i-th compute / I/O node.
  NodeId compute_node(int i) const { return cfg_.compute_nodes.at(i); }
  NodeId io_node(int i) const { return cfg_.io_nodes.at(i); }

  /// CPU of an arbitrary mesh node.
  NodeCpu& cpu(NodeId node) { return cpus_.at(node); }
  /// RAID array of the i-th I/O node.
  RaidArray& raid(int io_index) { return raids_.at(io_index); }

  /// Reverse lookup: which I/O index owns this mesh node (-1 if none).
  /// O(1): reads the node-indexed shard table, not a scan of io_nodes.
  int io_index_of(NodeId node) const {
    if (node < 0 || node >= static_cast<NodeId>(io_index_by_node_.size())) return -1;
    return io_index_by_node_[static_cast<std::size_t>(node)];
  }

  /// Footprint of the per-node state arenas (CPUs + RAID arrays + the
  /// mesh's link arena) — the machine's share of the scale report.
  std::size_t state_memory_bytes() const noexcept {
    return cpus_.memory_bytes() + raids_.memory_bytes() + mesh_->links_memory_bytes();
  }

 private:
  sim::Simulation& sim_;
  MachineConfig cfg_;
  sim::Tracer tracer_;
  std::unique_ptr<MeshNetwork> mesh_;
  sim::ShardArena<NodeCpu> cpus_;      // one per mesh node, indexed by node id
  sim::ShardArena<RaidArray> raids_;   // one per I/O node, indexed by io index
  std::vector<int> io_index_by_node_;  // mesh node id -> io index (-1 if none)
};

}  // namespace ppfs::hw
