#include "hw/machine.hpp"

#include <algorithm>

namespace ppfs::hw {

MachineConfig MachineConfig::paragon(int ncompute, int nio, RaidParams raid_params) {
  if (ncompute <= 0 || nio <= 0) {
    throw std::invalid_argument("MachineConfig::paragon: need >=1 compute and I/O node");
  }
  MachineConfig cfg;
  cfg.raid = raid_params;
  const int total = ncompute + nio;
  cfg.mesh.width = 4;
  cfg.mesh.height = (total + cfg.mesh.width - 1) / cfg.mesh.width;
  // Compute nodes fill from mesh id 0 upward; I/O nodes from the top end
  // downward, mirroring the Paragon's partitioned backplane.
  for (int i = 0; i < ncompute; ++i) cfg.compute_nodes.push_back(i);
  for (int i = 0; i < nio; ++i) cfg.io_nodes.push_back(cfg.mesh.node_count() - nio + i);
  return cfg;
}

Machine::Machine(sim::Simulation& s, MachineConfig cfg) : sim_(s), cfg_(std::move(cfg)) {
  mesh_ = std::make_unique<MeshNetwork>(s, cfg_.mesh, &tracer_);
  cpus_.reserve(cfg_.mesh.node_count());
  for (int n = 0; n < cfg_.mesh.node_count(); ++n) {
    const bool is_io =
        std::find(cfg_.io_nodes.begin(), cfg_.io_nodes.end(), n) != cfg_.io_nodes.end();
    cpus_.push_back(std::make_unique<NodeCpu>(
        s, (is_io ? "io-cpu" : "cpu") + std::to_string(n),
        is_io ? cfg_.io_cpu : cfg_.compute_cpu));
  }
  raids_.reserve(cfg_.io_nodes.size());
  for (std::size_t i = 0; i < cfg_.io_nodes.size(); ++i) {
    raids_.push_back(
        std::make_unique<RaidArray>(s, "raid" + std::to_string(i), cfg_.raid, &tracer_));
  }
  for (NodeId n : cfg_.compute_nodes) mesh_->route(n, n);  // validates ids
  for (NodeId n : cfg_.io_nodes) mesh_->route(n, n);
}

int Machine::io_index_of(NodeId node) const {
  for (std::size_t i = 0; i < cfg_.io_nodes.size(); ++i) {
    if (cfg_.io_nodes[i] == node) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace ppfs::hw
