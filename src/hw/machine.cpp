#include "hw/machine.hpp"

#include <algorithm>

namespace ppfs::hw {

MachineConfig MachineConfig::paragon(int ncompute, int nio, RaidParams raid_params) {
  if (ncompute <= 0 || nio <= 0) {
    throw std::invalid_argument("MachineConfig::paragon: need >=1 compute and I/O node");
  }
  MachineConfig cfg;
  cfg.raid = raid_params;
  const int total = ncompute + nio;
  cfg.mesh.width = 4;
  cfg.mesh.height = (total + cfg.mesh.width - 1) / cfg.mesh.width;
  // Compute nodes fill from mesh id 0 upward; I/O nodes from the top end
  // downward, mirroring the Paragon's partitioned backplane.
  for (int i = 0; i < ncompute; ++i) cfg.compute_nodes.push_back(i);
  for (int i = 0; i < nio; ++i) cfg.io_nodes.push_back(cfg.mesh.node_count() - nio + i);
  return cfg;
}

MachineConfig MachineConfig::paragon_scaled(int ncompute, int nio, RaidParams raid_params) {
  if (ncompute <= 0 || nio <= 0) {
    throw std::invalid_argument("MachineConfig::paragon_scaled: need >=1 compute and I/O node");
  }
  MachineConfig cfg;
  cfg.raid = raid_params;
  const int total = ncompute + nio;
  int width = 4;
  while (width * width < total) ++width;  // near-square: width = ceil(sqrt(total))
  cfg.mesh.width = width;
  cfg.mesh.height = (total + width - 1) / width;
  for (int i = 0; i < ncompute; ++i) cfg.compute_nodes.push_back(i);
  for (int i = 0; i < nio; ++i) cfg.io_nodes.push_back(cfg.mesh.node_count() - nio + i);
  return cfg;
}

Machine::Machine(sim::Simulation& s, MachineConfig cfg) : sim_(s), cfg_(std::move(cfg)) {
  mesh_ = std::make_unique<MeshNetwork>(s, cfg_.mesh, &tracer_);
  // Per-node state lives in node-id-indexed arenas: one contiguous block
  // per entity kind instead of a heap allocation per node (see
  // sim/shard.hpp). Construction order is node id order, exactly as the
  // unique_ptr vectors it replaces, so digests are unchanged.
  io_index_by_node_.assign(static_cast<std::size_t>(cfg_.mesh.node_count()), -1);
  for (std::size_t i = 0; i < cfg_.io_nodes.size(); ++i) {
    const NodeId n = cfg_.io_nodes[i];
    if (n < 0 || n >= cfg_.mesh.node_count()) {
      throw std::out_of_range("Machine: I/O node id outside the mesh");
    }
    io_index_by_node_[static_cast<std::size_t>(n)] = static_cast<int>(i);
  }
  cpus_.reserve(static_cast<std::size_t>(cfg_.mesh.node_count()));
  for (int n = 0; n < cfg_.mesh.node_count(); ++n) {
    const bool is_io = io_index_by_node_[static_cast<std::size_t>(n)] >= 0;
    cpus_.emplace_back(s, (is_io ? "io-cpu" : "cpu") + std::to_string(n),
                       is_io ? cfg_.io_cpu : cfg_.compute_cpu);
  }
  raids_.reserve(cfg_.io_nodes.size());
  for (std::size_t i = 0; i < cfg_.io_nodes.size(); ++i) {
    raids_.emplace_back(s, "raid" + std::to_string(i), cfg_.raid, &tracer_);
  }
  for (NodeId n : cfg_.compute_nodes) mesh_->route(n, n);  // validates ids
  for (NodeId n : cfg_.io_nodes) mesh_->route(n, n);
}

}  // namespace ppfs::hw
