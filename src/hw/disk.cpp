#include "hw/disk.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "fault/error.hpp"
#include "trace/record.hpp"
#include "trace/sink.hpp"

namespace ppfs::hw {

double DiskParams::seek_time_s(std::uint64_t cylinder_distance) const {
  if (cylinder_distance == 0) return 0.0;
  const double d = static_cast<double>(cylinder_distance);
  // Short seeks are dominated by acceleration (sqrt regime); long seeks by
  // constant-velocity travel (linear regime). Take the max so the curve is
  // monotone without a fitted crossover point.
  const double short_seek = seek_base_s + seek_sqrt_coeff_s * std::sqrt(d);
  const double long_seek = seek_base_s + seek_linear_coeff_s * d;
  return std::max(short_seek, long_seek);
}

DiskParams DiskParams::paragon_era() {
  return DiskParams{};  // the defaults are the Paragon-era drive
}

Disk::Disk(sim::Simulation& s, std::string name, DiskParams params, sim::Tracer* tracer)
    : sim_(s), name_(std::move(name)), params_(params), channel_(s, 1), tracer_(tracer) {}

double Disk::rotational_wait(std::uint64_t lba, SimTime at) const {
  const double period = params_.rotation_period_s();
  // Platter angle as a fraction of a revolution, derived from wall time.
  const double current_angle = std::fmod(at, period) / period;
  const double target_angle =
      static_cast<double>(lba % params_.sectors_per_track) / params_.sectors_per_track;
  double wait_frac = target_angle - current_angle;
  if (wait_frac < 0) wait_frac += 1.0;
  return wait_frac * period;
}

SimTime Disk::estimate_service_time(std::uint64_t lba, ByteCount bytes) const {
  SimTime t = params_.controller_overhead_s;
  if (lba != next_sequential_lba_) {
    const std::uint64_t cyl = lba_to_cylinder(lba);
    const std::uint64_t dist = cyl > head_cylinder_ ? cyl - head_cylinder_ : head_cylinder_ - cyl;
    t += params_.seek_time_s(dist);
    t += rotational_wait(lba, sim_.now() + t);
  }
  t += static_cast<double>(bytes) / params_.media_rate_bytes_per_s();
  return t;
}

sim::Task<void> Disk::transfer(std::uint64_t lba, ByteCount bytes, bool write) {
  const std::uint64_t sectors =
      (bytes + params_.sector_bytes - 1) / params_.sector_bytes;
  if (lba + sectors > params_.total_sectors()) {
    throw std::out_of_range("Disk::transfer: access past end of medium on " + name_);
  }

  if (params_.scheduler == DiskSched::kElevator) {
    // Park in the elevator; the dispatcher admits us in cylinder order.
    const std::uint64_t id = next_request_id_++;
    PendingRequest& req = pending_[id];
    req.grant = std::make_unique<sim::Event>(sim_);
    req.done = std::make_unique<sim::Event>(sim_);
    equeue_.push(id, lba_to_cylinder(lba));
    if (!dispatcher_running_) {
      dispatcher_running_ = true;
      sim_.spawn(elevator_dispatch());
    }
    co_await req.grant->wait();
    try {
      co_await service(lba, bytes, write, sectors);
    } catch (...) {
      // The dispatcher is joined on `done`; an injected error must still
      // release it or the elevator wedges forever.
      pending_.at(id).done->set();
      throw;
    }
    pending_.at(id).done->set();
    co_return;
  }

  auto guard = co_await channel_.acquire();
  co_await service(lba, bytes, write, sectors);
}

sim::Task<void> Disk::elevator_dispatch() {
  while (!equeue_.empty()) {
    const std::uint64_t id = equeue_.pop_next(head_cylinder_);
    PendingRequest& req = pending_.at(id);
    req.grant->set();
    co_await req.done->wait();
    pending_.erase(id);
  }
  dispatcher_running_ = false;
}

void Disk::inject_slowdown(double factor, SimTime from, SimTime until) {
  if (factor <= 0) throw std::invalid_argument("Disk::inject_slowdown: factor must be > 0");
  slow_windows_.push_back(SlowWindow{factor, from, until});
}

void Disk::inject_transient_errors(SimTime from, SimTime until, std::uint64_t max_errors) {
  if (until <= from) {
    throw std::invalid_argument("Disk::inject_transient_errors: empty window");
  }
  transient_windows_.push_back(TransientWindow{from, until, max_errors});
}

bool Disk::consume_transient_error() {
  const SimTime now = sim_.now();
  for (TransientWindow& w : transient_windows_) {
    if (now >= w.from && now < w.until && w.budget > 0) {
      --w.budget;
      ++transient_errors_fired_;
      return true;
    }
  }
  return false;
}

double Disk::slowdown_factor_now() const {
  double f = 1.0;
  const SimTime now = sim_.now();
  for (const SlowWindow& w : slow_windows_) {
    if (now >= w.from && now < w.until) f *= w.factor;
  }
  return f;
}

std::int32_t Disk::trace_resource(trace::TraceSink& sink) {
  if (trace_res_ < 0) {
    trace_res_ = sink.register_resource(trace::TraceTrack::kDisk, name_.c_str());
  }
  return trace_res_;
}

sim::Task<void> Disk::service(std::uint64_t lba, ByteCount bytes, bool write,
                              std::uint64_t sectors) {
  if (consume_transient_error()) {
    // The drive accepted the command, spent its command processing time,
    // then returned a medium error; head state is unchanged.
    if (trace::TraceSink* sink = sim_.trace()) {
      sink->record(trace::TraceRecord(sim_.now(), trace::TraceKind::kInstant,
                                      trace::TraceTrack::kDisk, trace::code::kDiskTransient,
                                      trace_resource(*sink), 0, bytes, lba,
                                      trace::kFlagFault));
    }
    co_await sim_.delay(params_.controller_overhead_s);
    throw fault::FaultError(fault::ErrorCause::kDiskTransient,
                            name_ + ": injected transient error");
  }
  SimTime t = params_.controller_overhead_s;
  const bool sequential = (lba == next_sequential_lba_);
  if (sequential && !write) {
    ++sequential_hits_;
  } else {
    const std::uint64_t cyl = lba_to_cylinder(lba);
    const std::uint64_t dist = cyl > head_cylinder_ ? cyl - head_cylinder_ : head_cylinder_ - cyl;
    t += params_.seek_time_s(dist);
    t += rotational_wait(lba, sim_.now() + t);
  }
  t += static_cast<double>(bytes) / params_.media_rate_bytes_per_s();
  const double slow = slowdown_factor_now();
  if (slow != 1.0) {
    t *= slow;
    ++slowed_ops_;
  }

  if (tracer_ && tracer_->enabled(sim::TraceCat::kDisk)) {
    std::ostringstream msg;
    msg << (write ? "write" : "read") << " lba=" << lba << " bytes=" << bytes
        << " service=" << t << (sequential ? " [seq]" : "");
    tracer_->log(sim::TraceCat::kDisk, sim_.now(), name_, msg.str());
  }

  // The channel admits one request at a time, so per-disk service spans
  // never overlap: plain B/E pairs on the disk's timeline row.
  std::uint8_t span_flags = 0;
  if (sequential && !write) span_flags |= trace::kFlagSequential;
  if (write) span_flags |= trace::kFlagWrite;
  if (trace::TraceSink* sink = sim_.trace()) {
    sink->record(trace::TraceRecord(sim_.now(), trace::TraceKind::kSpanBegin,
                                    trace::TraceTrack::kDisk,
                                    write ? trace::code::kDiskWrite : trace::code::kDiskRead,
                                    trace_resource(*sink), 0, bytes, lba, span_flags));
  }

  co_await sim_.delay(t);

  if (trace::TraceSink* sink = sim_.trace()) {
    sink->record(trace::TraceRecord(sim_.now(), trace::TraceKind::kSpanEnd,
                                    trace::TraceTrack::kDisk,
                                    write ? trace::code::kDiskWrite : trace::code::kDiskRead,
                                    trace_resource(*sink), 0, bytes, lba, span_flags));
  }

  head_cylinder_ = lba_to_cylinder(lba + sectors - 1);
  next_sequential_lba_ = lba + sectors;
  ++ops_;
  bytes_ += bytes;
  busy_time_ += t;
}

}  // namespace ppfs::hw
