// A mechanical disk model of the early-1990s SCSI class used in Paragon
// I/O nodes.
//
// Timing = controller overhead + seek + rotational latency + media
// transfer, with a simple on-drive track cache: a read that starts exactly
// where the previous transfer ended skips the seek and rotational
// components (the drive's own read-ahead has the data). Rotational position
// is derived deterministically from simulated time (the platter spins
// continuously), so runs are reproducible without a rotational-latency RNG.
//
// The per-disk channel admits one outstanding operation; queueing happens
// in front of it (FIFO), which is how a single-LUN SCSI target behaves.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hw/disk_sched.hpp"
#include "sim/event.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace ppfs::hw {

using sim::ByteCount;
using sim::SimTime;

struct DiskParams {
  // Geometry.
  std::uint32_t sector_bytes = 512;
  std::uint32_t sectors_per_track = 72;
  std::uint32_t heads = 19;            // tracks per cylinder
  std::uint32_t cylinders = 1962;

  // Mechanics.
  double rpm = 4002.0;
  double seek_base_s = 0.0025;         // settle for a 1-cylinder move
  double seek_sqrt_coeff_s = 0.00045;  // short-seek sqrt term
  double seek_linear_coeff_s = 3.0e-6; // long-seek linear term

  // Electronics.
  double controller_overhead_s = 0.0011;  // per-request command processing

  /// Pending-request ordering: FIFO driver queue (default) or LOOK
  /// elevator (reorders by cylinder; helps interleaved multi-client runs).
  DiskSched scheduler = DiskSched::kFifo;

  std::uint64_t total_sectors() const {
    return static_cast<std::uint64_t>(sectors_per_track) * heads * cylinders;
  }
  ByteCount capacity_bytes() const { return total_sectors() * sector_bytes; }
  double rotation_period_s() const { return 60.0 / rpm; }
  /// Sustained media rate while transferring (one track per revolution).
  double media_rate_bytes_per_s() const {
    return static_cast<double>(sectors_per_track) * sector_bytes / rotation_period_s();
  }
  /// HP-97560-style seek curve: sqrt for short seeks, linear for long.
  double seek_time_s(std::uint64_t cylinder_distance) const;

  /// A parameter set resembling the drives shipped in Paragon I/O nodes.
  static DiskParams paragon_era();
};

class Disk {
 public:
  Disk(sim::Simulation& s, std::string name, DiskParams params, sim::Tracer* tracer = nullptr);
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Transfer `bytes` starting at logical sector `lba`. Suspends the caller
  /// for the full mechanical latency. Throws std::out_of_range past the end
  /// of the medium.
  sim::Task<void> transfer(std::uint64_t lba, ByteCount bytes, bool write);

  const DiskParams& params() const noexcept { return params_; }
  const std::string& name() const noexcept { return name_; }

  /// Pure timing query: the service time such a request would take in
  /// isolation given the current head/platter state (no queueing).
  SimTime estimate_service_time(std::uint64_t lba, ByteCount bytes) const;

  /// Fault injection: multiply the service time of every request whose
  /// start falls in [from, until) by `factor` (>1 = degraded drive —
  /// thermal recalibration, vibrating rack, failing head). Windows may
  /// overlap; factors compound. Data integrity is never affected.
  void inject_slowdown(double factor, SimTime from, SimTime until);
  std::uint64_t slowed_ops() const noexcept { return slowed_ops_; }

  /// Fault injection: up to `max_errors` requests whose service starts in
  /// [from, until) fail with fault::FaultError(kDiskTransient) after the
  /// controller overhead (command accepted, medium error returned). Models
  /// transient/latent-sector errors; a retry of the same request succeeds
  /// once the window's budget is spent.
  void inject_transient_errors(SimTime from, SimTime until, std::uint64_t max_errors);
  std::uint64_t transient_errors_fired() const noexcept { return transient_errors_fired_; }

  // Instrumentation.
  std::uint64_t ops() const noexcept { return ops_; }
  ByteCount bytes_transferred() const noexcept { return bytes_; }
  SimTime busy_time() const noexcept { return busy_time_; }
  std::uint64_t sequential_hits() const noexcept { return sequential_hits_; }

 private:
  std::uint64_t lba_to_cylinder(std::uint64_t lba) const {
    return lba / (static_cast<std::uint64_t>(params_.sectors_per_track) * params_.heads);
  }
  double rotational_wait(std::uint64_t lba, SimTime at) const;

  /// The mechanical service of one admitted request (no queueing).
  sim::Task<void> service(std::uint64_t lba, ByteCount bytes, bool write,
                          std::uint64_t sectors);

  struct PendingRequest {
    std::unique_ptr<sim::Event> grant;  // dispatcher -> request: your turn
    std::unique_ptr<sim::Event> done;   // request -> dispatcher: finished
  };
  sim::Task<void> elevator_dispatch();

  sim::Simulation& sim_;
  std::string name_;
  DiskParams params_;
  sim::Resource channel_;
  sim::Tracer* tracer_;

  ElevatorQueue equeue_;
  std::map<std::uint64_t, PendingRequest> pending_;
  std::uint64_t next_request_id_ = 0;
  bool dispatcher_running_ = false;

  struct SlowWindow {
    double factor;
    SimTime from;
    SimTime until;
  };
  double slowdown_factor_now() const;
  std::vector<SlowWindow> slow_windows_;
  std::uint64_t slowed_ops_ = 0;

  struct TransientWindow {
    SimTime from;
    SimTime until;
    std::uint64_t budget;
  };
  bool consume_transient_error();
  std::vector<TransientWindow> transient_windows_;
  std::uint64_t transient_errors_fired_ = 0;

  /// TraceScope resource id for this disk, registered lazily on the first
  /// traced service (so untraced runs never touch the registry).
  std::int32_t trace_resource(trace::TraceSink& sink);
  std::int32_t trace_res_ = -1;

  std::uint64_t head_cylinder_ = 0;
  std::uint64_t next_sequential_lba_ = ~0ull;  // track-cache continuation point

  std::uint64_t ops_ = 0;
  ByteCount bytes_ = 0;
  SimTime busy_time_ = 0;
  std::uint64_t sequential_hits_ = 0;
};

}  // namespace ppfs::hw
