#include "hw/disk_sched.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace ppfs::hw {

std::uint64_t ElevatorQueue::pop_next(std::uint64_t head_cylinder) {
  assert(!items_.empty());
  for (int attempt = 0; attempt < 2; ++attempt) {
    // Nearest request at-or-beyond the head in the sweep direction.
    std::size_t best = items_.size();
    std::uint64_t best_dist = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < items_.size(); ++i) {
      const std::uint64_t c = items_[i].cylinder;
      const bool ahead = sweeping_up_ ? c >= head_cylinder : c <= head_cylinder;
      if (!ahead) continue;
      const std::uint64_t dist = sweeping_up_ ? c - head_cylinder : head_cylinder - c;
      if (dist < best_dist) {
        best_dist = dist;
        best = i;
      }
    }
    if (best != items_.size()) {
      const std::uint64_t id = items_[best].id;
      items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(best));
      return id;
    }
    sweeping_up_ = !sweeping_up_;  // LOOK: reverse and retry
  }
  // Unreachable: after one reversal something is always "ahead".
  const std::uint64_t id = items_.front().id;
  items_.erase(items_.begin());
  return id;
}

std::vector<std::size_t> sweep_order(std::span<const std::uint64_t> keys,
                                     std::uint64_t head) {
  std::vector<std::size_t> order(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });
  // Split at the head: [up-pass ascending] + [return stroke descending].
  std::size_t split = 0;
  while (split < order.size() && keys[order[split]] < head) ++split;
  std::vector<std::size_t> out;
  out.reserve(order.size());
  for (std::size_t i = split; i < order.size(); ++i) out.push_back(order[i]);
  for (std::size_t i = split; i-- > 0;) out.push_back(order[i]);
  return out;
}

}  // namespace ppfs::hw
