#include "hw/raid.hpp"

#include <sstream>
#include <stdexcept>

#include "fault/error.hpp"
#include "sim/check/audit.hpp"
#include "sim/when_all.hpp"

namespace ppfs::hw {

RaidParams RaidParams::scsi8() { return RaidParams{}; }

RaidParams RaidParams::scsi16() {
  RaidParams p;
  p.bus_bandwidth = 16.0e6;
  return p;
}

RaidArray::RaidArray(sim::Simulation& s, std::string name, RaidParams params,
                     sim::Tracer* tracer)
    : sim_(s), name_(std::move(name)), params_(params), tracer_(tracer), bus_(s, 1) {
  if (params_.data_disks == 0) throw std::invalid_argument("RaidArray: need >= 1 data disk");
  const std::uint32_t total = params_.data_disks + (params_.dedicated_parity ? 1 : 0);
  members_.reserve(total);
  for (std::uint32_t i = 0; i < total; ++i) {
    const bool is_parity = params_.dedicated_parity && i == total - 1;
    members_.push_back(std::make_unique<Disk>(
        s, name_ + (is_parity ? "/parity" : "/d" + std::to_string(i)), params_.disk, tracer_));
  }
  failed_.assign(members_.size(), false);
}

void RaidArray::fail_member(std::size_t i) {
  if (!failed_.at(i)) {
    failed_[i] = true;
    ++failed_count_;
  }
}

void RaidArray::restore_member(std::size_t i) {
  if (failed_.at(i)) {
    failed_[i] = false;
    --failed_count_;
  }
}

sim::Task<void> RaidArray::hold_bus(ByteCount bytes) {
  auto guard = co_await bus_.acquire();
  co_await sim_.delay(params_.bus_overhead_s +
                      static_cast<double>(bytes) / params_.bus_bandwidth);
}

sim::Task<void> RaidArray::transfer(std::uint64_t lba, ByteCount bytes, bool write) {
  if (bytes == 0) co_return;
  // Lockstep: each data member moves an equal share; the parity member
  // participates in writes. Member transfers and the host-side SCSI bus
  // stream concurrently; completion is gated by the slowest of them.
  const ByteCount per_member =
      (bytes + params_.data_disks - 1) / params_.data_disks;

  std::size_t dead_data = 0;
  bool parity_dead = false;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (!failed_[i]) continue;
    if (i == parity_index()) {
      parity_dead = true;
    } else {
      ++dead_data;
    }
  }
  // RAID-3 survives exactly one lost data member, and only with a live
  // parity drive to reconstruct from.
  if (dead_data > 1 || (dead_data == 1 && (!params_.dedicated_parity || parity_dead))) {
    throw fault::FaultError(fault::ErrorCause::kDiskFailed,
                            name_ + ": member set unreadable (lost " +
                                std::to_string(dead_data + (parity_dead ? 1 : 0)) +
                                " members)");
  }
  const bool reconstruct = !write && dead_data == 1;

  if (tracer_ && tracer_->enabled(sim::TraceCat::kDisk)) {
    std::ostringstream msg;
    msg << (write ? "write" : "read") << " lba=" << lba << " bytes=" << bytes
        << " per_member=" << per_member << (reconstruct ? " [degraded]" : "");
    tracer_->log(sim::TraceCat::kDisk, sim_.now(), name_, msg.str());
  }

  std::vector<sim::Task<void>> parts;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (failed_[i]) continue;  // lost member: its share comes from parity
    const bool is_parity = i == parity_index();
    // The parity drive is idle on healthy reads but must be read to
    // reconstruct a lost data member's share.
    if (is_parity && !write && !reconstruct) continue;
    parts.push_back(members_[i]->transfer(lba, per_member, write));
  }
  parts.push_back(hold_bus(bytes));
  // Propagating join: an injected transient error on one member must
  // surface to the caller as a retryable fault, not kill the run.
  co_await sim::when_all_propagate(sim_, std::move(parts));

  if (reconstruct) {
    // XOR of the surviving data members + parity regenerates the lost share.
    co_await sim_.delay(static_cast<double>(bytes) / params_.xor_bandwidth);
    ++reconstructed_reads_;
    reconstructed_bytes_ += bytes;
    if (auto* a = sim_.auditor()) {
      a->on_fault_observed();
      a->on_fault_reconstructed();
    }
  }
  if (write && (dead_data > 0 || parity_dead)) ++degraded_writes_;

  ++ops_;
  bytes_ += bytes;
}

}  // namespace ppfs::hw
