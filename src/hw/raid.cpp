#include "hw/raid.hpp"

#include <sstream>
#include <stdexcept>

#include "sim/when_all.hpp"

namespace ppfs::hw {

RaidParams RaidParams::scsi8() { return RaidParams{}; }

RaidParams RaidParams::scsi16() {
  RaidParams p;
  p.bus_bandwidth = 16.0e6;
  return p;
}

RaidArray::RaidArray(sim::Simulation& s, std::string name, RaidParams params,
                     sim::Tracer* tracer)
    : sim_(s), name_(std::move(name)), params_(params), tracer_(tracer), bus_(s, 1) {
  if (params_.data_disks == 0) throw std::invalid_argument("RaidArray: need >= 1 data disk");
  const std::uint32_t total = params_.data_disks + (params_.dedicated_parity ? 1 : 0);
  members_.reserve(total);
  for (std::uint32_t i = 0; i < total; ++i) {
    const bool is_parity = params_.dedicated_parity && i == total - 1;
    members_.push_back(std::make_unique<Disk>(
        s, name_ + (is_parity ? "/parity" : "/d" + std::to_string(i)), params_.disk, tracer_));
  }
}

sim::Task<void> RaidArray::hold_bus(ByteCount bytes) {
  auto guard = co_await bus_.acquire();
  co_await sim_.delay(params_.bus_overhead_s +
                      static_cast<double>(bytes) / params_.bus_bandwidth);
}

sim::Task<void> RaidArray::transfer(std::uint64_t lba, ByteCount bytes, bool write) {
  if (bytes == 0) co_return;
  // Lockstep: each data member moves an equal share; the parity member
  // participates in writes. Member transfers and the host-side SCSI bus
  // stream concurrently; completion is gated by the slowest of them.
  const ByteCount per_member =
      (bytes + params_.data_disks - 1) / params_.data_disks;

  if (tracer_ && tracer_->enabled(sim::TraceCat::kDisk)) {
    std::ostringstream msg;
    msg << (write ? "write" : "read") << " lba=" << lba << " bytes=" << bytes
        << " per_member=" << per_member;
    tracer_->log(sim::TraceCat::kDisk, sim_.now(), name_, msg.str());
  }

  std::vector<sim::Task<void>> parts;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const bool is_parity = params_.dedicated_parity && i == members_.size() - 1;
    if (is_parity && !write) continue;  // parity drive idle on reads
    parts.push_back(members_[i]->transfer(lba, per_member, write));
  }
  parts.push_back(hold_bus(bytes));
  co_await sim::when_all(sim_, std::move(parts));

  ++ops_;
  bytes_ += bytes;
}

}  // namespace ppfs::hw
