// A Paragon node's processor complex: i860 cores plus a memory-copy cost
// model.
//
// Why copies matter here: in the normal (non-prefetching) Fast Path, data
// lands directly in the user's buffer; with prefetching it is staged in a
// kernel-side prefetch buffer and later copied to the user buffer. That
// copy — plus the per-request setup of an asynchronous request — is exactly
// the overhead the paper observes for small requests, so the node model
// charges both explicitly.
#pragma once

#include <cstdint>
#include <string>

#include "sim/resource.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/types.hpp"

namespace ppfs::hw {

using sim::ByteCount;
using sim::SimTime;

struct CpuParams {
  /// i860 nodes had 1 CPU; MP nodes had 3 ("SMP nodes are available with
  /// three i860 processors").
  std::uint32_t cores = 1;
  /// Achievable kernel memcpy bandwidth (bytes/s). i860-era copies through
  /// the OS ran in the tens of MB/s.
  double mem_copy_bandwidth = 40.0e6;
  /// Fixed cost of entering the kernel for an I/O request.
  double syscall_overhead = 30.0e-6;
  /// Cost of setting up an asynchronous request structure + thread (the
  /// Paragon ART setup and posting phases).
  double async_setup_overhead = 60.0e-6;
  /// Cost of allocating/freeing a prefetch buffer in node memory.
  double buffer_mgmt_overhead = 25.0e-6;
};

class NodeCpu {
 public:
  NodeCpu(sim::Simulation& s, std::string name, CpuParams params)
      : sim_(s), name_(std::move(name)), params_(params), cores_(s, params.cores) {}
  NodeCpu(const NodeCpu&) = delete;
  NodeCpu& operator=(const NodeCpu&) = delete;

  /// Occupy a core for `t` seconds of work.
  sim::Task<void> compute(SimTime t) {
    auto guard = co_await cores_.acquire();
    co_await sim_.delay(t);
    busy_ += t;
  }

  /// Memory-to-memory copy of `bytes` (occupies a core).
  sim::Task<void> copy(ByteCount bytes) { return compute(copy_time(bytes)); }

  SimTime copy_time(ByteCount bytes) const {
    return static_cast<double>(bytes) / params_.mem_copy_bandwidth;
  }

  const CpuParams& params() const noexcept { return params_; }
  const std::string& name() const noexcept { return name_; }
  SimTime busy_time() const noexcept { return busy_; }
  std::size_t core_count() const noexcept { return cores_.capacity(); }

 private:
  sim::Simulation& sim_;
  std::string name_;
  CpuParams params_;
  sim::Resource cores_;
  SimTime busy_ = 0;
};

}  // namespace ppfs::hw
