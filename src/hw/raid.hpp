// RAID-3 array behind a SCSI bus — the storage unit of a Paragon I/O node.
//
// RAID-3 byte-stripes every logical block across all data members with a
// dedicated parity drive, and the members operate in lockstep: one logical
// transfer engages every member in parallel, each moving 1/N of the bytes.
// Large streaming transfers therefore run at N x the single-drive media
// rate — until the SCSI bus caps them. The paper's systems used a SCSI-8
// card (and notes SCSI-16 "effectively quadruples the bandwidth available
// on each I/O node"); both are presets here.
//
// Addressing: the array exposes the member LBA space; a logical request at
// lba covers the same lba on every member, with bytes/N per member. Array
// capacity is member capacity x data_disks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/disk.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace ppfs::hw {

struct RaidParams {
  DiskParams disk = DiskParams::paragon_era();
  std::uint32_t data_disks = 4;
  bool dedicated_parity = true;
  /// SCSI bus bandwidth cap (bytes/s). SCSI-8 era card: ~4 MB/s sustained.
  double bus_bandwidth = 4.0e6;
  /// Per-request bus arbitration/command overhead.
  double bus_overhead_s = 0.0004;

  static RaidParams scsi8();
  static RaidParams scsi16();  // "effectively quadruples the bandwidth"
};

class RaidArray {
 public:
  RaidArray(sim::Simulation& s, std::string name, RaidParams params,
            sim::Tracer* tracer = nullptr);
  RaidArray(const RaidArray&) = delete;
  RaidArray& operator=(const RaidArray&) = delete;

  /// Transfer `bytes` at member-space sector `lba`. Members stream in
  /// parallel; the SCSI bus is held concurrently and caps throughput.
  sim::Task<void> transfer(std::uint64_t lba, ByteCount bytes, bool write);

  ByteCount capacity_bytes() const {
    return params_.disk.capacity_bytes() * params_.data_disks;
  }
  std::uint64_t total_sectors() const { return params_.disk.total_sectors(); }
  /// Bytes covered by one member sector across the whole stripe.
  ByteCount stripe_sector_bytes() const {
    return static_cast<ByteCount>(params_.disk.sector_bytes) * params_.data_disks;
  }

  const RaidParams& params() const noexcept { return params_; }
  std::size_t member_count() const noexcept { return members_.size(); }
  Disk& member(std::size_t i) { return *members_.at(i); }

  std::uint64_t ops() const noexcept { return ops_; }
  ByteCount bytes_transferred() const noexcept { return bytes_; }

 private:
  sim::Task<void> hold_bus(ByteCount bytes);

  sim::Simulation& sim_;
  std::string name_;
  RaidParams params_;
  sim::Tracer* tracer_;
  std::vector<std::unique_ptr<Disk>> members_;  // data disks + optional parity (last)
  sim::Resource bus_;

  std::uint64_t ops_ = 0;
  ByteCount bytes_ = 0;
};

}  // namespace ppfs::hw
