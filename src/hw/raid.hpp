// RAID-3 array behind a SCSI bus — the storage unit of a Paragon I/O node.
//
// RAID-3 byte-stripes every logical block across all data members with a
// dedicated parity drive, and the members operate in lockstep: one logical
// transfer engages every member in parallel, each moving 1/N of the bytes.
// Large streaming transfers therefore run at N x the single-drive media
// rate — until the SCSI bus caps them. The paper's systems used a SCSI-8
// card (and notes SCSI-16 "effectively quadruples the bandwidth available
// on each I/O node"); both are presets here.
//
// Addressing: the array exposes the member LBA space; a logical request at
// lba covers the same lba on every member, with bytes/N per member. Array
// capacity is member capacity x data_disks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/disk.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace ppfs::hw {

struct RaidParams {
  DiskParams disk = DiskParams::paragon_era();
  std::uint32_t data_disks = 4;
  bool dedicated_parity = true;
  /// SCSI bus bandwidth cap (bytes/s). SCSI-8 era card: ~4 MB/s sustained.
  double bus_bandwidth = 4.0e6;
  /// Per-request bus arbitration/command overhead.
  double bus_overhead_s = 0.0004;
  /// XOR rate (bytes/s) for parity reconstruction during degraded-mode
  /// reads — the i860 host recomputing the lost member's share.
  double xor_bandwidth = 25.0e6;

  static RaidParams scsi8();
  static RaidParams scsi16();  // "effectively quadruples the bandwidth"
};

class RaidArray {
 public:
  RaidArray(sim::Simulation& s, std::string name, RaidParams params,
            sim::Tracer* tracer = nullptr);
  RaidArray(const RaidArray&) = delete;
  RaidArray& operator=(const RaidArray&) = delete;

  /// Transfer `bytes` at member-space sector `lba`. Members stream in
  /// parallel; the SCSI bus is held concurrently and caps throughput.
  sim::Task<void> transfer(std::uint64_t lba, ByteCount bytes, bool write);

  ByteCount capacity_bytes() const {
    return params_.disk.capacity_bytes() * params_.data_disks;
  }
  std::uint64_t total_sectors() const { return params_.disk.total_sectors(); }
  /// Bytes covered by one member sector across the whole stripe.
  ByteCount stripe_sector_bytes() const {
    return static_cast<ByteCount>(params_.disk.sector_bytes) * params_.data_disks;
  }

  const RaidParams& params() const noexcept { return params_; }
  std::size_t member_count() const noexcept { return members_.size(); }
  Disk& member(std::size_t i) { return *members_.at(i); }

  /// Degraded mode: mark a member (data or parity) as lost. Reads with one
  /// lost data member are reconstructed from the survivors plus parity —
  /// charging the extra parity-member read and XOR time — and stay
  /// byte-correct. A second loss, or a data loss on an array without a
  /// parity drive, makes transfers fail with FaultError(kDiskFailed).
  void fail_member(std::size_t i);
  void restore_member(std::size_t i);
  bool member_failed(std::size_t i) const { return failed_.at(i); }
  bool degraded() const noexcept { return failed_count_ > 0; }

  std::uint64_t ops() const noexcept { return ops_; }
  ByteCount bytes_transferred() const noexcept { return bytes_; }
  std::uint64_t reconstructed_reads() const noexcept { return reconstructed_reads_; }
  ByteCount reconstructed_bytes() const noexcept { return reconstructed_bytes_; }
  std::uint64_t degraded_writes() const noexcept { return degraded_writes_; }

 private:
  sim::Task<void> hold_bus(ByteCount bytes);
  std::size_t parity_index() const {
    return params_.dedicated_parity ? members_.size() - 1 : members_.size();
  }

  sim::Simulation& sim_;
  std::string name_;
  RaidParams params_;
  sim::Tracer* tracer_;
  std::vector<std::unique_ptr<Disk>> members_;  // data disks + optional parity (last)
  sim::Resource bus_;
  std::vector<bool> failed_;
  std::size_t failed_count_ = 0;

  std::uint64_t ops_ = 0;
  ByteCount bytes_ = 0;
  std::uint64_t reconstructed_reads_ = 0;
  ByteCount reconstructed_bytes_ = 0;
  std::uint64_t degraded_writes_ = 0;
};

}  // namespace ppfs::hw
