#include "hw/mesh.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "sim/inline_vec.hpp"
#include "trace/record.hpp"
#include "trace/sink.hpp"

namespace ppfs::hw {

namespace {

// Wire-occupancy span edges for every link of a held route. The links are
// held exclusively (capacity-1 resources), so per-link begin/end pairs can
// never overlap and export as plain B/E timeline slices.
void trace_wire_edges(sim::Simulation& sim, std::span<const int> links, trace::TraceKind kind,
                     ByteCount bytes, NodeId dst) {
  trace::TraceSink* sink = sim.trace();
  if (sink == nullptr) return;
  for (int id : links) {
    sink->record(trace::TraceRecord(sim.now(), kind, trace::TraceTrack::kMeshLink,
                                    trace::code::kWire, id, 0,
                                    static_cast<std::uint64_t>(bytes),
                                    static_cast<std::uint64_t>(dst)));
  }
}

}  // namespace

MeshNetwork::MeshNetwork(sim::Simulation& s, MeshConfig cfg, sim::Tracer* tracer)
    : sim_(s), cfg_(cfg), tracer_(tracer) {
  if (cfg_.width <= 0 || cfg_.height <= 0) {
    throw std::invalid_argument("MeshNetwork: non-positive dimensions");
  }
  const int n_links = cfg_.node_count() * 4;
  links_.reserve(static_cast<std::size_t>(n_links));
  for (int i = 0; i < n_links; ++i) links_.emplace_back(s, 1);
  link_busy_.assign(n_links, 0.0);
  build_path_table();
}

void MeshNetwork::check_node(NodeId n) const {
  if (n < 0 || n >= cfg_.node_count()) {
    throw std::out_of_range("MeshNetwork: node id out of range");
  }
}

void MeshNetwork::build_path_table() {
  const int n = cfg_.node_count();
  if (n > kPathTableMaxNodes) return;  // fall back to per-send walks
  const std::size_t pairs = static_cast<std::size_t>(n) * n;
  pair_off_.assign(pairs + 1, 0);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      pair_off_[static_cast<std::size_t>(s) * n + d + 1] =
          static_cast<std::uint32_t>(hop_count(s, d));
    }
  }
  for (std::size_t i = 1; i < pair_off_.size(); ++i) pair_off_[i] += pair_off_[i - 1];
  path_pool_.resize(pair_off_.back());
  sorted_pool_.resize(pair_off_.back());
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      std::size_t at = pair_off_[static_cast<std::size_t>(s) * n + d];
      const std::size_t begin = at;
      walk_route(s, d, [&](int id) { path_pool_[at++] = id; });
      std::copy(path_pool_.begin() + begin, path_pool_.begin() + at,
                sorted_pool_.begin() + begin);
      std::sort(sorted_pool_.begin() + begin, sorted_pool_.begin() + at);
    }
  }
}

std::vector<int> MeshNetwork::route(NodeId src, NodeId dst) const {
  check_node(src);
  check_node(dst);
  std::vector<int> path;
  path.reserve(static_cast<std::size_t>(hop_count(src, dst)));
  walk_route(src, dst, [&](int id) { path.push_back(id); });
  return path;
}

int MeshNetwork::hop_count(NodeId src, NodeId dst) const {
  const int sx = src % cfg_.width, sy = src / cfg_.width;
  const int dx = dst % cfg_.width, dy = dst / cfg_.width;
  return std::abs(sx - dx) + std::abs(sy - dy);
}

void MeshNetwork::inject_node_slowdown(NodeId node, double factor, SimTime from,
                                       SimTime until) {
  check_node(node);
  if (factor <= 0) {
    throw std::invalid_argument("MeshNetwork::inject_node_slowdown: factor must be > 0");
  }
  degraded_windows_.push_back(DegradedWindow{node, factor, from, until});
}

double MeshNetwork::degrade_factor_now(NodeId src, NodeId dst,
                                       std::span<const int> path) const {
  if (degraded_windows_.empty()) return 1.0;
  double f = 1.0;
  const SimTime now = sim_.now();
  for (const DegradedWindow& w : degraded_windows_) {
    if (now < w.from || now >= w.until) continue;
    bool touches = src == w.node || dst == w.node;
    for (std::size_t i = 0; !touches && i < path.size(); ++i) {
      touches = path[i] / 4 == w.node;  // link_id encodes its source node
    }
    if (touches) f *= w.factor;
  }
  return f;
}

std::vector<std::pair<int, SimTime>> MeshNetwork::top_busy_links(std::size_t k) const {
  std::vector<std::pair<int, SimTime>> busy;
  for (std::size_t id = 0; id < link_busy_.size(); ++id) {
    if (link_busy_[id] > 0.0) busy.emplace_back(static_cast<int>(id), link_busy_[id]);
  }
  std::sort(busy.begin(), busy.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (busy.size() > k) busy.resize(k);
  return busy;
}

sim::Task<void> MeshNetwork::send(NodeId src, NodeId dst, ByteCount bytes) {
  check_node(src);
  check_node(dst);

  // Software injection cost is paid on the node, before touching the wires.
  co_await sim_.delay(cfg_.software_latency);

  if (src == dst) {
    ++messages_;
    bytes_ += bytes;
    co_return;
  }

  // Route lookup: spans into the precomputed pools for table-sized meshes,
  // inline scratch otherwise — no heap traffic either way for paper-scale
  // grids.
  // ppfs::hot — per-message route lookup; pool spans or inline scratch only
  sim::InlineVec<int, kInlinePathSlots> local_path;
  sim::InlineVec<int, kInlinePathSlots> local_sorted;
  std::span<const int> path, ordered;
  if (!pair_off_.empty()) {
    path = table_span(path_pool_, src, dst);
    ordered = table_span(sorted_pool_, src, dst);
  } else {
    walk_route(src, dst, [&](int id) { local_path.push_back(id); });
    for (int id : local_path) local_sorted.push_back(id);
    std::sort(local_sorted.begin(), local_sorted.end());
    path = {local_path.data(), local_path.size()};
    ordered = {local_sorted.data(), local_sorted.size()};
  }
  // ppfs::endhot

  if (cfg_.mtu == 0 || bytes <= cfg_.mtu) {
    // Legacy circuit: hold the whole route for the whole message.
    double transfer =
        static_cast<double>(path.size()) * cfg_.hop_latency +
        static_cast<double>(bytes) / cfg_.link_bandwidth;

    // Circuit setup: grab the path's links in canonical order
    // (deadlock-free) and hold them for the duration of the transfer.
    sim::InlineVec<sim::ResourceGuard, kInlinePathSlots> held;
    for (int id : ordered) held.push_back(co_await links_[static_cast<std::size_t>(id)].acquire());

    // Degradation is evaluated at wire time (after circuit setup), so a
    // window that opens while a message waits for links still applies.
    const double degrade = degrade_factor_now(src, dst, path);
    if (degrade != 1.0) {
      transfer *= degrade;
      ++degraded_messages_;
    }

    if (tracer_ && tracer_->enabled(sim::TraceCat::kNet)) {
      std::ostringstream msg;
      msg << "msg " << src << "->" << dst << " bytes=" << bytes << " hops=" << path.size()
          << " t=" << transfer;
      tracer_->log(sim::TraceCat::kNet, sim_.now(), "mesh", msg.str());
    }

    trace_wire_edges(sim_, ordered, trace::TraceKind::kSpanBegin, bytes, dst);
    co_await sim_.delay(transfer);
    trace_wire_edges(sim_, ordered, trace::TraceKind::kSpanEnd, bytes, dst);
    for (int id : ordered) link_busy_[id] += transfer;

    ++messages_;
    bytes_ += bytes;
    co_return;
  }

  // Pipelined mode: the message moves as ceil(bytes / mtu) segments. Each
  // segment still takes the full route in canonical order (deadlock-free),
  // but the route is yielded between segments when — and only when —
  // another message is queued on one of its links, so uncontended traffic
  // pays a single acquisition (O(path + segments) work) while contended
  // routes interleave at MTU granularity.
  const std::uint64_t nseg = (bytes + cfg_.mtu - 1) / cfg_.mtu;
  ++segmented_messages_;

  if (tracer_ && tracer_->enabled(sim::TraceCat::kNet)) {
    std::ostringstream msg;
    msg << "msg " << src << "->" << dst << " bytes=" << bytes << " hops=" << path.size()
        << " segments=" << nseg << " mtu=" << cfg_.mtu;
    tracer_->log(sim::TraceCat::kNet, sim_.now(), "mesh", msg.str());
  }

  sim::InlineVec<sim::ResourceGuard, kInlinePathSlots> held;
  bool degraded_counted = false;
  for (std::uint64_t s = 0; s < nseg; ++s) {
    const ByteCount seg = std::min<ByteCount>(cfg_.mtu, bytes - s * cfg_.mtu);
    if (held.empty()) {
      for (int id : ordered) held.push_back(co_await links_[static_cast<std::size_t>(id)].acquire());
    }

    // The head segment pays the per-hop router latency; later segments
    // stream pipeline-style behind it and pay pure wire time.
    double transfer = static_cast<double>(seg) / cfg_.link_bandwidth;
    if (s == 0) transfer += static_cast<double>(path.size()) * cfg_.hop_latency;

    // Per-segment degradation: a window opening mid-message slows exactly
    // the segments wired inside it.
    const double degrade = degrade_factor_now(src, dst, path);
    if (degrade != 1.0) {
      transfer *= degrade;
      if (!degraded_counted) {
        ++degraded_messages_;
        degraded_counted = true;
      }
    }

    trace_wire_edges(sim_, ordered, trace::TraceKind::kSpanBegin, seg, dst);
    co_await sim_.delay(transfer);
    trace_wire_edges(sim_, ordered, trace::TraceKind::kSpanEnd, seg, dst);
    for (int id : ordered) link_busy_[id] += transfer;
    ++segments_sent_;

    if (s + 1 < nseg) {
      bool contended = false;
      for (int id : ordered) {
        if (links_[static_cast<std::size_t>(id)].queue_length() > 0) {
          contended = true;
          break;
        }
      }
      if (contended) {
        if (trace::TraceSink* sink = sim_.trace()) {
          // One queuing instant per yielded link: a contended route dropped
          // between segments so another message can interleave.
          for (int id : ordered) {
            sink->record(trace::TraceRecord(sim_.now(), trace::TraceKind::kInstant,
                                            trace::TraceTrack::kMeshLink,
                                            trace::code::kSegmentYield, id, 0, s + 1, nseg));
          }
        }
        held.clear();  // release in insertion order, re-acquire
      }
    }
  }

  ++messages_;
  bytes_ += bytes;
}

}  // namespace ppfs::hw
