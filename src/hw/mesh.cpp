#include "hw/mesh.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace ppfs::hw {

MeshNetwork::MeshNetwork(sim::Simulation& s, MeshConfig cfg, sim::Tracer* tracer)
    : sim_(s), cfg_(cfg), tracer_(tracer) {
  if (cfg_.width <= 0 || cfg_.height <= 0) {
    throw std::invalid_argument("MeshNetwork: non-positive dimensions");
  }
  const int n_links = cfg_.node_count() * 4;
  links_.reserve(n_links);
  for (int i = 0; i < n_links; ++i) links_.push_back(std::make_unique<sim::Resource>(s, 1));
  link_busy_.assign(n_links, 0.0);
}

void MeshNetwork::check_node(NodeId n) const {
  if (n < 0 || n >= cfg_.node_count()) {
    throw std::out_of_range("MeshNetwork: node id out of range");
  }
}

std::vector<int> MeshNetwork::route(NodeId src, NodeId dst) const {
  check_node(src);
  check_node(dst);
  std::vector<int> path;
  int x = src % cfg_.width, y = src / cfg_.width;
  const int dx = dst % cfg_.width, dy = dst / cfg_.width;
  while (x != dx) {  // X dimension first
    const int dir = dx > x ? 0 : 1;
    path.push_back(link_id(y * cfg_.width + x, dir));
    x += dx > x ? 1 : -1;
  }
  while (y != dy) {
    const int dir = dy > y ? 2 : 3;
    path.push_back(link_id(y * cfg_.width + x, dir));
    y += dy > y ? 1 : -1;
  }
  return path;
}

int MeshNetwork::hop_count(NodeId src, NodeId dst) const {
  const int sx = src % cfg_.width, sy = src / cfg_.width;
  const int dx = dst % cfg_.width, dy = dst / cfg_.width;
  return std::abs(sx - dx) + std::abs(sy - dy);
}

void MeshNetwork::inject_node_slowdown(NodeId node, double factor, SimTime from,
                                       SimTime until) {
  check_node(node);
  if (factor <= 0) {
    throw std::invalid_argument("MeshNetwork::inject_node_slowdown: factor must be > 0");
  }
  degraded_windows_.push_back(DegradedWindow{node, factor, from, until});
}

double MeshNetwork::degrade_factor_now(NodeId src, NodeId dst,
                                       const std::vector<int>& path) const {
  if (degraded_windows_.empty()) return 1.0;
  double f = 1.0;
  const SimTime now = sim_.now();
  for (const DegradedWindow& w : degraded_windows_) {
    if (now < w.from || now >= w.until) continue;
    bool touches = src == w.node || dst == w.node;
    for (std::size_t i = 0; !touches && i < path.size(); ++i) {
      touches = path[i] / 4 == w.node;  // link_id encodes its source node
    }
    if (touches) f *= w.factor;
  }
  return f;
}

sim::Task<void> MeshNetwork::send(NodeId src, NodeId dst, ByteCount bytes) {
  check_node(src);
  check_node(dst);

  // Software injection cost is paid on the node, before touching the wires.
  co_await sim_.delay(cfg_.software_latency);

  if (src == dst) {
    ++messages_;
    bytes_ += bytes;
    co_return;
  }

  auto path = route(src, dst);
  double transfer =
      static_cast<double>(path.size()) * cfg_.hop_latency +
      static_cast<double>(bytes) / cfg_.link_bandwidth;

  // Circuit setup: grab the path's links in canonical order (deadlock-free)
  // and hold them for the duration of the transfer.
  std::vector<int> ordered = path;
  std::sort(ordered.begin(), ordered.end());
  std::vector<sim::ResourceGuard> held;
  held.reserve(ordered.size());
  for (int id : ordered) held.push_back(co_await links_[id]->acquire());

  // Degradation is evaluated at wire time (after circuit setup), so a
  // window that opens while a message waits for links still applies.
  const double degrade = degrade_factor_now(src, dst, path);
  if (degrade != 1.0) {
    transfer *= degrade;
    ++degraded_messages_;
  }

  if (tracer_ && tracer_->enabled(sim::TraceCat::kNet)) {
    std::ostringstream msg;
    msg << "msg " << src << "->" << dst << " bytes=" << bytes << " hops=" << path.size()
        << " t=" << transfer;
    tracer_->log(sim::TraceCat::kNet, sim_.now(), "mesh", msg.str());
  }

  co_await sim_.delay(transfer);
  for (int id : ordered) link_busy_[id] += transfer;

  ++messages_;
  bytes_ += bytes;
}

}  // namespace ppfs::hw
