// Disk request scheduling policies.
//
// The base Disk serializes requests FIFO (arrival order), which is how a
// simple driver queue behaves. Real Paragon I/O nodes could reorder at the
// driver: ElevatorQueue implements LOOK/SCAN ordering — serve requests in
// cylinder order, sweeping up then down — which pays off when many compute
// nodes interleave distant regions on one I/O node (the M_ASYNC own-region
// pattern, or Table 4's single-I/O-node configuration).
//
// The queue is a policy object used by Disk when DiskParams::scheduler is
// kElevator; it holds pending requests and picks the next one to admit.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

namespace ppfs::hw {

enum class DiskSched {
  kFifo,      // arrival order
  kElevator,  // LOOK: sweep by cylinder, reversing at the extremes
};

/// Pending-request ordering for the elevator policy. Tracks only request
/// ids + cylinders; the Disk maps ids back to waiting coroutines.
class ElevatorQueue {
 public:
  struct Item {
    std::uint64_t id;
    std::uint64_t cylinder;
  };

  void push(std::uint64_t id, std::uint64_t cylinder) { items_.push_back({id, cylinder}); }
  bool empty() const noexcept { return items_.empty(); }
  std::size_t size() const noexcept { return items_.size(); }

  /// Pop the next request for a head currently at `head_cylinder`:
  /// the nearest request in the current sweep direction; reverse the
  /// sweep when nothing lies ahead.
  std::uint64_t pop_next(std::uint64_t head_cylinder);

 private:
  std::vector<Item> items_;
  bool sweeping_up_ = true;
};

/// Order a whole batch for one LOOK sweep: indices of `keys` (physical
/// positions — cylinders or block numbers) arranged as an ascending pass
/// starting at the first key >= `head`, followed by the remaining keys in
/// descending order (the return stroke). Equal keys keep their relative
/// input order, so the result is deterministic. PfsServer uses this to
/// hand the disk one sorted sweep instead of N arrival-order seeks.
std::vector<std::size_t> sweep_order(std::span<const std::uint64_t> keys,
                                     std::uint64_t head);

}  // namespace ppfs::hw
