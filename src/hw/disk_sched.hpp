// Disk request scheduling policies.
//
// The base Disk serializes requests FIFO (arrival order), which is how a
// simple driver queue behaves. Real Paragon I/O nodes could reorder at the
// driver: ElevatorQueue implements LOOK/SCAN ordering — serve requests in
// cylinder order, sweeping up then down — which pays off when many compute
// nodes interleave distant regions on one I/O node (the M_ASYNC own-region
// pattern, or Table 4's single-I/O-node configuration).
//
// The queue is a policy object used by Disk when DiskParams::scheduler is
// kElevator; it holds pending requests and picks the next one to admit.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

namespace ppfs::hw {

enum class DiskSched {
  kFifo,      // arrival order
  kElevator,  // LOOK: sweep by cylinder, reversing at the extremes
};

/// Pending-request ordering for the elevator policy. Tracks only request
/// ids + cylinders; the Disk maps ids back to waiting coroutines.
class ElevatorQueue {
 public:
  struct Item {
    std::uint64_t id;
    std::uint64_t cylinder;
  };

  void push(std::uint64_t id, std::uint64_t cylinder) { items_.push_back({id, cylinder}); }
  bool empty() const noexcept { return items_.empty(); }
  std::size_t size() const noexcept { return items_.size(); }

  /// Pop the next request for a head currently at `head_cylinder`:
  /// the nearest request in the current sweep direction; reverse the
  /// sweep when nothing lies ahead.
  std::uint64_t pop_next(std::uint64_t head_cylinder);

 private:
  std::vector<Item> items_;
  bool sweeping_up_ = true;
};

}  // namespace ppfs::hw
