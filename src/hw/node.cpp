// NodeCpu is header-only; see node.hpp.
#include "hw/node.hpp"
