// The Paragon 2-D mesh interconnect.
//
// Nodes sit on a width x height grid; messages follow dimension-ordered
// (X then Y) wormhole routing. The legacy model (mtu == 0) treats a wormhole
// transfer as a circuit: the message holds every directed link on its path
// for the duration of the transfer, which captures the head-of-line blocking
// that makes concurrent full-file reads contend. Links along the path are
// acquired in a canonical (sorted) order so concurrent circuit setups cannot
// deadlock.
//
// With mtu > 0 the network pipelines: messages larger than the MTU are cut
// into MTU-sized segments that take and yield the route segment-by-segment,
// so a long transfer shares its links with competing traffic at MTU
// granularity instead of circuit-blocking the whole route. Segment wire
// times pipeline the per-hop router latency away: the head segment pays
// hops x hop_latency + seg/bandwidth, every later segment only
// seg/bandwidth (its flits stream behind the head). An uncontended message
// keeps the circuit between segments (one acquisition, one event per
// segment: O(path + segments) work); only when another message queues on a
// path link does the sender release and re-acquire, which is exactly the
// sharing the model exists to expose.
//
// Per-message time = software injection latency (charged before links are
// held) + hops x per-hop router latency + bytes / link bandwidth; identical
// totals in both modes when uncontended.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "sim/resource.hpp"
#include "sim/shard.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace ppfs::hw {

using NodeId = int;
using sim::ByteCount;
using sim::SimTime;

struct MeshConfig {
  int width = 4;
  int height = 4;
  /// Raw link bandwidth, bytes/s. Paragon links ran at ~175 MB/s.
  double link_bandwidth = 175.0e6;
  /// Router latency per hop.
  double hop_latency = 40.0e-9;
  /// OS message-passing software overhead per message (send+receive path).
  double software_latency = 45.0e-6;
  /// Maximum transfer unit for pipelined transfers, in bytes. 0 (the
  /// default) keeps the legacy circuit model: one wire event holds the
  /// whole route for the full message duration, and existing event digests
  /// are bit-identical. When > 0, messages above the MTU move as MTU-sized
  /// segments that yield the route to queued competitors between segments.
  ByteCount mtu = 0;

  int node_count() const { return width * height; }
};

class MeshNetwork {
 public:
  MeshNetwork(sim::Simulation& s, MeshConfig cfg, sim::Tracer* tracer = nullptr);
  MeshNetwork(const MeshNetwork&) = delete;
  MeshNetwork& operator=(const MeshNetwork&) = delete;

  /// Deliver a message of `bytes` from src to dst. Suspends the caller for
  /// the full transfer (rendezvous semantics: the data has arrived when
  /// this resumes). src == dst costs only the software latency.
  sim::Task<void> send(NodeId src, NodeId dst, ByteCount bytes);

  /// The directed link ids a message from src to dst traverses, in path
  /// order. Exposed for tests and the declustering demo.
  std::vector<int> route(NodeId src, NodeId dst) const;

  int hop_count(NodeId src, NodeId dst) const;
  const MeshConfig& config() const noexcept { return cfg_; }

  /// Fault injection: degrade the mesh around `node` — any message whose
  /// source, destination, or path touches it has its wire time multiplied
  /// by `factor` while the transfer starts in [from, until). Models a
  /// flaky router or backplane partition window (a large factor is an
  /// effective partition); overlapping windows compound. Delivery always
  /// eventually happens — wormhole circuits do not drop data.
  void inject_node_slowdown(NodeId node, double factor, SimTime from, SimTime until);
  std::uint64_t degraded_messages() const noexcept { return degraded_messages_; }

  std::uint64_t messages() const noexcept { return messages_; }
  ByteCount bytes_moved() const noexcept { return bytes_; }
  /// Messages that moved as >1 segment, and total segments wired (counts
  /// single-segment messages too once the pipelined path is taken).
  std::uint64_t segmented_messages() const noexcept { return segmented_messages_; }
  std::uint64_t segments_sent() const noexcept { return segments_sent_; }
  /// Total time the given directed link spent occupied.
  SimTime link_busy_time(int link_id) const { return link_busy_.at(link_id); }
  /// The k busiest directed links as (link id, busy time), busiest first
  /// (ties broken by ascending id). Links with zero busy time are omitted.
  std::vector<std::pair<int, SimTime>> top_busy_links(std::size_t k) const;

  /// Footprint of the link-state arena plus the busy-time table — the
  /// mesh's contribution to Machine::state_memory_bytes().
  std::size_t links_memory_bytes() const noexcept {
    return links_.memory_bytes() + link_busy_.capacity() * sizeof(SimTime);
  }

 private:
  // Directed link leaving `node` toward direction d (0=+x,1=-x,2=+y,3=-y).
  int link_id(NodeId node, int dir) const { return node * 4 + dir; }
  void check_node(NodeId n) const;

  // Dimension-ordered walk invoking fn(link_id) per hop, X first then Y.
  template <typename Fn>
  void walk_route(NodeId src, NodeId dst, Fn&& fn) const {
    int x = src % cfg_.width, y = src / cfg_.width;
    const int dx = dst % cfg_.width, dy = dst / cfg_.width;
    while (x != dx) {
      const int dir = dx > x ? 0 : 1;
      fn(link_id(y * cfg_.width + x, dir));
      x += dx > x ? 1 : -1;
    }
    while (y != dy) {
      const int dir = dy > y ? 2 : 3;
      fn(link_id(y * cfg_.width + x, dir));
      y += dy > y ? 1 : -1;
    }
  }

  // Meshes up to this many nodes precompute every pair's route once; send()
  // then reads spans out of the pools instead of allocating per message.
  static constexpr int kPathTableMaxNodes = 256;
  // Inline slots for the no-table fallback and for held guards: covers any
  // path in a mesh up to 17x17 without touching the heap.
  static constexpr std::size_t kInlinePathSlots = 32;

  void build_path_table();
  std::span<const int> table_span(const std::vector<int>& pool, NodeId src,
                                  NodeId dst) const {
    const std::size_t pair = static_cast<std::size_t>(src) * cfg_.node_count() + dst;
    return {pool.data() + pair_off_[pair], pair_off_[pair + 1] - pair_off_[pair]};
  }

  struct DegradedWindow {
    NodeId node;
    double factor;
    SimTime from;
    SimTime until;
  };
  double degrade_factor_now(NodeId src, NodeId dst, std::span<const int> path) const;

  sim::Simulation& sim_;
  MeshConfig cfg_;
  sim::Tracer* tracer_;
  // One capacity-1 Resource per directed link, indexed by link id. The
  // shard arena keeps all 4*node_count link states in one contiguous
  // block — Resources are address-pinned (auditor registration), which
  // the arena's no-relocation contract supports.
  sim::ShardArena<sim::Resource> links_;
  std::vector<SimTime> link_busy_;
  std::vector<DegradedWindow> degraded_windows_;
  std::uint64_t degraded_messages_ = 0;

  // Route table: link ids for every (src, dst) pair, in path order
  // (path_pool_) and canonical acquisition order (sorted_pool_), both
  // indexed by pair_off_. Empty when the mesh exceeds kPathTableMaxNodes.
  std::vector<int> path_pool_;
  std::vector<int> sorted_pool_;
  std::vector<std::uint32_t> pair_off_;

  std::uint64_t messages_ = 0;
  std::uint64_t segmented_messages_ = 0;
  std::uint64_t segments_sent_ = 0;
  ByteCount bytes_ = 0;
};

}  // namespace ppfs::hw
