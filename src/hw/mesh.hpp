// The Paragon 2-D mesh interconnect.
//
// Nodes sit on a width x height grid; messages follow dimension-ordered
// (X then Y) wormhole routing. We model a wormhole transfer as a circuit:
// the message holds every directed link on its path for the duration of the
// transfer, which captures the head-of-line blocking that makes concurrent
// full-file reads contend. Links along the path are acquired in a canonical
// (sorted) order so concurrent circuit setups cannot deadlock.
//
// Per-message time = software injection latency (charged before links are
// held) + hops x per-hop router latency + bytes / link bandwidth.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/resource.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace ppfs::hw {

using NodeId = int;
using sim::ByteCount;
using sim::SimTime;

struct MeshConfig {
  int width = 4;
  int height = 4;
  /// Raw link bandwidth, bytes/s. Paragon links ran at ~175 MB/s.
  double link_bandwidth = 175.0e6;
  /// Router latency per hop.
  double hop_latency = 40.0e-9;
  /// OS message-passing software overhead per message (send+receive path).
  double software_latency = 45.0e-6;

  int node_count() const { return width * height; }
};

class MeshNetwork {
 public:
  MeshNetwork(sim::Simulation& s, MeshConfig cfg, sim::Tracer* tracer = nullptr);
  MeshNetwork(const MeshNetwork&) = delete;
  MeshNetwork& operator=(const MeshNetwork&) = delete;

  /// Deliver a message of `bytes` from src to dst. Suspends the caller for
  /// the full transfer (rendezvous semantics: the data has arrived when
  /// this resumes). src == dst costs only the software latency.
  sim::Task<void> send(NodeId src, NodeId dst, ByteCount bytes);

  /// The directed link ids a message from src to dst traverses, in path
  /// order. Exposed for tests and the declustering demo.
  std::vector<int> route(NodeId src, NodeId dst) const;

  int hop_count(NodeId src, NodeId dst) const;
  const MeshConfig& config() const noexcept { return cfg_; }

  /// Fault injection: degrade the mesh around `node` — any message whose
  /// source, destination, or path touches it has its wire time multiplied
  /// by `factor` while the transfer starts in [from, until). Models a
  /// flaky router or backplane partition window (a large factor is an
  /// effective partition); overlapping windows compound. Delivery always
  /// eventually happens — wormhole circuits do not drop data.
  void inject_node_slowdown(NodeId node, double factor, SimTime from, SimTime until);
  std::uint64_t degraded_messages() const noexcept { return degraded_messages_; }

  std::uint64_t messages() const noexcept { return messages_; }
  ByteCount bytes_moved() const noexcept { return bytes_; }
  /// Total time the given directed link spent occupied.
  SimTime link_busy_time(int link_id) const { return link_busy_.at(link_id); }

 private:
  // Directed link leaving `node` toward direction d (0=+x,1=-x,2=+y,3=-y).
  int link_id(NodeId node, int dir) const { return node * 4 + dir; }
  void check_node(NodeId n) const;

  struct DegradedWindow {
    NodeId node;
    double factor;
    SimTime from;
    SimTime until;
  };
  double degrade_factor_now(NodeId src, NodeId dst, const std::vector<int>& path) const;

  sim::Simulation& sim_;
  MeshConfig cfg_;
  sim::Tracer* tracer_;
  std::vector<std::unique_ptr<sim::Resource>> links_;
  std::vector<SimTime> link_busy_;
  std::vector<DegradedWindow> degraded_windows_;
  std::uint64_t degraded_messages_ = 0;

  std::uint64_t messages_ = 0;
  ByteCount bytes_ = 0;
};

}  // namespace ppfs::hw
