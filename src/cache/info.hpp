// CacheFileInfo — the per-file downloaded-block bitmap of the second-tier
// block cache (the xrootd CacheFileInfo model).
//
// One instance tracks which logical blocks of one UFS file are resident in
// the tier. The bitmap is what survives a crash: it is journaled through
// the simulated cache device as a fixed-layout entry
//
//   [ magic | ino | generation | block_count | word_count | checksum ]
//   [ bitmap words ... ]
//
// with an FNV-1a checksum over everything but the checksum word itself.
// A crash mid-write leaves a torn entry whose checksum no longer matches;
// decode() refuses it, which is how recovery and fsck detect torn writes
// without any out-of-band flag.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.hpp"

namespace ppfs::cache {

using sim::ByteCount;

/// Journal entry magic ("PPFSCACH" as a little-endian word).
inline constexpr std::uint64_t kInfoMagic = 0x5050465343414348ull;

struct CacheFileInfo {
  std::uint32_t ino = 0;         // owning UFS inode number
  std::uint64_t generation = 0;  // inode generation stamped at first insert
  std::uint64_t block_count = 0; // logical blocks the bitmap covers
  std::vector<std::uint64_t> bits;

  /// Grow the bitmap to cover at least `blocks` logical blocks.
  void cover(std::uint64_t blocks);

  bool test(std::uint64_t lblock) const noexcept {
    const std::uint64_t w = lblock / 64;
    // ppfs::hot — tier residency probe, one per block on every served read
    return w < bits.size() && (bits[w] >> (lblock % 64)) & 1ull;
    // ppfs::endhot
  }
  /// Returns true if the bit was newly set.
  bool set(std::uint64_t lblock);
  /// Returns true if the bit was set before clearing.
  bool clear(std::uint64_t lblock) noexcept;
  std::uint64_t popcount() const noexcept;
  /// Clear every bit at or beyond `blocks`; returns how many were dropped.
  std::uint64_t clamp(std::uint64_t blocks) noexcept;
};

/// Serialize to the on-"disk" journal layout (header + bitmap words).
std::vector<std::byte> encode(const CacheFileInfo& info);

/// Parse a journal entry. Returns nullopt for torn or foreign payloads
/// (bad magic, short buffer, or checksum mismatch).
std::optional<CacheFileInfo> decode(const std::byte* data, std::size_t size);

/// FNV-1a over a word sequence — the torn-write detector.
std::uint64_t info_checksum(const std::uint64_t* words, std::size_t count) noexcept;

}  // namespace ppfs::cache
