#include "cache/eviction.hpp"

namespace ppfs::cache {

const char* to_string(EvictionKind k) noexcept {
  switch (k) {
    case EvictionKind::kLru: return "lru";
    case EvictionKind::kFifo: return "fifo";
  }
  return "unknown";
}

void QueueEviction::on_insert(const BlockKey& key) {
  auto it = where_.find(key);
  if (it != where_.end()) return;  // already tracked
  order_.push_back(key);
  where_[key] = std::prev(order_.end());
}

void QueueEviction::on_access(const BlockKey& key) {
  if (kind_ != EvictionKind::kLru) return;
  auto it = where_.find(key);
  if (it == where_.end()) return;
  order_.splice(order_.end(), order_, it->second);
}

void QueueEviction::on_remove(const BlockKey& key) {
  auto it = where_.find(key);
  if (it == where_.end()) return;
  order_.erase(it->second);
  where_.erase(it);
}

std::optional<BlockKey> QueueEviction::pick_victim() {
  if (order_.empty()) return std::nullopt;
  const BlockKey key = order_.front();
  order_.pop_front();
  where_.erase(key);
  return key;
}

void QueueEviction::reset() {
  order_.clear();
  where_.clear();
}

std::unique_ptr<EvictionPolicy> make_eviction(EvictionKind kind) {
  return std::make_unique<QueueEviction>(kind);
}

}  // namespace ppfs::cache
