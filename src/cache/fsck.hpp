// ppfs_fsck — a parallel consistency checker for the second-tier cache.
//
// After a crash the journal on each I/O node's cache device may disagree
// with the filesystem truth: torn entries (crash mid-write), entries for
// inodes that no longer exist, stale generations (file recreated under the
// same ino), and bitmap bits beyond a file's current allocation. fsck
// cross-audits every journal entry against the UFS inode table and either
// repairs the entry (clamping out-of-range bits) or quarantines it
// (dropping torn/unknown/stale entries), in the style of pFSCK: the scan is
// sharded across a thread pool, one shard per I/O node.
//
// Determinism: workers only *read* (decode payload copies, compare against
// the truth table); all repairs are applied serially afterwards in shard
// order, and the report/summary are byte-identical regardless of --jobs.
// Serial application also keeps the SimCheck auditor's single-threaded
// bookkeeping safe — repairs route through CacheTier::fsck_* which account
// every cleared bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/tier.hpp"

namespace ppfs::cache {

/// Filesystem truth for one file, as the UFS inode table knows it.
struct FsckFileTruth {
  std::uint32_t ino = 0;
  std::uint64_t generation = 0;
  std::uint64_t block_count = 0;
};

/// One unit of fsck work: one I/O node's tier plus that node's inode truth.
struct FsckShard {
  CacheTier* tier = nullptr;
  std::vector<FsckFileTruth> files;
  std::string label;
};

enum class FsckFindingKind : std::uint8_t {
  kTorn,             // checksum/layout mismatch — crash landed mid-write
  kUnknownIno,       // no such inode in the truth table
  kStaleGeneration,  // inode exists but was recreated since the entry
  kOutOfRange,       // resident bits beyond the file's allocation
};

const char* to_string(FsckFindingKind k) noexcept;

struct FsckFinding {
  std::size_t shard = 0;
  std::uint32_t ino = 0;
  FsckFindingKind kind = FsckFindingKind::kTorn;
  /// For kOutOfRange: how many bits the repair clears.
  std::uint64_t bits_affected = 0;
  /// The repaired bitmap to journal (kOutOfRange only); drops carry none.
  std::optional<CacheFileInfo> repaired;
};

struct FsckShardReport {
  std::string label;
  std::uint64_t entries_checked = 0;
  std::uint64_t torn_dropped = 0;
  std::uint64_t unknown_ino_dropped = 0;
  std::uint64_t stale_generation_dropped = 0;
  std::uint64_t out_of_range_entries = 0;
  std::uint64_t out_of_range_bits_cleared = 0;
  std::uint64_t repairs_applied = 0;
  std::uint64_t unrepaired = 0;
};

struct FsckReport {
  std::vector<FsckShardReport> shards;
  std::uint64_t entries_checked = 0;
  std::uint64_t torn_dropped = 0;
  std::uint64_t unknown_ino_dropped = 0;
  std::uint64_t stale_generation_dropped = 0;
  std::uint64_t out_of_range_entries = 0;
  std::uint64_t out_of_range_bits_cleared = 0;
  std::uint64_t repairs_applied = 0;
  std::uint64_t unrepaired = 0;
  std::uint64_t findings() const noexcept {
    return torn_dropped + unknown_ino_dropped + stale_generation_dropped + out_of_range_entries;
  }
  bool clean() const noexcept { return unrepaired == 0; }
  /// Deterministic multi-line summary (independent of the job count).
  std::string summary() const;
};

/// Scan every shard with up to `jobs` worker threads; when `repair` is true,
/// apply the repairs/quarantines (serially, in shard order) so a second run
/// reports zero findings.
FsckReport run_fsck(std::vector<FsckShard>& shards, unsigned jobs, bool repair);

/// Seed-deterministic corruption injector for tests and `ppfs_fsck
/// --corrupt`: damages `count` journal entries across the shards, cycling
/// through all four finding kinds. Returns a description of each injected
/// corruption (stable for a given seed and shard population).
std::vector<std::string> inject_corruptions(std::vector<FsckShard>& shards,
                                            std::uint64_t seed, std::size_t count);

}  // namespace ppfs::cache
