#include "cache/fsck.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

namespace ppfs::cache {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Audit one shard; pure read (decodes payload copies against the truth
/// map) so shards can run on worker threads without touching shared state.
void scan_shard(std::size_t shard_index, const FsckShard& shard,
                std::vector<FsckFinding>& out) {
  std::map<std::uint32_t, FsckFileTruth> truth;
  for (const FsckFileTruth& f : shard.files) truth[f.ino] = f;

  for (const auto& [ino, entry] : shard.tier->durable_entries()) {
    auto decoded = decode(entry.payload.data(), entry.payload.size());
    if (!decoded || decoded->ino != ino) {
      out.push_back(FsckFinding{shard_index, ino, FsckFindingKind::kTorn, 0, std::nullopt});
      continue;
    }
    const auto tit = truth.find(ino);
    if (tit == truth.end()) {
      out.push_back(
          FsckFinding{shard_index, ino, FsckFindingKind::kUnknownIno, 0, std::nullopt});
      continue;
    }
    if (tit->second.generation != decoded->generation) {
      out.push_back(FsckFinding{shard_index, ino, FsckFindingKind::kStaleGeneration, 0,
                                std::nullopt});
      continue;
    }
    CacheFileInfo repaired = *decoded;
    const std::uint64_t dropped = repaired.clamp(tit->second.block_count);
    if (dropped > 0) {
      out.push_back(FsckFinding{shard_index, ino, FsckFindingKind::kOutOfRange, dropped,
                                std::move(repaired)});
    }
  }
}

}  // namespace

const char* to_string(FsckFindingKind k) noexcept {
  switch (k) {
    case FsckFindingKind::kTorn: return "torn";
    case FsckFindingKind::kUnknownIno: return "unknown-ino";
    case FsckFindingKind::kStaleGeneration: return "stale-generation";
    case FsckFindingKind::kOutOfRange: return "out-of-range";
  }
  return "unknown";
}

std::string FsckReport::summary() const {
  std::ostringstream os;
  os << "fsck: shards=" << shards.size() << " entries=" << entries_checked
     << " findings=" << findings() << " torn=" << torn_dropped
     << " unknown-ino=" << unknown_ino_dropped
     << " stale-gen=" << stale_generation_dropped
     << " out-of-range-entries=" << out_of_range_entries
     << " out-of-range-bits=" << out_of_range_bits_cleared
     << " repaired=" << repairs_applied << " unrepaired=" << unrepaired
     << " clean=" << (clean() ? "yes" : "no") << "\n";
  for (const FsckShardReport& s : shards) {
    os << "  [" << s.label << "] entries=" << s.entries_checked << " torn=" << s.torn_dropped
       << " unknown-ino=" << s.unknown_ino_dropped
       << " stale-gen=" << s.stale_generation_dropped
       << " out-of-range-bits=" << s.out_of_range_bits_cleared
       << " repaired=" << s.repairs_applied << " unrepaired=" << s.unrepaired << "\n";
  }
  return os.str();
}

FsckReport run_fsck(std::vector<FsckShard>& shards, unsigned jobs, bool repair) {
  if (jobs == 0) jobs = 1;

  // Phase 1: parallel scan. Workers claim whole shards (one tier each) via
  // an atomic cursor and write findings into per-shard slots — no locks, no
  // shared mutable state, identical findings regardless of the job count.
  std::vector<std::vector<FsckFinding>> findings(shards.size());
  std::atomic<std::size_t> cursor{0};
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs, shards.empty() ? 1 : shards.size()));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&shards, &findings, &cursor] {
      for (;;) {
        const std::size_t i = cursor.fetch_add(1);
        if (i >= shards.size()) return;
        if (shards[i].tier != nullptr) scan_shard(i, shards[i], findings[i]);
      }
    });
  }
  for (std::thread& t : pool) t.join();

  // Phase 2: serial accounting + repair, in shard order, on the caller's
  // thread (CacheTier::fsck_* feed the single-threaded SimCheck auditor).
  FsckReport report;
  report.shards.resize(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    FsckShardReport& sr = report.shards[i];
    sr.label = shards[i].label;
    sr.entries_checked =
        shards[i].tier ? static_cast<std::uint64_t>(shards[i].tier->durable_entries().size())
                       : 0;
    for (FsckFinding& f : findings[i]) {
      switch (f.kind) {
        case FsckFindingKind::kTorn: ++sr.torn_dropped; break;
        case FsckFindingKind::kUnknownIno: ++sr.unknown_ino_dropped; break;
        case FsckFindingKind::kStaleGeneration: ++sr.stale_generation_dropped; break;
        case FsckFindingKind::kOutOfRange:
          ++sr.out_of_range_entries;
          sr.out_of_range_bits_cleared += f.bits_affected;
          break;
      }
      if (!repair) {
        ++sr.unrepaired;
        continue;
      }
      if (f.kind == FsckFindingKind::kOutOfRange && f.repaired) {
        shards[i].tier->fsck_rewrite(f.ino, *f.repaired);
      } else {
        shards[i].tier->fsck_drop(f.ino);
      }
      ++sr.repairs_applied;
    }
    report.entries_checked += sr.entries_checked;
    report.torn_dropped += sr.torn_dropped;
    report.unknown_ino_dropped += sr.unknown_ino_dropped;
    report.stale_generation_dropped += sr.stale_generation_dropped;
    report.out_of_range_entries += sr.out_of_range_entries;
    report.out_of_range_bits_cleared += sr.out_of_range_bits_cleared;
    report.repairs_applied += sr.repairs_applied;
    report.unrepaired += sr.unrepaired;
  }
  return report;
}

std::vector<std::string> inject_corruptions(std::vector<FsckShard>& shards,
                                            std::uint64_t seed, std::size_t count) {
  // Candidate journal entries in deterministic (shard, ino) order.
  std::vector<std::pair<std::size_t, std::uint32_t>> entries;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (!shards[i].tier) continue;
    for (const auto& [ino, entry] : shards[i].tier->durable_entries()) {
      entries.emplace_back(i, ino);
    }
  }

  std::vector<std::string> injected;
  if (entries.empty()) return injected;
  std::uint64_t rng = seed;
  for (std::size_t n = 0; n < count; ++n) {
    rng = splitmix64(rng);
    const auto [shard, ino] = entries[rng % entries.size()];
    CacheTier& tier = *shards[shard].tier;
    std::uint32_t target = ino;
    const char* what = "";
    switch (n % 4) {
      case 0:  // torn write: checksum mismatch
        tier.debug_corrupt_payload(ino);
        what = "torn";
        break;
      case 1: {  // stale generation
        const auto it = tier.durable_entries().find(ino);
        auto decoded =
            it != tier.durable_entries().end()
                ? decode(it->second.payload.data(), it->second.payload.size())
                : std::nullopt;
        if (decoded) {
          decoded->generation += 12345;
          tier.debug_replace_entry(ino, *decoded);
          what = "stale-generation";
        } else {
          tier.debug_corrupt_payload(ino);
          what = "torn";
        }
        break;
      }
      case 2: {  // out-of-range bits beyond the file's allocation
        const auto it = tier.durable_entries().find(ino);
        auto decoded =
            it != tier.durable_entries().end()
                ? decode(it->second.payload.data(), it->second.payload.size())
                : std::nullopt;
        if (decoded) {
          decoded->set(decoded->block_count + 2);
          decoded->set(decoded->block_count + 5);
          tier.debug_replace_entry(ino, *decoded);
          what = "out-of-range";
        } else {
          tier.debug_corrupt_payload(ino);
          what = "torn";
        }
        break;
      }
      default: {  // entry for an inode that does not exist
        CacheFileInfo ghost;
        ghost.ino = 9000000u + static_cast<std::uint32_t>(n);
        ghost.generation = 1;
        ghost.set(0);
        ghost.set(1);
        tier.debug_replace_entry(ghost.ino, ghost);
        target = ghost.ino;
        what = "unknown-ino";
        break;
      }
    }
    injected.push_back("[" + shards[shard].label + "] ino=" + std::to_string(target) + " " +
                       what);
  }
  return injected;
}

}  // namespace ppfs::cache
