// CacheTier — the per-I/O-node persistent second-tier block cache.
//
// Sits between the UFS buffer cache and the RAID array: block-aligned data
// that has travelled the disk path once (demand fills and write-through
// writes both) is also resident on a node-local cache device, modeled as a
// flash-like channel (fixed latency + bandwidth, FIFO capacity-1 queue).
// A later read of a resident block is served at cache-device speed instead
// of paying the RAID path again.
//
// What makes the tier interesting is what survives a crash. Residency
// METADATA — the per-file downloaded-block bitmap (CacheFileInfo) — is
// journaled through the cache device: every `journal_flush_interval` bit
// mutations the file's entry is rewritten as one journal write. A crash
// throws away the volatile bitmap; restart replays the journal, dropping
//   * torn entries   — the crash landed mid-write; the checksum fails,
//   * stale entries  — the inode generation no longer matches (the file
//                      was deleted/recreated under the entry),
//   * out-of-range bits — blocks beyond the file's current allocation,
// and resumes serving the warm blocks that remain. Block DATA is not
// duplicated here: the simulator's ContentStore is the single byte-truth
// for the medium, so a recovered bitmap bit is sufficient to serve the
// current bytes (the tier is strictly write-through, never dirty).
//
// Determinism: all state is keyed by (ino, logical block) in ordered maps,
// eviction is queue-based, and journal flushes ride the simulation's own
// event loop — runs with the tier on replay bit-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/eviction.hpp"
#include "cache/info.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/types.hpp"

namespace ppfs::cache {

struct CacheTierParams {
  bool enabled = false;
  ByteCount block_bytes = 64 * 1024;
  /// Tier capacity in blocks (per I/O node).
  std::uint64_t capacity_blocks = 1024;
  /// Cache device service model: fixed latency plus bytes/bandwidth, one
  /// transfer at a time (FIFO). Faster than the RAID path by construction.
  double device_latency = 0.2e-3;
  double device_bandwidth = 120.0e6;  // bytes/second
  /// Journal the bitmap after this many bit mutations per file.
  std::uint32_t journal_flush_interval = 8;
  EvictionKind eviction = EvictionKind::kLru;
};

struct CacheTierStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t journal_flushes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t recovered_blocks = 0;
  std::uint64_t torn_entries_dropped = 0;
  std::uint64_t stale_entries_dropped = 0;
  std::uint64_t out_of_range_bits_dropped = 0;
  /// Window since the last recover() — the warm-restart hit ratio.
  std::uint64_t warm_lookups = 0;
  std::uint64_t warm_hits = 0;
  sim::ByteCount bytes_served = 0;
  sim::SimTime last_recovery_time = 0;
  sim::SimTime total_recovery_time = 0;

  double hit_ratio() const {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
  }
  double warm_hit_ratio() const {
    return warm_lookups ? static_cast<double>(warm_hits) / static_cast<double>(warm_lookups)
                        : 0.0;
  }
};

class CacheTier {
 public:
  /// `gen_of` maps an inode number to its current generation (0 = unknown
  /// inode); `blocks_of` to its current allocated block count. Both are
  /// supplied by the owning UFS so the tier never reaches into its tables.
  using InodeQuery = std::function<std::uint64_t(std::uint32_t ino)>;

  /// One journaled bitmap entry as it sits on the cache device.
  struct DurableEntry {
    std::vector<std::byte> payload;
    /// False while a journal write is in flight; a crash during that
    /// window scrambles the payload so decode() sees a torn entry.
    bool write_complete = true;
  };

  CacheTier(sim::Simulation& sim, std::string name, CacheTierParams params,
            InodeQuery gen_of, InodeQuery blocks_of);
  CacheTier(const CacheTier&) = delete;
  CacheTier& operator=(const CacheTier&) = delete;
  ~CacheTier();

  bool enabled() const noexcept { return params_.enabled; }
  const CacheTierParams& params() const noexcept { return params_; }
  const std::string& name() const noexcept { return name_; }

  // --- data path (UFS hooks) ---
  /// Silent residency probe (no stats) for the serve-or-not decision.
  bool resident(std::uint32_t ino, std::uint64_t lblock) const noexcept;
  /// Account one block served from the tier (stats + eviction recency).
  void note_hit(std::uint32_t ino, std::uint64_t lblock);
  /// Account `count` blocks that had to go to the RAID path.
  void note_miss_blocks(std::uint64_t count);
  /// Timed cache-device read of `blocks` contiguous tier blocks.
  sim::Task<void> read_hit(std::uint64_t blocks);
  /// Write-through population: mark the block resident and journal per
  /// policy. Non-blocking — the journal write rides a spawned process.
  void insert(std::uint32_t ino, std::uint64_t generation, std::uint64_t lblock);

  // --- fault integration (PfsServer hooks) ---
  /// Crash epoch: volatile residency is lost; journal writes in flight
  /// become torn entries.
  void on_crash();
  /// Replay the journal from the cache device (timed), dropping torn,
  /// stale-generation, and out-of-range state, and rebuild the volatile
  /// bitmap so warm blocks serve again. Resets the warm-hit window.
  sim::Task<void> recover();

  // --- fsck / introspection ---
  const std::map<std::uint32_t, DurableEntry>& durable_entries() const noexcept {
    return durable_;
  }
  const std::map<std::uint32_t, CacheFileInfo>& resident_info() const noexcept {
    return info_;
  }
  std::uint64_t resident_blocks() const noexcept { return resident_blocks_; }
  /// Drop a file's entry everywhere (journal + volatile) — fsck quarantine.
  void fsck_drop(std::uint32_t ino);
  /// Replace a file's journal entry with a repaired bitmap and reconcile
  /// the volatile view down to it (bits the repair cleared stop serving).
  void fsck_rewrite(std::uint32_t ino, const CacheFileInfo& repaired);

  // --- seeded corruption (tests, ppfs_fsck --corrupt) ---
  void debug_corrupt_payload(std::uint32_t ino);
  void debug_replace_entry(std::uint32_t ino, const CacheFileInfo& info);
  void debug_insert_raw(std::uint32_t ino, std::vector<std::byte> payload);

  const CacheTierStats& stats() const noexcept { return stats_; }

 private:
  sim::Task<void> flush_journal(std::uint32_t ino);
  sim::Task<void> transfer(ByteCount bytes);
  void mark_dirty(std::uint32_t ino);
  void evict_to_capacity();
  /// Clear one volatile bit with full accounting; returns true if it was set.
  bool drop_bit(std::uint32_t ino, std::uint64_t lblock);
  void drop_entry_volatile(std::uint32_t ino);
  sim::check::Auditor* auditor() const noexcept { return sim_.auditor(); }

  sim::Simulation& sim_;
  std::string name_;
  CacheTierParams params_;
  InodeQuery gen_of_;
  InodeQuery blocks_of_;
  sim::Resource channel_;  // the cache device: one transfer at a time

  std::map<std::uint32_t, CacheFileInfo> info_;      // volatile residency
  std::map<std::uint32_t, DurableEntry> durable_;    // the on-"disk" journal
  std::map<std::uint32_t, std::uint32_t> dirty_;     // bit mutations since flush
  std::map<std::uint32_t, bool> flush_in_flight_;
  std::unique_ptr<EvictionPolicy> eviction_;
  std::uint64_t resident_blocks_ = 0;
  std::uint64_t crash_count_ = 0;
  CacheTierStats stats_;
};

}  // namespace ppfs::cache
