#include "cache/tier.hpp"

#include <utility>

namespace ppfs::cache {

CacheTier::CacheTier(sim::Simulation& sim, std::string name, CacheTierParams params,
                     InodeQuery gen_of, InodeQuery blocks_of)
    : sim_(sim),
      name_(std::move(name)),
      params_(params),
      gen_of_(std::move(gen_of)),
      blocks_of_(std::move(blocks_of)),
      channel_(sim, 1),
      eviction_(make_eviction(params.eviction)) {}

CacheTier::~CacheTier() {
  if (auto* a = auditor()) {
    a->check_cache_bitmap_conservation(sim_.now(), this, resident_blocks_,
                                       /*in_destructor=*/true);
  }
}

// --- data path --------------------------------------------------------------

bool CacheTier::resident(std::uint32_t ino, std::uint64_t lblock) const noexcept {
  const auto it = info_.find(ino);
  return it != info_.end() && it->second.test(lblock);
}

void CacheTier::note_hit(std::uint32_t ino, std::uint64_t lblock) {
  ++stats_.lookups;
  ++stats_.hits;
  ++stats_.warm_lookups;
  ++stats_.warm_hits;
  stats_.bytes_served += params_.block_bytes;
  eviction_->on_access(BlockKey{ino, lblock});
}

void CacheTier::note_miss_blocks(std::uint64_t count) {
  stats_.lookups += count;
  stats_.misses += count;
  stats_.warm_lookups += count;
}

sim::Task<void> CacheTier::read_hit(std::uint64_t blocks) {
  co_await transfer(blocks * params_.block_bytes);
}

sim::Task<void> CacheTier::transfer(ByteCount bytes) {
  auto guard = co_await channel_.acquire();
  const sim::SimTime t =
      params_.device_latency + static_cast<double>(bytes) / params_.device_bandwidth;
  channel_.note_busy(t);
  co_await sim_.delay(t);
}

void CacheTier::insert(std::uint32_t ino, std::uint64_t generation, std::uint64_t lblock) {
  auto it = info_.find(ino);
  if (it != info_.end() && it->second.generation != generation) {
    // The file was recreated under this ino; the old residency is dead.
    drop_entry_volatile(ino);
    it = info_.end();
  }
  if (it == info_.end()) {
    CacheFileInfo fresh;
    fresh.ino = ino;
    fresh.generation = generation;
    it = info_.emplace(ino, std::move(fresh)).first;
  }
  if (it->second.set(lblock)) {
    ++resident_blocks_;
    ++stats_.inserts;
    if (auto* a = auditor()) a->on_cache_bit_set(this);
    eviction_->on_insert(BlockKey{ino, lblock});
    mark_dirty(ino);
    evict_to_capacity();
  } else {
    // Rewrite of an already-resident block refreshes its recency only.
    eviction_->on_access(BlockKey{ino, lblock});
  }
}

// --- journal ----------------------------------------------------------------

void CacheTier::mark_dirty(std::uint32_t ino) {
  if (++dirty_[ino] < params_.journal_flush_interval) return;
  if (flush_in_flight_[ino]) return;  // next mutation after the flush re-arms
  dirty_[ino] = 0;
  flush_in_flight_[ino] = true;
  sim_.spawn(flush_journal(ino));
}

sim::Task<void> CacheTier::flush_journal(std::uint32_t ino) {
  const auto it = info_.find(ino);
  if (it == info_.end()) {
    flush_in_flight_[ino] = false;
    co_return;
  }
  // Snapshot-then-write: the durable entry holds the bytes now in flight;
  // until the timed write lands it is incomplete, and a crash in that window
  // leaves it torn on the medium.
  std::vector<std::byte> payload = encode(it->second);
  const std::size_t bytes = payload.size();
  durable_[ino] = DurableEntry{std::move(payload), /*write_complete=*/false};
  const std::uint64_t epoch = crash_count_;
  ++stats_.journal_flushes;
  co_await transfer(bytes);
  if (crash_count_ == epoch) {
    const auto dit = durable_.find(ino);
    if (dit != durable_.end() && !dit->second.write_complete) {
      dit->second.write_complete = true;
    }
  }
  flush_in_flight_[ino] = false;
}

// --- capacity ---------------------------------------------------------------

void CacheTier::evict_to_capacity() {
  while (resident_blocks_ > params_.capacity_blocks) {
    const auto victim = eviction_->pick_victim();
    if (!victim) break;  // accounting drift; conservation check will flag it
    if (drop_bit(victim->ino, victim->lblock)) {
      ++stats_.evictions;
      mark_dirty(victim->ino);
    }
  }
}

bool CacheTier::drop_bit(std::uint32_t ino, std::uint64_t lblock) {
  const auto it = info_.find(ino);
  if (it == info_.end() || !it->second.clear(lblock)) return false;
  --resident_blocks_;
  if (auto* a = auditor()) a->on_cache_bit_cleared(this);
  return true;
}

void CacheTier::drop_entry_volatile(std::uint32_t ino) {
  const auto it = info_.find(ino);
  if (it == info_.end()) return;
  const std::uint64_t pop = it->second.popcount();
  for (std::uint64_t b = 0; b < it->second.block_count; ++b) {
    if (it->second.test(b)) eviction_->on_remove(BlockKey{ino, b});
  }
  resident_blocks_ -= pop;
  if (pop > 0) {
    if (auto* a = auditor()) a->on_cache_bit_cleared(this, pop);
  }
  info_.erase(it);
  dirty_.erase(ino);
}

// --- fault integration ------------------------------------------------------

void CacheTier::on_crash() {
  ++crash_count_;
  // Journal writes caught mid-flight are torn on the medium: scramble the
  // payload's tail (breaking the checksum) and freeze it — those bytes are
  // what recovery and fsck will actually read back.
  for (auto& [ino, entry] : durable_) {
    if (!entry.write_complete) {
      if (!entry.payload.empty()) entry.payload.back() ^= std::byte{0xff};
      entry.write_complete = true;
    }
  }
  // Volatile residency is gone.
  if (resident_blocks_ > 0) {
    if (auto* a = auditor()) a->on_cache_bit_cleared(this, resident_blocks_);
  }
  info_.clear();
  resident_blocks_ = 0;
  eviction_->reset();
  dirty_.clear();
  // flush_in_flight_ flags are left for their coroutines to clear; the epoch
  // bump above stops them from marking the torn entries complete.
}

sim::Task<void> CacheTier::recover() {
  const sim::SimTime t0 = sim_.now();
  const std::uint64_t epoch = crash_count_;
  ++stats_.recoveries;
  // The warm-restart window opens the moment replay begins, not when it
  // ends: recover() awaits the journal transfers below, and lookups served
  // concurrently during that replay window are part of the warm restart.
  // Zeroing these counters at the end instead used to silently drop every
  // hit the tier served while still replaying.
  stats_.warm_lookups = 0;
  stats_.warm_hits = 0;

  std::vector<std::uint32_t> inos;
  inos.reserve(durable_.size());
  for (const auto& [ino, entry] : durable_) inos.push_back(ino);

  std::uint64_t installed = 0;
  for (const std::uint32_t ino : inos) {
    const auto dit = durable_.find(ino);
    if (dit == durable_.end()) continue;
    const std::vector<std::byte> payload = dit->second.payload;
    co_await transfer(payload.size());
    if (crash_count_ != epoch) co_return;  // crashed again mid-recovery

    auto decoded = decode(payload.data(), payload.size());
    if (!decoded) {
      ++stats_.torn_entries_dropped;
      durable_.erase(ino);
      continue;
    }
    const std::uint64_t gen = gen_of_(ino);
    if (gen == 0 || gen != decoded->generation || decoded->ino != ino) {
      ++stats_.stale_entries_dropped;
      durable_.erase(ino);
      continue;
    }
    stats_.out_of_range_bits_dropped += decoded->clamp(blocks_of_(ino));
    const std::uint64_t pop = decoded->popcount();
    if (pop == 0) {
      durable_.erase(ino);
      continue;
    }
    // Re-journal the installed view (clamping may have changed it) and
    // rebuild volatile state in deterministic (ino, block) order.
    durable_[ino] = DurableEntry{encode(*decoded), /*write_complete=*/true};
    for (std::uint64_t b = 0; b < decoded->block_count; ++b) {
      if (decoded->test(b)) eviction_->on_insert(BlockKey{ino, b});
    }
    resident_blocks_ += pop;
    installed += pop;
    if (auto* a = auditor()) a->on_cache_bit_set(this, pop);
    info_[ino] = std::move(*decoded);
  }
  evict_to_capacity();

  stats_.recovered_blocks += installed;
  stats_.last_recovery_time = sim_.now() - t0;
  stats_.total_recovery_time += stats_.last_recovery_time;
}

// --- fsck -------------------------------------------------------------------

void CacheTier::fsck_drop(std::uint32_t ino) {
  durable_.erase(ino);
  drop_entry_volatile(ino);
}

void CacheTier::fsck_rewrite(std::uint32_t ino, const CacheFileInfo& repaired) {
  durable_[ino] = DurableEntry{encode(repaired), /*write_complete=*/true};
  const auto it = info_.find(ino);
  if (it == info_.end()) return;
  // Reconcile the serving view down to the repaired bitmap: bits the repair
  // cleared must stop serving (fsck never invents residency).
  for (std::uint64_t b = 0; b < it->second.block_count; ++b) {
    if (it->second.test(b) && !repaired.test(b)) {
      eviction_->on_remove(BlockKey{ino, b});
      drop_bit(ino, b);
    }
  }
}

// --- seeded corruption ------------------------------------------------------

void CacheTier::debug_corrupt_payload(std::uint32_t ino) {
  const auto it = durable_.find(ino);
  if (it == durable_.end() || it->second.payload.empty()) return;
  it->second.payload.back() ^= std::byte{0xff};  // checksum no longer matches
}

void CacheTier::debug_replace_entry(std::uint32_t ino, const CacheFileInfo& info) {
  durable_[ino] = DurableEntry{encode(info), /*write_complete=*/true};
}

void CacheTier::debug_insert_raw(std::uint32_t ino, std::vector<std::byte> payload) {
  durable_[ino] = DurableEntry{std::move(payload), /*write_complete=*/true};
}

}  // namespace ppfs::cache
