#include "cache/info.hpp"

#include <bit>
#include <cstring>

namespace ppfs::cache {

namespace {

// Header layout in words: magic, ino, generation, block_count, word_count,
// checksum. The checksum word is last so encode can hash everything before
// it in one pass.
constexpr std::size_t kHeaderWords = 6;
constexpr std::size_t kChecksumWord = 5;

}  // namespace

std::uint64_t info_checksum(const std::uint64_t* words, std::size_t count) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < count; ++i) {
    h ^= words[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void CacheFileInfo::cover(std::uint64_t blocks) {
  if (blocks > block_count) block_count = blocks;
  const std::uint64_t words = (block_count + 63) / 64;
  if (bits.size() < words) bits.resize(words, 0);
}

bool CacheFileInfo::set(std::uint64_t lblock) {
  cover(lblock + 1);
  std::uint64_t& w = bits[lblock / 64];
  const std::uint64_t mask = 1ull << (lblock % 64);
  if (w & mask) return false;
  w |= mask;
  return true;
}

bool CacheFileInfo::clear(std::uint64_t lblock) noexcept {
  const std::uint64_t word = lblock / 64;
  if (word >= bits.size()) return false;
  const std::uint64_t mask = 1ull << (lblock % 64);
  if (!(bits[word] & mask)) return false;
  bits[word] &= ~mask;
  return true;
}

std::uint64_t CacheFileInfo::popcount() const noexcept {
  std::uint64_t n = 0;
  for (std::uint64_t w : bits) n += static_cast<std::uint64_t>(std::popcount(w));
  return n;
}

std::uint64_t CacheFileInfo::clamp(std::uint64_t blocks) noexcept {
  std::uint64_t dropped = 0;
  for (std::uint64_t b = blocks; b < block_count; ++b) {
    if (clear(b)) ++dropped;
  }
  if (block_count > blocks) block_count = blocks;
  return dropped;
}

std::vector<std::byte> encode(const CacheFileInfo& info) {
  std::vector<std::uint64_t> words(kHeaderWords + info.bits.size(), 0);
  words[0] = kInfoMagic;
  words[1] = info.ino;
  words[2] = info.generation;
  words[3] = info.block_count;
  words[4] = info.bits.size();
  for (std::size_t i = 0; i < info.bits.size(); ++i) words[kHeaderWords + i] = info.bits[i];
  // Hash everything but the checksum slot itself (header words 0..4 plus
  // the bitmap), then drop the sum into the slot.
  const std::uint64_t bitmap_sum =
      info_checksum(words.data() + kHeaderWords, info.bits.size());
  words[kChecksumWord] = info_checksum(words.data(), kChecksumWord) ^ bitmap_sum;

  std::vector<std::byte> out(words.size() * sizeof(std::uint64_t));
  std::memcpy(out.data(), words.data(), out.size());
  return out;
}

std::optional<CacheFileInfo> decode(const std::byte* data, std::size_t size) {
  if (size < kHeaderWords * sizeof(std::uint64_t) || size % sizeof(std::uint64_t) != 0) {
    return std::nullopt;
  }
  std::vector<std::uint64_t> words(size / sizeof(std::uint64_t));
  std::memcpy(words.data(), data, size);
  if (words[0] != kInfoMagic) return std::nullopt;
  const std::uint64_t word_count = words[4];
  if (words.size() != kHeaderWords + word_count) return std::nullopt;
  const std::uint64_t expect = info_checksum(words.data(), kChecksumWord) ^
                               info_checksum(words.data() + kHeaderWords, word_count);
  if (words[kChecksumWord] != expect) return std::nullopt;  // torn write

  CacheFileInfo info;
  info.ino = static_cast<std::uint32_t>(words[1]);
  info.generation = words[2];
  info.block_count = words[3];
  info.bits.assign(words.begin() + kHeaderWords, words.end());
  return info;
}

}  // namespace ppfs::cache
