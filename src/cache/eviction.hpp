// Pluggable eviction for the second-tier block cache.
//
// The tier tracks residency at (ino, logical block) granularity; when an
// insert would exceed the configured capacity it asks the policy for a
// victim. Policies are deterministic — victim choice depends only on the
// access/insert sequence, never on addresses or wall-clock — so runs with
// the tier enabled replay bit-identically.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>

namespace ppfs::cache {

/// One resident tier block.
struct BlockKey {
  std::uint32_t ino = 0;
  std::uint64_t lblock = 0;

  friend bool operator<(const BlockKey& a, const BlockKey& b) noexcept {
    return a.ino != b.ino ? a.ino < b.ino : a.lblock < b.lblock;
  }
  friend bool operator==(const BlockKey& a, const BlockKey& b) noexcept {
    return a.ino == b.ino && a.lblock == b.lblock;
  }
};

enum class EvictionKind : std::uint8_t {
  kLru,   // least-recently-used (hits refresh recency)
  kFifo,  // insertion order (hits do not protect a block)
};

const char* to_string(EvictionKind k) noexcept;

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;
  virtual void on_insert(const BlockKey& key) = 0;
  virtual void on_access(const BlockKey& key) = 0;
  virtual void on_remove(const BlockKey& key) = 0;
  /// Choose (and forget) the next victim; nullopt when nothing is tracked.
  virtual std::optional<BlockKey> pick_victim() = 0;
  virtual void reset() = 0;
};

/// LRU and FIFO share the queue representation; LRU additionally moves a
/// block to the tail on access.
class QueueEviction final : public EvictionPolicy {
 public:
  explicit QueueEviction(EvictionKind kind) : kind_(kind) {}

  void on_insert(const BlockKey& key) override;
  void on_access(const BlockKey& key) override;
  void on_remove(const BlockKey& key) override;
  std::optional<BlockKey> pick_victim() override;
  void reset() override;

 private:
  EvictionKind kind_;
  std::list<BlockKey> order_;  // front = next victim
  std::map<BlockKey, std::list<BlockKey>::iterator> where_;
};

std::unique_ptr<EvictionPolicy> make_eviction(EvictionKind kind);

}  // namespace ppfs::cache
