#include "ufs/block_store.hpp"

#include <algorithm>
#include <cstring>

namespace ppfs::ufs {

void ContentStore::write(FileOffset offset, std::span<const std::byte> data) {
  FileOffset pos = offset;
  std::size_t done = 0;
  while (done < data.size()) {
    const std::uint64_t chunk_idx = pos / chunk_;
    const ByteCount in_chunk = pos % chunk_;
    const std::size_t n =
        std::min<std::size_t>(data.size() - done, static_cast<std::size_t>(chunk_ - in_chunk));
    auto& chunk = chunks_[chunk_idx];
    if (!chunk) {
      chunk = std::make_unique<std::byte[]>(chunk_);
      std::memset(chunk.get(), 0, chunk_);
    }
    std::memcpy(chunk.get() + in_chunk, data.data() + done, n);
    pos += n;
    done += n;
  }
}

void ContentStore::read(FileOffset offset, std::span<std::byte> out) const {
  FileOffset pos = offset;
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t chunk_idx = pos / chunk_;
    const ByteCount in_chunk = pos % chunk_;
    const std::size_t n =
        std::min<std::size_t>(out.size() - done, static_cast<std::size_t>(chunk_ - in_chunk));
    auto it = chunks_.find(chunk_idx);
    if (it == chunks_.end()) {
      std::memset(out.data() + done, 0, n);
    } else {
      std::memcpy(out.data() + done, it->second.get() + in_chunk, n);
    }
    pos += n;
    done += n;
  }
}

}  // namespace ppfs::ufs
