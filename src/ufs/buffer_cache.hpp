// The I/O-node file-system buffer cache (LRU, write-through).
//
// This is the cache the Paragon PFS *bypasses* when buffering is disabled:
// "the file system buffer cache on the Paragon OS server is bypassed ...
// Instead, Fast Path reads data directly from the disks to the user's
// buffer". It still serves the buffered path (partial blocks, M_GLOBAL
// re-reads, metadata-ish traffic).
//
// Concurrency: a miss installs a "filling" entry before the disk read, so
// simultaneous readers of one block issue a single disk access and the
// latecomers wait on the entry's completion event. Filling entries are
// never evicted; eviction is LRU over valid entries and may briefly be
// deferred if every entry is mid-fill.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>

#include "sim/event.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/types.hpp"

namespace ppfs::ufs {

using sim::ByteCount;

class BufferCache {
 public:
  /// Loads the given physical block from the device into `dest`
  /// (dest.size() == block_bytes).
  using FillFn = std::function<sim::Task<void>(std::uint64_t phys, std::span<std::byte> dest)>;
  /// Writes the given physical block image back to the device.
  using FlushFn =
      std::function<sim::Task<void>(std::uint64_t phys, std::span<const std::byte> src)>;

  BufferCache(sim::Simulation& s, std::size_t capacity_blocks, ByteCount block_bytes,
              FillFn fill, FlushFn flush);
  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  /// Copy the block's first out.size() bytes (offset `offset_in_block`)
  /// into `out`, loading it from the device on a miss.
  sim::Task<void> read(std::uint64_t phys, ByteCount offset_in_block, std::span<std::byte> out);

  /// Write-through: update the cached image (write-allocate; a partial
  /// write of a cold block fills it first) and flush to the device.
  sim::Task<void> write(std::uint64_t phys, ByteCount offset_in_block,
                        std::span<const std::byte> in);

  /// Drop a block if present (used when a file is deleted).
  void invalidate(std::uint64_t phys);

  /// Drop every valid block — an I/O node restart comes back with a cold
  /// cache. Entries mid-fill are kept; their fills land normally.
  void clear();

  bool contains(std::uint64_t phys) const { return entries_.count(phys) != 0; }
  std::size_t resident_blocks() const noexcept { return entries_.size(); }
  std::size_t capacity_blocks() const noexcept { return capacity_; }
  ByteCount block_bytes() const noexcept { return block_bytes_; }

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t fill_waits() const noexcept { return fill_waits_; }
  std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  struct Entry {
    std::unique_ptr<std::byte[]> data;
    bool valid = false;                     // false while filling
    std::unique_ptr<sim::Event> filling;    // waiters queue here during fill
    std::list<std::uint64_t>::iterator lru; // position in lru_ when valid
  };

  /// Returns an entry that is valid (waiting for a fill if necessary).
  sim::Task<void> ensure_valid(std::uint64_t phys);
  void touch(std::uint64_t phys, Entry& e);
  void evict_if_needed();

  sim::Simulation& sim_;
  std::size_t capacity_;
  ByteCount block_bytes_;
  FillFn fill_;
  FlushFn flush_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  // front = most recent

  std::uint64_t hits_ = 0, misses_ = 0, fill_waits_ = 0, evictions_ = 0;
};

}  // namespace ppfs::ufs
