// Device-level byte content, and the device timing interface.
//
// The simulator separates WHEN data moves (BlockDevice::transfer — mechanical
// timing, modeled by hw::RaidArray) from WHAT the bytes are (ContentStore —
// a sparse in-memory image of the medium). Every read in the stack returns
// real bytes, so integrity tests catch addressing bugs end-to-end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "hw/raid.hpp"
#include "sim/task.hpp"
#include "sim/types.hpp"

namespace ppfs::ufs {

using sim::ByteCount;
using sim::FileOffset;

/// Timing interface to a storage device (sector-addressed).
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;
  /// Suspend the caller for the duration of moving `bytes` at `sector`.
  virtual sim::Task<void> transfer(std::uint64_t sector, ByteCount bytes, bool write) = 0;
  virtual ByteCount capacity_bytes() const = 0;
  virtual std::uint32_t sector_bytes() const = 0;
};

/// Adaptor: an hw::RaidArray as a BlockDevice.
class RaidBlockDevice final : public BlockDevice {
 public:
  explicit RaidBlockDevice(hw::RaidArray& raid) : raid_(raid) {}
  sim::Task<void> transfer(std::uint64_t sector, ByteCount bytes, bool write) override {
    return raid_.transfer(sector, bytes, write);
  }
  ByteCount capacity_bytes() const override { return raid_.capacity_bytes(); }
  std::uint32_t sector_bytes() const override {
    return raid_.params().disk.sector_bytes;
  }

 private:
  hw::RaidArray& raid_;
};

/// Zero-latency device for unit tests of the layers above.
class NullBlockDevice final : public BlockDevice {
 public:
  explicit NullBlockDevice(sim::Simulation& s, ByteCount capacity = 1ull << 32)
      : sim_(s), capacity_(capacity) {}
  sim::Task<void> transfer(std::uint64_t, ByteCount bytes, bool write) override {
    ++ops_;
    bytes_ += bytes;
    if (write) ++writes_;
    co_await sim_.delay(0);
  }
  ByteCount capacity_bytes() const override { return capacity_; }
  std::uint32_t sector_bytes() const override { return 512; }

  std::uint64_t ops() const noexcept { return ops_; }
  std::uint64_t writes() const noexcept { return writes_; }
  ByteCount bytes() const noexcept { return bytes_; }

 private:
  sim::Simulation& sim_;
  ByteCount capacity_;
  std::uint64_t ops_ = 0, writes_ = 0;
  ByteCount bytes_ = 0;
};

/// Sparse byte image of a device. Unwritten ranges read back as zero.
class ContentStore {
 public:
  explicit ContentStore(ByteCount chunk_bytes = 64 * 1024) : chunk_(chunk_bytes) {}

  void write(FileOffset offset, std::span<const std::byte> data);
  void read(FileOffset offset, std::span<std::byte> out) const;

  std::size_t chunk_count() const noexcept { return chunks_.size(); }
  ByteCount chunk_bytes() const noexcept { return chunk_; }

 private:
  ByteCount chunk_;
  std::unordered_map<std::uint64_t, std::unique_ptr<std::byte[]>> chunks_;
};

}  // namespace ppfs::ufs
