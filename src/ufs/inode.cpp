#include "ufs/inode.hpp"

#include <stdexcept>

namespace ppfs::ufs {

BlockAllocator::BlockAllocator(std::uint64_t total_blocks) : used_(total_blocks, false) {
  if (total_blocks == 0) throw std::invalid_argument("BlockAllocator: zero blocks");
}

std::optional<std::uint64_t> BlockAllocator::allocate(std::uint64_t hint) {
  if (allocated_ == used_.size()) return std::nullopt;
  const std::uint64_t n = used_.size();
  const std::uint64_t start = hint < n ? hint : 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t b = (start + i) % n;
    if (!used_[b]) {
      used_[b] = true;
      ++allocated_;
      return b;
    }
  }
  return std::nullopt;
}

void BlockAllocator::free(std::uint64_t block) {
  if (!used_.at(block)) throw std::logic_error("BlockAllocator: double free");
  used_[block] = false;
  --allocated_;
}

InodeNum InodeTable::create(const std::string& name) {
  if (directory_.count(name)) throw std::invalid_argument("InodeTable: file exists: " + name);
  const InodeNum ino = next_ino_++;
  inodes_[ino] = Inode{ino, next_generation_++, 0, {}};
  directory_[name] = ino;
  return ino;
}

InodeNum InodeTable::lookup(const std::string& name) const {
  auto it = directory_.find(name);
  return it == directory_.end() ? kInvalidInode : it->second;
}

void InodeTable::remove(const std::string& name) {
  auto it = directory_.find(name);
  if (it == directory_.end()) throw std::invalid_argument("InodeTable: no such file: " + name);
  inodes_.erase(it->second);
  directory_.erase(it);
}

Inode& InodeTable::get(InodeNum ino) {
  auto it = inodes_.find(ino);
  if (it == inodes_.end()) throw std::out_of_range("InodeTable: bad inode");
  return it->second;
}

const Inode& InodeTable::get(InodeNum ino) const {
  auto it = inodes_.find(ino);
  if (it == inodes_.end()) throw std::out_of_range("InodeTable: bad inode");
  return it->second;
}

}  // namespace ppfs::ufs
