// Ufs: the Unix File System instance running on one I/O node.
//
// The Paragon PFS "stripes the files across a group of regular Unix File
// Systems (UFS) which are located on distinct storage devices"; this class
// is one of those UFS instances. It provides:
//
//  * create/lookup over a flat directory,
//  * contiguity-seeking block allocation,
//  * a buffered read/write path through the LRU buffer cache (partial /
//    unaligned requests pay an extra staging copy, the overhead the paper
//    attributes to "creating temporary buffers for the size of the partial
//    blocks and copying only the necessary data"),
//  * a Fast Path for block-aligned transfers: cache bypassed, data moves
//    device<->user buffer directly, with contiguous-run coalescing so a
//    multi-block request on a contiguous file costs one disk access.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cache/tier.hpp"
#include "hw/node.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"
#include "ufs/block_store.hpp"
#include "ufs/buffer_cache.hpp"
#include "ufs/inode.hpp"

namespace ppfs::ufs {

using sim::FileOffset;

struct UfsParams {
  /// File system block size; 64 KB was the Paragon PFS default.
  ByteCount block_bytes = 64 * 1024;
  std::size_t cache_blocks = 128;
  /// Merge physically-contiguous block runs into single disk accesses.
  bool coalesce = true;
  /// SERVER-side readahead: after a buffered read finishes at file block b,
  /// asynchronously pull blocks b+1..b+readahead_blocks into the buffer
  /// cache. This is the classic uniprocessor strategy the paper contrasts
  /// with client-side prefetching — it only helps the buffered path (the
  /// Fast Path bypasses the cache by design) and it cannot see the
  /// per-compute-node interleave the client-side engine exploits.
  std::uint32_t readahead_blocks = 0;
  /// Persistent second-tier block cache (off by default; when off the data
  /// path is bit-identical to a build without the tier). block_bytes is
  /// forced to match the UFS block size at construction.
  cache::CacheTierParams cache_tier{};
};

struct UfsStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t fastpath_reads = 0;
  std::uint64_t fastpath_writes = 0;
  std::uint64_t disk_runs = 0;        // device transfers issued by fast path
  std::uint64_t coalesced_blocks = 0; // blocks moved in multi-block runs
  std::uint64_t readaheads_issued = 0;
  std::uint64_t readahead_errors = 0; // best-effort fills absorbed a fault
  sim::ByteCount bytes_read = 0;
  sim::ByteCount bytes_written = 0;
};

class Ufs {
 public:
  Ufs(sim::Simulation& s, std::string name, BlockDevice& device, ContentStore& content,
      hw::NodeCpu* cpu, UfsParams params, sim::Tracer* tracer = nullptr);
  Ufs(const Ufs&) = delete;
  Ufs& operator=(const Ufs&) = delete;

  // --- namespace ---
  InodeNum create(const std::string& name) { return inodes_.create(name); }
  InodeNum lookup(const std::string& name) const { return inodes_.lookup(name); }
  void remove(const std::string& name);
  const Inode& inode_of(InodeNum ino) const { return inodes_.get(ino); }
  ByteCount file_size(InodeNum ino) const { return inodes_.get(ino).size; }
  /// The flat directory (name -> ino) — the truth table ppfs_fsck audits
  /// the cache-tier journal against.
  const std::map<std::string, InodeNum>& directory() const noexcept {
    return inodes_.directory();
  }

  // --- data path ---
  /// Read up to len bytes at off into out (out.size() >= len). Returns the
  /// byte count actually read (clamped at EOF). `fastpath` requests the
  /// cache-bypassing DMA path; it silently degrades to the buffered path
  /// when the request is not block-aligned.
  sim::Task<ByteCount> read(InodeNum ino, FileOffset off, ByteCount len,
                            std::span<std::byte> out, bool fastpath);

  /// Write, extending the file (and allocating blocks) as needed.
  sim::Task<void> write(InodeNum ino, FileOffset off, std::span<const std::byte> in,
                        bool fastpath);

  /// One read of a physically-sorted batch (the PFS server's sweep).
  struct BatchRead {
    InodeNum ino;
    FileOffset off = 0;
    ByteCount len = 0;
    std::span<std::byte> out;
    ByteCount got = 0;  // filled by read_sorted
  };

  /// True when a read can take the cache-bypassing fast path AND every
  /// covered block is allocated — the precondition for read_sorted.
  bool fastpath_read_eligible(InodeNum ino, FileOffset off, ByteCount len) const;

  /// Serve a batch of fastpath-eligible reads as one elevator sweep at
  /// BLOCK granularity: every (physical block, destination) pair across
  /// all items is sorted by disk position and physically-contiguous runs
  /// — even runs crossing file boundaries — become single device
  /// transfers. This is what makes server-side batching pay: N
  /// interleaved stripe files cost one streaming pass, not N seeks and
  /// N per-block controller/bus charges.
  sim::Task<void> read_sorted(std::span<BatchRead> items);

  const UfsParams& params() const noexcept { return params_; }
  const UfsStats& stats() const noexcept { return stats_; }
  const BufferCache& cache() const noexcept { return cache_; }

  /// Crash/restart support: the restarted I/O node comes back with a cold
  /// buffer cache. The second-tier cache is NOT dropped here — its journal
  /// survives the crash and CacheTier::on_crash/recover model what persists.
  void drop_caches() { cache_.clear(); }
  /// The persistent second tier, or nullptr when not enabled.
  cache::CacheTier* cache_tier() noexcept { return tier_.get(); }
  const cache::CacheTier* cache_tier() const noexcept { return tier_.get(); }
  const std::string& name() const noexcept { return name_; }
  std::uint64_t total_blocks() const noexcept { return allocator_.total_blocks(); }
  std::uint64_t free_blocks() const noexcept { return allocator_.free_blocks(); }

 private:
  std::uint64_t sectors_per_block() const {
    return params_.block_bytes / device_.sector_bytes();
  }
  std::uint64_t block_to_sector(std::uint64_t phys) const {
    return phys * sectors_per_block();
  }
  FileOffset device_offset(std::uint64_t phys, ByteCount in_block) const {
    return phys * params_.block_bytes + in_block;
  }
  bool aligned(FileOffset off, ByteCount len) const {
    return off % params_.block_bytes == 0 && len % params_.block_bytes == 0;
  }

  /// Grow the inode's block list to cover byte offset `upto` (exclusive).
  void ensure_allocated(Inode& node, FileOffset upto);

  /// A physically-contiguous run of a file's blocks.
  struct Run {
    std::uint64_t phys_first;
    std::uint64_t count;
  };
  std::vector<Run> contiguous_runs(const Inode& node, std::uint64_t first_block,
                                   std::uint64_t block_count) const;

  sim::Task<ByteCount> read_fastpath(const Inode& node, FileOffset off, ByteCount len,
                                     std::span<std::byte> out);
  sim::Task<ByteCount> read_buffered(const Inode& node, FileOffset off, ByteCount len,
                                     std::span<std::byte> out);
  /// Launch background cache fills for the blocks after `last_block`.
  void issue_readahead(const Inode& node, std::uint64_t last_block);
  sim::Task<void> readahead_one(std::uint64_t phys);

  sim::Simulation& sim_;
  std::string name_;
  BlockDevice& device_;
  ContentStore& content_;
  hw::NodeCpu* cpu_;  // may be null in unit tests (no copy cost charged)
  UfsParams params_;
  sim::Tracer* tracer_;
  InodeTable inodes_;
  BlockAllocator allocator_;
  BufferCache cache_;
  std::unique_ptr<cache::CacheTier> tier_;  // null when the tier is off
  UfsStats stats_;
};

}  // namespace ppfs::ufs
