// Inodes, the block bitmap allocator, and the flat directory.
//
// Allocation favors physical contiguity (first free block at or after a
// caller-supplied hint, usually previous_block + 1). Contiguous files are
// what make the UFS layer's request coalescing — and the drive's track
// cache — effective on large transfers, which the paper's Fast Path relies
// on ("file system block coalescing is done on large read and write
// operations, which reduces the number of required disk accesses when
// blocks of the file are contiguous on the disk").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace ppfs::ufs {

using InodeNum = std::uint32_t;
inline constexpr InodeNum kInvalidInode = 0;

struct Inode {
  InodeNum ino = kInvalidInode;
  /// Monotonic per-table stamp assigned at create(). Distinguishes "this
  /// file" from "a different file that later reused the ino" — which is what
  /// the cache tier's journal entries key against to detect staleness.
  std::uint64_t generation = 0;
  sim::ByteCount size = 0;                 // logical file size in bytes
  std::vector<std::uint64_t> blocks;       // logical block -> physical block
};

/// First-fit bitmap allocator over the device's block space.
class BlockAllocator {
 public:
  explicit BlockAllocator(std::uint64_t total_blocks);

  /// Allocate one block, preferring `hint` and scanning upward, wrapping
  /// around once. Returns nullopt when the device is full.
  std::optional<std::uint64_t> allocate(std::uint64_t hint = 0);
  void free(std::uint64_t block);
  bool is_allocated(std::uint64_t block) const { return used_.at(block); }

  std::uint64_t total_blocks() const noexcept { return used_.size(); }
  std::uint64_t allocated_blocks() const noexcept { return allocated_; }
  std::uint64_t free_blocks() const noexcept { return used_.size() - allocated_; }

 private:
  std::vector<bool> used_;
  std::uint64_t allocated_ = 0;
};

/// Inode table plus a single flat directory (all the paper's workloads
/// need; PFS stripe files live in one directory per I/O node).
class InodeTable {
 public:
  InodeNum create(const std::string& name);
  InodeNum lookup(const std::string& name) const;  // kInvalidInode if absent
  void remove(const std::string& name);

  Inode& get(InodeNum ino);
  const Inode& get(InodeNum ino) const;
  bool exists(InodeNum ino) const { return inodes_.count(ino) != 0; }

  std::size_t file_count() const noexcept { return directory_.size(); }
  const std::map<std::string, InodeNum>& directory() const noexcept { return directory_; }

 private:
  InodeNum next_ino_ = 1;
  std::uint64_t next_generation_ = 1;
  std::map<InodeNum, Inode> inodes_;
  std::map<std::string, InodeNum> directory_;
};

}  // namespace ppfs::ufs
