#include "ufs/ufs.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "fault/error.hpp"
#include "sim/check/audit.hpp"

namespace ppfs::ufs {

Ufs::Ufs(sim::Simulation& s, std::string name, BlockDevice& device, ContentStore& content,
         hw::NodeCpu* cpu, UfsParams params, sim::Tracer* tracer)
    : sim_(s),
      name_(std::move(name)),
      device_(device),
      content_(content),
      cpu_(cpu),
      params_(params),
      tracer_(tracer),
      allocator_(device.capacity_bytes() / params.block_bytes),
      cache_(
          s, params.cache_blocks, params.block_bytes,
          // fill: device timing + real bytes from the content image
          [this](std::uint64_t phys, std::span<std::byte> dest) -> sim::Task<void> {
            co_await device_.transfer(block_to_sector(phys), params_.block_bytes,
                                      /*write=*/false);
            content_.read(device_offset(phys, 0), dest);
          },
          // flush: write-through
          [this](std::uint64_t phys, std::span<const std::byte> src) -> sim::Task<void> {
            content_.write(device_offset(phys, 0), src);
            co_await device_.transfer(block_to_sector(phys), params_.block_bytes,
                                      /*write=*/true);
          }) {
  if (params_.block_bytes % device.sector_bytes() != 0) {
    throw std::invalid_argument("Ufs: block size must be a multiple of the sector size");
  }
  if (params_.cache_tier.enabled) {
    params_.cache_tier.block_bytes = params_.block_bytes;
    tier_ = std::make_unique<cache::CacheTier>(
        sim_, name_ + "-tier", params_.cache_tier,
        [this](std::uint32_t ino) -> std::uint64_t {
          return inodes_.exists(ino) ? inodes_.get(ino).generation : 0;
        },
        [this](std::uint32_t ino) -> std::uint64_t {
          return inodes_.exists(ino) ? inodes_.get(ino).blocks.size() : 0;
        });
  }
}

void Ufs::remove(const std::string& fname) {
  const InodeNum ino = inodes_.lookup(fname);
  if (ino == kInvalidInode) throw std::invalid_argument("Ufs::remove: no such file " + fname);
  for (auto phys : inodes_.get(ino).blocks) {
    cache_.invalidate(phys);
    allocator_.free(phys);
  }
  // The freed physical blocks can be reallocated to another file; the tier
  // must stop serving (and journaling) residency for the dead inode.
  if (tier_) tier_->fsck_drop(ino);
  inodes_.remove(fname);
}

void Ufs::ensure_allocated(Inode& node, FileOffset upto) {
  const std::uint64_t blocks_needed =
      (upto + params_.block_bytes - 1) / params_.block_bytes;
  while (node.blocks.size() < blocks_needed) {
    const std::uint64_t hint = node.blocks.empty() ? 0 : node.blocks.back() + 1;
    auto phys = allocator_.allocate(hint);
    if (!phys) throw std::runtime_error("Ufs: device full on " + name_);
    node.blocks.push_back(*phys);
  }
}

std::vector<Ufs::Run> Ufs::contiguous_runs(const Inode& node, std::uint64_t first_block,
                                           std::uint64_t block_count) const {
  std::vector<Run> runs;
  for (std::uint64_t i = 0; i < block_count; ++i) {
    const std::uint64_t phys = node.blocks.at(first_block + i);
    if (params_.coalesce && !runs.empty() &&
        runs.back().phys_first + runs.back().count == phys) {
      ++runs.back().count;
    } else {
      runs.push_back(Run{phys, 1});
    }
  }
  return runs;
}

sim::Task<ByteCount> Ufs::read(InodeNum ino, FileOffset off, ByteCount len,
                               std::span<std::byte> out, bool fastpath) {
  const Inode& node = inodes_.get(ino);
  if (off >= node.size || len == 0) co_return 0;
  len = std::min<ByteCount>(len, node.size - off);
  assert(out.size() >= len);
  ++stats_.reads;
  stats_.bytes_read += len;

  if (tracer_ && tracer_->enabled(sim::TraceCat::kUfs)) {
    std::ostringstream msg;
    msg << "read ino=" << ino << " off=" << off << " len=" << len
        << (fastpath && aligned(off, len) ? " [fastpath]" : " [buffered]");
    tracer_->log(sim::TraceCat::kUfs, sim_.now(), name_, msg.str());
  }

  if (fastpath && aligned(off, len)) {
    ++stats_.fastpath_reads;
    co_return co_await read_fastpath(node, off, len, out);
  }
  co_return co_await read_buffered(node, off, len, out);
}

sim::Task<ByteCount> Ufs::read_fastpath(const Inode& node, FileOffset off, ByteCount len,
                                        std::span<std::byte> out) {
  const std::uint64_t first_block = off / params_.block_bytes;
  const std::uint64_t block_count = len / params_.block_bytes;
  auto runs = contiguous_runs(node, first_block, block_count);

  ByteCount done = 0;
  std::uint64_t lbase = first_block;  // runs cover consecutive logical blocks
  for (const Run& run : runs) {
    const ByteCount run_bytes = run.count * params_.block_bytes;
    bool warm = tier_ != nullptr;
    for (std::uint64_t b = 0; warm && b < run.count; ++b) {
      warm = tier_->resident(node.ino, lbase + b);
    }
    if (warm) {
      // Every block of the run is tier-resident: serve at cache-device
      // speed. Bytes still come from the content store — the tier is
      // write-through, so the store is the truth for its blocks too.
      for (std::uint64_t b = 0; b < run.count; ++b) tier_->note_hit(node.ino, lbase + b);
      co_await tier_->read_hit(run.count);
      content_.read(device_offset(run.phys_first, 0), out.subspan(done, run_bytes));
    } else {
      co_await device_.transfer(block_to_sector(run.phys_first), run_bytes, /*write=*/false);
      content_.read(device_offset(run.phys_first, 0), out.subspan(done, run_bytes));
      ++stats_.disk_runs;
      if (run.count > 1) stats_.coalesced_blocks += run.count;
      if (tier_) {
        tier_->note_miss_blocks(run.count);
        for (std::uint64_t b = 0; b < run.count; ++b) {
          tier_->insert(node.ino, node.generation, lbase + b);
        }
      }
    }
    done += run_bytes;
    lbase += run.count;
  }
  co_return done;
}

bool Ufs::fastpath_read_eligible(InodeNum ino, FileOffset off, ByteCount len) const {
  const Inode& node = inodes_.get(ino);
  if (off >= node.size || len == 0) return false;
  // A clamped (EOF-straddling) length degrades to the buffered path in
  // read(); require the full aligned extent to be inside the file.
  if (!aligned(off, len) || off + len > node.size) return false;
  const std::uint64_t first = off / params_.block_bytes;
  const std::uint64_t count = len / params_.block_bytes;
  return first + count <= node.blocks.size();
}

sim::Task<void> Ufs::read_sorted(std::span<BatchRead> items) {
  // Flatten every item to (physical block, destination) pairs, then walk
  // the disk once in ascending position: stripe files interleave their
  // blocks on the platter, so runs routinely cross file boundaries and
  // only a block-level merge can recover the streaming transfer.
  struct BlockRef {
    std::uint64_t phys;
    std::byte* dst;
    InodeNum ino;
    std::uint64_t generation;
    std::uint64_t lblock;
  };
  std::vector<BlockRef> refs;
  for (BatchRead& item : items) {
    const Inode& node = inodes_.get(item.ino);
    ++stats_.reads;
    ++stats_.fastpath_reads;
    stats_.bytes_read += item.len;
    item.got = item.len;
    const std::uint64_t first = item.off / params_.block_bytes;
    const std::uint64_t count = item.len / params_.block_bytes;
    for (std::uint64_t i = 0; i < count; ++i) {
      refs.push_back(BlockRef{node.blocks.at(first + i),
                              item.out.data() + i * params_.block_bytes, node.ino,
                              node.generation, first + i});
    }
  }
  std::stable_sort(refs.begin(), refs.end(),
                   [](const BlockRef& a, const BlockRef& b) { return a.phys < b.phys; });

  if (tracer_ && tracer_->enabled(sim::TraceCat::kUfs)) {
    std::ostringstream msg;
    msg << "read_sorted items=" << items.size() << " blocks=" << refs.size();
    tracer_->log(sim::TraceCat::kUfs, sim_.now(), name_, msg.str());
  }

  std::size_t i = 0;
  while (i < refs.size()) {
    std::size_t j = i + 1;
    while (j < refs.size() && params_.coalesce &&
           refs[j].phys == refs[j - 1].phys + 1) {
      ++j;
    }
    const std::uint64_t run_count = refs[j - 1].phys - refs[i].phys + 1;
    bool warm = tier_ != nullptr;
    for (std::size_t k = i; warm && k < j; ++k) {
      warm = tier_->resident(refs[k].ino, refs[k].lblock);
    }
    if (warm) {
      for (std::size_t k = i; k < j; ++k) tier_->note_hit(refs[k].ino, refs[k].lblock);
      co_await tier_->read_hit(j - i);
    } else {
      co_await device_.transfer(block_to_sector(refs[i].phys),
                                run_count * params_.block_bytes, /*write=*/false);
      ++stats_.disk_runs;
      if (run_count > 1) stats_.coalesced_blocks += run_count;
      if (tier_) {
        tier_->note_miss_blocks(j - i);
        for (std::size_t k = i; k < j; ++k) {
          tier_->insert(refs[k].ino, refs[k].generation, refs[k].lblock);
        }
      }
    }
    for (std::size_t k = i; k < j; ++k) {
      content_.read(device_offset(refs[k].phys, 0),
                    std::span<std::byte>(refs[k].dst, params_.block_bytes));
    }
    i = j;
  }
}

sim::Task<ByteCount> Ufs::read_buffered(const Inode& node, FileOffset off, ByteCount len,
                                        std::span<std::byte> out) {
  ByteCount done = 0;
  while (done < len) {
    const FileOffset pos = off + done;
    const std::uint64_t lblock = pos / params_.block_bytes;
    const ByteCount in_block = pos % params_.block_bytes;
    const ByteCount n = std::min<ByteCount>(len - done, params_.block_bytes - in_block);
    const std::uint64_t phys = node.blocks.at(lblock);
    if (tier_ && !cache_.contains(phys)) {
      if (tier_->resident(node.ino, lblock)) {
        // Buffer-cache miss but tier-resident: serve from the second tier
        // at cache-device speed instead of filling from the RAID path.
        tier_->note_hit(node.ino, lblock);
        co_await tier_->read_hit(1);
        content_.read(device_offset(phys, in_block), out.subspan(done, n));
        if (cpu_) co_await cpu_->copy(n);
        done += n;
        continue;
      }
      tier_->note_miss_blocks(1);
    }
    co_await cache_.read(phys, in_block, out.subspan(done, n));
    // A block that just travelled the disk path populates the second tier
    // (write-through for reads: the fill is what makes it warm).
    if (tier_) tier_->insert(node.ino, node.generation, lblock);
    // The buffered path stages data in the cache and copies the requested
    // bytes to the caller's buffer; that copy burns I/O-node CPU.
    if (cpu_) co_await cpu_->copy(n);
    done += n;
  }
  if (params_.readahead_blocks > 0) {
    issue_readahead(node, (off + len - 1) / params_.block_bytes);
  }
  co_return done;
}

sim::Task<void> Ufs::readahead_one(std::uint64_t phys) {
  // Warm the cache; a concurrent demand read of the same block joins this
  // fill instead of issuing a second disk access.
  std::vector<std::byte> sink(1);  // copy one byte: negligible, keeps API uniform
  try {
    co_await cache_.read(phys, 0, sink);
  } catch (const fault::FaultError&) {
    // Readahead is best-effort: an injected disk fault here must not kill
    // the run (this is a detached process). The fault terminates in this
    // stat — a later demand read retries the block under its own envelope.
    ++stats_.readahead_errors;
    if (auto* a = sim_.auditor()) {
      a->on_fault_observed();
      a->on_fault_terminal();
    }
  }
}

void Ufs::issue_readahead(const Inode& node, std::uint64_t last_block) {
  for (std::uint32_t k = 1; k <= params_.readahead_blocks; ++k) {
    const std::uint64_t lblock = last_block + k;
    if (lblock >= node.blocks.size()) break;
    const std::uint64_t phys = node.blocks[lblock];
    if (cache_.contains(phys)) continue;
    ++stats_.readaheads_issued;
    sim_.spawn(readahead_one(phys));
  }
}

sim::Task<void> Ufs::write(InodeNum ino, FileOffset off, std::span<const std::byte> in,
                           bool fastpath) {
  if (in.empty()) co_return;
  Inode& node = inodes_.get(ino);
  ensure_allocated(node, off + in.size());
  node.size = std::max<ByteCount>(node.size, off + in.size());
  ++stats_.writes;
  stats_.bytes_written += in.size();

  if (fastpath && aligned(off, in.size())) {
    ++stats_.fastpath_writes;
    const std::uint64_t first_block = off / params_.block_bytes;
    const std::uint64_t block_count = in.size() / params_.block_bytes;
    auto runs = contiguous_runs(node, first_block, block_count);
    ByteCount done = 0;
    std::uint64_t lbase = first_block;
    for (const Run& run : runs) {
      const ByteCount run_bytes = run.count * params_.block_bytes;
      content_.write(device_offset(run.phys_first, 0), in.subspan(done, run_bytes));
      // Fast-path writes bypass the cache; drop any stale cached copies.
      for (std::uint64_t b = 0; b < run.count; ++b) cache_.invalidate(run.phys_first + b);
      co_await device_.transfer(block_to_sector(run.phys_first), run_bytes, /*write=*/true);
      ++stats_.disk_runs;
      if (run.count > 1) stats_.coalesced_blocks += run.count;
      // Write-through population: written blocks are warm in the tier.
      if (tier_) {
        for (std::uint64_t b = 0; b < run.count; ++b) {
          tier_->insert(node.ino, node.generation, lbase + b);
        }
      }
      done += run_bytes;
      lbase += run.count;
    }
    co_return;
  }

  ByteCount done = 0;
  while (done < in.size()) {
    const FileOffset pos = off + done;
    const std::uint64_t lblock = pos / params_.block_bytes;
    const ByteCount in_block = pos % params_.block_bytes;
    const ByteCount n =
        std::min<ByteCount>(in.size() - done, params_.block_bytes - in_block);
    const std::uint64_t phys = node.blocks.at(lblock);
    co_await cache_.write(phys, in_block, in.subspan(done, n));
    if (tier_) tier_->insert(node.ino, node.generation, lblock);
    if (cpu_) co_await cpu_->copy(n);
    done += n;
  }
}

}  // namespace ppfs::ufs
