#include "ufs/buffer_cache.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace ppfs::ufs {

BufferCache::BufferCache(sim::Simulation& s, std::size_t capacity_blocks, ByteCount block_bytes,
                         FillFn fill, FlushFn flush)
    : sim_(s),
      capacity_(capacity_blocks),
      block_bytes_(block_bytes),
      fill_(std::move(fill)),
      flush_(std::move(flush)) {
  if (capacity_blocks == 0) throw std::invalid_argument("BufferCache: zero capacity");
}

void BufferCache::touch(std::uint64_t phys, Entry& e) {
  lru_.erase(e.lru);
  lru_.push_front(phys);
  e.lru = lru_.begin();
}

void BufferCache::evict_if_needed() {
  while (entries_.size() > capacity_ && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++evictions_;
  }
}

sim::Task<void> BufferCache::ensure_valid(std::uint64_t phys) {
  bool waited = false;
  for (;;) {
    auto it = entries_.find(phys);
    if (it != entries_.end()) {
      if (it->second.valid) {
        if (waited) co_return;  // woken by the filler; it already made the entry MRU
        ++hits_;
        touch(phys, it->second);
        co_return;
      }
      // Someone else is filling this block right now; wait for them, then
      // re-check — the fill may have failed and dropped the entry.
      ++fill_waits_;
      waited = true;
      co_await it->second.filling->wait();
      continue;
    }

    ++misses_;
    Entry& e = entries_[phys];
    e.data = std::make_unique<std::byte[]>(block_bytes_);
    e.filling = std::make_unique<sim::Event>(sim_);
    try {
      co_await fill_(phys, std::span<std::byte>(e.data.get(), block_bytes_));
    } catch (...) {
      // A failed fill must wake any waiters (they re-check, find the entry
      // gone, and retry the fill themselves) and drop the entry so the
      // block is not wedged forever; the error surfaces to this caller.
      auto bad = entries_.find(phys);
      bad->second.filling->set();
      entries_.erase(bad);
      throw;
    }
    // The map may have rehashed during the await; re-find.
    auto& entry = entries_.at(phys);
    entry.valid = true;
    lru_.push_front(phys);
    entry.lru = lru_.begin();
    entry.filling->set();
    evict_if_needed();
    co_return;
  }
}

sim::Task<void> BufferCache::read(std::uint64_t phys, ByteCount offset_in_block,
                                  std::span<std::byte> out) {
  assert(offset_in_block + out.size() <= block_bytes_);
  co_await ensure_valid(phys);
  const Entry& e = entries_.at(phys);
  std::memcpy(out.data(), e.data.get() + offset_in_block, out.size());
}

sim::Task<void> BufferCache::write(std::uint64_t phys, ByteCount offset_in_block,
                                   std::span<const std::byte> in) {
  assert(offset_in_block + in.size() <= block_bytes_);
  const bool partial = offset_in_block != 0 || in.size() != block_bytes_;
  if (partial) {
    // Write-allocate a partial write: fetch the block before merging.
    co_await ensure_valid(phys);
  } else {
    auto it = entries_.find(phys);
    if (it != entries_.end() && !it->second.valid) {
      // A fill is in flight; let it land before overwriting.
      co_await it->second.filling->wait();
    }
    if (!entries_.count(phys)) {
      // Full-block overwrite: no need to read old contents.
      ++misses_;
      Entry& fresh = entries_[phys];
      fresh.data = std::make_unique<std::byte[]>(block_bytes_);
      fresh.filling = std::make_unique<sim::Event>(sim_);
      fresh.valid = true;
      fresh.filling->set();
      lru_.push_front(phys);
      fresh.lru = lru_.begin();
      evict_if_needed();
    }
  }
  Entry& e = entries_.at(phys);
  std::memcpy(e.data.get() + offset_in_block, in.data(), in.size());
  touch(phys, e);
  // Write-through to the device (whole-block image).
  co_await flush_(phys, std::span<const std::byte>(e.data.get(), block_bytes_));
}

void BufferCache::clear() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.valid) {
      lru_.erase(it->second.lru);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void BufferCache::invalidate(std::uint64_t phys) {
  auto it = entries_.find(phys);
  if (it == entries_.end()) return;
  if (!it->second.valid) return;  // never drop a filling entry
  lru_.erase(it->second.lru);
  entries_.erase(it);
}

}  // namespace ppfs::ufs
