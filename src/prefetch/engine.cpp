#include "prefetch/engine.hpp"

#include <algorithm>
#include <cstring>

#include "sim/check/audit.hpp"
#include "trace/span.hpp"

namespace ppfs::prefetch {

PrefetchEngine::PrefetchEngine(pfs::PfsClient& client, PrefetchConfig cfg)
    : client_(client), cfg_(cfg), predictor_(make_predictor(cfg.predictor)) {
  if (cfg_.adaptive_depth) {
    ControllerParams p;
    p.min_depth = 1;
    // Bounded by buffer occupancy: the controller can never ramp past the
    // engine's resident-buffer cap (the value TraceScope's occupancy
    // counter tracks), nor past the engine's stack prediction buffer.
    p.max_depth = std::min({cfg_.max_depth, cfg_.max_buffers_per_file, kMaxPrefetchDepth});
    p.window = cfg_.feedback_window;
    p.miss_storm = cfg_.miss_storm;
    p.seed = cfg_.adaptive_seed;
    controller_ = std::make_unique<AdaptiveController>(p);
  }
}

PrefetchEngine::~PrefetchEngine() {
  if (auto* a = auditor()) {
    a->check_buffer_conservation(client_.machine().simulation().now(), this,
                                 /*in_destructor=*/true);
  }
}

sim::check::Auditor* PrefetchEngine::auditor() const {
  return client_.machine().simulation().auditor();
}

void PrefetchEngine::trace_instant(std::uint8_t code, FileOffset off, ByteCount len) const {
  trace::instant(client_.machine().simulation(), trace::TraceTrack::kPrefetch, code,
                 client_.rank(), static_cast<std::uint64_t>(off),
                 static_cast<std::uint64_t>(len));
}

void PrefetchEngine::occupancy_changed(std::int64_t dbuffers, std::int64_t dbytes) {
  resident_count_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(resident_count_) +
                                               dbuffers);
  resident_bytes_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(resident_bytes_) +
                                               dbytes);
  trace::counter(client_.machine().simulation(), trace::TraceTrack::kPrefetch,
                 trace::code::kPrefetchOccupancy, client_.rank(), resident_count_,
                 resident_bytes_);
}

void PrefetchEngine::on_open(int fd) {
  lists_.try_emplace(fd);  // "when the file is opened newly by a process,
                           // the prefetch list gets initialized"
  if (controller_) {
    controller_->on_open(fd);
    // Baseline sample for the per-fd depth counter track.
    trace::counter(client_.machine().simulation(), trace::TraceTrack::kPrefetch,
                   trace::code::kPrefetchDepth, client_.rank(),
                   static_cast<std::uint64_t>(fd), controller_->depth(fd));
  }
}

std::size_t PrefetchEngine::current_depth(int fd) const {
  return controller_ ? controller_->depth(fd) : cfg_.depth;
}

void PrefetchEngine::note_depth(int fd, std::size_t depth) {
  trace_instant(trace::code::kPrefetchDepthChange, static_cast<FileOffset>(fd),
                static_cast<ByteCount>(depth));
  trace::counter(client_.machine().simulation(), trace::TraceTrack::kPrefetch,
                 trace::code::kPrefetchDepth, client_.rank(),
                 static_cast<std::uint64_t>(fd), static_cast<std::uint64_t>(depth));
}

void PrefetchEngine::sync_controller_stats() {
  const ControllerCounters& c = controller_->counters();
  stats_.depth_ramp_ups = c.ramp_ups;
  stats_.depth_ramp_downs = c.ramp_downs;
  stats_.depth_collapses = c.collapses;
}

void PrefetchEngine::depth_feedback(int fd, bool hit) {
  if (!controller_) return;
  const std::size_t before = controller_->depth(fd);
  if (hit) {
    controller_->on_hit(fd);
  } else {
    controller_->on_miss(fd);
  }
  const std::size_t after = controller_->depth(fd);
  if (after != before) note_depth(fd, after);
  sync_controller_stats();
}

std::size_t PrefetchEngine::resident_buffers(int fd) const {
  auto it = lists_.find(fd);
  return it == lists_.end() ? 0 : it->second.list.size();
}

bool PrefetchEngine::throttled(int fd) const {
  auto it = lists_.find(fd);
  return it != lists_.end() && it->second.throttled;
}

void PrefetchEngine::note_useless(FdState& st, std::uint64_t count) {
  if (!cfg_.adaptive || count == 0) return;
  st.useless_streak += count;
  if (st.useless_streak >= cfg_.adaptive_cutoff && !st.throttled) {
    st.throttled = true;
    st.reads_since_throttle = 0;
  }
}

void PrefetchEngine::shed_all() {
  auto* a = auditor();
  for (auto& [fd, st] : lists_) {
    (void)fd;
    for (auto& buf : st.list.drain()) {
      ++stats_.shed;
      stats_.wasted_bytes += buf->length;
      trace_instant(trace::code::kPrefetchShed, buf->offset, buf->length);
      occupancy_changed(-1, -static_cast<std::int64_t>(buf->length));
      if (a) a->on_buffer_discarded(this);
      retire(buf);
    }
  }
  if (controller_) {
    // Adaptation collapses with the shed: deep readahead must not resume
    // at full depth into a recovering system. (std::map iteration order is
    // fd order — deterministic.)
    for (auto& [fd, st] : lists_) {
      (void)st;
      const std::size_t before = controller_->depth(fd);
      controller_->on_fault(fd);
      if (controller_->depth(fd) != before) note_depth(fd, controller_->depth(fd));
    }
    sync_controller_stats();
  }
}

bool PrefetchEngine::fault_gate() {
  const std::uint64_t signal = client_.rpc_stats().fault_signal();
  const bool down = client_.filesystem().any_server_down();
  if (signal != last_fault_signal_ || down) {
    // Fresh fault activity (or an ongoing outage): shed every speculative
    // buffer — its data may predate a crash, and its disk traffic competes
    // with recovery — and pause prediction.
    last_fault_signal_ = signal;
    if (!fault_paused_) {
      fault_paused_ = true;
      ++stats_.fault_pauses;
    }
    quiet_reads_ = 0;
    shed_all();
    ++stats_.fault_skips;
    return true;
  }
  if (fault_paused_) {
    ++quiet_reads_;
    if (quiet_reads_ < cfg_.fault_resume_reads) {
      ++stats_.fault_skips;
      return true;
    }
    fault_paused_ = false;  // system quiet again: resume speculation
  }
  return false;
}

sim::Task<void> PrefetchEngine::reap(PrefetchBufferList::Handle buf) {
  // The ART is still writing into buf->data; hold the buffer until it
  // finishes, then let it die with this frame.
  try {
    co_await client_.arts().wait(buf->request);
  } catch (...) {
    // A failing prefetch being discarded is of no consequence.
  }
}

void PrefetchEngine::retire(PrefetchBufferList::Handle buf) {
  if (buf && buf->in_flight()) {
    client_.machine().simulation().spawn(reap(std::move(buf)));
  }
}

sim::Task<std::optional<ByteCount>> PrefetchEngine::try_serve(int fd, FileOffset off,
                                                              ByteCount len,
                                                              std::span<std::byte> out) {
  if (!cfg_.enabled) co_return std::nullopt;
  FdState& st = lists_[fd];
  auto& list = st.list;

  auto buf = list.find(off, len);
  if (buf && buf->epoch != client_.filesystem().topology_epoch()) {
    // The buffer was issued before a crash/restart changed the mount
    // topology. Even if its ART completed, the reply crossed a dead epoch —
    // discard rather than hand possibly-pre-crash bytes to the reader.
    list.remove(buf);
    occupancy_changed(-1, -static_cast<std::int64_t>(buf->length));
    retire(buf);
    ++stats_.epoch_discarded;
    stats_.wasted_bytes += buf->length;
    if (auto* a = auditor()) a->on_buffer_discarded(this);
    trace_instant(trace::code::kPrefetchShed, off, len);
    buf = nullptr;
  }
  if (!buf) {
    // Wrong-prediction hygiene: anything overlapping this read but not
    // matching it exactly will never hit; free it now.
    std::uint64_t dropped = 0;
    for (auto& stale : list.overlapping(off, len)) {
      list.remove(stale);
      occupancy_changed(-1, -static_cast<std::int64_t>(stale->length));
      stats_.wasted_bytes += stale->length;
      retire(stale);
      ++stats_.stale_discarded;
      if (auto* a = auditor()) a->on_buffer_discarded(this);
      ++dropped;
    }
    note_useless(st, dropped);
    if (controller_ && dropped) controller_->on_wasted(fd, dropped);
    ++stats_.misses;
    trace_instant(trace::code::kPrefetchMiss, off, len);
    depth_feedback(fd, /*hit=*/false);
    co_return std::nullopt;
  }

  list.remove(buf);
  occupancy_changed(-1, -static_cast<std::int64_t>(buf->length));
  if (auto* a = auditor()) a->on_buffer_consumed(this);
  // A hit proves the prediction stream is good again.
  st.useless_streak = 0;
  st.throttled = false;
  if (buf->in_flight()) {
    // Miss-when-presented but mostly done: wait out the remainder.
    ++stats_.hits_in_flight;
    trace_instant(trace::code::kPrefetchHitInFlight, off, len);
    const sim::SimTime t0 = client_.machine().simulation().now();
    co_await client_.arts().wait(buf->request);
    stats_.wait_time += client_.machine().simulation().now() - t0;
  } else {
    ++stats_.hits_ready;
    trace_instant(trace::code::kPrefetchHitReady, off, len);
  }
  if (buf->request->error) {
    // The prefetch itself failed; fall back to the normal read path.
    ++stats_.misses;
    trace_instant(trace::code::kPrefetchMiss, off, len);
    depth_feedback(fd, /*hit=*/false);
    co_return std::nullopt;
  }
  depth_feedback(fd, /*hit=*/true);

  const ByteCount got = std::min<ByteCount>(buf->request->result, len);
  // "The prefetched data is copied into the prefetch buffer present in the
  // system and from there is copied into the user buffer": charge the
  // buffer bookkeeping plus the memory copy, then move the real bytes.
  co_await client_.cpu().compute(client_.cpu().params().buffer_mgmt_overhead);
  co_await client_.cpu().copy(got);
  std::memcpy(out.data(), buf->data.data(), got);
  stats_.bytes_served += got;
  co_return got;
}

sim::Task<void> PrefetchEngine::after_read(int fd, FileOffset off, ByteCount len) {
  if (!cfg_.enabled || len == 0) co_return;
  if (fault_gate()) co_return;
  FdState& st = lists_[fd];
  auto& list = st.list;

  std::size_t depth = controller_ ? controller_->depth(fd) : cfg_.depth;
  if (st.throttled) {
    // Probe mode: one single-block prefetch every probe period.
    ++st.reads_since_throttle;
    if (st.reads_since_throttle % cfg_.adaptive_probe_period != 0) {
      ++stats_.throttled_skips;
      co_return;
    }
    depth = 1;
  }
  depth = std::min(depth, kMaxPrefetchDepth);

  // Learning and prediction are split so the predict pass can fill a stack
  // buffer: the per-read decision path allocates nothing.
  predictor_->observe(client_, fd, off, len);
  std::array<FileOffset, kMaxPrefetchDepth> target_buf;
  const std::size_t ntargets =
      depth == 0 ? 0
                 : predictor_->predict(client_, fd, off, len,
                                       std::span<FileOffset>(target_buf.data(), depth));
  const std::span<const FileOffset> targets(target_buf.data(), ntargets);
  stats_.depth_hist[ntargets == 0
                        ? 0
                        : std::min(depth, PrefetchStats::kDepthHistBuckets - 1)] += 1;
  const auto is_target = [&](const PrefetchBufferList::Handle& b) {
    if (!b || b->length != len) return false;
    for (FileOffset t : targets) {
      if (b->offset == t) return true;
    }
    return false;
  };
  for (FileOffset p : targets) {
    if (list.find(p, len)) continue;  // already buffered or in flight
    if (list.size() >= cfg_.max_buffers_per_file) {
      // Memory cap. Evict the oldest buffer only if it is no longer
      // predicted (a dead prefetch — feeds the adaptive throttle); if
      // everything resident is still in the prediction window, stop.
      auto victim = list.oldest();
      if (!victim || is_target(victim)) break;
      list.remove(victim);
      occupancy_changed(-1, -static_cast<std::int64_t>(victim->length));
      stats_.wasted_bytes += victim->length;
      retire(victim);
      ++stats_.wasted;
      if (auto* a = auditor()) a->on_buffer_discarded(this);
      note_useless(st, 1);
      if (controller_) controller_->on_wasted(fd, 1);
      if (st.throttled) break;  // throttle tripped mid-loop: stop issuing
    }

    // Issue cost on the user thread: ART setup + prefetch buffer
    // allocation in compute-node memory.
    co_await client_.cpu().compute(client_.cpu().params().async_setup_overhead +
                                   client_.cpu().params().buffer_mgmt_overhead);

    auto buf = std::make_shared<PrefetchBuffer>();
    buf->offset = p;
    buf->length = len;
    buf->epoch = client_.filesystem().topology_epoch();
    buf->data.resize(len);
    // The posted request travels the same positioned-read path as user
    // I/O, so when extent coalescing / server batching are enabled the
    // prefetch's blocks merge into scatter-gather RPCs and sorted disk
    // sweeps exactly like demand reads — speculation gets no private,
    // slower data path.
    buf->request = client_.post_prefetch(fd, p, len, buf->data);
    list.add(std::move(buf));
    occupancy_changed(1, static_cast<std::int64_t>(len));
    if (auto* a = auditor()) a->on_buffer_allocated(this);
    ++stats_.issued;
    stats_.bytes_prefetched += len;
    trace_instant(trace::code::kPrefetchIssue, p, len);
  }
}

void PrefetchEngine::on_close(int fd) {
  auto it = lists_.find(fd);
  if (it == lists_.end()) return;
  auto* a = auditor();
  for (auto& buf : it->second.list.drain()) {
    ++stats_.wasted;
    stats_.wasted_bytes += buf->length;
    occupancy_changed(-1, -static_cast<std::int64_t>(buf->length));
    if (a) a->on_buffer_freed_at_close(this);
    retire(buf);
  }
  lists_.erase(it);
  // Per-fd histories die with the file (the StridedPredictor leak fix);
  // controller state goes the same way.
  predictor_->forget(fd);
  if (controller_) {
    controller_->on_close(fd);
    sync_controller_stats();
  }
  // With no buffers resident anywhere in this engine, conservation must
  // balance exactly: allocated == consumed + discarded + freed-at-close.
  if (a) {
    bool resident = false;
    for (const auto& [ofd, st] : lists_) {
      (void)ofd;
      if (!st.list.empty()) resident = true;
    }
    if (!resident) {
      a->check_buffer_conservation(client_.machine().simulation().now(), this);
    }
  }
}

std::unique_ptr<PrefetchEngine> attach_prefetcher(pfs::PfsClient& client, PrefetchConfig cfg) {
  auto engine = std::make_unique<PrefetchEngine>(client, cfg);
  client.set_prefetcher(engine.get());
  return engine;
}

}  // namespace ppfs::prefetch
