// AdaptiveController — windowed hit-rate feedback that scales per-fd
// readahead depth, replacing the prototype's fixed one-block-ahead rule.
//
// State machine per fd (documented in DESIGN.md §12):
//
//          3/4 window hits, no waste          3/4 window hits, no waste
//   depth=1 ───────────────────────▶ depth=2 ───────────────────────▶ ... max
//      ▲  ◀─────────────────────────   │  ◀──────────────────────────
//      │     <1/2 window hits (halve)  │
//      └── miss storm (N consecutive misses) or fault pause: collapse to 1
//
// Feedback events come from the engine's serve path: a prefetch hit
// (ready or in-flight) counts for the window, a miss counts against it,
// and wasted buffers (stale discards, cap evictions) veto ramp-up for the
// window they land in. Every `window` reads the controller re-evaluates:
// mostly-hits-and-no-waste doubles depth (up to max_depth, itself bounded
// by the engine's buffer cap so occupancy can't run away), a losing
// window halves it. A run of consecutive misses collapses straight to
// min_depth without waiting for the window — the pattern broke, stop
// speculating at depth. A fault pause collapses every fd the same way so
// recovery traffic never competes with deep readahead.
//
// Determinism: pure integer state driven by the read stream; `seed` only
// phases the first evaluation window. Identical streams give identical
// depth trajectories on any --jobs split.
#pragma once

#include <cstdint>

#include "prefetch/fd_map.hpp"

namespace ppfs::prefetch {

struct ControllerParams {
  std::size_t min_depth = 1;
  std::size_t max_depth = 8;
  /// Reads per feedback window (evaluation cadence).
  std::size_t window = 4;
  /// Consecutive misses that collapse depth to min_depth immediately.
  std::size_t miss_storm = 4;
  /// Phases the first window: the fd starts `seed % window` reads into it.
  std::uint64_t seed = 1;
};

struct ControllerCounters {
  std::uint64_t ramp_ups = 0;
  std::uint64_t ramp_downs = 0;
  std::uint64_t collapses = 0;  // miss-storm or fault collapses to min
};

class AdaptiveController {
 public:
  explicit AdaptiveController(ControllerParams p);

  void on_open(int fd);
  void on_close(int fd);

  // ppfs::hot — per-read decision path: map probe + integer window math
  /// Depth the engine should prefetch to after this fd's current read.
  std::size_t depth(int fd) const {
    const State* s = fds_.find(fd);
    return s ? s->depth : p_.min_depth;
  }
  /// A read was served from a prefetch buffer (ready or in-flight).
  void on_hit(int fd);
  /// A read found no usable prefetch buffer.
  void on_miss(int fd);
  // ppfs::endhot

  /// `n` prefetched buffers proved useless (stale discard / cap eviction).
  void on_wasted(int fd, std::uint64_t n);
  /// Fault gate tripped for this fd: collapse and restart its window.
  void on_fault(int fd);

  const ControllerParams& params() const noexcept { return p_; }
  const ControllerCounters& counters() const noexcept { return counters_; }

 private:
  struct State {
    std::uint32_t depth = 1;
    std::uint32_t win_reads = 0;
    std::uint32_t win_hits = 0;
    std::uint32_t win_wasted = 0;
    std::uint32_t consec_miss = 0;
    /// Reads left in the current window; the seed shortens only the first
    /// window (phase shift), later windows run the full length.
    std::uint32_t win_target = 0;
  };

  State& state(int fd);
  void account_read(State& s, bool hit);
  void evaluate(State& s);
  void collapse(State& s);

  ControllerParams p_;
  ControllerCounters counters_;
  FdMap<State> fds_;
};

}  // namespace ppfs::prefetch
