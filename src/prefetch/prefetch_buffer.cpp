#include "prefetch/prefetch_buffer.hpp"

#include <algorithm>

namespace ppfs::prefetch {

void PrefetchBufferList::add(Handle buf) {
  resident_bytes_ += buf->length;
  buffers_.push_back(std::move(buf));
}

PrefetchBufferList::Handle PrefetchBufferList::find(FileOffset offset,
                                                    ByteCount length) const {
  for (const auto& b : buffers_) {
    if (b->offset == offset && b->length == length) return b;
  }
  return nullptr;
}

std::vector<PrefetchBufferList::Handle> PrefetchBufferList::overlapping(
    FileOffset offset, ByteCount length) const {
  std::vector<Handle> out;
  for (const auto& b : buffers_) {
    const bool disjoint = b->offset + b->length <= offset || offset + length <= b->offset;
    if (!disjoint) out.push_back(b);
  }
  return out;
}

void PrefetchBufferList::remove(const Handle& buf) {
  auto it = std::find(buffers_.begin(), buffers_.end(), buf);
  if (it != buffers_.end()) {
    resident_bytes_ -= (*it)->length;
    buffers_.erase(it);
  }
}

std::vector<PrefetchBufferList::Handle> PrefetchBufferList::drain() {
  std::vector<Handle> out(buffers_.begin(), buffers_.end());
  buffers_.clear();
  resident_bytes_ = 0;
  return out;
}

}  // namespace ppfs::prefetch
