// EnsemblePredictor — races every pattern predictor per fd and lets the
// most accurate one drive prefetching.
//
// Each member (mode-aware, strided, list-I/O, sequential) keeps its own
// history via observe(). The ensemble additionally remembers each member's
// top-1 prediction for the fd and, on the next read, scores members by
// whether that prediction landed: an exponentially-decayed confidence
// (halve, then +128 on a correct call). Predictions are only issued once
// the best member clears a confidence floor, so a cold or pattern-broken
// stream issues nothing instead of guessing — that is what keeps the
// useful-prefetch ratio high under the adaptive controller.
//
// Scoring is pure integer arithmetic over the deterministic read stream,
// so ensemble choice is bit-reproducible across runs and sweep workers.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "prefetch/predictor.hpp"

namespace ppfs::prefetch {

class EnsemblePredictor final : public Predictor {
 public:
  static constexpr std::size_t kMembers = 4;
  /// Confidence ceiling (decay limit of repeated +128 rewards).
  static constexpr int kMaxScore = 255;
  /// Floor to win: at least two consecutive correct top-1 calls.
  static constexpr int kConfidenceFloor = 160;

  EnsemblePredictor();

  void observe(pfs::PfsClient& client, int fd, FileOffset off, ByteCount len) override;
  std::size_t predict(pfs::PfsClient& client, int fd, FileOffset off, ByteCount len,
                      std::span<FileOffset> out) override;
  void forget(int fd) override;

  /// Index of the member currently driving predictions for `fd`, or -1
  /// while no member clears the confidence floor (cold / broken pattern).
  int winner(int fd) const;
  /// Current confidence score of member `i` for `fd` (0 when unknown).
  int score(int fd, std::size_t i) const;
  static const char* member_name(std::size_t i);

 private:
  struct Scores {
    std::int16_t score[kMembers] = {};
    FileOffset expected[kMembers] = {};
    bool valid[kMembers] = {};
  };

  int pick(const Scores& s) const;

  // Declaration order is the tie-break order: the paper's mode-aware rule
  // wins ties so default-shaped workloads keep the prototype's behavior.
  std::array<std::unique_ptr<Predictor>, kMembers> members_;
  FdMap<Scores> scores_;
};

}  // namespace ppfs::prefetch
