// Access-pattern predictors.
//
// The prototype's prediction is "dynamic in nature and totally driven by
// the application's access requests. Details about when and where to
// prefetch is derived from the read request from the application." For the
// M_RECORD mode that means: this rank's next record is one full round
// (nprocs x request size) past the one it just read.
//
// ModeAwarePredictor reproduces the prototype. StridedPredictor is an
// extension (paper future work: "a greater variety of workloads and access
// patterns"): it learns an arbitrary constant stride from the observed
// request stream, covering backward and strided scans the mode-aware rule
// misses.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "pfs/client.hpp"
#include "sim/types.hpp"

namespace ppfs::prefetch {

using sim::ByteCount;
using sim::FileOffset;

class Predictor {
 public:
  virtual ~Predictor() = default;
  /// Given the read that just completed, the offsets worth prefetching
  /// next, nearest-first, at most `depth` of them.
  virtual std::vector<FileOffset> predict(pfs::PfsClient& client, int fd, FileOffset off,
                                          ByteCount len, std::size_t depth) = 0;
};

/// The prototype's rule: ask the client where this rank's next reads land
/// under the file's I/O mode (exact for M_RECORD / M_ASYNC / M_UNIX).
class ModeAwarePredictor final : public Predictor {
 public:
  std::vector<FileOffset> predict(pfs::PfsClient& client, int fd, FileOffset off,
                                  ByteCount len, std::size_t depth) override;
};

/// Pure sequential next-block rule (ignores mode interleaving): what a
/// uniprocessor readahead would do. Included as the paper's "strategies
/// that work well for sequential files in uniprocessor environments may
/// not extend" strawman — measurably wrong under M_RECORD.
class SequentialPredictor final : public Predictor {
 public:
  std::vector<FileOffset> predict(pfs::PfsClient& client, int fd, FileOffset off,
                                  ByteCount len, std::size_t depth) override;
};

/// Learns a constant stride from the last few requests on each fd.
/// Predicts off + k*stride once two consecutive deltas agree.
class StridedPredictor final : public Predictor {
 public:
  std::vector<FileOffset> predict(pfs::PfsClient& client, int fd, FileOffset off,
                                  ByteCount len, std::size_t depth) override;

  void forget(int fd);

 private:
  struct History {
    std::optional<FileOffset> prev;
    std::optional<std::int64_t> last_delta;
    std::optional<std::int64_t> stride;  // confirmed
  };
  std::vector<std::pair<int, History>> history_;
  History& state(int fd);
};

enum class PredictorKind { kModeAware, kSequential, kStrided };

std::unique_ptr<Predictor> make_predictor(PredictorKind kind);
const char* predictor_name(PredictorKind kind);

}  // namespace ppfs::prefetch
