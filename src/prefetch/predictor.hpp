// Access-pattern predictors.
//
// The prototype's prediction is "dynamic in nature and totally driven by
// the application's access requests. Details about when and where to
// prefetch is derived from the read request from the application." For the
// M_RECORD mode that means: this rank's next record is one full round
// (nprocs x request size) past the one it just read.
//
// ModeAwarePredictor reproduces the prototype. The others are extensions
// (paper future work: "a greater variety of workloads and access
// patterns"): StridedPredictor learns an arbitrary constant stride,
// ListIoPredictor learns a repeating cycle of deltas (the shape a
// vector-of-extents / list-I/O request stream produces), and
// EnsemblePredictor (ensemble.hpp) races all of them per fd with online
// confidence scoring.
//
// The API splits learning from prediction so the engine sits on an
// allocation-free read path: observe() mutates per-fd history, predict()
// is pure and fills a caller-provided span (a stack array in the engine),
// forget() drops per-fd state when the engine closes the file.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "pfs/client.hpp"
#include "prefetch/fd_map.hpp"
#include "sim/types.hpp"

namespace ppfs::prefetch {

using sim::ByteCount;
using sim::FileOffset;

/// Upper bound on readahead depth; sizes the engine's stack target buffer
/// and clamps PrefetchConfig::max_depth.
inline constexpr std::size_t kMaxPrefetchDepth = 32;

class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Feed the read that just completed into per-fd history. Called once
  /// per read, before predict(). Stateless predictors ignore it.
  virtual void observe(pfs::PfsClient& client, int fd, FileOffset off, ByteCount len) {
    (void)client;
    (void)fd;
    (void)off;
    (void)len;
  }

  /// Fill `out` with the offsets worth prefetching after the observed read,
  /// nearest-first, and return how many were written (<= out.size()).
  /// Pure: no history mutation, no allocation.
  virtual std::size_t predict(pfs::PfsClient& client, int fd, FileOffset off,
                              ByteCount len, std::span<FileOffset> out) = 0;

  /// Drop any per-fd history. Wired into the engine's close path so
  /// long-lived clients don't accumulate state for dead fds.
  virtual void forget(int fd) { (void)fd; }
};

/// The prototype's rule: ask the client where this rank's next reads land
/// under the file's I/O mode (exact for M_RECORD / M_ASYNC / M_UNIX).
class ModeAwarePredictor final : public Predictor {
 public:
  std::size_t predict(pfs::PfsClient& client, int fd, FileOffset off, ByteCount len,
                      std::span<FileOffset> out) override;
};

/// Pure sequential next-block rule (ignores mode interleaving): what a
/// uniprocessor readahead would do. Included as the paper's "strategies
/// that work well for sequential files in uniprocessor environments may
/// not extend" strawman — measurably wrong under M_RECORD.
class SequentialPredictor final : public Predictor {
 public:
  std::size_t predict(pfs::PfsClient& client, int fd, FileOffset off, ByteCount len,
                      std::span<FileOffset> out) override;
};

/// Learns a constant stride from the last few requests on each fd.
/// Predicts off + k*stride once two consecutive deltas agree.
class StridedPredictor final : public Predictor {
 public:
  void observe(pfs::PfsClient& client, int fd, FileOffset off, ByteCount len) override;
  std::size_t predict(pfs::PfsClient& client, int fd, FileOffset off, ByteCount len,
                      std::span<FileOffset> out) override;
  void forget(int fd) override;

 private:
  struct History {
    FileOffset prev = 0;
    std::int64_t last_delta = 0;
    std::int64_t stride = 0;  // confirmed; 0 = not yet learned
    bool has_prev = false;
    bool has_last_delta = false;
  };
  FdMap<History> history_;
};

/// Learns a repeating cycle of deltas — the access shape of list-I/O
/// (vector-of-extents) requests, where a process walks a frame of extents
/// separated by gaps and then jumps to the next frame. A constant stride
/// is the period-1 special case, but this predictor needs two full cycles
/// to confirm, so StridedPredictor stays the faster learner there.
class ListIoPredictor final : public Predictor {
 public:
  /// Longest delta cycle the predictor can confirm.
  static constexpr std::size_t kMaxPeriod = 8;

  void observe(pfs::PfsClient& client, int fd, FileOffset off, ByteCount len) override;
  std::size_t predict(pfs::PfsClient& client, int fd, FileOffset off, ByteCount len,
                      std::span<FileOffset> out) override;
  void forget(int fd) override;

 private:
  static constexpr std::size_t kRing = 16;  // power of two, >= 2*kMaxPeriod
  struct History {
    std::int64_t deltas[kRing] = {};  // ring of most recent deltas
    std::uint64_t count = 0;          // deltas ever pushed
    FileOffset prev = 0;
    std::size_t period = 0;  // confirmed cycle length; 0 = not yet learned
    bool has_prev = false;
  };
  FdMap<History> history_;

  /// Re-search the ring for the smallest confirmed cycle (sets h.period).
  static void detect(History& h);
};

enum class PredictorKind { kModeAware, kSequential, kStrided, kListIo, kEnsemble };

std::unique_ptr<Predictor> make_predictor(PredictorKind kind);
const char* predictor_name(PredictorKind kind);

}  // namespace ppfs::prefetch
