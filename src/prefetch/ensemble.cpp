#include "prefetch/ensemble.hpp"

namespace ppfs::prefetch {

EnsemblePredictor::EnsemblePredictor() {
  members_[0] = std::make_unique<ModeAwarePredictor>();
  members_[1] = std::make_unique<StridedPredictor>();
  members_[2] = std::make_unique<ListIoPredictor>();
  members_[3] = std::make_unique<SequentialPredictor>();
}

const char* EnsemblePredictor::member_name(std::size_t i) {
  switch (i) {
    case 0: return "mode-aware";
    case 1: return "strided";
    case 2: return "list-io";
    case 3: return "sequential";
    default: return "?";
  }
}

void EnsemblePredictor::observe(pfs::PfsClient& client, int fd, FileOffset off,
                                ByteCount len) {
  Scores& s = scores_.get_or_insert(fd);
  // 1. Settle last round's bets: did the member's top-1 call land on the
  //    read that actually arrived?
  for (std::size_t i = 0; i < kMembers; ++i) {
    const bool correct = s.valid[i] && s.expected[i] == off;
    s.score[i] = static_cast<std::int16_t>(s.score[i] / 2 + (correct ? 128 : 0));
  }
  // 2. Let every member learn from the read.
  for (auto& m : members_) m->observe(client, fd, off, len);
  // 3. Record each member's next top-1 call for the following round.
  for (std::size_t i = 0; i < kMembers; ++i) {
    FileOffset top = 0;
    const std::size_t n = members_[i]->predict(client, fd, off, len, {&top, 1});
    s.valid[i] = n == 1;
    s.expected[i] = top;
  }
}

int EnsemblePredictor::pick(const Scores& s) const {
  int best = -1;
  int best_score = kConfidenceFloor - 1;
  for (std::size_t i = 0; i < kMembers; ++i) {
    if (s.score[i] > best_score) {  // strict '>' keeps lowest-index tie-break
      best = static_cast<int>(i);
      best_score = s.score[i];
    }
  }
  return best;
}

// ppfs::hot — per-read decision: probe the score map, argmax over four
// ints, delegate to the winner's pure predict; no allocation
std::size_t EnsemblePredictor::predict(pfs::PfsClient& client, int fd, FileOffset off,
                                       ByteCount len, std::span<FileOffset> out) {
  const Scores* s = scores_.find(fd);
  if (!s || out.empty()) return 0;
  const int w = pick(*s);
  if (w < 0) return 0;  // nobody confident: issue nothing rather than guess
  return members_[static_cast<std::size_t>(w)]->predict(client, fd, off, len, out);
}
// ppfs::endhot

void EnsemblePredictor::forget(int fd) {
  scores_.erase(fd);
  for (auto& m : members_) m->forget(fd);
}

int EnsemblePredictor::winner(int fd) const {
  const Scores* s = scores_.find(fd);
  return s ? pick(*s) : -1;
}

int EnsemblePredictor::score(int fd, std::size_t i) const {
  const Scores* s = scores_.find(fd);
  return s && i < kMembers ? s->score[i] : 0;
}

}  // namespace ppfs::prefetch
