#include "prefetch/predictor.hpp"

#include <memory>
#include <stdexcept>

namespace ppfs::prefetch {

std::vector<FileOffset> ModeAwarePredictor::predict(pfs::PfsClient& client, int fd,
                                                    FileOffset /*off*/, ByteCount len,
                                                    std::size_t depth) {
  if (!client.next_offset_predictable(fd) || len == 0) return {};
  std::vector<FileOffset> out;
  // The client's pointer has already advanced past the read we were told
  // about, so next_read_offset names the upcoming read. Steps beyond it
  // advance by one "round": nprocs*len for M_RECORD, len otherwise.
  const FileOffset next = client.next_read_offset(fd, len);
  const ByteCount step = client.mode_of(fd) == pfs::IoMode::kRecord
                             ? static_cast<ByteCount>(client.nprocs()) * len
                             : len;
  const ByteCount fsize = client.file_size(fd);
  for (std::size_t k = 0; k < depth; ++k) {
    const FileOffset p = next + static_cast<FileOffset>(k) * step;
    if (p >= fsize) break;
    out.push_back(p);
  }
  return out;
}

std::vector<FileOffset> SequentialPredictor::predict(pfs::PfsClient& client, int fd,
                                                     FileOffset off, ByteCount len,
                                                     std::size_t depth) {
  if (len == 0) return {};
  std::vector<FileOffset> out;
  const ByteCount fsize = client.file_size(fd);
  for (std::size_t k = 1; k <= depth; ++k) {
    const FileOffset p = off + static_cast<FileOffset>(k) * len;
    if (p >= fsize) break;
    out.push_back(p);
  }
  return out;
}

StridedPredictor::History& StridedPredictor::state(int fd) {
  for (auto& [id, h] : history_) {
    if (id == fd) return h;
  }
  history_.emplace_back(fd, History{});
  return history_.back().second;
}

void StridedPredictor::forget(int fd) {
  for (auto it = history_.begin(); it != history_.end(); ++it) {
    if (it->first == fd) {
      history_.erase(it);
      return;
    }
  }
}

std::vector<FileOffset> StridedPredictor::predict(pfs::PfsClient& client, int fd,
                                                  FileOffset off, ByteCount /*len*/,
                                                  std::size_t depth) {
  History& h = state(fd);
  std::vector<FileOffset> out;
  if (h.prev) {
    const auto delta =
        static_cast<std::int64_t>(off) - static_cast<std::int64_t>(*h.prev);
    if (h.last_delta && *h.last_delta == delta && delta != 0) {
      h.stride = delta;  // two agreeing deltas confirm the stride
    } else if (h.stride && delta != *h.stride) {
      h.stride.reset();  // pattern broke; relearn
    }
    h.last_delta = delta;
  }
  h.prev = off;

  if (h.stride) {
    const ByteCount fsize = client.file_size(fd);
    for (std::size_t k = 1; k <= depth; ++k) {
      const std::int64_t p =
          static_cast<std::int64_t>(off) + static_cast<std::int64_t>(k) * *h.stride;
      if (p < 0 || static_cast<FileOffset>(p) >= fsize) break;
      out.push_back(static_cast<FileOffset>(p));
    }
  }
  return out;
}

std::unique_ptr<Predictor> make_predictor(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kModeAware: return std::make_unique<ModeAwarePredictor>();
    case PredictorKind::kSequential: return std::make_unique<SequentialPredictor>();
    case PredictorKind::kStrided: return std::make_unique<StridedPredictor>();
  }
  throw std::invalid_argument("make_predictor: unknown kind");
}

const char* predictor_name(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kModeAware: return "mode-aware";
    case PredictorKind::kSequential: return "sequential";
    case PredictorKind::kStrided: return "strided";
  }
  return "?";
}

}  // namespace ppfs::prefetch
