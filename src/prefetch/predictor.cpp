#include "prefetch/predictor.hpp"

#include <memory>
#include <stdexcept>

#include "prefetch/ensemble.hpp"

namespace ppfs::prefetch {

std::size_t ModeAwarePredictor::predict(pfs::PfsClient& client, int fd, FileOffset /*off*/,
                                        ByteCount len, std::span<FileOffset> out) {
  if (!client.next_offset_predictable(fd) || len == 0 || out.empty()) return 0;
  // The client's pointer has already advanced past the read we were told
  // about, so next_read_offset names the upcoming read. Steps beyond it
  // advance by one "round": nprocs*len for M_RECORD, len otherwise.
  const FileOffset next = client.next_read_offset(fd, len);
  const ByteCount step = client.mode_of(fd) == pfs::IoMode::kRecord
                             ? static_cast<ByteCount>(client.nprocs()) * len
                             : len;
  const ByteCount fsize = client.file_size(fd);
  std::size_t n = 0;
  for (std::size_t k = 0; k < out.size(); ++k) {
    const FileOffset p = next + static_cast<FileOffset>(k) * step;
    if (p >= fsize) break;
    out[n++] = p;
  }
  return n;
}

std::size_t SequentialPredictor::predict(pfs::PfsClient& client, int fd, FileOffset off,
                                         ByteCount len, std::span<FileOffset> out) {
  if (len == 0 || out.empty()) return 0;
  const ByteCount fsize = client.file_size(fd);
  std::size_t n = 0;
  for (std::size_t k = 1; k <= out.size(); ++k) {
    const FileOffset p = off + static_cast<FileOffset>(k) * len;
    if (p >= fsize) break;
    out[n++] = p;
  }
  (void)fd;
  return n;
}

void StridedPredictor::observe(pfs::PfsClient& /*client*/, int fd, FileOffset off,
                               ByteCount /*len*/) {
  History& h = history_.get_or_insert(fd);
  if (h.has_prev) {
    const auto delta = static_cast<std::int64_t>(off) - static_cast<std::int64_t>(h.prev);
    if (h.has_last_delta && h.last_delta == delta && delta != 0) {
      h.stride = delta;  // two agreeing deltas confirm the stride
    } else if (h.stride != 0 && delta != h.stride) {
      h.stride = 0;  // pattern broke; relearn
    }
    h.last_delta = delta;
    h.has_last_delta = true;
  }
  h.prev = off;
  h.has_prev = true;
}

void StridedPredictor::forget(int fd) { history_.erase(fd); }

// ppfs::hot — per-read prediction: probe the fd map, walk the confirmed
// stride; no history mutation, no allocation
std::size_t StridedPredictor::predict(pfs::PfsClient& client, int fd, FileOffset off,
                                      ByteCount /*len*/, std::span<FileOffset> out) {
  const History* h = history_.find(fd);
  if (!h || h->stride == 0 || out.empty()) return 0;
  const ByteCount fsize = client.file_size(fd);
  std::size_t n = 0;
  for (std::size_t k = 1; k <= out.size(); ++k) {
    const std::int64_t p =
        static_cast<std::int64_t>(off) + static_cast<std::int64_t>(k) * h->stride;
    if (p < 0 || static_cast<FileOffset>(p) >= fsize) break;
    out[n++] = static_cast<FileOffset>(p);
  }
  return n;
}
// ppfs::endhot

void ListIoPredictor::detect(History& h) {
  // Smallest period p whose last two cycles of deltas agree elementwise.
  // Needs 2p observed deltas, so a length-p cycle confirms after two full
  // frames — slower than StridedPredictor's two-delta rule but able to
  // follow irregular per-frame extent walks.
  for (std::size_t p = 1; p <= kMaxPeriod; ++p) {
    if (h.count < 2 * p) break;
    bool match = true;
    for (std::size_t i = 0; i < p; ++i) {
      const std::int64_t recent = h.deltas[(h.count - 1 - i) & (kRing - 1)];
      const std::int64_t prior = h.deltas[(h.count - 1 - i - p) & (kRing - 1)];
      if (recent != prior) {
        match = false;
        break;
      }
    }
    if (match) {
      h.period = p;
      return;
    }
  }
  h.period = 0;
}

void ListIoPredictor::observe(pfs::PfsClient& /*client*/, int fd, FileOffset off,
                              ByteCount /*len*/) {
  History& h = history_.get_or_insert(fd);
  if (h.has_prev) {
    const auto delta = static_cast<std::int64_t>(off) - static_cast<std::int64_t>(h.prev);
    h.deltas[h.count & (kRing - 1)] = delta;
    ++h.count;
    if (h.period != 0) {
      // Confirmed cycle: the newest delta must repeat the one a period ago.
      const std::int64_t expected = h.deltas[(h.count - 1 - h.period) & (kRing - 1)];
      if (delta != expected) detect(h);  // pattern broke; re-search
    } else {
      detect(h);
    }
  }
  h.prev = off;
  h.has_prev = true;
}

void ListIoPredictor::forget(int fd) { history_.erase(fd); }

// ppfs::hot — per-read prediction: replay the confirmed delta cycle from
// the ring; no history mutation, no allocation
std::size_t ListIoPredictor::predict(pfs::PfsClient& client, int fd, FileOffset off,
                                     ByteCount /*len*/, std::span<FileOffset> out) {
  const History* h = history_.find(fd);
  if (!h || h->period == 0 || out.empty()) return 0;
  const ByteCount fsize = client.file_size(fd);
  // The next delta repeats the one `period` steps back; walk the cycle
  // forward from there.
  std::int64_t p = static_cast<std::int64_t>(off);
  std::size_t n = 0;
  for (std::size_t k = 0; k < out.size(); ++k) {
    p += h->deltas[(h->count - h->period + (k % h->period)) & (kRing - 1)];
    if (p < 0 || static_cast<FileOffset>(p) >= fsize) break;
    out[n++] = static_cast<FileOffset>(p);
  }
  return n;
}
// ppfs::endhot

std::unique_ptr<Predictor> make_predictor(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kModeAware: return std::make_unique<ModeAwarePredictor>();
    case PredictorKind::kSequential: return std::make_unique<SequentialPredictor>();
    case PredictorKind::kStrided: return std::make_unique<StridedPredictor>();
    case PredictorKind::kListIo: return std::make_unique<ListIoPredictor>();
    case PredictorKind::kEnsemble: return std::make_unique<EnsemblePredictor>();
  }
  throw std::invalid_argument("make_predictor: unknown kind");
}

const char* predictor_name(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kModeAware: return "mode-aware";
    case PredictorKind::kSequential: return "sequential";
    case PredictorKind::kStrided: return "strided";
    case PredictorKind::kListIo: return "list-io";
    case PredictorKind::kEnsemble: return "ensemble";
  }
  return "?";
}

}  // namespace ppfs::prefetch
