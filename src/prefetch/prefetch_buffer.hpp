// The per-file prefetch buffer list — the prototype's core data structure.
//
// "Once the asynchronous request is done, the data that has been read is
// stored in a buffer along with other details such as the PFS file offset,
// the size of the data in bytes etc. This prefetch buffer structure is part
// of a list of all the prefetch buffer structures of data that have been
// prefetched from that particular file. ... Memory for the prefetch buffers
// is allocated in the compute node. At the time the process closes the
// file, all the prefetch buffers are freed."
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <vector>

#include "pfs/async.hpp"
#include "sim/types.hpp"

namespace ppfs::prefetch {

using sim::ByteCount;
using sim::FileOffset;

/// One prefetched (or in-flight) block, plus its tracking details.
struct PrefetchBuffer {
  FileOffset offset = 0;   // PFS file offset of the data
  ByteCount length = 0;    // size of the data in bytes
  /// Mount topology epoch when the prefetch was issued. A crash or restart
  /// bumps the epoch; a buffer stamped in a dead epoch must never be served
  /// (its bytes may predate the crash) — try_serve discards it instead.
  std::uint64_t epoch = 0;
  std::vector<std::byte> data;  // compute-node memory holding the block
  pfs::AsyncHandle request;     // the asynchronous request that fills it

  bool in_flight() const { return request && !request->done.is_set(); }
  bool completed() const { return request && request->done.is_set(); }
};

/// The list of prefetch buffers belonging to one open file.
class PrefetchBufferList {
 public:
  using Handle = std::shared_ptr<PrefetchBuffer>;

  /// Append a buffer (newest last, mirroring issue order).
  void add(Handle buf);

  /// Exact-match lookup (offset AND length): the prototype prefetches the
  /// precise block it anticipates, so a hit means the anticipated read
  /// arrived. Does not remove the buffer.
  Handle find(FileOffset offset, ByteCount length) const;

  /// Any buffer overlapping [offset, offset+length) — used to detect and
  /// retire stale/partially-matching prefetches.
  std::vector<Handle> overlapping(FileOffset offset, ByteCount length) const;

  void remove(const Handle& buf);
  /// Oldest buffer (first issued), or nullptr when empty.
  Handle oldest() const { return buffers_.empty() ? nullptr : buffers_.front(); }
  /// Detach every buffer (file close): returns them so in-flight ones can
  /// be parked until their ARTs finish.
  std::vector<Handle> drain();

  std::size_t size() const noexcept { return buffers_.size(); }
  bool empty() const noexcept { return buffers_.empty(); }
  ByteCount resident_bytes() const noexcept { return resident_bytes_; }

 private:
  std::list<Handle> buffers_;
  ByteCount resident_bytes_ = 0;
};

}  // namespace ppfs::prefetch
