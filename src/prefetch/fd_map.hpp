// FdMap — a small open-addressed hash map from file descriptors to per-fd
// prefetch state.
//
// Every predictor and the adaptive controller keep per-fd state that is
// consulted on EVERY read (the per-read decision path). The original
// StridedPredictor used a linear-scan std::vector<std::pair<int, History>>
// that also never dropped entries on close, so a long-lived client leaked
// one History per fd ever opened and paid an O(open-files-ever) scan per
// read. FdMap fixes both: lookups are O(1) probes over a flat slot array,
// and erase() is wired into the engine's close path via
// Predictor::forget(fd).
//
// Determinism: iteration order is never exposed; behavior depends only on
// the key sequence, never on addresses or randomization.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ppfs::prefetch {

template <typename T>
class FdMap {
 public:
  // ppfs::hot — exact-key probe on the per-read decision path: flat linear
  // probing, no allocation, no stdlib call deeper than operator[]
  /// Pointer to the value for `fd`, or nullptr when absent. Never inserts.
  T* find(int fd) noexcept {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = probe_start(fd);; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.state == State::kEmpty) return nullptr;
      if (s.state == State::kFull && s.key == fd) return &s.value;
    }
  }
  const T* find(int fd) const noexcept {
    return const_cast<FdMap*>(this)->find(fd);
  }
  // ppfs::endhot

  /// Value for `fd`, inserting a default-constructed one if absent. May
  /// rehash — callers use this on the open path, find() on the read path.
  T& get_or_insert(int fd) {
    if (T* v = find(fd)) return *v;
    if (slots_.empty() || (count_ + tombstones_ + 1) * 4 > slots_.size() * 3) {
      rehash(slots_.empty() ? kInitialSlots : slots_.size() * 2);
    }
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = probe_start(fd);; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.state != State::kFull) {
        if (s.state == State::kTombstone) --tombstones_;
        s.state = State::kFull;
        s.key = fd;
        s.value = T{};
        ++count_;
        return s.value;
      }
    }
  }

  /// Drop `fd`'s entry (no-op when absent). Tombstoned; the dead slot is
  /// reclaimed by the next growth rehash.
  void erase(int fd) noexcept {
    if (slots_.empty()) return;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = probe_start(fd);; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.state == State::kEmpty) return;
      if (s.state == State::kFull && s.key == fd) {
        s.state = State::kTombstone;
        s.value = T{};
        --count_;
        ++tombstones_;
        return;
      }
    }
  }

  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

 private:
  enum class State : std::uint8_t { kEmpty, kFull, kTombstone };
  struct Slot {
    T value{};
    int key = 0;
    State state = State::kEmpty;
  };
  static constexpr std::size_t kInitialSlots = 16;
  static_assert(std::has_single_bit(kInitialSlots),
                "probe masking requires a power-of-two slot count");

  std::size_t probe_start(int fd) const noexcept {
    // Fibonacci hashing; fds are small dense ints, so spread them.
    const std::uint64_t h =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(fd)) * 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(h >> 32) & (slots_.size() - 1);
  }

  void rehash(std::size_t new_slots) {
    // Probing masks with size-1, which is only a valid modulus for powers
    // of two: any other size silently skips slots (lookups miss live keys,
    // inserts can spin). Round up rather than trust the caller, and keep
    // an assert so a zero/overflowed request fails loudly in debug builds.
    new_slots = std::bit_ceil(new_slots < kInitialSlots ? kInitialSlots : new_slots);
    assert(std::has_single_bit(new_slots) && new_slots >= kInitialSlots);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slots, Slot{});
    count_ = 0;
    tombstones_ = 0;
    for (Slot& s : old) {
      if (s.state == State::kFull) get_or_insert(s.key) = std::move(s.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t count_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace ppfs::prefetch
