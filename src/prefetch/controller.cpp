#include "prefetch/controller.hpp"

#include <algorithm>

namespace ppfs::prefetch {

AdaptiveController::AdaptiveController(ControllerParams p) : p_(p) {
  p_.min_depth = std::max<std::size_t>(p_.min_depth, 1);
  p_.max_depth = std::max(p_.max_depth, p_.min_depth);
  p_.window = std::max<std::size_t>(p_.window, 1);
  p_.miss_storm = std::max<std::size_t>(p_.miss_storm, 1);
}

AdaptiveController::State& AdaptiveController::state(int fd) {
  State* s = fds_.find(fd);
  if (s) return *s;
  State& fresh = fds_.get_or_insert(fd);
  fresh.depth = static_cast<std::uint32_t>(p_.min_depth);
  // Seeded window phase: the first window is shortened to
  // window - seed % window reads, so evaluation instants shift with the
  // seed while the trajectory stays a pure function of (seed, read
  // stream). Only real reads are counted against the target — a phased
  // window must not be scored as if its missing reads were misses.
  fresh.win_target =
      static_cast<std::uint32_t>(p_.window - p_.seed % p_.window);
  return fresh;
}

void AdaptiveController::on_open(int fd) { (void)state(fd); }

void AdaptiveController::on_close(int fd) { fds_.erase(fd); }

void AdaptiveController::evaluate(State& s) {
  const std::uint32_t reads = s.win_reads;
  const std::uint32_t hits = s.win_hits;
  const bool wasted = s.win_wasted != 0;
  s.win_reads = 0;
  s.win_hits = 0;
  s.win_wasted = 0;
  s.win_target = static_cast<std::uint32_t>(p_.window);
  if (!wasted && hits * 4 >= reads * 3) {
    // Confirmed useful window: double the readahead.
    const auto next = std::min<std::size_t>(s.depth * 2, p_.max_depth);
    if (next != s.depth) {
      s.depth = static_cast<std::uint32_t>(next);
      ++counters_.ramp_ups;
    }
  } else if (hits * 2 < reads || wasted) {
    // Losing (or wasteful) window: back off.
    const auto next = std::max<std::size_t>(s.depth / 2, p_.min_depth);
    if (next != s.depth) {
      s.depth = static_cast<std::uint32_t>(next);
      ++counters_.ramp_downs;
    }
  }
}

void AdaptiveController::collapse(State& s) {
  if (s.depth != p_.min_depth) {
    s.depth = static_cast<std::uint32_t>(p_.min_depth);
    ++counters_.collapses;
  }
  s.win_reads = 0;
  s.win_hits = 0;
  s.win_wasted = 0;
  s.consec_miss = 0;
  s.win_target = static_cast<std::uint32_t>(p_.window);
}

void AdaptiveController::account_read(State& s, bool hit) {
  ++s.win_reads;
  if (hit) s.win_hits += 1;
  if (s.win_reads >= s.win_target) evaluate(s);
}

void AdaptiveController::on_hit(int fd) {
  State& s = state(fd);
  s.consec_miss = 0;
  account_read(s, true);
}

void AdaptiveController::on_miss(int fd) {
  State& s = state(fd);
  ++s.consec_miss;
  if (s.consec_miss >= p_.miss_storm) {
    // The pattern broke outright; don't wait for the window to close.
    collapse(s);
    return;
  }
  account_read(s, false);
}

void AdaptiveController::on_wasted(int fd, std::uint64_t n) {
  if (n == 0) return;
  State& s = state(fd);
  s.win_wasted += static_cast<std::uint32_t>(std::min<std::uint64_t>(n, 1u << 20));
}

void AdaptiveController::on_fault(int fd) { collapse(state(fd)); }

}  // namespace ppfs::prefetch
