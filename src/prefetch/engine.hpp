// PrefetchEngine — the paper's contribution, client-side system-level
// prefetching for the PFS.
//
// Behavior reproduced from Section 3 of the paper:
//  * a prefetch is issued "following any read request", as an asynchronous
//    request through the existing ART machinery;
//  * "the prototype prefetches only one block of data it anticipates will
//    be needed for the future read request" (depth = 1; depth > 1 is this
//    library's extension for the ablation benches);
//  * prefetched data lands in a prefetch buffer allocated in compute-node
//    memory and is linked into the file's prefetch buffer list;
//  * file pointers are never moved by a prefetch;
//  * on a hit the data is copied prefetch-buffer -> user buffer (the copy
//    is the overhead that makes prefetching a slight loss for small
//    requests with no compute overlap — Tables 1 and 3);
//  * a hit on a still-in-flight prefetch waits only for the remainder
//    ("even if ... a miss when the request is presented, if most of the
//    read is already done, the performance benefits can be tremendous");
//  * on close, every buffer is freed.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>

#include "pfs/client.hpp"
#include "prefetch/controller.hpp"
#include "prefetch/predictor.hpp"
#include "prefetch/prefetch_buffer.hpp"
#include "sim/types.hpp"

namespace ppfs::sim::check {
class Auditor;
}

namespace ppfs::prefetch {

struct PrefetchConfig {
  bool enabled = true;
  /// Blocks to keep ahead of the application. The paper's prototype: 1.
  std::size_t depth = 1;
  /// Cap on resident prefetch buffers per file.
  std::size_t max_buffers_per_file = 16;
  PredictorKind predictor = PredictorKind::kModeAware;

  /// Adaptive throttling (library extension, paper future work): after
  /// `adaptive_cutoff` consecutive useless prefetches (discarded stale or
  /// freed unconsumed), stop issuing; every `adaptive_probe_period` reads
  /// issue one probe, and a probe hit re-enables full prefetching. Guards
  /// against unpredictable access patterns wasting disk time.
  bool adaptive = false;
  std::size_t adaptive_cutoff = 4;
  std::size_t adaptive_probe_period = 8;

  /// Fault-aware degradation: when the client's RPC envelope reports fault
  /// activity (or an I/O daemon is down), the engine sheds every resident
  /// prefetch buffer and pauses speculation; it resumes after this many
  /// consecutive fault-free reads.
  std::size_t fault_resume_reads = 3;

  /// Adaptive readahead depth (AdaptaFetch, default off): per-fd windowed
  /// hit-rate feedback scales depth between 1 and `max_depth`, bounded by
  /// max_buffers_per_file. When off, `depth` above is used verbatim and
  /// the event stream is bit-identical to the fixed-depth engine.
  bool adaptive_depth = false;
  std::size_t max_depth = 8;
  /// Reads per feedback window (controller evaluation cadence).
  std::size_t feedback_window = 4;
  /// Consecutive misses that collapse depth to 1 immediately.
  std::size_t miss_storm = 4;
  /// Phases the controller's feedback windows; part of the deterministic
  /// adaptation state (same seed + same read stream = same trajectory).
  std::uint64_t adaptive_seed = 1;
};

struct PrefetchStats {
  std::uint64_t issued = 0;          // prefetch requests posted
  std::uint64_t hits_ready = 0;      // served from a completed buffer
  std::uint64_t hits_in_flight = 0;  // served after waiting for an active ART
  std::uint64_t misses = 0;          // no matching buffer
  std::uint64_t stale_discarded = 0; // overlapping-but-wrong buffers dropped
  std::uint64_t wasted = 0;          // never-consumed buffers freed at close
  std::uint64_t throttled_skips = 0; // prefetches suppressed by the throttle
  std::uint64_t shed = 0;            // buffers dropped on fault activity
  std::uint64_t epoch_discarded = 0; // dead-epoch buffers refused at serve time
  std::uint64_t fault_pauses = 0;    // times speculation was paused by faults
  std::uint64_t fault_skips = 0;     // reads that issued no prefetch while paused
  sim::ByteCount bytes_prefetched = 0;
  sim::ByteCount bytes_served = 0;
  sim::SimTime wait_time = 0;        // stall on in-flight hits

  // AdaptaFetch controller activity (all zero when adaptive depth is off).
  std::uint64_t depth_ramp_ups = 0;
  std::uint64_t depth_ramp_downs = 0;
  std::uint64_t depth_collapses = 0;  // miss-storm / fault collapses to 1
  /// Prefetched bytes that never reached the application (stale discards,
  /// cap evictions, shed, dead-epoch, freed at close).
  sim::ByteCount wasted_bytes = 0;
  /// Histogram of the depth used per issuing opportunity: bucket 0 counts
  /// after_read calls that issued nothing (no prediction / depth 0),
  /// bucket k counts calls made at depth k, the last bucket >= its index.
  static constexpr std::size_t kDepthHistBuckets = 9;
  std::array<std::uint64_t, kDepthHistBuckets> depth_hist{};

  double hit_ratio() const {
    const auto total = hits_ready + hits_in_flight + misses;
    return total ? static_cast<double>(hits_ready + hits_in_flight) /
                       static_cast<double>(total)
                 : 0.0;
  }
  /// Fraction of issued prefetches the application actually consumed.
  double useful_ratio() const {
    return issued ? static_cast<double>(hits_ready + hits_in_flight) /
                        static_cast<double>(issued)
                  : 0.0;
  }
};

class PrefetchEngine final : public pfs::Prefetcher {
 public:
  PrefetchEngine(pfs::PfsClient& client, PrefetchConfig cfg);
  /// Verifies SimCheck buffer conservation for this engine: every buffer
  /// ever allocated ended consumed, discarded, or freed at close.
  ~PrefetchEngine() override;

  // --- pfs::Prefetcher ---
  sim::Task<std::optional<ByteCount>> try_serve(int fd, FileOffset off, ByteCount len,
                                                std::span<std::byte> out) override;
  sim::Task<void> after_read(int fd, FileOffset off, ByteCount len) override;
  void on_open(int fd) override;
  void on_close(int fd) override;

  const PrefetchStats& stats() const noexcept { return stats_; }
  const PrefetchConfig& config() const noexcept { return cfg_; }
  /// Buffers currently resident for an fd (0 if unknown fd).
  std::size_t resident_buffers(int fd) const;
  /// True if the adaptive throttle has suppressed prefetching on this fd.
  bool throttled(int fd) const;
  /// True while fault activity has speculation paused.
  bool fault_paused() const noexcept { return fault_paused_; }
  /// Readahead depth the next after_read on this fd will use (the fixed
  /// config depth unless the adaptive controller is on).
  std::size_t current_depth(int fd) const;
  /// The adaptive controller, or nullptr when adaptive depth is off.
  const AdaptiveController* controller() const noexcept { return controller_.get(); }
  /// The predictor driving this engine (exposed for ensemble inspection).
  const Predictor& predictor() const noexcept { return *predictor_; }

 private:
  /// Park a buffer whose ART may still be writing into it; it is freed
  /// once the request completes.
  void retire(PrefetchBufferList::Handle buf);
  sim::Task<void> reap(PrefetchBufferList::Handle buf);

  struct FdState {
    PrefetchBufferList list;
    std::size_t useless_streak = 0;
    bool throttled = false;
    std::uint64_t reads_since_throttle = 0;
  };

  void note_useless(FdState& st, std::uint64_t count);
  /// Feed a serve outcome to the adaptive controller and trace/record any
  /// resulting depth transition. No-op when adaptive depth is off.
  void depth_feedback(int fd, bool hit);
  /// Emit the depth-change instant + per-fd depth counter sample.
  void note_depth(int fd, std::size_t depth);
  /// Mirror the controller's ramp/collapse counters into stats_.
  void sync_controller_stats();
  /// Drop every resident prefetch buffer across all fds (fault response:
  /// speculative disk work only competes with recovery traffic).
  void shed_all();
  /// Returns true if after_read should skip issuing prefetches because of
  /// fault activity (sheds buffers / counts quiet reads as a side effect).
  bool fault_gate();
  /// The SimCheck auditor of the simulation this engine runs in (nullptr
  /// when auditing is compiled out).
  sim::check::Auditor* auditor() const;

  /// TraceScope hooks: a point event on this rank's prefetch row, and the
  /// buffer-occupancy counter sampled after every resident-set change.
  void trace_instant(std::uint8_t code, FileOffset off, ByteCount len) const;
  void occupancy_changed(std::int64_t dbuffers, std::int64_t dbytes);

  pfs::PfsClient& client_;
  PrefetchConfig cfg_;
  std::unique_ptr<Predictor> predictor_;
  std::unique_ptr<AdaptiveController> controller_;  // non-null iff adaptive_depth
  std::map<int, FdState> lists_;
  PrefetchStats stats_;
  std::uint64_t last_fault_signal_ = 0;  // client RPC fault counter last seen
  bool fault_paused_ = false;
  std::uint64_t quiet_reads_ = 0;  // fault-free reads since the pause
  std::uint64_t resident_count_ = 0;  // buffers resident across all fds
  std::uint64_t resident_bytes_ = 0;  // bytes those buffers hold
};

/// Convenience: construct an engine and attach it to the client. The
/// returned engine must outlive the client's use of it.
std::unique_ptr<PrefetchEngine> attach_prefetcher(pfs::PfsClient& client, PrefetchConfig cfg);

}  // namespace ppfs::prefetch
