// Small vector with inline storage for the kernel hot path.
//
// InlineVec<T, N> keeps up to N elements in the object itself (no heap
// traffic) and spills to a doubling heap buffer only beyond that. It exists
// for per-event scratch state — link routes, held resource guards — where a
// std::vector would cost an allocation per simulated message. Move-only
// element types (e.g. sim::ResourceGuard) are supported; the container
// itself is non-copyable and non-movable because it hands out interior
// pointers into its own storage.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ppfs::sim {

template <typename T, std::size_t N>
class InlineVec {
  static_assert(N > 0, "InlineVec needs at least one inline slot");

 public:
  InlineVec() noexcept : data_(inline_ptr()) {}
  InlineVec(const InlineVec&) = delete;
  InlineVec& operator=(const InlineVec&) = delete;
  ~InlineVec() {
    clear();
    release_heap(data_);
  }

  T& push_back(T value) { return emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow();
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  /// Elements are destroyed in insertion order: resource guards released
  /// through teardown must free in the same deterministic order a
  /// std::vector of guards would, or event-dispatch digests change.
  void clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return capacity_; }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

 private:
  T* inline_ptr() noexcept { return reinterpret_cast<T*>(storage_); }
  const T* inline_ptr() const noexcept { return reinterpret_cast<const T*>(storage_); }

  void release_heap(T* p) noexcept {
    if (p != inline_ptr()) {
      ::operator delete(static_cast<void*>(p), std::align_val_t{alignof(T)});
    }
  }

  void grow() {
    const std::size_t new_cap = capacity_ * 2;
    T* fresh = static_cast<T*>(
        ::operator new(new_cap * sizeof(T), std::align_val_t{alignof(T)}));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    release_heap(data_);
    data_ = fresh;
    capacity_ = new_cap;
  }

  alignas(T) std::byte storage_[N * sizeof(T)];
  T* data_;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace ppfs::sim
