// The discrete-event simulation kernel.
//
// A Simulation owns a time-ordered event queue. Events are either coroutine
// resumptions (the common case: a simulation process waking from a delay or
// a resource grant) or plain callbacks. Ties in time are broken by insertion
// order, so runs are fully deterministic.
//
// Processes are Task<void> coroutines started with spawn(). A spawned
// process begins executing immediately (at the current simulated time) and
// runs until its first co_await. Errors escaping a spawned process are
// captured and rethrown from run(), so tests fail loudly instead of
// silently dropping a process.
//
// Two correctness facilities back the determinism claim (see
// src/sim/check/):
//  * every dispatched event is folded into a streaming FNV-1a determinism
//    digest (digest()); identical scenarios must produce identical digests;
//  * when built with PPFS_SIMCHECK (default ON), the kernel carries a
//    SimCheck Auditor (auditor()) that enforces causality, coroutine-frame
//    lifetime, resource accounting, and prefetch-buffer conservation
//    invariants at runtime.
//
// Aborted runs do not leak coroutine frames: a process error rethrown from
// run() first destroys every still-pending process (while the objects its
// frames reference are still alive), and ~Simulation() destroys whatever
// remains. Callers that drop a Simulation with processes still blocked
// should make sure those processes only reference objects that outlive the
// Simulation, or call destroy_pending_processes() at a safe point.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "sim/check/audit.hpp"
#include "sim/check/digest.hpp"
#include "sim/event_queue.hpp"
#include "sim/small_fn.hpp"
#include "sim/task.hpp"
#include "sim/types.hpp"

namespace ppfs::trace {
class TraceSink;
}

namespace ppfs::sim {

class Simulation {
 public:
  Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  ~Simulation();

  /// Current simulated time in seconds.
  SimTime now() const noexcept { return now_; }

  /// Schedule a coroutine resumption at absolute time t (>= now).
  void schedule_at(SimTime t, std::coroutine_handle<> h);
  /// Schedule a coroutine resumption dt seconds from now.
  void schedule_in(SimTime dt, std::coroutine_handle<> h) { schedule_at(now_ + dt, h); }
  /// Schedule a plain callback at absolute time t. Small trivially-copyable
  /// closures (≤16 bytes of captured state) are stored inline in the queue;
  /// larger or non-trivial ones ride in a pooled arena box. Move-only
  /// callables are fine — nothing is copied on the way down.
  void call_at(SimTime t, SmallFn fn);

  /// Awaitable: suspend the calling process for dt simulated seconds.
  /// A zero (or negative) delay still round-trips through the event queue,
  /// which yields to other ready processes and keeps ordering deterministic.
  auto delay(SimTime dt) {
    struct Awaiter {
      Simulation& sim;
      SimTime dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { sim.schedule_in(dt < 0 ? 0 : dt, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dt};
  }

  /// Start a detached simulation process. The process begins running now;
  /// its frame is freed when it completes. Exceptions it throws are stored
  /// and rethrown by run().
  void spawn(Task<void> task);

  /// Run until the event queue is empty or simulated time would exceed
  /// `until`. Returns the number of events processed. Rethrows the first
  /// error raised by a spawned process (after destroying every other
  /// still-pending process so aborted runs do not leak frames).
  std::size_t run(SimTime until = kTimeInfinity);

  /// Execute at most one event. Returns false if the queue is empty.
  bool step();

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending_events() const noexcept { return queue_.size(); }
  /// High-water mark of pending events across the whole run — the queue
  /// depth the kernel actually had to sustain (see EventQueue::peak_pending).
  std::size_t peak_pending_events() const noexcept { return queue_.peak_pending(); }
  /// Owned event-queue storage in bytes (pool capacities — the footprint
  /// high-water). Deterministic for a given scenario, so scale tests can
  /// gate on it without touching OS RSS.
  std::size_t event_queue_bytes() const noexcept { return queue_.memory_bytes(); }
  /// Number of spawned processes that have not yet completed. A nonzero
  /// value after run() returns means some process is blocked forever
  /// (e.g. waiting on an Event nobody sets) — usually a bug in the model.
  std::size_t live_processes() const noexcept { return live_processes_; }

  /// Destroy every spawned process that has not completed (their frames
  /// unwind, releasing resources) and drop all queued events. Returns the
  /// number of processes destroyed. Used for aborting a run; also invoked
  /// by ~Simulation() so abandoned runs do not leak coroutine frames.
  std::size_t destroy_pending_processes();

  /// True while destroy_pending_processes() is unwinding frames; Resource
  /// suppresses waiter grants during the teardown so accounting stays
  /// balanced (a granted waiter would never run to release its units).
  bool draining() const noexcept { return draining_; }

  /// Streaming FNV-1a hash over every dispatched (time, event-kind,
  /// schedule-sequence) tuple. Two runs of the same scenario must agree.
  std::uint64_t digest() const noexcept { return digest_.value(); }
  /// Total events dispatched by step()/run().
  std::uint64_t events_dispatched() const noexcept { return events_dispatched_; }

  /// The SimCheck invariant auditor, or nullptr when the build has
  /// PPFS_SIMCHECK disabled.
  check::Auditor* auditor() noexcept {
#if defined(PPFS_SIMCHECK)
    return auditor_.get();
#else
    return nullptr;
#endif
  }

  /// The TraceScope sink, or nullptr when tracing is off (the default).
  /// Like the auditor, a sink only observes: it must never influence
  /// scheduling, so digests are bit-identical with tracing on or off.
  trace::TraceSink* trace() const noexcept { return trace_; }
  /// Attach/detach a sink. The sink is owned by the driver and must outlive
  /// every dispatch (and the Simulation teardown, which can emit span-end
  /// records while frames unwind).
  void set_trace_sink(trace::TraceSink* sink) noexcept { trace_ = sink; }

  void report_process_error(std::exception_ptr e);

  // Internal: spawned-root bookkeeping. Each spawned process's wrapper
  // promise embeds a RootNode; registration is an O(1) intrusive-list
  // splice (no allocation, unlike the unordered_set this replaces), and
  // teardown walks the list destroying whatever never completed. Not for
  // simulation models.
  struct RootNode {
    RootNode* prev = nullptr;
    RootNode* next = nullptr;
    std::coroutine_handle<> handle{};
    bool linked = false;
  };
  void note_root_started(RootNode& node) noexcept;
  void note_root_finished(RootNode& node) noexcept;

 private:
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventQueue queue_;
  std::vector<std::exception_ptr> errors_;
  std::size_t live_processes_ = 0;
  RootNode* roots_ = nullptr;  // head of the intrusive spawned-root list
  bool draining_ = false;
  check::Fnv1a64 digest_;
  std::uint64_t events_dispatched_ = 0;
  trace::TraceSink* trace_ = nullptr;
#if defined(PPFS_SIMCHECK)
  std::unique_ptr<check::Auditor> auditor_;
#endif
};

}  // namespace ppfs::sim
