// The discrete-event simulation kernel.
//
// A Simulation owns a time-ordered event queue. Events are either coroutine
// resumptions (the common case: a simulation process waking from a delay or
// a resource grant) or plain callbacks. Ties in time are broken by insertion
// order, so runs are fully deterministic.
//
// Processes are Task<void> coroutines started with spawn(). A spawned
// process begins executing immediately (at the current simulated time) and
// runs until its first co_await. Errors escaping a spawned process are
// captured and rethrown from run(), so tests fail loudly instead of
// silently dropping a process.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <queue>
#include <vector>

#include "sim/task.hpp"
#include "sim/types.hpp"

namespace ppfs::sim {

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  ~Simulation();

  /// Current simulated time in seconds.
  SimTime now() const noexcept { return now_; }

  /// Schedule a coroutine resumption at absolute time t (>= now).
  void schedule_at(SimTime t, std::coroutine_handle<> h);
  /// Schedule a coroutine resumption dt seconds from now.
  void schedule_in(SimTime dt, std::coroutine_handle<> h) { schedule_at(now_ + dt, h); }
  /// Schedule a plain callback at absolute time t.
  void call_at(SimTime t, std::function<void()> fn);

  /// Awaitable: suspend the calling process for dt simulated seconds.
  /// A zero (or negative) delay still round-trips through the event queue,
  /// which yields to other ready processes and keeps ordering deterministic.
  auto delay(SimTime dt) {
    struct Awaiter {
      Simulation& sim;
      SimTime dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { sim.schedule_in(dt < 0 ? 0 : dt, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dt};
  }

  /// Start a detached simulation process. The process begins running now;
  /// its frame is freed when it completes. Exceptions it throws are stored
  /// and rethrown by run().
  void spawn(Task<void> task);

  /// Run until the event queue is empty or simulated time would exceed
  /// `until`. Returns the number of events processed. Rethrows the first
  /// error raised by a spawned process.
  std::size_t run(SimTime until = kTimeInfinity);

  /// Execute at most one event. Returns false if the queue is empty.
  bool step();

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending_events() const noexcept { return queue_.size(); }
  /// Number of spawned processes that have not yet completed. A nonzero
  /// value after run() returns means some process is blocked forever
  /// (e.g. waiting on an Event nobody sets) — usually a bug in the model.
  std::size_t live_processes() const noexcept { return live_processes_; }

  void report_process_error(std::exception_ptr e);

 private:
  struct Item {
    SimTime t;
    std::uint64_t seq;
    std::coroutine_handle<> h;       // either h or fn, not both
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  std::vector<std::exception_ptr> errors_;
  std::size_t live_processes_ = 0;
};

}  // namespace ppfs::sim
