// Synchronization primitives for simulation processes.
//
// Event      — one-shot latch. wait() returns immediately once set; set()
//              wakes all current waiters. reset() re-arms it. Models I/O
//              completion notifications (the Paragon ART completion flag).
// Condition  — broadcast signal with no memory. wait() always suspends
//              until the *next* notify_all(). Models "state changed, go
//              re-check" wakeups.
// Barrier    — N-party synchronization. arrive_and_wait() suspends until
//              all N parties have arrived, then releases everyone and
//              re-arms for the next round. Models the gang synchronization
//              of the M_SYNC I/O mode.
//
// All wakeups are scheduled through the Simulation event queue at the
// current time, never inline, so wake order is deterministic and waiters
// cannot re-enter the primitive while it is mid-update.
#pragma once

#include <coroutine>
#include <cstddef>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/small_fn.hpp"
#include "sim/types.hpp"

namespace ppfs::sim {

class Event {
 public:
  explicit Event(Simulation& sim) : sim_(sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool is_set() const noexcept { return set_; }

  /// Latch the event and wake every waiting process (at the current time).
  void set();

  /// Re-arm a set event. No effect on waiters (there are none if set).
  void reset() noexcept { set_ = false; }

  /// Register a one-shot callback that runs (through the event queue, at
  /// the current time) when the event is next set — immediately if it is
  /// already set. Unlike wait(), this needs no coroutine frame, so a
  /// callback on an event that never fires leaks no parked process.
  void on_set(SmallFn cb);

  /// Awaitable: resume immediately if set, otherwise when set() is called.
  auto wait() {
    struct Awaiter {
      Event& ev;
      bool await_ready() const noexcept { return ev.set_; }
      void await_suspend(std::coroutine_handle<> h) { ev.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  std::size_t waiter_count() const noexcept { return waiters_.size(); }

 private:
  Simulation& sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
  std::vector<SmallFn> callbacks_;
};

class Condition {
 public:
  explicit Condition(Simulation& sim) : sim_(sim) {}
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  /// Wake everything currently waiting; future waiters wait for the next
  /// notification.
  void notify_all();

  auto wait() {
    struct Awaiter {
      Condition& cv;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { cv.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  std::size_t waiter_count() const noexcept { return waiters_.size(); }

 private:
  Simulation& sim_;
  std::vector<std::coroutine_handle<>> waiters_;
};

class Barrier {
 public:
  Barrier(Simulation& sim, std::size_t parties) : sim_(sim), parties_(parties) {}
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Awaitable: the Nth arrival releases all parties and re-arms the
  /// barrier for the next round. With parties == 1 this never suspends
  /// (but still yields through the event queue for determinism).
  auto arrive_and_wait() {
    struct Awaiter {
      Barrier& b;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        b.waiters_.push_back(h);
        if (b.waiters_.size() >= b.parties_) {
          b.release_all();
        }
        return true;  // always suspend; release schedules resumption
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  std::size_t parties() const noexcept { return parties_; }
  std::size_t arrived() const noexcept { return waiters_.size(); }

 private:
  void release_all();

  Simulation& sim_;
  std::size_t parties_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace ppfs::sim
