// SmallFn: the event queue's trivially-relocatable callback type.
//
// A type-erased, move-only callable sized to three machine words. Two
// storage strategies, chosen at compile time per callable type:
//
//  - inline: trivially-copyable, trivially-destructible callables of at
//    most two words (a couple of references/pointers plus an index — the
//    closures the kernel actually schedules) live directly in the object.
//  - boxed: anything bigger or with a real destructor (a shared_ptr
//    capture, a four-reference test closure) lives in a block from the
//    thread-local FrameArena, and the object holds the pointer.
//
// Either way the object itself relocates with a plain three-word copy: a
// move never runs callable code, so the event queue can sift, batch and
// memcpy SmallFns freely — no trampoline call per queue move, which is
// where the previous std::function-based queue item spent its time. The
// low bit of the ops word marks "nothing to destroy", so destroying a
// drained inline callback is a predicted-not-taken branch, not an
// indirect call.
//
// Boxed callables allocate from the *calling thread's* arena and must be
// destroyed on the same thread — the same single-thread discipline the
// simulation kernel already imposes (a Simulation never migrates between
// SweepRunner workers).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/frame_arena.hpp"

// The ops trampolines must sit at even addresses so their low bit can
// carry the trivially-destructible flag. Optimized builds align functions
// anyway, but gcc -O0 packs COMDAT template functions at odd addresses,
// so force the minimum alignment explicitly.
#if defined(__GNUC__) || defined(__clang__)
#define PPFS_EVEN_FN __attribute__((aligned(2)))
#else
#define PPFS_EVEN_FN
#endif

namespace ppfs::sim {

class SmallFn {
 public:
  static constexpr std::size_t kInlineSize = 16;

  SmallFn() noexcept = default;

  // ppfs::hot — construct/move/invoke run once per scheduled callback;
  // storage is inline or FrameArena (placement new), never the heap

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFn>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for lambdas
    using Fn = std::decay_t<F>;
    constexpr bool fits_inline = std::is_trivially_copyable_v<Fn> &&
                                 std::is_trivially_destructible_v<Fn> &&
                                 sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::uint64_t);
    if constexpr (fits_inline) {
      ::new (static_cast<void*>(w_)) Fn(std::forward<F>(f));
      const auto raw = reinterpret_cast<std::uintptr_t>(&ops_inline<Fn>);
      assert((raw & kTrivialBit) == 0 && "SmallFn: ops trampoline at odd address");
      ops_ = raw | kTrivialBit;
    } else {
      static_assert(alignof(Fn) <= alignof(std::max_align_t),
                    "SmallFn: over-aligned callables are not supported "
                    "(the arena returns max_align_t-aligned blocks)");
      void* box = FrameArena::local().allocate(sizeof(Fn));
      try {
        ::new (box) Fn(std::forward<F>(f));
      } catch (...) {
        FrameArena::local().deallocate(box);
        throw;
      }
      w_[0] = reinterpret_cast<std::uint64_t>(box);
      const auto raw = reinterpret_cast<std::uintptr_t>(&ops_boxed<Fn>);
      assert((raw & kTrivialBit) == 0 && "SmallFn: ops trampoline at odd address");
      ops_ = raw;
    }
  }

  SmallFn(SmallFn&& other) noexcept
      : ops_(other.ops_), w_{other.w_[0], other.w_[1]} {
    other.ops_ = 0;
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      w_[0] = other.w_[0];
      w_[1] = other.w_[1];
      other.ops_ = 0;
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  explicit operator bool() const noexcept { return ops_ != 0; }

  void operator()() {
    reinterpret_cast<OpsFn>(ops_ & ~kTrivialBit)(Op::kInvoke, this);
  }

  void reset() noexcept {
    // kTrivialBit set means the payload is inline and trivially
    // destructible — dropping it needs no call at all.
    if (ops_ != 0 && (ops_ & kTrivialBit) == 0) {
      reinterpret_cast<OpsFn>(ops_)(Op::kDestroy, this);
    }
    ops_ = 0;
  }
  // ppfs::endhot

 private:
  enum class Op : unsigned char { kInvoke, kDestroy };
  using OpsFn = void (*)(Op, SmallFn*);

  static constexpr std::uintptr_t kTrivialBit = 1;

  template <typename Fn>
  PPFS_EVEN_FN static void ops_inline(Op op, SmallFn* self) {
    auto* fn = std::launder(reinterpret_cast<Fn*>(self->w_));
    if (op == Op::kInvoke) (*fn)();
    // kDestroy unreachable: inline callables are trivially destructible.
  }

  template <typename Fn>
  PPFS_EVEN_FN static void ops_boxed(Op op, SmallFn* self) {
    auto* fn = reinterpret_cast<Fn*>(self->w_[0]);
    switch (op) {
      case Op::kInvoke:
        (*fn)();
        break;
      case Op::kDestroy:
        fn->~Fn();
        FrameArena::local().deallocate(fn);
        break;
    }
  }

  std::uintptr_t ops_ = 0;
  std::uint64_t w_[2];
};

}  // namespace ppfs::sim

#undef PPFS_EVEN_FN
