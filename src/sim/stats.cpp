#include "sim/stats.hpp"

#include <bit>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace ppfs::sim {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) / total;
  mean_ = (mean_ * static_cast<double>(n_) + other.mean_ * static_cast<double>(other.n_)) / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleSet::ensure_sorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::percentile(double p) {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSet::min() {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.back();
}

std::size_t StreamingQuantiles::bin_of(double x) noexcept {
  // Bin by the bit width of the sample in whole nanoseconds: 0ns -> bin 0,
  // [2^i, 2^(i+1)) ns -> bin i. Saturates at the top bin for absurd values.
  if (!(x > 0.0)) return 0;
  const double ns = x * 1e9;
  if (ns >= 0x1p63) return kBins - 1;
  const auto v = static_cast<std::uint64_t>(ns);
  if (v == 0) return 0;
  const auto w = static_cast<std::size_t>(64 - std::countl_zero(v));
  return w >= kBins ? kBins - 1 : w - 1;
}

void StreamingQuantiles::add(double x) {
  // A non-finite sample would poison the sketch for good: sum_ += NaN makes
  // every later mean() NaN, and NaN loses every std::min/max comparison so
  // min_/max_ stay at their +/-infinity sentinels while n_ grows — after
  // which min()/max() report infinities and percentile()'s clamp is handed
  // an inverted [lo, hi]. Drop such samples instead of counting them.
  if (!std::isfinite(x)) return;
  ++bins_[bin_of(x)];
  ++n_;
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingQuantiles::merge(const StreamingQuantiles& other) {
  if (other.n_ == 0) return;
  for (std::size_t i = 0; i < kBins; ++i) bins_[i] += other.bins_[i];
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingQuantiles::percentile(double p) const {
  // Zero-count sketches (never added to, or merged only with empties) have
  // min_/max_ still at their sentinel infinities — clamping against them
  // would return garbage, so answer 0 like mean()/min()/max() do.
  if (n_ == 0 || !(min_ <= max_)) return 0.0;
  const double target = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(n_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBins; ++i) {
    seen += bins_[i];
    if (static_cast<double>(seen) >= target) {
      // Geometric midpoint of [2^i, 2^(i+1)) ns, clamped into the exact
      // observed range so p0/p100 stay honest.
      const double mid = std::exp2(static_cast<double>(i) + 0.5) * 1e-9;
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), bins_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  std::size_t i;
  if (x < lo_) {
    i = 0;
  } else if (x >= hi_) {
    i = bins_.size() - 1;
  } else {
    i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= bins_.size()) i = bins_.size() - 1;
  }
  ++bins_[i];
  ++total_;
}

std::string Histogram::ascii(std::size_t max_width) const {
  std::size_t peak = 0;
  for (auto c : bins_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const auto bar =
        peak ? bins_[i] * max_width / peak : 0;
    out << "[" << bin_lo(i) << ", " << bin_lo(i) + width_ << ") "
        << std::string(bar, '#') << " " << bins_[i] << "\n";
  }
  return out.str();
}

void TimeWeighted::record(SimTime now, double value) {
  if (!started_) {
    started_ = true;
    start_ = now;
  } else {
    area_ += value_ * (now - last_);
  }
  last_ = now;
  value_ = value;
}

double TimeWeighted::average(SimTime now) const {
  if (!started_ || now <= start_) return value_;
  const double area = area_ + value_ * (now - last_);
  return area / (now - start_);
}

}  // namespace ppfs::sim
