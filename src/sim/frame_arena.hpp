// FrameArena: pooled allocation for coroutine frames.
//
// Every simulation process is a coroutine, and a sweep dispatches millions
// of short-lived child coroutines (one per read call, per RPC, per disk
// op). Each frame used to round-trip through the global allocator; the
// arena recycles them through size-class free lists instead, so steady-
// state frame allocation is a vector pop.
//
// The arena is thread-local: a Simulation never migrates between threads
// (the SweepRunner gives each worker its own simulations), so free lists
// need no locks, and frames allocated on a worker are freed on the same
// worker. Multiple simulations run consecutively on one thread share the
// arena — reuse across runs is exactly the point.
//
// Each block carries a 16-byte header holding its size class, so both the
// sized and unsized operator delete forms work, and the default new
// alignment (16 on x86-64) is preserved for the frame that follows the
// header. Free lists are capped per class; blocks beyond the cap go back
// to the system. The thread_local arena frees every cached block at
// thread exit, so LeakSanitizer sees a clean shutdown.
//
// Task<T> promises (and the spawn() wrapper's promise) opt in by
// inheriting PooledFrame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ppfs::sim {

class FrameArena {
 public:
  struct Stats {
    std::uint64_t allocs = 0;         // frame allocations served
    std::uint64_t pool_hits = 0;      // ... of which came from a free list
    std::uint64_t live = 0;           // frames currently outstanding
    std::uint64_t cached_blocks = 0;  // blocks parked on free lists
    std::uint64_t cached_bytes = 0;
    std::uint64_t trims = 0;          // cap evictions + trim() releases
  };

  FrameArena() = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;
  ~FrameArena() { trim(); }

  /// The calling thread's arena.
  static FrameArena& local() noexcept;

  void* allocate(std::size_t bytes);
  void deallocate(void* p) noexcept;

  const Stats& stats() const noexcept { return stats_; }

  /// Release every cached block to the system (free lists stay usable).
  void trim() noexcept;

 private:
  // Size classes are multiples of 64 bytes: coarse enough that a program's
  // handful of distinct frame sizes share lists, fine enough to waste
  // little. The 16-byte header is included in the class size.
  static constexpr std::size_t kHeaderSize = 16;
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kMaxCachedPerClass = 1024;

  struct Bucket {
    std::size_t bytes = 0;  // full block size, header included
    std::vector<void*> free;
  };

  Bucket& bucket_for(std::size_t block_bytes);

  std::vector<Bucket> buckets_;
  Stats stats_;
};

/// Mixin: a coroutine promise inheriting this has its frame served by the
/// calling thread's FrameArena.
struct PooledFrame {
  static void* operator new(std::size_t n) { return FrameArena::local().allocate(n); }
  static void operator delete(void* p) noexcept { FrameArena::local().deallocate(p); }
  static void operator delete(void* p, std::size_t) noexcept {
    FrameArena::local().deallocate(p);
  }
};

}  // namespace ppfs::sim
