// Basic types shared across the simulator.
#pragma once

#include <cstdint>
#include <limits>

namespace ppfs::sim {

/// Simulated time, in seconds. Double precision gives sub-nanosecond
/// resolution over the hour-scale horizons these experiments use.
using SimTime = double;

inline constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::infinity();

/// Byte counts and file offsets. The Paragon PFS addressed files well past
/// 4 GiB, so 64-bit throughout.
using ByteCount = std::uint64_t;
using FileOffset = std::uint64_t;

inline constexpr ByteCount operator""_KiB(unsigned long long v) { return v * 1024ull; }
inline constexpr ByteCount operator""_MiB(unsigned long long v) { return v * 1024ull * 1024ull; }
inline constexpr ByteCount operator""_GiB(unsigned long long v) { return v * 1024ull * 1024ull * 1024ull; }

/// Convert a byte count and an elapsed time to MB/s (decimal MB, matching
/// the units the paper reports).
inline constexpr double megabytes_per_second(ByteCount bytes, SimTime elapsed) {
  return elapsed > 0 ? static_cast<double>(bytes) / 1.0e6 / elapsed : 0.0;
}

}  // namespace ppfs::sim
