// Coroutine task type for simulation processes.
//
// Task<T> is a lazily-started coroutine: creating one does not run any code;
// it runs when first awaited (symmetric transfer from the awaiting
// coroutine) or when handed to Simulation::spawn(). On completion it resumes
// its awaiter. Exceptions propagate to the awaiter through await_resume().
//
// Ownership: the Task object owns the coroutine frame and destroys it in the
// destructor. When a Task is co_awaited, the temporary Task lives for the
// whole await expression, so the frame outlives its own completion.
//
// Under PPFS_SIMCHECK builds, frame creation and destruction are reported to
// the SimCheck lifetime registry (sim/check/audit.hpp) so the kernel can
// refuse to resume a frame whose owning Task already destroyed it —
// converting a use-after-free into a diagnosed AuditError.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/frame_arena.hpp"

#if defined(PPFS_SIMCHECK)
#include "sim/check/audit.hpp"
#endif

namespace ppfs::sim {

namespace detail {

inline void simcheck_frame_created([[maybe_unused]] void* frame) noexcept {
#if defined(PPFS_SIMCHECK)
  check::note_frame_created(frame);
#endif
}

inline void simcheck_frame_destroyed([[maybe_unused]] void* frame) noexcept {
#if defined(PPFS_SIMCHECK)
  check::note_frame_destroyed(frame);
#endif
}

}  // namespace detail

template <typename T>
class Task;

namespace detail {

// Frames come from the thread-local FrameArena (PooledFrame): a sweep
// spawns millions of short-lived child coroutines, and recycling their
// frames keeps the hot path out of the global allocator.
struct PromiseBase : PooledFrame {
  std::coroutine_handle<> continuation;  // resumed when this task finishes
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { error = std::current_exception(); }
};

}  // namespace detail

/// A simulation process returning T. Move-only.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() = default;
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return h_ != nullptr; }
  bool done() const noexcept { return h_ && h_.done(); }

  // Awaiter interface: co_await task starts it and suspends the awaiter
  // until the task completes.
  bool await_ready() const noexcept { return !h_ || h_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
    h_.promise().continuation = awaiting;
    return h_;
  }
  T await_resume() {
    auto& p = h_.promise();
    if (p.error) std::rethrow_exception(p.error);
    return std::move(*p.value);
  }

  /// Release ownership of the coroutine handle (used by Simulation::spawn).
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(h_, nullptr);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {
    if (h_) detail::simcheck_frame_created(h_.address());
  }
  friend struct promise_type;

  void destroy() {
    if (h_) {
      detail::simcheck_frame_destroyed(h_.address());
      h_.destroy();
      h_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  Task() = default;
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return h_ != nullptr; }
  bool done() const noexcept { return h_ && h_.done(); }

  bool await_ready() const noexcept { return !h_ || h_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
    h_.promise().continuation = awaiting;
    return h_;
  }
  void await_resume() {
    auto& p = h_.promise();
    if (p.error) std::rethrow_exception(p.error);
  }

  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(h_, nullptr);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {
    if (h_) detail::simcheck_frame_created(h_.address());
  }
  friend struct promise_type;

  void destroy() {
    if (h_) {
      detail::simcheck_frame_destroyed(h_.address());
      h_.destroy();
      h_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> h_;
};

}  // namespace ppfs::sim
