#include "sim/simulation.hpp"

#include <cassert>
#include <stdexcept>

namespace ppfs::sim {

namespace {

// Fire-and-forget wrapper coroutine used by spawn(). It starts eagerly,
// immediately co_awaits the user task (driving it), and self-destroys on
// completion because final_suspend never suspends.
struct Detached {
  struct promise_type {
    Detached get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }  // run_detached catches everything
  };
};

struct LiveGuard {
  std::size_t& count;
  explicit LiveGuard(std::size_t& c) : count(c) { ++count; }
  ~LiveGuard() { --count; }
};

Detached run_detached(Simulation& sim, std::size_t& live, Task<void> task) {
  LiveGuard guard(live);
  try {
    co_await std::move(task);
  } catch (...) {
    sim.report_process_error(std::current_exception());
  }
}

}  // namespace

Simulation::~Simulation() = default;

void Simulation::schedule_at(SimTime t, std::coroutine_handle<> h) {
  assert(h);
  queue_.push(Item{t < now_ ? now_ : t, next_seq_++, h, nullptr});
}

void Simulation::call_at(SimTime t, std::function<void()> fn) {
  queue_.push(Item{t < now_ ? now_ : t, next_seq_++, nullptr, std::move(fn)});
}

void Simulation::spawn(Task<void> task) {
  if (!task.valid()) throw std::invalid_argument("Simulation::spawn: empty task");
  run_detached(*this, live_processes_, std::move(task));
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  Item item = queue_.top();
  queue_.pop();
  now_ = item.t;
  if (item.h) {
    item.h.resume();
  } else {
    item.fn();
  }
  return true;
}

std::size_t Simulation::run(SimTime until) {
  const auto rethrow_pending = [this] {
    if (!errors_.empty()) {
      auto e = errors_.front();
      errors_.clear();
      std::rethrow_exception(e);
    }
  };
  // A spawned process may have failed eagerly, before any event exists.
  rethrow_pending();
  std::size_t processed = 0;
  while (!queue_.empty() && queue_.top().t <= until) {
    step();
    ++processed;
    rethrow_pending();
  }
  return processed;
}

void Simulation::report_process_error(std::exception_ptr e) { errors_.push_back(std::move(e)); }

}  // namespace ppfs::sim
