#include "sim/simulation.hpp"

#include <cassert>
#include <stdexcept>

#include "sim/frame_arena.hpp"
#include "trace/record.hpp"
#include "trace/sink.hpp"

namespace ppfs::sim {

namespace {

// Fire-and-forget wrapper coroutine used by spawn(). It starts eagerly,
// immediately co_awaits the user task (driving it), and self-destroys on
// completion because final_suspend never suspends. The promise embeds the
// Simulation's intrusive RootNode so ~Simulation() / an aborted run can
// destroy processes that never completed (destroying the root cascades:
// the frame's Task parameter owns the child frame, and so on down).
struct Detached {
  struct promise_type : Simulation::RootNode, PooledFrame {
    Simulation* sim;

    // Promise constructor matching run_detached's parameters: binds the
    // owning Simulation before the coroutine body starts.
    promise_type(Simulation& s, std::size_t&, Task<void>&) noexcept : sim(&s) {}
    ~promise_type() { sim->note_root_finished(*this); }

    Detached get_return_object() {
      handle = std::coroutine_handle<promise_type>::from_promise(*this);
      sim->note_root_started(*this);
      return {};
    }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }  // run_detached catches everything
  };
};

struct LiveGuard {
  std::size_t& count;
  explicit LiveGuard(std::size_t& c) : count(c) { ++count; }
  ~LiveGuard() { --count; }
};

Detached run_detached(Simulation& sim, std::size_t& live, Task<void> task) {
  LiveGuard guard(live);
  try {
    co_await std::move(task);
  } catch (...) {
    sim.report_process_error(std::current_exception());
  }
}

}  // namespace

Simulation::Simulation()
#if defined(PPFS_SIMCHECK)
    : auditor_(std::make_unique<check::Auditor>(*this))
#endif
{
  // Pre-size the queue past typical scenario high-water marks so short
  // runs never touch the allocator from the event loop.
  queue_.reserve(1024);
}

Simulation::~Simulation() {
  destroy_pending_processes();
#if defined(PPFS_SIMCHECK)
  // Assert-count the teardown: destroying every registered root must have
  // unwound every live process (LiveGuard lives in the root frame).
  assert(live_processes_ == 0 &&
         "SimCheck: pending-process teardown left live processes behind");
#endif
}

void Simulation::note_root_started(RootNode& node) noexcept {
  node.prev = nullptr;
  node.next = roots_;
  node.linked = true;
  if (roots_) roots_->prev = &node;
  roots_ = &node;
}

void Simulation::note_root_finished(RootNode& node) noexcept {
  if (!node.linked) return;
  node.linked = false;
  if (node.prev) {
    node.prev->next = node.next;
  } else {
    roots_ = node.next;
  }
  if (node.next) node.next->prev = node.prev;
  node.prev = node.next = nullptr;
}

std::size_t Simulation::destroy_pending_processes() {
  draining_ = true;
  std::size_t destroyed = 0;
  while (roots_) {
    // Destroying the root frame cascades through the Task ownership chain,
    // unwinding every frame of the process; ~promise_type unlinks it.
    roots_->handle.destroy();
    ++destroyed;
  }
  // Whatever was queued either belonged to a just-destroyed process (the
  // handle now dangles) or is an orphaned callback of an aborted run.
  queue_.clear();
  draining_ = false;
  return destroyed;
}

void Simulation::schedule_at(SimTime t, std::coroutine_handle<> h) {
  assert(h);
  if (auto* a = auditor()) a->on_schedule(now_, t, h.address());
  queue_.push(t < now_ ? now_ : t, next_seq_++, h);
}

void Simulation::call_at(SimTime t, SmallFn fn) {
  if (auto* a = auditor()) a->on_schedule(now_, t, nullptr);
  queue_.push(t < now_ ? now_ : t, next_seq_++, std::move(fn));
}

void Simulation::spawn(Task<void> task) {
  if (!task.valid()) throw std::invalid_argument("Simulation::spawn: empty task");
  run_detached(*this, live_processes_, std::move(task));
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  EventQueue::Entry item = queue_.pop();
  now_ = item.t;
  ++events_dispatched_;
  digest_.mix_double(item.t);
  digest_.mix_u64(item.h ? 1 : 2);
  digest_.mix_u64(item.seq);
  // Trace after the digest mix and before the auditor, so the kernel track
  // records exactly the dispatch stream the digest hashes: one instant per
  // dispatched event, even for resumptions the auditor later suppresses.
  if (trace_ != nullptr) {
    trace_->record(trace::TraceRecord(
        now_, trace::TraceKind::kInstant, trace::TraceTrack::kKernel,
        item.h ? trace::code::kDispatchCoroutine : trace::code::kDispatchCallback, 0, 0,
        item.seq));
  }
  if (item.h) {
    if (auto* a = auditor()) {
      if (!a->on_dispatch(now_, item.h.address())) return true;  // destroyed frame: suppress
    }
    item.h.resume();
  } else {
    if (auto* a = auditor()) (void)a->on_dispatch(now_, nullptr);
    item.fn();
  }
  return true;
}

std::size_t Simulation::run(SimTime until) {
  const auto rethrow_pending = [this] {
    if (!errors_.empty()) {
      auto e = errors_.front();
      errors_.clear();
      // Unwind every other still-pending process now, while the objects
      // their frames reference (machines, resources, clients) are still
      // alive — leaving them for ~Simulation() would leak the frames.
      destroy_pending_processes();
      std::rethrow_exception(e);
    }
  };
  // A spawned process may have failed eagerly, before any event exists.
  rethrow_pending();
  std::size_t processed = 0;
  while (!queue_.empty() && queue_.top_time() <= until) {
    step();
    ++processed;
    rethrow_pending();
  }
  return processed;
}

void Simulation::report_process_error(std::exception_ptr e) { errors_.push_back(std::move(e)); }

}  // namespace ppfs::sim
