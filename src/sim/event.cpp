#include "sim/event.hpp"

#include <utility>

namespace ppfs::sim {

void Event::set() {
  if (set_) return;
  set_ = true;
  auto waiters = std::move(waiters_);
  waiters_.clear();
  auto callbacks = std::move(callbacks_);
  callbacks_.clear();
  for (auto h : waiters) sim_.schedule_at(sim_.now(), h);
  for (auto& cb : callbacks) sim_.call_at(sim_.now(), std::move(cb));
}

void Event::on_set(SmallFn cb) {
  if (set_) {
    sim_.call_at(sim_.now(), std::move(cb));
  } else {
    callbacks_.push_back(std::move(cb));
  }
}

void Condition::notify_all() {
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (auto h : waiters) sim_.schedule_at(sim_.now(), h);
}

void Barrier::release_all() {
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (auto h : waiters) sim_.schedule_at(sim_.now(), h);
}

}  // namespace ppfs::sim
