#include "sim/event.hpp"

#include <utility>

namespace ppfs::sim {

void Event::set() {
  if (set_) return;
  set_ = true;
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (auto h : waiters) sim_.schedule_at(sim_.now(), h);
}

void Condition::notify_all() {
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (auto h : waiters) sim_.schedule_at(sim_.now(), h);
}

void Barrier::release_all() {
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (auto h : waiters) sim_.schedule_at(sim_.now(), h);
}

}  // namespace ppfs::sim
