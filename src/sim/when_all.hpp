// when_all: run a set of child processes concurrently and await them all.
//
// Used for collective operations: the experiment driver spawns one process
// per compute node and joins on all of them, like the paper's collective
// read that is "complete when the individual I/O requests of all the nodes
// have been satisfied".
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/event.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace ppfs::sim {

namespace detail {

inline Task<void> notify_when_done(Task<void> t, std::size_t& remaining, Event& done) {
  co_await std::move(t);
  if (--remaining == 0) done.set();
}

}  // namespace detail

/// Await completion of every task in `tasks`. Children run concurrently.
/// An exception in a child is reported through the Simulation error channel
/// (fatal to the run), matching the "a lost process is a model bug" policy.
inline Task<void> when_all(Simulation& sim, std::vector<Task<void>> tasks) {
  if (tasks.empty()) co_return;
  Event done(sim);
  std::size_t remaining = tasks.size();
  for (auto& t : tasks) {
    sim.spawn(detail::notify_when_done(std::move(t), remaining, done));
  }
  co_await done.wait();
}

}  // namespace ppfs::sim
