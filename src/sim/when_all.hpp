// when_all: run a set of child processes concurrently and await them all.
//
// Used for collective operations: the experiment driver spawns one process
// per compute node and joins on all of them, like the paper's collective
// read that is "complete when the individual I/O requests of all the nodes
// have been satisfied".
#pragma once

#include <cstddef>
#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace ppfs::sim {

namespace detail {

inline Task<void> notify_when_done(Task<void> t, std::size_t& remaining, Event& done) {
  co_await std::move(t);
  if (--remaining == 0) done.set();
}

struct JoinState {
  explicit JoinState(Simulation& s) : done(s) {}
  Event done;
  std::size_t remaining = 0;
  std::exception_ptr first_error;
};

inline Task<void> settle_when_done(Task<void> t, std::shared_ptr<JoinState> st) {
  try {
    co_await std::move(t);
  } catch (...) {
    if (!st->first_error) st->first_error = std::current_exception();
  }
  if (--st->remaining == 0) st->done.set();
}

}  // namespace detail

/// Await completion of every task in `tasks`. Children run concurrently.
/// An exception in a child is reported through the Simulation error channel
/// (fatal to the run), matching the "a lost process is a model bug" policy.
inline Task<void> when_all(Simulation& sim, std::vector<Task<void>> tasks) {
  if (tasks.empty()) co_return;
  Event done(sim);
  std::size_t remaining = tasks.size();
  for (auto& t : tasks) {
    sim.spawn(detail::notify_when_done(std::move(t), remaining, done));
  }
  co_await done.wait();
}

/// Like when_all, but a child's exception is captured and rethrown to the
/// awaiter once every child has settled, instead of going through the fatal
/// Simulation error channel. The first error (in completion order) wins.
/// Use for fan-outs whose children may fail with recoverable fault errors —
/// a degraded RAID member or a crashed I/O node must surface to the caller
/// as a catchable error, not kill the run.
inline Task<void> when_all_propagate(Simulation& sim, std::vector<Task<void>> tasks) {
  if (tasks.empty()) co_return;
  auto st = std::make_shared<detail::JoinState>(sim);
  st->remaining = tasks.size();
  for (auto& t : tasks) {
    sim.spawn(detail::settle_when_done(std::move(t), st));
  }
  co_await st->done.wait();
  if (st->first_error) std::rethrow_exception(st->first_error);
}

}  // namespace ppfs::sim
