// Lightweight categorized tracing.
//
// Every subsystem logs through a Tracer owned by the Machine. Categories
// are enabled at runtime (default: all off), so instrumented code costs one
// branch when disabled. Used by tests to assert event ordering and by the
// examples to show the request flow.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/types.hpp"

namespace ppfs::sim {

enum class TraceCat : std::uint32_t {
  kDisk = 1u << 0,
  kNet = 1u << 1,
  kUfs = 1u << 2,
  kPfs = 1u << 3,
  kPrefetch = 1u << 4,
  kWorkload = 1u << 5,
  kAll = 0xffffffffu,
};

constexpr std::uint32_t operator|(TraceCat a, TraceCat b) {
  return static_cast<std::uint32_t>(a) | static_cast<std::uint32_t>(b);
}

class Tracer {
 public:
  Tracer() = default;

  void enable(TraceCat cat) { mask_ |= static_cast<std::uint32_t>(cat); }
  void enable_mask(std::uint32_t mask) { mask_ |= mask; }
  void disable_all() { mask_ = 0; }
  bool enabled(TraceCat cat) const {
    return (mask_ & static_cast<std::uint32_t>(cat)) != 0;
  }

  /// Route output to the given stream (default: discard, keep in buffer
  /// when capture is on).
  void set_sink(std::ostream* sink) { sink_ = sink; }
  /// Keep every line in an in-memory buffer for test assertions.
  void set_capture(bool on) { capture_ = on; }
  const std::string& captured() const { return buffer_; }
  void clear_captured() { buffer_.clear(); }

  void log(TraceCat cat, SimTime now, std::string_view component, std::string_view message);

  static const char* cat_name(TraceCat cat);

 private:
  std::uint32_t mask_ = 0;
  std::ostream* sink_ = nullptr;
  bool capture_ = false;
  std::string buffer_;
};

}  // namespace ppfs::sim
