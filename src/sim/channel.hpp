// Channel<T>: a bounded FIFO mailbox between simulation processes, plus an
// event-with-timeout helper.
//
// Channels model producer/consumer couplings (request queues, completion
// ports) where Resource's counted-capacity shape doesn't fit. send()
// suspends while the channel is full; receive() suspends while it is
// empty and resolves to nullopt once the channel is closed and drained.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "sim/event.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace ppfs::sim {

template <typename T>
class Channel {
 public:
  Channel(Simulation& sim, std::size_t capacity)
      : sim_(sim), capacity_(capacity), not_full_(sim), not_empty_(sim) {
    if (capacity == 0) throw std::invalid_argument("Channel: zero capacity");
  }
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Suspend until there is room, then enqueue. Throws if the channel is
  /// closed while (or before) waiting.
  Task<void> send(T value) {
    while (buffer_.size() >= capacity_ && !closed_) {
      co_await not_full_.wait();
    }
    if (closed_) throw std::runtime_error("Channel: send on closed channel");
    buffer_.push_back(std::move(value));
    not_empty_.notify_all();
  }

  /// Enqueue without suspending; false when full or closed.
  bool try_send(T value) {
    if (closed_ || buffer_.size() >= capacity_) return false;
    buffer_.push_back(std::move(value));
    not_empty_.notify_all();
    return true;
  }

  /// Suspend until a value is available; nullopt once closed and drained.
  Task<std::optional<T>> receive() {
    while (buffer_.empty() && !closed_) {
      co_await not_empty_.wait();
    }
    if (buffer_.empty()) co_return std::nullopt;
    T v = std::move(buffer_.front());
    buffer_.pop_front();
    not_full_.notify_all();
    co_return std::optional<T>(std::move(v));
  }

  std::optional<T> try_receive() {
    if (buffer_.empty()) return std::nullopt;
    T v = std::move(buffer_.front());
    buffer_.pop_front();
    not_full_.notify_all();
    return v;
  }

  /// No further sends; pending and future receives drain then get nullopt.
  void close() {
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const noexcept { return closed_; }
  std::size_t size() const noexcept { return buffer_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  Simulation& sim_;
  std::size_t capacity_;
  bool closed_ = false;
  std::deque<T> buffer_;
  Condition not_full_;
  Condition not_empty_;
};

/// Wait for `ev` with a deadline. Resolves true if the event fired, false
/// on timeout. Entirely callback-driven: the loser of the race is a plain
/// queue callback holding the shared state, never a parked process, so
/// live_processes() is unaffected even when the event never fires.
inline Task<bool> wait_with_timeout(Simulation& sim, Event& ev, SimTime dt) {
  if (ev.is_set()) co_return true;
  struct State {
    explicit State(Simulation& s) : either(s) {}
    Event either;
    bool timed_out = false;
  };
  auto state = std::make_shared<State>(sim);

  sim.call_at(sim.now() + dt, [state] {
    if (!state->either.is_set()) {
      state->timed_out = true;
      state->either.set();
    }
  });
  ev.on_set([state] {
    if (!state->either.is_set()) state->either.set();
  });

  co_await state->either.wait();
  co_return !state->timed_out;
}

}  // namespace ppfs::sim
