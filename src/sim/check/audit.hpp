// SimCheck — the invariant auditor for the DES kernel.
//
// The simulator's results are only as trustworthy as the invariants the
// kernel actually enforces. The Auditor watches four bug classes that
// corrupt results silently instead of crashing:
//
//  * causality      — an event scheduled at t < now() would execute in the
//                     past; the kernel's silent clamp hides a model bug.
//  * double resume  — the same coroutine frame scheduled twice without an
//                     intervening resume; resuming a running/suspended frame
//                     twice is undefined behavior.
//  * resume after destroy — a frame destroyed (its owning Task died) while
//                     still sitting in the event queue; SimCheck detects it
//                     at dispatch and suppresses the resume instead of
//                     executing freed memory.
//  * resource accounting — double-entry bookkeeping of Resource
//                     acquire/release: releases that exceed acquisitions and
//                     units still outstanding when a Resource dies.
//  * buffer conservation — every PrefetchBuffer allocated must end in
//                     exactly one terminal state: consumed by a read,
//                     discarded as stale/evicted, or freed at file close.
//  * fault conservation — every fault that manifests to a handler must end
//                     in exactly one terminal state: healed by retry,
//                     repaired by parity reconstruction, or surfaced as a
//                     terminal error in stats. No silently swallowed faults.
//
// The auditor is compile-time selectable (PPFS_SIMCHECK, default ON; see the
// top-level CMakeLists). When enabled, every Simulation owns one and checks
// are always live; a violation throws AuditError (fail-fast) or is recorded
// for later inspection (set_fail_fast(false)). Destructor-context checks
// only record — throwing there would terminate.
//
// The auditor itself is testable: arm_injection(kind, seed) commits a real
// violation of that class at a seed-chosen future point, through the same
// kernel paths real bugs would take, so tests can prove each class is
// caught (and that the trigger point follows the seed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hpp"

namespace ppfs::sim {
class Simulation;
}

namespace ppfs::sim::check {

enum class Violation : std::uint8_t {
  kCausality,           // schedule_at / call_at with t < now
  kDoubleResume,        // frame scheduled twice while already pending
  kResumeAfterDestroy,  // dispatching a frame whose owner destroyed it
  kResourceAccounting,  // release > acquired, or units leaked at ~Resource
  kBufferConservation,  // allocated != consumed + discarded + freed-at-close
  kFaultConservation,   // observed != retried-ok + reconstructed + terminal
  kCoalesceConservation,  // coalesced RPC delivered != the union of its extents
  kCacheBitmapConservation,  // tier bits set != cleared + currently resident
  kTokenConservation,  // overlapping write tokens, or a revoked token not fully flushed
};

const char* to_string(Violation v) noexcept;

struct ViolationRecord {
  Violation kind;
  SimTime when = 0;
  std::string detail;
};

class AuditError : public std::logic_error {
 public:
  explicit AuditError(const ViolationRecord& rec);
  Violation kind() const noexcept { return kind_; }

 private:
  Violation kind_;
};

// --- coroutine-frame lifetime registry -------------------------------------
//
// Task<T> reports frame creation/destruction here (see sim/task.hpp). The
// registry is process-wide (the simulator is single-threaded per Simulation,
// and frames may outlive or predate any particular Simulation), so these are
// free functions rather than Auditor members. A destroyed address is cleared
// again when the allocator reuses it for a new frame.
void note_frame_created(void* frame) noexcept;
void note_frame_destroyed(void* frame) noexcept;
bool frame_destroyed(void* frame) noexcept;

class Auditor {
 public:
  explicit Auditor(Simulation& sim) : sim_(sim) {}
  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  /// Throw AuditError at the violation site (default) instead of only
  /// recording. Destructor-context checks always only record.
  void set_fail_fast(bool v) noexcept { fail_fast_ = v; }
  bool fail_fast() const noexcept { return fail_fast_; }

  // --- kernel hooks (called by Simulation) ---
  /// frame == nullptr for plain callbacks.
  void on_schedule(SimTime now, SimTime t, const void* frame);
  /// Returns false if the resume must be suppressed (frame was destroyed).
  [[nodiscard]] bool on_dispatch(SimTime now, const void* frame);

  // --- Resource double-entry accounting ---
  void on_resource_acquire(SimTime now, const void* res, std::size_t units);
  void on_resource_release(SimTime now, const void* res, std::size_t units);
  /// Destructor context: records only, never throws.
  void on_resource_destroyed(const void* res) noexcept;
  /// Units acquired but not yet released on `res` (0 if unknown).
  std::int64_t resource_outstanding(const void* res) const noexcept;

  // --- PrefetchBuffer conservation (per owning engine) ---
  void on_buffer_allocated(const void* owner, std::uint64_t n = 1);
  void on_buffer_consumed(const void* owner, std::uint64_t n = 1);
  void on_buffer_discarded(const void* owner, std::uint64_t n = 1);
  void on_buffer_freed_at_close(const void* owner, std::uint64_t n = 1);
  /// Verify allocated == consumed + discarded + freed for this owner. Call
  /// when the owner has no resident buffers (e.g. after the last close).
  void check_buffer_conservation(SimTime now, const void* owner, bool in_destructor = false);

  // --- fault conservation (run-wide ledger) ---
  //
  // Observation happens once per manifested fault, at its ultimate handler:
  // the client RPC envelope (per caught attempt failure), the RAID array
  // (per reconstructed read, observed and resolved atomically), or a
  // best-effort consumer that absorbs the error (e.g. server readahead).
  // Lower layers that merely throw do not observe — the error is still in
  // flight to whoever deals with it.
  struct FaultLedger {
    std::uint64_t observed = 0;
    std::uint64_t retried_ok = 0;
    std::uint64_t reconstructed = 0;
    std::uint64_t terminal = 0;
    std::uint64_t resolved() const { return retried_ok + reconstructed + terminal; }
  };
  void on_fault_observed(std::uint64_t n = 1) { faults_.observed += n; }
  void on_fault_retried_ok(std::uint64_t n = 1);
  void on_fault_reconstructed(std::uint64_t n = 1);
  void on_fault_terminal(std::uint64_t n = 1);
  const FaultLedger& fault_ledger() const noexcept { return faults_; }
  /// Verify observed == retried-ok + reconstructed + terminal. Call when no
  /// requests are in flight (end of run / teardown).
  void check_fault_conservation(SimTime now, bool in_destructor = false);

  // --- cache-tier bitmap conservation (per owning tier) ---
  //
  // Every residency bit a second-tier cache sets must be accounted for:
  // either it was cleared again (eviction, crash loss, fsck repair) or it is
  // still resident. `set` counts both fresh inserts and journal-recovered
  // bits; a recovered bit is a new volatile set (the crash cleared the old
  // one), so the ledger balances across crash/restart epochs.
  void on_cache_bit_set(const void* owner, std::uint64_t n = 1);
  void on_cache_bit_cleared(const void* owner, std::uint64_t n = 1);
  /// Verify set == cleared + resident for this tier. Call when the tier is
  /// quiescent (end of run, or its destructor).
  void check_cache_bitmap_conservation(SimTime now, const void* owner,
                                       std::uint64_t resident, bool in_destructor = false);

  // --- byte-range write-token conservation ---
  //
  // The TokenWrite protocol's safety net: every byte of every file is
  // covered by AT MOST one client's write token at any instant, and a
  // revoked token may only be acked after every dirty byte it covered has
  // been flushed. The token manager reports grants/releases as it mutates
  // its grant table; the client reports its residual dirty bytes at each
  // revocation ack. A mismatch in either direction is a coherence bug that
  // would silently corrupt data in a real system.
  void on_token_write_grant(SimTime now, std::uint64_t file, std::uint64_t owner,
                            std::uint64_t begin, std::uint64_t end);
  void on_token_write_release(SimTime now, std::uint64_t file, std::uint64_t owner,
                              std::uint64_t begin, std::uint64_t end);
  /// Revocation ack: `unflushed` dirty bytes still buffered inside the
  /// revoked range (must be 0 — flush-before-ack).
  void check_token_flush(SimTime now, std::uint64_t unflushed);
  /// End-of-run balance: the ledger's total granted write bytes must equal
  /// what the token manager says is still outstanding.
  void check_token_conservation(SimTime now, std::uint64_t outstanding_write_bytes,
                                bool in_destructor = false);

  // --- coalesced-RPC conservation ---
  //
  // A scatter-gather RPC must deliver exactly the union of its merged block
  // ranges, once. The client calls this after the final successful attempt
  // scatters its data: `expected` is what the servers reported moved,
  // `delivered` is what actually landed in the user buffer. Retries cannot
  // double-count because delivery is only tallied on the surviving attempt.
  void check_coalesce_conservation(SimTime now, ByteCount expected, ByteCount delivered);

  // --- seeded violation injection ---
  /// Arm a deliberate violation of `kind`, committed through the real
  /// kernel/accounting paths after a seed-derived number of audited events.
  void arm_injection(Violation kind, std::uint64_t seed);
  bool injection_armed() const noexcept { return injection_armed_; }

  // --- results ---
  const std::vector<ViolationRecord>& violations() const noexcept { return violations_; }
  std::size_t count(Violation kind) const noexcept;
  void clear_violations() { violations_.clear(); }

 private:
  struct BufferLedger {
    std::uint64_t allocated = 0;
    std::uint64_t consumed = 0;
    std::uint64_t discarded = 0;
    std::uint64_t freed_at_close = 0;
    std::uint64_t disposed() const { return consumed + discarded + freed_at_close; }
  };

  struct CacheLedger {
    std::uint64_t set = 0;
    std::uint64_t cleared = 0;
  };

  struct TokenGrantRec {
    std::uint64_t owner;
    std::uint64_t begin;
    std::uint64_t end;
  };

  void report(SimTime now, Violation kind, std::string detail, bool may_throw = true);
  void tick_injection(SimTime now);
  void fire_injection(SimTime now);

  Simulation& sim_;
  bool fail_fast_ = true;

  // ppfs-lint: allow(det-unsafe-source) lookup/erase by key only, never iterated
  std::unordered_map<const void*, std::uint64_t> pending_;  // frame -> times queued
  // ppfs-lint: allow(det-unsafe-source) lookup/erase by key only, never iterated
  std::unordered_map<const void*, std::int64_t> resource_outstanding_;
  // ppfs-lint: allow(det-unsafe-source) lookup/erase by key only, never iterated
  std::unordered_map<const void*, BufferLedger> buffers_;
  // ppfs-lint: allow(det-unsafe-source) lookup/erase by key only, never iterated
  std::unordered_map<const void*, CacheLedger> cache_bits_;
  // file -> currently granted write-token ranges (grant order preserved).
  // ppfs-lint: allow(det-unsafe-source) lookup by key only, never iterated
  std::unordered_map<std::uint64_t, std::vector<TokenGrantRec>> token_grants_;
  std::uint64_t token_granted_bytes_ = 0;  // running ledger total
  FaultLedger faults_;
  std::vector<ViolationRecord> violations_;

  bool injection_armed_ = false;
  bool injecting_ = false;
  Violation injection_kind_ = Violation::kCausality;
  std::uint64_t injection_countdown_ = 0;
};

}  // namespace ppfs::sim::check
