// Streaming determinism digest for the DES kernel.
//
// The kernel's reproducibility claim ("ties in time are broken by insertion
// order, so runs are fully deterministic") is only as good as the tooling
// that can falsify it. Fnv1a64 folds every dispatched event — its time, its
// kind, and the deterministic sequence number of the scheduling action that
// created it — into a 64-bit FNV-1a hash. Two runs of the same scenario must
// produce bit-identical digests; any divergence (iteration over an
// address-ordered container, uninitialized reads, a stray real-time source)
// shows up as a digest mismatch long before it shows up as a wrong number in
// a results table.
#pragma once

#include <bit>
#include <cstdint>

namespace ppfs::sim::check {

class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 1469598103934665603ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  constexpr void mix_byte(std::uint8_t b) noexcept {
    hash_ ^= b;
    hash_ *= kPrime;
  }

  constexpr void mix_u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  /// Doubles are mixed via their bit pattern: equal times hash equally,
  /// and any FP divergence between runs — however small — is caught.
  void mix_double(double v) noexcept { mix_u64(std::bit_cast<std::uint64_t>(v)); }

  constexpr std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = kOffsetBasis;
};

}  // namespace ppfs::sim::check
