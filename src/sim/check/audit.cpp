#include "sim/check/audit.hpp"

#include <coroutine>
#include <exception>
#include <unordered_set>

#include "sim/simulation.hpp"

namespace ppfs::sim::check {

namespace {

// Process-wide registry of destroyed coroutine-frame addresses. Single
// audit-relevant thread per process in this simulator; thread_local keeps
// concurrent test runners independent.
// ppfs-lint: allow(det-unsafe-source) membership tests only, never iterated
thread_local std::unordered_set<void*> g_destroyed_frames;

// splitmix64: turns an arbitrary seed into a well-mixed trigger point so
// injection tests exercise different interleavings per seed.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(Violation v) noexcept {
  switch (v) {
    case Violation::kCausality: return "causality";
    case Violation::kDoubleResume: return "double-resume";
    case Violation::kResumeAfterDestroy: return "resume-after-destroy";
    case Violation::kResourceAccounting: return "resource-accounting";
    case Violation::kBufferConservation: return "buffer-conservation";
    case Violation::kFaultConservation: return "fault-conservation";
    case Violation::kCoalesceConservation: return "coalesce-conservation";
    case Violation::kCacheBitmapConservation: return "cache-bitmap-conservation";
    case Violation::kTokenConservation: return "token-conservation";
  }
  return "unknown";
}

AuditError::AuditError(const ViolationRecord& rec)
    : std::logic_error("SimCheck violation [" + std::string(to_string(rec.kind)) +
                       "] at t=" + std::to_string(rec.when) + ": " + rec.detail),
      kind_(rec.kind) {}

void note_frame_created(void* frame) noexcept {
  if (frame) g_destroyed_frames.erase(frame);  // allocator reused the address
}

void note_frame_destroyed(void* frame) noexcept {
  if (frame) g_destroyed_frames.insert(frame);
}

bool frame_destroyed(void* frame) noexcept { return g_destroyed_frames.count(frame) != 0; }

void Auditor::report(SimTime now, Violation kind, std::string detail, bool may_throw) {
  violations_.push_back(ViolationRecord{kind, now, std::move(detail)});
  if (fail_fast_ && may_throw && std::uncaught_exceptions() == 0) {
    throw AuditError(violations_.back());
  }
}

std::size_t Auditor::count(Violation kind) const noexcept {
  std::size_t n = 0;
  for (const auto& v : violations_) {
    if (v.kind == kind) ++n;
  }
  return n;
}

// --- kernel hooks -----------------------------------------------------------

void Auditor::on_schedule(SimTime now, SimTime t, const void* frame) {
  tick_injection(now);
  if (frame) {
    if (++pending_[frame] > 1) {
      report(now, Violation::kDoubleResume,
             "coroutine frame scheduled while already pending in the event queue");
    }
  }
  if (t < now) {
    report(now, Violation::kCausality,
           "event scheduled at t=" + std::to_string(t) + " < now=" + std::to_string(now));
  }
}

bool Auditor::on_dispatch(SimTime now, const void* frame) {
  tick_injection(now);
  if (!frame) return true;
  auto it = pending_.find(frame);
  if (it != pending_.end() && --it->second == 0) pending_.erase(it);
  if (frame_destroyed(const_cast<void*>(frame))) {
    // Clear the stain so an unrelated future frame at this address (or the
    // shared noop coroutine used by injection) is not condemned forever.
    g_destroyed_frames.erase(const_cast<void*>(frame));
    report(now, Violation::kResumeAfterDestroy,
           "dispatching a coroutine frame that was destroyed while queued");
    return false;
  }
  return true;
}

// --- Resource accounting ----------------------------------------------------

void Auditor::on_resource_acquire(SimTime now, const void* res, std::size_t units) {
  tick_injection(now);
  resource_outstanding_[res] += static_cast<std::int64_t>(units);
}

void Auditor::on_resource_release(SimTime now, const void* res, std::size_t units) {
  auto& out = resource_outstanding_[res];
  out -= static_cast<std::int64_t>(units);
  if (out < 0) {
    out = 0;
    report(now, Violation::kResourceAccounting,
           "release of " + std::to_string(units) + " unit(s) exceeds outstanding acquisitions");
  }
}

void Auditor::on_resource_destroyed(const void* res) noexcept {
  auto it = resource_outstanding_.find(res);
  if (it == resource_outstanding_.end()) return;
  const std::int64_t leaked = it->second;
  resource_outstanding_.erase(it);
  if (leaked != 0) {
    report(sim_.now(), Violation::kResourceAccounting,
           std::to_string(leaked) + " unit(s) still acquired when Resource was destroyed",
           /*may_throw=*/false);
  }
}

std::int64_t Auditor::resource_outstanding(const void* res) const noexcept {
  auto it = resource_outstanding_.find(res);
  return it == resource_outstanding_.end() ? 0 : it->second;
}

// --- PrefetchBuffer conservation --------------------------------------------

void Auditor::on_buffer_allocated(const void* owner, std::uint64_t n) {
  buffers_[owner].allocated += n;
}

void Auditor::on_buffer_consumed(const void* owner, std::uint64_t n) {
  auto& l = buffers_[owner];
  l.consumed += n;
  if (l.disposed() > l.allocated) {
    report(sim_.now(), Violation::kBufferConservation,
           "buffer consumed that was never accounted as allocated");
  }
}

void Auditor::on_buffer_discarded(const void* owner, std::uint64_t n) {
  auto& l = buffers_[owner];
  l.discarded += n;
  if (l.disposed() > l.allocated) {
    report(sim_.now(), Violation::kBufferConservation,
           "buffer discarded that was never accounted as allocated");
  }
}

void Auditor::on_buffer_freed_at_close(const void* owner, std::uint64_t n) {
  auto& l = buffers_[owner];
  l.freed_at_close += n;
  if (l.disposed() > l.allocated) {
    report(sim_.now(), Violation::kBufferConservation,
           "buffer freed at close that was never accounted as allocated");
  }
}

void Auditor::check_buffer_conservation(SimTime now, const void* owner, bool in_destructor) {
  auto it = buffers_.find(owner);
  if (it == buffers_.end()) return;
  const BufferLedger l = it->second;
  if (in_destructor) buffers_.erase(it);
  if (l.allocated != l.disposed()) {
    report(now, Violation::kBufferConservation,
           "allocated=" + std::to_string(l.allocated) + " != consumed=" +
               std::to_string(l.consumed) + " + discarded=" + std::to_string(l.discarded) +
               " + freed-at-close=" + std::to_string(l.freed_at_close),
           /*may_throw=*/!in_destructor);
  }
}

// --- fault conservation -----------------------------------------------------

void Auditor::on_fault_retried_ok(std::uint64_t n) {
  faults_.retried_ok += n;
  if (faults_.resolved() > faults_.observed) {
    report(sim_.now(), Violation::kFaultConservation,
           "fault resolved as retried-ok that was never observed");
  }
}

void Auditor::on_fault_reconstructed(std::uint64_t n) {
  faults_.reconstructed += n;
  if (faults_.resolved() > faults_.observed) {
    report(sim_.now(), Violation::kFaultConservation,
           "fault resolved as reconstructed that was never observed");
  }
}

void Auditor::on_fault_terminal(std::uint64_t n) {
  faults_.terminal += n;
  if (faults_.resolved() > faults_.observed) {
    report(sim_.now(), Violation::kFaultConservation,
           "fault resolved as terminal that was never observed");
  }
}

void Auditor::check_fault_conservation(SimTime now, bool in_destructor) {
  const FaultLedger l = faults_;
  if (l.observed != l.resolved()) {
    report(now, Violation::kFaultConservation,
           "observed=" + std::to_string(l.observed) + " != retried-ok=" +
               std::to_string(l.retried_ok) + " + reconstructed=" +
               std::to_string(l.reconstructed) + " + terminal=" + std::to_string(l.terminal),
           /*may_throw=*/!in_destructor);
  }
}

// --- cache-tier bitmap conservation -----------------------------------------

void Auditor::on_cache_bit_set(const void* owner, std::uint64_t n) {
  cache_bits_[owner].set += n;
}

void Auditor::on_cache_bit_cleared(const void* owner, std::uint64_t n) {
  auto& l = cache_bits_[owner];
  l.cleared += n;
  if (l.cleared > l.set) {
    report(sim_.now(), Violation::kCacheBitmapConservation,
           "cache bit cleared that was never accounted as set");
  }
}

void Auditor::check_cache_bitmap_conservation(SimTime now, const void* owner,
                                              std::uint64_t resident, bool in_destructor) {
  auto it = cache_bits_.find(owner);
  if (it == cache_bits_.end()) {
    if (resident != 0) {
      report(now, Violation::kCacheBitmapConservation,
             std::to_string(resident) + " resident bit(s) on a tier with no ledger",
             /*may_throw=*/!in_destructor);
    }
    return;
  }
  const CacheLedger l = it->second;
  if (in_destructor) cache_bits_.erase(it);
  if (l.set != l.cleared + resident) {
    report(now, Violation::kCacheBitmapConservation,
           "set=" + std::to_string(l.set) + " != cleared=" + std::to_string(l.cleared) +
               " + resident=" + std::to_string(resident),
           /*may_throw=*/!in_destructor);
  }
}

// --- byte-range write-token conservation ------------------------------------

void Auditor::on_token_write_grant(SimTime now, std::uint64_t file, std::uint64_t owner,
                                   std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) return;
  auto& recs = token_grants_[file];
  for (const TokenGrantRec& r : recs) {
    if (r.begin < end && begin < r.end && r.owner != owner) {
      report(now, Violation::kTokenConservation,
             "write token [" + std::to_string(begin) + "," + std::to_string(end) +
                 ") granted to client " + std::to_string(owner) + " overlaps [" +
                 std::to_string(r.begin) + "," + std::to_string(r.end) +
                 ") still held by client " + std::to_string(r.owner) + " on file " +
                 std::to_string(file));
      return;
    }
  }
  recs.push_back(TokenGrantRec{owner, begin, end});
  token_granted_bytes_ += end - begin;
}

void Auditor::on_token_write_release(SimTime now, std::uint64_t file, std::uint64_t owner,
                                     std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) return;
  auto it = token_grants_.find(file);
  std::uint64_t removed = 0;
  if (it != token_grants_.end()) {
    auto& recs = it->second;
    std::vector<TokenGrantRec> splits;
    for (std::size_t i = 0; i < recs.size();) {
      TokenGrantRec& r = recs[i];
      if (r.owner != owner || r.end <= begin || r.begin >= end) {
        ++i;
        continue;
      }
      const std::uint64_t ob = r.begin > begin ? r.begin : begin;
      const std::uint64_t oe = r.end < end ? r.end : end;
      removed += oe - ob;
      // Keep the non-overlapping remainders of the grant record.
      if (ob > r.begin && oe < r.end) {
        splits.push_back(TokenGrantRec{owner, oe, r.end});
        r.end = ob;
        ++i;
      } else if (ob > r.begin) {
        r.end = ob;
        ++i;
      } else if (oe < r.end) {
        r.begin = oe;
        ++i;
      } else {
        recs.erase(recs.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
    for (TokenGrantRec& s : splits) recs.push_back(s);
  }
  token_granted_bytes_ -= removed;
  if (removed != end - begin) {
    report(now, Violation::kTokenConservation,
           "release of write token [" + std::to_string(begin) + "," + std::to_string(end) +
               ") by client " + std::to_string(owner) + " covers " + std::to_string(removed) +
               " granted byte(s), expected " + std::to_string(end - begin));
  }
}

void Auditor::check_token_flush(SimTime now, std::uint64_t unflushed) {
  if (unflushed != 0) {
    report(now, Violation::kTokenConservation,
           "revoked write token acked with " + std::to_string(unflushed) +
               " dirty byte(s) unflushed");
  }
}

void Auditor::check_token_conservation(SimTime now, std::uint64_t outstanding_write_bytes,
                                       bool in_destructor) {
  if (token_granted_bytes_ != outstanding_write_bytes) {
    report(now, Violation::kTokenConservation,
           "ledger holds " + std::to_string(token_granted_bytes_) +
               " granted write byte(s) != manager outstanding " +
               std::to_string(outstanding_write_bytes),
           /*may_throw=*/!in_destructor);
  }
}

// --- coalesced-RPC conservation ---------------------------------------------

void Auditor::check_coalesce_conservation(SimTime now, ByteCount expected,
                                          ByteCount delivered) {
  if (expected != delivered) {
    report(now, Violation::kCoalesceConservation,
           "coalesced RPC delivered " + std::to_string(delivered) +
               " byte(s), expected the union of its extents = " +
               std::to_string(expected));
  }
}

// --- seeded injection -------------------------------------------------------

void Auditor::arm_injection(Violation kind, std::uint64_t seed) {
  injection_armed_ = true;
  injection_kind_ = kind;
  injection_countdown_ = 1 + splitmix64(seed) % 16;
}

void Auditor::tick_injection(SimTime now) {
  if (!injection_armed_ || injecting_) return;
  if (--injection_countdown_ > 0) return;
  injection_armed_ = false;
  injecting_ = true;
  fire_injection(now);
  injecting_ = false;
}

void Auditor::fire_injection(SimTime now) {
  switch (injection_kind_) {
    case Violation::kCausality:
      // A real stale-time schedule through the kernel's public surface.
      sim_.call_at(now - 1.0, [] {});
      break;
    case Violation::kDoubleResume:
      // The noop coroutine tolerates any number of resumes, so the injected
      // double-schedule travels the real queue without risking UB.
      sim_.schedule_at(now, std::noop_coroutine());
      sim_.schedule_at(now, std::noop_coroutine());
      break;
    case Violation::kResumeAfterDestroy:
      sim_.schedule_at(now, std::noop_coroutine());
      note_frame_destroyed(std::noop_coroutine().address());
      break;
    case Violation::kResourceAccounting:
      on_resource_release(now, this, 1);  // release with nothing acquired
      break;
    case Violation::kBufferConservation:
      on_buffer_allocated(this, 1);  // allocated, never disposed
      check_buffer_conservation(now, this);
      break;
    case Violation::kFaultConservation:
      on_fault_observed(1);  // observed, never resolved
      check_fault_conservation(now);
      break;
    case Violation::kCoalesceConservation:
      // A scatter that dropped one byte of its merged ranges.
      check_coalesce_conservation(now, /*expected=*/1, /*delivered=*/0);
      break;
    case Violation::kCacheBitmapConservation:
      on_cache_bit_set(this, 1);  // set, never cleared, not resident
      check_cache_bitmap_conservation(now, this, /*resident=*/0);
      break;
    case Violation::kTokenConservation:
      // Two clients granted overlapping write tokens on the same file — the
      // exact double-writer hazard the protocol exists to prevent.
      on_token_write_grant(now, /*file=*/1, /*owner=*/1, 0, 4096);
      on_token_write_grant(now, /*file=*/1, /*owner=*/2, 1024, 2048);
      break;
  }
}

}  // namespace ppfs::sim::check
