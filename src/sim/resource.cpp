// Resource is header-only; this TU exists so the library has a stable
// object for the component and a place for future out-of-line growth.
#include "sim/resource.hpp"
