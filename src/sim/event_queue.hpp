// EventQueue: the kernel's owned time-ordered queue, tie-batched.
//
// Discrete-event simulations of a parallel file system are saturated with
// simultaneous events: every Resource grant, Event::set wakeup and Barrier
// release lands at the current time, and lock-step compute nodes schedule
// whole waves of message hops at identical future instants. A plain heap
// pays a full O(log n) sift for each of them. This queue instead keeps one
// heap node per *distinct pending time* (a "bucket") and appends ties to
// that bucket's FIFO, so the common event costs a few stores, not a sift.
//
//   heap node   {time-bits, first-seq, first-payload, bucket}  — 4-ary heap
//   bucket FIFO chunked list of {seq, payload}, drained in push order
//   append cache 256-entry direct-mapped {time-bits -> open bucket}
//
// Dispatch order is exactly the kernel's determinism contract — earliest
// time first, ties by schedule sequence. The subtle part is the append
// cache: a push whose time misses the cache *closes* whichever bucket the
// slot held and opens a fresh one. A closed bucket can never be appended
// to again, so when several buckets share one time they hold disjoint,
// ascending sequence ranges in creation order, and the heap's (time,
// first-seq) tie-break still yields globally sorted output. Draining a
// bucket just advances its FIFO — the refilled heap node keeps the
// smallest remaining sequence for that time, so it stays on top without a
// sift.
//
// Times are compared as their IEEE-754 bit patterns: the kernel never
// schedules negative times (Simulation clamps to `now`), and non-negative
// doubles order identically to their bit patterns, which makes every heap
// comparison two integer compares instead of a double compare ladder.
// (-0.0 is canonicalized to +0.0 on push; NaN times are a caller bug,
// asserted in debug builds.)
//
// Payloads relocate as raw words (a coroutine handle or a trivially-
// relocatable SmallFn), so sifts and FIFO traffic are plain copies — no
// callable moves, no destructor calls, and no allocation once the pools
// have grown to the run's high-water mark.
#pragma once

#include <bit>
#include <cassert>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/small_fn.hpp"
#include "sim/types.hpp"

namespace ppfs::sim {

class EventQueue {
 public:
  /// A popped event: exactly one of `h` (coroutine resumption) or `fn`
  /// (plain callback) is engaged; `h` is null for callbacks.
  struct Entry {
    SimTime t = 0;
    std::uint64_t seq = 0;
    std::coroutine_handle<> h{};
    SmallFn fn;
  };

  bool empty() const noexcept { return count_ == 0; }
  std::size_t size() const noexcept { return count_; }

  /// High-water mark of pending events over the queue's lifetime (clear()
  /// keeps it: it is the run's depth, not the instantaneous one). The scale
  /// bench gates on this to prove deep-backlog runs stay tractable.
  std::size_t peak_pending() const noexcept { return peak_count_; }

  /// Bytes of owned storage (heap nodes, tie buckets, chunk pool, free
  /// lists, append cache). Capacities, not sizes: pools only grow, so this
  /// is the footprint high-water the queue will hold until destruction.
  std::size_t memory_bytes() const noexcept {
    return heap_.capacity() * sizeof(Node) + buckets_.capacity() * sizeof(Bucket) +
           chunks_.capacity() * sizeof(Chunk) +
           (free_buckets_.capacity() + free_chunks_.capacity()) * sizeof(std::uint32_t) +
           sizeof(cache_);
  }

  /// Time of the earliest pending event. Precondition: !empty().
  SimTime top_time() const noexcept {
    assert(count_ != 0);
    return std::bit_cast<SimTime>(heap_.front().tb);
  }

  void reserve(std::size_t n) {
    heap_.reserve(n);
    buckets_.reserve(n);
    chunks_.reserve(n / kChunkCap + 1);
    free_buckets_.reserve(n);
    free_chunks_.reserve(n / kChunkCap + 1);
  }

  // ppfs::hot — per-event push/pop pair; every simulated event passes through here
  void push(SimTime t, std::uint64_t seq, std::coroutine_handle<> h) {
    push_impl(t, seq, reinterpret_cast<std::uintptr_t>(h.address()), SmallFn{});
  }

  void push(SimTime t, std::uint64_t seq, SmallFn fn) {
    push_impl(t, seq, 0, std::move(fn));
  }

  /// Remove and return the earliest event. Precondition: !empty().
  Entry pop() {
    assert(count_ != 0);
    --count_;
    Node& top = heap_.front();
    Entry e{std::bit_cast<SimTime>(top.tb), top.seq0,
            std::coroutine_handle<>::from_address(reinterpret_cast<void*>(top.h0)),
            std::move(top.fn0)};
    Bucket& b = buckets_[top.bucket];
    if (b.head != kNone) {
      // More ties pending at this time: promote the FIFO head into the
      // node. It keeps the smallest remaining (time, seq) globally —
      // later buckets at this time hold strictly larger sequences — so
      // the node stays on top with no sift.
      Chunk& hc = chunks_[b.head];
      Ev& ev = hc.ev[b.ridx++];
      top.seq0 = ev.seq;
      top.h0 = ev.h;
      top.fn0 = std::move(ev.fn);
      if (b.ridx == hc.n) {
        const std::uint32_t next = hc.next;
        free_chunks_.push_back(b.head);
        b.ridx = 0;
        b.head = next;
        if (next == kNone) b.tail = kNone;
      }
      return e;
    }
    // Bucket drained: retire it and delete the heap root.
    CacheEnt& ce = cache_[cache_slot(top.tb)];
    if (ce.tb == top.tb && ce.bucket == top.bucket) ce.tb = kEmptyTb;
    free_buckets_.push_back(top.bucket);
    Node last = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(std::move(last));
    return e;
  }
  // ppfs::endhot

  /// Drop every pending event (callback state is destroyed; queued
  /// coroutine handles are simply forgotten — teardown owns their frames).
  void clear() noexcept {
    heap_.clear();
    buckets_.clear();
    chunks_.clear();
    free_buckets_.clear();
    free_chunks_.clear();
    invalidate_cache();
    count_ = 0;
  }

 private:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;
  static constexpr std::uint64_t kEmptyTb = 0xFFFFFFFFFFFFFFFFull;  // -NaN: unschedulable
  static constexpr std::uint64_t kNegZeroTb = 0x8000000000000000ull;
  static constexpr std::uint32_t kChunkCap = 12;
  static constexpr std::uint32_t kCacheSize = 256;  // power of two

  struct Ev {
    std::uint64_t seq;
    std::uintptr_t h;
    SmallFn fn;
  };
  struct Chunk {
    Ev ev[kChunkCap];
    std::uint32_t next = kNone;
    std::uint32_t n = 0;
  };
  struct Bucket {
    std::uint32_t head = kNone;
    std::uint32_t tail = kNone;
    std::uint32_t ridx = 0;
  };
  struct Node {
    std::uint64_t tb;    // time as ordered bit pattern
    std::uint64_t seq0;  // sequence of the bucket's next-out event
    std::uintptr_t h0;
    SmallFn fn0;
    std::uint32_t bucket;
  };
  struct CacheEnt {
    std::uint64_t tb = kEmptyTb;
    std::uint32_t bucket = 0;
  };

  static bool earlier(const Node& a, const Node& b) noexcept {
    return a.tb < b.tb || (a.tb == b.tb && a.seq0 < b.seq0);
  }

  static std::size_t cache_slot(std::uint64_t tb) noexcept {
    return static_cast<std::size_t>((tb * 0x9E3779B97F4A7C15ull) >> 56) & (kCacheSize - 1);
  }

  void invalidate_cache() noexcept {
    for (CacheEnt& ce : cache_) ce = CacheEnt{};
  }

  void push_impl(SimTime t, std::uint64_t seq, std::uintptr_t h, SmallFn fn) {
    assert(t == t && "EventQueue: NaN event time");
    std::uint64_t tb = std::bit_cast<std::uint64_t>(t);
    if (tb == kNegZeroTb) tb = 0;  // -0.0 sorts (and digests) as +0.0
    ++count_;
    if (count_ > peak_count_) peak_count_ = count_;
    CacheEnt& ce = cache_[cache_slot(tb)];
    if (ce.tb == tb) {
      append(buckets_[ce.bucket], seq, h, std::move(fn));
      return;
    }
    // Miss: implicitly close whatever bucket held this slot and open a
    // fresh one with the event inline in its heap node.
    std::uint32_t bi;
    if (!free_buckets_.empty()) {
      bi = free_buckets_.back();
      free_buckets_.pop_back();
      buckets_[bi] = Bucket{};
    } else {
      bi = static_cast<std::uint32_t>(buckets_.size());
      buckets_.emplace_back();
    }
    ce.tb = tb;
    ce.bucket = bi;
    sift_up(Node{tb, seq, h, std::move(fn), bi});
  }

  void append(Bucket& b, std::uint64_t seq, std::uintptr_t h, SmallFn fn) {
    if (b.tail == kNone) {
      const std::uint32_t c = alloc_chunk();
      b.head = b.tail = c;
      b.ridx = 0;
    } else if (chunks_[b.tail].n == kChunkCap) {
      const std::uint32_t c = alloc_chunk();
      chunks_[b.tail].next = c;
      b.tail = c;
    }
    Chunk& tc = chunks_[b.tail];
    Ev& ev = tc.ev[tc.n++];
    ev.seq = seq;
    ev.h = h;
    ev.fn = std::move(fn);
  }

  std::uint32_t alloc_chunk() {
    if (!free_chunks_.empty()) {
      const std::uint32_t c = free_chunks_.back();
      free_chunks_.pop_back();
      chunks_[c].next = kNone;
      chunks_[c].n = 0;
      return c;
    }
    chunks_.emplace_back();
    return static_cast<std::uint32_t>(chunks_.size() - 1);
  }

  // Hole-based insertion: bubble the hole up, write the new node once.
  void sift_up(Node n) {
    std::size_t i = heap_.size();
    heap_.emplace_back();  // grows storage; value overwritten below
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!earlier(n, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(n);
  }

  // Re-seat `v` (the old last element) starting from the root hole.
  void sift_down(Node v) {
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < end; ++c) {
        best = earlier(heap_[c], heap_[best]) ? c : best;
      }
      if (!earlier(heap_[best], v)) break;
      heap_[i] = std::move(heap_[best]);
      i = best;
    }
    heap_[i] = std::move(v);
  }

  std::vector<Node> heap_;        // one node per distinct pending time
  std::vector<Bucket> buckets_;   // overflow FIFOs, indexed by Node::bucket
  std::vector<Chunk> chunks_;
  std::vector<std::uint32_t> free_buckets_;
  std::vector<std::uint32_t> free_chunks_;
  CacheEnt cache_[kCacheSize];
  std::size_t count_ = 0;
  std::size_t peak_count_ = 0;
};

}  // namespace ppfs::sim
