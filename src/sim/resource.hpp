// Resource: a counted, FIFO-fair semaphore for simulation processes.
//
// Models anything with finite service capacity: a disk channel, a SCSI bus,
// a mesh link, an I/O-node CPU. Processes co_await acquire(n); release(n)
// hands capacity to queued waiters strictly in arrival order (no overtaking
// even if a later, smaller request would fit — this models FIFO hardware
// queues and keeps results reproducible).
//
// acquire() returns a move-only guard; letting the guard go out of scope
// releases the units. Use guard.release() to release early.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <deque>

#include "sim/simulation.hpp"

namespace ppfs::sim {

class Resource;

/// RAII ownership of acquired resource units.
class [[nodiscard]] ResourceGuard {
 public:
  ResourceGuard() = default;
  ResourceGuard(Resource* res, std::size_t units) : res_(res), units_(units) {}
  ResourceGuard(ResourceGuard&& o) noexcept
      : res_(std::exchange(o.res_, nullptr)), units_(std::exchange(o.units_, 0)) {}
  ResourceGuard& operator=(ResourceGuard&& o) noexcept {
    if (this != &o) {
      release();
      res_ = std::exchange(o.res_, nullptr);
      units_ = std::exchange(o.units_, 0);
    }
    return *this;
  }
  ResourceGuard(const ResourceGuard&) = delete;
  ResourceGuard& operator=(const ResourceGuard&) = delete;
  ~ResourceGuard() { release(); }

  void release();
  bool owns() const noexcept { return res_ != nullptr; }

 private:
  Resource* res_ = nullptr;
  std::size_t units_ = 0;
};

class Resource {
 public:
  Resource(Simulation& sim, std::size_t capacity) : sim_(sim), capacity_(capacity) {
    assert(capacity > 0);
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;
  ~Resource() {
    // SimCheck: units still acquired when the resource dies are a leak
    // (some process holds a guard into freed hardware). Records only —
    // destructors must not throw.
    if (auto* a = sim_.auditor()) a->on_resource_destroyed(this);
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t in_use() const noexcept { return in_use_; }
  std::size_t available() const noexcept { return capacity_ - in_use_; }
  std::size_t queue_length() const noexcept { return waiters_.size(); }

  /// Awaitable acquiring `units` capacity (must be <= capacity()).
  /// Resolves to a ResourceGuard.
  auto acquire(std::size_t units = 1) {
    assert(units > 0 && units <= capacity_);
    struct Awaiter {
      Resource& res;
      std::size_t units;
      bool await_ready() {
        if (res.waiters_.empty() && res.in_use_ + units <= res.capacity_) {
          res.in_use_ += units;
          if (auto* a = res.sim_.auditor()) {
            a->on_resource_acquire(res.sim_.now(), &res, units);
          }
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        res.waiters_.push_back(Waiter{units, h});
      }
      ResourceGuard await_resume() noexcept { return ResourceGuard{&res, units}; }
    };
    return Awaiter{*this, units};
  }

  /// Return units to the pool and grant queued waiters (FIFO).
  void release(std::size_t units) {
    if (auto* a = sim_.auditor()) a->on_resource_release(sim_.now(), this, units);
    assert(units <= in_use_);
    in_use_ -= units > in_use_ ? in_use_ : units;
    grant_waiters();
  }

  /// Cumulative busy time bookkeeping helpers for utilization stats.
  double utilization(SimTime horizon) const noexcept {
    return horizon > 0 ? busy_time_ / (horizon * static_cast<double>(capacity_)) : 0.0;
  }
  void note_busy(SimTime t) noexcept { busy_time_ += t; }

 private:
  struct Waiter {
    std::size_t units;
    std::coroutine_handle<> h;
  };

  void grant_waiters() {
    // During pending-process teardown a granted waiter would never run (and
    // so never release), which would break acquire/release accounting.
    if (sim_.draining()) return;
    while (!waiters_.empty() && in_use_ + waiters_.front().units <= capacity_) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      in_use_ += w.units;
      if (auto* a = sim_.auditor()) a->on_resource_acquire(sim_.now(), this, w.units);
      sim_.schedule_at(sim_.now(), w.h);
    }
  }

  Simulation& sim_;
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  double busy_time_ = 0.0;
  std::deque<Waiter> waiters_;
};

inline void ResourceGuard::release() {
  if (res_) {
    res_->release(units_);
    res_ = nullptr;
    units_ = 0;
  }
}

}  // namespace ppfs::sim
