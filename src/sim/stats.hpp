// Statistics collection for experiments.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace ppfs::sim {

/// Streaming mean/variance/min/max (Welford). O(1) memory.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::size_t count() const noexcept { return n_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

  void merge(const RunningStats& other);
  void reset() { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores every sample; supports exact percentiles. Use for per-request
/// latency distributions (sample counts here are small: thousands).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const noexcept { return samples_.size(); }
  double percentile(double p);  // p in [0,100]
  double median() { return percentile(50.0); }
  double mean() const;
  double min();
  double max();
  const std::vector<double>& samples() const noexcept { return samples_; }
  void reset() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void ensure_sorted();
  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Fixed-footprint streaming quantile sketch: log2-spaced bins (one per
/// power of two of nanoseconds) plus exact count/sum/min/max. Memory is
/// sizeof(*this) no matter how many samples arrive — the production-scale
/// replacement for SampleSet, whose per-sample vector made stats the
/// dominant allocation of long runs. Quantiles are estimated at the
/// geometric midpoint of the covering bin (clamped to [min, max]); the
/// relative error is bounded by the bin ratio (sqrt(2) ~ 41% worst case,
/// far tighter in practice since latencies cluster within a few bins).
class StreamingQuantiles {
 public:
  /// Bin i covers [2^i, 2^(i+1)) nanoseconds; 64 bins span < 1ns .. > 290y.
  static constexpr std::size_t kBins = 64;

  void add(double x);
  void merge(const StreamingQuantiles& other);

  std::size_t count() const noexcept { return n_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Estimated value at percentile p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  std::uint64_t bin_count(std::size_t i) const { return bins_.at(i); }

  void reset() { *this = StreamingQuantiles{}; }

 private:
  static std::size_t bin_of(double x) noexcept;

  std::array<std::uint64_t, kBins> bins_{};
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width linear histogram over [lo, hi); out-of-range samples land in
/// the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count(std::size_t i) const { return bins_.at(i); }
  std::size_t bins() const noexcept { return bins_.size(); }
  std::size_t total() const noexcept { return total_; }
  double bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  double bin_width() const noexcept { return width_; }
  std::string ascii(std::size_t max_width = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> bins_;
  std::size_t total_ = 0;
};

/// Time-weighted average of a piecewise-constant signal (e.g. queue length).
class TimeWeighted {
 public:
  void record(SimTime now, double value);
  double average(SimTime now) const;
  double current() const noexcept { return value_; }

 private:
  SimTime last_ = 0.0;
  double value_ = 0.0;
  double area_ = 0.0;
  bool started_ = false;
  SimTime start_ = 0.0;
};

}  // namespace ppfs::sim
