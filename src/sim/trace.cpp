#include "sim/trace.hpp"

#include <iomanip>
#include <ostream>

namespace ppfs::sim {

const char* Tracer::cat_name(TraceCat cat) {
  switch (cat) {
    case TraceCat::kDisk: return "disk";
    case TraceCat::kNet: return "net";
    case TraceCat::kUfs: return "ufs";
    case TraceCat::kPfs: return "pfs";
    case TraceCat::kPrefetch: return "prefetch";
    case TraceCat::kWorkload: return "workload";
    default: return "all";
  }
}

void Tracer::log(TraceCat cat, SimTime now, std::string_view component,
                 std::string_view message) {
  if (!enabled(cat)) return;
  std::ostringstream line;
  line << std::fixed << std::setprecision(6) << "[" << now << "s] " << cat_name(cat) << "/"
       << component << ": " << message << "\n";
  if (sink_) (*sink_) << line.str();
  if (capture_) buffer_ += line.str();
}

}  // namespace ppfs::sim
