#include "sim/frame_arena.hpp"

#include <cassert>
#include <cstring>
#include <new>

namespace ppfs::sim {

FrameArena& FrameArena::local() noexcept {
  thread_local FrameArena arena;
  return arena;
}

FrameArena::Bucket& FrameArena::bucket_for(std::size_t block_bytes) {
  for (auto& b : buckets_) {
    if (b.bytes == block_bytes) return b;
  }
  auto& b = buckets_.emplace_back();
  b.bytes = block_bytes;
  return b;
}

void* FrameArena::allocate(std::size_t bytes) {
  const std::size_t block_bytes =
      ((bytes + kHeaderSize + kGranularity - 1) / kGranularity) * kGranularity;
  ++stats_.allocs;
  ++stats_.live;
  Bucket& bucket = bucket_for(block_bytes);
  void* block;
  if (!bucket.free.empty()) {
    block = bucket.free.back();
    bucket.free.pop_back();
    ++stats_.pool_hits;
    --stats_.cached_blocks;
    stats_.cached_bytes -= block_bytes;
  } else {
    block = ::operator new(block_bytes);
    std::memcpy(block, &block_bytes, sizeof(block_bytes));
  }
  return static_cast<char*>(block) + kHeaderSize;
}

void FrameArena::deallocate(void* p) noexcept {
  if (!p) return;
  void* block = static_cast<char*>(p) - kHeaderSize;
  std::size_t block_bytes = 0;
  std::memcpy(&block_bytes, block, sizeof(block_bytes));
  assert(stats_.live > 0);
  --stats_.live;
  Bucket& bucket = bucket_for(block_bytes);
  if (bucket.free.size() < kMaxCachedPerClass) {
    bucket.free.push_back(block);
    ++stats_.cached_blocks;
    stats_.cached_bytes += block_bytes;
  } else {
    ++stats_.trims;
    ::operator delete(block);
  }
}

void FrameArena::trim() noexcept {
  for (auto& bucket : buckets_) {
    for (void* block : bucket.free) {
      ++stats_.trims;
      ::operator delete(block);
    }
    stats_.cached_blocks -= bucket.free.size();
    stats_.cached_bytes -= bucket.bytes * bucket.free.size();
    bucket.free.clear();
  }
}

}  // namespace ppfs::sim
