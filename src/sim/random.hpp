// Deterministic random number generation for workloads.
//
// xoshiro256++ (Blackman & Vigna) with a splitmix64 seeder: fast, tiny
// state, and — unlike std::mt19937 distributions — the helper methods here
// produce identical sequences on every platform, which keeps experiment
// outputs byte-for-byte reproducible.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

namespace ppfs::sim {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform in [0, 1).
  double uniform01() {
    // 53 high bits -> double mantissa.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Uniform integer in [lo, hi] inclusive. Uses rejection sampling for an
  /// unbiased result.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Exponential with the given mean (mean = 1/lambda).
  double exponential(double mean);

  /// Normal via Box–Muller (no cached spare: simpler, still deterministic).
  double normal(double mu, double sigma);

  /// Zipf-like rank distribution over [1, n] with exponent s, by inverse
  /// transform on the precomputed CDF supplied via make_zipf_cdf.
  std::size_t zipf(const std::vector<double>& cdf);

  static std::vector<double> make_zipf_cdf(std::size_t n, double s);

  /// Fork a statistically independent child stream (for per-node RNGs).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace ppfs::sim
