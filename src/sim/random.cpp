#include "sim/random.hpp"

#include <algorithm>
#include <cassert>

namespace ppfs::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // All-zero state would be a fixed point; splitmix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = hi - lo + 1;  // span==0 means full 2^64 range
  if (span == 0) return next();
  const std::uint64_t limit = (~0ull) - (~0ull) % span;
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return lo + v % span;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mu, double sigma) {
  double u1;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mu + sigma * r * std::cos(2.0 * 3.141592653589793 * u2);
}

std::size_t Rng::zipf(const std::vector<double>& cdf) {
  assert(!cdf.empty());
  const double u = uniform01();
  auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  if (it == cdf.end()) --it;
  return static_cast<std::size_t>(it - cdf.begin()) + 1;
}

std::vector<double> Rng::make_zipf_cdf(std::size_t n, double s) {
  std::vector<double> cdf(n);
  double sum = 0.0;
  for (std::size_t k = 1; k <= n; ++k) sum += 1.0 / std::pow(static_cast<double>(k), s);
  double acc = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s) / sum;
    cdf[k - 1] = acc;
  }
  cdf.back() = 1.0;
  return cdf;
}

Rng Rng::split() {
  Rng child(0);
  // Derive the child state from fresh draws so parent and child streams do
  // not overlap for any practical horizon.
  for (auto& w : child.s_) w = next();
  if (child.s_[0] == 0 && child.s_[1] == 0 && child.s_[2] == 0 && child.s_[3] == 0)
    child.s_[0] = 1;
  return child;
}

}  // namespace ppfs::sim
