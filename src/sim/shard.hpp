// ShardArena: cache-local per-node state storage for production-scale runs.
//
// Simulation entities that exist once per mesh node (link Resources, node
// CPUs, RAID arrays, PFS servers) used to live behind one unique_ptr each,
// so a 1024x256 machine paid one heap allocation — and one pointer chase —
// per entity, and "adjacent" nodes landed on unrelated cache lines. A
// ShardArena places the objects themselves contiguously, indexed by node
// id, in one aligned block: walking node state becomes a linear scan, and
// the per-entity malloc header overhead disappears.
//
// The contract is deliberately narrow, because the stored types are
// non-movable (Resources register with the SimCheck auditor by address;
// PfsServer keeps references into itself):
//  * capacity is fixed once by reserve() — elements are constructed in
//    place with emplace_back() and NEVER move or reallocate afterwards,
//    so raw pointers and references into the arena stay valid for its
//    whole lifetime;
//  * construction order is index order (node id order), exactly matching
//    the vector<unique_ptr> layout it replaces, so event digests are
//    bit-identical;
//  * destruction runs in reverse construction order, like a C array.
//
// memory_bytes() reports the arena's single-block footprint; the scale
// bench sums these across the machine to hold bytes/entity flat as the
// mesh grows.
#pragma once

#include <cstddef>
#include <new>
#include <stdexcept>
#include <utility>

namespace ppfs::sim {

template <typename T>
class ShardArena {
 public:
  ShardArena() = default;
  /// Convenience: reserve immediately.
  explicit ShardArena(std::size_t capacity) { reserve(capacity); }

  ShardArena(const ShardArena&) = delete;
  ShardArena& operator=(const ShardArena&) = delete;

  ~ShardArena() { release(); }

  /// Allocate storage for exactly `capacity` elements. One-shot: the arena
  /// must be unreserved (elements never relocate, so there is no grow path).
  void reserve(std::size_t capacity) {
    if (storage_ != nullptr) {
      throw std::logic_error("ShardArena: already reserved (capacity is one-shot)");
    }
    if (capacity == 0) return;
    storage_ = static_cast<T*>(
        ::operator new(capacity * sizeof(T), std::align_val_t{alignof(T)}));
    capacity_ = capacity;
  }

  /// Construct the next element in place (index == size() before the call).
  /// Returns a reference that stays valid for the arena's lifetime.
  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) {
      throw std::length_error("ShardArena: emplace_back past reserved capacity");
    }
    T* slot = storage_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  T& operator[](std::size_t i) noexcept { return storage_[i]; }
  const T& operator[](std::size_t i) const noexcept { return storage_[i]; }

  T& at(std::size_t i) {
    if (i >= size_) throw std::out_of_range("ShardArena: index out of range");
    return storage_[i];
  }
  const T& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("ShardArena: index out of range");
    return storage_[i];
  }

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Footprint of the arena's block (reserved, not just constructed).
  std::size_t memory_bytes() const noexcept { return capacity_ * sizeof(T); }

  T* begin() noexcept { return storage_; }
  T* end() noexcept { return storage_ + size_; }
  const T* begin() const noexcept { return storage_; }
  const T* end() const noexcept { return storage_ + size_; }

 private:
  void release() noexcept {
    for (std::size_t i = size_; i > 0; --i) storage_[i - 1].~T();
    size_ = 0;
    if (storage_ != nullptr) {
      ::operator delete(storage_, std::align_val_t{alignof(T)});
      storage_ = nullptr;
      capacity_ = 0;
    }
  }

  T* storage_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace ppfs::sim
