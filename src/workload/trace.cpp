#include "workload/trace.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "hw/machine.hpp"
#include "pfs/client.hpp"
#include "pfs/filesystem.hpp"
#include "sim/event.hpp"
#include "sim/simulation.hpp"
#include "sim/when_all.hpp"
#include "workload/generator.hpp"

namespace ppfs::workload {

namespace {

using pfs::IoMode;
using sim::ByteCount;
using sim::FileOffset;
using sim::SimTime;
using sim::Task;

/// Smallest file covering every access of the trace (pointer semantics
/// simulated per mode; dynamic-claim modes get the sum of all reads).
ByteCount required_file_size(const AccessTrace& t) {
  std::vector<FileOffset> ptr(t.ranks, 0);
  FileOffset max_end = 0;
  ByteCount claim_total = 0;
  for (const TraceOp& op : t.ops) {
    if (op.rank < 0 || op.rank >= t.ranks) {
      throw std::invalid_argument("trace: rank out of range");
    }
    if (op.kind == TraceOp::Kind::kSeek) {
      ptr[op.rank] = op.offset;
      continue;
    }
    claim_total += op.length;
    FileOffset off = ptr[op.rank];
    if (t.mode == IoMode::kRecord) {
      off += static_cast<FileOffset>(op.rank) * op.length;
      ptr[op.rank] += static_cast<FileOffset>(t.ranks) * op.length;
    } else {
      ptr[op.rank] += op.length;
    }
    max_end = std::max<FileOffset>(max_end, off + op.length);
  }
  if (t.mode == IoMode::kLog || t.mode == IoMode::kSync) {
    max_end = std::max<FileOffset>(max_end, claim_total);
  }
  return max_end;
}

bool offsets_are_static(IoMode mode) {
  return mode == IoMode::kRecord || mode == IoMode::kUnix || mode == IoMode::kAsync ||
         mode == IoMode::kGlobal;
}

}  // namespace

std::string AccessTrace::serialize() const {
  std::ostringstream out;
  out << "# ppfs-trace v1\n";
  out << "mode " << pfs::to_string(mode) << "\n";
  out << "ranks " << ranks << "\n";
  for (const TraceOp& op : ops) {
    if (op.kind == TraceOp::Kind::kSeek) {
      out << op.rank << " seek " << op.offset << "\n";
    } else {
      out << op.rank << " read " << op.length << " " << op.think << "\n";
    }
  }
  return out.str();
}

AccessTrace AccessTrace::parse(const std::string& text) {
  AccessTrace t;
  std::istringstream in(text);
  std::string line;
  bool saw_mode = false, saw_ranks = false;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string first;
    ls >> first;
    const auto fail = [&](const std::string& why) {
      throw std::invalid_argument("trace line " + std::to_string(lineno) + ": " + why);
    };
    if (first == "mode") {
      std::string m;
      if (!(ls >> m)) fail("missing mode name");
      bool found = false;
      for (auto mm : pfs::all_io_modes()) {
        if (m == pfs::to_string(mm)) {
          t.mode = mm;
          found = true;
        }
      }
      if (!found) fail("unknown mode " + m);
      saw_mode = true;
    } else if (first == "ranks") {
      if (!(ls >> t.ranks) || t.ranks <= 0) fail("bad rank count");
      saw_ranks = true;
    } else {
      TraceOp op;
      try {
        op.rank = std::stoi(first);
      } catch (const std::exception&) {
        fail("expected rank number, got '" + first + "'");
      }
      std::string verb;
      if (!(ls >> verb)) fail("missing op verb");
      if (verb == "read") {
        op.kind = TraceOp::Kind::kRead;
        if (!(ls >> op.length)) fail("read: missing length");
        if (!(ls >> op.think)) op.think = 0;
        if (op.length == 0) fail("read: zero length");
      } else if (verb == "seek") {
        op.kind = TraceOp::Kind::kSeek;
        if (!(ls >> op.offset)) fail("seek: missing offset");
      } else {
        fail("unknown op '" + verb + "'");
      }
      t.ops.push_back(op);
    }
  }
  if (!saw_mode || !saw_ranks) {
    throw std::invalid_argument("trace: missing 'mode' or 'ranks' header");
  }
  for (const TraceOp& op : t.ops) {
    if (op.rank >= t.ranks) throw std::invalid_argument("trace: rank out of range");
  }
  return t;
}

ByteCount AccessTrace::max_bytes_per_rank() const {
  std::vector<ByteCount> per(ranks, 0);
  for (const TraceOp& op : ops) {
    if (op.kind == TraceOp::Kind::kRead) per[op.rank] += op.length;
  }
  return *std::max_element(per.begin(), per.end());
}

AccessTrace AccessTrace::sequential(IoMode mode, int ranks, int reads_per_rank,
                                    ByteCount len, SimTime think) {
  AccessTrace t;
  t.mode = mode;
  t.ranks = ranks;
  for (int k = 0; k < reads_per_rank; ++k) {
    for (int r = 0; r < ranks; ++r) {
      t.ops.push_back(TraceOp{r, TraceOp::Kind::kRead, len, 0, think});
    }
  }
  return t;
}

AccessTrace AccessTrace::strided(int ranks, int reads_per_rank, ByteCount len,
                                 ByteCount stride, SimTime think) {
  AccessTrace t;
  t.mode = IoMode::kAsync;
  t.ranks = ranks;
  for (int k = 0; k < reads_per_rank; ++k) {
    for (int r = 0; r < ranks; ++r) {
      const FileOffset pos =
          static_cast<FileOffset>(r) * reads_per_rank * stride + static_cast<FileOffset>(k) * stride;
      t.ops.push_back(TraceOp{r, TraceOp::Kind::kSeek, 0, pos, 0});
      t.ops.push_back(TraceOp{r, TraceOp::Kind::kRead, len, 0, think});
    }
  }
  return t;
}

namespace {

struct RankOutcome {
  SimTime start = 0;
  SimTime end = 0;
  ByteCount bytes = 0;
  std::uint64_t reads = 0;
  std::uint64_t verify_failures = 0;
};

Task<void> rank_replay(sim::Simulation& sim, pfs::PfsClient& client,
                       std::vector<TraceOp> my_ops, IoMode mode, sim::Barrier& start_line,
                       bool verify, RankOutcome& out) {
  const int fd = co_await client.open("trace", mode);
  co_await start_line.arrive_and_wait();
  out.start = sim.now();
  out.end = sim.now();
  std::vector<std::byte> buf;
  for (const TraceOp& op : my_ops) {
    if (op.kind == TraceOp::Kind::kSeek) {
      co_await client.seek(fd, op.offset);
      continue;
    }
    buf.resize(op.length);
    const FileOffset expect = mode == IoMode::kRecord
                                  ? client.tell(fd) +
                                        static_cast<FileOffset>(client.rank()) * op.length
                                  : client.tell(fd);
    const ByteCount got = co_await client.read(fd, buf);
    out.bytes += got;
    ++out.reads;
    out.end = sim.now();
    if (verify && got > 0 && offsets_are_static(mode) && mode != IoMode::kGlobal) {
      if (find_pattern_mismatch(1, expect,
                                std::span<const std::byte>(buf).subspan(0, got)) !=
          kNoMismatch) {
        ++out.verify_failures;
      }
    }
    if (op.think > 0) co_await sim.delay(op.think);
  }
  client.close(fd);
}

}  // namespace

TraceReplayResult replay_trace(const MachineSpec& mspec, const AccessTrace& trace,
                               bool prefetch_on, prefetch::PrefetchConfig prefetch_cfg,
                               bool verify) {
  if (trace.ranks > mspec.ncompute) {
    throw std::invalid_argument("replay_trace: trace has more ranks than compute nodes");
  }
  const ByteCount file_size = required_file_size(trace);
  if (file_size == 0) throw std::invalid_argument("replay_trace: empty trace");

  sim::Simulation sim;
  hw::MachineConfig mcfg = hw::MachineConfig::paragon(mspec.ncompute, mspec.nio, mspec.raid);
  mcfg.compute_cpu = mspec.compute_cpu;
  mcfg.io_cpu = mspec.io_cpu;
  hw::Machine machine(sim, mcfg);
  pfs::PfsFileSystem fs(machine, mspec.pfs);
  fs.create("trace", fs.default_attrs());

  std::vector<std::unique_ptr<pfs::PfsClient>> clients;
  std::vector<std::unique_ptr<prefetch::PrefetchEngine>> engines;
  for (int r = 0; r < trace.ranks; ++r) {
    clients.push_back(std::make_unique<pfs::PfsClient>(fs, r, r, trace.ranks));
    if (prefetch_on) {
      engines.push_back(prefetch::attach_prefetcher(*clients[r], prefetch_cfg));
    }
  }

  // Populate with the pattern (tag 1).
  {
    bool done = false;
    // ppfs-lint: allow(ref-across-await) referents are locals; sim.run() below blocks until done
    sim.spawn([](pfs::PfsClient& c, ByteCount size, bool& flag) -> Task<void> {
      const int fd = co_await c.open("trace", IoMode::kAsync);
      std::vector<std::byte> chunk(std::min<ByteCount>(size, 1024 * 1024));
      for (ByteCount off = 0; off < size; off += chunk.size()) {
        const ByteCount n = std::min<ByteCount>(chunk.size(), size - off);
        fill_pattern(1, off, std::span(chunk).subspan(0, n));
        co_await c.write(fd, std::span<const std::byte>(chunk).subspan(0, n));
      }
      c.close(fd);
      flag = true;
    }(*clients[0], file_size, done));
    sim.run();
    if (!done) throw std::runtime_error("replay_trace: population deadlocked");
  }

  std::vector<SimTime> base_read_time(trace.ranks);
  for (int r = 0; r < trace.ranks; ++r) base_read_time[r] = clients[r]->stats().read_time;

  // Split ops per rank, preserving order.
  std::vector<std::vector<TraceOp>> per_rank(trace.ranks);
  for (const TraceOp& op : trace.ops) per_rank[op.rank].push_back(op);

  sim::Barrier start_line(sim, trace.ranks);
  std::vector<RankOutcome> outcomes(trace.ranks);
  for (int r = 0; r < trace.ranks; ++r) {
    sim.spawn(rank_replay(sim, *clients[r], per_rank[r], trace.mode, start_line, verify,
                          outcomes[r]));
  }
  sim.run();

  TraceReplayResult res;
  SimTime t0 = sim::kTimeInfinity, t1 = 0;
  for (int r = 0; r < trace.ranks; ++r) {
    res.total_bytes += outcomes[r].bytes;
    res.reads += outcomes[r].reads;
    res.verify_failures += outcomes[r].verify_failures;
    t0 = std::min(t0, outcomes[r].start);
    t1 = std::max(t1, outcomes[r].end);
    res.max_node_read_time = std::max(
        res.max_node_read_time, clients[r]->stats().read_time - base_read_time[r]);
    if (prefetch_on) {
      const auto& st = engines[r]->stats();
      res.prefetch.issued += st.issued;
      res.prefetch.hits_ready += st.hits_ready;
      res.prefetch.hits_in_flight += st.hits_in_flight;
      res.prefetch.misses += st.misses;
      res.prefetch.stale_discarded += st.stale_discarded;
      res.prefetch.wasted += st.wasted;
      res.prefetch.throttled_skips += st.throttled_skips;
      res.prefetch.bytes_prefetched += st.bytes_prefetched;
      res.prefetch.bytes_served += st.bytes_served;
      res.prefetch.wait_time += st.wait_time;
    }
  }
  res.wall_elapsed = t1 - t0;
  res.observed_read_bw_mbs =
      sim::megabytes_per_second(res.total_bytes, res.max_node_read_time);
  return res;
}

}  // namespace ppfs::workload
