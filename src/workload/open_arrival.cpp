#include "workload/open_arrival.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/error.hpp"
#include "pfs/client.hpp"
#include "pfs/filesystem.hpp"
#include "sim/frame_arena.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "sim/when_all.hpp"

namespace ppfs::workload {

namespace {

using pfs::IoMode;
using sim::SimTime;
using sim::Task;

/// Write `size` zero bytes into an existing PFS file in 1 MB chunks.
/// Open-arrival reads never verify contents, so the populate phase only
/// needs to allocate blocks and exercise the write path — no pattern fill.
Task<void> populate_zeros(pfs::PfsClient& loader, std::string name, ByteCount size) {
  const int fd = co_await loader.open(name, IoMode::kAsync);
  const ByteCount chunk = std::min<ByteCount>(size, 1024 * 1024);
  std::vector<std::byte> buf(chunk);
  for (ByteCount off = 0; off < size; off += chunk) {
    const ByteCount n = std::min<ByteCount>(chunk, size - off);
    co_await loader.write(fd, std::span<const std::byte>(buf).subspan(0, n));
  }
  loader.close(fd);
}

struct ClientOutcome {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t app_errors = 0;
  ByteCount bytes = 0;
  std::uint64_t writes_completed = 0;
  ByteCount bytes_written = 0;
  SimTime first_arrival = sim::kTimeInfinity;
  SimTime last_completion = 0;
  std::uint64_t backlogged = 0;
  SimTime backlog_time = 0;
  sim::StreamingQuantiles latencies;
};

/// One client: Poisson arrivals on an independent clock, FIFO service.
/// `arrival` advances by exponential gaps regardless of completions — when
/// the previous request is still in flight the new one is queued (counted
/// as backlog) and its latency is measured from *arrival*, not from
/// service start. That is the open-system latency a user would see.
Task<void> client_proc(const OpenArrivalSpec& spec, pfs::PfsClient& client,
                       std::string file, ByteCount file_blocks, sim::Rng rng,
                       std::span<std::byte> scratch, ClientOutcome& out) {
  sim::Simulation& sim = client.machine().simulation();
  const int fd = co_await client.open(file, IoMode::kAsync);

  // The arrival clock is anchored at the read-phase start (now, after the
  // populate phase advanced the simulation), not at t=0 — otherwise every
  // arrival would look late and backlog would measure the populate time.
  SimTime arrival = sim.now();
  for (std::uint64_t k = 0; k < spec.requests_per_client; ++k) {
    arrival += rng.exponential(spec.mean_interarrival);
    const FileOffset off =
        static_cast<FileOffset>(rng.uniform_int(0, file_blocks - 1)) * spec.request_size;
    const SimTime now = sim.now();
    if (now < arrival) {
      co_await sim.delay(arrival - now);
    } else {
      // The client was still busy when this request arrived: open-system
      // backlog. Service starts immediately; the lag is the queueing delay.
      ++out.backlogged;
      out.backlog_time += now - arrival;
    }
    ++out.issued;
    out.first_arrival = std::min(out.first_arrival, arrival);
    // Short-circuit keeps the read-only stream untouched: with
    // write_fraction == 0 no extra uniform01() draw happens, so existing
    // read-only digests are bit-identical.
    const bool is_write =
        spec.write_fraction > 0 && rng.uniform01() < spec.write_fraction;
    ByteCount got = 0;
    bool failed = false;
    try {
      co_await client.seek(fd, off);
      if (is_write) {
        co_await client.write(
            fd, std::span<const std::byte>(scratch).subspan(0, spec.request_size));
        got = spec.request_size;
      } else {
        got = co_await client.read(fd, scratch.subspan(0, spec.request_size));
      }
    } catch (const fault::FaultError&) {
      failed = true;
    }
    const SimTime done = sim.now();
    out.latencies.add(done - arrival);
    out.last_completion = std::max(out.last_completion, done);
    if (failed) {
      ++out.app_errors;
    } else if (is_write) {
      ++out.completed;
      ++out.writes_completed;
      out.bytes_written += got;
    } else {
      ++out.completed;
      out.bytes += got;
    }
  }
  if (spec.write_fraction > 0) co_await client.fsync(fd);
  client.close(fd);
}

}  // namespace

OpenArrivalResult run_open_arrival(const MachineSpec& machine,
                                   const OpenArrivalSpec& spec) {
  if (spec.tenants < 1) throw std::invalid_argument("open-arrival: tenants < 1");
  if (spec.request_size == 0) throw std::invalid_argument("open-arrival: zero request size");
  if (spec.tenant_file_size < spec.request_size) {
    throw std::invalid_argument("open-arrival: tenant file smaller than one request");
  }
  if (!(spec.mean_interarrival > 0)) {
    throw std::invalid_argument("open-arrival: mean interarrival must be > 0");
  }
  const int N = machine.ncompute;
  const ByteCount file_blocks = spec.tenant_file_size / spec.request_size;
  const ByteCount file_size = file_blocks * spec.request_size;

  sim::Simulation sim;
  hw::MachineConfig mcfg =
      hw::MachineConfig::paragon_scaled(machine.ncompute, machine.nio, machine.raid);
  mcfg.compute_cpu = machine.compute_cpu;
  mcfg.io_cpu = machine.io_cpu;
  mcfg.mesh.mtu = machine.mesh_mtu;
  hw::Machine hw(sim, mcfg);
  pfs::PfsFileSystem fs(hw, machine.pfs);

  for (int t = 0; t < spec.tenants; ++t) {
    fs.create("tenant" + std::to_string(t));
  }

  std::vector<std::unique_ptr<pfs::PfsClient>> clients;
  clients.reserve(static_cast<std::size_t>(N));
  for (int r = 0; r < N; ++r) {
    clients.push_back(std::make_unique<pfs::PfsClient>(fs, r, r, N));
  }
  std::vector<std::unique_ptr<prefetch::PrefetchEngine>> engines(
      static_cast<std::size_t>(N));
  if (spec.prefetch) {
    for (int r = 0; r < N; ++r) {
      engines[r] = prefetch::attach_prefetcher(*clients[r], spec.prefetch_cfg);
    }
  }

  // --- populate tenant files (simulated time here is not measured) ---
  {
    std::vector<Task<void>> loads;
    for (int t = 0; t < spec.tenants; ++t) {
      // Spread loaders across clients so population parallelizes.
      loads.push_back(populate_zeros(*clients[t % N], "tenant" + std::to_string(t),
                                     file_size));
    }
    bool done = false;
    // ppfs-lint: allow(ref-across-await) flag is a local; sim.run() below blocks until done
    sim.spawn([](sim::Simulation& s, std::vector<Task<void>> ts, bool& flag) -> Task<void> {
      co_await sim::when_all(s, std::move(ts));
      flag = true;
    }(sim, std::move(loads), done));
    sim.run();
    if (!done) throw std::runtime_error("open-arrival: population deadlocked");
  }

  // --- assign tenants and per-client random streams (serial, so the
  // assignment is identical however the surrounding sweep is sharded) ---
  sim::Rng master(spec.seed);
  const auto cdf = sim::Rng::make_zipf_cdf(static_cast<std::size_t>(spec.tenants),
                                           spec.tenant_skew);
  std::vector<int> tenant_of(static_cast<std::size_t>(N));
  std::vector<sim::Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(N));
  for (int r = 0; r < N; ++r) {
    // zipf() ranks from 1 (most popular); tenant files are 0-indexed.
    tenant_of[static_cast<std::size_t>(r)] = static_cast<int>(master.zipf(cdf)) - 1;
    rngs.push_back(master.split());
  }

  // One scratch buffer for every reader: contents are never inspected, and
  // N per-client buffers at production scale would dwarf the kernel state
  // this workload exists to measure.
  std::vector<std::byte> scratch(spec.request_size);

  // --- open-arrival read phase ---
  std::vector<ClientOutcome> outcomes(static_cast<std::size_t>(N));
  for (int r = 0; r < N; ++r) {
    const auto i = static_cast<std::size_t>(r);
    sim.spawn(client_proc(spec, *clients[i], "tenant" + std::to_string(tenant_of[i]),
                          file_blocks, rngs[i], std::span(scratch), outcomes[i]));
  }
  sim.run();

  // --- collect ---
  OpenArrivalResult res;
  res.spec = spec;
  res.ncompute = machine.ncompute;
  res.nio = machine.nio;
  SimTime t0 = sim::kTimeInfinity, t1 = 0;
  for (const auto& o : outcomes) {
    if (o.issued != spec.requests_per_client) {
      throw std::runtime_error("open-arrival: a client did not finish (deadlock?)");
    }
    res.issued += o.issued;
    res.completed += o.completed;
    res.app_errors += o.app_errors;
    res.total_bytes += o.bytes;
    res.writes_completed += o.writes_completed;
    res.bytes_written += o.bytes_written;
    res.backlogged += o.backlogged;
    res.backlog_time += o.backlog_time;
    res.latencies.merge(o.latencies);
    t0 = std::min(t0, o.first_arrival);
    t1 = std::max(t1, o.last_completion);
  }
  for (const auto& c : clients) {
    res.token_rpcs += c->rpc_stats().token_rpcs;
    const auto& ts = c->token_stats();
    res.token_local_grants += ts.local_grants;
    res.token_revocations += ts.revocations;
    res.token_invalidations += ts.invalidations;
    res.wb_writes += ts.wb_writes;
    res.wb_read_hits += ts.wb_read_hits;
    res.wb_flush_ops += ts.flush_ops;
    res.wb_flushed_bytes += ts.flushed_bytes;
    res.wb_revocation_flushes += ts.revocation_flushes;
    res.wb_fsync_flushes += ts.fsync_flushes;
    res.wb_capacity_evictions += ts.capacity_evictions;
    res.wb_peak_dirty_bytes = std::max(res.wb_peak_dirty_bytes, ts.peak_dirty_bytes);
  }
  res.token_grants = fs.tokens().stats().grants;
  res.token_splits = fs.tokens().stats().splits;
  if (auto* a = sim.auditor()) {
    a->check_token_conservation(sim.now(), fs.tokens().write_granted_bytes());
  }
  res.sim_elapsed = t1 > t0 ? t1 - t0 : 0;
  res.wall_bw_mbs = sim::megabytes_per_second(res.total_bytes, res.sim_elapsed);
  res.digest = sim.digest();
  res.events_dispatched = sim.events_dispatched();
  res.peak_pending_events = sim.peak_pending_events();
  res.event_queue_bytes = sim.event_queue_bytes();
  res.frame_arena_bytes = sim::FrameArena::local().stats().cached_bytes;
  res.machine_state_bytes = hw.state_memory_bytes();
  res.bytes_per_event =
      res.events_dispatched
          ? static_cast<double>(res.event_queue_bytes + res.frame_arena_bytes) /
                static_cast<double>(res.events_dispatched)
          : 0.0;
  return res;
}

}  // namespace ppfs::workload
