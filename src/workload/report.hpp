// Text-table rendering for the benchmark harnesses — the benches print
// rows shaped like the paper's tables and figure series.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace ppfs::workload {

/// Right-aligned fixed-width text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Horizontal rule before the next row.
  void add_rule();

  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row = rule
};

/// "64KB", "1MB", "8MB" — the paper's size notation (binary units).
std::string fmt_bytes(sim::ByteCount bytes);
/// Fixed-precision double; "n/a" for NaN/inf (e.g. 0/0 on a zero-op run).
std::string fmt_double(double v, int precision = 2);
/// Seconds with ms precision, e.g. "0.412s".
std::string fmt_time(sim::SimTime t);
/// Percentage, e.g. "87.5%"; a non-finite fraction prints "0.0%".
std::string fmt_percent(double fraction);

/// Busiest mesh links as "link 12 0.412s, link 3 0.380s" (busiest first,
/// as returned by MeshNetwork::top_busy_links); "none" when empty.
std::string fmt_link_busy(const std::vector<std::pair<int, sim::SimTime>>& top);

}  // namespace ppfs::workload
