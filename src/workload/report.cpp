#include "workload/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace ppfs::workload {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: cell count does not match header count");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::add_rule() { rows_.emplace_back(); }

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c ? "  " : "") << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    out << "\n";
  };
  auto emit_rule = [&] {
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
    out << std::string(total, '-') << "\n";
  };
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule();
    } else {
      emit_row(row);
    }
  }
  return out.str();
}

std::string fmt_bytes(sim::ByteCount bytes) {
  const sim::ByteCount kb = 1024, mb = 1024 * 1024, gb = 1024ull * 1024 * 1024;
  std::ostringstream out;
  if (bytes >= gb && bytes % gb == 0) {
    out << bytes / gb << "GB";
  } else if (bytes >= mb && bytes % mb == 0) {
    out << bytes / mb << "MB";
  } else if (bytes >= kb && bytes % kb == 0) {
    out << bytes / kb << "KB";
  } else {
    out << bytes << "B";
  }
  return out.str();
}

std::string fmt_double(double v, int precision) {
  // Zero-op experiments divide 0/0: a NaN (or an infinity from an elapsed
  // time of 0) would render as "nan"/"inf" mid-table. Print "n/a" instead.
  if (!std::isfinite(v)) return "n/a";
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string fmt_time(sim::SimTime t) { return fmt_double(t, 3) + "s"; }

std::string fmt_percent(double fraction) {
  // A ratio over zero operations is "nothing happened", not "nan%".
  if (!std::isfinite(fraction)) return "0.0%";
  return fmt_double(fraction * 100.0, 1) + "%";
}

std::string fmt_link_busy(const std::vector<std::pair<int, sim::SimTime>>& top) {
  if (top.empty()) return "none";
  std::ostringstream out;
  for (std::size_t i = 0; i < top.size(); ++i) {
    out << (i ? ", " : "") << "link " << top[i].first << " " << fmt_time(top[i].second);
  }
  return out.str();
}

}  // namespace ppfs::workload
