#include "workload/write_workload.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/error.hpp"
#include "fault/injector.hpp"
#include "pfs/client.hpp"
#include "pfs/filesystem.hpp"
#include "sim/event.hpp"
#include "sim/frame_arena.hpp"
#include "sim/simulation.hpp"
#include "workload/generator.hpp"

namespace ppfs::workload {

namespace {

using pfs::IoMode;
using sim::SimTime;
using sim::Task;

// Per-writer pattern tags: record contents name their writer, so the
// conflicting read-back can prove a record is uniformly ONE writer's bytes
// (sequential consistency — never an interleaving of two writers).
constexpr std::uint64_t kCkptTagBase = 2000;
// Producer/consumer rounds are tag-stamped so a consumer that reads a stale
// (unflushed) round fails verification byte-for-byte.
constexpr std::uint64_t kStreamTagBase = 3000;

struct WriterOutcome {
  SimTime start = 0;
  SimTime end = 0;
  std::uint64_t writes = 0;
  ByteCount bytes_written = 0;
  std::uint64_t reads = 0;
  ByteCount bytes_read = 0;
  std::uint64_t verify_failures = 0;
  std::uint64_t app_errors = 0;
  sim::StreamingQuantiles write_latencies;
};

/// One checkpoint writer: write the round's record (own slot, or the shared
/// record when conflicting), optionally fsync, barrier, then cross-read the
/// next peer's record and verify every byte came from exactly one writer.
Task<void> checkpoint_proc(const WriteWorkloadSpec& spec, pfs::PfsClient& client,
                           sim::Barrier& round_line, WriterOutcome& out, int c) {
  sim::Simulation& sim = client.machine().simulation();
  const int W = spec.writers;
  const int fd = co_await client.open("ckpt", IoMode::kAsync);
  std::vector<std::byte> buf(spec.request_size);
  co_await round_line.arrive_and_wait();
  out.start = sim.now();

  for (std::uint64_t r = 0; r < spec.rounds; ++r) {
    const std::uint64_t rec =
        spec.conflicting ? r : r * static_cast<std::uint64_t>(W) + static_cast<std::uint64_t>(c);
    const FileOffset off = rec * spec.request_size;
    fill_pattern(kCkptTagBase + static_cast<std::uint64_t>(c), off, buf);
    const SimTime t0 = sim.now();
    bool failed = false;
    try {
      co_await client.seek(fd, off);
      co_await client.write(fd, buf);
      if (spec.fsync_each_round) co_await client.fsync(fd);
    } catch (const fault::FaultError&) {
      failed = true;
    }
    out.write_latencies.add(sim.now() - t0);
    ++out.writes;
    out.bytes_written += spec.request_size;
    if (failed) ++out.app_errors;

    // Everyone's round-r write (and fsync) has settled past this line.
    co_await round_line.arrive_and_wait();

    if (spec.verify) {
      const int peer = (c + 1) % W;
      const std::uint64_t prec =
          spec.conflicting
              ? r
              : r * static_cast<std::uint64_t>(W) + static_cast<std::uint64_t>(peer);
      const FileOffset poff = prec * spec.request_size;
      bool read_failed = false;
      ByteCount got = 0;
      try {
        co_await client.seek(fd, poff);
        got = co_await client.read(fd, buf);
      } catch (const fault::FaultError&) {
        read_failed = true;
      }
      ++out.reads;
      out.bytes_read += got;
      if (read_failed) {
        ++out.app_errors;
      } else {
        bool ok = got == spec.request_size;
        if (ok && spec.conflicting) {
          // The record must be uniformly ONE writer's bytes — any single
          // tag matching end-to-end proves no interleaving survived.
          ok = false;
          for (int w = 0; w < W && !ok; ++w) {
            ok = find_pattern_mismatch(kCkptTagBase + static_cast<std::uint64_t>(w), poff,
                                       std::span<const std::byte>(buf)) == kNoMismatch;
          }
        } else if (ok) {
          ok = find_pattern_mismatch(kCkptTagBase + static_cast<std::uint64_t>(peer), poff,
                                     std::span<const std::byte>(buf).subspan(0, got)) ==
               kNoMismatch;
        }
        if (!ok) ++out.verify_failures;
      }
    }
    out.end = sim.now();

    // Reads of round r finish before round r+1 may overwrite (conflicting
    // mode reuses offsets round-over-round).
    co_await round_line.arrive_and_wait();
    if (spec.compute_delay > 0 && r + 1 < spec.rounds) {
      co_await sim.delay(spec.compute_delay);
    }
  }
  // Leave nothing dirty behind: the final fsync also puts every record on
  // the servers for post-run audits.
  co_await client.fsync(fd);
  out.end = sim.now();
  client.close(fd);
}

/// Producer: writes the round's record and NEVER fsyncs — the data leaves
/// its write-back cache only through the consumers' revocations.
Task<void> producer_proc(const WriteWorkloadSpec& spec, pfs::PfsClient& client,
                         sim::Barrier& round_line, WriterOutcome& out) {
  sim::Simulation& sim = client.machine().simulation();
  const int fd = co_await client.open("stream", IoMode::kAsync);
  std::vector<std::byte> buf(spec.request_size);
  co_await round_line.arrive_and_wait();
  out.start = sim.now();

  for (std::uint64_t r = 0; r < spec.rounds; ++r) {
    const FileOffset off = r * spec.request_size;
    fill_pattern(kStreamTagBase + r, off, buf);
    const SimTime t0 = sim.now();
    bool failed = false;
    try {
      co_await client.seek(fd, off);
      co_await client.write(fd, buf);
    } catch (const fault::FaultError&) {
      failed = true;
    }
    out.write_latencies.add(sim.now() - t0);
    ++out.writes;
    out.bytes_written += spec.request_size;
    if (failed) ++out.app_errors;
    out.end = sim.now();

    co_await round_line.arrive_and_wait();  // record r produced
    co_await round_line.arrive_and_wait();  // record r consumed
    if (spec.compute_delay > 0 && r + 1 < spec.rounds) {
      co_await sim.delay(spec.compute_delay);
    }
  }
  co_await client.fsync(fd);
  out.end = sim.now();
  client.close(fd);
}

/// Consumer: after the produce barrier, reads the round's record. Its read-
/// token acquisition is what revokes the producer's write token and forces
/// the flush — byte-exact verification proves flush-before-ack coherence.
Task<void> consumer_proc(const WriteWorkloadSpec& spec, pfs::PfsClient& client,
                         sim::Barrier& round_line, WriterOutcome& out) {
  sim::Simulation& sim = client.machine().simulation();
  const int fd = co_await client.open("stream", IoMode::kAsync);
  std::vector<std::byte> buf(spec.request_size);
  co_await round_line.arrive_and_wait();
  out.start = sim.now();

  for (std::uint64_t r = 0; r < spec.rounds; ++r) {
    co_await round_line.arrive_and_wait();  // wait for record r
    const FileOffset off = r * spec.request_size;
    bool failed = false;
    ByteCount got = 0;
    try {
      co_await client.seek(fd, off);
      got = co_await client.read(fd, buf);
    } catch (const fault::FaultError&) {
      failed = true;
    }
    ++out.reads;
    out.bytes_read += got;
    if (failed) {
      ++out.app_errors;
    } else if (spec.verify) {
      const bool ok = got == spec.request_size &&
                      find_pattern_mismatch(kStreamTagBase + r, off,
                                            std::span<const std::byte>(buf)) == kNoMismatch;
      if (!ok) ++out.verify_failures;
    }
    out.end = sim.now();
    co_await round_line.arrive_and_wait();  // record r consumed
    if (spec.compute_delay > 0 && r + 1 < spec.rounds) {
      co_await sim.delay(spec.compute_delay);
    }
  }
  client.close(fd);
}

ExperimentResult run_rounds(const WriteWorkloadSpec& spec) {
  const int W = spec.writers;
  const MachineSpec& m = spec.machine;
  if (W > m.ncompute) {
    throw std::invalid_argument("write-workload: writers exceed compute nodes");
  }
  if (spec.kind == WriteWorkloadKind::kProducerConsumer && W < 2) {
    throw std::invalid_argument("write-workload: producer-consumer needs >= 2 clients");
  }

  sim::Simulation sim;
  hw::MachineConfig mcfg = hw::MachineConfig::paragon(m.ncompute, m.nio, m.raid);
  mcfg.compute_cpu = m.compute_cpu;
  mcfg.io_cpu = m.io_cpu;
  mcfg.mesh.mtu = m.mesh_mtu;
  hw::Machine machine(sim, mcfg);
  pfs::PfsParams params = m.pfs;
  params.write_tokens = true;  // the whole point of these workloads
  pfs::PfsFileSystem fs(machine, params);
  fs.create(spec.kind == WriteWorkloadKind::kCheckpoint ? "ckpt" : "stream");

  std::vector<std::unique_ptr<pfs::PfsClient>> clients;
  clients.reserve(static_cast<std::size_t>(W));
  for (int c = 0; c < W; ++c) {
    clients.push_back(std::make_unique<pfs::PfsClient>(fs, c, c, W));
  }

  fault::FaultInjector injector(machine, fs);
  if (!spec.faults.empty()) injector.arm(spec.faults, sim.now());

  sim::Barrier round_line(sim, static_cast<std::size_t>(W));
  std::vector<WriterOutcome> outcomes(static_cast<std::size_t>(W));
  for (int c = 0; c < W; ++c) {
    const auto i = static_cast<std::size_t>(c);
    if (spec.kind == WriteWorkloadKind::kCheckpoint) {
      sim.spawn(checkpoint_proc(spec, *clients[i], round_line, outcomes[i], c));
    } else if (c == 0) {
      sim.spawn(producer_proc(spec, *clients[i], round_line, outcomes[i]));
    } else {
      sim.spawn(consumer_proc(spec, *clients[i], round_line, outcomes[i]));
    }
  }
  sim.run();

  ExperimentResult res;
  res.spec.name = to_string(spec.kind);
  res.spec.mode = IoMode::kAsync;
  res.spec.request_size = spec.request_size;
  res.spec.compute_delay = spec.compute_delay;
  res.spec.verify = spec.verify;
  res.spec.faults = spec.faults;
  SimTime t0 = sim::kTimeInfinity, t1 = 0;
  for (int c = 0; c < W; ++c) {
    const auto& o = outcomes[static_cast<std::size_t>(c)];
    const std::uint64_t expected =
        (spec.kind == WriteWorkloadKind::kCheckpoint || c == 0) ? spec.rounds : 0;
    if (o.writes != expected ||
        (spec.kind == WriteWorkloadKind::kProducerConsumer && c > 0 &&
         o.reads != spec.rounds)) {
      throw std::runtime_error("write-workload: client " + std::to_string(c) +
                               " did not finish its rounds (deadlock?)");
    }
    res.reads += o.reads;
    res.total_bytes += o.bytes_read;
    res.verify_failures += o.verify_failures;
    res.faults.app_errors += o.app_errors;
    res.read_latencies.merge(o.write_latencies);
    t0 = std::min(t0, o.start);
    t1 = std::max(t1, o.end);
    const SimTime wt = clients[static_cast<std::size_t>(c)]->stats().write_time;
    res.node_read_time.push_back(wt);
    const auto& rpc = clients[static_cast<std::size_t>(c)]->rpc_stats();
    res.data_rpcs += rpc.data_rpcs;
    res.metadata_rpcs += rpc.metadata_rpcs;
    res.pointer_rpcs += rpc.pointer_rpcs;
    res.coalesced_rpcs += rpc.coalesced_rpcs;
    res.coalesced_extents += rpc.coalesced_extents;
    res.stripe_map_refreshes += rpc.stripe_map_refreshes;
    res.faults.rpc_retries += rpc.retries;
    res.faults.rpc_down_waits += rpc.down_waits;
    res.faults.rpc_timeouts += rpc.timeouts;
    res.faults.terminal_errors += rpc.terminal_errors;
    res.faults.backoff_time += rpc.backoff_time;
    res.faults.recovery_wait_time += rpc.recovery_wait_time;
    accumulate_token_stats(res, *clients[static_cast<std::size_t>(c)]);
  }
  res.faults.injected_events = static_cast<std::uint64_t>(injector.injected());
  res.token_grants = fs.tokens().stats().grants;
  res.token_splits = fs.tokens().stats().splits;
  res.wall_elapsed = t1 > t0 ? t1 - t0 : 0;
  res.observed_write_bw_mbs =
      sim::megabytes_per_second(res.bytes_written, res.max_node_write_time);
  res.wall_bw_mbs = sim::megabytes_per_second(res.bytes_written, res.wall_elapsed);
  res.mesh_segmented_messages = machine.mesh().segmented_messages();
  res.mesh_segments = machine.mesh().segments_sent();
  res.top_links = machine.mesh().top_busy_links(5);
  if (auto* a = sim.auditor()) {
    a->check_token_conservation(sim.now(), fs.tokens().write_granted_bytes());
  }
  res.digest = sim.digest();
  res.events_dispatched = sim.events_dispatched();
  res.peak_pending_events = sim.peak_pending_events();
  res.event_queue_bytes = sim.event_queue_bytes();
  res.frame_arena_bytes = sim::FrameArena::local().stats().cached_bytes;
  res.bytes_per_event =
      res.events_dispatched
          ? static_cast<double>(res.event_queue_bytes + res.frame_arena_bytes) /
                static_cast<double>(res.events_dispatched)
          : 0.0;
  return res;
}

ExperimentResult run_mixed(const WriteWorkloadSpec& spec) {
  MachineSpec m = spec.machine;
  m.pfs.write_tokens = true;
  OpenArrivalSpec oa;
  oa.tenants = spec.tenants;
  oa.requests_per_client = spec.requests_per_client;
  oa.request_size = spec.request_size;
  oa.seed = spec.seed;
  oa.write_fraction = spec.write_fraction;
  const OpenArrivalResult r = run_open_arrival(m, oa);

  ExperimentResult res;
  res.spec.name = to_string(spec.kind);
  res.spec.mode = IoMode::kAsync;
  res.spec.request_size = spec.request_size;
  res.reads = r.completed - r.writes_completed;
  res.total_bytes = r.total_bytes;
  res.writes = r.writes_completed;
  res.bytes_written = r.bytes_written;
  res.faults.app_errors = r.app_errors;
  res.wall_elapsed = r.sim_elapsed;
  res.wall_bw_mbs = r.wall_bw_mbs;
  res.read_latencies = r.latencies;
  res.token_rpcs = r.token_rpcs;
  res.token_local_grants = r.token_local_grants;
  res.token_grants = r.token_grants;
  res.token_revocations = r.token_revocations;
  res.token_splits = r.token_splits;
  res.token_invalidations = r.token_invalidations;
  res.wb_writes = r.wb_writes;
  res.wb_read_hits = r.wb_read_hits;
  res.wb_flush_ops = r.wb_flush_ops;
  res.wb_flushed_bytes = r.wb_flushed_bytes;
  res.wb_revocation_flushes = r.wb_revocation_flushes;
  res.wb_fsync_flushes = r.wb_fsync_flushes;
  res.wb_capacity_evictions = r.wb_capacity_evictions;
  res.wb_peak_dirty_bytes = r.wb_peak_dirty_bytes;
  res.digest = r.digest;
  res.events_dispatched = r.events_dispatched;
  res.peak_pending_events = r.peak_pending_events;
  res.event_queue_bytes = r.event_queue_bytes;
  res.frame_arena_bytes = r.frame_arena_bytes;
  res.bytes_per_event = r.bytes_per_event;
  return res;
}

}  // namespace

const char* to_string(WriteWorkloadKind k) noexcept {
  switch (k) {
    case WriteWorkloadKind::kCheckpoint: return "checkpoint";
    case WriteWorkloadKind::kProducerConsumer: return "producer-consumer";
    case WriteWorkloadKind::kMixed: return "mixed";
  }
  return "?";
}

ExperimentResult run_write_workload(const WriteWorkloadSpec& spec) {
  if (spec.request_size == 0) {
    throw std::invalid_argument("write-workload: zero request size");
  }
  if (spec.kind == WriteWorkloadKind::kMixed) return run_mixed(spec);
  if (spec.rounds == 0) {
    throw std::invalid_argument("write-workload: zero rounds");
  }
  if (spec.writers < 1) {
    throw std::invalid_argument("write-workload: writers < 1");
  }
  return run_rounds(spec);
}

}  // namespace ppfs::workload
