// Workload specification and deterministic data patterns.
//
// The paper's evaluation uses synthetic workloads: every compute node reads
// a shared file in M_RECORD mode (or its own file for the "Separate Files"
// baseline), with "delays ... introduced between I/O accesses in this
// synthetic workload to simulate the computation phases of a program".
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "fault/plan.hpp"
#include "pfs/io_mode.hpp"
#include "pfs/stripe.hpp"
#include "prefetch/engine.hpp"
#include "sim/types.hpp"

namespace ppfs::workload {

using sim::ByteCount;
using sim::FileOffset;
using sim::SimTime;

/// How the unique-pointer modes (M_UNIX, M_ASYNC) walk the shared file.
/// kInterleaved issues the same record-interleaved pattern as M_RECORD
/// (but by explicit seeks, with no mode machinery) — the apples-to-apples
/// pattern of the paper's Figure 2 comparison. kOwnRegion has node r scan
/// [r*share, (r+1)*share) sequentially, a prefetch-friendly scan.
/// kStrided is a constant-stride sampling scan (node r reads request k at
/// offset (r + k*N*stride)*request — every node visits one record out of
/// each stride-th round, the PVFS noncontiguous "strided" shape). kListIo
/// emulates a vector-of-extents request stream: node r walks frames of
/// `listio_extents` gapped extents inside its own region, the access shape
/// a list-I/O interface would batch. Both defeat the paper's mode-aware
/// one-ahead rule and exist to exercise the strided/list-I/O predictors.
enum class AccessPattern { kInterleaved, kOwnRegion, kStrided, kListIo };

const char* pattern_name(AccessPattern p);

struct WorkloadSpec {
  std::string name = "workload";
  pfs::IoMode mode = pfs::IoMode::kRecord;
  AccessPattern pattern = AccessPattern::kInterleaved;
  /// Per-node read request size.
  ByteCount request_size = 64 * 1024;
  /// Total bytes the application reads (split across the nodes; for
  /// M_GLOBAL each node reads all of it).
  ByteCount file_size = 8 * 1024 * 1024;
  /// Simulated computation between consecutive reads on each node.
  SimTime compute_delay = 0.0;
  /// kStrided: rounds skipped between consecutive reads (>= 1).
  int stride = 4;
  /// kListIo: extents per list-I/O frame (1..8, the predictor's max cycle).
  int listio_extents = 4;
  /// Attach the prefetch engine (the paper's "with prefetching" runs).
  bool prefetch = false;
  prefetch::PrefetchConfig prefetch_cfg{};
  /// Striping override; defaults to the mount default (64 KB across all
  /// I/O nodes).
  std::optional<pfs::StripeAttrs> attrs;
  /// Paper Fig 2's "Separate Files": each node reads a private file.
  bool separate_files = false;
  /// Fast Path (cache-bypassing DMA reads). Disable to route reads through
  /// the I/O-node buffer caches — the configuration where SERVER-side
  /// readahead (UfsParams::readahead_blocks) can act.
  bool use_fastpath = true;
  /// Check every byte read against the written pattern (slower; tests on).
  bool verify = false;
  /// Fault schedule armed at the start of the read phase (event times are
  /// relative to that moment). Empty plan = healthy run.
  fault::FaultPlan faults;
};

/// Deterministic file content so any data path bug is observable: byte at
/// offset `off` of the file tagged `tag` mixes both values.
inline std::byte pattern_byte(std::uint64_t tag, std::uint64_t off) {
  const std::uint64_t x = (tag * 0x9e3779b97f4a7c15ull) ^ (off * 0xbf58476d1ce4e5b9ull);
  return static_cast<std::byte>((x >> 32) & 0xff);
}

void fill_pattern(std::uint64_t tag, FileOffset start, std::span<std::byte> out);

// Offset plans for the noncontiguous patterns; shared by the reader's seek
// targets and the byte-pattern verification so both always agree.

/// Node `rank`'s read k under kStrided: (rank + k*nprocs*stride)*request.
FileOffset strided_offset(const WorkloadSpec& w, int rank, int nprocs, std::uint64_t k);
/// Reads per node under kStrided (the sampling scan visits 1/stride of the
/// file): file_size / (request * nprocs * stride).
std::uint64_t strided_reads_per_node(const WorkloadSpec& w, int nprocs);

/// Bytes one kListIo frame spans: (2*extents + 1) requests (extents are a
/// request wide, separated by request-sized holes, plus a one-request skip
/// to the next frame).
ByteCount listio_frame_bytes(const WorkloadSpec& w);
/// Node `rank`'s read k under kListIo: extent (k % extents) of frame
/// (k / extents) inside the node's own region.
FileOffset listio_offset(const WorkloadSpec& w, int rank, int nprocs, std::uint64_t k);
/// Reads per node under kListIo: whole frames in the region, extents each.
std::uint64_t listio_reads_per_node(const WorkloadSpec& w, int nprocs);

/// Index of the first mismatching byte, or npos when clean.
std::size_t find_pattern_mismatch(std::uint64_t tag, FileOffset start,
                                  std::span<const std::byte> data);
inline constexpr std::size_t kNoMismatch = static_cast<std::size_t>(-1);

}  // namespace ppfs::workload
