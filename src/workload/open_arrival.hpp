// Open-arrival multi-tenant workload: the production-scale counterpart to
// the paper's closed collective loops.
//
// The paper's experiments (Section 4) run closed workloads — every node
// issues its next read the moment the previous one completes, so offered
// load collapses whenever the system slows down. A production file system
// sees the opposite: requests arrive on their own clock (users, batch
// schedulers) whether or not earlier ones finished. Each client here draws
// Poisson interarrival gaps from an independent stream and timestamps every
// request at its *arrival*; when service starts late the lag is accounted
// as backlog instead of silently stretching the arrival process. Tenants
// share the mount: each client is pinned to one of `tenants` files chosen
// by a Zipf draw, so popular tenants contend for the same stripe groups
// while the tail reads cold files — the skewed mix a shared Paragon
// partition actually serves.
//
// Scale discipline: machines are built with MachineConfig::paragon_scaled
// (near-square mesh), all clients share one scratch read buffer (contents
// are never verified), and latencies stream into a fixed-footprint sketch —
// per-run memory stays O(nodes), never O(requests).
#pragma once

#include <cstdint>
#include <string>

#include "sim/stats.hpp"
#include "workload/experiment.hpp"

namespace ppfs::workload {

struct OpenArrivalSpec {
  /// Distinct tenant files sharing the mount (each striped over every I/O
  /// node). Clients pick their tenant once, by a Zipf(s) draw.
  int tenants = 4;
  double tenant_skew = 1.1;
  /// Requests per compute-node client, each `request_size` bytes at a
  /// uniformly random aligned offset within the tenant file.
  std::uint64_t requests_per_client = 32;
  ByteCount request_size = 64 * 1024;
  /// Mean Poisson interarrival gap per client, seconds of simulated time.
  sim::SimTime mean_interarrival = 0.05;
  /// Bytes per tenant file (rounded down to a request multiple).
  ByteCount tenant_file_size = 4 * 1024 * 1024;
  std::uint64_t seed = 1;
  bool prefetch = false;
  prefetch::PrefetchConfig prefetch_cfg{};
  /// TokenWrite mixed tenancy: fraction of requests that are writes (one
  /// uniform draw per request). 0 keeps the workload read-only — and keeps
  /// the per-client random streams, hence the digest, exactly as before.
  /// Writers fsync before closing so every buffered byte lands.
  double write_fraction = 0;
};

struct OpenArrivalResult {
  OpenArrivalSpec spec;
  int ncompute = 0;
  int nio = 0;

  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t app_errors = 0;
  ByteCount total_bytes = 0;
  /// TokenWrite mixed tenancy (all zero when write_fraction == 0).
  std::uint64_t writes_completed = 0;
  ByteCount bytes_written = 0;
  std::uint64_t token_rpcs = 0;
  std::uint64_t token_local_grants = 0;
  std::uint64_t token_grants = 0;
  std::uint64_t token_revocations = 0;
  std::uint64_t token_splits = 0;
  std::uint64_t token_invalidations = 0;
  std::uint64_t wb_writes = 0;
  std::uint64_t wb_read_hits = 0;
  std::uint64_t wb_flush_ops = 0;
  ByteCount wb_flushed_bytes = 0;
  std::uint64_t wb_revocation_flushes = 0;
  std::uint64_t wb_fsync_flushes = 0;
  std::uint64_t wb_capacity_evictions = 0;
  ByteCount wb_peak_dirty_bytes = 0;
  sim::SimTime sim_elapsed = 0;  // first arrival -> last completion
  double wall_bw_mbs = 0;
  /// Arrival-to-completion latency sketch (fixed footprint).
  sim::StreamingQuantiles latencies;
  /// Arrivals that found their client still serving the previous request,
  /// and the summed service-start lag they experienced.
  std::uint64_t backlogged = 0;
  sim::SimTime backlog_time = 0;

  std::uint64_t digest = 0;
  std::uint64_t events_dispatched = 0;
  std::uint64_t peak_pending_events = 0;
  std::uint64_t event_queue_bytes = 0;
  std::uint64_t frame_arena_bytes = 0;
  std::uint64_t machine_state_bytes = 0;  // sharded per-node arenas
  double bytes_per_event = 0;
};

/// Build a paragon_scaled machine from `machine` (its ncompute/nio/raid/pfs
/// knobs), populate the tenant files through the full stack, then run one
/// open-arrival read phase. Deterministic: same spec, same digest.
OpenArrivalResult run_open_arrival(const MachineSpec& machine,
                                   const OpenArrivalSpec& spec);

}  // namespace ppfs::workload
