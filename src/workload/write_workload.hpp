// TokenWrite write workloads: concurrent multi-client write paths with
// byte-range tokens and coherent client write-back caches.
//
// Three shapes, each stressing a different edge of the token protocol:
//
//   kCheckpoint        N writers dump round-stamped records (own slots, or
//                      all the same record with --conflicting), fsync, then
//                      cross-read a peer's record and verify every byte.
//                      Non-conflicting ranges never serialize — this is the
//                      write-scaling configuration the perf gate measures.
//   kProducerConsumer  client 0 writes a round-stamped record and NEVER
//                      fsyncs; a barrier releases the consumers, whose read-
//                      token acquisition revokes the producer's write token
//                      — the flush-before-ack is the only thing that can
//                      make their byte-exact verification pass.
//   kMixed             multi-tenant open-arrival traffic with a write
//                      fraction (rides run_open_arrival), fsync-on-close.
//
// All three force PfsParams::write_tokens on. Deterministic: same spec,
// same digest (ppfs_run --selfcheck works on write workloads too).
#pragma once

#include "workload/experiment.hpp"
#include "workload/open_arrival.hpp"

namespace ppfs::workload {

enum class WriteWorkloadKind { kCheckpoint, kProducerConsumer, kMixed };

const char* to_string(WriteWorkloadKind k) noexcept;

struct WriteWorkloadSpec {
  WriteWorkloadKind kind = WriteWorkloadKind::kCheckpoint;
  MachineSpec machine;
  /// Concurrent clients. kCheckpoint: all write. kProducerConsumer: one
  /// producer + (writers - 1) consumers. kMixed: open-arrival clients come
  /// from machine.ncompute instead.
  int writers = 4;
  ByteCount request_size = 64 * 1024;
  /// Records each writer produces (checkpoint) / handoff rounds (p/c).
  std::uint64_t rounds = 8;
  /// kCheckpoint: every writer targets the SAME record each round, so every
  /// write conflicts and the token manager serializes them via revocation.
  bool conflicting = false;
  /// Byte-exact read-back verification (sequential consistency check).
  bool verify = true;
  /// kCheckpoint: fsync after each round's write (off = rely purely on
  /// revocation flushes, like kProducerConsumer always does).
  bool fsync_each_round = true;
  SimTime compute_delay = 0;
  fault::FaultPlan faults;
  /// kMixed knobs (forwarded into OpenArrivalSpec).
  double write_fraction = 0.5;
  int tenants = 4;
  std::uint64_t requests_per_client = 32;
  std::uint64_t seed = 1;
};

/// Run one write workload on a freshly-built machine; write_tokens is
/// forced on. Returns the standard result record with the token/write
/// block populated (read fields cover the verification reads).
ExperimentResult run_write_workload(const WriteWorkloadSpec& spec);

}  // namespace ppfs::workload
