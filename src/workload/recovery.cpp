#include "workload/recovery.hpp"

#include "pfs/filesystem.hpp"
#include "ufs/ufs.hpp"

namespace ppfs::workload {

std::vector<cache::FsckShard> make_fsck_shards(pfs::PfsFileSystem& fs) {
  std::vector<cache::FsckShard> shards;
  for (int io = 0; io < fs.server_count(); ++io) {
    ufs::Ufs& u = fs.server(io).ufs();
    cache::CacheTier* tier = u.cache_tier();
    if (!tier) continue;
    cache::FsckShard shard;
    shard.tier = tier;
    shard.label = u.name();
    for (const auto& [name, ino] : u.directory()) {
      (void)name;
      const ufs::Inode& node = u.inode_of(ino);
      shard.files.push_back(cache::FsckFileTruth{
          node.ino, node.generation,
          static_cast<std::uint64_t>(node.blocks.size())});
    }
    shards.push_back(std::move(shard));
  }
  return shards;
}

}  // namespace ppfs::workload
