// Bridges the live mount to ppfs_fsck: per-I/O-node shards pairing each
// server's cache tier with the UFS directory it must agree with. The shard
// list is what run_fsck audits (and inject_corruptions perturbs) — built
// inside an Experiment post-run hook, while the machine still exists.
#pragma once

#include <vector>

#include "cache/fsck.hpp"

namespace ppfs::pfs {
class PfsFileSystem;
}

namespace ppfs::workload {

/// One shard per I/O node whose cache tier is enabled (empty when the tier
/// is off mount-wide). Truth tables are snapshots: ino -> {generation,
/// block count} from each server's UFS inode table. Shard labels are the
/// UFS instance names ("ufs0", ...), so reports are stable across runs.
std::vector<cache::FsckShard> make_fsck_shards(pfs::PfsFileSystem& fs);

}  // namespace ppfs::workload
