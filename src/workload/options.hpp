// Command-line option parsing for the ppfs_run tool (and anything else
// that wants to construct experiment specs from strings). Kept in the
// library so it is unit-testable.
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "workload/experiment.hpp"
#include "workload/generator.hpp"
#include "workload/write_workload.hpp"

namespace ppfs::workload {

/// Typed CLI parse error: carries the offending flag alongside the message,
/// so drivers can print "error: --mesh-mtu: bad size 'huge'" and tests can
/// assert on which flag was rejected. Derives std::invalid_argument so
/// existing catch sites keep working.
class CliError : public std::invalid_argument {
 public:
  CliError(std::string flag, const std::string& message)
      : std::invalid_argument(flag.empty() ? message : flag + ": " + message),
        flag_(std::move(flag)) {}
  const std::string& flag() const noexcept { return flag_; }

 private:
  std::string flag_;
};

struct CliOptions {
  MachineSpec machine;
  WorkloadSpec workload;
  /// --write-workload: run a TokenWrite write workload instead of the read
  /// workload. The spec's machine is copied from `machine` at dispatch.
  std::optional<WriteWorkloadSpec> write_workload;
  bool show_help = false;
  /// Runs both with and without prefetching and prints the comparison.
  bool compare = false;
  /// Runs each configuration twice and fails on determinism-digest
  /// divergence (SimCheck).
  bool selfcheck = false;
  /// Runs the paper-table scenario grid (request sizes x prefetch on/off)
  /// as one sweep instead of a single workload.
  bool sweep = false;
  /// Worker threads for --sweep (each scenario is still a single-threaded,
  /// deterministic simulation). 1 = serial.
  int jobs = 1;
  /// TraceScope: write a Chrome trace_event JSON of the run here (plain
  /// single-run mode only). Empty = tracing off.
  std::string trace_path;
  /// TraceScope: keep only the last N records (binary ring buffer) and dump
  /// them on fault give-up. 0 = unbounded when --trace is given.
  std::size_t trace_last = 0;
};

/// Parse "64K", "8M", "1G", or plain bytes. Throws std::invalid_argument
/// on malformed, negative, or overflowing input.
sim::ByteCount parse_size(const std::string& text);

/// Parse an I/O mode by paper name ("M_RECORD", case-insensitive, with or
/// without the "M_" prefix).
pfs::IoMode parse_mode(const std::string& text);

/// Parse argv into options. Throws std::invalid_argument with a message
/// naming the offending flag.
CliOptions parse_cli(const std::vector<std::string>& args);

/// The --help text.
std::string cli_usage();

}  // namespace ppfs::workload
