// Command-line option parsing for the ppfs_run tool (and anything else
// that wants to construct experiment specs from strings). Kept in the
// library so it is unit-testable.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "workload/experiment.hpp"
#include "workload/generator.hpp"

namespace ppfs::workload {

struct CliOptions {
  MachineSpec machine;
  WorkloadSpec workload;
  bool show_help = false;
  /// Runs both with and without prefetching and prints the comparison.
  bool compare = false;
  /// Runs each configuration twice and fails on determinism-digest
  /// divergence (SimCheck).
  bool selfcheck = false;
  /// Runs the paper-table scenario grid (request sizes x prefetch on/off)
  /// as one sweep instead of a single workload.
  bool sweep = false;
  /// Worker threads for --sweep (each scenario is still a single-threaded,
  /// deterministic simulation). 1 = serial.
  int jobs = 1;
};

/// Parse "64K", "8M", "1G", or plain bytes. Throws std::invalid_argument
/// on malformed input.
sim::ByteCount parse_size(const std::string& text);

/// Parse an I/O mode by paper name ("M_RECORD", case-insensitive, with or
/// without the "M_" prefix).
pfs::IoMode parse_mode(const std::string& text);

/// Parse argv into options. Throws std::invalid_argument with a message
/// naming the offending flag.
CliOptions parse_cli(const std::vector<std::string>& args);

/// The --help text.
std::string cli_usage();

}  // namespace ppfs::workload
