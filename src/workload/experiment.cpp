#include "workload/experiment.hpp"

#include <algorithm>
#include <numeric>
#include <memory>
#include <stdexcept>
#include <string>

#include "fault/error.hpp"
#include "fault/injector.hpp"
#include "pfs/client.hpp"
#include "pfs/filesystem.hpp"
#include "sim/check/audit.hpp"
#include "sim/event.hpp"
#include "sim/frame_arena.hpp"
#include "sim/simulation.hpp"
#include "sim/when_all.hpp"

namespace ppfs::workload {

namespace {

using pfs::IoMode;
using sim::SimTime;
using sim::Task;

constexpr std::uint64_t kSharedTag = 1;
constexpr std::uint64_t kSeparateTagBase = 100;

/// Write `size` patterned bytes into an existing PFS file through the full
/// stack (fast-path writes in 1 MB chunks). `name` is taken by value: the
/// returned Task is stored and awaited later, so reference parameters to
/// caller temporaries would dangle.
Task<void> populate(pfs::PfsClient& loader, std::string name, std::uint64_t tag,
                    ByteCount size) {
  const int fd = co_await loader.open(name, IoMode::kAsync);
  const ByteCount chunk = std::min<ByteCount>(size, 1024 * 1024);
  std::vector<std::byte> buf(chunk);
  for (ByteCount off = 0; off < size; off += chunk) {
    const ByteCount n = std::min<ByteCount>(chunk, size - off);
    fill_pattern(tag, off, std::span(buf).subspan(0, n));
    co_await loader.write(fd, std::span<const std::byte>(buf).subspan(0, n));
  }
  loader.close(fd);
}

struct NodePlan {
  std::string file;
  std::uint64_t tag = kSharedTag;
  std::uint64_t reads = 0;
  ByteCount own_region_start = 0;  // seek target for unique-pointer modes
  bool seek_first = false;
  bool interleave_seeks = false;   // seek to (k*N + rank)*req before read k
  bool strided_seeks = false;      // seek to strided_offset(k) before read k
  bool listio_seeks = false;       // seek to listio_offset(k) before read k
};

struct NodeOutcome {
  SimTime start = 0;
  SimTime end = 0;
  ByteCount bytes = 0;
  std::uint64_t reads = 0;
  std::uint64_t verify_failures = 0;
  std::uint64_t app_errors = 0;  // FaultErrors surfaced to the application
  sim::StreamingQuantiles latencies;  // per read call, fixed footprint
};

/// Expected file offset of read k for verification purposes.
FileOffset expected_offset(const WorkloadSpec& w, const NodePlan& plan, int rank, int nprocs,
                           std::uint64_t k, FileOffset observed_ptr_after,
                           ByteCount got) {
  switch (w.mode) {
    case IoMode::kRecord:
      return (k * static_cast<FileOffset>(nprocs) + rank) * w.request_size;
    case IoMode::kUnix:
    case IoMode::kAsync:
      if (plan.interleave_seeks) {
        return (k * static_cast<FileOffset>(nprocs) + rank) * w.request_size;
      }
      if (plan.strided_seeks) return strided_offset(w, rank, nprocs, k);
      if (plan.listio_seeks) return listio_offset(w, rank, nprocs, k);
      return plan.own_region_start + k * w.request_size;
    case IoMode::kGlobal:
      return k * w.request_size;
    case IoMode::kLog:
    case IoMode::kSync:
      // The claimed region is only known after the fact: the client's
      // pointer lands at claim_end.
      return observed_ptr_after - got;
  }
  throw std::logic_error("expected_offset: unknown mode");
}

Task<void> reader(const WorkloadSpec& w, pfs::PfsClient& client, NodePlan plan,
                  sim::Barrier& start_line, NodeOutcome& out, int rank, int nprocs) {
  const int fd = co_await client.open(plan.file, w.separate_files ? IoMode::kAsync : w.mode);
  if (!w.use_fastpath) client.set_fastpath(fd, false);
  if (plan.seek_first && plan.own_region_start != 0) {
    co_await client.seek(fd, plan.own_region_start);
  }
  co_await start_line.arrive_and_wait();
  out.start = client.machine().simulation().now();

  std::vector<std::byte> buf(w.request_size);
  for (std::uint64_t k = 0; k < plan.reads; ++k) {
    if (plan.interleave_seeks) {
      co_await client.seek(
          fd, (k * static_cast<FileOffset>(nprocs) + rank) * w.request_size);
    } else if (plan.strided_seeks) {
      co_await client.seek(fd, strided_offset(w, rank, nprocs, k));
    } else if (plan.listio_seeks) {
      co_await client.seek(fd, listio_offset(w, rank, nprocs, k));
    }
    const SimTime call_start = client.machine().simulation().now();
    ByteCount got = 0;
    bool read_failed = false;
    try {
      got = co_await client.read(fd, buf);
    } catch (const fault::FaultError&) {
      // A terminal fault (retry budget exhausted) surfaces to the
      // application as a failed read; the run carries on with the next
      // request, like a real program retrying at its own level would.
      read_failed = true;
    }
    out.latencies.add(client.machine().simulation().now() - call_start);
    out.bytes += got;
    ++out.reads;
    if (read_failed) ++out.app_errors;
    if (!read_failed && w.verify && got > 0) {
      const FileOffset off =
          expected_offset(w, plan, rank, nprocs, k, client.tell(fd), got);
      if (find_pattern_mismatch(plan.tag, off,
                                std::span<const std::byte>(buf).subspan(0, got)) !=
          kNoMismatch) {
        ++out.verify_failures;
      }
    }
    out.end = client.machine().simulation().now();
    if (w.compute_delay > 0 && k + 1 < plan.reads) {
      co_await client.machine().simulation().delay(w.compute_delay);
    }
  }
  client.close(fd);
}

}  // namespace

void accumulate_token_stats(ExperimentResult& res, const pfs::PfsClient& client) {
  res.writes += client.stats().writes;
  res.bytes_written += client.stats().bytes_written;
  res.max_node_write_time = std::max(res.max_node_write_time, client.stats().write_time);
  res.token_rpcs += client.rpc_stats().token_rpcs;
  const auto& ts = client.token_stats();
  res.token_local_grants += ts.local_grants;
  res.token_revocations += ts.revocations;
  res.token_invalidations += ts.invalidations;
  res.wb_writes += ts.wb_writes;
  res.wb_read_hits += ts.wb_read_hits;
  res.wb_flush_ops += ts.flush_ops;
  res.wb_flushed_bytes += ts.flushed_bytes;
  res.wb_revocation_flushes += ts.revocation_flushes;
  res.wb_fsync_flushes += ts.fsync_flushes;
  res.wb_capacity_evictions += ts.capacity_evictions;
  res.wb_peak_dirty_bytes = std::max(res.wb_peak_dirty_bytes, ts.peak_dirty_bytes);
}

ExperimentResult Experiment::run(const WorkloadSpec& w, trace::TraceSink* sink,
                                 const PostRunHook& post_run) const {
  if (w.request_size == 0) throw std::invalid_argument("Experiment: zero request size");
  if ((w.pattern == AccessPattern::kStrided || w.pattern == AccessPattern::kListIo) &&
      (w.separate_files || (w.mode != IoMode::kUnix && w.mode != IoMode::kAsync))) {
    throw std::invalid_argument(
        "Experiment: strided/listio patterns need M_UNIX or M_ASYNC on a shared file");
  }
  const int N = spec_.ncompute;

  sim::Simulation sim;
  sim.set_trace_sink(sink);
  hw::MachineConfig mcfg = hw::MachineConfig::paragon(spec_.ncompute, spec_.nio, spec_.raid);
  mcfg.compute_cpu = spec_.compute_cpu;
  mcfg.io_cpu = spec_.io_cpu;
  mcfg.mesh.mtu = spec_.mesh_mtu;
  hw::Machine machine(sim, mcfg);
  pfs::PfsFileSystem fs(machine, spec_.pfs);
  const pfs::StripeAttrs attrs = w.attrs.value_or(fs.default_attrs());

  std::vector<std::unique_ptr<pfs::PfsClient>> clients;
  clients.reserve(N);
  for (int r = 0; r < N; ++r) {
    clients.push_back(std::make_unique<pfs::PfsClient>(fs, r, r, N));
  }
  std::vector<std::unique_ptr<prefetch::PrefetchEngine>> engines(N);
  if (w.prefetch) {
    for (int r = 0; r < N; ++r) {
      engines[r] = prefetch::attach_prefetcher(*clients[r], w.prefetch_cfg);
    }
  }

  // --- plan the per-node work ---
  std::vector<NodePlan> plans(N);
  if (w.separate_files) {
    const ByteCount per_node = w.file_size / N;
    for (int r = 0; r < N; ++r) {
      plans[r].file = "sep" + std::to_string(r);
      plans[r].tag = kSeparateTagBase + r;
      plans[r].reads = per_node / w.request_size;
      // Stagger each file's first stripe placement (rotate the group), as
      // a real mount does — otherwise N lockstep readers all land on group
      // slot 0 simultaneously, which no production placement policy allows.
      pfs::StripeAttrs rotated = attrs;
      const int g = rotated.group_size();
      std::rotate(rotated.stripe_group.begin(),
                  rotated.stripe_group.begin() + (r % g), rotated.stripe_group.end());
      fs.create(plans[r].file, rotated);
    }
  } else {
    fs.create("shared", attrs);
    for (int r = 0; r < N; ++r) {
      plans[r].file = "shared";
      switch (w.mode) {
        case IoMode::kRecord:
          plans[r].reads = w.file_size / (w.request_size * static_cast<ByteCount>(N));
          break;
        case IoMode::kGlobal:
          plans[r].reads = w.file_size / w.request_size;
          break;
        case IoMode::kUnix:
        case IoMode::kAsync: {
          switch (w.pattern) {
            case AccessPattern::kInterleaved:
              plans[r].reads = w.file_size / (w.request_size * static_cast<ByteCount>(N));
              plans[r].interleave_seeks = true;
              break;
            case AccessPattern::kOwnRegion: {
              const ByteCount share = w.file_size / N;
              plans[r].reads = share / w.request_size;
              plans[r].own_region_start = static_cast<ByteCount>(r) * share;
              plans[r].seek_first = true;
              break;
            }
            case AccessPattern::kStrided:
              if (w.stride < 1) {
                throw std::invalid_argument("Experiment: stride must be >= 1");
              }
              plans[r].reads = strided_reads_per_node(w, N);
              plans[r].strided_seeks = true;
              break;
            case AccessPattern::kListIo:
              if (w.listio_extents < 1 ||
                  w.listio_extents >
                      static_cast<int>(prefetch::ListIoPredictor::kMaxPeriod)) {
                throw std::invalid_argument(
                    "Experiment: listio extents must be in [1, 8]");
              }
              plans[r].reads = listio_reads_per_node(w, N);
              plans[r].listio_seeks = true;
              break;
          }
          break;
        }
        case IoMode::kLog:
        case IoMode::kSync:
          plans[r].reads = (w.file_size / N) / w.request_size;
          break;
      }
    }
  }
  for (const auto& p : plans) {
    if (p.reads == 0) {
      throw std::invalid_argument("Experiment: file too small for one request per node");
    }
  }

  // --- populate (simulated time spent here is not measured) ---
  {
    std::vector<Task<void>> loads;
    if (w.separate_files) {
      for (int r = 0; r < N; ++r) {
        loads.push_back(populate(*clients[r], plans[r].file, plans[r].tag, w.file_size / N));
      }
    } else {
      loads.push_back(populate(*clients[0], "shared", kSharedTag, w.file_size));
    }
    bool done = false;
    // ppfs-lint: allow(ref-across-await) flag is a local; sim.run() below blocks until done
    sim.spawn([](sim::Simulation& s, std::vector<Task<void>> ts, bool& flag) -> Task<void> {
      co_await sim::when_all(s, std::move(ts));
      flag = true;
    }(sim, std::move(loads), done));
    sim.run();
    if (!done) throw std::runtime_error("Experiment: population deadlocked");
  }

  // Snapshot client stats so only the read phase is measured.
  std::vector<sim::SimTime> read_time_base(N);
  for (int r = 0; r < N; ++r) read_time_base[r] = clients[r]->stats().read_time;

  // --- arm the fault plan (event times relative to the read-phase start) ---
  fault::FaultInjector injector(machine, fs);
  if (!w.faults.empty()) {
    injector.arm(w.faults, sim.now());
  }

  // --- read phase ---
  sim::Barrier start_line(sim, N);
  std::vector<NodeOutcome> outcomes(N);
  for (int r = 0; r < N; ++r) {
    sim.spawn(reader(w, *clients[r], plans[r], start_line, outcomes[r], r, N));
  }
  sim.run();

  // --- collect ---
  ExperimentResult res;
  res.spec = w;
  SimTime t0 = sim::kTimeInfinity, t1 = 0;
  for (int r = 0; r < N; ++r) {
    if (outcomes[r].reads != plans[r].reads) {
      throw std::runtime_error("Experiment: node " + std::to_string(r) +
                               " did not finish its reads (deadlock?)");
    }
    res.total_bytes += outcomes[r].bytes;
    res.reads += outcomes[r].reads;
    res.verify_failures += outcomes[r].verify_failures;
    res.faults.app_errors += outcomes[r].app_errors;
    t0 = std::min(t0, outcomes[r].start);
    t1 = std::max(t1, outcomes[r].end);
    res.read_latencies.merge(outcomes[r].latencies);
    const SimTime rt = clients[r]->stats().read_time - read_time_base[r];
    res.node_read_time.push_back(rt);
    res.max_node_read_time = std::max(res.max_node_read_time, rt);
    if (engines[r]) {
      const auto& st = engines[r]->stats();
      res.prefetch.issued += st.issued;
      res.prefetch.hits_ready += st.hits_ready;
      res.prefetch.hits_in_flight += st.hits_in_flight;
      res.prefetch.misses += st.misses;
      res.prefetch.stale_discarded += st.stale_discarded;
      res.prefetch.wasted += st.wasted;
      res.prefetch.bytes_prefetched += st.bytes_prefetched;
      res.prefetch.bytes_served += st.bytes_served;
      res.prefetch.wait_time += st.wait_time;
      res.prefetch.shed += st.shed;
      res.prefetch.epoch_discarded += st.epoch_discarded;
      res.prefetch.fault_pauses += st.fault_pauses;
      res.prefetch.fault_skips += st.fault_skips;
      res.prefetch.depth_ramp_ups += st.depth_ramp_ups;
      res.prefetch.depth_ramp_downs += st.depth_ramp_downs;
      res.prefetch.depth_collapses += st.depth_collapses;
      res.prefetch.wasted_bytes += st.wasted_bytes;
      for (std::size_t b = 0; b < prefetch::PrefetchStats::kDepthHistBuckets; ++b) {
        res.prefetch.depth_hist[b] += st.depth_hist[b];
      }
      res.faults.shed_prefetches += st.shed;
      res.faults.stale_epoch_discards += st.epoch_discarded;
    }
    const auto& rpc = clients[r]->rpc_stats();
    res.data_rpcs += rpc.data_rpcs;
    res.metadata_rpcs += rpc.metadata_rpcs;
    res.pointer_rpcs += rpc.pointer_rpcs;
    res.coalesced_rpcs += rpc.coalesced_rpcs;
    res.coalesced_extents += rpc.coalesced_extents;
    res.stripe_map_refreshes += rpc.stripe_map_refreshes;
    res.faults.rpc_retries += rpc.retries;
    res.faults.rpc_down_waits += rpc.down_waits;
    res.faults.rpc_timeouts += rpc.timeouts;
    res.faults.terminal_errors += rpc.terminal_errors;
    res.faults.backoff_time += rpc.backoff_time;
    res.faults.recovery_wait_time += rpc.recovery_wait_time;
    accumulate_token_stats(res, *clients[r]);
  }
  res.token_grants = fs.tokens().stats().grants;
  res.token_splits = fs.tokens().stats().splits;
  res.observed_write_bw_mbs =
      sim::megabytes_per_second(res.bytes_written, res.max_node_write_time);
  // Token conservation: the manager's running grant ledger must equal the
  // write bytes still outstanding in its table once the run drains.
  if (auto* a = sim.auditor()) {
    a->check_token_conservation(sim.now(), fs.tokens().write_granted_bytes());
  }
  res.faults.injected_events = static_cast<std::uint64_t>(injector.injected());
  res.mesh_segmented_messages = machine.mesh().segmented_messages();
  res.mesh_segments = machine.mesh().segments_sent();
  res.top_links = machine.mesh().top_busy_links(5);
  for (int io = 0; io < spec_.nio; ++io) {
    res.server_batch_sweeps += fs.server(io).batch_sweeps();
    res.server_batched_extents += fs.server(io).batched_extents();
    hw::RaidArray& raid = machine.raid(io);
    res.faults.reconstructed_reads += raid.reconstructed_reads();
    res.faults.degraded_writes += raid.degraded_writes();
    for (std::size_t m = 0; m < raid.member_count(); ++m) {
      res.faults.disk_transients += raid.member(m).transient_errors_fired();
    }
    if (auto* tier = fs.server(io).ufs().cache_tier()) {
      const auto& cs = tier->stats();
      res.cache_lookups += cs.lookups;
      res.cache_hits += cs.hits;
      res.cache_inserts += cs.inserts;
      res.cache_evictions += cs.evictions;
      res.cache_journal_flushes += cs.journal_flushes;
      res.cache_recoveries += cs.recoveries;
      res.cache_recovered_blocks += cs.recovered_blocks;
      res.cache_torn_dropped += cs.torn_entries_dropped;
      res.cache_stale_dropped += cs.stale_entries_dropped;
      res.cache_recovery_time += cs.total_recovery_time;
      if (cs.recoveries > 0) {
        // Warm-restart quality: only servers that actually replayed a
        // journal contribute (an uncrashed node's hits are just tier hits).
        res.cache_warm_lookups += cs.warm_lookups;
        res.cache_warm_hits += cs.warm_hits;
      }
      res.faults.node_recoveries += cs.recoveries;
      res.faults.node_recovery_time += cs.total_recovery_time;
      // Every bit ever set in this tier is now resident or was accounted
      // as cleared — the cache analogue of buffer conservation.
      if (auto* a = sim.auditor()) {
        a->check_cache_bitmap_conservation(sim.now(), tier, tier->resident_blocks());
      }
    }
  }
  res.cache_warm_hit_ratio =
      res.cache_warm_lookups
          ? static_cast<double>(res.cache_warm_hits) /
                static_cast<double>(res.cache_warm_lookups)
          : 0.0;
  // With the run drained, the fault ledger must balance: every manifested
  // fault was healed by retry, repaired by reconstruction, or is terminal.
  if (auto* a = sim.auditor()) a->check_fault_conservation(sim.now());
  res.wall_elapsed = t1 - t0;
  res.mean_read_call_time =
      res.reads ? std::accumulate(res.node_read_time.begin(), res.node_read_time.end(), 0.0) /
                      static_cast<double>(res.reads)
                : 0.0;
  res.observed_read_bw_mbs =
      sim::megabytes_per_second(res.total_bytes, res.max_node_read_time);
  res.wall_bw_mbs = sim::megabytes_per_second(res.total_bytes, res.wall_elapsed);
  res.digest = sim.digest();
  res.events_dispatched = sim.events_dispatched();
  res.peak_pending_events = sim.peak_pending_events();
  res.event_queue_bytes = sim.event_queue_bytes();
  res.frame_arena_bytes = sim::FrameArena::local().stats().cached_bytes;
  res.bytes_per_event =
      res.events_dispatched
          ? static_cast<double>(res.event_queue_bytes + res.frame_arena_bytes) /
                static_cast<double>(res.events_dispatched)
          : 0.0;
  // The post-run hook sees the live mount (fsck audits, corruption
  // injection for tests) after metrics are final but before teardown.
  if (post_run) post_run(fs);
  return res;
}

sim::SimTime Experiment::read_access_time(ByteCount request_size) const {
  WorkloadSpec w;
  w.mode = IoMode::kRecord;
  w.request_size = request_size;
  // 4 rounds give a steady-state mean without a long run.
  w.file_size = request_size * static_cast<ByteCount>(spec_.ncompute) * 4;
  const auto res = run(w);
  return res.mean_read_call_time;
}

}  // namespace ppfs::workload
