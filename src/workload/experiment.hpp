// The experiment driver: build a machine, lay out the file(s), run one
// workload, report the paper's metrics.
//
// Metrics, following Section 4: "The read bandwidth is the total amount of
// data that can be read by all the nodes per unit time as observed by the
// application. For a parallel I/O mode like M_RECORD, the numerator would
// be the amount of data read by all the compute nodes and the time taken
// is the time taken by a compute node to complete all the read calls."
// observed_read_bw uses exactly that denominator (the slowest node's total
// time spent inside read calls) — which is why prefetching that overlaps
// I/O with the inter-read computation raises the observed bandwidth. The
// wall-clock bandwidth (including compute) is reported alongside.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "fault/stats.hpp"
#include "hw/machine.hpp"
#include "sim/stats.hpp"
#include "pfs/server.hpp"
#include "prefetch/engine.hpp"
#include "workload/generator.hpp"

namespace ppfs::trace {
class TraceSink;
}

namespace ppfs::pfs {
class PfsClient;
}

namespace ppfs::workload {

struct MachineSpec {
  int ncompute = 8;
  int nio = 8;
  hw::RaidParams raid = hw::RaidParams::scsi8();
  hw::CpuParams compute_cpu{};
  hw::CpuParams io_cpu{};
  pfs::PfsParams pfs{};
  /// Mesh segmentation MTU (0 = legacy circuit transfers). Applied to
  /// MachineConfig::mesh when the experiment builds its machine.
  ByteCount mesh_mtu = 0;
};

struct ExperimentResult {
  // Inputs echoed back for table printing.
  WorkloadSpec spec;

  ByteCount total_bytes = 0;     // delivered to the application(s)
  std::uint64_t reads = 0;
  sim::SimTime wall_elapsed = 0; // first read issued -> last read complete
  /// Per-node total time inside read calls; max is the paper's denominator.
  std::vector<sim::SimTime> node_read_time;
  sim::SimTime max_node_read_time = 0;
  sim::SimTime mean_read_call_time = 0;
  /// Per-read-call latency distribution across all nodes. Streaming and
  /// fixed-footprint (log2-bin sketch): the result's memory no longer grows
  /// with the number of reads, which is what keeps bytes/event flat on
  /// production-scale runs.
  sim::StreamingQuantiles read_latencies;

  double observed_read_bw_mbs = 0;  // total_bytes / max_node_read_time
  double wall_bw_mbs = 0;           // total_bytes / wall_elapsed

  prefetch::PrefetchStats prefetch;  // summed across nodes (zero w/o engine)
  std::uint64_t verify_failures = 0;

  /// Per-class RPC traffic summed across clients (read phase + populate):
  /// the split makes the metadata node's control-message load visible next
  /// to the data traffic it serializes.
  std::uint64_t data_rpcs = 0;
  std::uint64_t metadata_rpcs = 0;
  std::uint64_t pointer_rpcs = 0;
  std::uint64_t coalesced_rpcs = 0;
  std::uint64_t coalesced_extents = 0;
  std::uint64_t stripe_map_refreshes = 0;

  /// Data-path instrumentation: mesh segmentation and server batching.
  std::uint64_t mesh_segmented_messages = 0;
  std::uint64_t mesh_segments = 0;
  std::uint64_t server_batch_sweeps = 0;
  std::uint64_t server_batched_extents = 0;
  /// Busiest mesh links (id, busy seconds), busiest first — the wiring
  /// hot-spot view of the run.
  std::vector<std::pair<int, sim::SimTime>> top_links;

  /// Fault/recovery counters summed across the whole stack (all zero on a
  /// healthy run with an empty plan).
  fault::FaultSummary faults;

  /// Second-tier cache counters summed across I/O nodes (all zero when the
  /// tier is off). The warm-restart ratio covers only servers that actually
  /// ran a recovery pass — it is the post-restart service quality.
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_inserts = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_journal_flushes = 0;
  std::uint64_t cache_recoveries = 0;
  std::uint64_t cache_recovered_blocks = 0;
  std::uint64_t cache_torn_dropped = 0;
  std::uint64_t cache_stale_dropped = 0;
  std::uint64_t cache_warm_lookups = 0;
  std::uint64_t cache_warm_hits = 0;
  double cache_warm_hit_ratio = 0;
  sim::SimTime cache_recovery_time = 0;  // summed journal-replay time

  /// TokenWrite counters summed across clients (all zero unless
  /// PfsParams::write_tokens is on): the write path's activity, the token
  /// protocol traffic, and the write-back cache behavior.
  std::uint64_t writes = 0;
  ByteCount bytes_written = 0;
  sim::SimTime max_node_write_time = 0;  // slowest node's total write-call time
  double observed_write_bw_mbs = 0;      // bytes_written / max_node_write_time
  std::uint64_t token_rpcs = 0;          // acquisitions that reached the manager
  std::uint64_t token_local_grants = 0;  // acquisitions served by the token cache
  std::uint64_t token_grants = 0;        // grants the manager installed
  std::uint64_t token_revocations = 0;   // conflicting ranges revoked
  std::uint64_t token_splits = 0;        // partial-overlap grant splits
  std::uint64_t token_invalidations = 0; // client held-ranges dropped/trimmed
  std::uint64_t wb_writes = 0;           // writes buffered dirty (no data RPC)
  std::uint64_t wb_read_hits = 0;        // reads served wholly from dirty data
  std::uint64_t wb_flush_ops = 0;
  ByteCount wb_flushed_bytes = 0;
  std::uint64_t wb_revocation_flushes = 0;
  std::uint64_t wb_fsync_flushes = 0;
  std::uint64_t wb_capacity_evictions = 0;
  ByteCount wb_peak_dirty_bytes = 0;     // max across clients

  /// SimCheck determinism digest of the whole run (populate + read phase):
  /// the kernel's FNV-1a hash over every dispatched event. Two runs of the
  /// same spec must agree bit-for-bit — see ppfs_run --selfcheck.
  std::uint64_t digest = 0;
  std::uint64_t events_dispatched = 0;

  /// Memory-footprint counters (deterministic — derived from kernel pool
  /// capacities, not OS RSS, so tests can gate on them). peak_pending_events
  /// is the event-queue depth high-water; bytes_per_event is the kernel
  /// footprint (queue + coroutine-frame arena) amortized over every
  /// dispatched event — flat stats mean this falls with run length instead
  /// of plateauing at a per-event accumulation cost.
  std::uint64_t peak_pending_events = 0;
  std::uint64_t event_queue_bytes = 0;
  std::uint64_t frame_arena_bytes = 0;
  double bytes_per_event = 0;
};

/// Fold one client's TokenWrite counters (token RPCs, manager traffic seen
/// through its stats, write-back cache activity) into a result. Shared by
/// the read-workload driver and the write workloads.
void accumulate_token_stats(ExperimentResult& res, const pfs::PfsClient& client);

/// Runs workloads on a freshly-built machine each time (fully
/// deterministic; no state leaks between runs).
class Experiment {
 public:
  explicit Experiment(MachineSpec spec = {}) : spec_(spec) {}

  /// Called after the run drains but before the machine is torn down, with
  /// the live mount — the hook ppfs_fsck and the recovery tests use to
  /// audit/corrupt the cache tiers while they still exist.
  using PostRunHook = std::function<void(pfs::PfsFileSystem&)>;

  ExperimentResult run(const WorkloadSpec& w) const { return run(w, nullptr); }

  /// Same, with a TraceScope sink attached to the simulation for the whole
  /// run (populate + read phase). The sink only observes — digests are
  /// bit-identical with tracing on or off. nullptr = tracing off.
  ExperimentResult run(const WorkloadSpec& w, trace::TraceSink* sink) const {
    return run(w, sink, nullptr);
  }
  ExperimentResult run(const WorkloadSpec& w, trace::TraceSink* sink,
                       const PostRunHook& post_run) const;

  /// Paper Table 2: the access time of a single read call of this size in
  /// the standard collective (no prefetch, no delays) setting.
  sim::SimTime read_access_time(ByteCount request_size) const;

  const MachineSpec& machine_spec() const noexcept { return spec_; }

 private:
  MachineSpec spec_;
};

}  // namespace ppfs::workload
