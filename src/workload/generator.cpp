#include "workload/generator.hpp"

namespace ppfs::workload {

const char* pattern_name(AccessPattern p) {
  switch (p) {
    case AccessPattern::kInterleaved: return "interleaved";
    case AccessPattern::kOwnRegion: return "own-region";
    case AccessPattern::kStrided: return "strided";
    case AccessPattern::kListIo: return "listio";
  }
  return "?";
}

FileOffset strided_offset(const WorkloadSpec& w, int rank, int nprocs, std::uint64_t k) {
  const auto step = static_cast<FileOffset>(nprocs) * w.stride;
  return (static_cast<FileOffset>(rank) + k * step) * w.request_size;
}

std::uint64_t strided_reads_per_node(const WorkloadSpec& w, int nprocs) {
  const ByteCount round = w.request_size * static_cast<ByteCount>(nprocs) *
                          static_cast<ByteCount>(w.stride);
  return round ? w.file_size / round : 0;
}

ByteCount listio_frame_bytes(const WorkloadSpec& w) {
  return w.request_size * (2 * static_cast<ByteCount>(w.listio_extents) + 1);
}

FileOffset listio_offset(const WorkloadSpec& w, int rank, int nprocs, std::uint64_t k) {
  const auto extents = static_cast<std::uint64_t>(w.listio_extents);
  const std::uint64_t frame = k / extents;
  const std::uint64_t slot = k % extents;
  const ByteCount share = w.file_size / nprocs;
  return static_cast<FileOffset>(rank) * share + frame * listio_frame_bytes(w) +
         slot * 2 * w.request_size;
}

std::uint64_t listio_reads_per_node(const WorkloadSpec& w, int nprocs) {
  const ByteCount share = w.file_size / nprocs;
  const ByteCount frame = listio_frame_bytes(w);
  return frame ? (share / frame) * static_cast<std::uint64_t>(w.listio_extents) : 0;
}

void fill_pattern(std::uint64_t tag, FileOffset start, std::span<std::byte> out) {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = pattern_byte(tag, start + i);
}

std::size_t find_pattern_mismatch(std::uint64_t tag, FileOffset start,
                                  std::span<const std::byte> data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] != pattern_byte(tag, start + i)) return i;
  }
  return kNoMismatch;
}

}  // namespace ppfs::workload
