#include "workload/generator.hpp"

namespace ppfs::workload {

void fill_pattern(std::uint64_t tag, FileOffset start, std::span<std::byte> out) {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = pattern_byte(tag, start + i);
}

std::size_t find_pattern_mismatch(std::uint64_t tag, FileOffset start,
                                  std::span<const std::byte> data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] != pattern_byte(tag, start + i)) return i;
  }
  return kNoMismatch;
}

}  // namespace ppfs::workload
