// Access-trace capture and replay.
//
// The paper evaluates synthetic workloads; real deployments want to replay
// application I/O traces against configuration changes ("a greater variety
// of workloads and access patterns" — the paper's future work). An
// AccessTrace is a per-rank sequence of reads/seeks with think times, with
// a plain-text format so traces can be captured once and versioned:
//
//   # ppfs-trace v1
//   mode M_RECORD
//   ranks 8
//   0 seek 65536
//   0 read 65536 0.05      <- rank op length think_seconds
//   1 read 65536 0
//
// replay_trace() runs a trace on a fresh machine and reports the same
// metrics as Experiment::run.
#pragma once

#include <string>
#include <vector>

#include "pfs/io_mode.hpp"
#include "prefetch/engine.hpp"
#include "sim/types.hpp"
#include "workload/experiment.hpp"

namespace ppfs::workload {

struct TraceOp {
  enum class Kind { kRead, kSeek };
  int rank = 0;
  Kind kind = Kind::kRead;
  sim::ByteCount length = 0;    // read
  sim::FileOffset offset = 0;   // seek
  sim::SimTime think = 0;       // post-op compute time (read only)
};

struct AccessTrace {
  pfs::IoMode mode = pfs::IoMode::kRecord;
  int ranks = 1;
  std::vector<TraceOp> ops;  // per-rank order is execution order

  std::string serialize() const;
  static AccessTrace parse(const std::string& text);  // throws on malformed input

  /// Total bytes each rank reads; max determines the file size needed.
  sim::ByteCount max_bytes_per_rank() const;

  // -- generators for common shapes --
  /// Every rank: n sequential reads of `len` with `think` between them.
  static AccessTrace sequential(pfs::IoMode mode, int ranks, int reads_per_rank,
                                sim::ByteCount len, sim::SimTime think);
  /// Every rank scans its own region with a constant forward stride.
  static AccessTrace strided(int ranks, int reads_per_rank, sim::ByteCount len,
                             sim::ByteCount stride, sim::SimTime think);
};

struct TraceReplayResult {
  sim::ByteCount total_bytes = 0;
  std::uint64_t reads = 0;
  sim::SimTime wall_elapsed = 0;
  sim::SimTime max_node_read_time = 0;
  double observed_read_bw_mbs = 0;
  prefetch::PrefetchStats prefetch;
  std::uint64_t verify_failures = 0;
};

/// Replay a trace on a fresh machine. The backing PFS file is created and
/// patterned large enough for every access; reads are verified when
/// `verify` is set (only for traces whose reads are offset-determined:
/// unique-pointer modes and M_RECORD).
TraceReplayResult replay_trace(const MachineSpec& machine, const AccessTrace& trace,
                               bool prefetch_on,
                               prefetch::PrefetchConfig prefetch_cfg = {},
                               bool verify = false);

}  // namespace ppfs::workload
