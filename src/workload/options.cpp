#include "workload/options.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace ppfs::workload {

namespace {

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

// stoi/stoull throw std::invalid_argument on junk and std::out_of_range on
// overflow, and stoull silently wraps a leading '-' to a huge unsigned
// value — so every numeric flag funnels through these wrappers, which turn
// all three failure modes into a CliError naming the offending flag.
int parse_int(const std::string& flag, const std::string& text) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw CliError(flag, "bad integer: '" + text + "'");
  }
}

// For count-valued flags (nodes, depths, block counts): an integer >= min.
int parse_count(const std::string& flag, const std::string& text, int min) {
  const int v = parse_int(flag, text);
  if (v < min) {
    throw CliError(flag, "must be >= " + std::to_string(min) + ", got " + text);
  }
  return v;
}

double parse_seconds(const std::string& flag, const std::string& text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size() || v < 0) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw CliError(flag, "bad duration: '" + text + "'");
  }
}

sim::ByteCount parse_size_for(const std::string& flag, const std::string& text) {
  if (text.empty()) throw CliError(flag, "empty size");
  if (text.find('-') != std::string::npos) {
    // stoull would happily wrap "-1" to 2^64-1; sizes are never negative.
    throw CliError(flag, "negative size: '" + text + "'");
  }
  std::size_t used = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(text, &used);
  } catch (const std::exception&) {
    throw CliError(flag, "bad size: '" + text + "'");
  }
  if (used == 0) throw CliError(flag, "bad size: '" + text + "'");
  const std::string suffix = upper(text.substr(used));
  unsigned long long mult = 1;
  if (suffix == "" || suffix == "B") {
    mult = 1;
  } else if (suffix == "K" || suffix == "KB") {
    mult = 1024ull;
  } else if (suffix == "M" || suffix == "MB") {
    mult = 1024ull * 1024ull;
  } else if (suffix == "G" || suffix == "GB") {
    mult = 1024ull * 1024ull * 1024ull;
  } else {
    throw CliError(flag, "bad size suffix: '" + text + "'");
  }
  if (mult != 1 && v > ~0ull / mult) {
    throw CliError(flag, "size overflows: '" + text + "'");
  }
  return v * mult;
}

AccessPattern parse_pattern(const std::string& text) {
  if (text == "interleaved") return AccessPattern::kInterleaved;
  if (text == "own-region") return AccessPattern::kOwnRegion;
  if (text == "strided") return AccessPattern::kStrided;
  if (text == "listio" || text == "list-io") return AccessPattern::kListIo;
  throw CliError("--pattern", "unknown pattern: '" + text +
                                  "' (interleaved|own-region|strided|listio)");
}

prefetch::PredictorKind parse_predictor(const std::string& text) {
  if (text == "mode-aware") return prefetch::PredictorKind::kModeAware;
  if (text == "sequential") return prefetch::PredictorKind::kSequential;
  if (text == "strided") return prefetch::PredictorKind::kStrided;
  if (text == "list-io" || text == "listio") return prefetch::PredictorKind::kListIo;
  if (text == "ensemble") return prefetch::PredictorKind::kEnsemble;
  throw CliError("--predictor",
                 "unknown predictor: '" + text +
                     "' (mode-aware|sequential|strided|list-io|ensemble)");
}

WriteWorkloadKind parse_write_workload(const std::string& text) {
  if (text == "checkpoint") return WriteWorkloadKind::kCheckpoint;
  if (text == "producer-consumer" || text == "pc") {
    return WriteWorkloadKind::kProducerConsumer;
  }
  if (text == "mixed") return WriteWorkloadKind::kMixed;
  throw CliError("--write-workload", "unknown kind: '" + text +
                                         "' (checkpoint|producer-consumer|mixed)");
}

}  // namespace

sim::ByteCount parse_size(const std::string& text) { return parse_size_for("", text); }

pfs::IoMode parse_mode(const std::string& text) {
  std::string t = upper(text);
  if (t.rfind("M_", 0) != 0) t = "M_" + t;
  for (auto m : pfs::all_io_modes()) {
    if (t == pfs::to_string(m)) return m;
  }
  throw std::invalid_argument("unknown I/O mode: '" + text + "'");
}

std::string cli_usage() {
  return R"(ppfs_run — run one PFS workload on the simulated Paragon and report
the paper's metrics.

  --mode <M_UNIX|M_ASYNC|M_SYNC|M_RECORD|M_GLOBAL|M_LOG>   (default M_RECORD)
  --request <size>      per-node request size, e.g. 64K     (default 64K)
  --file <size>         total file size, e.g. 8M            (default 8M)
  --delay <seconds>     compute delay between reads         (default 0)
  --prefetch            enable the client prefetch engine
  --depth <n>           prefetch depth                      (default 1)
  --adaptive            enable the adaptive prefetch throttle
  --prefetch-adaptive   AdaptaFetch: ensemble predictor + feedback-driven
                        readahead depth (implies --prefetch; deterministic,
                        see --prefetch-seed)
  --prefetch-max-depth <n>  adaptive depth ceiling          (default 8)
  --prefetch-seed <n>   phases the adaptive feedback windows (default 1)
  --predictor <name>    mode-aware|sequential|strided|list-io|ensemble
                        (default mode-aware)
  --compare             run with AND without prefetch, print both
  --selfcheck           run each configuration twice; fail on determinism-
                        digest divergence (SimCheck)
  --sweep               run the paper-table grid (5 request sizes, prefetch
                        off/on) as one sweep; honors --mode/--delay/...
  --jobs <n>            worker threads for --sweep (default 1; per-scenario
                        digests are identical for any worker count)
  --ncompute <n>        compute nodes                       (default 8)
  --nio <n>             I/O nodes                           (default 8)
  --sunit <size>        stripe unit                         (default 64K)
  --sgroup <n>          stripe group width (first n I/O nodes; 0 = all)
  --scsi16              SCSI-16 I/O nodes (4x bus bandwidth)
  --elevator            LOOK elevator disk scheduling
  --mesh-mtu <size>     segment mesh messages above this size into pipelined
                        packets (0 = circuit transfers, the default)
  --coalesce            merge same-I/O-node extents into one scatter-gather
                        RPC and cache the stripe map per file
  --server-batch        servers sort concurrently queued extents into one
                        elevator sweep per disk pass
  --buffered            disable Fast Path (reads via server caches)
  --readahead <n>       server-side readahead blocks        (default 0)
  --cache-tier          persistent second-tier block cache on each I/O node
                        (crash-safe journal; survives --faults crash events)
  --cache-tier-blocks <n>  tier capacity in blocks (implies --cache-tier;
                        default 1024)
  --separate-files      each node reads a private file
  --own-region          M_UNIX/M_ASYNC scan own region instead of interleave
  --pattern <p>         M_UNIX/M_ASYNC access pattern: interleaved (default),
                        own-region, strided (constant-stride sampling scan),
                        listio (gapped vector-of-extents frames)
  --stride <n>          rounds skipped by --pattern strided  (default 4)
  --listio-extents <n>  extents per frame for --pattern listio, 1..8
                        (default 4)
  --write-workload <k>  run a TokenWrite write workload instead of a read
                        workload: checkpoint (N writers, own slots or
                        --conflicting, fsync + cross-client read-back),
                        producer-consumer (no fsync; revocation flushes are
                        the only coherence), mixed (open-arrival tenants
                        with a --write-fraction of writes). Honors
                        --writers/--request/--delay/--faults/--selfcheck
  --writers <n>         concurrent write-workload clients    (default 4)
  --write-rounds <n>    records per writer / handoff rounds  (default 8)
  --conflicting         checkpoint: all writers target the SAME record, so
                        every write conflicts and serializes via revocation
  --no-round-fsync      checkpoint: skip the per-round fsync (coherence then
                        rides purely on revocation flushes)
  --write-fraction <f>  mixed: fraction of requests that write (default 0.5)
  --write-tokens        enable byte-range write tokens + client write-back
                        caches on the mount (write workloads force this on)
  --wb-bytes <size>     per-client write-back dirty budget   (default 1M)
  --verify              check every byte against the written pattern
  --faults <plan>       arm a fault plan at the start of the read phase.
                        ';'-separated events "kind:key=val,...":
                          crash:io=1,at=0.1,outage=0.15
                          diskfail:io=0,member=1,at=0.05[,restore=0.2]
                          transient:io=0,from=0,until=0.3[,member=2][,max=4]
                          slow:io=0,from=0,until=0.3[,factor=4]
                          link:io=0,from=0,until=0.3[,factor=3]
                        or chaos mode: "seed=42[,events=5][,horizon=0.5]"
  --trace <path>        write a Chrome trace_event JSON of the run (open in
                        Perfetto / chrome://tracing); single-run mode only.
                        Tracing never changes the schedule: determinism
                        digests are bit-identical with it on or off
  --trace-last <n>      keep only the last n trace records (binary ring);
                        dumped to <path>.last.bin on fault give-up
  --help                this text
)";
}

CliOptions parse_cli(const std::vector<std::string>& args) {
  CliOptions opt;
  int sgroup = 0;
  std::optional<sim::ByteCount> sunit;

  // Accept "--flag=value" as well as "--flag value": split at the first '='
  // of any "--" argument. Values themselves may contain '=' (fault plans),
  // so only the flag side is split.
  std::vector<std::string> argv;
  argv.reserve(args.size());
  for (const std::string& a : args) {
    const std::size_t eq = a.find('=');
    if (a.rfind("--", 0) == 0 && eq != std::string::npos) {
      argv.push_back(a.substr(0, eq));
      argv.push_back(a.substr(eq + 1));
    } else {
      argv.push_back(a);
    }
  }

  auto need_value = [&](std::size_t i, const std::string& flag) -> const std::string& {
    if (i + 1 >= argv.size()) throw CliError(flag, "missing value");
    return argv[i + 1];
  };

  for (std::size_t i = 0; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a == "--help" || a == "-h") {
      opt.show_help = true;
    } else if (a == "--mode") {
      opt.workload.mode = parse_mode(need_value(i, a));
      ++i;
    } else if (a == "--request") {
      opt.workload.request_size = parse_size_for(a, need_value(i, a));
      ++i;
    } else if (a == "--file") {
      opt.workload.file_size = parse_size_for(a, need_value(i, a));
      ++i;
    } else if (a == "--delay") {
      opt.workload.compute_delay = parse_seconds(a, need_value(i, a));
      ++i;
    } else if (a == "--prefetch") {
      opt.workload.prefetch = true;
    } else if (a == "--depth") {
      opt.workload.prefetch_cfg.depth =
          static_cast<std::size_t>(parse_count(a, need_value(i, a), 1));
      ++i;
    } else if (a == "--adaptive") {
      opt.workload.prefetch_cfg.adaptive = true;
    } else if (a == "--prefetch-adaptive") {
      opt.workload.prefetch = true;
      opt.workload.prefetch_cfg.adaptive_depth = true;
      opt.workload.prefetch_cfg.predictor = prefetch::PredictorKind::kEnsemble;
    } else if (a == "--prefetch-max-depth") {
      opt.workload.prefetch_cfg.max_depth =
          static_cast<std::size_t>(parse_count(a, need_value(i, a), 1));
      ++i;
    } else if (a == "--prefetch-seed") {
      opt.workload.prefetch_cfg.adaptive_seed =
          static_cast<std::uint64_t>(parse_count(a, need_value(i, a), 0));
      ++i;
    } else if (a == "--predictor") {
      opt.workload.prefetch_cfg.predictor = parse_predictor(need_value(i, a));
      ++i;
    } else if (a == "--compare") {
      opt.compare = true;
    } else if (a == "--selfcheck") {
      opt.selfcheck = true;
    } else if (a == "--sweep") {
      opt.sweep = true;
    } else if (a == "--jobs") {
      opt.jobs = parse_count(a, need_value(i, a), 1);
      ++i;
    } else if (a == "--ncompute") {
      opt.machine.ncompute = parse_count(a, need_value(i, a), 1);
      ++i;
    } else if (a == "--nio") {
      opt.machine.nio = parse_count(a, need_value(i, a), 1);
      ++i;
    } else if (a == "--sunit") {
      sunit = parse_size_for(a, need_value(i, a));
      ++i;
    } else if (a == "--sgroup") {
      sgroup = parse_count(a, need_value(i, a), 0);
      ++i;
    } else if (a == "--scsi16") {
      opt.machine.raid = hw::RaidParams::scsi16();
    } else if (a == "--elevator") {
      opt.machine.raid.disk.scheduler = hw::DiskSched::kElevator;
    } else if (a == "--mesh-mtu") {
      opt.machine.mesh_mtu = parse_size_for(a, need_value(i, a));
      ++i;
    } else if (a == "--coalesce") {
      opt.machine.pfs.coalesce_rpcs = true;
    } else if (a == "--server-batch") {
      opt.machine.pfs.server_batch = true;
    } else if (a == "--buffered") {
      opt.workload.use_fastpath = false;
    } else if (a == "--readahead") {
      opt.machine.pfs.ufs.readahead_blocks =
          static_cast<std::uint32_t>(parse_count(a, need_value(i, a), 0));
      ++i;
    } else if (a == "--cache-tier") {
      opt.machine.pfs.ufs.cache_tier.enabled = true;
    } else if (a == "--cache-tier-blocks") {
      opt.machine.pfs.ufs.cache_tier.enabled = true;
      opt.machine.pfs.ufs.cache_tier.capacity_blocks =
          static_cast<std::uint64_t>(parse_count(a, need_value(i, a), 1));
      ++i;
    } else if (a == "--separate-files") {
      opt.workload.separate_files = true;
    } else if (a == "--own-region") {
      opt.workload.pattern = AccessPattern::kOwnRegion;
    } else if (a == "--pattern") {
      opt.workload.pattern = parse_pattern(need_value(i, a));
      ++i;
    } else if (a == "--stride") {
      opt.workload.stride = parse_count(a, need_value(i, a), 1);
      ++i;
    } else if (a == "--listio-extents") {
      opt.workload.listio_extents = parse_count(a, need_value(i, a), 1);
      if (opt.workload.listio_extents >
          static_cast<int>(prefetch::ListIoPredictor::kMaxPeriod)) {
        throw CliError(a, "must be <= 8");
      }
      ++i;
    } else if (a == "--write-workload") {
      if (!opt.write_workload) opt.write_workload.emplace();
      opt.write_workload->kind = parse_write_workload(need_value(i, a));
      ++i;
    } else if (a == "--writers") {
      if (!opt.write_workload) opt.write_workload.emplace();
      opt.write_workload->writers = parse_count(a, need_value(i, a), 1);
      ++i;
    } else if (a == "--write-rounds") {
      if (!opt.write_workload) opt.write_workload.emplace();
      opt.write_workload->rounds =
          static_cast<std::uint64_t>(parse_count(a, need_value(i, a), 1));
      ++i;
    } else if (a == "--conflicting") {
      if (!opt.write_workload) opt.write_workload.emplace();
      opt.write_workload->conflicting = true;
    } else if (a == "--no-round-fsync") {
      if (!opt.write_workload) opt.write_workload.emplace();
      opt.write_workload->fsync_each_round = false;
    } else if (a == "--write-fraction") {
      if (!opt.write_workload) opt.write_workload.emplace();
      opt.write_workload->write_fraction = parse_seconds(a, need_value(i, a));
      if (opt.write_workload->write_fraction > 1.0) {
        throw CliError(a, "must be in [0, 1]");
      }
      ++i;
    } else if (a == "--write-tokens") {
      opt.machine.pfs.write_tokens = true;
    } else if (a == "--wb-bytes") {
      opt.machine.pfs.write_back_bytes = parse_size_for(a, need_value(i, a));
      ++i;
    } else if (a == "--verify") {
      opt.workload.verify = true;
    } else if (a == "--faults") {
      opt.workload.faults = fault::parse_plan(need_value(i, a));
      ++i;
    } else if (a == "--trace") {
      opt.trace_path = need_value(i, a);
      if (opt.trace_path.empty()) throw CliError(a, "missing value");
      ++i;
    } else if (a == "--trace-last") {
      opt.trace_last = static_cast<std::size_t>(parse_count(a, need_value(i, a), 1));
      ++i;
    } else {
      throw CliError(a, "unknown flag (try --help)");
    }
  }

  if (sunit || sgroup > 0) {
    pfs::StripeAttrs attrs;
    attrs.stripe_unit = sunit.value_or(64 * 1024);
    attrs.stripe_group.clear();
    const int width = sgroup > 0 ? sgroup : opt.machine.nio;
    if (width > opt.machine.nio) {
      throw CliError("--sgroup", "exceeds --nio");
    }
    for (int k = 0; k < width; ++k) attrs.stripe_group.push_back(k);
    opt.workload.attrs = attrs;
  }
  if (opt.write_workload) {
    // The shared flags (--request/--delay/--faults and the whole machine
    // shape) apply to write workloads too; copy them in last so flag order
    // does not matter.
    opt.write_workload->machine = opt.machine;
    opt.write_workload->request_size = opt.workload.request_size;
    opt.write_workload->compute_delay = opt.workload.compute_delay;
    opt.write_workload->faults = opt.workload.faults;
  }
  return opt;
}

}  // namespace ppfs::workload
