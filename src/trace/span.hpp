// RAII span emission plus instant/counter helpers. Every helper here takes
// the Simulation so it can read the sink pointer and the simulated clock in
// one place; when tracing is off (null sink) each call collapses to a
// pointer test.
//
// SpanGuard emits kSpanBegin at construction and kSpanEnd exactly once —
// either explicitly via end() (normal completion, with result payloads) or
// from the destructor with kFlagFault set. The destructor path is what
// closes RPC envelopes when rpc_recover throws FaultError and the coroutine
// frame unwinds, so give-up latency still lands in the trace.
//
// Hot-path header: no heap containers (ppfs_lint trace-hot-path-alloc).
#pragma once

#include <cstdint>

#include "sim/simulation.hpp"
#include "trace/record.hpp"
#include "trace/sink.hpp"

namespace ppfs::trace {

// ppfs::hot — span/instant/counter emission is inlined into every traced
// kernel primitive; records are POD and the off path is a pointer test
inline void instant(sim::Simulation& sim, TraceTrack track, std::uint8_t code,
                    std::int32_t resource, std::uint64_t a = 0, std::uint64_t b = 0,
                    std::uint8_t flags = 0) noexcept {
  if (TraceSink* sink = sim.trace()) {
    sink->record(TraceRecord(sim.now(), TraceKind::kInstant, track, code, resource, 0, a, b,
                             flags));
  }
}

inline void counter(sim::Simulation& sim, TraceTrack track, std::uint8_t code,
                    std::int32_t resource, std::uint64_t a, std::uint64_t b = 0) noexcept {
  if (TraceSink* sink = sim.trace()) {
    sink->record(TraceRecord(sim.now(), TraceKind::kCounter, track, code, resource, 0, a, b));
  }
}

class SpanGuard {
 public:
  // async=true allocates a correlation id so overlapping spans (RPCs in
  // flight, pipelined sweeps) pair up in the exporter; capacity-1 resources
  // (links, disks) pass async=false and pair B/E by track+resource order.
  SpanGuard(sim::Simulation& sim, TraceTrack track, std::uint8_t code, std::int32_t resource,
            bool async = false, std::uint64_t a = 0, std::uint64_t b = 0,
            std::uint8_t flags = 0) noexcept
      : sim_(sim), sink_(sim.trace()), track_(track), code_(code), resource_(resource),
        flags_(flags) {
    if (sink_ != nullptr) {
      if (async) id_ = sink_->new_span();
      sink_->record(TraceRecord(sim_.now(), TraceKind::kSpanBegin, track_, code_, resource_,
                                id_, a, b, flags_));
    }
  }

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  void end(std::uint64_t a = 0, std::uint64_t b = 0) noexcept {
    if (sink_ != nullptr && !ended_) {
      ended_ = true;
      sink_->record(TraceRecord(sim_.now(), TraceKind::kSpanEnd, track_, code_, resource_, id_,
                                a, b, flags_));
    }
  }

  ~SpanGuard() {
    if (sink_ != nullptr && !ended_) {
      sink_->record(TraceRecord(sim_.now(), TraceKind::kSpanEnd, track_, code_, resource_, id_,
                                0, 0, static_cast<std::uint8_t>(flags_ | kFlagFault)));
    }
  }

  std::uint64_t id() const noexcept { return id_; }

 private:
  sim::Simulation& sim_;
  TraceSink* sink_;
  std::uint64_t id_ = 0;
  TraceTrack track_;
  std::uint8_t code_;
  std::int32_t resource_;
  std::uint8_t flags_;
  bool ended_ = false;
};
// ppfs::endhot

}  // namespace ppfs::trace
