// Cold-side trace consumers: snapshotting, Chrome trace_event JSON export
// (Perfetto-loadable), and the compact binary dump used by --trace-last
// post-mortems. Nothing here runs during the simulation, so heap containers
// and iostreams are fine.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace ppfs::trace {

class TraceSink;

// Chronological copy of the retained records (oldest first; for a full ring
// that is the last `capacity` records).
std::vector<TraceRecord> snapshot(const TraceSink& sink);

// Stable virtual-thread id for a record's (track, resource) pair. One pid;
// each resource instance renders as its own named timeline row.
//   kernel=0, link=1000+id, disk=2000+id, server=3000+io, rpc=4000+rank,
//   prefetch=5000+rank.
std::int64_t chrome_tid(TraceTrack track, std::int32_t resource);

// Human name for that row, e.g. "kernel dispatch", "link 37", "disk
// scsi8-io2/d1", "rpc rank 5". Disk names come from the sink's resource
// registry.
std::string chrome_thread_name(const TraceSink& sink, TraceTrack track, std::int32_t resource);

// Chrome trace_event JSON-array format. Non-overlapping spans (capacity-1
// resources: mesh links, disks) emit "B"/"E" pairs on their tid; spans that
// can overlap (RPC envelopes, pipelined server sweeps) emit async "b"/"e"
// pairs keyed by the record's correlation id. Instants emit "i", counters
// "C", and every referenced tid gets a thread_name metadata record.
// Timestamps are simulated microseconds.
void write_chrome_json(const TraceSink& sink, std::ostream& out);
bool write_chrome_json_file(const TraceSink& sink, const std::string& path);

// Raw binary dump: "PPFSTRC1" magic, u64 record count, then the packed
// TraceRecord array. load_binary returns false on bad magic / short read.
void write_binary(const TraceSink& sink, std::ostream& out);
bool write_binary_file(const TraceSink& sink, const std::string& path);
bool load_binary(std::istream& in, std::vector<TraceRecord>& out);

}  // namespace ppfs::trace
