// Derived metrics computed from the raw trace records — the same records
// the exporters write, so the report and the trace can never disagree.
//
//  * per-resource utilization timelines: span busy-time bucketed over the
//    run, aggregated per track (mesh links, disks, server sweeps);
//  * RPC latency histograms: log2 (microsecond) buckets per RPC class plus
//    exact p50/p95/p99/max from the recorded envelopes;
//  * prefetch-buffer occupancy stats from the occupancy counter samples.
//
// Cold path only (post-run); percentiles are computed here directly rather
// than via sim's SampleSet so ppfs_trace stays dependency-free.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace ppfs::trace {

struct TrackUtilization {
  std::int32_t resources = 0;       // distinct resource instances seen
  std::uint64_t spans = 0;          // completed spans
  double busy_s = 0.0;              // total busy time across resources
  double avg = 0.0;                 // mean busy fraction over run x resources
  double peak = 0.0;                // max per-resource per-bucket fraction
  std::vector<double> buckets;      // per-bucket busy fraction (track mean)
};

struct LatencyStats {
  std::uint64_t count = 0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0, max = 0.0;
  // log2 histogram: bucket k counts latencies in [2^k, 2^(k+1)) microseconds
  // (bucket 0 also catches < 1us).
  std::array<std::uint64_t, 32> log2_us{};
};

struct OccupancyStats {
  std::uint64_t samples = 0;
  std::uint64_t min_buffers = 0, max_buffers = 0;
  double avg_buffers = 0.0;
  std::uint64_t max_bytes = 0;
  double avg_bytes = 0.0;
};

struct TraceMetrics {
  double t_end = 0.0;
  std::uint64_t kernel_dispatches = 0;
  // Utilization for the capacity-bounded tracks; indexed by TraceTrack.
  std::array<TrackUtilization, kTrackCount> utilization;
  // RPC latency by class: kRpcData..kRpcCoalesced at their code values,
  // kRpcToken in the fifth slot (codes 4/5 are the retry/give-up instants).
  std::array<LatencyStats, 5> rpc;
  std::uint64_t rpc_retries = 0;
  std::uint64_t rpc_give_ups = 0;
  OccupancyStats occupancy;
};

TraceMetrics compute_metrics(const std::vector<TraceRecord>& records, int buckets = 16);

// Render as the "trace metrics" report section (multi-line, trailing \n).
std::string format_metrics(const TraceMetrics& m);

}  // namespace ppfs::trace
