#include "trace/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

namespace ppfs::trace {

namespace {

bool utilization_track(TraceTrack t) {
  return t == TraceTrack::kMeshLink || t == TraceTrack::kDisk || t == TraceTrack::kServer;
}

const char* track_label(TraceTrack t) {
  switch (t) {
    case TraceTrack::kMeshLink: return "mesh-link";
    case TraceTrack::kDisk: return "disk";
    case TraceTrack::kServer: return "server";
    default: return "?";
  }
}

const char* rpc_class_label(std::size_t cls) {
  switch (cls) {
    case code::kRpcData: return "data";
    case code::kRpcMetadata: return "metadata";
    case code::kRpcPointer: return "pointer";
    case code::kRpcCoalesced: return "coalesced";
    default: return "token";
  }
}

// Span event codes are not dense (4/5 are the retry/give-up instants), so
// the latency-class index is an explicit remap: data..coalesced keep their
// code, kRpcToken lands in the fifth slot. -1 = not a latency class.
int rpc_class_index(std::uint8_t event) {
  if (event <= code::kRpcCoalesced) return static_cast<int>(event);
  if (event == code::kRpcToken) return 4;
  return -1;
}

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

// 2^k microseconds as a human label: 1us, 512us, 1.0ms, 2.1s, ...
std::string log2_bucket_label(std::size_t k) {
  const double us = std::ldexp(1.0, static_cast<int>(k));
  if (us < 1000.0) return fmt("%.0fus", us);
  if (us < 1e6) return fmt("%.1fms", us / 1000.0);
  return fmt("%.1fs", us / 1e6);
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

TraceMetrics compute_metrics(const std::vector<TraceRecord>& records, int buckets) {
  TraceMetrics m;
  if (buckets < 1) buckets = 1;
  for (const TraceRecord& r : records) m.t_end = std::max(m.t_end, r.ts);

  // Pair span begin/end records. Capacity-1 tracks carry id 0 and pair by
  // (track, resource) order; async spans pair by correlation id.
  using Key = std::pair<std::pair<int, std::int32_t>, std::uint64_t>;
  std::map<Key, double> open;
  // Per-(track, resource) per-bucket busy seconds.
  std::map<std::pair<int, std::int32_t>, std::vector<double>> busy;
  std::array<std::vector<double>, 5> rpc_latencies;

  const double span = m.t_end > 0.0 ? m.t_end : 1.0;
  const double width = span / buckets;

  const auto add_interval = [&](TraceTrack track, std::int32_t res, double b, double e) {
    auto& row = busy[{static_cast<int>(track), res}];
    if (row.empty()) row.assign(static_cast<std::size_t>(buckets), 0.0);
    auto& util = m.utilization[static_cast<std::size_t>(track)];
    ++util.spans;
    util.busy_s += e - b;
    int k0 = std::clamp(static_cast<int>(b / width), 0, buckets - 1);
    int k1 = std::clamp(static_cast<int>(e / width), 0, buckets - 1);
    for (int k = k0; k <= k1; ++k) {
      const double lo = std::max(b, k * width);
      const double hi = std::min(e, (k + 1) * width);
      if (hi > lo) row[static_cast<std::size_t>(k)] += hi - lo;
    }
  };

  for (const TraceRecord& r : records) {
    switch (r.kind) {
      case TraceKind::kSpanBegin:
        open[{{static_cast<int>(r.track), r.resource}, r.id}] = r.ts;
        break;
      case TraceKind::kSpanEnd: {
        const Key key{{static_cast<int>(r.track), r.resource}, r.id};
        auto it = open.find(key);
        if (it == open.end()) break;  // begin fell off a ring snapshot
        const double begin_ts = it->second;
        open.erase(it);
        if (utilization_track(r.track)) {
          add_interval(r.track, r.resource, begin_ts, r.ts);
        } else if (r.track == TraceTrack::kRpc) {
          const int cls = rpc_class_index(r.event);
          if (cls >= 0) rpc_latencies[static_cast<std::size_t>(cls)].push_back(r.ts - begin_ts);
        }
        break;
      }
      case TraceKind::kInstant:
        if (r.track == TraceTrack::kKernel) {
          ++m.kernel_dispatches;
        } else if (r.track == TraceTrack::kRpc) {
          if (r.event == code::kRpcRetry) ++m.rpc_retries;
          if (r.event == code::kRpcGiveUp) ++m.rpc_give_ups;
        }
        break;
      case TraceKind::kCounter:
        if (r.track == TraceTrack::kPrefetch && r.event == code::kPrefetchOccupancy) {
          auto& occ = m.occupancy;
          if (occ.samples == 0) {
            occ.min_buffers = occ.max_buffers = r.a;
          } else {
            occ.min_buffers = std::min(occ.min_buffers, r.a);
            occ.max_buffers = std::max(occ.max_buffers, r.a);
          }
          occ.max_bytes = std::max(occ.max_bytes, r.b);
          // Running means, so a long run does not overflow a sum.
          ++occ.samples;
          const double n = static_cast<double>(occ.samples);
          occ.avg_buffers += (static_cast<double>(r.a) - occ.avg_buffers) / n;
          occ.avg_bytes += (static_cast<double>(r.b) - occ.avg_bytes) / n;
        }
        break;
    }
  }

  // Aggregate per-resource busy rows into per-track timelines.
  for (auto& [key, row] : busy) {
    auto& util = m.utilization[static_cast<std::size_t>(key.first)];
    if (util.buckets.empty()) util.buckets.assign(static_cast<std::size_t>(buckets), 0.0);
    ++util.resources;
    for (std::size_t k = 0; k < row.size(); ++k) {
      const double frac = std::min(row[k] / width, 1.0);
      util.buckets[k] += frac;
      util.peak = std::max(util.peak, frac);
    }
  }
  for (auto& util : m.utilization) {
    if (util.resources == 0) continue;
    for (double& v : util.buckets) v /= util.resources;
    if (m.t_end > 0.0) util.avg = util.busy_s / (m.t_end * util.resources);
    util.avg = std::min(util.avg, 1.0);
  }

  for (std::size_t cls = 0; cls < rpc_latencies.size(); ++cls) {
    auto& lats = rpc_latencies[cls];
    auto& stats = m.rpc[cls];
    stats.count = lats.size();
    if (lats.empty()) continue;
    std::sort(lats.begin(), lats.end());
    stats.p50 = percentile(lats, 0.50);
    stats.p95 = percentile(lats, 0.95);
    stats.p99 = percentile(lats, 0.99);
    stats.max = lats.back();
    for (double s : lats) {
      const double us = s * 1e6;
      int k = us <= 1.0 ? 0 : static_cast<int>(std::floor(std::log2(us)));
      k = std::clamp(k, 0, static_cast<int>(stats.log2_us.size()) - 1);
      ++stats.log2_us[static_cast<std::size_t>(k)];
    }
  }
  return m;
}

std::string format_metrics(const TraceMetrics& m) {
  std::string out = "== trace metrics ==\n";
  out += "window: " + fmt("%.6f", m.t_end) + "s, kernel dispatches: " +
         std::to_string(m.kernel_dispatches) + "\n";

  bool any_util = false;
  for (auto t : {TraceTrack::kMeshLink, TraceTrack::kDisk, TraceTrack::kServer}) {
    const auto& util = m.utilization[static_cast<std::size_t>(t)];
    if (util.resources == 0) continue;
    if (!any_util) {
      out += "utilization (" + std::to_string(util.buckets.size()) +
             " buckets, busy fraction 0-9 per bucket):\n";
      any_util = true;
    }
    char head[128];
    std::snprintf(head, sizeof(head), "  %-9s %4d rows  avg %5.1f%%  peak %5.1f%%  [",
                  track_label(t), util.resources, util.avg * 100.0, util.peak * 100.0);
    out += head;
    for (double v : util.buckets) {
      const int d = std::clamp(static_cast<int>(v * 10.0), 0, 9);
      out += (v <= 0.0) ? '.' : static_cast<char>('0' + d);
    }
    out += "]\n";
  }

  bool any_rpc = false;
  for (std::size_t cls = 0; cls < m.rpc.size(); ++cls) {
    if (m.rpc[cls].count > 0) any_rpc = true;
  }
  if (any_rpc) {
    out += "rpc latency (per class, from issue->reply spans):\n";
    out += "  class      count      p50      p95      p99      max\n";
    for (std::size_t cls = 0; cls < m.rpc.size(); ++cls) {
      const auto& s = m.rpc[cls];
      if (s.count == 0) continue;
      char line[160];
      std::snprintf(line, sizeof(line), "  %-9s %6llu %7.1fus %7.1fus %7.1fus %7.1fus\n",
                    rpc_class_label(cls), static_cast<unsigned long long>(s.count),
                    s.p50 * 1e6, s.p95 * 1e6, s.p99 * 1e6, s.max * 1e6);
      out += line;
      out += "    log2:";
      for (std::size_t k = 0; k < s.log2_us.size(); ++k) {
        if (s.log2_us[k] == 0) continue;
        out += ' ';
        out += log2_bucket_label(k);
        out += ':';
        out += std::to_string(s.log2_us[k]);
      }
      out += "\n";
    }
    if (m.rpc_retries > 0 || m.rpc_give_ups > 0) {
      out += "  retries: " + std::to_string(m.rpc_retries) +
             ", give-ups: " + std::to_string(m.rpc_give_ups) + "\n";
    }
  }

  if (m.occupancy.samples > 0) {
    const auto& o = m.occupancy;
    char line[200];
    std::snprintf(line, sizeof(line),
                  "prefetch buffers: %llu samples, occupancy min %llu / avg %.1f / max %llu, "
                  "avg %.1fKB / peak %.1fKB resident\n",
                  static_cast<unsigned long long>(o.samples),
                  static_cast<unsigned long long>(o.min_buffers), o.avg_buffers,
                  static_cast<unsigned long long>(o.max_buffers), o.avg_bytes / 1024.0,
                  static_cast<double>(o.max_bytes) / 1024.0);
    out += line;
  }
  return out;
}

}  // namespace ppfs::trace
