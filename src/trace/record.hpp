// TraceScope record model: one fixed-size, trivially-copyable record per
// observed event, keyed by simulated time.
//
// Records come in three shapes:
//   * spans    — a Begin/End pair bracketing an interval (a wire transfer,
//                a disk service, an RPC issue->reply envelope);
//   * instants — a point event (a kernel dispatch, a prefetch hit/miss, an
//                RPC retry or give-up);
//   * counters — a sampled value (prefetch-buffer occupancy).
//
// Every record names a track (which subsystem emitted it) and a resource
// (which instance: link id, disk id, client rank, I/O index). Spans that
// cannot overlap on their resource (mesh links and disks are capacity-1)
// export as Chrome B/E events; spans that can overlap (RPCs in flight,
// pipelined server sweeps) carry a nonzero correlation id and export as
// async b/e pairs.
//
// This header is on the emit hot path: it must stay free of heap container
// types (enforced by ppfs_lint's trace-hot-path-alloc rule).
#pragma once

#include <cstdint>

namespace ppfs::trace {

enum class TraceKind : std::uint8_t {
  kSpanBegin = 0,
  kSpanEnd = 1,
  kInstant = 2,
  kCounter = 3,
};

enum class TraceTrack : std::uint8_t {
  kKernel = 0,    // resource: 0 (the one event loop)
  kMeshLink = 1,  // resource: directed link id (node*4 + direction)
  kDisk = 2,      // resource: id from TraceSink::register_resource
  kServer = 3,    // resource: I/O node index
  kRpc = 4,       // resource: client rank
  kPrefetch = 5,  // resource: client rank
};
inline constexpr int kTrackCount = 6;

// Per-track event codes (uint8_t so the record stays packed).
namespace code {
// kKernel instants.
inline constexpr std::uint8_t kDispatchCoroutine = 0;
inline constexpr std::uint8_t kDispatchCallback = 1;
// kMeshLink: wire-occupancy span per (link, transfer); yield instant when a
// segmented message releases a contended route between segments.
inline constexpr std::uint8_t kWire = 0;
inline constexpr std::uint8_t kSegmentYield = 1;
// kDisk spans (a = bytes, b = lba).
inline constexpr std::uint8_t kDiskRead = 0;
inline constexpr std::uint8_t kDiskWrite = 1;
// kDisk instant: transient error consumed mid-service.
inline constexpr std::uint8_t kDiskTransient = 2;
// kServer spans: one elevator sweep over a queued batch (a = extents), and
// one crash-recovery replay of the cache tier's journal (a = blocks
// recovered, b = crash epoch).
inline constexpr std::uint8_t kBatchSweep = 0;
inline constexpr std::uint8_t kRecovery = 1;
// kRpc spans: issue->reply envelopes, class-tagged to mirror RpcStats'
// per-class counters (a = payload bytes, b = peer node / io index).
inline constexpr std::uint8_t kRpcData = 0;
inline constexpr std::uint8_t kRpcMetadata = 1;
inline constexpr std::uint8_t kRpcPointer = 2;
inline constexpr std::uint8_t kRpcCoalesced = 3;
// kRpc instants: one per reissue (a = attempt) and one per terminal
// give-up (a = failures) — the post-mortem anchor for --trace-last.
inline constexpr std::uint8_t kRpcRetry = 4;
inline constexpr std::uint8_t kRpcGiveUp = 5;
// kRpc span: byte-range token acquisition round trip to the token manager
// (a = range bytes, b = file id). Mirrors RpcStats::token_rpcs 1:1.
inline constexpr std::uint8_t kRpcToken = 6;
// kPrefetch instants (a = offset, b = length) and the occupancy counter
// (a = resident buffers across fds, b = resident bytes).
inline constexpr std::uint8_t kPrefetchIssue = 0;
inline constexpr std::uint8_t kPrefetchHitReady = 1;
inline constexpr std::uint8_t kPrefetchHitInFlight = 2;
inline constexpr std::uint8_t kPrefetchMiss = 3;
inline constexpr std::uint8_t kPrefetchShed = 4;
inline constexpr std::uint8_t kPrefetchOccupancy = 5;
// Adaptive-depth controller: a per-fd readahead-depth counter track
// (a = fd, b = depth) and an instant at each depth transition
// (a = fd, b = new depth).
inline constexpr std::uint8_t kPrefetchDepth = 6;
inline constexpr std::uint8_t kPrefetchDepthChange = 7;
}  // namespace code

// Record flags.
inline constexpr std::uint8_t kFlagFault = 1;       // span ended by a fault/unwind
inline constexpr std::uint8_t kFlagSequential = 2;  // disk track-cache hit
inline constexpr std::uint8_t kFlagWrite = 4;       // write-direction transfer

struct TraceRecord {
  double ts = 0.0;         // simulated seconds
  std::uint64_t id = 0;    // span correlation id (0 = none / B-E paired by tid)
  std::uint64_t a = 0;     // payload, per-code meaning
  std::uint64_t b = 0;     // payload, per-code meaning
  std::int32_t resource = 0;
  TraceKind kind = TraceKind::kInstant;
  TraceTrack track = TraceTrack::kKernel;
  std::uint8_t event = 0;  // a code:: value, scoped by track
  std::uint8_t flags = 0;

  TraceRecord() = default;
  constexpr TraceRecord(double t, TraceKind k, TraceTrack tr, std::uint8_t code_,
                        std::int32_t res, std::uint64_t span_id = 0, std::uint64_t a_ = 0,
                        std::uint64_t b_ = 0, std::uint8_t flags_ = 0) noexcept
      : ts(t), id(span_id), a(a_), b(b_), resource(res), kind(k), track(tr), event(code_),
        flags(flags_) {}
};

static_assert(sizeof(TraceRecord) == 40, "TraceRecord must stay packed");

}  // namespace ppfs::trace
