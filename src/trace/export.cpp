#include "trace/export.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <ostream>
#include <utility>

#include "trace/sink.hpp"

namespace ppfs::trace {

namespace {

const char* event_name(TraceTrack track, std::uint8_t event) {
  switch (track) {
    case TraceTrack::kKernel:
      return event == code::kDispatchCoroutine ? "dispatch coroutine" : "dispatch callback";
    case TraceTrack::kMeshLink:
      return event == code::kWire ? "wire" : "segment yield";
    case TraceTrack::kDisk:
      if (event == code::kDiskRead) return "disk read";
      if (event == code::kDiskWrite) return "disk write";
      return "transient error";
    case TraceTrack::kServer:
      return "batch sweep";
    case TraceTrack::kRpc:
      switch (event) {
        case code::kRpcData: return "rpc data";
        case code::kRpcMetadata: return "rpc metadata";
        case code::kRpcPointer: return "rpc pointer";
        case code::kRpcCoalesced: return "rpc coalesced";
        case code::kRpcRetry: return "rpc retry";
        default: return "rpc give-up";
      }
    case TraceTrack::kPrefetch:
      switch (event) {
        case code::kPrefetchIssue: return "prefetch issue";
        case code::kPrefetchHitReady: return "prefetch hit (ready)";
        case code::kPrefetchHitInFlight: return "prefetch hit (in flight)";
        case code::kPrefetchMiss: return "prefetch miss";
        case code::kPrefetchShed: return "prefetch shed";
        case code::kPrefetchDepth: return "readahead depth";
        case code::kPrefetchDepthChange: return "depth change";
        default: return "buffer occupancy";
      }
  }
  return "?";
}

const char* track_category(TraceTrack track) {
  switch (track) {
    case TraceTrack::kKernel: return "kernel";
    case TraceTrack::kMeshLink: return "mesh";
    case TraceTrack::kDisk: return "disk";
    case TraceTrack::kServer: return "server";
    case TraceTrack::kRpc: return "rpc";
    case TraceTrack::kPrefetch: return "prefetch";
  }
  return "?";
}

// One JSON object per line; `first` tracks the leading comma.
class JsonLines {
 public:
  explicit JsonLines(std::ostream& out) : out_(out) { out_ << "[\n"; }
  ~JsonLines() { out_ << "\n]\n"; }
  std::ostream& next() {
    if (!first_) out_ << ",\n";
    first_ = false;
    return out_;
  }

 private:
  std::ostream& out_;
  bool first_ = true;
};

void write_common(std::ostream& out, const char* name, const char* cat, const char* phase,
                  std::int64_t tid, double ts_us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ts_us);
  out << "{\"name\":\"" << name << "\",\"cat\":\"" << cat << "\",\"ph\":\"" << phase
      << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << buf;
}

void write_args(std::ostream& out, const TraceRecord& r) {
  out << ",\"args\":{\"a\":" << r.a << ",\"b\":" << r.b
      << ",\"flags\":" << static_cast<unsigned>(r.flags) << "}";
}

}  // namespace

std::vector<TraceRecord> snapshot(const TraceSink& sink) {
  std::vector<TraceRecord> out;
  out.reserve(sink.size());
  for (std::size_t i = 0; i < sink.size(); ++i) out.push_back(sink.at(i));
  return out;
}

std::int64_t chrome_tid(TraceTrack track, std::int32_t resource) {
  return static_cast<std::int64_t>(track) * 1000 + resource;
}

std::string chrome_thread_name(const TraceSink& sink, TraceTrack track, std::int32_t resource) {
  switch (track) {
    case TraceTrack::kKernel:
      return "kernel dispatch";
    case TraceTrack::kMeshLink:
      return "link " + std::to_string(resource);
    case TraceTrack::kDisk:
      if (const char* name = sink.resource_name(track, resource)) {
        return std::string("disk ") + name;
      }
      return "disk " + std::to_string(resource);
    case TraceTrack::kServer:
      return "pfs-server io" + std::to_string(resource);
    case TraceTrack::kRpc:
      return "rpc rank " + std::to_string(resource);
    case TraceTrack::kPrefetch:
      return "prefetch rank " + std::to_string(resource);
  }
  return "?";
}

void write_chrome_json(const TraceSink& sink, std::ostream& out) {
  JsonLines lines(out);

  // Name every timeline row up front so Perfetto labels tracks even before
  // their first event.
  std::map<std::int64_t, std::pair<TraceTrack, std::int32_t>> rows;
  for (std::size_t i = 0; i < sink.size(); ++i) {
    const TraceRecord& r = sink.at(i);
    rows.emplace(chrome_tid(r.track, r.resource), std::make_pair(r.track, r.resource));
  }
  for (const auto& [tid, key] : rows) {
    lines.next() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
                 << ",\"args\":{\"name\":\"" << chrome_thread_name(sink, key.first, key.second)
                 << "\"}}";
  }

  for (std::size_t i = 0; i < sink.size(); ++i) {
    const TraceRecord& r = sink.at(i);
    const std::int64_t tid = chrome_tid(r.track, r.resource);
    const char* name = event_name(r.track, r.event);
    const char* cat = track_category(r.track);
    const double ts_us = r.ts * 1e6;
    std::ostream& o = lines.next();
    switch (r.kind) {
      case TraceKind::kSpanBegin:
      case TraceKind::kSpanEnd: {
        // id != 0 marks a span that may overlap others on its row (RPC
        // envelopes, pipelined sweeps): export async so Perfetto pairs by
        // id. id == 0 spans ride capacity-1 resources and pair strictly by
        // order on the row.
        const bool begin = r.kind == TraceKind::kSpanBegin;
        if (r.id != 0) {
          write_common(o, name, cat, begin ? "b" : "e", tid, ts_us);
          o << ",\"id\":\"" << r.id << "\"";
        } else {
          write_common(o, name, cat, begin ? "B" : "E", tid, ts_us);
        }
        write_args(o, r);
        o << "}";
        break;
      }
      case TraceKind::kInstant:
        write_common(o, name, cat, "i", tid, ts_us);
        o << ",\"s\":\"t\"";
        write_args(o, r);
        o << "}";
        break;
      case TraceKind::kCounter:
        write_common(o, name, cat, "C", tid, ts_us);
        if (r.track == TraceTrack::kPrefetch && r.event == code::kPrefetchDepth) {
          // Per-fd readahead depth from the adaptive controller.
          o << ",\"args\":{\"fd" << r.a << " depth\":" << r.b << "}}";
        } else {
          o << ",\"args\":{\"buffers\":" << r.a << ",\"bytes\":" << r.b << "}}";
        }
        break;
    }
  }
}

bool write_chrome_json_file(const TraceSink& sink, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_json(sink, out);
  return static_cast<bool>(out);
}

namespace {
constexpr char kMagic[8] = {'P', 'P', 'F', 'S', 'T', 'R', 'C', '1'};
}

void write_binary(const TraceSink& sink, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t n = sink.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (std::size_t i = 0; i < sink.size(); ++i) {
    const TraceRecord r = sink.at(i);
    out.write(reinterpret_cast<const char*>(&r), sizeof(r));
  }
}

bool write_binary_file(const TraceSink& sink, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  write_binary(sink, out);
  return static_cast<bool>(out);
}

bool load_binary(std::istream& in, std::vector<TraceRecord>& out) {
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) return false;
  out.clear();
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    TraceRecord r;
    in.read(reinterpret_cast<char*>(&r), sizeof(r));
    if (!in) return false;
    out.push_back(r);
  }
  return true;
}

}  // namespace ppfs::trace
