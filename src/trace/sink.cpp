#include "trace/sink.hpp"

#include <string>
#include <vector>

namespace ppfs::trace {

// Cold-side name table. Lives behind a pointer so sink.hpp never mentions a
// heap container (hot-path lint rule).
struct ResourceRegistry {
  std::vector<std::string> names[kTrackCount];
};

TraceSink::TraceSink(std::size_t ring_capacity)
    : registry_(std::make_unique<ResourceRegistry>()) {
  if (ring_capacity > 0) {
    ring_ = true;
    cap_ = ring_capacity;
    store_ = std::make_unique<TraceRecord[]>(cap_);
  }
}

TraceSink::~TraceSink() = default;

void TraceSink::grow() {
  const std::size_t next = cap_ == 0 ? 4096 : cap_ * 2;
  auto bigger = std::make_unique<TraceRecord[]>(next);
  for (std::size_t i = 0; i < count_; ++i) bigger[i] = store_[i];
  store_ = std::move(bigger);
  cap_ = next;
}

std::int32_t TraceSink::register_resource(TraceTrack track, const char* name) {
  auto& names = registry_->names[static_cast<int>(track)];
  names.emplace_back(name);
  return static_cast<std::int32_t>(names.size() - 1);
}

const char* TraceSink::resource_name(TraceTrack track, std::int32_t id) const {
  const auto& names = registry_->names[static_cast<int>(track)];
  if (id < 0 || static_cast<std::size_t>(id) >= names.size()) return nullptr;
  return names[static_cast<std::size_t>(id)].c_str();
}

}  // namespace ppfs::trace
