// TraceSink: an append-only store of TraceRecords, owned by the driver and
// observed (never consulted) by the simulation. Emitters hold a raw
// `TraceSink*` that is null when tracing is off, so the whole subsystem
// costs one pointer test per would-be record.
//
// Two storage modes share one code path:
//   * unbounded (capacity hint 0): the backing array doubles as needed —
//     the grow step is out-of-line so the inline fast path stays branchy
//     but allocation-free;
//   * ring (capacity N from --trace-last N): once full, the oldest record
//     is overwritten and `dropped()` counts what fell off the front. Used
//     for post-mortem dumps on fault give-up.
//
// This header is on the emit hot path: no heap containers or strings here
// (enforced by ppfs_lint's trace-hot-path-alloc rule). Anything needing
// std::string/std::vector lives in sink.cpp or export.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "trace/record.hpp"

namespace ppfs::trace {

struct ResourceRegistry;  // name table, defined out-of-line in sink.cpp

class TraceSink {
 public:
  // ring_capacity == 0: unbounded, growable. Otherwise a fixed ring of
  // that many records (the "last N" post-mortem window).
  explicit TraceSink(std::size_t ring_capacity = 0);
  ~TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // Hot path: append one record. Never throws; never reorders the caller.
  void record(const TraceRecord& r) noexcept {
    if (count_ == cap_) {
      if (ring_) {
        store_[head_] = r;
        head_ = (head_ + 1 == cap_) ? 0 : head_ + 1;
        ++dropped_;
        return;
      }
      grow();
    }
    store_[write_index()] = r;
    ++count_;
  }

  // Fresh correlation id for an async span (b/e pair). Monotone from 1.
  std::uint64_t new_span() noexcept { return ++span_seq_; }

  // Cold path: name a track-scoped resource (e.g. a disk) and get the id
  // to put in TraceRecord::resource. Names are copied into the registry.
  std::int32_t register_resource(TraceTrack track, const char* name);
  const char* resource_name(TraceTrack track, std::int32_t id) const;

  std::size_t size() const noexcept { return count_; }
  std::size_t dropped() const noexcept { return dropped_; }
  bool is_ring() const noexcept { return ring_; }
  std::size_t capacity() const noexcept { return cap_; }

  // Chronological read access: index 0 is the oldest retained record.
  const TraceRecord& at(std::size_t i) const noexcept {
    if (ring_ && count_ == cap_) {
      const std::size_t j = head_ + i;
      return store_[j >= cap_ ? j - cap_ : j];
    }
    return store_[i];
  }

 private:
  std::size_t write_index() const noexcept {
    if (ring_ && count_ == cap_) return head_;
    const std::size_t j = head_ + count_;
    return (ring_ && j >= cap_) ? j - cap_ : j;
  }
  void grow();  // out-of-line; doubles the unbounded store

  std::unique_ptr<TraceRecord[]> store_;
  std::size_t cap_ = 0;
  std::size_t count_ = 0;
  std::size_t head_ = 0;  // ring: index of the oldest record once full
  std::size_t dropped_ = 0;
  std::uint64_t span_seq_ = 0;
  bool ring_ = false;
  std::unique_ptr<ResourceRegistry> registry_;
};

}  // namespace ppfs::trace
