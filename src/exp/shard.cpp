#include "exp/shard.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>

#include "exp/sweep.hpp"
#include "sim/check/digest.hpp"

namespace ppfs::exp {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Slice `total` into `shards` near-equal parts: the first `total % shards`
/// shards get one extra. Deterministic in (total, shards) alone.
int slice_of(int total, int shards, int index) {
  const int base = total / shards;
  const int rem = total % shards;
  return base + (index < rem ? 1 : 0);
}

}  // namespace

bool ShardedScaleReport::all_ok() const noexcept {
  for (const auto& s : shards) {
    if (!s.error.empty()) return false;
  }
  return true;
}

ShardedScaleReport run_sharded_scale(const workload::MachineSpec& machine,
                                     const workload::OpenArrivalSpec& spec,
                                     int shards, int jobs) {
  if (shards < 1) throw std::invalid_argument("sharded-scale: shards < 1");
  if (machine.ncompute < shards || machine.nio < shards) {
    throw std::invalid_argument(
        "sharded-scale: every shard needs at least one compute and one I/O node");
  }
  ShardedScaleReport report;
  report.jobs = jobs < 1 ? 1 : jobs;
  report.shards.resize(static_cast<std::size_t>(shards));

  // The partition and per-shard seeds are fixed up front, before any
  // thread runs: worker count can only reorder execution, not change what
  // each shard simulates.
  for (int i = 0; i < shards; ++i) {
    auto& s = report.shards[static_cast<std::size_t>(i)];
    s.index = i;
    s.ncompute = slice_of(machine.ncompute, shards, i);
    s.nio = slice_of(machine.nio, shards, i);
  }

  const auto t0 = std::chrono::steady_clock::now();
  for_each_index(static_cast<std::size_t>(shards), report.jobs, [&](std::size_t i) {
    auto& s = report.shards[i];
    workload::MachineSpec m = machine;
    m.ncompute = s.ncompute;
    m.nio = s.nio;
    workload::OpenArrivalSpec w = spec;
    w.seed = spec.seed + static_cast<std::uint64_t>(s.index);
    const auto shard_t0 = std::chrono::steady_clock::now();
    try {
      s.result = workload::run_open_arrival(m, w);
    } catch (const std::exception& e) {
      s.error = e.what();
    } catch (...) {
      s.error = "unknown error";
    }
    s.seconds = seconds_since(shard_t0);
  });
  report.seconds = seconds_since(t0);

  // Merge in shard order — shard order is fixed, so every merged field
  // (including the digest-of-digests) is independent of jobs.
  sim::check::Fnv1a64 merged;
  for (const auto& s : report.shards) {
    if (!s.ok()) continue;
    report.issued += s.result.issued;
    report.completed += s.result.completed;
    report.app_errors += s.result.app_errors;
    report.total_bytes += s.result.total_bytes;
    report.events_dispatched += s.result.events_dispatched;
    report.peak_pending_events =
        std::max(report.peak_pending_events, s.result.peak_pending_events);
    report.machine_state_bytes += s.result.machine_state_bytes;
    report.latencies.merge(s.result.latencies);
    merged.mix_u64(s.result.digest);
  }
  report.merged_digest = merged.value();
  return report;
}

}  // namespace ppfs::exp
