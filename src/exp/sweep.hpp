// SweepRunner: fan a batch of independent experiments across a thread pool.
//
// Every (machine, workload) job is a complete, self-contained simulation —
// Experiment::run builds a fresh machine, runs it on one Simulation, and
// tears it down — so a sweep of N scenarios is embarrassingly parallel at
// the scenario level while each simulation stays single-threaded and
// deterministic. The runner hands jobs to `jobs` worker threads through an
// atomic claim counter and writes each outcome into its submission-order
// slot, so the merged report is byte-identical whether it ran with one
// worker or sixteen: same labels, same order, and (the determinism
// contract) the same kernel digest per scenario as a serial run.
//
// The single-thread discipline the kernel relies on is preserved: a
// Simulation is created, driven and destroyed on one worker thread, and the
// FrameArena backing coroutine frames and boxed callbacks is thread-local,
// so workers never contend on the hot-path allocator.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "workload/experiment.hpp"

namespace ppfs::exp {

/// The sweep's scheduling primitive, exposed for other fan-out runners
/// (ShardedScale reuses it): run fn(0..n-1) on up to `workers` threads via
/// an atomic claim counter. Each index is visited exactly once; with
/// workers <= 1 the calls happen in order on the calling thread (the
/// serial digest baseline). fn must be safe to call concurrently for
/// distinct indices and must not throw — wrap per-index errors into the
/// slot it writes, like SweepOutcome::error does.
void for_each_index(std::size_t n, int workers,
                    const std::function<void(std::size_t)>& fn);

/// One scenario of a sweep: a label for reporting plus the full machine
/// and workload description.
struct SweepJob {
  std::string label;
  workload::MachineSpec machine;
  workload::WorkloadSpec work;
};

/// The result of one job. `error` is non-empty when the experiment threw
/// (the sweep keeps going; the report carries the message).
struct SweepOutcome {
  std::string label;
  workload::ExperimentResult result;
  double seconds = 0;  ///< host wall-clock spent inside this job
  std::string error;
  bool ok() const noexcept { return error.empty(); }
};

/// All outcomes in submission order, independent of worker count and of
/// the order jobs happened to finish.
struct SweepReport {
  std::vector<SweepOutcome> outcomes;
  double seconds = 0;  ///< host wall-clock for the whole sweep
  int jobs = 1;        ///< worker count the sweep ran with
  bool all_ok() const noexcept;
};

class SweepRunner {
 public:
  /// `jobs` < 1 is clamped to 1 (serial, runs on the calling thread).
  explicit SweepRunner(int jobs = 1) noexcept : jobs_(jobs < 1 ? 1 : jobs) {}

  int jobs() const noexcept { return jobs_; }

  SweepReport run(const std::vector<SweepJob>& batch) const;

  /// std::thread::hardware_concurrency, or 1 when the platform reports 0.
  static int default_jobs() noexcept;

 private:
  int jobs_;
};

/// Convenience wrapper: SweepRunner(workers).run(batch).
SweepReport run_sweep(const std::vector<SweepJob>& batch, int workers);

/// The paper's Table-1-style scenario grid over `base`: each of the five
/// per-node request sizes (64KB..1MB) with prefetching off and on.
/// request_size/file_size/prefetch of `base` are overwritten per job; the
/// file is sized for `rounds` collective rounds (floored at 4MB, like the
/// bench harnesses).
std::vector<SweepJob> paper_table_jobs(const workload::MachineSpec& machine,
                                       const workload::WorkloadSpec& base,
                                       int rounds = 8);

}  // namespace ppfs::exp
