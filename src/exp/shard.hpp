// ShardedScale: split one giant open-arrival scenario across node-
// partitioned shards and run the shards through the sweep's thread pool.
//
// A 1024x256 machine is one Simulation — single-threaded by the kernel's
// design — so the way to put a multi-core host behind it is to partition
// the *machine*: shard i simulates its slice of the compute and I/O nodes
// as a self-contained sub-machine with its own tenant files and its own
// seed (base + i). The partition is computed once, deterministically, from
// (spec, shards); worker count only changes which thread runs a shard,
// never what the shard is. Each shard's kernel digest is therefore
// byte-identical for any --jobs, and the report's merged digest — FNV-1a
// over the shard digests in shard order — is too. That merged digest is
// the gate ppfs_perf checks when it reruns the same partition with
// different worker counts.
//
// What sharding gives up is cross-shard interference (a shard's clients
// only contend with the other clients of the same shard), which is exactly
// the trade the open-arrival workload can afford: clients are pinned to
// tenants, tenants are striped within a shard, and arrivals are
// independent Poisson streams, so no simulated message ever needed to
// cross a shard boundary in the first place.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/open_arrival.hpp"

namespace ppfs::exp {

/// One shard's slice of the partitioned machine plus its outcome.
struct ScaleShardOutcome {
  int index = 0;
  int ncompute = 0;
  int nio = 0;
  workload::OpenArrivalResult result;
  double seconds = 0;  ///< host wall-clock spent inside this shard
  std::string error;
  bool ok() const noexcept { return error.empty(); }
};

struct ShardedScaleReport {
  std::vector<ScaleShardOutcome> shards;  // shard-index order, always
  int jobs = 1;
  double seconds = 0;  ///< host wall-clock for the whole sharded run

  // Merged across shards (sums; peak_pending is the max over shards since
  // shards may run concurrently on distinct Simulations).
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t app_errors = 0;
  sim::ByteCount total_bytes = 0;
  std::uint64_t events_dispatched = 0;
  std::uint64_t peak_pending_events = 0;
  std::uint64_t machine_state_bytes = 0;
  sim::StreamingQuantiles latencies;
  /// FNV-1a over the per-shard kernel digests in shard order: identical
  /// for any worker count, the sharded run's determinism contract.
  std::uint64_t merged_digest = 0;

  bool all_ok() const noexcept;
};

/// Partition `machine` (its ncompute/nio) into `shards` node-disjoint
/// sub-machines and run `spec` on each, `jobs` shards at a time. Shard i
/// seeds its workload with spec.seed + i. Requires every shard to get at
/// least one compute and one I/O node.
ShardedScaleReport run_sharded_scale(const workload::MachineSpec& machine,
                                     const workload::OpenArrivalSpec& spec,
                                     int shards, int jobs);

}  // namespace ppfs::exp
