#include "exp/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "workload/report.hpp"

namespace ppfs::exp {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

SweepOutcome run_one(const SweepJob& job) {
  SweepOutcome out;
  out.label = job.label;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    out.result = workload::Experiment(job.machine).run(job.work);
  } catch (const std::exception& e) {
    out.error = e.what();
  } catch (...) {
    out.error = "unknown error";
  }
  out.seconds = seconds_since(t0);
  return out;
}

}  // namespace

void for_each_index(std::size_t n, int workers, const std::function<void(std::size_t)>& fn) {
  const int effective =
      static_cast<int>(std::min<std::size_t>(workers < 1 ? 1 : static_cast<std::size_t>(workers), n));
  if (effective <= 1) {
    // Serial reference path: index order on the calling thread. This is
    // the digest baseline every parallel run must reproduce exactly.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Work-stealing-free pool: each worker claims the next unstarted index
  // through the atomic counter; per-index output slots are disjoint, so
  // the merge is lock-free and submission-ordered no matter which worker
  // finishes first.
  std::atomic<std::size_t> next{0};
  const auto work = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(effective));
  for (int w = 0; w < effective; ++w) pool.emplace_back(work);
  for (auto& t : pool) t.join();
}

bool SweepReport::all_ok() const noexcept {
  for (const auto& o : outcomes) {
    if (!o.error.empty()) return false;
  }
  return true;
}

int SweepRunner::default_jobs() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

SweepReport SweepRunner::run(const std::vector<SweepJob>& batch) const {
  SweepReport report;
  report.jobs = jobs_;
  report.outcomes.resize(batch.size());
  const auto t0 = std::chrono::steady_clock::now();
  for_each_index(batch.size(), jobs_,
                 [&](std::size_t i) { report.outcomes[i] = run_one(batch[i]); });
  report.seconds = seconds_since(t0);
  return report;
}

SweepReport run_sweep(const std::vector<SweepJob>& batch, int workers) {
  return SweepRunner(workers).run(batch);
}

std::vector<SweepJob> paper_table_jobs(const workload::MachineSpec& machine,
                                       const workload::WorkloadSpec& base, int rounds) {
  const sim::ByteCount sizes[] = {64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024,
                                  1024 * 1024};
  std::vector<SweepJob> jobs;
  jobs.reserve(std::size(sizes) * 2);
  for (const sim::ByteCount req : sizes) {
    for (const bool prefetch : {false, true}) {
      SweepJob job;
      job.machine = machine;
      job.work = base;
      job.work.request_size = req;
      job.work.file_size = std::max<sim::ByteCount>(
          req * static_cast<sim::ByteCount>(machine.ncompute) * rounds,
          4 * 1024 * 1024);
      job.work.prefetch = prefetch;
      job.label =
          workload::fmt_bytes(req) + (prefetch ? " prefetch" : " no-prefetch");
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

}  // namespace ppfs::exp
