// RPC retry policy: bounded exponential backoff with deterministic jitter.
//
// The policy lives in PfsParams so one knob set covers every client; the
// jitter stream comes from a per-client sim::Rng so two clients backing off
// the same fault desynchronize (no retry convoys) while the whole schedule
// stays reproducible for a fixed seed.
#pragma once

#include <cstdint>

#include "sim/random.hpp"
#include "sim/types.hpp"

namespace ppfs::fault {

struct RetryPolicy {
  std::uint32_t max_retries = 6;         // reissues after the first attempt
  sim::SimTime base_backoff_s = 0.002;   // first backoff step
  double multiplier = 2.0;               // exponential growth per attempt
  double jitter = 0.25;                  // +/- fraction of the step
  sim::SimTime max_backoff_s = 0.1;      // cap on any single step
  sim::SimTime total_budget_s = 2.0;     // per-request deadline, incl. recovery waits
};

/// Backoff delay before reissue number `attempt` (0-based: the delay taken
/// after the first failure). Deterministic given the Rng stream.
sim::SimTime backoff_delay(const RetryPolicy& p, std::uint32_t attempt, sim::Rng& rng);

}  // namespace ppfs::fault
