#include "fault/retry.hpp"

#include <algorithm>

namespace ppfs::fault {

sim::SimTime backoff_delay(const RetryPolicy& p, std::uint32_t attempt, sim::Rng& rng) {
  double step = p.base_backoff_s;
  for (std::uint32_t i = 0; i < attempt && step < p.max_backoff_s; ++i) {
    step *= p.multiplier;
  }
  step = std::min(step, static_cast<double>(p.max_backoff_s));
  const double spread = p.jitter > 0 ? rng.uniform(-p.jitter, p.jitter) : 0.0;
  // Clamp AFTER applying jitter: once step has saturated at max_backoff_s, a
  // positive jitter draw would otherwise push the delay up to
  // (1 + jitter) * max_backoff_s, and jitter >= 1 could go negative.
  return std::clamp(step * (1.0 + spread), 0.0, static_cast<double>(p.max_backoff_s));
}

}  // namespace ppfs::fault
