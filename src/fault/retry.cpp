#include "fault/retry.hpp"

#include <algorithm>

namespace ppfs::fault {

sim::SimTime backoff_delay(const RetryPolicy& p, std::uint32_t attempt, sim::Rng& rng) {
  double step = p.base_backoff_s;
  for (std::uint32_t i = 0; i < attempt && step < p.max_backoff_s; ++i) {
    step *= p.multiplier;
  }
  step = std::min(step, static_cast<double>(p.max_backoff_s));
  const double spread = p.jitter > 0 ? rng.uniform(-p.jitter, p.jitter) : 0.0;
  return std::max(step * (1.0 + spread), 0.0);
}

}  // namespace ppfs::fault
