// Typed fault errors.
//
// FaultError is the only exception type the recovery machinery treats as
// survivable: the RPC reliability envelope retries it, the RAID array maps
// a lost member onto parity reconstruction instead of raising it, and
// best-effort consumers (readahead, prefetch reaping) may absorb it after
// accounting. Every other exception type keeps the seed's "a lost process
// is a model bug" policy and stays fatal to the run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace ppfs::fault {

/// Root-cause classification, carried end to end so per-layer error causes
/// can be reported without string matching.
enum class ErrorCause : std::uint8_t {
  kDiskTransient,  // transient medium/controller error; a retry usually heals it
  kDiskFailed,     // member set unreadable even with parity reconstruction
  kNodeDown,       // target I/O node is crashed (or crashed mid-service)
  kRpcTimeout,     // retry budget / request deadline exhausted
};

inline constexpr std::size_t kErrorCauseCount = 4;

inline const char* to_string(ErrorCause c) noexcept {
  switch (c) {
    case ErrorCause::kDiskTransient: return "disk-transient";
    case ErrorCause::kDiskFailed: return "disk-failed";
    case ErrorCause::kNodeDown: return "node-down";
    case ErrorCause::kRpcTimeout: return "rpc-timeout";
  }
  return "unknown";
}

class FaultError : public std::runtime_error {
 public:
  FaultError(ErrorCause cause, const std::string& detail)
      : std::runtime_error(std::string(to_string(cause)) + ": " + detail), cause_(cause) {}

  ErrorCause cause() const noexcept { return cause_; }

 private:
  ErrorCause cause_;
};

}  // namespace ppfs::fault
