// Cross-layer fault/recovery summary, aggregated by workload::Experiment
// from the client RPC envelopes, RAID arrays, disks, and prefetch engines
// so one struct answers "what went wrong and how was it absorbed".
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace ppfs::fault {

struct FaultSummary {
  std::uint64_t injected_events = 0;      // primitive injections armed
  std::uint64_t disk_transients = 0;      // transient errors fired by disks
  std::uint64_t reconstructed_reads = 0;  // RAID reads served via parity
  std::uint64_t degraded_writes = 0;      // writes to an array with a lost member
  std::uint64_t rpc_retries = 0;          // RPC reissues after a failed attempt
  std::uint64_t rpc_down_waits = 0;       // recovery waits on a down I/O node
  std::uint64_t rpc_timeouts = 0;         // recovery waits that hit the deadline
  std::uint64_t terminal_errors = 0;      // RPCs that exhausted the budget
  std::uint64_t shed_prefetches = 0;      // prefetch buffers dropped under faults
  std::uint64_t stale_epoch_discards = 0; // prefetch buffers refused: dead crash epoch
  std::uint64_t app_errors = 0;           // FaultErrors that reached application code
  std::uint64_t node_recoveries = 0;      // cache-tier journal replays after restarts
  sim::SimTime backoff_time = 0;          // summed backoff sleeps
  sim::SimTime recovery_wait_time = 0;    // summed waits for node restart
  sim::SimTime node_recovery_time = 0;    // summed tier-journal replay time

  bool any() const {
    return injected_events || disk_transients || reconstructed_reads || degraded_writes ||
           rpc_retries || rpc_down_waits || rpc_timeouts || terminal_errors ||
           shed_prefetches || stale_epoch_discards || app_errors || node_recoveries;
  }
};

}  // namespace ppfs::fault
