#include "fault/injector.hpp"

#include <cstddef>
#include <vector>

namespace ppfs::fault {

int FaultInjector::arm(const FaultPlan& plan, sim::SimTime base) {
  const int before = injected_;
  for (const FaultEvent& ev : plan.events) arm_one(ev, base);
  if (plan.chaos_seed != 0) {
    const int members = machine_.io_node_count() > 0
                            ? static_cast<int>(machine_.raid(0).member_count())
                            : 0;
    for (const FaultEvent& ev :
         chaos_expand(plan, machine_.io_node_count(), members)) {
      arm_one(ev, base);
    }
  }
  return injected_ - before;
}

void FaultInjector::arm_one(const FaultEvent& ev, sim::SimTime base) {
  auto& sim = machine_.simulation();

  std::vector<int> ios;
  if (ev.io_index < 0) {
    for (int i = 0; i < machine_.io_node_count(); ++i) ios.push_back(i);
  } else {
    ios.push_back(ev.io_index);
  }

  for (int io : ios) {
    hw::RaidArray& raid = machine_.raid(io);
    std::vector<std::size_t> members;
    if (ev.member < 0) {
      for (std::size_t m = 0; m < raid.member_count(); ++m) members.push_back(m);
    } else {
      members.push_back(static_cast<std::size_t>(ev.member));
    }

    switch (ev.kind) {
      case FaultKind::kDiskTransient:
        for (std::size_t m : members) {
          raid.member(m).inject_transient_errors(base + ev.at, base + ev.until,
                                                 ev.max_errors);
        }
        break;
      case FaultKind::kDiskSlow:
        for (std::size_t m : members) {
          raid.member(m).inject_slowdown(ev.factor, base + ev.at, base + ev.until);
        }
        break;
      case FaultKind::kDiskFail: {
        // One member lost (a plan asking for "all" loses member 0 — losing
        // every member is not a survivable fault, it is a dead array).
        const std::size_t m = ev.member < 0 ? 0 : static_cast<std::size_t>(ev.member);
        sim.call_at(base + ev.at, [&raid, m] { raid.fail_member(m); });
        if (ev.outage > 0) {
          sim.call_at(base + ev.at + ev.outage, [&raid, m] { raid.restore_member(m); });
        }
        break;
      }
      case FaultKind::kNodeCrash: {
        pfs::PfsServer& srv = fs_.server(io);
        sim.call_at(base + ev.at, [&srv] { srv.crash(); });
        sim.call_at(base + ev.at + ev.outage, [&srv] { srv.restore(); });
        break;
      }
      case FaultKind::kLinkDegrade:
        machine_.mesh().inject_node_slowdown(machine_.io_node(io), ev.factor,
                                             base + ev.at, base + ev.until);
        break;
    }
    ++injected_;
  }
}

}  // namespace ppfs::fault
