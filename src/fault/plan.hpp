// FaultPlan: a deterministic, seed-driven schedule of fault events.
//
// A plan is either written out explicitly —
//
//   "crash:io=1,at=0.1,outage=0.15;transient:io=0,from=0,until=0.3,max=4"
//
// — or generated from a seed ("seed=42,events=5,horizon=0.5"), in which
// case the concrete events are derived from the seed with sim::Rng at arm
// time (when the machine shape is known). Either way, the same (seed, plan)
// replays the identical fault schedule, so the SimCheck determinism digest
// holds across runs.
//
// Event times are relative to the moment the plan is armed (the start of
// the read phase in workload::Experiment), not absolute simulation time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace ppfs::fault {

enum class FaultKind : std::uint8_t {
  kDiskFail,       // member lost at `at`; optional restore after `outage`
  kDiskTransient,  // up to `max_errors` transient errors in [at, until)
  kDiskSlow,       // service-time multiplier `factor` in [at, until)
  kNodeCrash,      // I/O node down at `at`, restarted after `outage`
  kLinkDegrade,    // mesh links at the I/O node slowed by `factor` in [at, until)
};

const char* to_string(FaultKind k) noexcept;

struct FaultEvent {
  FaultKind kind = FaultKind::kDiskTransient;
  int io_index = 0;    // target I/O node; -1 = every I/O node
  int member = -1;     // RAID member for disk kinds; -1 = every member
  sim::SimTime at = 0;       // window start / trigger time
  sim::SimTime until = 0;    // window end (window kinds)
  sim::SimTime outage = 0;   // kNodeCrash: down time; kDiskFail: 0 = never restored
  double factor = 1.0;       // slowdown multiplier (kDiskSlow, kLinkDegrade)
  std::uint64_t max_errors = ~0ull;  // kDiskTransient cap
};

struct FaultPlan {
  std::vector<FaultEvent> events;  // explicit events

  // Chaos mode: seed != 0 generates `chaos_events` additional events over
  // [0, chaos_horizon) at arm time, constrained to survivable faults.
  std::uint64_t chaos_seed = 0;
  int chaos_events = 4;
  sim::SimTime chaos_horizon = 0.5;

  bool empty() const { return events.empty() && chaos_seed == 0; }
  std::string summary() const;
};

/// Parse the `--faults` grammar: ';'-separated events, each
/// "kind:key=value,..." — or "seed=S[,events=N][,horizon=T]" for chaos
/// mode. Throws std::invalid_argument on malformed input.
FaultPlan parse_plan(const std::string& text);

/// Expand the chaos portion of a plan into concrete events for a machine
/// with `nio` I/O nodes of `members` RAID members each. Deterministic in
/// plan.chaos_seed; generated faults are survivable by construction (at
/// most one member failure per array, outages well under the default retry
/// budget).
std::vector<FaultEvent> chaos_expand(const FaultPlan& plan, int nio, int members);

}  // namespace ppfs::fault
