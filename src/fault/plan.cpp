#include "fault/plan.hpp"

#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "sim/random.hpp"

namespace ppfs::fault {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(s);
  while (std::getline(in, item, sep)) out.push_back(trim(item));
  return out;
}

using KvMap = std::map<std::string, std::string>;

KvMap parse_kv(const std::vector<std::string>& fields, const std::string& ctx) {
  KvMap kv;
  for (const auto& f : fields) {
    if (f.empty()) continue;
    const auto eq = f.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("fault plan: expected key=value in '" + f + "' (" + ctx + ")");
    }
    kv[trim(f.substr(0, eq))] = trim(f.substr(eq + 1));
  }
  return kv;
}

double take_num(KvMap& kv, const std::string& key, double fallback, bool required,
                const std::string& ctx) {
  auto it = kv.find(key);
  if (it == kv.end()) {
    if (required) throw std::invalid_argument("fault plan: missing '" + key + "' in " + ctx);
    return fallback;
  }
  const std::string text = it->second;
  kv.erase(it);
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("fault plan: bad number for '" + key + "': '" + text + "'");
  }
}

int take_index(KvMap& kv, const std::string& key, int fallback, bool required,
               const std::string& ctx) {
  auto it = kv.find(key);
  if (it != kv.end() && it->second == "all") {
    kv.erase(it);
    return -1;
  }
  return static_cast<int>(take_num(kv, key, fallback, required, ctx));
}

void reject_leftovers(const KvMap& kv, const std::string& ctx) {
  if (!kv.empty()) {
    throw std::invalid_argument("fault plan: unknown key '" + kv.begin()->first + "' in " + ctx);
  }
}

FaultEvent parse_event(const std::string& kind_name, KvMap kv) {
  FaultEvent ev;
  if (kind_name == "diskfail") {
    ev.kind = FaultKind::kDiskFail;
    ev.io_index = take_index(kv, "io", 0, true, kind_name);
    ev.member = take_index(kv, "member", 0, false, kind_name);
    if (ev.member < 0) {
      throw std::invalid_argument("fault plan: diskfail needs a single member (not 'all')");
    }
    ev.at = take_num(kv, "at", 0, false, kind_name);
    const double restore = take_num(kv, "restore", 0, false, kind_name);
    if (restore > 0 && restore <= ev.at) {
      throw std::invalid_argument("fault plan: diskfail restore must be after at");
    }
    ev.outage = restore > 0 ? restore - ev.at : 0;
  } else if (kind_name == "transient") {
    ev.kind = FaultKind::kDiskTransient;
    ev.io_index = take_index(kv, "io", 0, true, kind_name);
    ev.member = take_index(kv, "member", -1, false, kind_name);
    ev.at = take_num(kv, "from", 0, false, kind_name);
    ev.until = take_num(kv, "until", 0, true, kind_name);
    ev.max_errors = static_cast<std::uint64_t>(take_num(kv, "max", 1, false, kind_name));
  } else if (kind_name == "slow") {
    ev.kind = FaultKind::kDiskSlow;
    ev.io_index = take_index(kv, "io", 0, true, kind_name);
    ev.member = take_index(kv, "member", -1, false, kind_name);
    ev.at = take_num(kv, "from", 0, false, kind_name);
    ev.until = take_num(kv, "until", 0, true, kind_name);
    ev.factor = take_num(kv, "factor", 4.0, false, kind_name);
  } else if (kind_name == "crash") {
    ev.kind = FaultKind::kNodeCrash;
    ev.io_index = take_index(kv, "io", 0, true, kind_name);
    ev.at = take_num(kv, "at", 0, false, kind_name);
    ev.outage = take_num(kv, "outage", 0.1, true, kind_name);
  } else if (kind_name == "link") {
    ev.kind = FaultKind::kLinkDegrade;
    ev.io_index = take_index(kv, "io", 0, true, kind_name);
    ev.at = take_num(kv, "from", 0, false, kind_name);
    ev.until = take_num(kv, "until", 0, true, kind_name);
    ev.factor = take_num(kv, "factor", 10.0, false, kind_name);
  } else {
    throw std::invalid_argument("fault plan: unknown event kind '" + kind_name + "'");
  }
  reject_leftovers(kv, kind_name);
  return ev;
}

}  // namespace

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kDiskFail: return "diskfail";
    case FaultKind::kDiskTransient: return "transient";
    case FaultKind::kDiskSlow: return "slow";
    case FaultKind::kNodeCrash: return "crash";
    case FaultKind::kLinkDegrade: return "link";
  }
  return "unknown";
}

std::string FaultPlan::summary() const {
  std::ostringstream out;
  if (chaos_seed != 0) {
    out << "chaos(seed=" << chaos_seed << ", events=" << chaos_events
        << ", horizon=" << chaos_horizon << "s)";
    if (!events.empty()) out << " + ";
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i) out << "; ";
    const auto& e = events[i];
    out << to_string(e.kind) << "[io=" << e.io_index;
    if (e.member >= 0) out << ", member=" << e.member;
    out << ", t=" << e.at;
    if (e.until > 0) out << ".." << e.until;
    if (e.outage > 0) out << ", outage=" << e.outage;
    out << "]";
  }
  return out.str();
}

FaultPlan parse_plan(const std::string& text) {
  FaultPlan plan;
  for (const auto& part : split(text, ';')) {
    if (part.empty()) continue;
    const auto colon = part.find(':');
    if (colon == std::string::npos) {
      // Chaos form: bare key=value pairs, seed required.
      auto kv = parse_kv(split(part, ','), "chaos");
      plan.chaos_seed = static_cast<std::uint64_t>(take_num(kv, "seed", 0, true, "chaos"));
      if (plan.chaos_seed == 0) {
        throw std::invalid_argument("fault plan: chaos seed must be nonzero");
      }
      plan.chaos_events = static_cast<int>(take_num(kv, "events", 4, false, "chaos"));
      plan.chaos_horizon = take_num(kv, "horizon", 0.5, false, "chaos");
      reject_leftovers(kv, "chaos");
      continue;
    }
    const std::string kind_name = trim(part.substr(0, colon));
    plan.events.push_back(
        parse_event(kind_name, parse_kv(split(part.substr(colon + 1), ','), kind_name)));
  }
  if (plan.empty()) throw std::invalid_argument("fault plan: empty plan");
  return plan;
}

std::vector<FaultEvent> chaos_expand(const FaultPlan& plan, int nio, int members) {
  std::vector<FaultEvent> out;
  if (plan.chaos_seed == 0 || nio <= 0 || members <= 0) return out;
  sim::Rng rng(plan.chaos_seed);
  const sim::SimTime horizon = plan.chaos_horizon;
  std::vector<bool> member_lost(static_cast<std::size_t>(nio), false);
  for (int i = 0; i < plan.chaos_events; ++i) {
    FaultEvent ev;
    ev.io_index = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(nio - 1)));
    const sim::SimTime start = rng.uniform(0.02, 0.75) * horizon;
    const sim::SimTime span = rng.uniform(0.1, 0.3) * horizon;
    const double roll = rng.uniform01();
    if (roll < 0.30) {
      ev.kind = FaultKind::kDiskTransient;
      ev.member = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(members - 1)));
      ev.at = start;
      ev.until = start + span;
      ev.max_errors = rng.uniform_int(1, 4);
    } else if (roll < 0.55) {
      ev.kind = FaultKind::kDiskSlow;
      ev.member = -1;
      ev.at = start;
      ev.until = start + span;
      ev.factor = rng.uniform(2.0, 8.0);
    } else if (roll < 0.75) {
      ev.kind = FaultKind::kNodeCrash;
      ev.at = start;
      // Survivable by construction: the outage stays far below the default
      // 2 s request budget, so clients out-wait it and recover.
      ev.outage = rng.uniform(0.02, 0.25);
    } else if (roll < 0.90 && members >= 2 &&
               !member_lost[static_cast<std::size_t>(ev.io_index)]) {
      ev.kind = FaultKind::kDiskFail;
      // One lost member per array keeps parity reconstruction possible.
      member_lost[static_cast<std::size_t>(ev.io_index)] = true;
      ev.member = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(members - 2)));
      ev.at = start;
    } else {
      ev.kind = FaultKind::kLinkDegrade;
      ev.at = start;
      ev.until = start + span;
      ev.factor = rng.uniform(4.0, 16.0);
    }
    out.push_back(ev);
  }
  return out;
}

}  // namespace ppfs::fault
