// FaultInjector: arms a FaultPlan against a live machine.
//
// The injector is the bridge between the declarative plan and the layers
// that own each fault: disk service windows (transient errors, slowdowns),
// RAID member failures, I/O daemon crash/restart, and mesh link
// degradation. Arming is pure scheduling — every fault fires through
// Simulation::call_at or a time-window check inside the owning component,
// so the same (seed, plan) replays the identical schedule and the SimCheck
// determinism digest holds.
#pragma once

#include "fault/plan.hpp"
#include "hw/machine.hpp"
#include "pfs/filesystem.hpp"
#include "sim/types.hpp"

namespace ppfs::fault {

class FaultInjector {
 public:
  FaultInjector(hw::Machine& machine, pfs::PfsFileSystem& fs)
      : machine_(machine), fs_(fs) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Install every event of `plan` (chaos portion expanded against the
  /// machine shape) with event times relative to simulation time `base`.
  /// Returns the number of concrete fault events armed.
  int arm(const FaultPlan& plan, sim::SimTime base);

  int injected() const noexcept { return injected_; }

 private:
  void arm_one(const FaultEvent& ev, sim::SimTime base);

  hw::Machine& machine_;
  pfs::PfsFileSystem& fs_;
  int injected_ = 0;
};

}  // namespace ppfs::fault
