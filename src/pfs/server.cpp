#include "pfs/server.hpp"

#include "fault/error.hpp"

namespace ppfs::pfs {

PfsServer::PfsServer(hw::Machine& machine, int io_index, const PfsParams& params)
    : machine_(machine),
      io_index_(io_index),
      mesh_node_(machine.io_node(io_index)),
      params_(params),
      device_(machine.raid(io_index)),
      content_(params.ufs.block_bytes),
      ufs_(machine.simulation(), "ufs-io" + std::to_string(io_index), device_, content_,
           &machine.cpu(mesh_node_), params.ufs, &machine.tracer()),
      up_ev_(machine.simulation()) {
  up_ev_.set();
}

void PfsServer::crash() {
  if (down_) return;
  down_ = true;
  ++crash_epoch_;
  up_ev_.reset();
}

void PfsServer::restore() {
  if (!down_) return;
  down_ = false;
  ufs_.drop_caches();  // restart comes back cold
  up_ev_.set();
}

sim::Task<ByteCount> PfsServer::read(ufs::InodeNum ino, FileOffset local_off, ByteCount len,
                                     std::span<std::byte> out, bool fastpath) {
  if (down_) {
    throw fault::FaultError(fault::ErrorCause::kNodeDown,
                            "io" + std::to_string(io_index_) + " daemon down");
  }
  ++requests_;
  co_await machine_.cpu(mesh_node_).compute(params_.server_request_overhead);
  co_return co_await ufs_.read(ino, local_off, len, out, fastpath);
}

sim::Task<void> PfsServer::write(ufs::InodeNum ino, FileOffset local_off,
                                 std::span<const std::byte> in, bool fastpath) {
  if (down_) {
    throw fault::FaultError(fault::ErrorCause::kNodeDown,
                            "io" + std::to_string(io_index_) + " daemon down");
  }
  ++requests_;
  co_await machine_.cpu(mesh_node_).compute(params_.server_request_overhead);
  co_await ufs_.write(ino, local_off, in, fastpath);
}

}  // namespace ppfs::pfs
