#include "pfs/server.hpp"

#include <limits>

#include "hw/disk_sched.hpp"
#include "sim/when_all.hpp"
#include "trace/record.hpp"
#include "trace/sink.hpp"

namespace ppfs::pfs {

PfsServer::PfsServer(hw::Machine& machine, int io_index, const PfsParams& params)
    : machine_(machine),
      io_index_(io_index),
      mesh_node_(machine.io_node(io_index)),
      params_(params),
      device_(machine.raid(io_index)),
      content_(params.ufs.block_bytes),
      ufs_(machine.simulation(), "ufs-io" + std::to_string(io_index), device_, content_,
           &machine.cpu(mesh_node_), params.ufs, &machine.tracer()),
      up_ev_(machine.simulation()) {
  up_ev_.set();
}

void PfsServer::crash() {
  if (down_) return;
  down_ = true;
  ++crash_epoch_;
  // The tier's volatile residency dies with the daemon; any journal write
  // caught in flight is torn on the cache device.
  if (auto* tier = ufs_.cache_tier()) tier->on_crash();
  if (topology_epoch_) ++*topology_epoch_;
  up_ev_.reset();
}

void PfsServer::restore() {
  if (!down_) return;
  if (ufs_.cache_tier() == nullptr) {
    // No tier: the original synchronous restart (bit-identical schedules).
    down_ = false;
    ufs_.drop_caches();  // restart comes back cold
    if (topology_epoch_) ++*topology_epoch_;
    up_ev_.set();
    return;
  }
  if (recovering_) return;  // a recovery pass for this outage already runs
  recovering_ = true;
  machine_.simulation().spawn(recover_and_come_up());
}

sim::Task<void> PfsServer::recover_and_come_up() {
  cache::CacheTier* tier = ufs_.cache_tier();
  const std::uint64_t epoch = crash_epoch_;
  const std::uint64_t recovered_before = tier->stats().recovered_blocks;
  std::uint64_t span = 0;
  if (trace::TraceSink* sink = machine_.simulation().trace()) {
    span = sink->new_span();
    sink->record(trace::TraceRecord(machine_.simulation().now(), trace::TraceKind::kSpanBegin,
                                    trace::TraceTrack::kServer, trace::code::kRecovery,
                                    io_index_, span, 0, epoch));
  }
  co_await tier->recover();
  if (span != 0) {
    if (trace::TraceSink* sink = machine_.simulation().trace()) {
      sink->record(trace::TraceRecord(machine_.simulation().now(), trace::TraceKind::kSpanEnd,
                                      trace::TraceTrack::kServer, trace::code::kRecovery,
                                      io_index_, span,
                                      tier->stats().recovered_blocks - recovered_before,
                                      epoch));
    }
  }
  recovering_ = false;
  // crash() is a no-op while down, so the epoch cannot have moved — but if
  // it ever does, stay down rather than come up on a dead epoch's state.
  if (crash_epoch_ != epoch || !down_) co_return;
  down_ = false;
  ufs_.drop_caches();  // the first-tier buffer cache is still cold
  if (topology_epoch_) ++*topology_epoch_;
  up_ev_.set();
}

std::uint64_t PfsServer::phys_key(const QueuedIo& item) const {
  const ufs::Inode& ino = ufs_.inode_of(item.ino);
  const std::uint64_t lblock = item.off / params_.ufs.block_bytes;
  if (lblock < ino.blocks.size()) return ino.blocks[lblock];
  return std::numeric_limits<std::uint64_t>::max();  // unallocated: serve last
}

void PfsServer::enqueue(QueuedIo& item) {
  queue_.push_back(&item);
  // The dispatcher is NOT kicked here: callers enqueue every extent of an
  // RPC first, then spawn the (eager) dispatcher, so one RPC's extents are
  // always sorted as a single batch.
}

sim::Task<void> PfsServer::sweep_and_signal(std::vector<sim::Task<void>> parts,
                                            sim::Event& done, std::uint64_t trace_span) {
  const std::size_t n = parts.size();
  co_await sim::when_all(machine_.simulation(), std::move(parts));
  // Close the sweep span opened at spawn time. Up to two sweeps are
  // pipelined per server, so the pair is correlated by id (async export).
  if (trace_span != 0) {
    if (trace::TraceSink* sink = machine_.simulation().trace()) {
      sink->record(trace::TraceRecord(machine_.simulation().now(),
                                      trace::TraceKind::kSpanEnd, trace::TraceTrack::kServer,
                                      trace::code::kBatchSweep, io_index_, trace_span, n));
    }
  }
  done.set();
}

sim::Task<void> PfsServer::batch_dispatch() {
  // Keep at most two sweeps in flight: spawn sweep k, then wait for sweep
  // k-1 before collecting sweep k+1. A full barrier between sweeps would
  // idle the disks behind every sweep's bus-transfer tail; with one sweep
  // of lookahead the device queues never drain while issue order (and so
  // physical ordering at each member disk) is preserved.
  std::unique_ptr<sim::Event> prev;
  for (;;) {
    if (queue_.empty()) {
      if (!prev) break;
      co_await prev->wait();
      prev.reset();
      continue;  // arrivals during the wait get their own sweep
    }
    std::vector<QueuedIo*> batch;
    batch.swap(queue_);
    ++batch_sweeps_;
    batched_extents_ += batch.size();

    // One elevator sweep over the batch in physical-position order; items
    // arriving while the sweep runs queue up for the next one.
    std::vector<std::uint64_t> keys;
    keys.reserve(batch.size());
    for (const QueuedIo* item : batch) keys.push_back(phys_key(*item));
    const std::vector<std::size_t> order = hw::sweep_order(keys, sweep_head_);

    // Issue the sweep in physical-position order. Consecutive sweep items
    // that qualify for the fast path are handed to the UFS as ONE sorted
    // batch (ufs::Ufs::read_sorted): physically-contiguous blocks — even
    // across stripe-file boundaries — merge into single streaming device
    // transfers, which is where batching actually beats arrival order
    // (one seek and one controller/bus charge per run, not per block).
    // Items the fast path can't take (writes, unaligned or EOF-straddling
    // reads) are served individually, still in sweep order; the FIFO
    // resources downstream preserve issue order while the pipeline stages
    // overlap across items.
    std::vector<sim::Task<void>> parts;
    parts.reserve(order.size());
    std::vector<QueuedIo*> group;
    const auto flush_group = [&] {
      if (group.empty()) return;
      parts.push_back(serve_sorted(std::move(group)));
      group.clear();
    };
    for (std::size_t idx : order) {
      QueuedIo& item = *batch[idx];
      if (!down_ && !item.is_write && item.fastpath &&
          ufs_.fastpath_read_eligible(item.ino, item.off, item.len)) {
        group.push_back(&item);
      } else {
        flush_group();
        parts.push_back(serve_queued(item));
      }
    }
    flush_group();
    sweep_head_ = keys[order.back()];
    std::uint64_t sweep_span = 0;
    if (trace::TraceSink* sink = machine_.simulation().trace()) {
      sweep_span = sink->new_span();
      sink->record(trace::TraceRecord(machine_.simulation().now(),
                                      trace::TraceKind::kSpanBegin, trace::TraceTrack::kServer,
                                      trace::code::kBatchSweep, io_index_, sweep_span,
                                      batch.size()));
    }
    auto done = std::make_unique<sim::Event>(machine_.simulation());
    machine_.simulation().spawn(sweep_and_signal(std::move(parts), *done, sweep_span));
    if (prev) co_await prev->wait();
    prev = std::move(done);
  }
  dispatcher_running_ = false;
}

sim::Task<void> PfsServer::serve_sorted(std::vector<QueuedIo*> group) {
  std::vector<ufs::Ufs::BatchRead> reads;
  reads.reserve(group.size());
  for (const QueuedIo* item : group) {
    reads.push_back(ufs::Ufs::BatchRead{item->ino, item->off, item->len, item->out, 0});
  }
  try {
    co_await ufs_.read_sorted(reads);
    for (std::size_t i = 0; i < group.size(); ++i) group[i]->got = reads[i].got;
  } catch (const fault::FaultError& e) {
    // A fault mid-sweep fails the whole group; each client retries its
    // (idempotent) RPC through the usual envelope.
    for (QueuedIo* item : group) {
      item->failed = true;
      item->cause = e.cause();
      item->what = e.what();
    }
  }
  for (QueuedIo* item : group) item->done.set();
}

sim::Task<void> PfsServer::serve_queued(QueuedIo& item) {
  if (down_) {
    // A crash fails everything still queued; clients recover through the
    // usual RPC envelope (down-wait, reissue after restore).
    item.failed = true;
    item.cause = fault::ErrorCause::kNodeDown;
    item.what = "io" + std::to_string(io_index_) + " daemon down";
    item.done.set();
    co_return;
  }
  try {
    if (item.is_write) {
      co_await ufs_.write(item.ino, item.off, item.in, item.fastpath);
      item.got = item.in.size();
    } else {
      item.got = co_await ufs_.read(item.ino, item.off, item.len, item.out, item.fastpath);
    }
  } catch (const fault::FaultError& e) {
    item.failed = true;
    item.cause = e.cause();
    item.what = e.what();
  }
  item.done.set();
}

sim::Task<ByteCount> PfsServer::serve_extent(ufs::InodeNum ino, FileOffset off,
                                             ByteCount len, std::span<std::byte> out,
                                             std::span<const std::byte> in, bool is_write,
                                             bool fastpath) {
  if (!params_.server_batch) {
    if (is_write) {
      co_await ufs_.write(ino, off, in, fastpath);
      co_return in.size();
    }
    co_return co_await ufs_.read(ino, off, len, out, fastpath);
  }

  QueuedIo item(machine_.simulation());
  item.ino = ino;
  item.off = off;
  item.len = len;
  item.out = out;
  item.in = in;
  item.is_write = is_write;
  item.fastpath = fastpath;
  enqueue(item);
  if (!dispatcher_running_) {
    dispatcher_running_ = true;
    machine_.simulation().spawn(batch_dispatch());
  }
  co_await item.done.wait();
  if (item.failed) throw fault::FaultError(item.cause, item.what);
  co_return item.got;
}

sim::Task<ByteCount> PfsServer::read(ufs::InodeNum ino, FileOffset local_off, ByteCount len,
                                     std::span<std::byte> out, bool fastpath) {
  if (down_) {
    throw fault::FaultError(fault::ErrorCause::kNodeDown,
                            "io" + std::to_string(io_index_) + " daemon down");
  }
  ++requests_;
  co_await machine_.cpu(mesh_node_).compute(params_.server_request_overhead);
  if (params_.server_batch) {
    co_return co_await serve_extent(ino, local_off, len, out, {}, /*is_write=*/false,
                                    fastpath);
  }
  co_return co_await ufs_.read(ino, local_off, len, out, fastpath);
}

sim::Task<void> PfsServer::write(ufs::InodeNum ino, FileOffset local_off,
                                 std::span<const std::byte> in, bool fastpath) {
  if (down_) {
    throw fault::FaultError(fault::ErrorCause::kNodeDown,
                            "io" + std::to_string(io_index_) + " daemon down");
  }
  ++requests_;
  co_await machine_.cpu(mesh_node_).compute(params_.server_request_overhead);
  if (params_.server_batch) {
    co_await serve_extent(ino, local_off, 0, {}, in, /*is_write=*/true, fastpath);
    co_return;
  }
  co_await ufs_.write(ino, local_off, in, fastpath);
}

sim::Task<void> PfsServer::read_batch(std::span<ExtentOp> ops, bool fastpath) {
  if (down_) {
    throw fault::FaultError(fault::ErrorCause::kNodeDown,
                            "io" + std::to_string(io_index_) + " daemon down");
  }
  ++requests_;
  // One request-handling charge for the whole scatter-gather RPC — the
  // saving that motivates coalescing.
  co_await machine_.cpu(mesh_node_).compute(params_.server_request_overhead);

  if (params_.server_batch) {
    // Enqueue every extent before kicking the dispatcher so the whole RPC
    // sorts as one sweep (spawn runs the dispatcher eagerly).
    std::deque<QueuedIo> items;
    for (ExtentOp& op : ops) {
      QueuedIo& item = items.emplace_back(machine_.simulation());
      item.ino = op.ino;
      item.off = op.local_off;
      item.len = op.len;
      item.out = op.out;
      item.fastpath = fastpath;
      enqueue(item);
    }
    if (!dispatcher_running_ && !queue_.empty()) {
      dispatcher_running_ = true;
      machine_.simulation().spawn(batch_dispatch());
    }
    bool failed = false;
    fault::ErrorCause cause{};
    std::string what;
    std::size_t i = 0;
    for (ExtentOp& op : ops) {
      QueuedIo& item = items[i++];
      co_await item.done.wait();
      op.got = item.got;
      if (item.failed && !failed) {
        failed = true;
        cause = item.cause;
        what = item.what;
      }
    }
    if (failed) throw fault::FaultError(cause, what);
    co_return;
  }

  std::vector<sim::Task<void>> parts;
  parts.reserve(ops.size());
  for (ExtentOp& op : ops) {
    parts.push_back([](PfsServer& self, ExtentOp& o, bool fast) -> sim::Task<void> {
      o.got = co_await self.ufs_.read(o.ino, o.local_off, o.len, o.out, fast);
    }(*this, op, fastpath));
  }
  co_await sim::when_all_propagate(machine_.simulation(), std::move(parts));
}

sim::Task<void> PfsServer::write_batch(std::span<ExtentOp> ops, bool fastpath) {
  if (down_) {
    throw fault::FaultError(fault::ErrorCause::kNodeDown,
                            "io" + std::to_string(io_index_) + " daemon down");
  }
  ++requests_;
  co_await machine_.cpu(mesh_node_).compute(params_.server_request_overhead);

  if (params_.server_batch) {
    std::deque<QueuedIo> items;
    for (ExtentOp& op : ops) {
      QueuedIo& item = items.emplace_back(machine_.simulation());
      item.ino = op.ino;
      item.off = op.local_off;
      item.in = op.in;
      item.is_write = true;
      item.fastpath = fastpath;
      enqueue(item);
    }
    if (!dispatcher_running_ && !queue_.empty()) {
      dispatcher_running_ = true;
      machine_.simulation().spawn(batch_dispatch());
    }
    bool failed = false;
    fault::ErrorCause cause{};
    std::string what;
    std::size_t i = 0;
    for (ExtentOp& op : ops) {
      QueuedIo& item = items[i++];
      co_await item.done.wait();
      op.got = item.got;
      if (item.failed && !failed) {
        failed = true;
        cause = item.cause;
        what = item.what;
      }
    }
    if (failed) throw fault::FaultError(cause, what);
    co_return;
  }

  std::vector<sim::Task<void>> parts;
  parts.reserve(ops.size());
  for (ExtentOp& op : ops) {
    // ppfs-lint: allow(ref-across-await) o lives in `ops`, which outlives the when_all on `parts` below
    parts.push_back([](PfsServer& self, ExtentOp& o, bool fast) -> sim::Task<void> {
      co_await self.ufs_.write(o.ino, o.local_off, o.in, fast);
      o.got = o.in.size();
    }(*this, op, fastpath));
  }
  co_await sim::when_all_propagate(machine_.simulation(), std::move(parts));
}

}  // namespace ppfs::pfs
