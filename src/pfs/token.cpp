#include "pfs/token.hpp"

#include <algorithm>

#include "sim/check/audit.hpp"
#include "sim/simulation.hpp"

namespace ppfs::pfs {

const char* to_string(TokenMode m) noexcept {
  return m == TokenMode::kWrite ? "write" : "read";
}

TokenManager::State& TokenManager::state(FileId file) {
  auto it = files_.find(file);
  if (it == files_.end()) {
    State s;
    s.lock = std::make_unique<sim::Resource>(machine_.simulation(), 1);
    it = files_.emplace(file, std::move(s)).first;
  }
  return it->second;
}

int TokenManager::register_handler(TokenRevokeHandler* handler) {
  const int id = next_client_++;
  handlers_[id] = handler;
  return id;
}

void TokenManager::unregister_handler(int client_id) {
  // Teardown path: drop the client's grants without flushing (the run has
  // drained). The auditor's ledger is released in step so the balance holds.
  for (auto& [file, s] : files_) {
    for (std::size_t i = 0; i < s.grants.size();) {
      if (s.grants[i].client != client_id) {
        ++i;
        continue;
      }
      remove_from_grant(file, s, i, s.grants[i].begin, s.grants[i].end);
    }
  }
  handlers_.erase(client_id);
}

std::size_t TokenManager::remove_from_grant(FileId file, State& s, std::size_t i,
                                            FileOffset begin, FileOffset end) {
  const Grant g = s.grants[i];
  if (g.mode == TokenMode::kWrite) {
    write_granted_bytes_ -= end - begin;
    if (auto* a = machine_.simulation().auditor()) {
      a->on_token_write_release(machine_.simulation().now(), file,
                                static_cast<std::uint64_t>(g.client), begin, end);
    }
  }
  const bool left = begin > g.begin;
  const bool right = end < g.end;
  if (left && right) {
    s.grants[i].end = begin;
    s.grants.insert(s.grants.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                    Grant{g.client, g.mode, end, g.end});
    ++stats_.splits;
    return 2;
  }
  if (left) {
    s.grants[i].end = begin;
    return 1;
  }
  if (right) {
    s.grants[i].begin = end;
    return 1;
  }
  s.grants.erase(s.grants.begin() + static_cast<std::ptrdiff_t>(i));
  return 0;
}

sim::Task<void> TokenManager::acquire(int client_id, FileId file, FileOffset begin,
                                      FileOffset end, TokenMode mode) {
  if (begin >= end) co_return;
  // The grant-table update runs on the metadata node's CPU, like pointer
  // ops; conflicting acquisitions on one file then serialize FIFO.
  co_await machine_.cpu(home_).compute(service_time_);
  ++stats_.acquires;
  State& s = state(file);
  auto guard = co_await s.lock->acquire();

  // Revoke conflicting overlaps held by other clients, one holder at a
  // time, in grant-table order. Flush-before-ack: the overlap leaves the
  // table only after the holder's on_token_revoke returns, i.e. after its
  // dirty bytes are flushed and its cached token invalidated. Each pass
  // removes at least one overlap, so the rescan terminates.
  for (;;) {
    bool revoked = false;
    for (std::size_t i = 0; i < s.grants.size(); ++i) {
      const Grant g = s.grants[i];
      if (g.client == client_id) continue;
      if (g.end <= begin || g.begin >= end) continue;
      if (mode == TokenMode::kRead && g.mode == TokenMode::kRead) continue;
      const TokenRange overlap{std::max(g.begin, begin), std::min(g.end, end)};
      ++stats_.revocations;
      auto hit = handlers_.find(g.client);
      if (hit != handlers_.end()) {
        TokenRevokeHandler* h = hit->second;
        // Revoke message out; the ack message only after the flush.
        co_await machine_.mesh().send(home_, h->token_node(), ctrl_);
        co_await h->on_token_revoke(file, overlap, g.mode);
        co_await machine_.mesh().send(h->token_node(), home_, ctrl_);
      }
      remove_from_grant(file, s, i, overlap.begin, overlap.end);
      revoked = true;
      break;  // the table shifted (and we awaited): rescan from the top
    }
    if (!revoked) break;
  }

  // Absorb the client's own overlapping grants first (a write acquire
  // upgrades a covered read range; re-acquiring never double-covers).
  for (std::size_t i = 0; i < s.grants.size();) {
    const Grant& g = s.grants[i];
    if (g.client != client_id || g.end <= begin || g.begin >= end) {
      ++i;
      continue;
    }
    i += remove_from_grant(file, s, i, std::max(g.begin, begin), std::min(g.end, end));
  }

  s.grants.push_back(Grant{client_id, mode, begin, end});
  ++stats_.grants;
  if (mode == TokenMode::kWrite) {
    write_granted_bytes_ += end - begin;
    if (auto* a = machine_.simulation().auditor()) {
      a->on_token_write_grant(machine_.simulation().now(), file,
                              static_cast<std::uint64_t>(client_id), begin, end);
    }
  }
}

std::size_t TokenManager::grant_count(FileId file) const {
  auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.grants.size();
}

ByteCount TokenManager::granted_bytes(FileId file, TokenMode mode) const {
  auto it = files_.find(file);
  if (it == files_.end()) return 0;
  ByteCount total = 0;
  for (const Grant& g : it->second.grants) {
    if (g.mode == mode) total += g.end - g.begin;
  }
  return total;
}

bool TokenManager::holds(int client_id, FileId file, FileOffset begin, FileOffset end,
                         TokenMode mode) const {
  auto it = files_.find(file);
  if (it == files_.end()) return false;
  // Coverage may be pieced together from several grants: sweep forward.
  FileOffset cursor = begin;
  bool progressed = true;
  while (cursor < end && progressed) {
    progressed = false;
    for (const Grant& g : it->second.grants) {
      if (g.client != client_id || g.begin > cursor || g.end <= cursor) continue;
      if (mode == TokenMode::kWrite && g.mode != TokenMode::kWrite) continue;
      cursor = g.end;
      progressed = true;
      break;
    }
  }
  return cursor >= end;
}

}  // namespace ppfs::pfs
