#include "pfs/client.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "fault/retry.hpp"
#include "sim/channel.hpp"
#include "sim/check/audit.hpp"
#include "sim/when_all.hpp"
#include "trace/span.hpp"

namespace ppfs::pfs {

PfsClient::PfsClient(PfsFileSystem& fs, int compute_index, int rank, int nprocs)
    : fs_(fs),
      machine_(fs.machine()),
      compute_index_(compute_index),
      mesh_node_(machine_.compute_node(compute_index)),
      rank_(rank),
      nprocs_(nprocs),
      arts_(machine_.simulation(), fs.params().max_arts_per_client,
            // ppfs-lint: allow(ref-across-await) req is the ART slot's stored request; the slot owns this coroutine and outlives it
            [this](const AsyncRequest& req) -> sim::Task<ByteCount> {
              if (req.is_write) {
                co_await write_at(req.fd, req.offset, req.in);
                co_return req.length;
              }
              co_return co_await read_at(req.fd, req.offset, req.length, req.out,
                                         req.fastpath);
            }),
      rpc_rng_(0x5eedull ^ ((static_cast<std::uint64_t>(rank) + 1) * 0x9e3779b97f4a7c15ull)) {
  if (rank < 0 || nprocs <= 0 || rank >= nprocs) {
    throw std::invalid_argument("PfsClient: bad rank/nprocs");
  }
  if (fs_.params().write_tokens) {
    token_client_id_ = fs_.tokens().register_handler(this);
  }
}

PfsClient::~PfsClient() {
  if (token_client_id_ >= 0) fs_.tokens().unregister_handler(token_client_id_);
}

PfsClient::OpenFile& PfsClient::fstate(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) throw std::invalid_argument("PfsClient: bad fd");
  return it->second;
}

const PfsClient::OpenFile& PfsClient::fstate(int fd) const {
  auto it = fds_.find(fd);
  if (it == fds_.end()) throw std::invalid_argument("PfsClient: bad fd");
  return it->second;
}

sim::Task<void> PfsClient::metadata_rpc() {
  ++rpc_stats_.metadata_rpcs;
  const auto ctrl = fs_.params().control_message_bytes;
  // Issue->reply envelope; async because a rank can have several RPC
  // classes in flight at once. One span per counter increment, so the
  // trace's per-class span counts always equal the RpcStats counters.
  trace::SpanGuard span(machine_.simulation(), trace::TraceTrack::kRpc,
                        trace::code::kRpcMetadata, rank_, /*async=*/true, ctrl,
                        static_cast<std::uint64_t>(fs_.metadata_node()));
  co_await machine_.mesh().send(mesh_node_, fs_.metadata_node(), ctrl);
  co_await machine_.mesh().send(fs_.metadata_node(), mesh_node_, ctrl);
  span.end(ctrl);
}

sim::Task<void> PfsClient::ensure_stripe_map(const PfsFileMeta& meta) {
  const std::uint64_t epoch = fs_.topology_epoch();
  auto it = stripe_map_epoch_.find(meta.id);
  if (it != stripe_map_epoch_.end() && it->second == epoch) co_return;
  // One metadata round-trip (re)loads the file's whole stripe map; until a
  // crash/restore bumps the topology epoch, every later operation on this
  // file resolves its extents from the cached map instead of paying a
  // per-operation metadata trip. The cache is stamped before awaiting so
  // concurrent operations on the same file piggyback on the in-flight load
  // instead of stampeding the metadata node (the load itself cannot fail —
  // the mesh always delivers).
  stripe_map_epoch_[meta.id] = epoch;
  ++rpc_stats_.stripe_map_refreshes;
  co_await metadata_rpc();
  co_await machine_.cpu(fs_.metadata_node()).compute(fs_.params().pointer_service_time);
}

sim::Task<int> PfsClient::open(const std::string& name, IoMode mode) {
  co_await cpu().compute(cpu().params().syscall_overhead);
  co_await metadata_rpc();
  PfsFileMeta* meta = fs_.lookup(name);
  if (!meta) throw std::invalid_argument("PfsClient::open: no such PFS file: " + name);
  const int fd = next_fd_++;
  fds_[fd] = OpenFile{meta->id, mode, 0};
  if (prefetcher_) prefetcher_->on_open(fd);
  co_return fd;
}

void PfsClient::close(int fd) {
  fstate(fd);  // validate
  if (prefetcher_) prefetcher_->on_close(fd);
  fds_.erase(fd);
}

FileOffset PfsClient::tell(int fd) const { return fstate(fd).pointer; }
IoMode PfsClient::mode_of(int fd) const { return fstate(fd).mode; }
ByteCount PfsClient::file_size(int fd) const { return fs_.file(fstate(fd).file).size; }

FileOffset PfsClient::next_read_offset(int fd, ByteCount len) const {
  const OpenFile& f = fstate(fd);
  switch (f.mode) {
    case IoMode::kRecord:
      return f.pointer + static_cast<FileOffset>(rank_) * len;
    case IoMode::kUnix:
    case IoMode::kAsync:
    case IoMode::kSync:    // best-effort: assumes equal-size requests
    case IoMode::kGlobal:
    case IoMode::kLog:     // best-effort: assumes this node claims next
      return f.pointer;
  }
  throw std::logic_error("next_read_offset: unknown mode");
}

bool PfsClient::next_offset_predictable(int fd) const {
  switch (fstate(fd).mode) {
    case IoMode::kRecord:
    case IoMode::kUnix:
    case IoMode::kAsync:
      return true;
    default:
      return false;
  }
}

sim::Task<void> PfsClient::set_iomode(int fd, IoMode mode) {
  OpenFile& f = fstate(fd);
  co_await cpu().compute(cpu().params().syscall_overhead);
  co_await metadata_rpc();
  f.mode = mode;
}

sim::Task<void> PfsClient::seek(int fd, FileOffset off) {
  OpenFile& f = fstate(fd);
  co_await cpu().compute(cpu().params().syscall_overhead);
  if (traits(f.mode).shared_pointer) {
    // Repositioning a shared pointer is a metadata operation.
    co_await metadata_rpc();
    fs_.pointers().set_pointer(f.file, off);
  }
  f.pointer = off;
}

sim::Task<void> PfsClient::fetch_extent(PfsFileMeta& meta, IoNodeRequest req, FileOffset base,
                                        std::span<std::byte> out, bool fastpath) {
  const auto ctrl = fs_.params().control_message_bytes;
  const hw::NodeId io_node = machine_.io_node(req.io_index);
  const sim::SimTime deadline =
      machine_.simulation().now() + fs_.params().retry.total_budget_s;
  ++rpc_stats_.data_rpcs;
  // The span covers the whole reliability envelope (all attempts). If the
  // retry budget runs out, rpc_recover throws and the guard's destructor
  // closes the span with kFlagFault as the frame unwinds.
  trace::SpanGuard rpc_span(machine_.simulation(), trace::TraceTrack::kRpc,
                            trace::code::kRpcData, rank_, /*async=*/true, req.length,
                            static_cast<std::uint64_t>(req.io_index));

  for (std::uint32_t attempt = 0, failures = 0;; ++attempt) {
    PfsServer& srv = fs_.server(req.io_index);
    std::vector<std::byte> staging(req.length);
    ByteCount got = 0;
    fault::ErrorCause cause{};
    bool failed = false;
    try {
      ++rpc_stats_.attempts;
      // A reply is only trustworthy if the server did not crash while the
      // request was in flight; reads are idempotent, so a lost reply is
      // simply reissued.
      const std::uint64_t epoch = srv.crash_epoch();

      // Request message to the I/O node.
      co_await machine_.mesh().send(mesh_node_, io_node, ctrl);

      // Server reads the stripe file (staging represents the wire image; on
      // the fast path the real machine DMAs disk->network without a server
      // copy, so no server CPU copy is charged beyond request handling).
      got = co_await srv.read(meta.stripe_inos[req.group_slot], req.local_offset,
                              req.length, staging, fastpath);

      if (srv.crash_epoch() != epoch) {
        throw fault::FaultError(fault::ErrorCause::kNodeDown,
                                "io" + std::to_string(req.io_index) +
                                    " reply lost in crash");
      }

      // Data travels back to the compute node.
      co_await machine_.mesh().send(io_node, mesh_node_, got > 0 ? got : ctrl);
    } catch (const fault::FaultError& e) {
      cause = e.cause();
      failed = true;
    }
    if (failed) {
      ++failures;
      co_await rpc_recover(req.io_index, cause, attempt, failures, deadline);
      continue;
    }
    if (failures > 0) {
      rpc_stats_.retried_ok += failures;
      if (auto* a = machine_.simulation().auditor()) a->on_fault_retried_ok(failures);
    }
    rpc_span.end(got, static_cast<std::uint64_t>(req.io_index));

    // Scatter the contiguous stripe-file bytes into their file-space slots
    // in the user buffer ("Fast Path reads data directly from the disks to
    // the user's buffer" — no extra CPU copy is charged here).
    ByteCount cursor = 0;
    for (const StripePiece& piece : req.pieces) {
      if (cursor >= got) break;
      const ByteCount n = std::min<ByteCount>(piece.length, got - cursor);
      std::memcpy(out.data() + (piece.file_offset - base), staging.data() + cursor, n);
      cursor += n;
    }
    co_return;
  }
}

sim::Task<void> PfsClient::fetch_coalesced(PfsFileMeta& meta, CoalescedRequest req,
                                           FileOffset base, std::span<std::byte> out,
                                           bool fastpath) {
  const auto ctrl = fs_.params().control_message_bytes;
  const hw::NodeId io_node = machine_.io_node(req.io_index);
  const sim::SimTime deadline =
      machine_.simulation().now() + fs_.params().retry.total_budget_s;
  ++rpc_stats_.data_rpcs;
  ++rpc_stats_.coalesced_rpcs;
  rpc_stats_.coalesced_extents += req.extents.size();
  // Tagged kRpcCoalesced (not kRpcData), so data spans + coalesced spans
  // partition data_rpcs exactly the way the report's counters do.
  trace::SpanGuard rpc_span(machine_.simulation(), trace::TraceTrack::kRpc,
                            trace::code::kRpcCoalesced, rank_, /*async=*/true, req.length,
                            static_cast<std::uint64_t>(req.io_index));

  for (std::uint32_t attempt = 0, failures = 0;; ++attempt) {
    PfsServer& srv = fs_.server(req.io_index);
    std::vector<std::byte> staging(req.length);
    std::vector<PfsServer::ExtentOp> ops;
    ops.reserve(req.extents.size());
    ByteCount stage_off = 0;
    for (const CoalescedExtent& e : req.extents) {
      PfsServer::ExtentOp op;
      op.ino = meta.stripe_inos[e.group_slot];
      op.local_off = e.local_offset;
      op.len = e.length;
      op.out = std::span<std::byte>(staging).subspan(stage_off, e.length);
      ops.push_back(op);
      stage_off += e.length;
    }
    ByteCount got = 0;
    fault::ErrorCause cause{};
    bool failed = false;
    try {
      ++rpc_stats_.attempts;
      const std::uint64_t epoch = srv.crash_epoch();

      // One control message carries the whole extent list out; one data
      // reply carries every extent's bytes back.
      co_await machine_.mesh().send(mesh_node_, io_node, ctrl);
      co_await srv.read_batch(ops, fastpath);
      for (const PfsServer::ExtentOp& op : ops) got += op.got;
      if (srv.crash_epoch() != epoch) {
        throw fault::FaultError(fault::ErrorCause::kNodeDown,
                                "io" + std::to_string(req.io_index) +
                                    " reply lost in crash");
      }
      co_await machine_.mesh().send(io_node, mesh_node_, got > 0 ? got : ctrl);
    } catch (const fault::FaultError& e) {
      cause = e.cause();
      failed = true;
    }
    if (failed) {
      ++failures;
      co_await rpc_recover(req.io_index, cause, attempt, failures, deadline);
      continue;
    }
    if (failures > 0) {
      rpc_stats_.retried_ok += failures;
      if (auto* a = machine_.simulation().auditor()) a->on_fault_retried_ok(failures);
    }
    rpc_span.end(got, req.extents.size());

    // Scatter each extent's bytes into their file-space slots. The auditor
    // cross-checks that the bytes the servers reported moved are exactly
    // the bytes that land in the user buffer — the merged ranges arrive
    // once each, none lost, none duplicated (retries cannot double-count:
    // only the surviving attempt scatters).
    ByteCount delivered = 0;
    for (std::size_t i = 0; i < req.extents.size(); ++i) {
      const CoalescedExtent& e = req.extents[i];
      const std::span<const std::byte> src = ops[i].out;
      ByteCount cursor = 0;
      for (const StripePiece& piece : e.pieces) {
        if (cursor >= ops[i].got) break;
        const ByteCount n = std::min<ByteCount>(piece.length, ops[i].got - cursor);
        std::memcpy(out.data() + (piece.file_offset - base), src.data() + cursor, n);
        cursor += n;
        delivered += n;
      }
    }
    if (auto* a = machine_.simulation().auditor()) {
      a->check_coalesce_conservation(machine_.simulation().now(), got, delivered);
    }
    co_return;
  }
}

sim::Task<void> PfsClient::store_coalesced(PfsFileMeta& meta, CoalescedRequest req,
                                           FileOffset base, std::span<const std::byte> in,
                                           bool fastpath) {
  const auto ctrl = fs_.params().control_message_bytes;
  const hw::NodeId io_node = machine_.io_node(req.io_index);
  const sim::SimTime deadline =
      machine_.simulation().now() + fs_.params().retry.total_budget_s;
  ++rpc_stats_.data_rpcs;
  ++rpc_stats_.coalesced_rpcs;
  rpc_stats_.coalesced_extents += req.extents.size();
  trace::SpanGuard rpc_span(machine_.simulation(), trace::TraceTrack::kRpc,
                            trace::code::kRpcCoalesced, rank_, /*async=*/true, req.length,
                            static_cast<std::uint64_t>(req.io_index), trace::kFlagWrite);

  // Gather every extent's file-space pieces into one contiguous wire image;
  // the auditor confirms the image holds exactly the union of the merged
  // ranges before it ever hits the wire.
  std::vector<std::byte> staging(req.length);
  ByteCount gathered = 0;
  {
    ByteCount stage_off = 0;
    for (const CoalescedExtent& e : req.extents) {
      ByteCount cursor = 0;
      for (const StripePiece& piece : e.pieces) {
        std::memcpy(staging.data() + stage_off + cursor,
                    in.data() + (piece.file_offset - base), piece.length);
        cursor += piece.length;
        gathered += piece.length;
      }
      stage_off += e.length;
    }
  }
  if (auto* a = machine_.simulation().auditor()) {
    a->check_coalesce_conservation(machine_.simulation().now(), req.length, gathered);
  }

  for (std::uint32_t attempt = 0, failures = 0;; ++attempt) {
    PfsServer& srv = fs_.server(req.io_index);
    std::vector<PfsServer::ExtentOp> ops;
    ops.reserve(req.extents.size());
    ByteCount stage_off = 0;
    for (const CoalescedExtent& e : req.extents) {
      PfsServer::ExtentOp op;
      op.ino = meta.stripe_inos[e.group_slot];
      op.local_off = e.local_offset;
      op.len = e.length;
      op.in = std::span<const std::byte>(staging).subspan(stage_off, e.length);
      ops.push_back(op);
      stage_off += e.length;
    }
    fault::ErrorCause cause{};
    bool failed = false;
    try {
      ++rpc_stats_.attempts;
      const std::uint64_t epoch = srv.crash_epoch();

      // One data message carries every extent; one ack comes back.
      co_await machine_.mesh().send(mesh_node_, io_node, req.length);
      co_await srv.write_batch(ops, fastpath);
      if (srv.crash_epoch() != epoch) {
        throw fault::FaultError(fault::ErrorCause::kNodeDown,
                                "io" + std::to_string(req.io_index) +
                                    " ack lost in crash");
      }
      co_await machine_.mesh().send(io_node, mesh_node_, ctrl);
    } catch (const fault::FaultError& e) {
      cause = e.cause();
      failed = true;
    }
    if (failed) {
      ++failures;
      co_await rpc_recover(req.io_index, cause, attempt, failures, deadline);
      continue;
    }
    if (failures > 0) {
      rpc_stats_.retried_ok += failures;
      if (auto* a = machine_.simulation().auditor()) a->on_fault_retried_ok(failures);
    }
    rpc_span.end(req.length, req.extents.size());
    co_return;
  }
}

sim::Task<void> PfsClient::rpc_recover(int io_index, fault::ErrorCause cause,
                                       std::uint32_t attempt, std::uint32_t failures,
                                       sim::SimTime deadline) {
  auto& sim = machine_.simulation();
  const fault::RetryPolicy& rp = fs_.params().retry;
  ++rpc_stats_.cause_counts[static_cast<std::size_t>(cause)];
  if (auto* a = sim.auditor()) a->on_fault_observed();

  if (attempt >= rp.max_retries || sim.now() >= deadline) {
    // Budget exhausted: surface a typed error instead of hanging. The
    // terminal resolution covers every failed attempt of this request.
    ++rpc_stats_.terminal_errors;
    trace::instant(sim, trace::TraceTrack::kRpc, trace::code::kRpcGiveUp, rank_, failures,
                   static_cast<std::uint64_t>(io_index), trace::kFlagFault);
    if (auto* a = sim.auditor()) a->on_fault_terminal(failures);
    throw fault::FaultError(cause, "io" + std::to_string(io_index) + " RPC failed after " +
                                       std::to_string(failures) + " attempt(s): " +
                                       std::string(fault::to_string(cause)));
  }

  PfsServer& srv = fs_.server(io_index);
  if (cause == fault::ErrorCause::kNodeDown && srv.down()) {
    // Park until the node restarts — but never past the request deadline.
    ++rpc_stats_.down_waits;
    const sim::SimTime wait_start = sim.now();
    const bool up =
        co_await sim::wait_with_timeout(sim, srv.up_event(), deadline - sim.now());
    rpc_stats_.recovery_wait_time += sim.now() - wait_start;
    if (!up) {
      ++rpc_stats_.timeouts;
      ++rpc_stats_.cause_counts[static_cast<std::size_t>(fault::ErrorCause::kRpcTimeout)];
      ++rpc_stats_.terminal_errors;
      trace::instant(sim, trace::TraceTrack::kRpc, trace::code::kRpcGiveUp, rank_, failures,
                     static_cast<std::uint64_t>(io_index), trace::kFlagFault);
      if (auto* a = sim.auditor()) a->on_fault_terminal(failures);
      throw fault::FaultError(fault::ErrorCause::kRpcTimeout,
                              "io" + std::to_string(io_index) +
                                  " still down at request deadline");
    }
  }

  const sim::SimTime backoff = fault::backoff_delay(rp, attempt, rpc_rng_);
  rpc_stats_.backoff_time += backoff;
  ++rpc_stats_.retries;
  trace::instant(sim, trace::TraceTrack::kRpc, trace::code::kRpcRetry, rank_, attempt + 1,
                 static_cast<std::uint64_t>(io_index));
  co_await sim.delay(backoff);
}

sim::Task<ByteCount> PfsClient::read_at(int fd, FileOffset off, ByteCount len,
                                        std::span<std::byte> out, bool fastpath) {
  OpenFile& f = fstate(fd);
  PfsFileMeta& meta = fs_.file(f.file);
  co_await cpu().compute(cpu().params().syscall_overhead);
  if (off >= meta.size || len == 0) co_return 0;
  len = std::min<ByteCount>(len, meta.size - off);
  assert(out.size() >= len);

  if (fs_.params().coalesce_rpcs) {
    // Extents bound for the same I/O node merge into one scatter-gather
    // RPC; the cached stripe map replaces per-operation metadata trips.
    co_await ensure_stripe_map(meta);
    auto coalesced = coalesce_by_io(meta.layout.map(off, len));
    std::vector<sim::Task<void>> parts;
    parts.reserve(coalesced.size());
    for (auto& req : coalesced) {
      parts.push_back(fetch_coalesced(meta, std::move(req), off, out, fastpath));
    }
    co_await sim::when_all_propagate(machine_.simulation(), std::move(parts));
    co_return len;
  }

  auto requests = meta.layout.map(off, len);
  std::vector<sim::Task<void>> parts;
  parts.reserve(requests.size());
  for (auto& req : requests) {
    parts.push_back(fetch_extent(meta, std::move(req), off, out, fastpath));
  }
  // Propagating variant: a terminal fault in one extent surfaces here as a
  // typed error after the sibling transfers settle, instead of killing the
  // whole simulation.
  co_await sim::when_all_propagate(machine_.simulation(), std::move(parts));
  co_return len;
}

sim::Task<ByteCount> PfsClient::read(int fd, std::span<std::byte> out) {
  OpenFile& f = fstate(fd);
  const ByteCount len = out.size();
  const sim::SimTime start = machine_.simulation().now();

  // --- offset resolution / coordination, per I/O mode ---
  FileOffset off = 0;
  sim::ResourceGuard unix_lock;
  switch (f.mode) {
    case IoMode::kUnix: {
      // Atomicity: take the per-file token for the whole transfer.
      ++rpc_stats_.pointer_rpcs;
      trace::SpanGuard ptr_span(machine_.simulation(), trace::TraceTrack::kRpc,
                                trace::code::kRpcPointer, rank_, /*async=*/true, len);
      co_await machine_.mesh().send(mesh_node_, fs_.metadata_node(),
                                    fs_.params().control_message_bytes);
      unix_lock = co_await fs_.pointers().acquire_file_lock(f.file);
      co_await machine_.mesh().send(fs_.metadata_node(), mesh_node_,
                                    fs_.params().control_message_bytes);
      off = f.pointer;
      ptr_span.end(len);
      break;
    }
    case IoMode::kAsync:
      off = f.pointer;
      break;
    case IoMode::kRecord:
      off = f.pointer + static_cast<FileOffset>(rank_) * len;
      break;
    case IoMode::kLog: {
      // M_LOG is an atomic mode: the claim AND the transfer are serialized
      // first-come-first-served, like a log append.
      ++rpc_stats_.pointer_rpcs;
      trace::SpanGuard ptr_span(machine_.simulation(), trace::TraceTrack::kRpc,
                                trace::code::kRpcPointer, rank_, /*async=*/true, len);
      co_await machine_.mesh().send(mesh_node_, fs_.metadata_node(),
                                    fs_.params().control_message_bytes);
      unix_lock = co_await fs_.pointers().acquire_file_lock(f.file);
      off = co_await fs_.pointers().fetch_and_add(f.file, len);
      co_await machine_.mesh().send(fs_.metadata_node(), mesh_node_,
                                    fs_.params().control_message_bytes);
      ptr_span.end(len);
      break;
    }
    case IoMode::kSync:
    case IoMode::kGlobal: {
      ++rpc_stats_.pointer_rpcs;
      trace::SpanGuard ptr_span(machine_.simulation(), trace::TraceTrack::kRpc,
                                trace::code::kRpcPointer, rank_, /*async=*/true, len);
      co_await machine_.mesh().send(mesh_node_, fs_.metadata_node(),
                                    fs_.params().control_message_bytes);
      off = co_await fs_.collectives().arrive(f.file, rank_, nprocs_, len,
                                              f.mode == IoMode::kGlobal);
      co_await machine_.mesh().send(fs_.metadata_node(), mesh_node_,
                                    fs_.params().control_message_bytes);
      ptr_span.end(len);
      break;
    }
  }

  // --- coherence: a token-mode read first secures a read token, which
  // forces any conflicting writer to flush-before-ack ---
  if (fs_.params().write_tokens) {
    co_await acquire_token(f.file, off, off + len, TokenMode::kRead);
  }

  // --- data transfer: own dirty data first, then prefetch buffers, then
  // the normal path ---
  ByteCount got = 0;
  bool served = false;
  if (fs_.params().write_tokens && wb_covers(f.file, off, len)) {
    // Read-your-writes: the whole range is buffered dirty locally.
    co_await cpu().compute(cpu().params().syscall_overhead);
    got = wb_overlay(f.file, off, out.first(len), 0);
    ++token_stats_.wb_read_hits;
    served = true;
  }
  if (!served && prefetcher_) {
    auto hit = co_await prefetcher_->try_serve(fd, off, len, out);
    if (hit) {
      got = *hit;
      served = true;
    }
  }
  if (!served) {
    // M_GLOBAL goes through the I/O-node buffer cache so that N nodes
    // asking for the same blocks trigger one disk access.
    const bool fast = f.fastpath && f.mode != IoMode::kGlobal;
    got = co_await read_at(fd, off, len, out, fast);
    if (fs_.params().write_tokens) {
      // Partially-dirty ranges: newer buffered bytes overlay the server
      // data, and trailing dirty bytes past EOF extend the count.
      got = wb_overlay(f.file, off, out.first(len), got);
    }
  }

  // --- pointer advance ---
  switch (f.mode) {
    case IoMode::kRecord:
      f.pointer += static_cast<FileOffset>(nprocs_) * len;
      break;
    case IoMode::kUnix:
    case IoMode::kAsync:
      f.pointer = off + got;
      break;
    case IoMode::kLog:
    case IoMode::kSync:
      f.pointer = off + got;  // informational; the shared pointer is authoritative
      break;
    case IoMode::kGlobal:
      f.pointer = off + len;
      break;
  }
  if (unix_lock.owns()) {
    unix_lock.release();
    co_await machine_.mesh().send(mesh_node_, fs_.metadata_node(),
                                  fs_.params().control_message_bytes);
  }
  if (prefetcher_) co_await prefetcher_->after_read(fd, off, len);

  ++stats_.reads;
  stats_.bytes_read += got;
  stats_.read_time += machine_.simulation().now() - start;
  co_return got;
}

sim::Task<void> PfsClient::store_extent(PfsFileMeta& meta, IoNodeRequest req, FileOffset base,
                                        std::span<const std::byte> in, bool fastpath) {
  const auto ctrl = fs_.params().control_message_bytes;
  const hw::NodeId io_node = machine_.io_node(req.io_index);
  const sim::SimTime deadline =
      machine_.simulation().now() + fs_.params().retry.total_budget_s;
  ++rpc_stats_.data_rpcs;
  trace::SpanGuard rpc_span(machine_.simulation(), trace::TraceTrack::kRpc,
                            trace::code::kRpcData, rank_, /*async=*/true, req.length,
                            static_cast<std::uint64_t>(req.io_index), trace::kFlagWrite);

  // Gather file-space pieces into the contiguous stripe-file image.
  std::vector<std::byte> staging(req.length);
  ByteCount cursor = 0;
  for (const StripePiece& piece : req.pieces) {
    std::memcpy(staging.data() + cursor, in.data() + (piece.file_offset - base), piece.length);
    cursor += piece.length;
  }

  for (std::uint32_t attempt = 0, failures = 0;; ++attempt) {
    PfsServer& srv = fs_.server(req.io_index);
    fault::ErrorCause cause{};
    bool failed = false;
    try {
      ++rpc_stats_.attempts;
      // Writes of the same staging image are idempotent, so an ack lost in
      // a crash is handled by simply rewriting.
      const std::uint64_t epoch = srv.crash_epoch();

      // Data to the I/O node, then the server write, then the ack.
      co_await machine_.mesh().send(mesh_node_, io_node, req.length);
      co_await srv.write(meta.stripe_inos[req.group_slot], req.local_offset, staging,
                         fastpath);
      if (srv.crash_epoch() != epoch) {
        throw fault::FaultError(fault::ErrorCause::kNodeDown,
                                "io" + std::to_string(req.io_index) +
                                    " ack lost in crash");
      }
      co_await machine_.mesh().send(io_node, mesh_node_, ctrl);
    } catch (const fault::FaultError& e) {
      cause = e.cause();
      failed = true;
    }
    if (failed) {
      ++failures;
      co_await rpc_recover(req.io_index, cause, attempt, failures, deadline);
      continue;
    }
    if (failures > 0) {
      rpc_stats_.retried_ok += failures;
      if (auto* a = machine_.simulation().auditor()) a->on_fault_retried_ok(failures);
    }
    rpc_span.end(req.length, static_cast<std::uint64_t>(req.io_index));
    co_return;
  }
}

sim::Task<void> PfsClient::write_at(int fd, FileOffset off, std::span<const std::byte> in) {
  OpenFile& f = fstate(fd);
  PfsFileMeta& meta = fs_.file(f.file);
  co_await cpu().compute(cpu().params().syscall_overhead);
  co_await store_range(meta, off, in);
}

sim::Task<void> PfsClient::store_range(PfsFileMeta& meta, FileOffset off,
                                       std::span<const std::byte> in) {
  if (in.empty()) co_return;

  if (fs_.params().coalesce_rpcs) {
    co_await ensure_stripe_map(meta);
    auto coalesced = coalesce_by_io(meta.layout.map(off, in.size()));
    std::vector<sim::Task<void>> parts;
    parts.reserve(coalesced.size());
    for (auto& req : coalesced) {
      parts.push_back(store_coalesced(meta, std::move(req), off, in, /*fastpath=*/true));
    }
    co_await sim::when_all_propagate(machine_.simulation(), std::move(parts));
    meta.size = std::max<ByteCount>(meta.size, off + in.size());
    co_return;
  }

  auto requests = meta.layout.map(off, in.size());
  std::vector<sim::Task<void>> parts;
  parts.reserve(requests.size());
  for (auto& req : requests) {
    parts.push_back(store_extent(meta, std::move(req), off, in, /*fastpath=*/true));
  }
  co_await sim::when_all_propagate(machine_.simulation(), std::move(parts));
  meta.size = std::max<ByteCount>(meta.size, off + in.size());
}

sim::Task<ByteCount> PfsClient::write(int fd, std::span<const std::byte> in) {
  OpenFile& f = fstate(fd);
  const ByteCount len = in.size();
  const sim::SimTime start = machine_.simulation().now();

  FileOffset off = 0;
  sim::ResourceGuard unix_lock;
  switch (f.mode) {
    case IoMode::kUnix: {
      ++rpc_stats_.pointer_rpcs;
      trace::SpanGuard ptr_span(machine_.simulation(), trace::TraceTrack::kRpc,
                                trace::code::kRpcPointer, rank_, /*async=*/true, len,
                                0, trace::kFlagWrite);
      co_await machine_.mesh().send(mesh_node_, fs_.metadata_node(),
                                    fs_.params().control_message_bytes);
      unix_lock = co_await fs_.pointers().acquire_file_lock(f.file);
      co_await machine_.mesh().send(fs_.metadata_node(), mesh_node_,
                                    fs_.params().control_message_bytes);
      off = f.pointer;
      ptr_span.end(len);
      break;
    }
    case IoMode::kAsync:
      off = f.pointer;
      break;
    case IoMode::kRecord:
      off = f.pointer + static_cast<FileOffset>(rank_) * len;
      break;
    case IoMode::kLog: {
      ++rpc_stats_.pointer_rpcs;
      trace::SpanGuard ptr_span(machine_.simulation(), trace::TraceTrack::kRpc,
                                trace::code::kRpcPointer, rank_, /*async=*/true, len,
                                0, trace::kFlagWrite);
      co_await machine_.mesh().send(mesh_node_, fs_.metadata_node(),
                                    fs_.params().control_message_bytes);
      unix_lock = co_await fs_.pointers().acquire_file_lock(f.file);
      off = co_await fs_.pointers().fetch_and_add(f.file, len);
      co_await machine_.mesh().send(fs_.metadata_node(), mesh_node_,
                                    fs_.params().control_message_bytes);
      ptr_span.end(len);
      break;
    }
    case IoMode::kSync:
    case IoMode::kGlobal: {
      ++rpc_stats_.pointer_rpcs;
      trace::SpanGuard ptr_span(machine_.simulation(), trace::TraceTrack::kRpc,
                                trace::code::kRpcPointer, rank_, /*async=*/true, len);
      co_await machine_.mesh().send(mesh_node_, fs_.metadata_node(),
                                    fs_.params().control_message_bytes);
      off = co_await fs_.collectives().arrive(f.file, rank_, nprocs_, len,
                                              f.mode == IoMode::kGlobal);
      co_await machine_.mesh().send(fs_.metadata_node(), mesh_node_,
                                    fs_.params().control_message_bytes);
      ptr_span.end(len);
      break;
    }
  }

  if (fs_.params().write_tokens) {
    // TokenWrite path: secure an exclusive byte-range token (revoking any
    // conflicting holder, who flushes first), then buffer the data dirty in
    // the local write-back cache — no data RPC until revocation, fsync, or
    // the dirty budget forces an eviction. The syscall charge comes BEFORE
    // the acquire: once acquire_token returns the insert must follow with
    // no suspension point in between, or a rival's revocation could land
    // in the gap and this client would buffer (and later flush) bytes for
    // a range it no longer owns — a torn record on the servers.
    co_await cpu().compute(cpu().params().syscall_overhead);
    co_await acquire_token(f.file, off, off + len, TokenMode::kWrite);
    wb_insert(f.file, off, in);
    ++token_stats_.wb_writes;
    co_await wb_enforce_capacity();
  } else {
    co_await write_at(fd, off, in);
  }

  switch (f.mode) {
    case IoMode::kRecord:
      f.pointer += static_cast<FileOffset>(nprocs_) * len;
      break;
    default:
      f.pointer = off + len;
      break;
  }
  if (unix_lock.owns()) {
    unix_lock.release();
    co_await machine_.mesh().send(mesh_node_, fs_.metadata_node(),
                                  fs_.params().control_message_bytes);
  }

  ++stats_.writes;
  stats_.bytes_written += len;
  stats_.write_time += machine_.simulation().now() - start;
  co_return len;
}

sim::Task<AsyncHandle> PfsClient::iread(int fd, std::span<std::byte> out) {
  OpenFile& f = fstate(fd);
  const ByteCount len = out.size();
  if (traits(f.mode).shared_pointer || f.mode == IoMode::kUnix) {
    // The prototype's async path targets the locally-resolvable modes;
    // coordinated modes would need the pointer RPC inside the ART.
    if (f.mode != IoMode::kRecord && f.mode != IoMode::kAsync) {
      throw std::logic_error("iread: unsupported I/O mode " +
                             std::string(to_string(f.mode)));
    }
  }

  // "During the setup phase, the incoming request ... is allocated an
  // internal structure": charge the ART setup cost on the user thread.
  co_await cpu().compute(cpu().params().async_setup_overhead);

  auto req = std::make_shared<AsyncRequest>(machine_.simulation());
  req->fd = fd;
  req->length = len;
  req->out = out;
  req->fastpath = f.fastpath;
  if (f.mode == IoMode::kRecord) {
    req->offset = f.pointer + static_cast<FileOffset>(rank_) * len;
    f.pointer += static_cast<FileOffset>(nprocs_) * len;
  } else {
    req->offset = f.pointer;
    f.pointer += len;
  }
  arts_.post(req);
  co_return req;
}

sim::Task<AsyncHandle> PfsClient::iwrite(int fd, std::span<const std::byte> in) {
  OpenFile& f = fstate(fd);
  const ByteCount len = in.size();
  if (f.mode != IoMode::kRecord && f.mode != IoMode::kAsync) {
    throw std::logic_error("iwrite: unsupported I/O mode " +
                           std::string(to_string(f.mode)));
  }
  co_await cpu().compute(cpu().params().async_setup_overhead);

  auto req = std::make_shared<AsyncRequest>(machine_.simulation());
  req->fd = fd;
  req->length = len;
  req->in = in;
  req->is_write = true;
  req->fastpath = f.fastpath;
  if (f.mode == IoMode::kRecord) {
    req->offset = f.pointer + static_cast<FileOffset>(rank_) * len;
    f.pointer += static_cast<FileOffset>(nprocs_) * len;
  } else {
    req->offset = f.pointer;
    f.pointer += len;
  }
  arts_.post(req);
  co_return req;
}

sim::Task<ByteCount> PfsClient::iowait(AsyncHandle h) {
  if (!h) throw std::invalid_argument("iowait: null handle");
  co_return co_await arts_.wait(std::move(h));
}

// --- TokenWrite: byte-range token cache + client write-back cache ---------
//
// Everything below is dormant unless PfsParams::write_tokens is set; the
// default read/write paths never reach it, so read-only experiment digests
// are unchanged.

bool PfsClient::token_covered(FileId file, FileOffset begin, FileOffset end,
                              TokenMode mode) const {
  auto it = held_tokens_.find(file);
  if (it == held_tokens_.end()) return false;
  // Piecewise coverage sweep: a write must be covered by held write ranges;
  // a read is satisfied by either mode (a write token implies read rights).
  FileOffset cursor = begin;
  bool progressed = true;
  while (cursor < end && progressed) {
    progressed = false;
    for (const HeldRange& h : it->second) {
      if (h.begin > cursor || h.end <= cursor) continue;
      if (mode == TokenMode::kWrite && h.mode != TokenMode::kWrite) continue;
      cursor = h.end;
      progressed = true;
      break;
    }
  }
  return cursor >= end;
}

void PfsClient::hold_token(FileId file, FileOffset begin, FileOffset end, TokenMode mode) {
  // Mirror the manager's absorb step: the fresh grant replaces whatever this
  // client held over [begin, end) — including a write range a read acquire
  // just downgraded — with remainders split off.
  auto& held = held_tokens_[file];
  std::vector<HeldRange> pieces;
  for (std::size_t i = 0; i < held.size();) {
    const HeldRange h = held[i];
    if (h.end <= begin || h.begin >= end) {
      ++i;
      continue;
    }
    held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
    if (h.begin < begin) pieces.push_back({h.begin, begin, h.mode});
    if (h.end > end) pieces.push_back({end, h.end, h.mode});
  }
  for (const HeldRange& p : pieces) held.push_back(p);
  held.push_back({begin, end, mode});
}

void PfsClient::drop_token_range(FileId file, TokenRange range) {
  auto it = held_tokens_.find(file);
  if (it == held_tokens_.end()) return;
  auto& held = it->second;
  std::vector<HeldRange> pieces;
  for (std::size_t i = 0; i < held.size();) {
    const HeldRange h = held[i];
    if (h.end <= range.begin || h.begin >= range.end) {
      ++i;
      continue;
    }
    held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
    ++token_stats_.invalidations;
    if (h.begin < range.begin) pieces.push_back({h.begin, range.begin, h.mode});
    if (h.end > range.end) pieces.push_back({range.end, h.end, h.mode});
  }
  for (const HeldRange& p : pieces) held.push_back(p);
}

sim::Task<void> PfsClient::acquire_token(FileId file, FileOffset begin, FileOffset end,
                                         TokenMode mode) {
  if (begin >= end) co_return;
  if (token_covered(file, begin, end, mode)) {
    // The held-token cache makes repeated operations in an owned range
    // RPC-free — this is where non-conflicting writers scale.
    ++token_stats_.local_grants;
    co_return;
  }
  ++rpc_stats_.token_rpcs;
  const auto ctrl = fs_.params().control_message_bytes;
  trace::SpanGuard span(machine_.simulation(), trace::TraceTrack::kRpc,
                        trace::code::kRpcToken, rank_, /*async=*/true, end - begin,
                        static_cast<std::uint64_t>(file),
                        mode == TokenMode::kWrite ? trace::kFlagWrite : std::uint8_t{0});
  for (;;) {
    co_await machine_.mesh().send(mesh_node_, fs_.metadata_node(), ctrl);
    co_await fs_.tokens().acquire(token_client_id_, file, begin, end, mode);
    co_await machine_.mesh().send(fs_.metadata_node(), mesh_node_, ctrl);
    // A rival may have revoked this grant while our ack was still in
    // flight (its revoke callback found nothing to flush and nothing in
    // held_tokens_ to drop). Installing the range anyway would leave this
    // client convinced it owns a token the manager has already reassigned
    // — so re-check with the manager and re-acquire until the grant
    // survives the ack round-trip.
    if (fs_.tokens().holds(token_client_id_, file, begin, end, mode)) break;
  }
  hold_token(file, begin, end, mode);
  span.end(end - begin);
}

sim::Task<void> PfsClient::on_token_revoke(FileId file, TokenRange range, TokenMode mode) {
  ++token_stats_.revocations;
  if (mode == TokenMode::kWrite) {
    // Flush-before-ack: dirty data under a revoked write token must reach
    // the I/O nodes before the competing client's grant is installed.
    co_await flush_range(file, range.begin, range.end, token_stats_.revocation_flushes);
  }
  drop_token_range(file, range);
  if (auto* a = machine_.simulation().auditor()) {
    a->check_token_flush(machine_.simulation().now(),
                         wb_dirty_bytes_in(file, range.begin, range.end));
  }
}

void PfsClient::wb_insert(FileId file, FileOffset off, std::span<const std::byte> in) {
  if (in.empty()) return;
  auto& dirty = wb_[file].dirty;
  const FileOffset end = off + in.size();
  // Carve the new write's window out of any extent it overlaps, keeping
  // non-overlapped head/tail remainders, so the map stays non-overlapping.
  auto it = dirty.lower_bound(off);
  if (it != dirty.begin()) {
    const auto prev = std::prev(it);
    const FileOffset pb = prev->first;
    const FileOffset pe = pb + prev->second.size();
    if (pe > off) {
      std::vector<std::byte> tail;
      if (pe > end) {
        tail.assign(prev->second.begin() + static_cast<std::ptrdiff_t>(end - pb),
                    prev->second.end());
      }
      token_stats_.dirty_bytes -= std::min(pe, end) - off;
      prev->second.resize(static_cast<std::size_t>(off - pb));
      if (!tail.empty()) dirty.emplace(end, std::move(tail));
    }
  }
  it = dirty.lower_bound(off);
  while (it != dirty.end() && it->first < end) {
    const FileOffset b = it->first;
    const FileOffset e = b + it->second.size();
    if (e <= end) {
      token_stats_.dirty_bytes -= e - b;
      it = dirty.erase(it);
    } else {
      std::vector<std::byte> tail(it->second.begin() + static_cast<std::ptrdiff_t>(end - b),
                                  it->second.end());
      token_stats_.dirty_bytes -= end - b;
      dirty.erase(it);
      dirty.emplace(end, std::move(tail));
      break;
    }
  }
  dirty.emplace(off, std::vector<std::byte>(in.begin(), in.end()));
  token_stats_.dirty_bytes += in.size();
  token_stats_.peak_dirty_bytes =
      std::max(token_stats_.peak_dirty_bytes, token_stats_.dirty_bytes);
}

ByteCount PfsClient::wb_dirty_bytes_in(FileId file, FileOffset begin, FileOffset end) const {
  auto f = wb_.find(file);
  if (f == wb_.end()) return 0;
  ByteCount total = 0;
  for (const auto& [b, data] : f->second.dirty) {
    const FileOffset e = b + data.size();
    if (e <= begin) continue;
    if (b >= end) break;
    total += std::min(e, end) - std::max(b, begin);
  }
  return total;
}

bool PfsClient::wb_covers(FileId file, FileOffset off, ByteCount len) const {
  if (len == 0) return false;
  auto f = wb_.find(file);
  if (f == wb_.end()) return false;
  const auto& dirty = f->second.dirty;
  FileOffset cursor = off;
  const FileOffset end = off + len;
  auto it = dirty.upper_bound(off);
  if (it != dirty.begin()) --it;
  while (cursor < end) {
    if (it == dirty.end()) return false;
    const FileOffset b = it->first;
    const FileOffset e = b + it->second.size();
    if (e <= cursor) {
      ++it;
      continue;
    }
    if (b > cursor) return false;
    cursor = e;
    ++it;
  }
  return true;
}

ByteCount PfsClient::wb_overlay(FileId file, FileOffset off, std::span<std::byte> out,
                                ByteCount base_got) const {
  auto f = wb_.find(file);
  if (f == wb_.end()) return base_got;
  const FileOffset end = off + out.size();
  ByteCount reach = base_got;
  // Extents are offset-sorted and non-overlapping: one pass both copies the
  // overlapping dirty bytes over the server data (the cache is newer) and
  // extends the contiguous-coverage watermark from `off`.
  for (const auto& [b, data] : f->second.dirty) {
    const FileOffset e = b + data.size();
    if (e <= off) continue;
    if (b >= end) break;
    const FileOffset cb = std::max(b, off);
    const FileOffset ce = std::min(e, end);
    std::memcpy(out.data() + (cb - off), data.data() + (cb - b), ce - cb);
    if (b <= off + reach && e > off + reach) {
      reach = std::min<ByteCount>(e - off, out.size());
    }
  }
  return reach;
}

sim::Task<void> PfsClient::flush_range(FileId file, FileOffset begin, FileOffset end,
                                       std::uint64_t& cause_counter) {
  auto f = wb_.find(file);
  if (f == wb_.end()) co_return;
  PfsFileMeta& meta = fs_.file(file);
  for (;;) {
    // Re-find the next dirty extent intersecting [begin, end) each pass —
    // the map can shift while the store RPCs below are in flight.
    auto& dirty = f->second.dirty;
    auto it = dirty.upper_bound(begin);
    if (it != dirty.begin()) {
      const auto prev = std::prev(it);
      if (prev->first + prev->second.size() > begin) it = prev;
    }
    if (it == dirty.end() || it->first >= end) co_return;
    const FileOffset b = it->first;
    const FileOffset e = b + it->second.size();
    const FileOffset cb = std::max(b, begin);
    const FileOffset ce = std::min(e, end);
    // Detach the flushed slice BEFORE awaiting: a concurrent writer must
    // never see the same bytes both dirty and in flight.
    std::vector<std::byte> data(it->second.begin() + static_cast<std::ptrdiff_t>(cb - b),
                                it->second.begin() + static_cast<std::ptrdiff_t>(ce - b));
    std::vector<std::byte> tail;
    if (e > ce) {
      tail.assign(it->second.begin() + static_cast<std::ptrdiff_t>(ce - b),
                  it->second.end());
    }
    if (cb > b) {
      it->second.resize(static_cast<std::size_t>(cb - b));
    } else {
      dirty.erase(it);
    }
    if (!tail.empty()) dirty.emplace(ce, std::move(tail));
    token_stats_.dirty_bytes -= ce - cb;
    ++token_stats_.flush_ops;
    ++cause_counter;
    token_stats_.flushed_bytes += ce - cb;
    co_await store_range(meta, cb, data);
  }
}

sim::Task<void> PfsClient::wb_enforce_capacity() {
  const ByteCount budget = fs_.params().write_back_bytes;
  while (token_stats_.dirty_bytes > budget) {
    // Evict the lowest-offset extent of the lowest-id file — deterministic,
    // and sequential writers flush in file order.
    FileId victim = 0;
    bool found = false;
    for (const auto& [file, cache] : wb_) {
      if (!cache.dirty.empty()) {
        victim = file;
        found = true;
        break;
      }
    }
    if (!found) co_return;  // accounting drift guard; cannot happen
    const auto& first = *wb_[victim].dirty.begin();
    const FileOffset b = first.first;
    const FileOffset e = b + first.second.size();
    co_await flush_range(victim, b, e, token_stats_.capacity_evictions);
  }
}

sim::Task<void> PfsClient::fsync(int fd) {
  OpenFile& f = fstate(fd);
  co_await cpu().compute(cpu().params().syscall_overhead);
  if (!fs_.params().write_tokens) co_return;
  co_await flush_range(f.file, 0, std::numeric_limits<FileOffset>::max(),
                       token_stats_.fsync_flushes);
}

AsyncHandle PfsClient::post_prefetch(int fd, FileOffset off, ByteCount len,
                                     std::span<std::byte> out) {
  auto req = std::make_shared<AsyncRequest>(machine_.simulation());
  req->fd = fd;
  req->offset = off;
  req->length = len;
  req->out = out;
  req->fastpath = fstate(fd).fastpath;
  req->is_prefetch = true;
  arts_.post(req);
  return req;
}

}  // namespace ppfs::pfs
