#include "pfs/async.hpp"

#include <utility>

namespace ppfs::pfs {

ArtQueue::ArtQueue(sim::Simulation& s, std::size_t max_arts, PerformFn perform)
    : sim_(s), arts_(s, max_arts == 0 ? 1 : max_arts), perform_(std::move(perform)) {}

void ArtQueue::post(AsyncHandle req) {
  req->posted_at = sim_.now();
  active_list_.push_back(std::move(req));
  pump();
}

void ArtQueue::pump() {
  // Start ARTs for queue heads while thread slots are free. run_art
  // acquires its slot synchronously here via the available() check, so
  // FIFO issue order is preserved.
  while (!active_list_.empty() && arts_.available() > 0) {
    AsyncHandle req = active_list_.front();
    active_list_.pop_front();
    sim_.spawn(run_art(std::move(req)));
  }
}

sim::Task<void> ArtQueue::run_art(AsyncHandle req) {
  auto slot = co_await arts_.acquire();  // immediate: pump checked available()
  try {
    req->result = co_await perform_(*req);
  } catch (...) {
    req->error = std::current_exception();
  }
  req->completed_at = sim_.now();
  ++completed_;
  req->done.set();
  slot.release();
  pump();  // admit the next queued request, if any
}

sim::Task<ByteCount> ArtQueue::wait(AsyncHandle req) {
  co_await req->done.wait();
  if (req->error) std::rethrow_exception(req->error);
  co_return req->result;
}

}  // namespace ppfs::pfs
