#include "pfs/io_mode.hpp"

#include <stdexcept>

namespace ppfs::pfs {

namespace {
//                                     shared  atomic  ordered  synced  same   fixed
constexpr IoModeTraits kUnixTraits{false, true, false, false, false, false, "M_UNIX"};
constexpr IoModeTraits kAsyncTraits{false, false, false, false, false, false, "M_ASYNC"};
constexpr IoModeTraits kSyncTraits{true, false, true, true, false, false, "M_SYNC"};
constexpr IoModeTraits kRecordTraits{true, false, true, false, false, true, "M_RECORD"};
constexpr IoModeTraits kGlobalTraits{true, false, true, true, true, false, "M_GLOBAL"};
constexpr IoModeTraits kLogTraits{true, true, false, false, false, false, "M_LOG"};
}  // namespace

const IoModeTraits& traits(IoMode mode) {
  switch (mode) {
    case IoMode::kUnix: return kUnixTraits;
    case IoMode::kAsync: return kAsyncTraits;
    case IoMode::kSync: return kSyncTraits;
    case IoMode::kRecord: return kRecordTraits;
    case IoMode::kGlobal: return kGlobalTraits;
    case IoMode::kLog: return kLogTraits;
  }
  throw std::invalid_argument("traits: unknown IoMode");
}

const std::array<IoMode, 6>& all_io_modes() {
  static const std::array<IoMode, 6> modes{IoMode::kUnix,   IoMode::kAsync, IoMode::kSync,
                                           IoMode::kRecord, IoMode::kGlobal, IoMode::kLog};
  return modes;
}

std::string_view to_string(IoMode mode) { return traits(mode).name; }

}  // namespace ppfs::pfs
