#include "pfs/pointer_server.hpp"

#include <stdexcept>

namespace ppfs::pfs {

PointerService::State& PointerService::state(FileId file) {
  auto it = files_.find(file);
  if (it == files_.end()) {
    State s;
    s.lock = std::make_unique<sim::Resource>(machine_.simulation(), 1);
    it = files_.emplace(file, std::move(s)).first;
  }
  return it->second;
}

sim::Task<FileOffset> PointerService::fetch_and_add(FileId file, ByteCount len) {
  // The pointer update itself runs on the metadata node's CPU; concurrent
  // fetch_and_adds from many compute nodes serialize here.
  co_await machine_.cpu(home_).compute(service_time_);
  State& s = state(file);
  const FileOffset off = s.pointer;
  s.pointer += len;
  ++ops_;
  co_return off;
}

sim::Task<sim::ResourceGuard> PointerService::acquire_file_lock(FileId file) {
  co_await machine_.cpu(home_).compute(service_time_);
  ++ops_;
  auto guard = co_await state(file).lock->acquire();
  co_return std::move(guard);
}

FileOffset PointerService::pointer(FileId file) const {
  auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.pointer;
}

void PointerService::set_pointer(FileId file, FileOffset off) { state(file).pointer = off; }

sim::Task<FileOffset> CollectiveService::arrive(FileId file, int rank, int nprocs,
                                                ByteCount len, bool same_data) {
  if (rank < 0 || rank >= nprocs) throw std::invalid_argument("CollectiveService: bad rank");
  co_await machine_.cpu(home_).compute(service_time_);

  auto& slot = open_rounds_[file];
  if (!slot) {
    slot = std::make_shared<Round>();
    slot->sizes.assign(nprocs, 0);
    slot->present.assign(nprocs, false);
    slot->offsets.assign(nprocs, 0);
    slot->same_data = same_data;
    slot->done = std::make_unique<sim::Event>(machine_.simulation());
  }
  std::shared_ptr<Round> round = slot;
  if (static_cast<int>(round->sizes.size()) != nprocs || round->same_data != same_data) {
    throw std::logic_error("CollectiveService: inconsistent collective call");
  }
  if (round->present[rank]) {
    throw std::logic_error("CollectiveService: rank arrived twice in one round");
  }
  round->present[rank] = true;
  round->sizes[rank] = len;
  ++round->arrived;

  if (round->arrived == static_cast<std::size_t>(nprocs)) {
    // Last arrival: assign node-ordered offsets and advance the pointer.
    FileOffset cursor = pointers_.pointer(file);
    if (same_data) {
      for (int r = 0; r < nprocs; ++r) round->offsets[r] = cursor;
      pointers_.set_pointer(file, cursor + round->sizes[0]);
    } else {
      for (int r = 0; r < nprocs; ++r) {
        round->offsets[r] = cursor;
        cursor += round->sizes[r];
      }
      pointers_.set_pointer(file, cursor);
    }
    ++rounds_;
    open_rounds_.erase(file);  // next arrival opens a fresh round
    round->done->set();
  } else {
    co_await round->done->wait();
  }
  co_return round->offsets[rank];
}

}  // namespace ppfs::pfs
