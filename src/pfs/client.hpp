// PfsClient: the client (compute-node) side of the PFS, one instance per
// application process.
//
// This is where the paper's prototype lives: "A read prefetch request is
// issued from the client-side of the Paragon OS for every read request that
// is issued by the user." The client exposes the Prefetcher hook points:
// before a read it offers the request to the prefetcher (hit = data served
// from a prefetch buffer); after a (miss) read completes it notifies the
// prefetcher, which may post a prefetch through the same ART queue user
// ireads use.
//
// Mode semantics implemented here (offset resolution per read):
//   M_UNIX    own pointer, global per-file lock held across the transfer
//   M_ASYNC   own pointer, no coordination
//   M_RECORD  fixed records in rank order: offset = ptr + rank*len;
//             afterwards ptr += nprocs*len (all nodes advance identically)
//   M_LOG     shared pointer: fetch-and-add RPC to the metadata node
//   M_SYNC    gang call: all ranks arrive, node-ordered offsets assigned
//   M_GLOBAL  gang call, same offset for everyone; data path goes through
//             the I/O-node buffer cache so N nodes trigger one disk read
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fault/error.hpp"
#include "hw/machine.hpp"
#include "pfs/async.hpp"
#include "pfs/filesystem.hpp"
#include "pfs/io_mode.hpp"
#include "pfs/token.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"
#include "sim/types.hpp"

namespace ppfs::pfs {

class PfsClient;

/// Hook interface implemented by the prefetch engine (src/prefetch). The
/// client works identically with or without one attached — attaching the
/// engine IS the paper's "with prefetching" configuration.
class Prefetcher {
 public:
  virtual ~Prefetcher() = default;
  /// Attempt to serve a read from prefetched data. Returns the byte count
  /// on a hit (including a hit on an in-flight prefetch, after waiting for
  /// it), or nullopt on a miss.
  virtual sim::Task<std::optional<ByteCount>> try_serve(int fd, FileOffset off, ByteCount len,
                                                        std::span<std::byte> out) = 0;
  /// Called after every user read (hit or miss) so the engine can issue
  /// the next prefetch, "totally driven by the application's access
  /// requests". Awaitable because issuing a prefetch costs user-thread CPU
  /// (the ART setup + buffer allocation) — the overhead the paper measures.
  virtual sim::Task<void> after_read(int fd, FileOffset off, ByteCount len) = 0;
  virtual void on_open(int fd) = 0;
  /// "At the time the process closes the file, all the prefetch buffers
  /// are freed."
  virtual void on_close(int fd) = 0;
};

struct ClientStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  ByteCount bytes_read = 0;
  ByteCount bytes_written = 0;
  sim::SimTime read_time = 0;   // wall time inside read() calls
  sim::SimTime write_time = 0;
};

/// Counters of the RPC reliability envelope wrapped around every
/// fetch/store extent RPC (see fetch_extent): attempts, recovery behavior,
/// and per-cause failure classification.
struct RpcStats {
  std::uint64_t attempts = 0;         // RPC attempts issued (incl. reissues)
  // Per-class RPC counters: without them the metadata node's control
  // traffic is invisible in the stats even though it is the hot spot.
  std::uint64_t data_rpcs = 0;      // fetch/store extent RPCs (one per request)
  std::uint64_t metadata_rpcs = 0;  // metadata-node round trips (open, seek, map)
  std::uint64_t pointer_rpcs = 0;   // pointer/lock/collective claims inside read/write
  std::uint64_t token_rpcs = 0;     // byte-range token acquisitions (TokenWrite)
  std::uint64_t coalesced_rpcs = 0;     // data RPCs that were scatter-gather
  std::uint64_t coalesced_extents = 0;  // extents those RPCs carried
  std::uint64_t stripe_map_refreshes = 0;  // cached stripe-map (re)loads
  std::uint64_t retries = 0;          // reissues after a failed attempt
  std::uint64_t retried_ok = 0;       // failed attempts eventually healed by retry
  std::uint64_t down_waits = 0;       // recovery waits for a down I/O node
  std::uint64_t timeouts = 0;         // recovery waits that hit the deadline
  std::uint64_t terminal_errors = 0;  // RPCs that gave up (typed error to caller)
  std::array<std::uint64_t, fault::kErrorCauseCount> cause_counts{};
  sim::SimTime backoff_time = 0;        // summed backoff sleeps
  sim::SimTime recovery_wait_time = 0;  // summed waits for node restart

  std::uint64_t fault_signal() const {
    return retries + down_waits + timeouts + terminal_errors;
  }
};

/// TokenWrite client-side counters: the token cache and the write-back
/// cache together (pfs_execstat-style). All zero unless
/// PfsParams::write_tokens is enabled.
struct TokenCacheStats {
  std::uint64_t local_grants = 0;        // acquisitions satisfied by a held token
  std::uint64_t revocations = 0;         // revoke callbacks served
  std::uint64_t invalidations = 0;       // held ranges dropped/trimmed by revocation
  std::uint64_t wb_writes = 0;           // writes buffered dirty (no RPC issued)
  std::uint64_t wb_read_hits = 0;        // reads served wholly from own dirty data
  std::uint64_t flush_ops = 0;           // dirty extents flushed to the servers
  ByteCount flushed_bytes = 0;
  std::uint64_t revocation_flushes = 0;  // flush ops forced by a revocation
  std::uint64_t fsync_flushes = 0;       // flush ops from fsync
  std::uint64_t capacity_evictions = 0;  // flush ops forced by the dirty budget
  ByteCount dirty_bytes = 0;             // currently buffered
  ByteCount peak_dirty_bytes = 0;
};

class PfsClient : public TokenRevokeHandler {
 public:
  /// `compute_index`: which compute node this process runs on;
  /// `rank`/`nprocs`: the process's position in the parallel application.
  PfsClient(PfsFileSystem& fs, int compute_index, int rank, int nprocs);
  ~PfsClient() override;
  PfsClient(const PfsClient&) = delete;
  PfsClient& operator=(const PfsClient&) = delete;

  // --- lifecycle ---
  sim::Task<int> open(const std::string& name, IoMode mode);
  void close(int fd);
  void set_prefetcher(Prefetcher* p) { prefetcher_ = p; }

  /// Change the I/O mode mid-file ("the application can also set/modify
  /// the I/O mode during the course of reading or writing the file").
  /// A metadata operation; resets nothing but the coordination regime —
  /// the (local) file pointer keeps its position.
  sim::Task<void> set_iomode(int fd, IoMode mode);

  /// Toggle Fast Path for this fd. When off, reads go through the
  /// I/O-node buffer cache ("currently supported buffering strategies
  /// allow data buffering on the I/O nodes to be enabled or disabled").
  void set_fastpath(int fd, bool enabled) { fstate(fd).fastpath = enabled; }
  bool fastpath(int fd) const { return fstate(fd).fastpath; }

  // --- synchronous I/O ---
  /// Read out.size() bytes at the mode-resolved offset. Returns bytes read
  /// (clamped at EOF).
  sim::Task<ByteCount> read(int fd, std::span<std::byte> out);
  sim::Task<ByteCount> write(int fd, std::span<const std::byte> in);
  sim::Task<void> seek(int fd, FileOffset off);
  /// TokenWrite: flush every dirty write-back extent of this fd's file to
  /// the I/O nodes. A no-op when write tokens are off (writes are then
  /// write-through and already durable).
  sim::Task<void> fsync(int fd);

  // --- asynchronous I/O (the ART path) ---
  /// Post an asynchronous read; the pointer advances immediately, the data
  /// lands later. Only the locally-resolvable modes (M_ASYNC, M_RECORD)
  /// support asynchronous requests.
  sim::Task<AsyncHandle> iread(int fd, std::span<std::byte> out);
  /// Asynchronous write through the same ART machinery. The caller's
  /// buffer must stay alive until iowait returns.
  sim::Task<AsyncHandle> iwrite(int fd, std::span<const std::byte> in);
  sim::Task<ByteCount> iowait(AsyncHandle h);

  // --- positioned raw access (no pointer movement; prefetch uses this) ---
  sim::Task<ByteCount> read_at(int fd, FileOffset off, ByteCount len,
                               std::span<std::byte> out, bool fastpath);

  /// Post a positioned read through the ART queue without touching file
  /// pointers — exactly how the prototype issued prefetches.
  AsyncHandle post_prefetch(int fd, FileOffset off, ByteCount len, std::span<std::byte> out);

  // --- introspection ---
  FileOffset tell(int fd) const;
  IoMode mode_of(int fd) const;
  ByteCount file_size(int fd) const;
  /// Where this rank's NEXT synchronous read of `len` bytes will fall,
  /// under the fd's I/O mode. Exact for M_UNIX/M_ASYNC/M_RECORD; for the
  /// shared-pointer modes it is a best-effort guess (and the paper's
  /// prototype only targeted M_RECORD).
  FileOffset next_read_offset(int fd, ByteCount len) const;
  bool next_offset_predictable(int fd) const;

  int rank() const noexcept { return rank_; }
  int nprocs() const noexcept { return nprocs_; }
  const ClientStats& stats() const noexcept { return stats_; }
  const RpcStats& rpc_stats() const noexcept { return rpc_stats_; }
  const TokenCacheStats& token_stats() const noexcept { return token_stats_; }

  // --- TokenRevokeHandler (called by the metadata node's token manager) ---
  hw::NodeId token_node() const override { return mesh_node_; }
  /// Flush-before-ack: flushes every dirty byte inside `range`, drops the
  /// cached token, and only then returns (the return is the ack).
  sim::Task<void> on_token_revoke(FileId file, TokenRange range, TokenMode mode) override;
  ArtQueue& arts() noexcept { return arts_; }
  hw::Machine& machine() noexcept { return machine_; }
  PfsFileSystem& filesystem() noexcept { return fs_; }
  hw::NodeCpu& cpu() { return machine_.cpu(mesh_node_); }

 private:
  struct OpenFile {
    FileId file = 0;
    IoMode mode = IoMode::kUnix;
    FileOffset pointer = 0;
    bool fastpath = true;
  };

  OpenFile& fstate(int fd);
  const OpenFile& fstate(int fd) const;

  /// One control-message round trip to the metadata node.
  sim::Task<void> metadata_rpc();

  /// Move one stripe extent: request message out, server read, data back,
  /// scatter into the user buffer. Wrapped in the RPC reliability envelope:
  /// bounded retries with backoff, recovery waits on a down node, and a
  /// per-request deadline; exhausting the budget throws FaultError.
  sim::Task<void> fetch_extent(PfsFileMeta& meta, IoNodeRequest req, FileOffset base,
                               std::span<std::byte> out, bool fastpath);
  sim::Task<void> store_extent(PfsFileMeta& meta, IoNodeRequest req, FileOffset base,
                               std::span<const std::byte> in, bool fastpath);

  /// Scatter-gather variants (PfsParams::coalesce_rpcs): every extent bound
  /// for one I/O node rides one RPC — one control round-trip, one server
  /// request-handling charge, one data reply. Same reliability envelope.
  sim::Task<void> fetch_coalesced(PfsFileMeta& meta, CoalescedRequest req, FileOffset base,
                                  std::span<std::byte> out, bool fastpath);
  sim::Task<void> store_coalesced(PfsFileMeta& meta, CoalescedRequest req, FileOffset base,
                                  std::span<const std::byte> in, bool fastpath);

  /// Per-file stripe-map cache (coalesced path only): the first operation
  /// on a file — and the first after any crash/restore bumps the mount's
  /// topology epoch — pays one metadata round-trip to (re)load the map;
  /// every later operation resolves extents locally instead of paying a
  /// per-operation metadata/pointer trip.
  sim::Task<void> ensure_stripe_map(const PfsFileMeta& meta);

  /// Shared failure path of the envelope: account the caught fault, wait
  /// out a down node (bounded by `deadline`), back off before the reissue
  /// — or give up by throwing a terminal FaultError. `failures` counts the
  /// failed attempts of this request so far (including the current one).
  sim::Task<void> rpc_recover(int io_index, fault::ErrorCause cause, std::uint32_t attempt,
                              std::uint32_t failures, sim::SimTime deadline);

  sim::Task<void> write_at(int fd, FileOffset off, std::span<const std::byte> in);

  // --- TokenWrite internals (all dormant unless params().write_tokens) ---

  /// A token range this client believes it holds (its token cache). Held
  /// ranges make repeated operations in an owned range RPC-free; the
  /// manager shrinks them back through on_token_revoke.
  struct HeldRange {
    FileOffset begin = 0;
    FileOffset end = 0;
    TokenMode mode = TokenMode::kRead;
  };
  /// Per-file write-back cache: non-overlapping dirty extents keyed by
  /// start offset. Data stays here until revocation, fsync, or the
  /// per-client dirty budget forces a flush.
  struct WriteBack {
    std::map<FileOffset, std::vector<std::byte>> dirty;
  };

  /// Acquire (or locally confirm) a token for [begin, end). One control
  /// round trip + manager call on a miss; pure bookkeeping on a hit.
  sim::Task<void> acquire_token(FileId file, FileOffset begin, FileOffset end,
                                TokenMode mode);
  bool token_covered(FileId file, FileOffset begin, FileOffset end, TokenMode mode) const;
  void hold_token(FileId file, FileOffset begin, FileOffset end, TokenMode mode);
  /// Drop held ranges intersecting `range` (invalidate), splitting
  /// remainders.
  void drop_token_range(FileId file, TokenRange range);

  /// The raw striped store path (mapping + extent/coalesced RPCs + size
  /// update) — write_at's body, reused by the write-back flushes.
  sim::Task<void> store_range(PfsFileMeta& meta, FileOffset off,
                              std::span<const std::byte> in);
  /// Flush dirty extents intersecting [begin, end), lowest offset first;
  /// each flush op also bumps `cause_counter`.
  sim::Task<void> flush_range(FileId file, FileOffset begin, FileOffset end,
                              std::uint64_t& cause_counter);
  /// Flush lowest-offset extents (any file) until dirty_bytes fits the
  /// write-back budget again.
  sim::Task<void> wb_enforce_capacity();
  void wb_insert(FileId file, FileOffset off, std::span<const std::byte> in);
  ByteCount wb_dirty_bytes_in(FileId file, FileOffset begin, FileOffset end) const;
  bool wb_covers(FileId file, FileOffset off, ByteCount len) const;
  /// Copy dirty bytes overlapping [off, off+out.size()) into `out`;
  /// returns the contiguous coverage from `off` given `base_got` bytes
  /// already valid from the normal read path.
  ByteCount wb_overlay(FileId file, FileOffset off, std::span<std::byte> out,
                       ByteCount base_got) const;

  PfsFileSystem& fs_;
  hw::Machine& machine_;
  int compute_index_;
  hw::NodeId mesh_node_;
  int rank_;
  int nprocs_;
  Prefetcher* prefetcher_ = nullptr;
  ArtQueue arts_;
  std::map<int, OpenFile> fds_;
  std::map<FileId, std::uint64_t> stripe_map_epoch_;  // file -> topology epoch cached at
  int next_fd_ = 3;
  ClientStats stats_;
  RpcStats rpc_stats_;
  TokenCacheStats token_stats_;
  std::map<FileId, std::vector<HeldRange>> held_tokens_;
  std::map<FileId, WriteBack> wb_;
  int token_client_id_ = -1;  // registered with the manager when tokens are on
  sim::Rng rpc_rng_;  // deterministic per-rank backoff-jitter stream
};

}  // namespace ppfs::pfs
