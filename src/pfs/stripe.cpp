#include "pfs/stripe.hpp"

#include <algorithm>
#include <stdexcept>

namespace ppfs::pfs {

StripeLayout::StripeLayout(StripeAttrs attrs) : attrs_(std::move(attrs)) {
  if (attrs_.stripe_unit == 0) throw std::invalid_argument("StripeLayout: zero stripe unit");
  if (attrs_.stripe_group.empty()) {
    throw std::invalid_argument("StripeLayout: empty stripe group");
  }
}

std::vector<IoNodeRequest> StripeLayout::map(FileOffset off, ByteCount len) const {
  const int n = attrs_.group_size();
  std::vector<IoNodeRequest> per_slot(n);
  std::vector<bool> used(n, false);

  FileOffset pos = off;
  const FileOffset end = off + len;
  while (pos < end) {
    const std::uint64_t stripe = pos / attrs_.stripe_unit;
    const FileOffset stripe_end = (stripe + 1) * attrs_.stripe_unit;
    const ByteCount chunk = std::min<FileOffset>(stripe_end, end) - pos;
    const int slot = static_cast<int>(stripe % static_cast<std::uint64_t>(n));

    IoNodeRequest& req = per_slot[slot];
    if (!used[slot]) {
      used[slot] = true;
      req.group_slot = slot;
      req.io_index = attrs_.stripe_group[slot];
      req.local_offset = local_offset(pos);
      req.length = 0;
    }
    req.pieces.push_back(StripePiece{pos, chunk});
    req.length += chunk;
    pos += chunk;
  }

  std::vector<IoNodeRequest> out;
  for (int s = 0; s < n; ++s) {
    if (used[s]) out.push_back(std::move(per_slot[s]));
  }
  return out;
}

std::vector<CoalescedRequest> coalesce_by_io(std::vector<IoNodeRequest> reqs) {
  std::vector<CoalescedRequest> out;
  for (IoNodeRequest& req : reqs) {
    CoalescedRequest* dst = nullptr;
    for (CoalescedRequest& c : out) {
      if (c.io_index == req.io_index) {
        dst = &c;
        break;
      }
    }
    if (!dst) {
      out.push_back(CoalescedRequest{req.io_index, 0, {}});
      dst = &out.back();
    }
    dst->length += req.length;
    dst->extents.push_back(CoalescedExtent{req.group_slot, req.local_offset, req.length,
                                           std::move(req.pieces)});
  }
  return out;
}

std::vector<ByteCount> StripeLayout::local_sizes(ByteCount file_size) const {
  const int n = attrs_.group_size();
  const ByteCount round = attrs_.stripe_unit * static_cast<ByteCount>(n);
  const ByteCount full_rounds = file_size / round;
  const ByteCount rem = file_size % round;
  std::vector<ByteCount> sizes(n, full_rounds * attrs_.stripe_unit);
  for (int s = 0; s < n; ++s) {
    const ByteCount slot_start = static_cast<ByteCount>(s) * attrs_.stripe_unit;
    if (rem > slot_start) {
      sizes[s] += std::min<ByteCount>(rem - slot_start, attrs_.stripe_unit);
    }
  }
  return sizes;
}

}  // namespace ppfs::pfs
