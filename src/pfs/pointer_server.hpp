// Shared-pointer and collective coordination services.
//
// The shared-pointer I/O modes need a single serialization point: "All the
// individual file pointers are required to point to the same location
// before a read request is issued in any of the PFS I/O modes. Before
// processing the read request, the Paragon OS sets the individual file
// pointers from the nodes to point to the starting locations of separate
// areas in the file."
//
// These services live on the PFS metadata node (I/O node 0). Message costs
// to reach them are charged by the client; the services charge the
// metadata node's CPU per operation, so heavy pointer traffic contends
// there — the M_UNIX/M_LOG bottleneck in Figure 2.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "hw/machine.hpp"
#include "sim/event.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"
#include "sim/types.hpp"

namespace ppfs::pfs {

using sim::ByteCount;
using sim::FileOffset;

using FileId = std::uint64_t;

/// Shared file pointers plus the per-file atomicity lock.
class PointerService {
 public:
  PointerService(hw::Machine& machine, hw::NodeId home_node, double service_time)
      : machine_(machine), home_(home_node), service_time_(service_time) {}
  PointerService(const PointerService&) = delete;
  PointerService& operator=(const PointerService&) = delete;

  /// M_LOG: atomically claim [pointer, pointer+len) and advance.
  sim::Task<FileOffset> fetch_and_add(FileId file, ByteCount len);

  /// M_UNIX atomicity: exclusive per-file access token, held for the whole
  /// data transfer. FIFO-fair.
  sim::Task<sim::ResourceGuard> acquire_file_lock(FileId file);

  FileOffset pointer(FileId file) const;
  void set_pointer(FileId file, FileOffset off);

  std::uint64_t operations() const noexcept { return ops_; }

 private:
  struct State {
    FileOffset pointer = 0;
    std::unique_ptr<sim::Resource> lock;
  };
  State& state(FileId file);

  hw::Machine& machine_;
  hw::NodeId home_;
  double service_time_;
  std::map<FileId, State> files_;
  std::uint64_t ops_ = 0;
};

/// Gang coordination for the synchronized modes (M_SYNC, M_GLOBAL).
///
/// Every participant of a collective op calls arrive() with its request
/// size; the last arrival assigns offsets in node (rank) order from the
/// file's shared pointer and advances it — by the sum of sizes for M_SYNC,
/// or by one request for M_GLOBAL (everyone reads the same data).
class CollectiveService {
 public:
  CollectiveService(hw::Machine& machine, hw::NodeId home_node, PointerService& pointers,
                    double service_time)
      : machine_(machine), home_(home_node), pointers_(pointers), service_time_(service_time) {}
  CollectiveService(const CollectiveService&) = delete;
  CollectiveService& operator=(const CollectiveService&) = delete;

  /// Blocks until all `nprocs` ranks of this round have arrived; returns
  /// this rank's assigned file offset.
  sim::Task<FileOffset> arrive(FileId file, int rank, int nprocs, ByteCount len,
                               bool same_data);

  std::uint64_t rounds_completed() const noexcept { return rounds_; }

 private:
  struct Round {
    std::vector<ByteCount> sizes;
    std::vector<bool> present;
    std::size_t arrived = 0;
    bool same_data = false;
    std::vector<FileOffset> offsets;
    std::unique_ptr<sim::Event> done;
  };

  hw::Machine& machine_;
  hw::NodeId home_;
  PointerService& pointers_;
  double service_time_;
  std::map<FileId, std::shared_ptr<Round>> open_rounds_;
  std::uint64_t rounds_ = 0;
};

}  // namespace ppfs::pfs
