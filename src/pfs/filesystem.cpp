#include "pfs/filesystem.hpp"

#include <stdexcept>

namespace ppfs::pfs {

PfsFileSystem::PfsFileSystem(hw::Machine& machine, PfsParams params)
    : machine_(machine),
      params_(std::move(params)),
      metadata_node_(machine.io_node(0)),
      pointers_(machine, metadata_node_, params_.pointer_service_time),
      collectives_(machine, metadata_node_, pointers_, params_.pointer_service_time),
      tokens_(machine, metadata_node_, params_.pointer_service_time,
              params_.control_message_bytes) {
  servers_.reserve(static_cast<std::size_t>(machine.io_node_count()));
  for (int i = 0; i < machine.io_node_count(); ++i) {
    servers_.emplace_back(machine, i, params_).set_topology_epoch_counter(&topology_epoch_);
  }
}

StripeAttrs PfsFileSystem::default_attrs() const {
  StripeAttrs attrs;
  attrs.stripe_unit = params_.ufs.block_bytes;
  attrs.stripe_group.clear();
  for (int i = 0; i < static_cast<int>(servers_.size()); ++i) {
    attrs.stripe_group.push_back(i);
  }
  return attrs;
}

PfsFileMeta& PfsFileSystem::create(const std::string& name) {
  return create(name, default_attrs());
}

PfsFileMeta& PfsFileSystem::create(const std::string& name, StripeAttrs attrs) {
  if (files_.count(name)) throw std::invalid_argument("PFS: file exists: " + name);
  for (int io : attrs.stripe_group) {
    if (io < 0 || io >= static_cast<int>(servers_.size())) {
      throw std::out_of_range("PFS: stripe group references missing I/O node");
    }
  }
  auto meta = std::make_unique<PfsFileMeta>(attrs);
  meta->id = next_id_++;
  meta->name = name;
  for (int slot = 0; slot < attrs.group_size(); ++slot) {
    const int io = attrs.stripe_group[slot];
    meta->stripe_inos.push_back(
        servers_[static_cast<std::size_t>(io)].ufs().create(name + ".s" + std::to_string(slot)));
  }
  PfsFileMeta& ref = *meta;
  by_id_[ref.id] = meta.get();
  files_[name] = std::move(meta);
  return ref;
}

PfsFileMeta* PfsFileSystem::lookup(const std::string& name) {
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : it->second.get();
}

PfsFileMeta& PfsFileSystem::file(FileId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) throw std::out_of_range("PFS: bad file id");
  return *it->second;
}

}  // namespace ppfs::pfs
