// Stripe layout: how a PFS file's bytes map onto the I/O nodes.
//
// "Stripe attributes describe how the file is to be laid out via parameters
// such as the stripe unit size (unit of data interleaving) and the stripe
// group (the I/O node disk partitions across which a PFS file is
// interleaved)."
//
// Mapping (paper Figure 3): stripe unit s = offset / stripe_unit lives on
// group[s % n] at local offset (s / n) * stripe_unit + offset % stripe_unit.
// A byte range therefore decomposes into at most one request per group
// member, each covering a CONTIGUOUS range of that member's stripe file —
// the member's share of consecutive stripes is consecutive locally. The
// `pieces` of a request record where each stripe-unit-sized slice belongs
// in the file, which is what the client needs to scatter arriving data into
// the user buffer.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace ppfs::pfs {

using sim::ByteCount;
using sim::FileOffset;

struct StripeAttrs {
  /// Unit of data interleaving. Paper default: 64 KB.
  ByteCount stripe_unit = 64 * 1024;
  /// I/O-node indices the file is interleaved across, in stripe order.
  /// The same node may appear more than once ("striping 8 ways across
  /// 1 node" in the paper's Table 4 uses {0,0,0,0,0,0,0,0}).
  std::vector<int> stripe_group = {0};

  int group_size() const { return static_cast<int>(stripe_group.size()); }
};

/// One slice of an I/O-node request, in file space.
struct StripePiece {
  FileOffset file_offset;  // where this slice belongs in the PFS file
  ByteCount length;
};

/// The portion of a byte range served by one stripe-group slot.
struct IoNodeRequest {
  int group_slot;          // index into StripeAttrs::stripe_group
  int io_index;            // the I/O node behind that slot
  FileOffset local_offset; // contiguous start within the slot's stripe file
  ByteCount length;        // total bytes from this slot
  std::vector<StripePiece> pieces;  // in local order; file_offset ascending
};

/// One stripe-file extent inside a coalesced (scatter-gather) RPC. Each
/// extent is contiguous within its own stripe file; `group_slot` selects
/// which stripe file on the target node.
struct CoalescedExtent {
  int group_slot;
  FileOffset local_offset;
  ByteCount length;
  std::vector<StripePiece> pieces;  // file-space slices, offset ascending
};

/// All of one byte-range's traffic to a single I/O node, merged into one
/// RPC: one control round-trip moves every extent the node serves. With
/// the Table-4 "stripe 8 ways across 1 node" layout this turns 8 per-slot
/// RPCs into 1.
struct CoalescedRequest {
  int io_index;
  ByteCount length = 0;  // sum of extent lengths
  std::vector<CoalescedExtent> extents;
};

/// Merge per-slot requests into per-I/O-node scatter-gather requests.
/// Output order is the first-appearance order of each io node in `reqs`
/// (which map() emits in group-slot order), so the result is deterministic.
std::vector<CoalescedRequest> coalesce_by_io(std::vector<IoNodeRequest> reqs);

class StripeLayout {
 public:
  explicit StripeLayout(StripeAttrs attrs);

  const StripeAttrs& attrs() const noexcept { return attrs_; }

  /// Group slot that owns the given file offset.
  int slot_of(FileOffset off) const {
    return static_cast<int>((off / attrs_.stripe_unit) %
                            static_cast<std::uint64_t>(attrs_.group_size()));
  }
  int io_node_of(FileOffset off) const { return attrs_.stripe_group[slot_of(off)]; }

  /// Local (stripe-file) offset of the given file offset.
  FileOffset local_offset(FileOffset off) const {
    const std::uint64_t stripe = off / attrs_.stripe_unit;
    return (stripe / attrs_.group_size()) * attrs_.stripe_unit + off % attrs_.stripe_unit;
  }

  /// Decompose [off, off+len) into per-slot requests (slots with no data
  /// are omitted; result ordered by group slot).
  std::vector<IoNodeRequest> map(FileOffset off, ByteCount len) const;

  /// Local stripe-file size needed on each slot to hold a file of
  /// `file_size` bytes (indexed by group slot).
  std::vector<ByteCount> local_sizes(ByteCount file_size) const;

 private:
  StripeAttrs attrs_;
};

}  // namespace ppfs::pfs
