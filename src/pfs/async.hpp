// Asynchronous request support: the Paragon ART (asynchronous request
// thread) machinery.
//
// "During the setup phase, the incoming request for read is allocated an
// internal structure for tracking the state of the request ... Associated
// with each request structure is an asynchronous request thread (ART). The
// ART will concurrently post and process the user's I/O request while the
// user thread is performing other operations. ... it begins processing
// asynchronous requests that are queued in a FIFO manner on the active
// list."
//
// ArtQueue models the active list: requests are posted FIFO; up to
// `max_arts` of them are in flight at once; each in-flight request is
// driven by its own ART coroutine. Prefetch requests ride this exact
// mechanism, as they did in the paper's prototype.
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <span>

#include "sim/event.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/types.hpp"

namespace ppfs::pfs {

using sim::ByteCount;
using sim::FileOffset;

/// Tracking structure for one asynchronous request ("the internal structure
/// for tracking the state of the request during asynchronous processing").
struct AsyncRequest {
  explicit AsyncRequest(sim::Simulation& s) : done(s) {}

  int fd = -1;
  FileOffset offset = 0;
  ByteCount length = 0;
  std::span<std::byte> out;          // read destination
  std::span<const std::byte> in;     // write source (is_write)
  bool fastpath = true;
  bool is_prefetch = false;
  bool is_write = false;

  sim::Event done;
  ByteCount result = 0;
  std::exception_ptr error;
  sim::SimTime posted_at = 0;
  sim::SimTime completed_at = 0;
};

using AsyncHandle = std::shared_ptr<AsyncRequest>;

class ArtQueue {
 public:
  /// `perform` executes the data transfer of one request (the client's
  /// positioned-read path).
  using PerformFn = std::function<sim::Task<ByteCount>(const AsyncRequest&)>;

  ArtQueue(sim::Simulation& s, std::size_t max_arts, PerformFn perform);
  ArtQueue(const ArtQueue&) = delete;
  ArtQueue& operator=(const ArtQueue&) = delete;

  /// Append to the active list; dispatch begins immediately (FIFO order).
  void post(AsyncHandle req);

  /// Awaitable completion; rethrows the request's error and returns its
  /// byte count.
  sim::Task<ByteCount> wait(AsyncHandle req);

  std::size_t queued() const noexcept { return active_list_.size(); }
  std::size_t in_flight() const noexcept { return arts_.in_use(); }
  std::uint64_t completed() const noexcept { return completed_; }

 private:
  sim::Task<void> run_art(AsyncHandle req);
  void pump();

  sim::Simulation& sim_;
  sim::Resource arts_;
  PerformFn perform_;
  std::deque<AsyncHandle> active_list_;
  std::uint64_t completed_ = 0;
};

}  // namespace ppfs::pfs
