// PfsFileSystem: one mounted PFS — stripe-group metadata, the per-I/O-node
// servers, and the coordination services.
//
// "Any number of PFS file systems may be mounted in the system, each with
// different default data striping attributes and buffering strategies."
// Experiments that vary stripe unit / stripe group simply create files
// with different StripeAttrs on one mount.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hw/machine.hpp"
#include "pfs/pointer_server.hpp"
#include "pfs/server.hpp"
#include "pfs/stripe.hpp"
#include "pfs/token.hpp"
#include "sim/shard.hpp"
#include "ufs/inode.hpp"

namespace ppfs::pfs {

struct PfsFileMeta {
  FileId id = 0;
  std::string name;
  StripeLayout layout;
  /// Stripe-file inode per group slot (a node appearing in k slots hosts
  /// k distinct stripe files).
  std::vector<ufs::InodeNum> stripe_inos;
  ByteCount size = 0;

  explicit PfsFileMeta(StripeAttrs attrs) : layout(std::move(attrs)) {}
};

class PfsFileSystem {
 public:
  PfsFileSystem(hw::Machine& machine, PfsParams params);
  PfsFileSystem(const PfsFileSystem&) = delete;
  PfsFileSystem& operator=(const PfsFileSystem&) = delete;

  /// Create a PFS file with the given striping (default attrs: 64 KB unit
  /// across every I/O node). Creates one stripe file per group slot.
  PfsFileMeta& create(const std::string& name, StripeAttrs attrs);
  PfsFileMeta& create(const std::string& name);

  /// nullptr when absent.
  PfsFileMeta* lookup(const std::string& name);
  PfsFileMeta& file(FileId id);

  /// Default striping for this mount: unit 64 KB, group = all I/O nodes.
  StripeAttrs default_attrs() const;

  PfsServer& server(int io_index) { return servers_.at(static_cast<std::size_t>(io_index)); }
  int server_count() const { return static_cast<int>(servers_.size()); }
  /// True while any I/O daemon is in a crash outage — the prefetch engine
  /// uses this to pause speculation until the system is whole again.
  bool any_server_down() const {
    for (const auto& s : servers_) {
      if (s.down()) return true;
    }
    return false;
  }
  PointerService& pointers() noexcept { return pointers_; }
  CollectiveService& collectives() noexcept { return collectives_; }
  /// TokenWrite byte-range token manager (only exercised when
  /// params().write_tokens is set; idle otherwise).
  TokenManager& tokens() noexcept { return tokens_; }
  const TokenManager& tokens() const noexcept { return tokens_; }

  hw::Machine& machine() noexcept { return machine_; }
  hw::NodeId metadata_node() const noexcept { return metadata_node_; }
  const PfsParams& params() const noexcept { return params_; }

  /// Mount-wide topology epoch: bumped by every server crash AND restore.
  /// Clients compare it against the epoch stamped on their cached stripe
  /// maps — a mismatch forces a metadata refresh before the next coalesced
  /// operation (see PfsClient::ensure_stripe_map).
  std::uint64_t topology_epoch() const noexcept { return topology_epoch_; }

 private:
  hw::Machine& machine_;
  PfsParams params_;
  hw::NodeId metadata_node_;
  // Per-I/O-node server state, io-index-ordered in one contiguous arena
  // (PfsServer is address-pinned: it hands out references to its Ufs and
  // params, which the arena's no-relocation contract preserves).
  sim::ShardArena<PfsServer> servers_;
  PointerService pointers_;
  CollectiveService collectives_;
  TokenManager tokens_;
  std::map<std::string, std::unique_ptr<PfsFileMeta>> files_;
  std::map<FileId, PfsFileMeta*> by_id_;
  FileId next_id_ = 1;
  std::uint64_t topology_epoch_ = 0;
};

}  // namespace ppfs::pfs
