// PfsServer: the PFS I/O daemon on one I/O node.
//
// Each I/O node runs a UFS on its RAID array; the PFS server fields read
// and write requests for the stripe files it hosts. Per-request CPU costs
// are charged against the I/O node's processor, so many compute nodes
// hammering one I/O node contend for its CPU as well as its disk.
//
// Data-path options (both default off; see DESIGN.md §8):
//  - coalesce_rpcs: clients merge same-I/O-node extents into scatter-gather
//    RPCs served by read_batch/write_batch — one request-handling charge
//    and one control round-trip instead of one per extent.
//  - server_batch: extent service funnels through a per-node queue; a
//    spawn-on-demand dispatcher drains it in physical (elevator-sweep)
//    order, so concurrently-arriving requests become one disk sweep
//    instead of N arrival-order seeks.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "fault/error.hpp"
#include "fault/retry.hpp"
#include "hw/machine.hpp"
#include "sim/event.hpp"
#include "sim/task.hpp"
#include "sim/types.hpp"
#include "ufs/block_store.hpp"
#include "ufs/ufs.hpp"

namespace ppfs::pfs {

using sim::ByteCount;
using sim::FileOffset;

struct PfsParams {
  ufs::UfsParams ufs;
  /// I/O-node CPU time to parse/dispatch one request and set up DMA.
  double server_request_overhead = 120.0e-6;
  /// Size of a PFS control message (request, ack, pointer ops) on the wire.
  ByteCount control_message_bytes = 96;
  /// Metadata/pointer-service CPU time per operation.
  double pointer_service_time = 15.0e-6;
  /// Max asynchronous request threads processing one client's queue.
  std::size_t max_arts_per_client = 4;
  /// Client-side RPC reliability envelope (retries, backoff, deadline).
  fault::RetryPolicy retry;
  /// Merge an operation's same-I/O-node extents into one scatter-gather
  /// RPC (single control round-trip, single request-handling charge) and
  /// cache the per-file stripe map client-side with epoch invalidation.
  bool coalesce_rpcs = false;
  /// Queue concurrently-arriving extent requests per I/O node and serve
  /// them as physically-sorted batches (one elevator sweep, not N seeks).
  bool server_batch = false;
  /// TokenWrite: route synchronous reads/writes through byte-range tokens
  /// issued by the metadata node's token manager, with per-client
  /// write-back caches that buffer dirty data until revocation or fsync.
  /// Default off — the read-only paper scenarios stay bit-identical.
  bool write_tokens = false;
  /// Per-client dirty-byte budget for the write-back cache; exceeding it
  /// flushes the lowest-offset dirty extents first (capacity eviction).
  ByteCount write_back_bytes = 1024 * 1024;
};

class PfsServer {
 public:
  PfsServer(hw::Machine& machine, int io_index, const PfsParams& params);
  PfsServer(const PfsServer&) = delete;
  PfsServer& operator=(const PfsServer&) = delete;

  /// Serve a read of a local stripe file. Charges server CPU, then runs
  /// the UFS read (fast path when the request is aligned and the caller
  /// asks for it).
  sim::Task<ByteCount> read(ufs::InodeNum ino, FileOffset local_off, ByteCount len,
                            std::span<std::byte> out, bool fastpath);

  /// Serve a write of a local stripe file.
  sim::Task<void> write(ufs::InodeNum ino, FileOffset local_off,
                        std::span<const std::byte> in, bool fastpath);

  /// One extent of a scatter-gather RPC.
  struct ExtentOp {
    ufs::InodeNum ino;
    FileOffset local_off = 0;
    ByteCount len = 0;
    std::span<std::byte> out;       // read target (empty for writes)
    std::span<const std::byte> in;  // write source (empty for reads)
    ByteCount got = 0;              // bytes actually moved, filled by the server
  };

  /// Serve every extent of one coalesced RPC: the request-handling CPU is
  /// charged once for the whole RPC, then the extents proceed concurrently
  /// (through the batch queue when server_batch is on). Fills op.got per
  /// extent. A failed extent surfaces as FaultError after the siblings
  /// settle — the client retries the whole (idempotent) RPC.
  sim::Task<void> read_batch(std::span<ExtentOp> ops, bool fastpath);
  sim::Task<void> write_batch(std::span<ExtentOp> ops, bool fastpath);

  ufs::Ufs& ufs() noexcept { return ufs_; }
  int io_index() const noexcept { return io_index_; }
  hw::NodeId mesh_node() const noexcept { return mesh_node_; }

  std::uint64_t requests_served() const noexcept { return requests_; }
  /// Batch-queue telemetry: dispatcher sweeps run, extents they carried.
  std::uint64_t batch_sweeps() const noexcept { return batch_sweeps_; }
  std::uint64_t batched_extents() const noexcept { return batched_extents_; }

  // --- crash/restart fault model ---
  /// Take the I/O daemon down. Requests arriving while down fail with
  /// FaultError(kNodeDown); requests already in service lose their reply
  /// (the crash epoch changes under them). With the cache tier enabled the
  /// crash also tears any in-flight journal write and drops the tier's
  /// volatile residency.
  void crash();
  /// Restart the daemon: the node comes back with a cold buffer cache and
  /// wakes every client parked on up_event(). With the cache tier enabled
  /// the daemon first replays the tier's journal (a timed recovery pass,
  /// traced as a kServer/kRecovery span) and only then serves requests —
  /// warm blocks survive into the new epoch.
  void restore();
  bool down() const noexcept { return down_; }
  /// True while a tier-journal recovery pass is replaying after restore().
  bool recovering() const noexcept { return recovering_; }
  /// Set while the server is up; reset during an outage. Clients bound
  /// their recovery wait on this with wait_with_timeout.
  sim::Event& up_event() noexcept { return up_ev_; }
  /// Incremented by every crash. A reply is trustworthy only if the epoch
  /// is unchanged across the request's service time.
  std::uint64_t crash_epoch() const noexcept { return crash_epoch_; }

  /// Wire up the mount-wide topology epoch (PfsFileSystem owns it): every
  /// crash and restore bumps it, invalidating client-cached stripe maps.
  void set_topology_epoch_counter(std::uint64_t* counter) noexcept {
    topology_epoch_ = counter;
  }

 private:
  /// A queued extent awaiting the batch dispatcher. Lives in the enqueuing
  /// coroutine's frame until `done` fires.
  struct QueuedIo {
    ufs::InodeNum ino;
    FileOffset off = 0;
    ByteCount len = 0;
    std::span<std::byte> out;
    std::span<const std::byte> in;
    bool is_write = false;
    bool fastpath = true;
    ByteCount got = 0;
    bool failed = false;
    fault::ErrorCause cause{};
    std::string what;
    sim::Event done;
    explicit QueuedIo(sim::Simulation& s) : done(s) {}
  };

  /// Run one extent: enqueue for the dispatcher when server_batch is on,
  /// otherwise hit the UFS directly (the legacy event sequence).
  sim::Task<ByteCount> serve_extent(ufs::InodeNum ino, FileOffset off, ByteCount len,
                                    std::span<std::byte> out, std::span<const std::byte> in,
                                    bool is_write, bool fastpath);
  void enqueue(QueuedIo& item);
  sim::Task<void> batch_dispatch();
  /// Run one sweep's tasks to completion, then fire `done` (the
  /// dispatcher's pipelining handle).
  sim::Task<void> sweep_and_signal(std::vector<sim::Task<void>> parts, sim::Event& done,
                                   std::uint64_t trace_span);
  /// One sweep item: UFS access with FaultError captured into the item.
  sim::Task<void> serve_queued(QueuedIo& item);
  /// A run of fastpath-eligible sweep reads served as one sorted UFS
  /// batch (contiguous blocks merge into single device transfers).
  sim::Task<void> serve_sorted(std::vector<QueuedIo*> group);
  std::uint64_t phys_key(const QueuedIo& item) const;
  /// Replay the cache tier's journal, then bring the daemon up (detached;
  /// spawned by restore() when the tier is enabled).
  sim::Task<void> recover_and_come_up();

  hw::Machine& machine_;
  int io_index_;
  hw::NodeId mesh_node_;
  const PfsParams& params_;
  ufs::RaidBlockDevice device_;
  ufs::ContentStore content_;
  ufs::Ufs ufs_;
  std::uint64_t requests_ = 0;
  bool down_ = false;
  bool recovering_ = false;
  std::uint64_t crash_epoch_ = 0;
  sim::Event up_ev_;
  std::uint64_t* topology_epoch_ = nullptr;

  std::vector<QueuedIo*> queue_;
  bool dispatcher_running_ = false;
  std::uint64_t sweep_head_ = 0;
  std::uint64_t batch_sweeps_ = 0;
  std::uint64_t batched_extents_ = 0;
};

}  // namespace ppfs::pfs
