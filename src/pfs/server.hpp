// PfsServer: the PFS I/O daemon on one I/O node.
//
// Each I/O node runs a UFS on its RAID array; the PFS server fields read
// and write requests for the stripe files it hosts. Per-request CPU costs
// are charged against the I/O node's processor, so many compute nodes
// hammering one I/O node contend for its CPU as well as its disk.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "fault/retry.hpp"
#include "hw/machine.hpp"
#include "sim/event.hpp"
#include "sim/task.hpp"
#include "sim/types.hpp"
#include "ufs/block_store.hpp"
#include "ufs/ufs.hpp"

namespace ppfs::pfs {

using sim::ByteCount;
using sim::FileOffset;

struct PfsParams {
  ufs::UfsParams ufs;
  /// I/O-node CPU time to parse/dispatch one request and set up DMA.
  double server_request_overhead = 120.0e-6;
  /// Size of a PFS control message (request, ack, pointer ops) on the wire.
  ByteCount control_message_bytes = 96;
  /// Metadata/pointer-service CPU time per operation.
  double pointer_service_time = 15.0e-6;
  /// Max asynchronous request threads processing one client's queue.
  std::size_t max_arts_per_client = 4;
  /// Client-side RPC reliability envelope (retries, backoff, deadline).
  fault::RetryPolicy retry;
};

class PfsServer {
 public:
  PfsServer(hw::Machine& machine, int io_index, const PfsParams& params);
  PfsServer(const PfsServer&) = delete;
  PfsServer& operator=(const PfsServer&) = delete;

  /// Serve a read of a local stripe file. Charges server CPU, then runs
  /// the UFS read (fast path when the request is aligned and the caller
  /// asks for it).
  sim::Task<ByteCount> read(ufs::InodeNum ino, FileOffset local_off, ByteCount len,
                            std::span<std::byte> out, bool fastpath);

  /// Serve a write of a local stripe file.
  sim::Task<void> write(ufs::InodeNum ino, FileOffset local_off,
                        std::span<const std::byte> in, bool fastpath);

  ufs::Ufs& ufs() noexcept { return ufs_; }
  int io_index() const noexcept { return io_index_; }
  hw::NodeId mesh_node() const noexcept { return mesh_node_; }

  std::uint64_t requests_served() const noexcept { return requests_; }

  // --- crash/restart fault model ---
  /// Take the I/O daemon down. Requests arriving while down fail with
  /// FaultError(kNodeDown); requests already in service lose their reply
  /// (the crash epoch changes under them).
  void crash();
  /// Restart the daemon: the node comes back with a cold buffer cache and
  /// wakes every client parked on up_event().
  void restore();
  bool down() const noexcept { return down_; }
  /// Set while the server is up; reset during an outage. Clients bound
  /// their recovery wait on this with wait_with_timeout.
  sim::Event& up_event() noexcept { return up_ev_; }
  /// Incremented by every crash. A reply is trustworthy only if the epoch
  /// is unchanged across the request's service time.
  std::uint64_t crash_epoch() const noexcept { return crash_epoch_; }

 private:
  hw::Machine& machine_;
  int io_index_;
  hw::NodeId mesh_node_;
  const PfsParams& params_;
  ufs::RaidBlockDevice device_;
  ufs::ContentStore content_;
  ufs::Ufs ufs_;
  std::uint64_t requests_ = 0;
  bool down_ = false;
  std::uint64_t crash_epoch_ = 0;
  sim::Event up_ev_;
};

}  // namespace ppfs::pfs
