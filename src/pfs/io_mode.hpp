// The Paragon PFS I/O modes (paper Figure 1).
//
// The modes are "hints provided by the application to the file system which
// indicate the type of access that will be done". The taxonomy:
//
//   Unique file pointer
//     |- atomicity ............ M_UNIX   (mode 0)
//     `- no atomicity ......... M_ASYNC  (mode 1)
//   Shared file pointer
//     |- unordered ............ M_LOG    (mode 5)
//     `- node order
//        |- synchronized
//        |   |- different data  M_SYNC   (mode 2)
//        |   `- same data ....  M_GLOBAL (mode 4)
//        `- not synchronized .. M_RECORD (mode 3)
//
// Performance implications (reproduced by this simulator, Figure 2):
// M_UNIX serializes whole accesses for atomicity; M_LOG serializes
// pointer assignment; M_SYNC gangs the nodes each call; M_RECORD computes
// offsets locally (fast); M_ASYNC does no coordination at all (fastest).
#pragma once

#include <array>
#include <string_view>

namespace ppfs::pfs {

enum class IoMode : int {
  kUnix = 0,
  kAsync = 1,
  kSync = 2,
  kRecord = 3,
  kGlobal = 4,
  kLog = 5,
};

struct IoModeTraits {
  bool shared_pointer;   // one logical pointer across nodes
  bool atomic;           // accesses serialized for atomicity
  bool node_ordered;     // data assigned to nodes in rank order
  bool synchronized;     // every call gangs all nodes
  bool same_data;        // all nodes receive identical bytes
  bool fixed_records;    // all nodes must use one request size
  std::string_view name;
};

const IoModeTraits& traits(IoMode mode);

/// All six modes, in mode-number order.
const std::array<IoMode, 6>& all_io_modes();

std::string_view to_string(IoMode mode);

}  // namespace ppfs::pfs
