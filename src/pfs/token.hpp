// TokenWrite: the byte-range token manager — the metadata node's concurrency
// control for the multi-client write path.
//
// The manager issues read and write tokens per (file, byte range). Write
// tokens are exclusive per byte; read tokens are shareable among readers but
// conflict with writes. An acquisition that overlaps another client's
// conflicting grant revokes exactly the overlap: the manager messages the
// holder, the holder flushes every dirty byte in the range and invalidates
// its cached token, and only then is the revocation acked and the new grant
// installed (flush-before-ack). Partial overlaps split the holder's grant
// into its surviving remainders, so disjoint writers never serialize.
//
// The service lives on the metadata node next to PointerService: each
// operation charges that node's CPU, and conflicting acquisitions on one
// file serialize FIFO through a per-file lock (deterministic revocation
// order). SimCheck's token-conservation ledger shadows the grant table —
// every write-granted byte is covered by at most one client at any instant,
// and a revoked token may only be acked fully flushed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "hw/machine.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"
#include "sim/types.hpp"

namespace ppfs::pfs {

using sim::ByteCount;
using sim::FileOffset;
using FileId = std::uint64_t;

enum class TokenMode : std::uint8_t { kRead, kWrite };

const char* to_string(TokenMode m) noexcept;

/// Half-open byte range [begin, end).
struct TokenRange {
  FileOffset begin = 0;
  FileOffset end = 0;
  ByteCount length() const noexcept { return end - begin; }
};

/// Client-side callback surface: the manager revokes ranges through this.
/// The holder must flush every dirty byte inside `range` and drop its
/// cached token for it before returning — the return IS the ack.
class TokenRevokeHandler {
 public:
  virtual ~TokenRevokeHandler() = default;
  /// Mesh node the revoke/ack control messages travel to and from.
  virtual hw::NodeId token_node() const = 0;
  /// `mode` is the mode of the holder's grant being revoked.
  virtual sim::Task<void> on_token_revoke(FileId file, TokenRange range, TokenMode mode) = 0;
};

struct TokenManagerStats {
  std::uint64_t acquires = 0;     // acquisition RPCs served
  std::uint64_t grants = 0;       // grants installed (one per acquire)
  std::uint64_t revocations = 0;  // conflicting overlaps revoked from holders
  std::uint64_t splits = 0;       // grants split in two by a partial overlap
  std::uint64_t releases = 0;     // release-all operations served
};

class TokenManager {
 public:
  TokenManager(hw::Machine& machine, hw::NodeId home_node, double service_time,
               ByteCount control_message_bytes)
      : machine_(machine), home_(home_node), service_time_(service_time),
        ctrl_(control_message_bytes) {}
  TokenManager(const TokenManager&) = delete;
  TokenManager& operator=(const TokenManager&) = delete;

  /// Register a client's revocation handler; returns its client id
  /// (assigned in registration order, so runs are deterministic).
  int register_handler(TokenRevokeHandler* handler);
  /// Drop the handler and every grant it still holds (no flush — only
  /// called at teardown, after the simulation has drained).
  void unregister_handler(int client_id);

  /// Acquire a token for [begin, end). Revokes conflicting grants of other
  /// clients (flush-before-ack) before installing the new grant. Empty
  /// ranges are no-ops.
  sim::Task<void> acquire(int client_id, FileId file, FileOffset begin, FileOffset end,
                          TokenMode mode);

  // --- introspection (tests, SimCheck cross-check, reports) ---
  std::size_t grant_count(FileId file) const;
  /// Bytes currently granted in `mode` on `file`.
  ByteCount granted_bytes(FileId file, TokenMode mode) const;
  /// Total write-granted bytes across every file — the manager side of the
  /// SimCheck token-conservation balance.
  ByteCount write_granted_bytes() const noexcept { return write_granted_bytes_; }
  bool holds(int client_id, FileId file, FileOffset begin, FileOffset end,
             TokenMode mode) const;
  const TokenManagerStats& stats() const noexcept { return stats_; }

 private:
  struct Grant {
    int client = 0;
    TokenMode mode = TokenMode::kRead;
    FileOffset begin = 0;
    FileOffset end = 0;
  };
  struct State {
    std::vector<Grant> grants;
    std::unique_ptr<sim::Resource> lock;
  };

  State& state(FileId file);
  /// Remove [begin, end) from grants[i], keeping the remainders (a middle
  /// cut splits the grant in two). Reports write releases to the auditor.
  /// Returns the number of grant records now occupying the original slot.
  std::size_t remove_from_grant(FileId file, State& s, std::size_t i, FileOffset begin,
                                FileOffset end);

  hw::Machine& machine_;
  hw::NodeId home_;
  double service_time_;
  ByteCount ctrl_;
  std::map<FileId, State> files_;
  std::map<int, TokenRevokeHandler*> handlers_;
  int next_client_ = 1;
  ByteCount write_granted_bytes_ = 0;
  TokenManagerStats stats_;
};

}  // namespace ppfs::pfs
