// ppfs_fsck: parallel consistency checker for the persistent second-tier
// cache. Runs a workload (cache tier forced on, optionally with a fault
// plan), then — while the simulated machine is still alive — audits every
// I/O node's cache journal against its UFS inode table, repairing or
// quarantining inconsistent entries.
//
//   $ ppfs_fsck --file 4M --faults "crash:io=1,at=0.02,outage=0.05"
//               --corrupt 8 --seed 7 --jobs 4 --verify
//
// Exit status: 0 = cache consistent (after repair when enabled);
// 1 = inconsistencies remain (scan-only, or --verify re-scan found more);
// 2 = usage error.
#include <cstdio>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "cache/fsck.hpp"
#include "pfs/filesystem.hpp"
#include "workload/experiment.hpp"
#include "workload/options.hpp"
#include "workload/recovery.hpp"

using namespace ppfs;
using namespace ppfs::workload;

namespace {

struct FsckOptions {
  CliOptions cli;
  std::size_t corrupt = 0;   // journal entries to damage before the scan
  std::uint64_t seed = 1;    // corruption-injection seed
  bool repair = true;        // apply repairs/quarantines (--scan-only clears)
  bool verify = false;       // re-scan after repair; demand zero findings
};

const char* kUsage =
    R"(ppfs_fsck — audit the persistent cache tier against the UFS inode tables.

Runs one workload with the cache tier forced on, then cross-checks every
journal entry (torn writes, unknown inodes, stale generations, out-of-range
bitmap bits) with a sharded thread pool — one shard per I/O node.

fsck flags:
  --corrupt <n>    damage n journal entries before the scan (deterministic
                   for a given --seed; cycles all four corruption kinds)
  --seed <n>       corruption-injection seed               (default 1)
  --scan-only      report findings without repairing
  --verify         after repair, re-scan and require zero findings
  --jobs <n>       fsck worker threads                     (default 1;
                   the report is byte-identical for any job count)

All ppfs_run workload/machine/fault flags are accepted too (--file,
--request, --mode, --nio, --faults, --cache-tier-blocks, ...).
)";

FsckOptions parse_fsck_cli(const std::vector<std::string>& args) {
  FsckOptions opt;
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto need_value = [&](const char* flag) -> const std::string& {
      if (i + 1 >= args.size()) throw CliError(flag, "missing value");
      return args[++i];
    };
    if (a == "--corrupt") {
      opt.corrupt = std::stoul(need_value("--corrupt"));
    } else if (a == "--seed") {
      opt.seed = std::stoull(need_value("--seed"));
    } else if (a == "--scan-only") {
      opt.repair = false;
    } else if (a == "--verify") {
      opt.verify = true;
    } else {
      rest.push_back(a);
    }
  }
  opt.cli = parse_cli(rest);
  // The whole point of this tool is the tier; force it on so a bare
  // `ppfs_fsck` invocation audits something.
  opt.cli.machine.pfs.ufs.cache_tier.enabled = true;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  FsckOptions opt;
  try {
    opt = parse_fsck_cli(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (opt.cli.show_help) {
    std::cout << kUsage;
    return 0;
  }

  try {
    Experiment exp(opt.cli.machine);
    cache::FsckReport report;
    cache::FsckReport recheck;
    std::vector<std::string> injected;
    const unsigned jobs = static_cast<unsigned>(opt.cli.jobs);

    exp.run(opt.cli.workload, nullptr, [&](pfs::PfsFileSystem& fs) {
      auto shards = make_fsck_shards(fs);
      if (opt.corrupt > 0) {
        injected = cache::inject_corruptions(shards, opt.seed, opt.corrupt);
      }
      report = cache::run_fsck(shards, jobs, opt.repair);
      if (opt.verify && opt.repair) {
        recheck = cache::run_fsck(shards, jobs, /*repair=*/false);
      }
    });

    if (!injected.empty()) {
      std::printf("injected %zu corruption(s), seed %llu:\n", injected.size(),
                  (unsigned long long)opt.seed);
      for (const auto& line : injected) std::printf("  %s\n", line.c_str());
    }
    std::printf("%s", report.summary().c_str());

    if (opt.verify && opt.repair) {
      const bool clean = recheck.findings() == 0 && recheck.clean();
      std::printf("verify: re-scan found %llu finding(s): %s\n",
                  (unsigned long long)recheck.findings(), clean ? "CLEAN" : "DIRTY");
      if (!clean) return 1;
    }
    if (!opt.repair && report.findings() > 0) return 1;
    if (!report.clean()) return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
