#!/usr/bin/env python3
"""ppfs_trace_check — schema validator for ppfs_run --trace output.

Checks that a Chrome trace_event JSON file produced by the TraceScope
exporter is well-formed enough for Perfetto / chrome://tracing AND obeys
the invariants the exporter promises (it runs as a CTest and in the
perf-smoke CI job):

  * the file is one valid JSON array of event objects;
  * every event carries ph/ts (metadata "M" events carry pid/tid/name);
  * timestamps are monotonically non-decreasing in file order over all
    non-metadata events (the sink records in dispatch order, and simulated
    time never goes backwards);
  * synchronous "B"/"E" events obey stack discipline per tid: every "E"
    closes the most recent open "B" on that tid, and nothing stays open at
    end of file (capacity-1 resources cannot overlap);
  * async "b"/"e" events pair exactly by (cat, id): one begin, one end,
    end.ts >= begin.ts, no orphans (RPC envelopes and pipelined server
    sweeps overlap, so they correlate by id instead of nesting);
  * with --require-tracks, each named track contributes at least one
    thread_name metadata row (by prefix: kernel -> "kernel dispatch",
    link -> "link ", disk -> "disk ", server -> "pfs-server io",
    rpc -> "rpc rank ", prefetch -> "prefetch rank ").

Usage:
    ppfs_trace_check.py <trace.json> [--require-tracks kernel,link,disk,...]

Exit status 0 when the trace passes, 1 with a diagnostic on the first
violation class encountered.
"""

from __future__ import annotations

import argparse
import json
import sys

TRACK_PREFIXES = {
    "kernel": "kernel dispatch",
    "link": "link ",
    "disk": "disk ",
    "server": "pfs-server io",
    "rpc": "rpc rank ",
    "prefetch": "prefetch rank ",
}


def fail(msg: str) -> int:
    print(f"ppfs_trace_check: FAIL: {msg}", file=sys.stderr)
    return 1


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace_event JSON file from ppfs_run --trace")
    ap.add_argument("--require-tracks", default="", metavar="LIST",
                    help="comma-separated track names that must appear "
                         f"(known: {', '.join(sorted(TRACK_PREFIXES))})")
    args = ap.parse_args(argv)

    try:
        with open(args.trace, encoding="utf-8") as f:
            events = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot parse {args.trace}: {e}")
    if not isinstance(events, list) or not events:
        return fail("trace is not a non-empty JSON array")

    thread_names: list[str] = []
    last_ts = None
    open_sync: dict[object, list[dict]] = {}   # tid -> stack of open "B"
    open_async: dict[tuple, dict] = {}         # (cat, id) -> open "b"
    counts = {"B": 0, "E": 0, "b": 0, "e": 0, "i": 0, "C": 0, "M": 0}

    for k, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            return fail(f"event {k} is not an object with a 'ph' field")
        ph = ev["ph"]
        if ph == "M":
            counts["M"] += 1
            if ev.get("name") != "thread_name":
                return fail(f"event {k}: unexpected metadata record {ev.get('name')!r}")
            if "pid" not in ev or "tid" not in ev:
                return fail(f"event {k}: thread_name metadata without pid/tid")
            thread_names.append(ev["args"]["name"])
            continue
        if ph not in counts:
            return fail(f"event {k}: unknown phase {ph!r}")
        counts[ph] += 1
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            return fail(f"event {k}: missing/non-numeric ts")
        if last_ts is not None and ts < last_ts:
            return fail(f"event {k}: ts {ts} went backwards (previous {last_ts})")
        last_ts = ts

        if ph == "B":
            open_sync.setdefault(ev.get("tid"), []).append(ev)
        elif ph == "E":
            stack = open_sync.get(ev.get("tid"))
            if not stack:
                return fail(f"event {k}: 'E' on tid {ev.get('tid')} with no open 'B'")
            stack.pop()
        elif ph == "b":
            key = (ev.get("cat"), ev.get("id"))
            if key[1] is None:
                return fail(f"event {k}: async begin without an id")
            if key in open_async:
                return fail(f"event {k}: duplicate async begin for {key}")
            open_async[key] = ev
        elif ph == "e":
            key = (ev.get("cat"), ev.get("id"))
            begin = open_async.pop(key, None)
            if begin is None:
                return fail(f"event {k}: async end for {key} with no matching begin")
            if ts < begin["ts"]:
                return fail(f"event {k}: async span {key} ends before it begins")

    dangling = {tid: len(stack) for tid, stack in open_sync.items() if stack}
    if dangling:
        return fail(f"unclosed 'B' events at end of trace: {dangling}")
    if open_async:
        return fail(f"unclosed async spans at end of trace: {sorted(open_async)[:5]}")

    missing = []
    for want in filter(None, (t.strip() for t in args.require_tracks.split(","))):
        prefix = TRACK_PREFIXES.get(want)
        if prefix is None:
            return fail(f"--require-tracks: unknown track {want!r}")
        if not any(name.startswith(prefix) for name in thread_names):
            missing.append(want)
    if missing:
        return fail(f"required tracks absent from trace: {', '.join(missing)} "
                    f"({len(thread_names)} named rows present)")

    total = sum(counts.values())
    print(f"ppfs_trace_check: OK: {total} events "
          f"(B/E {counts['B']}/{counts['E']}, async b/e {counts['b']}/{counts['e']}, "
          f"instants {counts['i']}, counters {counts['C']}, "
          f"{len(thread_names)} named rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
